/**
 * @file
 * Example: the embedded-platform study (paper Section VI-E) as an API
 * walkthrough — run Kaffe on the simulated DBPXA255 board and contrast
 * it with the same workload on the P6, showing how the component
 * balance flips (class loader dominant, GC the most power-hungry
 * component) when the platform changes.
 *
 * Usage: embedded_profile [benchmark]
 */

#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

void
describe(const char *label, const ExperimentResult &res, double unit)
{
    std::cout << label << ":\n";
    if (!res.ok()) {
        std::cout << "  (out of memory)\n";
        return;
    }
    std::cout << "  run time " << res.run.seconds() * 1e3 << " ms, "
              << res.attribution.totalCpuJoules << " J CPU + "
              << res.attribution.totalMemJoules << " J memory\n";
    for (const auto c : kaffeComponents()) {
        const auto &p = res.attribution.powerOf(c);
        if (p.samples == 0)
            continue;
        std::cout << "  " << core::componentName(c) << ": "
                  << res.attribution.energyFraction(c) * 100
                  << "% of energy, avg " << p.avgCpuWatts() * unit
                  << (unit > 1 ? " mW" : " W") << ", peak "
                  << p.peakCpuWatts * unit << (unit > 1 ? " mW" : " W")
                  << "\n";
    }
    std::cout << "  classes loaded: " << res.run.classesLoaded
              << ", GC slices/cycles: " << res.run.gc.minorCollections
              << "/" << res.run.gc.majorCollections << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "_213_javac";
    const auto &bench = workloads::benchmark(name);

    std::cout << "Kaffe on two platforms: " << name
              << " (-s10 dataset, 16 MB nominal heap)\n\n";

    ExperimentConfig pxa;
    pxa.platform = sim::PlatformKind::Pxa255;
    pxa.vm = jvm::VmKind::Kaffe;
    pxa.collector = jvm::CollectorKind::IncrementalMS;
    pxa.dataset = workloads::DatasetScale::Small;
    pxa.heapNominalMB = 16;
    const auto onPxa = runExperiment(pxa, bench);
    describe("DBPXA255 (PXA255 @ 400 MHz, no L2)", onPxa, 1e3);

    std::cout << "\n";

    ExperimentConfig p6 = pxa;
    p6.platform = sim::PlatformKind::P6;
    const auto onP6 = runExperiment(p6, bench);
    describe("P6 (Pentium M @ 1.6 GHz)", onP6, 1.0);

    if (onPxa.ok() && onP6.ok()) {
        const double clPxa = onPxa.attribution.energyFraction(
            core::ComponentId::ClassLoader);
        const double clP6 = onP6.attribution.energyFraction(
            core::ComponentId::ClassLoader);
        std::cout << "\nthe class loader's share grows from "
                  << clP6 * 100 << "% on the P6 to " << clPxa * 100
                  << "% on the embedded board (paper Section VI-E: "
                     "improving class loading saves real energy on "
                     "embedded JVMs)\n";
    }
    return 0;
}
