/**
 * @file
 * Quickstart: run one benchmark on the simulated Pentium M under the
 * Jikes personality and print the per-component energy decomposition —
 * the smallest end-to-end use of the javelin API.
 *
 * Usage: quickstart [benchmark] [heapMB] [collector]
 *   e.g. quickstart _213_javac 32 GenCopy
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace javelin;

namespace {

jvm::CollectorKind
parseCollector(const std::string &name)
{
    if (name == "SemiSpace")
        return jvm::CollectorKind::SemiSpace;
    if (name == "MarkSweep")
        return jvm::CollectorKind::MarkSweep;
    if (name == "GenCopy")
        return jvm::CollectorKind::GenCopy;
    if (name == "GenMS")
        return jvm::CollectorKind::GenMS;
    if (name == "IncMS")
        return jvm::CollectorKind::IncrementalMS;
    std::cerr << "unknown collector " << name << "\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "_213_javac";
    const std::uint32_t heap =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;
    const std::string coll = argc > 3 ? argv[3] : "SemiSpace";

    harness::ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::P6;
    cfg.vm = jvm::VmKind::Jikes;
    cfg.collector = parseCollector(coll);
    cfg.heapNominalMB = heap;

    std::cout << "running " << bench << " (heap " << heap << " MB, "
              << coll << ", Jikes RVM on P6)...\n";
    const auto res =
        harness::runExperiment(cfg, workloads::benchmark(bench));

    harness::printRunSummary(std::cout, res);
    if (!res.ok())
        return 1;

    auto table = harness::energyDecompositionTable(
        {res}, harness::jikesComponents());
    table.print(std::cout);

    std::cout << "\nper-component detail:\n";
    for (const auto c : harness::jikesComponents()) {
        const auto &p = res.attribution.powerOf(c);
        const auto &perf = res.attribution.perfOf(c);
        std::cout << "  " << core::componentName(c) << ": "
                  << p.cpuJoules << " J, avg " << p.avgCpuWatts()
                  << " W, peak " << p.peakCpuWatts << " W, IPC "
                  << perf.ipc() << ", L2 miss "
                  << perf.l2MissRate() * 100 << "%\n";
    }
    return 0;
}
