/**
 * @file
 * Example: export the raw measurement traces of one run — the 40 µs
 * power samples and the HPM counter samples — so the paper's figures
 * can be re-plotted from javelin data with any plotting tool.
 *
 * Capture goes through the asynchronous trace spool (DESIGN.md §10):
 * samples stream to javelin-trace-v1 binary files as the run executes
 * — capture memory stays flat no matter how long the run is — and the
 * CSVs are decoded from the binary traces afterwards. `javelin-trace
 * cat/index/range` can inspect the .jtrc files directly.
 *
 * Usage: power_trace [benchmark] [heapMB] [outdir]
 * Writes <outdir>/<benchmark>_{power,perf}.csv and the binary
 * <outdir>/<benchmark>.{power,perf}.jtrc they were decoded from.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/daq.hh"
#include "core/hpm_sampler.hh"
#include "core/trace_io.hh"
#include "core/trace_spool.hh"
#include "harness/experiment.hh"

using namespace javelin;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "_213_javac";
    const std::uint32_t heap =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;
    const std::string outdir = argc > 3 ? argv[3] : ".";

    // Assemble the rig by hand (runExperiment hides the traces).
    harness::ExperimentConfig cfg;
    cfg.heapNominalMB = heap;
    sim::System system(harness::scaledPlatformSpec(cfg));

    const auto program = workloads::buildProgram(
        workloads::benchmark(bench),
        workloads::studyScaleFor(cfg.dataset));

    jvm::JvmConfig vmCfg;
    vmCfg.collector = cfg.collector;
    vmCfg.heapBytes = harness::scaledHeapBytes(cfg);
    jvm::Jvm vm(system, program, vmCfg);

    // Spool-only capture: no in-memory trace at all; the spool's two
    // block buffers are the entire capture footprint.
    const std::string powerTrc = outdir + "/" + bench + ".power.jtrc";
    const std::string perfTrc = outdir + "/" + bench + ".perf.jtrc";
    core::TraceSpool::Config powerSp;
    powerSp.path = powerTrc;
    powerSp.kind = core::tracefmt::RecordKind::Power;
    powerSp.backend = core::TraceSpool::backendFromEnv();
    core::TraceSpool powerSpool(powerSp);
    core::TraceSpool::Config perfSp;
    perfSp.path = perfTrc;
    perfSp.kind = core::tracefmt::RecordKind::Perf;
    perfSp.backend = core::TraceSpool::backendFromEnv();
    core::TraceSpool perfSpool(perfSp);

    core::Daq::Config daqCfg;
    daqCfg.spool = &powerSpool;
    daqCfg.keepInMemory = false;
    core::Daq daq(system, vm.port(), daqCfg);

    core::HpmSampler::Config hpmCfg;
    hpmCfg.period = 100 * kTicksPerMicro;
    hpmCfg.spool = &perfSpool;
    hpmCfg.keepInMemory = false;
    core::HpmSampler hpm(system, vm.port(), hpmCfg);

    std::cout << "running " << bench << " (heap " << heap
              << " MB nominal)...\n";
    const auto r = vm.run();
    if (r.outOfMemory) {
        std::cerr << "out of memory\n";
        return 1;
    }
    powerSpool.close();
    perfSpool.close();

    // Decode the binary traces back out for the plotting-tool CSVs.
    const std::string powerPath = outdir + "/" + bench + "_power.csv";
    const std::string perfPath = outdir + "/" + bench + "_perf.csv";
    {
        core::TraceReader reader(powerTrc);
        std::ofstream f(powerPath);
        core::writePowerCsv(f, reader.readPower());
    }
    {
        core::TraceReader reader(perfTrc);
        std::ofstream f(perfPath);
        core::writePerfCsv(f, reader.readPerf());
    }
    std::cout << "wrote " << daq.samplesTaken() << " power samples to "
              << powerPath << " (spooled via " << powerTrc << ")\n"
              << "      " << hpm.samplesTaken() << " perf samples to "
              << perfPath << " (spooled via " << perfTrc << ")\n"
              << "run: " << r.seconds() * 1e3 << " ms, "
              << r.gc.collections << " GCs, "
              << daq.measuredCpuJoules() << " J measured\n";
    return 0;
}
