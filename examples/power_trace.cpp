/**
 * @file
 * Example: export the raw measurement traces of one run — the 40 µs
 * power samples (CSV: tick, watts, component) and the HPM counter
 * samples — so the paper's figures can be re-plotted from javelin data
 * with any plotting tool.
 *
 * Usage: power_trace [benchmark] [heapMB] [outdir]
 * Writes <outdir>/<benchmark>_power.csv and _perf.csv.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/daq.hh"
#include "core/hpm_sampler.hh"
#include "core/trace_io.hh"
#include "harness/experiment.hh"

using namespace javelin;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "_213_javac";
    const std::uint32_t heap =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;
    const std::string outdir = argc > 3 ? argv[3] : ".";

    // Assemble the rig by hand (runExperiment hides the traces).
    harness::ExperimentConfig cfg;
    cfg.heapNominalMB = heap;
    sim::System system(harness::scaledPlatformSpec(cfg));

    const auto program = workloads::buildProgram(
        workloads::benchmark(bench),
        workloads::studyScaleFor(cfg.dataset));

    jvm::JvmConfig vmCfg;
    vmCfg.collector = cfg.collector;
    vmCfg.heapBytes = harness::scaledHeapBytes(cfg);
    jvm::Jvm vm(system, program, vmCfg);

    core::Daq daq(system, vm.port());
    core::HpmSampler hpm(system, vm.port(),
                         core::HpmSampler::Config{
                             100 * kTicksPerMicro, 4096});

    std::cout << "running " << bench << " (heap " << heap
              << " MB nominal)...\n";
    const auto r = vm.run();
    if (r.outOfMemory) {
        std::cerr << "out of memory\n";
        return 1;
    }

    const std::string powerPath = outdir + "/" + bench + "_power.csv";
    const std::string perfPath = outdir + "/" + bench + "_perf.csv";
    {
        std::ofstream f(powerPath);
        core::writePowerCsv(f, daq.trace());
    }
    {
        std::ofstream f(perfPath);
        core::writePerfCsv(f, hpm.trace());
    }
    std::cout << "wrote " << daq.trace().size() << " power samples to "
              << powerPath << "\n      " << hpm.trace().size()
              << " perf samples to " << perfPath << "\n"
              << "run: " << r.seconds() * 1e3 << " ms, "
              << r.gc.collections << " GCs, "
              << daq.measuredCpuJoules() << " J measured\n";
    return 0;
}
