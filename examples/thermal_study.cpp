/**
 * @file
 * Example: the fan-failure scenario of paper Fig. 1, driven through the
 * public API — run a workload in a loop, watch the die temperature, and
 * observe the emergency 50%-duty throttle engage, with and without the
 * thermal-aware GC policy of Section VI-C. The two scenarios simulate
 * independent systems, so they run concurrently on the sweep pool and
 * their buffered timelines print side by side afterwards.
 *
 * Usage: thermal_study [benchmark] [paper-seconds]
 */

#include <iostream>
#include <sstream>
#include <string>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

// Time-dilate the thermal mass so minutes of board time fit in
// milliseconds of simulated time (see bench/fig01 for details).
constexpr double kThermalScale = 4000.0;

struct ScenarioReport
{
    std::string timeline;
    int runs = 0;
    double peakC = 0.0;
    double throttledPaperSeconds = 0.0;
    double joulesEquivalent = 0.0;
};

ScenarioReport
runScenario(const std::string &bench, double horizon_paper_s,
            bool thermal_gc, double guard_temp_c)
{
    auto spec = scaledPlatformSpec(ExperimentConfig{});
    spec.thermal.capacitanceJperC /= kThermalScale;

    const auto program = workloads::buildProgram(
        workloads::benchmark(bench),
        workloads::studyScaleFor(workloads::DatasetScale::Small));

    sim::System system(spec);
    system.thermal().setFanEnabled(false);

    ScenarioReport report;
    std::ostringstream out;
    out << "t(paper s)  T(C)    duty   note\n";

    bool announcedThrottle = false;
    system.addPeriodicTask("report", 2 * kTicksPerMilli, [&](Tick now) {
        const double t = ticksToSeconds(now) * kThermalScale;
        out.setf(std::ios::fixed);
        out.precision(1);
        out << t << "\t    " << system.thermal().temperatureC()
            << "\t  " << system.cpu().dutyCycle();
        if (system.thermal().throttled() && !announcedThrottle) {
            out << "   <-- emergency throttle engaged";
            announcedThrottle = true;
        }
        out << "\n";
    });

    jvm::JvmConfig cfg;
    cfg.collector = jvm::CollectorKind::GenCopy;
    cfg.heapBytes = scaledHeapBytes(ExperimentConfig{});

    jvm::Jvm *current = nullptr;
    if (thermal_gc) {
        system.addPeriodicTask(
            "thermal-gc", 200 * kTicksPerMicro, [&](Tick) {
                if (!current)
                    return;
                if (system.thermal().temperatureC() < guard_temp_c)
                    return;
                if (current->port().current() != core::ComponentId::App)
                    return; // never re-enter the collector
                current->collector().collect(false);
            });
    }

    const Tick horizon = secondsToTicks(horizon_paper_s / kThermalScale);
    while (system.cpu().now() < horizon) {
        jvm::Jvm vm(system, program, cfg);
        current = &vm;
        const auto r = vm.run();
        current = nullptr;
        ++report.runs;
        if (r.outOfMemory)
            break;
    }

    report.timeline = out.str();
    report.peakC = system.thermal().maxTemperatureC();
    report.throttledPaperSeconds =
        system.thermal().throttledSeconds() * kThermalScale;
    report.joulesEquivalent = system.cpuJoules() * kThermalScale;
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "_222_mpegaudio";
    const double horizonPaperS = argc > 2 ? std::atof(argv[2]) : 200.0;
    const double guardC = 95.0;

    std::cout << "fan disabled; running " << name
              << " repeatedly on the simulated Pentium M, with and "
                 "without thermal-aware GC (guard "
              << guardC << " C)...\n";

    ScenarioReport reports[2];
    SweepRunner::parallelFor(2, [&](std::size_t i) {
        reports[i] =
            runScenario(name, horizonPaperS, i == 1, guardC);
    });

    const char *labels[2] = {"baseline (no policy)",
                             "thermal-aware GC"};
    for (int i = 0; i < 2; ++i) {
        const auto &r = reports[i];
        std::cout << "\n--- " << labels[i] << " ---\n" << r.timeline;
        std::cout << "completed " << r.runs << " benchmark runs; peak "
                  << r.peakC << " C; throttled "
                  << r.throttledPaperSeconds
                  << " equivalent seconds; total energy "
                  << r.joulesEquivalent << " J equivalent\n";
    }

    std::cout << "\nthe proactive low-power GC pause flattens the ramp "
                 "and defers the 50%-duty emergency throttle (paper "
                 "Section VI-C).\n";
    return 0;
}
