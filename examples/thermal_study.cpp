/**
 * @file
 * Example: the fan-failure scenario of paper Fig. 1, driven through the
 * public API — run a workload in a loop, watch the die temperature, and
 * observe the emergency 50%-duty throttle engage, with and without the
 * thermal-aware GC policy of Section VI-C.
 *
 * Usage: thermal_study [benchmark] [paper-seconds]
 */

#include <iostream>
#include <string>

#include "harness/experiment.hh"

using namespace javelin;
using namespace javelin::harness;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "_222_mpegaudio";
    const double horizonPaperS = argc > 2 ? std::atof(argv[2]) : 200.0;

    // Time-dilate the thermal mass so minutes of board time fit in
    // milliseconds of simulated time (see bench/fig01 for details).
    constexpr double kThermalScale = 4000.0;
    auto spec = scaledPlatformSpec(ExperimentConfig{});
    spec.thermal.capacitanceJperC /= kThermalScale;

    const auto program = workloads::buildProgram(
        workloads::benchmark(name),
        workloads::studyScaleFor(workloads::DatasetScale::Small));

    sim::System system(spec);
    system.thermal().setFanEnabled(false);
    std::cout << "fan disabled; running " << name
              << " repeatedly on the simulated Pentium M...\n\n";
    std::cout << "t(paper s)  T(C)    duty   note\n";

    bool announcedThrottle = false;
    system.addPeriodicTask("report", 2 * kTicksPerMilli, [&](Tick now) {
        const double t = ticksToSeconds(now) * kThermalScale;
        std::cout.setf(std::ios::fixed);
        std::cout.precision(1);
        std::cout << t << "\t    " << system.thermal().temperatureC()
                  << "\t  " << system.cpu().dutyCycle();
        if (system.thermal().throttled() && !announcedThrottle) {
            std::cout << "   <-- emergency throttle engaged";
            announcedThrottle = true;
        }
        std::cout << "\n";
    });

    jvm::JvmConfig cfg;
    cfg.collector = jvm::CollectorKind::GenCopy;
    cfg.heapBytes = scaledHeapBytes(ExperimentConfig{});

    const Tick horizon = secondsToTicks(horizonPaperS / kThermalScale);
    int runs = 0;
    while (system.cpu().now() < horizon) {
        jvm::Jvm vm(system, program, cfg);
        const auto r = vm.run();
        ++runs;
        if (r.outOfMemory)
            break;
    }

    std::cout << "\ncompleted " << runs << " benchmark runs; peak "
              << system.thermal().maxTemperatureC() << " C; throttled "
              << system.thermal().throttledSeconds() * kThermalScale
              << " equivalent seconds; total energy "
              << system.cpuJoules() * kThermalScale
              << " J equivalent\n";
    return 0;
}
