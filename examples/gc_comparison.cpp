/**
 * @file
 * Example: the paper's core experiment in miniature — sweep the four
 * Jikes RVM collectors over the heap range for one benchmark and print
 * the EDP matrix plus a recommendation, the way a VM engineer would use
 * javelin to choose a collector for a deployment.
 *
 * Usage: gc_comparison [benchmark]
 */

#include <iostream>
#include <string>

#include "core/energy_accounting.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace javelin;
using namespace javelin::harness;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "_209_db";
    const auto &bench = workloads::benchmark(name);

    const std::vector<jvm::CollectorKind> collectors = {
        jvm::CollectorKind::SemiSpace, jvm::CollectorKind::MarkSweep,
        jvm::CollectorKind::GenCopy, jvm::CollectorKind::GenMS};
    const std::vector<std::uint32_t> heaps(kP6HeapsMB.begin(),
                                           kP6HeapsMB.end());

    std::cout << "collector comparison for " << name
              << " (Jikes RVM on the simulated Pentium M)\n\n";

    // One task per (collector, heap) cell; the sweep runner spreads
    // them over every core and returns results in input order.
    std::vector<SweepTask> tasks;
    for (const auto collector : collectors) {
        for (const auto heap : heaps) {
            ExperimentConfig cfg;
            cfg.collector = collector;
            cfg.heapNominalMB = heap;
            tasks.push_back({cfg, bench});
        }
    }
    SweepRunner::Config rc;
    rc.progress = consoleProgress("gc comparison");
    const auto outcomes = SweepRunner(rc).run(tasks);

    std::vector<std::vector<ExperimentResult>> rows;
    double bestEdp = 1e300;
    std::string best;
    for (std::size_t c = 0; c < collectors.size(); ++c) {
        std::vector<ExperimentResult> row;
        for (std::size_t h = 0; h < heaps.size(); ++h) {
            row.push_back(outcomes[c * heaps.size() + h].result);
            const auto &r = row.back();
            if (r.ok() && r.edp() < bestEdp) {
                bestEdp = r.edp();
                best = std::string(jvm::collectorName(collectors[c])) +
                       " @ " + std::to_string(heaps[h]) + "MB";
            }
        }
        rows.push_back(std::move(row));
    }

    edpTable(rows, heaps).print(std::cout);

    std::cout << "\nper-collector detail at 32MB:\n";
    for (std::size_t c = 0; c < collectors.size(); ++c) {
        const auto &r = rows[c][0];
        std::cout << "  " << jvm::collectorName(collectors[c]) << ": ";
        if (!r.ok()) {
            std::cout << "OOM\n";
            continue;
        }
        std::cout << r.run.seconds() * 1e3 << " ms, "
                  << r.attribution.totalJoules() << " J, "
                  << r.run.gc.collections << " GCs ("
                  << r.run.gc.minorCollections << " minor), GC energy "
                  << r.attribution.energyFraction(core::ComponentId::Gc)
                         * 100 << "%\n";
    }
    std::cout << "\nbest energy-delay product: " << best << "\n";
    return 0;
}
