/**
 * @file
 * javelin-trace: inspect, export, and exercise javelin-trace-v1
 * binary trace files (core/trace_format.hh, DESIGN.md §10).
 *
 *   javelin-trace cat FILE                 decode all records as CSV
 *                                          on stdout
 *   javelin-trace index FILE               print the per-block footer
 *                                          index and recovery status
 *   javelin-trace export-csv FILE OUT.csv  decode to a CSV file
 *                                          (byte-identical to the
 *                                          in-memory writer's CSV)
 *   javelin-trace range FILE FROM TO       decode only ticks in
 *                                          [FROM, TO] as CSV, using
 *                                          the block index to skip
 *
 *   javelin-trace record [options]         synthetic spool writer for
 *                                          smoke tests and RSS checks
 *     --kind power|perf        record type (default power)
 *     --samples N              records to append (default 100000)
 *     --buffer-bytes B         spool block size (default 1 MiB)
 *     --out FILE               trace path (default trace.jtrc)
 *     --csv-oracle FILE        also keep samples in memory and write
 *                              them via the CSV writer (the
 *                              differential oracle; small N only)
 *     --crash-after-blocks K   tear the K-th block and SIGKILL
 *     --io-uring               request the io_uring backend
 *     --print-rss              print max RSS (KB) on stderr at exit
 *
 * The synthetic sample stream is a pure function of the record index,
 * so two `record` runs at any buffer size produce records that decode
 * identically — that is what the CI smoke's cmp relies on.
 *
 * Exit status: 0 ok; 2 usage or I/O errors. Structural corruption
 * fails through JAVELIN_FATAL (exit 1) like every other loader.
 */

#include <sys/resource.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/trace_io.hh"
#include "core/trace_spool.hh"
#include "util/units.hh"

using namespace javelin;
using namespace javelin::core;

namespace {

int
usage()
{
    std::cerr
        << "usage: javelin-trace cat FILE\n"
           "       javelin-trace index FILE\n"
           "       javelin-trace export-csv FILE OUT.csv\n"
           "       javelin-trace range FILE FROM_TICK TO_TICK\n"
           "       javelin-trace record [--kind power|perf]\n"
           "                            [--samples N] "
           "[--buffer-bytes B]\n"
           "                            [--out FILE] "
           "[--csv-oracle FILE]\n"
           "                            [--crash-after-blocks K]\n"
           "                            [--io-uring] [--print-rss]\n";
    return 2;
}

void
writeCsv(std::ostream &os, const TraceReader &reader,
         const PowerTrace &power, const PerfTrace &perf)
{
    if (reader.kind() == tracefmt::RecordKind::Power)
        writePowerCsv(os, power);
    else
        writePerfCsv(os, perf);
}

/** Deterministic synthetic power sample for record index i. */
PowerSample
syntheticPower(std::uint64_t i)
{
    PowerSample s;
    s.tick = (i + 1) * kTicksPerMicro;
    s.windowTicks = kTicksPerMicro;
    // Shapes chosen to exercise the full double width (non-terminating
    // binary fractions) so the CSV round-trip test is not vacuous.
    s.cpuWatts = 2.0 + static_cast<double>(i % 997) / 997.0;
    s.memWatts = 0.3 + static_cast<double>(i % 101) / 303.0;
    s.component =
        static_cast<ComponentId>(i % kNumComponents);
    return s;
}

/** Deterministic synthetic perf sample for record index i. */
PerfSample
syntheticPerf(std::uint64_t i)
{
    PerfSample s;
    s.tick = (i + 1) * kTicksPerMicro;
    s.component = static_cast<ComponentId>(i % kNumComponents);
    s.delta.cycles = 1000 + i % 400;
    s.delta.instructions = 700 + i % 350;
    s.delta.stallCycles = i % 90;
    s.delta.branches = 120 + i % 60;
    s.delta.branchMispredicts = i % 7;
    s.delta.l1iAccesses = 650 + i % 100;
    s.delta.l1iMisses = i % 11;
    s.delta.l1dAccesses = 300 + i % 200;
    s.delta.l1dMisses = i % 23;
    s.delta.l2Accesses = i % 23 + i % 11;
    s.delta.l2Misses = i % 5;
    s.delta.l2Probes = i % 3;
    s.delta.dramAccesses = i % 5;
    s.delta.dramWritebacks = i % 2;
    return s;
}

int
cmdRecord(int argc, char **argv)
{
    tracefmt::RecordKind kind = tracefmt::RecordKind::Power;
    std::uint64_t samples = 100000;
    TraceSpool::Config cfg;
    cfg.path = "trace.jtrc";
    cfg.backend = TraceSpool::backendFromEnv();
    std::string oraclePath;
    bool printRss = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--kind" && i + 1 < argc) {
            const std::string k = argv[++i];
            if (k == "power") {
                kind = tracefmt::RecordKind::Power;
            } else if (k == "perf") {
                kind = tracefmt::RecordKind::Perf;
            } else {
                std::cerr << "javelin-trace: bad --kind " << k << "\n";
                return 2;
            }
        } else if (arg == "--samples" && i + 1 < argc) {
            samples = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--buffer-bytes" && i + 1 < argc) {
            cfg.bufferBytes = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--out" && i + 1 < argc) {
            cfg.path = argv[++i];
        } else if (arg == "--csv-oracle" && i + 1 < argc) {
            oraclePath = argv[++i];
        } else if (arg == "--crash-after-blocks" && i + 1 < argc) {
            cfg.crashAfterBlocks =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--io-uring") {
            cfg.backend = TraceSpool::Backend::IoUring;
        } else if (arg == "--print-rss") {
            printRss = true;
        } else {
            return usage();
        }
    }
    cfg.kind = kind;

    // Oracle mode keeps every sample in memory (that IS the oracle);
    // plain mode must not, so the RSS check measures the spool alone.
    PowerTrace oraclePower;
    PerfTrace oraclePerf;
    {
        TraceSpool spool(cfg);
        for (std::uint64_t i = 0; i < samples; ++i) {
            if (kind == tracefmt::RecordKind::Power) {
                const PowerSample s = syntheticPower(i);
                spool.append(s);
                if (!oraclePath.empty())
                    oraclePower.push_back(s);
            } else {
                const PerfSample s = syntheticPerf(i);
                spool.append(s);
                if (!oraclePath.empty())
                    oraclePerf.push_back(s);
            }
        }
        spool.close();
        std::cerr << "javelin-trace: wrote " << spool.path() << ": "
                  << spool.recordsAppended() << " records, "
                  << spool.blocksWritten() << " blocks, "
                  << spool.bytesWritten() << " bytes"
                  << (spool.usingIoUring() ? " (io_uring)" : "")
                  << "\n";
    }

    if (!oraclePath.empty()) {
        std::ofstream out(oraclePath, std::ios::binary);
        if (!out) {
            std::cerr << "javelin-trace: cannot open " << oraclePath
                      << "\n";
            return 2;
        }
        if (kind == tracefmt::RecordKind::Power)
            writePowerCsv(out, oraclePower);
        else
            writePerfCsv(out, oraclePerf);
    }

    if (printRss) {
        struct rusage ru;
        getrusage(RUSAGE_SELF, &ru);
        std::cerr << "javelin-trace: max_rss_kb=" << ru.ru_maxrss
                  << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "record")
        return cmdRecord(argc, argv);

    if (argc < 3)
        return usage();
    const std::string path = argv[2];

    if (cmd == "cat") {
        if (argc != 3)
            return usage();
        TraceReader reader(path);
        writeCsv(std::cout, reader,
                 reader.kind() == tracefmt::RecordKind::Power
                     ? reader.readPower()
                     : PowerTrace(),
                 reader.kind() == tracefmt::RecordKind::Perf
                     ? reader.readPerf()
                     : PerfTrace());
        return 0;
    }
    if (cmd == "index") {
        if (argc != 3)
            return usage();
        TraceReader reader(path);
        std::cout << "kind: "
                  << (reader.kind() == tracefmt::RecordKind::Power
                          ? "power"
                          : "perf")
                  << "\nblocks: " << reader.blocks().size()
                  << "\nrecords: " << reader.recordCount()
                  << "\nintact_bytes: " << reader.intactBytes()
                  << "\ntorn_tail: " << (reader.torn() ? "yes" : "no")
                  << "\n";
        std::cout << "offset,records,first_tick,last_tick,"
                     "component_mask\n";
        for (const auto &b : reader.blocks())
            std::cout << b.offset << ',' << b.recordCount << ','
                      << b.firstTick << ',' << b.lastTick << ','
                      << b.componentMask << '\n';
        return 0;
    }
    if (cmd == "export-csv") {
        if (argc != 4)
            return usage();
        std::ofstream out(argv[3], std::ios::binary);
        if (!out) {
            std::cerr << "javelin-trace: cannot open " << argv[3]
                      << "\n";
            return 2;
        }
        TraceReader reader(path);
        writeCsv(out, reader,
                 reader.kind() == tracefmt::RecordKind::Power
                     ? reader.readPower()
                     : PowerTrace(),
                 reader.kind() == tracefmt::RecordKind::Perf
                     ? reader.readPerf()
                     : PerfTrace());
        std::cerr << "javelin-trace: wrote " << argv[3] << " ("
                  << reader.recordCount() << " records"
                  << (reader.torn() ? ", torn tail dropped" : "")
                  << ")\n";
        return 0;
    }
    if (cmd == "range") {
        if (argc != 5)
            return usage();
        const Tick from = std::strtoull(argv[3], nullptr, 10);
        const Tick to = std::strtoull(argv[4], nullptr, 10);
        TraceReader reader(path);
        writeCsv(std::cout, reader,
                 reader.kind() == tracefmt::RecordKind::Power
                     ? reader.readPowerRange(from, to)
                     : PowerTrace(),
                 reader.kind() == tracefmt::RecordKind::Perf
                     ? reader.readPerfRange(from, to)
                     : PerfTrace());
        return 0;
    }
    return usage();
}
