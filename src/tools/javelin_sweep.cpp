/**
 * @file
 * javelin-sweep: the single CLI frontend for declarative, resumable
 * characterization sweeps (ROADMAP item 1).
 *
 *   javelin-sweep SCENARIO.json [options]
 *   javelin-sweep --builtin fig07-edp [options]
 *
 * Options:
 *   --out FILE         write the javelin-sweep-v1 JSON report (default
 *                      stdout)
 *   --checkpoint FILE  journal per-shard completions to FILE
 *   --resume           load FILE and re-run only missing shards
 *   --jobs N           worker threads (default: JAVELIN_JOBS or all
 *                      cores)
 *   --shard i/N        run only shards with index % N == i (multi-host
 *                      partitioning; each partition needs its own
 *                      checkpoint file)
 *   --result-store F   also persist shard records into the
 *                      javelin-kv-v1 store F (query with javelin-kv;
 *                      repeated runs accumulate, last-write-wins)
 *   --builtin NAME     use a committed scenario instead of a file
 *   --print-scenario   print the canonical scenario JSON and exit
 *   --list-builtins    list builtin scenario names and exit
 *
 * A resumed run's report is byte-identical to an uninterrupted run:
 * per-shard seeds depend only on the global shard index, restored
 * payloads round-trip exactly, and the report orders shards by index.
 * The summary line "checkpoint: restored=R executed=E total=N" on
 * stderr is machine-parsed by the CI kill-and-resume smoke to prove
 * the checkpoint was actually consulted (E < N).
 *
 * Exit status: 0 all shards ok; 1 shard failures (each listed on
 * stderr with its shard key); 2 usage, scenario, or checkpoint errors.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/job_engine.hh"
#include "harness/scenario.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

int
usage()
{
    std::cerr
        << "usage: javelin-sweep SCENARIO.json [--out FILE]\n"
           "                     [--checkpoint FILE] [--resume]\n"
           "                     [--jobs N] [--shard i/N]\n"
           "                     [--result-store FILE]\n"
           "       javelin-sweep --builtin NAME [same options]\n"
           "       javelin-sweep --builtin NAME --print-scenario\n"
           "       javelin-sweep --list-builtins\n";
    return 2;
}

bool
parseShardSpec(const std::string &spec, std::size_t &index,
               std::size_t &count)
{
    const std::size_t slash = spec.find('/');
    if (slash == std::string::npos)
        return false;
    char *end = nullptr;
    index = std::strtoull(spec.c_str(), &end, 10);
    if (end != spec.c_str() + slash)
        return false;
    count = std::strtoull(spec.c_str() + slash + 1, &end, 10);
    if (*end != '\0' || count == 0 || index >= count)
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenarioPath;
    std::string builtinName;
    std::string outPath;
    JobEngine::Config cfg;
    bool printScenario = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            cfg.checkpointPath = argv[++i];
        } else if (arg == "--result-store" && i + 1 < argc) {
            cfg.resultStorePath = argv[++i];
        } else if (arg == "--resume") {
            cfg.resume = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            cfg.jobs =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr,
                                                   10));
        } else if (arg == "--shard" && i + 1 < argc) {
            if (!parseShardSpec(argv[++i], cfg.shardIndex,
                                cfg.shardCount)) {
                std::cerr << "javelin-sweep: bad --shard spec (want "
                             "i/N with i < N)\n";
                return 2;
            }
        } else if (arg == "--builtin" && i + 1 < argc) {
            builtinName = argv[++i];
        } else if (arg == "--print-scenario") {
            printScenario = true;
        } else if (arg == "--list-builtins") {
            for (const auto &name : builtinScenarioNames())
                std::cout << name << "\n";
            return 0;
        } else if (!arg.empty() && arg[0] != '-' &&
                   scenarioPath.empty()) {
            scenarioPath = arg;
        } else {
            return usage();
        }
    }
    if (scenarioPath.empty() == builtinName.empty())
        return usage();

    Scenario scenario;
    try {
        scenario = builtinName.empty()
                       ? parseScenarioFile(scenarioPath)
                       : builtinScenario(builtinName);
    } catch (const ScenarioError &e) {
        std::cerr << "javelin-sweep: " << e.what() << "\n";
        return 2;
    }

    if (printScenario) {
        writeScenario(std::cout, scenario);
        return 0;
    }

    const std::string hash = scenarioHash(scenario);
    const auto tasks = expandScenario(scenario);
    std::cerr << "javelin-sweep: " << scenario.name << ": "
              << tasks.size() << " shards (scenario hash " << hash
              << ")\n";

    cfg.progress = consoleProgress("javelin-sweep");
    JobReport report;
    try {
        report = JobEngine(cfg).run(tasks, scenario.name, hash);
    } catch (const JobEngineError &e) {
        std::cerr << "javelin-sweep: " << e.what() << "\n";
        return 2;
    }

    std::cerr << "javelin-sweep: checkpoint: restored="
              << report.restored << " executed=" << report.executed
              << " total=" << report.shardCount << "\n";
    for (const auto &rec : report.records)
        if (!rec.ok)
            std::cerr << "javelin-sweep: shard " << rec.shard << " ["
                      << rec.key << "] failed: " << rec.error << "\n";

    if (outPath.empty()) {
        writeJobReport(std::cout, report);
    } else {
        std::ofstream out(outPath, std::ios::binary);
        if (!out) {
            std::cerr << "javelin-sweep: cannot open " << outPath
                      << "\n";
            return 2;
        }
        writeJobReport(out, report);
        std::cerr << "javelin-sweep: wrote " << outPath << "\n";
    }
    return report.failures() > 0 || report.aborted ? 1 : 0;
}
