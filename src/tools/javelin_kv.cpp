/**
 * @file
 * javelin-kv: command-line frontend for javelin-kv-v1 stores
 * (util/kv_store.hh) — the batched result store that holds sweep
 * shard records, golden-run captures, and bench history.
 *
 *   javelin-kv put STORE KEY VALUE     store a literal value
 *   javelin-kv put STORE KEY @FILE     store FILE's contents
 *   javelin-kv put STORE KEY -         store stdin
 *   javelin-kv get STORE KEY           print the value to stdout
 *   javelin-kv keys STORE              list keys, one per line
 *   javelin-kv stat STORE              key and page counts
 *   javelin-kv compact STORE           reclaim shadowed pages
 *
 * Exit status: 0 ok; 1 key not found (get); 2 usage, I/O, or
 * corruption errors (corruption text names the bad page).
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/kv_store.hh"

using namespace javelin;

namespace {

int
usage()
{
    std::cerr << "usage: javelin-kv put STORE KEY (VALUE | @FILE | -)\n"
                 "       javelin-kv get STORE KEY\n"
                 "       javelin-kv keys STORE\n"
                 "       javelin-kv stat STORE\n"
                 "       javelin-kv compact STORE\n";
    return 2;
}

/** Resolve a put value operand: literal, @FILE, or - for stdin. */
bool
readValueOperand(const std::string &operand, std::string &value)
{
    if (operand == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        value = buf.str();
        return true;
    }
    if (!operand.empty() && operand[0] == '@') {
        std::ifstream in(operand.substr(1), std::ios::binary);
        if (!in) {
            std::cerr << "javelin-kv: cannot open " << operand.substr(1)
                      << "\n";
            return false;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        value = buf.str();
        return true;
    }
    value = operand;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string storePath = argv[2];

    try {
        if (cmd == "put") {
            if (argc != 5)
                return usage();
            std::string value;
            if (!readValueOperand(argv[4], value))
                return 2;
            KvStore store(storePath);
            store.put(argv[3], value);
            const std::size_t writes = store.flush();
            store.close();
            std::cerr << "javelin-kv: " << storePath << ": put "
                      << argv[3] << " (" << value.size() << " bytes, "
                      << writes << " page writes)\n";
            return 0;
        }
        if (cmd == "get") {
            if (argc != 4)
                return usage();
            KvStore store(storePath);
            const auto value = store.get(argv[3]);
            if (!value) {
                std::cerr << "javelin-kv: " << storePath << ": no key "
                          << argv[3] << "\n";
                return 1;
            }
            std::cout << *value;
            return 0;
        }
        if (cmd == "keys") {
            if (argc != 3)
                return usage();
            KvStore store(storePath);
            for (const auto &key : store.keys())
                std::cout << key << "\n";
            return 0;
        }
        if (cmd == "stat") {
            if (argc != 3)
                return usage();
            KvStore store(storePath);
            std::cout << "path: " << store.path() << "\n"
                      << "keys: " << store.keys().size() << "\n"
                      << "pages: " << store.pageCount() << "\n"
                      << "bytes: "
                      << 32 + store.pageCount() * KvStore::kPageBytes
                      << "\n";
            return 0;
        }
        if (cmd == "compact") {
            if (argc != 3)
                return usage();
            KvStore store(storePath);
            const std::size_t before = store.pageCount();
            store.compact();
            std::cerr << "javelin-kv: " << storePath << ": " << before
                      << " -> " << store.pageCount() << " pages\n";
            store.close();
            return 0;
        }
    } catch (const KvError &e) {
        std::cerr << "javelin-kv: " << e.what() << "\n";
        return 2;
    }
    return usage();
}
