#include "workloads/service.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace javelin {
namespace workloads {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "Poisson";
      case ArrivalKind::Bursty:
        return "Bursty";
      case ArrivalKind::Diurnal:
        return "Diurnal";
    }
    JAVELIN_PANIC("bad arrival kind");
}

bool
parseArrivalKind(const std::string &name, ArrivalKind *out)
{
    if (name == "Poisson")
        *out = ArrivalKind::Poisson;
    else if (name == "Bursty")
        *out = ArrivalKind::Bursty;
    else if (name == "Diurnal")
        *out = ArrivalKind::Diurnal;
    else
        return false;
    return true;
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config,
                               std::uint64_t seed)
    : config_(config), rng_(seed)
{
    JAVELIN_ASSERT(config_.ratePerSec > 0.0,
                   "arrival rate must be positive");
    switch (config_.kind) {
      case ArrivalKind::Poisson:
        peakRate_ = config_.ratePerSec;
        break;
      case ArrivalKind::Bursty:
        peakRate_ = config_.ratePerSec *
                    std::max(1.0, config_.burstFactor);
        break;
      case ArrivalKind::Diurnal:
        peakRate_ = config_.ratePerSec *
                    (1.0 + std::min(config_.diurnalAmplitude, 0.999));
        break;
    }
}

double
ArrivalProcess::rateAt(double t_sec) const
{
    const double rate = config_.ratePerSec;
    switch (config_.kind) {
      case ArrivalKind::Poisson:
        return rate;
      case ArrivalKind::Bursty: {
        // Square wave, mean rate preserved: the on-phase runs at
        // burstFactor * rate for burstFraction of the cycle, the
        // off-phase absorbs the remainder (floored at a trickle so the
        // thinning loop always terminates).
        const double f = std::clamp(config_.burstFraction, 0.01, 0.99);
        const double bf = std::max(1.0, config_.burstFactor);
        const double phase =
            std::fmod(t_sec, config_.cyclePeriodSec) /
            config_.cyclePeriodSec;
        if (phase < f)
            return rate * bf;
        return std::max(rate * (1.0 - f * bf) / (1.0 - f),
                        rate * 1e-3);
      }
      case ArrivalKind::Diurnal: {
        const double a = std::min(config_.diurnalAmplitude, 0.999);
        const double w = 2.0 * 3.14159265358979323846 /
                         config_.cyclePeriodSec;
        return rate * (1.0 + a * std::sin(w * t_sec));
      }
    }
    JAVELIN_PANIC("bad arrival kind");
}

Tick
ArrivalProcess::next()
{
    // Lewis-Shedler thinning: candidate gaps at the peak rate, each
    // accepted with probability rate(t)/peak. Both draws happen on
    // every candidate so the stream's consumption pattern is fixed.
    for (;;) {
        tSec_ += rng_.exponential(1.0 / peakRate_);
        const double accept = rateAt(tSec_) / peakRate_;
        if (rng_.uniform() < accept) {
            // Floor at one tick of progress so the timeline is
            // strictly increasing even at absurd rates.
            const Tick t = secondsToTicks(tSec_);
            lastTick_ = std::max(t, lastTick_ + 1);
            return lastTick_;
        }
    }
}

} // namespace workloads
} // namespace javelin
