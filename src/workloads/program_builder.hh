/**
 * @file
 * Turns a BenchmarkProfile into an executable javelin Program.
 *
 * The emitted program has the canonical shape of the paper's workloads:
 * an initialization phase that builds the long-lived data structures
 * (loading classes as it goes), then a steady-state loop that allocates
 * short- and long-lived objects and arrays, runs compute kernels over a
 * scratch working set, traverses the long-lived structure (the
 * locality-sensitive phase), calls cold methods through a dispatch tree
 * (driving class loading and baseline compilation), and performs native
 * work. Allocation volume, lifetimes, compute mix and class population
 * all come from the profile; the program is deterministic given the
 * profile seed, and its entry method returns a checksum that is
 * invariant across VM configurations (used by differential tests).
 */

#ifndef JAVELIN_WORKLOADS_PROGRAM_BUILDER_HH
#define JAVELIN_WORKLOADS_PROGRAM_BUILDER_HH

#include "jvm/program.hh"
#include "workloads/profile.hh"

namespace javelin {
namespace workloads {

/**
 * Static facts about a built program (for tests and reports).
 */
struct BuildInfo
{
    std::uint64_t plannedAllocBytes = 0;
    std::uint64_t liveBytes = 0;
    std::uint32_t iterations = 0;
    std::uint32_t longEntries = 0;
    std::uint32_t segmentSlots = 0;
};

/**
 * Build a program from a profile at the given scale.
 *
 * @param profile the benchmark description
 * @param scale global study scale (volume + dataset multipliers)
 * @param info optional out-parameter with sizing facts
 */
jvm::Program buildProgram(const BenchmarkProfile &profile,
                          const StudyScale &scale,
                          BuildInfo *info = nullptr);

} // namespace workloads
} // namespace javelin

#endif // JAVELIN_WORKLOADS_PROGRAM_BUILDER_HH
