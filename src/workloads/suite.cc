#include "workloads/suite.hh"

#include "util/logging.hh"

namespace javelin {
namespace workloads {

namespace {

/**
 * Profile calibration notes. Volumes are paper-scale megabytes; the
 * study scale (DESIGN.md §2) divides them by 16 at build time. Values
 * are chosen to reproduce the paper's per-benchmark statements:
 * _213_javac GC-bound at 32 MB (up to 60% JVM energy), _222_mpegaudio
 * compute-bound with the largest optimizing-compiler share, _209_db
 * dominated by scans of a long-lived database (locality-sensitive),
 * fop class-loader-heavy (24% CL), DaCapo live sets that do not fit
 * the copying collectors at 32 MB (the paper starts DaCapo at 48 MB),
 * and JGF kernels that are mostly floating-point compute over arrays.
 */
std::vector<BenchmarkProfile>
makeProfiles()
{
    std::vector<BenchmarkProfile> v;
    auto add = [&](BenchmarkProfile p) { v.push_back(std::move(p)); };

    // ---- SpecJVM98 (-s100) ----
    {
        BenchmarkProfile p;
        p.name = "_201_compress";
        p.suite = "SpecJVM98";
        p.allocMB = 105;
        p.liveMB = 7;
        p.meanObjBytes = 128;
        p.arrayFraction = 0.70;
        p.meanArrayLen = 1024;
        p.shortFraction = 0.80;
        p.linkedFraction = 0.0;
        p.computePerIterK = 18;
        p.fpFraction = 0.05;
        p.scratchKB = 96;
        p.traversePerIterK = 0;
        p.appClasses = 12;
        p.bootClasses = 140;
        p.coldMethods = 40;
        p.coldCallsPerIter = 1;
        p.classMetadataBytes = 1200;
        p.nativeUopsPerIter = 700;
        p.seed = 201;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "_202_jess";
        p.suite = "SpecJVM98";
        p.allocMB = 260;
        p.liveMB = 4;
        p.meanObjBytes = 48;
        p.arrayFraction = 0.05;
        p.shortFraction = 0.85;
        p.linkedFraction = 0.08;
        p.computePerIterK = 5;
        p.fpFraction = 0.05;
        p.scratchKB = 24;
        p.traversePerIterK = 1;
        p.appClasses = 28;
        p.bootClasses = 150;
        p.coldMethods = 120;
        p.coldCallsPerIter = 2;
        p.seed = 202;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "_209_db";
        p.suite = "SpecJVM98";
        p.allocMB = 80;
        p.liveMB = 9;
        p.meanObjBytes = 56;
        p.arrayFraction = 0.10;
        p.shortFraction = 0.40;
        p.linkedFraction = 0.05;
        p.computePerIterK = 3;
        p.fpFraction = 0.0;
        p.scratchKB = 16;
        p.traversePerIterK = 7; // heavy scans of the resident database
        p.appClasses = 10;
        p.bootClasses = 130;
        p.coldMethods = 30;
        p.coldCallsPerIter = 1;
        p.seed = 209;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "_213_javac";
        p.suite = "SpecJVM98";
        p.allocMB = 260;
        p.liveMB = 8;
        p.meanObjBytes = 64;
        p.arrayFraction = 0.12;
        p.shortFraction = 0.72;
        p.linkedFraction = 0.16;
        p.listResetIters = 6;
        p.computePerIterK = 4;
        p.fpFraction = 0.0;
        p.scratchKB = 32;
        p.traversePerIterK = 0;
        p.appClasses = 48;
        p.bootClasses = 170;
        p.coldMethods = 200;
        p.coldCallsPerIter = 3;
        p.classMetadataBytes = 1800;
        p.seed = 213;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "_222_mpegaudio";
        p.suite = "SpecJVM98";
        p.allocMB = 5;
        p.liveMB = 2;
        p.meanObjBytes = 72;
        p.arrayFraction = 0.50;
        p.meanArrayLen = 512;
        p.shortFraction = 0.90;
        p.linkedFraction = 0.0;
        p.computePerIterK = 30;
        p.fpFraction = 0.80;
        p.scratchKB = 12; // L1-resident decode tables
        p.traversePerIterK = 0;
        p.appClasses = 14;
        p.bootClasses = 130;
        p.coldMethods = 30;
        p.coldCallsPerIter = 1;
        p.nativeUopsPerIter = 1500;
        p.nativeBytesPerIter = 2048;
        p.seed = 222;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "_227_mtrt";
        p.suite = "SpecJVM98";
        p.allocMB = 145;
        p.liveMB = 6;
        p.meanObjBytes = 40;
        p.arrayFraction = 0.15;
        p.shortFraction = 0.85;
        p.linkedFraction = 0.05;
        p.computePerIterK = 9;
        p.fpFraction = 0.75;
        p.scratchKB = 24;
        p.traversePerIterK = 1;
        p.appClasses = 20;
        p.bootClasses = 140;
        p.coldMethods = 60;
        p.coldCallsPerIter = 2;
        p.seed = 227;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "_228_jack";
        p.suite = "SpecJVM98";
        p.allocMB = 230;
        p.liveMB = 4;
        p.meanObjBytes = 48;
        p.arrayFraction = 0.20;
        p.shortFraction = 0.85;
        p.linkedFraction = 0.08;
        p.computePerIterK = 4;
        p.fpFraction = 0.0;
        p.scratchKB = 20;
        p.traversePerIterK = 0;
        p.appClasses = 32;
        p.bootClasses = 150;
        p.coldMethods = 160;
        p.coldCallsPerIter = 3;
        p.seed = 228;
        add(p);
    }

    // ---- DaCapo (default inputs). Live sets are sized so the copying
    // collectors cannot run them in a 32 MB heap — the reason the paper
    // reports DaCapo from 48 MB up. ----
    {
        BenchmarkProfile p;
        p.name = "antlr";
        p.suite = "DaCapo";
        p.allocMB = 250;
        p.liveMB = 13;
        p.meanObjBytes = 56;
        p.arrayFraction = 0.10;
        p.shortFraction = 0.80;
        p.linkedFraction = 0.10;
        p.computePerIterK = 5;
        p.fpFraction = 0.0;
        p.scratchKB = 24;
        p.traversePerIterK = 1;
        p.appClasses = 40;
        p.bootClasses = 180;
        p.coldMethods = 260;
        p.coldCallsPerIter = 3;
        p.classMetadataBytes = 2000;
        p.seed = 301;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "fop";
        p.suite = "DaCapo";
        p.allocMB = 120;
        p.liveMB = 12;
        p.meanObjBytes = 72;
        p.arrayFraction = 0.12;
        p.shortFraction = 0.75;
        p.linkedFraction = 0.10;
        p.computePerIterK = 4;
        p.fpFraction = 0.10;
        p.scratchKB = 24;
        p.traversePerIterK = 1;
        p.appClasses = 64;
        p.bootClasses = 220;
        p.coldMethods = 640; // the class-loader-heavy benchmark (24% CL)
        p.coldCallsPerIter = 7;
        p.classMetadataBytes = 2600;
        p.cpEntries = 40;
        p.seed = 302;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "jython";
        p.suite = "DaCapo";
        p.allocMB = 360;
        p.liveMB = 12;
        p.meanObjBytes = 48;
        p.arrayFraction = 0.08;
        p.shortFraction = 0.85;
        p.linkedFraction = 0.08;
        p.computePerIterK = 4;
        p.fpFraction = 0.0;
        p.scratchKB = 24;
        p.traversePerIterK = 1;
        p.appClasses = 48;
        p.bootClasses = 200;
        p.coldMethods = 400;
        p.coldCallsPerIter = 4;
        p.classMetadataBytes = 2000;
        p.seed = 303;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "pmd";
        p.suite = "DaCapo";
        p.allocMB = 290;
        p.liveMB = 14;
        p.meanObjBytes = 52;
        p.arrayFraction = 0.08;
        p.shortFraction = 0.70;
        p.linkedFraction = 0.20;
        p.listResetIters = 10;
        p.computePerIterK = 4;
        p.fpFraction = 0.0;
        p.scratchKB = 24;
        p.traversePerIterK = 2;
        p.appClasses = 44;
        p.bootClasses = 190;
        p.coldMethods = 300;
        p.coldCallsPerIter = 3;
        p.seed = 304;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "ps";
        p.suite = "DaCapo";
        p.allocMB = 180;
        p.liveMB = 11;
        p.meanObjBytes = 60;
        p.arrayFraction = 0.25;
        p.shortFraction = 0.85;
        p.linkedFraction = 0.05;
        p.computePerIterK = 8;
        p.fpFraction = 0.25;
        p.scratchKB = 48;
        p.traversePerIterK = 1;
        p.appClasses = 30;
        p.bootClasses = 170;
        p.coldMethods = 120;
        p.coldCallsPerIter = 2;
        p.seed = 305;
        add(p);
    }

    // ---- Java Grande Forum (size A) ----
    {
        BenchmarkProfile p;
        p.name = "euler";
        p.suite = "JGF";
        p.allocMB = 140;
        p.liveMB = 10;
        p.meanObjBytes = 96;
        p.arrayFraction = 0.70;
        p.meanArrayLen = 1024;
        p.shortFraction = 0.60;
        p.linkedFraction = 0.0;
        p.computePerIterK = 18;
        p.fpFraction = 0.85;
        p.scratchKB = 128;
        p.traversePerIterK = 1;
        p.appClasses = 10;
        p.bootClasses = 110;
        p.coldMethods = 24;
        p.coldCallsPerIter = 1;
        p.seed = 401;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "moldyn";
        p.suite = "JGF";
        p.allocMB = 14;
        p.liveMB = 3;
        p.meanObjBytes = 64;
        p.arrayFraction = 0.60;
        p.meanArrayLen = 512;
        p.shortFraction = 0.80;
        p.linkedFraction = 0.0;
        p.computePerIterK = 32;
        p.fpFraction = 0.90;
        p.scratchKB = 48;
        p.traversePerIterK = 0;
        p.appClasses = 8;
        p.bootClasses = 100;
        p.coldMethods = 20;
        p.coldCallsPerIter = 1;
        p.seed = 402;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "raytracer";
        p.suite = "JGF";
        p.allocMB = 150;
        p.liveMB = 5;
        p.meanObjBytes = 40;
        p.arrayFraction = 0.10;
        p.shortFraction = 0.90;
        p.linkedFraction = 0.02;
        p.computePerIterK = 14;
        p.fpFraction = 0.85;
        p.scratchKB = 16;
        p.traversePerIterK = 0;
        p.appClasses = 12;
        p.bootClasses = 100;
        p.coldMethods = 24;
        p.coldCallsPerIter = 1;
        p.seed = 403;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "search";
        p.suite = "JGF";
        p.allocMB = 30;
        p.liveMB = 3;
        p.meanObjBytes = 32;
        p.arrayFraction = 0.10;
        p.shortFraction = 0.90;
        p.linkedFraction = 0.05;
        p.computePerIterK = 12;
        p.fpFraction = 0.05;
        p.scratchKB = 16;
        p.traversePerIterK = 0;
        p.appClasses = 8;
        p.bootClasses = 100;
        p.coldMethods = 20;
        p.coldCallsPerIter = 1;
        p.seed = 404;
        add(p);
    }

    return v;
}

/**
 * Synthetic (non-paper) profiles: resolvable through benchmark() for
 * tests and micro-benchmarks, but deliberately excluded from
 * allBenchmarks() so the paper matrices (fig drivers, the fig07-edp
 * builtin scenario and its pinned fixtures) keep exactly the sixteen
 * paper benchmarks.
 */
std::vector<BenchmarkProfile>
makeSyntheticProfiles()
{
    std::vector<BenchmarkProfile> v;
    {
        // Call-density stress: jess-like allocation at a fraction of
        // the compute, with a deep helper chain, per-iteration
        // recursion and many cold calls through the dispatch tree, so
        // Call/Ret dominate the bytecode stream (frames turn over
        // every ~5-10 bytecodes). The allocation volume is kept small
        // enough that the alloc loops do not drown out the call
        // machinery this benchmark exists to stress. Drives
        // BM_EndToEndCallHeavy and the call-heavy golden run.
        BenchmarkProfile p;
        p.name = "call_heavy";
        p.suite = "Synthetic";
        p.allocMB = 240;
        p.liveMB = 4;
        p.meanObjBytes = 48;
        p.arrayFraction = 0.05;
        p.shortFraction = 0.85;
        p.linkedFraction = 0.05;
        p.computePerIterK = 1;
        p.fpFraction = 0.05;
        p.scratchKB = 16;
        p.traversePerIterK = 0;
        p.appClasses = 28;
        p.bootClasses = 150;
        p.coldMethods = 160;
        p.coldCallsPerIter = 12;
        p.callChainDepth = 160;
        p.chainInvokesPerIter = 6;
        p.recurseDepth = 200;
        p.nativeUopsPerIter = 200;
        p.seed = 555;
        v.push_back(std::move(p));
    }
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
allBenchmarks()
{
    static const std::vector<BenchmarkProfile> profiles = makeProfiles();
    return profiles;
}

const std::vector<BenchmarkProfile> &
syntheticBenchmarks()
{
    static const std::vector<BenchmarkProfile> profiles =
        makeSyntheticProfiles();
    return profiles;
}

const BenchmarkProfile &
benchmark(const std::string &name)
{
    for (const auto &p : allBenchmarks())
        if (p.name == name)
            return p;
    for (const auto &p : syntheticBenchmarks())
        if (p.name == name)
            return p;
    JAVELIN_FATAL("unknown benchmark: ", name);
}

std::vector<BenchmarkProfile>
suiteBenchmarks(const std::string &suite)
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : allBenchmarks())
        if (p.suite == suite)
            out.push_back(p);
    return out;
}

std::vector<BenchmarkProfile>
embeddedBenchmarks()
{
    // Section VI-E: _201_compress, _202_jess, _209_db, _213_javac,
    // _228_jack at -s10.
    return {benchmark("_201_compress"), benchmark("_202_jess"),
            benchmark("_209_db"), benchmark("_213_javac"),
            benchmark("_228_jack")};
}

} // namespace workloads
} // namespace javelin
