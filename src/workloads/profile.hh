/**
 * @file
 * Benchmark profiles: the knobs that shape one synthetic workload.
 *
 * Each paper benchmark (SpecJVM98, DaCapo, Java Grande) is represented
 * by a profile giving its allocation volume, live-set size, object-size
 * mix, lifetime distribution, compute intensity and class/method
 * population. Volumes are expressed at the paper's own scale (megabytes
 * on the real machines); the program builder applies the global study
 * scale (see DESIGN.md section 2) when emitting bytecode.
 */

#ifndef JAVELIN_WORKLOADS_PROFILE_HH
#define JAVELIN_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>

namespace javelin {
namespace workloads {

/** Input-size selector (SpecJVM98 -s100 vs -s10, etc.). */
enum class DatasetScale
{
    Full,  ///< s100 / default DaCapo / JGF size A
    Small, ///< s10 (used for the PXA255 study, Section VI-E)
};

/**
 * Parameters describing one benchmark at paper scale.
 */
struct BenchmarkProfile
{
    std::string name;
    std::string suite;

    /** Total bytes allocated over the run (paper-scale MB). */
    double allocMB = 100.0;
    /** Steady-state live set (paper-scale MB). */
    double liveMB = 6.0;

    /** Mean non-array object size in bytes (header included). */
    std::uint32_t meanObjBytes = 64;
    /** Fraction of allocated bytes that are scalar arrays. */
    double arrayFraction = 0.15;
    /** Mean scalar-array length (elements). */
    std::uint32_t meanArrayLen = 128;

    /** Of non-array objects: fraction that die young (short buffer). */
    double shortFraction = 0.70;
    /** Fraction allocated into the linked structure (drops en masse). */
    double linkedFraction = 0.10;
    /** Linked list dropped every this many iterations. */
    std::uint32_t listResetIters = 8;

    /** ALU work per iteration, in thousands of operations. */
    std::uint32_t computePerIterK = 8;
    /** Fraction of ALU work that is floating point. */
    double fpFraction = 0.2;
    /** Compute working set in KiB (absolute; cache-relative). */
    std::uint32_t scratchKB = 64;
    /** Long-structure traversal reads per iteration, in thousands. */
    std::uint32_t traversePerIterK = 1;

    /** Application classes (allocation sites spread across them). */
    std::uint32_t appClasses = 24;
    /** Boot/system classes (free on Jikes, lazy-loaded on Kaffe). */
    std::uint32_t bootClasses = 160;
    /** Cold methods reached through the dispatch tree. */
    std::uint32_t coldMethods = 96;
    /** Cold calls per iteration. */
    std::uint32_t coldCallsPerIter = 2;
    /** Depth of the straight per-iteration call chain (0 = none):
     *  models deeply nested helper calls a few bytecodes apart. */
    std::uint32_t callChainDepth = 0;
    /** Times the chain is descended per iteration (ignored when
     *  callChainDepth is 0); lets call-density profiles outweigh
     *  their allocation and compute work. */
    std::uint32_t chainInvokesPerIter = 1;
    /** Per-iteration self-recursion depth (0 = none). */
    std::uint32_t recurseDepth = 0;
    /** Metadata walked per class load (bytes). */
    std::uint32_t classMetadataBytes = 1400;
    /** Constant-pool entries per class. */
    std::uint32_t cpEntries = 28;

    /** Native-kernel micro-ops per iteration (I/O, libc work). */
    std::uint32_t nativeUopsPerIter = 400;
    /** Native-kernel bytes streamed per iteration. */
    std::uint32_t nativeBytesPerIter = 512;

    std::uint64_t seed = 1;
};

/**
 * Global scaling applied when turning a profile into a program.
 */
struct StudyScale
{
    /** Multiplier on allocation volume and live set (see DESIGN.md). */
    double volume = 1.0 / 16.0;
    /** Additional dataset multiplier (s10 shrinks work and data). */
    double dataset = 1.0;

    double
    effectiveVolume() const
    {
        return volume * dataset;
    }
};

/** StudyScale for a dataset selector at the repo's standard scale. */
StudyScale studyScaleFor(DatasetScale dataset);

} // namespace workloads
} // namespace javelin

#endif // JAVELIN_WORKLOADS_PROFILE_HH
