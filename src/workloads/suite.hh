/**
 * @file
 * Registry of the paper's benchmark selection (Fig. 5): seven SpecJVM98
 * applications, five DaCapo applications, and four Java Grande Forum
 * kernels, each as a calibrated BenchmarkProfile.
 */

#ifndef JAVELIN_WORKLOADS_SUITE_HH
#define JAVELIN_WORKLOADS_SUITE_HH

#include <vector>

#include "workloads/profile.hh"

namespace javelin {
namespace workloads {

/** All benchmarks, in paper order. */
const std::vector<BenchmarkProfile> &allBenchmarks();

/** Look up one benchmark by name; fatal if unknown. */
const BenchmarkProfile &benchmark(const std::string &name);

/** Benchmarks belonging to one suite ("SpecJVM98", "DaCapo", "JGF"). */
std::vector<BenchmarkProfile> suiteBenchmarks(const std::string &suite);

/** The five SpecJVM98 benchmarks used in the PXA255 study (VI-E). */
std::vector<BenchmarkProfile> embeddedBenchmarks();

} // namespace workloads
} // namespace javelin

#endif // JAVELIN_WORKLOADS_SUITE_HH
