/**
 * @file
 * Registry of the paper's benchmark selection (Fig. 5): seven SpecJVM98
 * applications, five DaCapo applications, and four Java Grande Forum
 * kernels, each as a calibrated BenchmarkProfile.
 */

#ifndef JAVELIN_WORKLOADS_SUITE_HH
#define JAVELIN_WORKLOADS_SUITE_HH

#include <vector>

#include "workloads/profile.hh"

namespace javelin {
namespace workloads {

/** All paper benchmarks, in paper order. */
const std::vector<BenchmarkProfile> &allBenchmarks();

/** Synthetic stress profiles (e.g. "call_heavy"): resolvable via
 *  benchmark() but excluded from the paper matrices above. */
const std::vector<BenchmarkProfile> &syntheticBenchmarks();

/** Look up one benchmark (paper or synthetic) by name; fatal if
 *  unknown. */
const BenchmarkProfile &benchmark(const std::string &name);

/** Benchmarks belonging to one suite ("SpecJVM98", "DaCapo", "JGF"). */
std::vector<BenchmarkProfile> suiteBenchmarks(const std::string &suite);

/** The five SpecJVM98 benchmarks used in the PXA255 study (VI-E). */
std::vector<BenchmarkProfile> embeddedBenchmarks();

} // namespace workloads
} // namespace javelin

#endif // JAVELIN_WORKLOADS_SUITE_HH
