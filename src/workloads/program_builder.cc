#include "workloads/program_builder.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "jvm/method_builder.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace javelin {
namespace workloads {

using jvm::ClassId;
using jvm::ClassInfo;
using jvm::MethodBuilder;
using jvm::MethodId;
using jvm::Op;
using jvm::Program;

namespace {

/** Static slot assignments. */
enum StaticSlot : std::int32_t
{
    kLongRoot = 0,   ///< ref-array of long-lived segments
    kShortBuf = 1,   ///< ring buffer of short-lived objects
    kScratchRoot = 2,///< ref-array of scalar scratch segments
    kListHead = 3,   ///< head of the linked structure
    kArrayBuf = 4,   ///< ring buffer of transient scalar arrays
    kCounters = 5,   ///< cursor/counter object
    kNumStatics = 8,
};

/** Field indices on the counter object (scalar fields). */
enum CounterField : std::int32_t
{
    kCtrTraverseSeg = 0,
    kCtrTraverseSlot = 1,
    kCtrShortIdx = 2,
    kCtrArrayIdx = 3,
    kCtrComputePos = 4,
};

/**
 * All derived sizing for one build.
 */
struct Plan
{
    // class ids
    ClassId firstApp, firstCold, refArrayCls, scalarArrayCls, counterCls;
    std::uint32_t appClasses, coldClasses;

    std::uint32_t segmentSlots = 512;
    std::uint32_t longSegments = 0;
    std::uint32_t longEntries = 0;
    std::uint32_t scratchSegments = 0;
    std::uint32_t scratchSlots = 512;
    std::uint32_t shortEntries = 768;
    std::uint32_t arrayRing = 12;

    std::uint32_t iterations = 0;
    std::uint32_t shortPerIter = 0;
    std::uint32_t longPerIter = 0;
    std::uint32_t linkedPerIter = 0;
    std::uint32_t arraysPerIter = 0;
    std::uint32_t arrayLen = 128;
    std::uint32_t computeElemsPerIter = 0;
    std::uint32_t traversePerIter = 0;

    std::uint64_t liveBytes = 0;
    std::uint64_t allocBytes = 0;

    /** Classes used for the long-lived population (prefill+replace). */
    std::array<ClassId, 4> longClasses{};
};

Plan
makePlan(const BenchmarkProfile &p, const StudyScale &scale)
{
    Plan plan;
    const double v = scale.effectiveVolume();

    plan.appClasses = std::max<std::uint32_t>(4, p.appClasses);
    plan.coldClasses = std::max<std::uint32_t>(1, p.coldMethods);

    plan.liveBytes = static_cast<std::uint64_t>(p.liveMB * kMiB * v);
    plan.allocBytes = static_cast<std::uint64_t>(p.allocMB * kMiB * v);
    plan.allocBytes = std::max(plan.allocBytes, plan.liveBytes * 5 / 4);

    // Long-lived population, segmented so every object fits a
    // mark-sweep cell. Reserve ~15% of the live budget for segment
    // spines, scratch and the counter object.
    const std::uint64_t population = plan.liveBytes * 85 / 100;
    plan.longEntries = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        plan.segmentSlots, population / p.meanObjBytes));
    plan.longSegments =
        (plan.longEntries + plan.segmentSlots - 1) / plan.segmentSlots;
    plan.longEntries = plan.longSegments * plan.segmentSlots;

    plan.scratchSegments = std::max<std::uint32_t>(
        1, p.scratchKB * 1024 / (plan.scratchSlots * 8));

    // Steady-state allocation happens over the iterations.
    const std::uint64_t steady =
        plan.allocBytes > plan.liveBytes
            ? plan.allocBytes - plan.liveBytes
            : plan.allocBytes / 5;
    plan.iterations = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        steady / (24 * 1024), 48, 4000));

    const double perIter =
        static_cast<double>(steady) / plan.iterations;
    const double arrayBytes = perIter * p.arrayFraction;
    plan.arrayLen = std::clamp<std::uint32_t>(p.meanArrayLen, 16, 1792);
    const double bytesPerArray = plan.arrayLen * 8.0 + 16.0;
    plan.arraysPerIter = static_cast<std::uint32_t>(
        std::max(p.arrayFraction > 0 ? 1.0 : 0.0,
                 arrayBytes / bytesPerArray));
    plan.arrayRing = std::max<std::uint32_t>(4, plan.arraysPerIter * 6);

    const double objBytes = perIter - plan.arraysPerIter * bytesPerArray;
    const std::uint32_t objsPerIter = static_cast<std::uint32_t>(
        std::max(4.0, objBytes / p.meanObjBytes));
    plan.shortPerIter = static_cast<std::uint32_t>(
        objsPerIter * p.shortFraction);
    plan.linkedPerIter = static_cast<std::uint32_t>(
        objsPerIter * p.linkedFraction);
    std::uint32_t rest = objsPerIter - plan.shortPerIter -
                         plan.linkedPerIter;
    // Keep genuine long-lived replacement to a realistic sliver of the
    // allocation stream (real nursery survival is 5-15% by bytes); the
    // rest of the remainder dies young with the shorts.
    plan.longPerIter = std::max<std::uint32_t>(1, rest * 2 / 5);
    plan.shortPerIter += rest - plan.longPerIter;

    // Compute and traversal intensity (profile gives thousands per
    // iteration; roughly three ALU ops are charged per element).
    plan.computeElemsPerIter =
        std::max<std::uint32_t>(16, p.computePerIterK * 1000 / 3);
    plan.traversePerIter =
        std::max<std::uint32_t>(0, p.traversePerIterK * 1000);
    return plan;
}

/**
 * Emits the whole program.
 */
class Builder
{
  public:
    Builder(const BenchmarkProfile &p, const StudyScale &scale)
        : p_(p), plan_(makePlan(p, scale)), rng_(p.seed)
    {
    }

    Program
    build(BuildInfo *info)
    {
        program_.name = p_.name;
        program_.numStatics = kNumStatics;
        program_.randSeed = p_.seed * 2654435761u + 1;
        program_.bootClassCount = p_.bootClasses;

        buildClasses();
        buildMethods();
        program_.layout();

        if (info) {
            info->plannedAllocBytes = plan_.allocBytes;
            info->liveBytes = plan_.liveBytes;
            info->iterations = plan_.iterations;
            info->longEntries = plan_.longEntries;
            info->segmentSlots = plan_.segmentSlots;
        }
        return std::move(program_);
    }

  private:
    void buildClasses();
    void buildMethods();

    MethodId emitCold(std::uint32_t k);
    MethodId emitDispatch(std::uint32_t lo, std::uint32_t hi);
    MethodId emitChainLink(std::uint32_t level, MethodId next);
    MethodId emitRecurse();
    MethodId emitAllocShort();
    MethodId emitAllocLong();
    MethodId emitAllocLinked();
    MethodId emitAllocArrays();
    MethodId emitCompute();
    MethodId emitTraverse();
    MethodId emitInit();
    MethodId emitIteration();
    void emitMain();

    /** App class used by the i-th allocation site. */
    ClassId
    appClass(std::uint32_t i) const
    {
        return plan_.firstApp + (i % plan_.appClasses);
    }

    const BenchmarkProfile &p_;
    Plan plan_;
    Rng rng_;
    Program program_;

    MethodId mAllocShort_ = 0, mAllocLong_ = 0, mAllocLinked_ = 0;
    MethodId mAllocArrays_ = 0, mCompute_ = 0, mTraverse_ = 0;
    MethodId mInit_ = 0, mIteration_ = 0, mDispatchRoot_ = 0;
    MethodId mChainRoot_ = 0, mRecurse_ = 0;
    std::vector<MethodId> coldMethods_;
};

void
Builder::buildClasses()
{
    auto &classes = program_.classes;
    const auto addClass = [&](const std::string &name,
                              std::uint32_t ref_fields,
                              std::uint32_t scalar_fields,
                              std::uint32_t metadata,
                              std::uint32_t cp) {
        ClassInfo c;
        c.id = static_cast<ClassId>(classes.size());
        c.name = name;
        c.refFields = ref_fields;
        c.scalarFields = scalar_fields;
        c.metadataBytes = std::max<std::uint32_t>(128, metadata);
        c.constantPoolEntries = cp;
        classes.push_back(c);
        return c.id;
    };

    // Boot classes: reference chains model the startup cascade.
    for (std::uint32_t i = 0; i < p_.bootClasses; ++i) {
        const ClassId id = addClass("Boot" + std::to_string(i), 0, 2,
                                    p_.classMetadataBytes, p_.cpEntries);
        if (i > 0)
            classes[id].super = id - 1 - rng_.uniformInt(std::min<
                std::uint64_t>(i, 3));
        if (i + 1 < p_.bootClasses)
            classes[id].referencedClasses.push_back(id + 1);
        if (i + 7 < p_.bootClasses)
            classes[id].referencedClasses.push_back(id + 7);
    }

    // Application (node) classes: sizes spread around the mean.
    plan_.firstApp = static_cast<ClassId>(classes.size());
    for (std::uint32_t i = 0; i < plan_.appClasses; ++i) {
        const double factor = 0.5 + 1.5 * (i % 7) / 6.0;
        const auto target = static_cast<std::uint32_t>(
            p_.meanObjBytes * factor);
        const std::uint32_t refs = 2; // next + interlink slot
        const std::uint32_t scalars = std::max<std::uint32_t>(
            1, (target > jvm::kHeaderBytes + refs * 8)
                   ? (target - jvm::kHeaderBytes) / 8 - refs
                   : 1);
        const ClassId id =
            addClass("Node" + std::to_string(i), refs, scalars,
                     p_.classMetadataBytes, p_.cpEntries);
        if (i > 0 && rng_.bernoulli(0.5))
            classes[id].referencedClasses.push_back(id - 1);
    }

    // The long-lived population rotates over four fixed classes; its
    // entry count must be derived from their *actual* instance sizes,
    // or replacement drifts the live set away from the plan (the
    // profile mean is only a target for the size spread).
    std::uint64_t longBytesPerObj = 0;
    for (std::uint32_t site = 0; site < 4; ++site) {
        const ClassId id = appClass(site * 7 + plan_.appClasses / 2);
        plan_.longClasses[site] = id;
        longBytesPerObj += jvm::alignUp(classes[id].instanceBytes());
    }
    longBytesPerObj /= 4;
    // 70%: interlink targets displaced from their slots stay reachable
    // (bounded at one per node), and spines/scratch/rings take a share.
    const std::uint64_t population = plan_.liveBytes * 70 / 100;
    plan_.longEntries = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        plan_.segmentSlots, population / longBytesPerObj));
    plan_.longSegments =
        (plan_.longEntries + plan_.segmentSlots - 1) / plan_.segmentSlots;
    plan_.longEntries = plan_.longSegments * plan_.segmentSlots;

    // Cold classes (one per cold method; loaded on first call).
    plan_.firstCold = static_cast<ClassId>(classes.size());
    for (std::uint32_t i = 0; i < plan_.coldClasses; ++i)
        addClass("Cold" + std::to_string(i), 0, 1,
                 p_.classMetadataBytes * 2 / 3, p_.cpEntries / 2);

    plan_.refArrayCls = addClass("Object[]", 0, 0, 256, 4);
    classes[plan_.refArrayCls].isRefArray = true;
    plan_.scalarArrayCls = addClass("long[]", 0, 0, 256, 4);
    classes[plan_.scalarArrayCls].isScalarArray = true;
    plan_.counterCls = addClass("Counters", 0, 8, 512, 8);
}

MethodId
Builder::emitCold(std::uint32_t k)
{
    MethodBuilder mb(program_, "cold" + std::to_string(k),
                     plan_.firstCold + k, 1, 0);
    const std::int32_t x = 0; // argument register
    const std::int32_t t = mb.ireg();
    const std::int32_t c = mb.constant(static_cast<std::int32_t>(
        k * 2654435761u & 0xffff));
    // A straight-line body sized like a real utility method (~2 dozen
    // bytecodes): enough code that loading + compiling cold methods
    // costs what it does in a real VM.
    for (int rep = 0; rep < 5; ++rep) {
        mb.emit(Op::IAdd, t, x, c);
        mb.emit(Op::IMul, t, t, c);
        mb.emit(Op::IXor, t, t, x);
        mb.emit(Op::IAdd, t, t, c);
        mb.emit(Op::IXor, t, t, x);
    }
    return mb.finishRet(t);
}

MethodId
Builder::emitDispatch(std::uint32_t lo, std::uint32_t hi)
{
    // Binary dispatch over cold methods [lo, hi): models virtual
    // dispatch; leaves invoke the cold method itself.
    if (hi - lo == 1)
        return coldMethods_[lo];
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const MethodId left = emitDispatch(lo, mid);
    const MethodId right = emitDispatch(mid, hi);

    MethodBuilder mb(program_, "dispatch" + std::to_string(lo) + "_" +
                                   std::to_string(hi),
                     plan_.firstApp, 1, 0);
    const std::int32_t idx = 0;
    const std::int32_t ret = mb.ireg();
    const std::int32_t midReg = mb.constant(
        static_cast<std::int32_t>(mid));
    const std::uint32_t branch = mb.emit(Op::IfGe, idx, midReg, 0);
    mb.emit(Op::Call, ret, static_cast<std::int32_t>(left), idx, 0);
    const std::uint32_t skip = mb.emit(Op::Goto, 0);
    mb.patchTarget(branch, mb.here());
    mb.emit(Op::Call, ret, static_cast<std::int32_t>(right), idx, 0);
    mb.patchTarget(skip, mb.here());
    return mb.finishRet(ret);
}

MethodId
Builder::emitChainLink(std::uint32_t level, MethodId next)
{
    // One link of the straight call chain (profile callChainDepth):
    // a couple of ALU ops around a call to the next link, so frames
    // push and pop every handful of bytecodes — the nested-helper
    // shape of call-dense workloads like jess/jack.
    MethodBuilder mb(program_, "chain" + std::to_string(level),
                     plan_.firstApp + (level % plan_.appClasses), 1, 0);
    const std::int32_t x = 0;
    const std::int32_t t = mb.ireg();
    const std::int32_t c = mb.constant(
        static_cast<std::int32_t>(level * 2246822519u & 0xffff));
    mb.emit(Op::IAdd, t, x, c);
    if (level == 0) {
        // Bottom of the chain: a short straight-line body.
        mb.emit(Op::IXor, t, t, c);
        mb.emit(Op::IAdd, t, t, x);
        return mb.finishRet(t);
    }
    mb.call(t, next, t);
    mb.emit(Op::IXor, t, t, c);
    return mb.finishRet(t);
}

MethodId
Builder::emitRecurse()
{
    // recurse(n): classic self-recursion, n frames deep. The callee id
    // is this method's own id (assigned at MethodBuilder construction),
    // so the verifier sees an in-range target once commit runs.
    MethodBuilder mb(program_, "recurse", plan_.firstApp, 1, 0);
    const std::int32_t n = 0;
    const std::int32_t t = mb.ireg();
    const std::int32_t m = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t zero = mb.constant(0);
    const std::uint32_t base = mb.emit(Op::IfLt, n, one, 0);
    mb.emit(Op::ISub, m, n, one);
    mb.call(t, mb.method().id, m);
    mb.emit(Op::IAdd, t, t, n);
    const std::uint32_t done = mb.emit(Op::Goto, 0);
    mb.patchTarget(base, mb.here());
    mb.emit(Op::Move, t, zero);
    mb.patchTarget(done, mb.here());
    return mb.finishRet(t);
}

MethodId
Builder::emitAllocShort()
{
    // allocShort(n): ring-buffer allocation; objects die after one lap.
    MethodBuilder mb(program_, "allocShort", plan_.firstApp, 1, 0);
    const std::int32_t n = 0;
    const std::int32_t i = mb.ireg();
    const std::int32_t idx = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t zero = mb.constant(0);
    const std::int32_t len = mb.constant(
        static_cast<std::int32_t>(plan_.shortEntries));
    const std::int32_t buf = mb.rreg();
    const std::int32_t obj = mb.rreg();

    mb.emit(Op::GetStatic, buf, kShortBuf);
    // Continue the ring where the previous call left off.
    const std::int32_t ctr = mb.rreg();
    mb.emit(Op::GetStatic, ctr, kCounters);
    mb.emit(Op::GetField, idx, ctr, kCtrShortIdx);
    mb.emit(Op::IConst, i, 0);

    const std::uint32_t loop = mb.here();
    const std::uint32_t exit = mb.emit(Op::IfGe, i, n, 0);
    // Rotate over four allocation-site classes.
    for (std::uint32_t site = 0; site < 4; ++site) {
        mb.emit(Op::New, obj,
                static_cast<std::int32_t>(appClass(site)));
        mb.emit(Op::PutField, obj, 0, i); // initialize a field
        mb.emit(Op::PutRefElem, buf, idx, obj);
        mb.emit(Op::IAdd, idx, idx, one);
        const std::uint32_t wrapOk = mb.emit(Op::IfLt, idx, len, 0);
        mb.emit(Op::Move, idx, zero);
        mb.patchTarget(wrapOk, mb.here());
    }
    mb.emit(Op::IAdd, i, i, one);
    mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
    mb.patchTarget(exit, mb.here());
    mb.emit(Op::PutField, ctr, kCtrShortIdx, idx);
    return mb.finishRet(i);
}

MethodId
Builder::emitAllocLong()
{
    // allocLong(n): replace random entries in the long-lived
    // population (exponential lifetimes; write barrier pressure).
    MethodBuilder mb(program_, "allocLong", plan_.firstApp, 1, 0);
    const std::int32_t n = 0;
    const std::int32_t i = mb.ireg();
    const std::int32_t seg = mb.ireg();
    const std::int32_t slot = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t segs = mb.constant(
        static_cast<std::int32_t>(plan_.longSegments));
    const std::int32_t slots = mb.constant(
        static_cast<std::int32_t>(plan_.segmentSlots));
    const std::int32_t root = mb.rreg();
    const std::int32_t segR = mb.rreg();
    const std::int32_t obj = mb.rreg();

    mb.emit(Op::GetStatic, root, kLongRoot);
    mb.emit(Op::IConst, i, 0);
    const std::uint32_t loop = mb.here();
    const std::uint32_t exit = mb.emit(Op::IfGe, i, n, 0);
    const std::int32_t other = mb.rreg();
    // Rotate over the same classes the prefill used so replacement is
    // size-neutral and the live set stays on plan. Classes with a
    // second reference field interlink to a random existing node: the
    // resulting graph entropy is what makes GC tracing pointer-chase
    // (and keeps copying collectors from laying the heap out perfectly).
    for (std::uint32_t site = 0; site < 4; ++site) {
        mb.emit(Op::Rand, seg, segs);
        mb.emit(Op::Rand, slot, slots);
        mb.emit(Op::GetRefElem, segR, root, seg);
        mb.emit(Op::New, obj,
                static_cast<std::int32_t>(plan_.longClasses[site]));
        mb.emit(Op::PutField, obj, 0, i);
        mb.emit(Op::Rand, seg, segs);
        mb.emit(Op::Rand, slot, slots);
        mb.emit(Op::GetRefElem, other, root, seg);
        mb.emit(Op::GetRefElem, other, other, slot);
        const std::uint32_t noLink = mb.emit(Op::IfNull, other, 0);
        mb.emit(Op::PutRef, other, 1, obj);
        mb.patchTarget(noLink, mb.here());
        mb.emit(Op::PutRefElem, segR, slot, obj);
    }
    mb.emit(Op::IAdd, i, i, one);
    mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
    mb.patchTarget(exit, mb.here());
    return mb.finishRet(i);
}

MethodId
Builder::emitAllocLinked()
{
    // allocLinked(n): prepend to the list rooted in a static.
    MethodBuilder mb(program_, "allocLinked", plan_.firstApp, 1, 0);
    const std::int32_t n = 0;
    const std::int32_t i = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t head = mb.rreg();
    const std::int32_t obj = mb.rreg();

    mb.emit(Op::IConst, i, 0);
    const std::uint32_t loop = mb.here();
    const std::uint32_t exit = mb.emit(Op::IfGe, i, n, 0);
    mb.emit(Op::New, obj, static_cast<std::int32_t>(appClass(8)));
    mb.emit(Op::GetStatic, head, kListHead);
    const std::uint32_t skipLink = mb.emit(Op::IfNull, head, 0);
    mb.emit(Op::PutRef, obj, 0, head);
    mb.patchTarget(skipLink, mb.here());
    mb.emit(Op::PutField, obj, 0, i);
    mb.emit(Op::PutStatic, kListHead, obj);
    mb.emit(Op::IAdd, i, i, one);
    mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
    mb.patchTarget(exit, mb.here());
    return mb.finishRet(i);
}

MethodId
Builder::emitAllocArrays()
{
    // allocArrays(n): transient scalar arrays in a small ring.
    MethodBuilder mb(program_, "allocArrays", plan_.firstApp, 1, 0);
    const std::int32_t n = 0;
    const std::int32_t i = mb.ireg();
    const std::int32_t idx = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t zero = mb.constant(0);
    const std::int32_t ring = mb.constant(
        static_cast<std::int32_t>(plan_.arrayRing));
    const std::int32_t len = mb.constant(
        static_cast<std::int32_t>(plan_.arrayLen));
    const std::int32_t buf = mb.rreg();
    const std::int32_t arr = mb.rreg();
    const std::int32_t ctr = mb.rreg();

    mb.emit(Op::GetStatic, buf, kArrayBuf);
    mb.emit(Op::GetStatic, ctr, kCounters);
    mb.emit(Op::GetField, idx, ctr, kCtrArrayIdx);
    mb.emit(Op::IConst, i, 0);
    const std::uint32_t loop = mb.here();
    const std::uint32_t exit = mb.emit(Op::IfGe, i, n, 0);
    mb.emit(Op::NewArray, arr,
            static_cast<std::int32_t>(plan_.scalarArrayCls), len);
    mb.emit(Op::PutElem, arr, zero, i);
    mb.emit(Op::PutRefElem, buf, idx, arr);
    mb.emit(Op::IAdd, idx, idx, one);
    const std::uint32_t wrapOk = mb.emit(Op::IfLt, idx, ring, 0);
    mb.emit(Op::Move, idx, zero);
    mb.patchTarget(wrapOk, mb.here());
    mb.emit(Op::IAdd, i, i, one);
    mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
    mb.patchTarget(exit, mb.here());
    mb.emit(Op::PutField, ctr, kCtrArrayIdx, idx);
    return mb.finishRet(i);
}

MethodId
Builder::emitCompute()
{
    // compute(n): stride walk over the scratch working set with an
    // ALU mix set by the profile's floating-point fraction.
    MethodBuilder mb(program_, "compute", plan_.firstApp, 1, 0);
    const std::int32_t n = 0;
    const std::int32_t i = mb.ireg();
    const std::int32_t pos = mb.ireg();
    const std::int32_t seg = mb.ireg();
    const std::int32_t slot = mb.ireg();
    const std::int32_t acc = mb.ireg();
    const std::int32_t v = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t zero = mb.constant(0);
    const std::int32_t segs = mb.constant(
        static_cast<std::int32_t>(plan_.scratchSegments));
    const std::int32_t slots = mb.constant(
        static_cast<std::int32_t>(plan_.scratchSlots));
    const std::int32_t root = mb.rreg();
    const std::int32_t segR = mb.rreg();
    const std::int32_t ctr = mb.rreg();

    mb.emit(Op::GetStatic, root, kScratchRoot);
    mb.emit(Op::GetStatic, ctr, kCounters);
    mb.emit(Op::GetField, pos, ctr, kCtrComputePos);
    mb.emit(Op::IConst, i, 0);
    mb.emit(Op::IConst, acc, 0);
    // Derive (seg, slot) from pos once per call, then walk linearly.
    mb.emit(Op::IRem, slot, pos, slots);
    mb.emit(Op::IRem, seg, pos, segs);
    mb.emit(Op::GetRefElem, segR, root, seg);

    const std::uint32_t loop = mb.here();
    const std::uint32_t exit = mb.emit(Op::IfGe, i, n, 0);
    mb.emit(Op::GetElem, v, segR, slot);
    // ALU mix: integer always; FP ops according to the profile.
    mb.emit(Op::IAdd, acc, acc, v);
    mb.emit(Op::IXor, acc, acc, slot);
    if (p_.fpFraction > 0.05)
        mb.emit(Op::FMul, v, v, one);
    if (p_.fpFraction > 0.45)
        mb.emit(Op::FAdd, v, v, acc);
    if (p_.fpFraction <= 0.05)
        mb.emit(Op::IMul, v, v, one);
    mb.emit(Op::PutElem, segR, slot, acc);
    mb.emit(Op::IAdd, slot, slot, one);
    const std::uint32_t noWrap = mb.emit(Op::IfLt, slot, slots, 0);
    mb.emit(Op::Move, slot, zero);
    mb.emit(Op::IAdd, seg, seg, one);
    const std::uint32_t segOk = mb.emit(Op::IfLt, seg, segs, 0);
    mb.emit(Op::Move, seg, zero);
    mb.patchTarget(segOk, mb.here());
    mb.emit(Op::GetRefElem, segR, root, seg);
    mb.patchTarget(noWrap, mb.here());
    mb.emit(Op::IAdd, i, i, one);
    mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
    mb.patchTarget(exit, mb.here());
    mb.emit(Op::IAdd, pos, pos, i);
    mb.emit(Op::PutField, ctr, kCtrComputePos, pos);
    return mb.finishRet(acc);
}

MethodId
Builder::emitTraverse()
{
    // traverse(n): sequential pointer walk over the long-lived
    // population (the locality-sensitive phase: copying collectors
    // compact these nodes in exactly this visit order).
    MethodBuilder mb(program_, "traverse", plan_.firstApp, 1, 0);
    const std::int32_t n = 0;
    const std::int32_t i = mb.ireg();
    const std::int32_t seg = mb.ireg();
    const std::int32_t slot = mb.ireg();
    const std::int32_t acc = mb.ireg();
    const std::int32_t v = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t zero = mb.constant(0);
    const std::int32_t segs = mb.constant(
        static_cast<std::int32_t>(plan_.longSegments));
    const std::int32_t slots = mb.constant(
        static_cast<std::int32_t>(plan_.segmentSlots));
    const std::int32_t root = mb.rreg();
    const std::int32_t segR = mb.rreg();
    const std::int32_t node = mb.rreg();
    const std::int32_t ctr = mb.rreg();

    mb.emit(Op::GetStatic, root, kLongRoot);
    mb.emit(Op::GetStatic, ctr, kCounters);
    mb.emit(Op::GetField, seg, ctr, kCtrTraverseSeg);
    mb.emit(Op::GetField, slot, ctr, kCtrTraverseSlot);
    mb.emit(Op::IConst, i, 0);
    mb.emit(Op::IConst, acc, 0);
    mb.emit(Op::GetRefElem, segR, root, seg);

    const std::uint32_t loop = mb.here();
    const std::uint32_t exit = mb.emit(Op::IfGe, i, n, 0);
    mb.emit(Op::GetRefElem, node, segR, slot);
    const std::uint32_t skip = mb.emit(Op::IfNull, node, 0);
    mb.emit(Op::GetField, v, node, 0);
    mb.emit(Op::IXor, acc, acc, v);
    mb.patchTarget(skip, mb.here());
    mb.emit(Op::IAdd, slot, slot, one);
    const std::uint32_t noWrap = mb.emit(Op::IfLt, slot, slots, 0);
    mb.emit(Op::Move, slot, zero);
    mb.emit(Op::IAdd, seg, seg, one);
    const std::uint32_t segOk = mb.emit(Op::IfLt, seg, segs, 0);
    mb.emit(Op::Move, seg, zero);
    mb.patchTarget(segOk, mb.here());
    mb.emit(Op::GetRefElem, segR, root, seg);
    mb.patchTarget(noWrap, mb.here());
    mb.emit(Op::IAdd, i, i, one);
    mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
    mb.patchTarget(exit, mb.here());
    mb.emit(Op::PutField, ctr, kCtrTraverseSeg, seg);
    mb.emit(Op::PutField, ctr, kCtrTraverseSlot, slot);
    return mb.finishRet(acc);
}

MethodId
Builder::emitInit()
{
    // init(): build spines, scratch, counters; prefill the long-lived
    // population (touches every application class → startup CL burst).
    MethodBuilder mb(program_, "init", plan_.firstApp, 0, 0);
    const std::int32_t i = mb.ireg();
    const std::int32_t j = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t segs = mb.constant(
        static_cast<std::int32_t>(plan_.longSegments));
    const std::int32_t slots = mb.constant(
        static_cast<std::int32_t>(plan_.segmentSlots));
    const std::int32_t shortLen = mb.constant(
        static_cast<std::int32_t>(plan_.shortEntries));
    const std::int32_t ringLen = mb.constant(
        static_cast<std::int32_t>(plan_.arrayRing));
    const std::int32_t scrSegs = mb.constant(
        static_cast<std::int32_t>(plan_.scratchSegments));
    const std::int32_t scrSlots = mb.constant(
        static_cast<std::int32_t>(plan_.scratchSlots));
    const std::int32_t root = mb.rreg();
    const std::int32_t segR = mb.rreg();
    const std::int32_t obj = mb.rreg();
    const std::int32_t other = mb.rreg();
    const std::int32_t rnd = mb.ireg();
    const std::int32_t zero2 = mb.constant(1); // guard: need j >= 1 to link

    // Counters object first.
    mb.emit(Op::New, obj, static_cast<std::int32_t>(plan_.counterCls));
    mb.emit(Op::PutStatic, kCounters, obj);

    // Short ring and array ring.
    mb.emit(Op::NewArray, root,
            static_cast<std::int32_t>(plan_.refArrayCls), shortLen);
    mb.emit(Op::PutStatic, kShortBuf, root);
    mb.emit(Op::NewArray, root,
            static_cast<std::int32_t>(plan_.refArrayCls), ringLen);
    mb.emit(Op::PutStatic, kArrayBuf, root);

    // Scratch working set: spine + seeded segments.
    mb.emit(Op::NewArray, root,
            static_cast<std::int32_t>(plan_.refArrayCls), scrSegs);
    mb.emit(Op::PutStatic, kScratchRoot, root);
    mb.emit(Op::IConst, i, 0);
    {
        const std::uint32_t loop = mb.here();
        const std::uint32_t exit = mb.emit(Op::IfGe, i, scrSegs, 0);
        mb.emit(Op::NewArray, segR,
                static_cast<std::int32_t>(plan_.scalarArrayCls),
                scrSlots);
        mb.emit(Op::PutElem, segR, i, i); // seed one element
        mb.emit(Op::PutRefElem, root, i, segR);
        mb.emit(Op::IAdd, i, i, one);
        mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
        mb.patchTarget(exit, mb.here());
    }

    // Long-lived spine + full prefill (the database-load phase).
    mb.emit(Op::NewArray, root,
            static_cast<std::int32_t>(plan_.refArrayCls), segs);
    mb.emit(Op::PutStatic, kLongRoot, root);
    mb.emit(Op::IConst, i, 0);
    {
        const std::uint32_t outer = mb.here();
        const std::uint32_t exitOuter = mb.emit(Op::IfGe, i, segs, 0);
        mb.emit(Op::NewArray, segR,
                static_cast<std::int32_t>(plan_.refArrayCls), slots);
        mb.emit(Op::PutRefElem, root, i, segR);
        mb.emit(Op::IConst, j, 0);
        const std::uint32_t inner = mb.here();
        const std::uint32_t exitInner = mb.emit(Op::IfGe, j, slots, 0);
        // Rotate through every application class.
        for (std::uint32_t site = 0; site < 4; ++site) {
            mb.emit(Op::New, obj, static_cast<std::int32_t>(
                plan_.longClasses[site]));
            mb.emit(Op::PutField, obj, 0, j);
            if (site == 0) {
                // A random earlier node's interlink slot points at the
                // new node (graph entropy; see allocLong).
                const std::uint32_t noLink0 = mb.emit(Op::IfGe, zero2, j, 0);
                mb.emit(Op::Rand, rnd, j);
                mb.emit(Op::GetRefElem, other, segR, rnd);
                const std::uint32_t noLink = mb.emit(Op::IfNull, other, 0);
                mb.emit(Op::PutRef, other, 1, obj);
                mb.patchTarget(noLink, mb.here());
                mb.patchTarget(noLink0, mb.here());
            }
            mb.emit(Op::PutRefElem, segR, j, obj);
            mb.emit(Op::IAdd, j, j, one);
        }
        // segmentSlots is a multiple of the 4-site unroll, so j can
        // only reach the limit at the end of the unrolled block.
        mb.emit(Op::Goto, static_cast<std::int32_t>(inner));
        mb.patchTarget(exitInner, mb.here());
        mb.emit(Op::IAdd, i, i, one);
        mb.emit(Op::Goto, static_cast<std::int32_t>(outer));
        mb.patchTarget(exitOuter, mb.here());
    }

    // Touch the remaining application classes once each.
    for (std::uint32_t k = 0; k < plan_.appClasses; ++k) {
        mb.emit(Op::New, obj, static_cast<std::int32_t>(appClass(k)));
        mb.emit(Op::PutField, obj, 0, i);
    }
    return mb.finishRet(i);
}

MethodId
Builder::emitIteration()
{
    // iteration(iter): one steady-state step.
    MethodBuilder mb(program_, "iteration", plan_.firstApp, 1, 0);
    const std::int32_t iter = 0;
    const std::int32_t acc = mb.ireg();
    const std::int32_t t = mb.ireg();
    const std::int32_t arg = mb.ireg();
    const std::int32_t tmp = mb.ireg();

    const auto callWith = [&](MethodId m, std::int32_t count) {
        mb.emit(Op::IConst, arg, count);
        mb.emit(Op::Call, t, static_cast<std::int32_t>(m), arg, 0);
        mb.emit(Op::IXor, acc, acc, t);
    };

    mb.emit(Op::IConst, acc, 0);
    callWith(mAllocShort_,
             static_cast<std::int32_t>(
                 std::max<std::uint32_t>(1, plan_.shortPerIter / 4)));
    callWith(mAllocLong_,
             static_cast<std::int32_t>(
                 std::max<std::uint32_t>(1, plan_.longPerIter / 4)));
    if (plan_.linkedPerIter > 0)
        callWith(mAllocLinked_,
                 static_cast<std::int32_t>(plan_.linkedPerIter));
    if (plan_.arraysPerIter > 0)
        callWith(mAllocArrays_,
                 static_cast<std::int32_t>(plan_.arraysPerIter));
    callWith(mCompute_,
             static_cast<std::int32_t>(plan_.computeElemsPerIter));
    if (plan_.traversePerIter > 0)
        callWith(mTraverse_,
                 static_cast<std::int32_t>(plan_.traversePerIter));

    // Deep helper chain and recursion (call-dense profiles only).
    if (p_.callChainDepth > 0) {
        for (std::uint32_t c = 0;
             c < std::max<std::uint32_t>(1, p_.chainInvokesPerIter); ++c) {
            mb.call(t, mChainRoot_, iter); // arg window starts at iter
            mb.emit(Op::IXor, acc, acc, t);
        }
    }
    if (p_.recurseDepth > 0)
        callWith(mRecurse_,
                 static_cast<std::int32_t>(p_.recurseDepth));

    // Cold calls through the dispatch tree.
    for (std::uint32_t c = 0; c < p_.coldCallsPerIter; ++c) {
        const std::int32_t bound = mb.constant(
            static_cast<std::int32_t>(plan_.coldClasses));
        mb.emit(Op::Rand, arg, bound);
        mb.emit(Op::Call, t, static_cast<std::int32_t>(mDispatchRoot_),
                arg, 0);
        mb.emit(Op::IXor, acc, acc, t);
    }

    // Drop the linked structure periodically (en-masse death).
    if (plan_.linkedPerIter > 0) {
        const std::int32_t resetEvery = mb.constant(
            static_cast<std::int32_t>(std::max<std::uint32_t>(
                1, p_.listResetIters)));
        const std::int32_t nullRef = mb.rreg(); // never assigned: null
        mb.emit(Op::IRem, tmp, iter, resetEvery);
        const std::int32_t zero = mb.constant(0);
        const std::uint32_t keep = mb.emit(Op::IfNe, tmp, zero, 0);
        mb.emit(Op::PutStatic, kListHead, nullRef);
        mb.patchTarget(keep, mb.here());
    }

    // Native kernel (libc/IO stand-in).
    if (p_.nativeUopsPerIter > 0)
        mb.emit(Op::NativeWork,
                static_cast<std::int32_t>(p_.nativeUopsPerIter),
                static_cast<std::int32_t>(p_.nativeBytesPerIter));

    return mb.finishRet(acc);
}

void
Builder::emitMain()
{
    MethodBuilder mb(program_, "main", plan_.firstApp, 0, 0);
    const std::int32_t acc = mb.ireg();
    const std::int32_t i = mb.ireg();
    const std::int32_t t = mb.ireg();
    const std::int32_t one = mb.constant(1);
    const std::int32_t iters = mb.constant(
        static_cast<std::int32_t>(plan_.iterations));

    mb.emit(Op::Call, acc, static_cast<std::int32_t>(mInit_), 0, 0);
    mb.emit(Op::IConst, i, 0);
    const std::uint32_t loop = mb.here();
    const std::uint32_t exit = mb.emit(Op::IfGe, i, iters, 0);
    mb.emit(Op::Call, t, static_cast<std::int32_t>(mIteration_), i, 0);
    mb.emit(Op::IXor, acc, acc, t);
    mb.emit(Op::IAdd, i, i, one);
    mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
    mb.patchTarget(exit, mb.here());
    program_.entry = mb.finishRet(acc);
}

void
Builder::buildMethods()
{
    coldMethods_.clear();
    for (std::uint32_t k = 0; k < plan_.coldClasses; ++k)
        coldMethods_.push_back(emitCold(k));
    mDispatchRoot_ = emitDispatch(0, plan_.coldClasses);
    if (p_.callChainDepth > 0) {
        MethodId next = 0;
        for (std::uint32_t lvl = 0; lvl < p_.callChainDepth; ++lvl)
            next = emitChainLink(lvl, next);
        mChainRoot_ = next;
    }
    if (p_.recurseDepth > 0)
        mRecurse_ = emitRecurse();
    mAllocShort_ = emitAllocShort();
    mAllocLong_ = emitAllocLong();
    mAllocLinked_ = emitAllocLinked();
    mAllocArrays_ = emitAllocArrays();
    mCompute_ = emitCompute();
    mTraverse_ = emitTraverse();
    mInit_ = emitInit();
    mIteration_ = emitIteration();
    emitMain();
}

} // namespace

StudyScale
studyScaleFor(DatasetScale dataset)
{
    StudyScale s;
    s.dataset = dataset == DatasetScale::Small ? 0.12 : 1.0;
    return s;
}

Program
buildProgram(const BenchmarkProfile &profile, const StudyScale &scale,
             BuildInfo *info)
{
    Builder builder(profile, scale);
    Program program = builder.build(info);
    const auto errors = program.verify();
    if (!errors.empty()) {
        for (const auto &e : errors)
            JAVELIN_WARN("verify: ", e);
        JAVELIN_PANIC("generated program failed verification: ",
                      profile.name);
    }
    return program;
}

} // namespace workloads
} // namespace javelin
