#include "harness/job_engine.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "harness/ensemble.hh"
#include "harness/scenario.hh"
#include "util/json.hh"
#include "util/kv_store.hh"

namespace javelin {
namespace harness {

namespace {

constexpr const char *kJournalSchema = "javelin-journal-v1";
constexpr const char *kReportSchema = "javelin-sweep-v1";

[[noreturn]] void
journalError(const std::string &path, const std::string &msg)
{
    throw JobEngineError("checkpoint " + path + ": " + msg);
}

/** One journal line for a record (newline included). */
std::string
journalLine(const ShardRecord &rec)
{
    std::ostringstream os;
    os << "{\"shard\": " << rec.shard << ", \"key\": ";
    json::writeString(os, rec.key);
    os << ", \"ok\": " << (rec.ok ? "true" : "false");
    if (rec.ok) {
        os << ", \"metrics\": [";
        for (std::size_t i = 0; i < rec.metrics.size(); ++i) {
            os << (i ? ", " : "");
            json::writeNumber(os, rec.metrics[i]);
        }
        os << "], \"gc_collections\": " << rec.gcCollections
           << ", \"bytecodes\": " << rec.bytecodes;
    } else {
        os << ", \"error\": ";
        json::writeString(os, rec.error);
    }
    os << "}\n";
    return os.str();
}

std::string
journalHeader(const std::string &name, const std::string &hash,
              std::size_t shards)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << kJournalSchema << "\", \"scenario\": ";
    json::writeString(os, name);
    os << ", \"scenario_hash\": ";
    json::writeString(os, hash);
    os << ", \"shards\": " << shards << "}\n";
    return os.str();
}

ShardRecord
parseRecordLine(const std::string &path, const json::Value &v,
                std::size_t shard_total)
{
    ShardRecord rec;
    bool sawShard = false, sawKey = false, sawOk = false;
    for (const auto &[key, field] : v.members) {
        if (key == "shard") {
            rec.shard = field.asU64();
            sawShard = true;
        } else if (key == "key") {
            rec.key = field.asString();
            sawKey = true;
        } else if (key == "ok") {
            rec.ok = field.asBool();
            sawOk = true;
        } else if (key == "metrics") {
            if (!field.isArray())
                journalError(path, "\"metrics\" must be an array");
            for (const auto &m : field.items)
                rec.metrics.push_back(m.asDouble());
        } else if (key == "gc_collections") {
            rec.gcCollections = field.asU64();
        } else if (key == "bytecodes") {
            rec.bytecodes = field.asU64();
        } else if (key == "error") {
            rec.error = field.asString();
        } else {
            journalError(path, "unknown record key \"" + key + "\"");
        }
    }
    if (!sawShard || !sawKey || !sawOk)
        journalError(path, "record missing shard/key/ok");
    if (rec.shard >= shard_total)
        journalError(path, "record shard " + std::to_string(rec.shard) +
                               " out of range (sweep has " +
                               std::to_string(shard_total) + ")");
    if (rec.ok && rec.metrics.size() != jobMetricNames().size())
        journalError(path, "record shard " + std::to_string(rec.shard) +
                               " has a malformed metrics payload");
    return rec;
}

struct LoadedJournal
{
    /** Valid records, last-write-wins per shard. */
    std::map<std::size_t, ShardRecord> records;
    /** Byte offset just past the last intact line. */
    std::uintmax_t intactBytes = 0;
};

/**
 * Load and validate a journal. A torn final line (crash mid-write) is
 * dropped; corruption anywhere else, a schema/hash mismatch, or a
 * record that does not match the sweep being resumed is refused.
 */
LoadedJournal
loadJournal(const std::string &path,
            const std::vector<SweepTask> &tasks,
            const std::string &scenario_hash)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        journalError(path, "cannot open for resume");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    LoadedJournal out;
    std::size_t pos = 0;
    bool sawHeader = false;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const bool lastLine = nl == std::string::npos;
        const std::string line =
            text.substr(pos, lastLine ? std::string::npos : nl - pos);
        const std::size_t lineStart = pos;
        pos = lastLine ? text.size() : nl + 1;
        if (line.empty())
            continue;

        json::Value v;
        try {
            v = json::parse(line);
            if (!v.isObject())
                throw json::ParseError(1, "journal line not an object");
        } catch (const json::ParseError &) {
            // A crash can only tear the tail of an append-only file:
            // drop an unparseable final line, refuse anything earlier.
            if (lastLine) {
                out.intactBytes = lineStart;
                return out;
            }
            journalError(path, "corrupt journal line (not at the end "
                               "of the file)");
        }

        if (!sawHeader) {
            const json::Value *schema = v.find("schema");
            const json::Value *hash = v.find("scenario_hash");
            const json::Value *shards = v.find("shards");
            if (!schema || schema->asString() != kJournalSchema)
                journalError(path, "missing or unsupported journal "
                                   "schema");
            if (!hash)
                journalError(path, "header missing scenario_hash");
            if (hash->asString() != scenario_hash)
                journalError(
                    path,
                    "was written for scenario hash " + hash->asString() +
                        " but this sweep hashes to " + scenario_hash +
                        "; refusing to merge (delete the checkpoint "
                        "or fix the scenario)");
            if (!shards || shards->asU64() != tasks.size())
                journalError(path,
                             "header shard count does not match the "
                             "sweep");
            sawHeader = true;
            out.intactBytes = pos;
            continue;
        }

        ShardRecord rec = parseRecordLine(path, v, tasks.size());
        const std::string expected = shardKey(tasks[rec.shard]);
        if (rec.key != expected)
            journalError(path, "record for shard " +
                                   std::to_string(rec.shard) +
                                   " has key \"" + rec.key +
                                   "\" but the sweep expects \"" +
                                   expected + "\"");
        // Duplicate shard records: last-write-wins.
        out.records[rec.shard] = std::move(rec);
        out.intactBytes = pos;
    }
    if (!sawHeader && !text.empty())
        journalError(path, "no intact header line");
    return out;
}

} // namespace

const std::vector<std::string> &
jobMetricNames()
{
    return ensembleMetricNames();
}

std::size_t
JobReport::failures() const
{
    std::size_t n = 0;
    for (const auto &r : records)
        if (!r.ok)
            ++n;
    return n;
}

JobReport
JobEngine::run(const std::vector<SweepTask> &tasks,
               const std::string &scenario_name,
               const std::string &scenario_hash) const
{
    if (config_.shardCount < 1 ||
        config_.shardIndex >= config_.shardCount)
        throw JobEngineError("invalid shard partition " +
                             std::to_string(config_.shardIndex) + "/" +
                             std::to_string(config_.shardCount));

    std::size_t crashAfter = config_.crashAfter;
    if (crashAfter == 0) {
        if (const char *env = std::getenv("JAVELIN_JOB_CRASH_AFTER"))
            crashAfter = std::strtoull(env, nullptr, 10);
    }

    JobReport report;
    report.scenarioName = scenario_name;
    report.scenarioHash = scenario_hash;
    report.shardCount = tasks.size();

    // --- checkpoint: load (resume) or create.
    std::map<std::size_t, ShardRecord> known;
    std::ofstream journal;
    const std::string &path = config_.checkpointPath;
    if (!path.empty()) {
        const bool exists = std::filesystem::exists(path);
        if (exists && !config_.resume)
            journalError(path, "already exists; resume with --resume "
                               "or delete it to start over");
        if (exists) {
            LoadedJournal loaded =
                loadJournal(path, tasks, scenario_hash);
            known = std::move(loaded.records);
            // Drop any torn tail so appended records start clean.
            if (loaded.intactBytes <
                std::filesystem::file_size(path))
                std::filesystem::resize_file(path,
                                             loaded.intactBytes);
            journal.open(path, std::ios::binary | std::ios::app);
            if (!journal)
                journalError(path, "cannot reopen for append");
            if (loaded.intactBytes == 0) {
                journal << journalHeader(scenario_name, scenario_hash,
                                         tasks.size());
                journal.flush();
            }
        } else {
            journal.open(path, std::ios::binary | std::ios::trunc);
            if (!journal)
                journalError(path, "cannot create");
            journal << journalHeader(scenario_name, scenario_hash,
                                     tasks.size());
            journal.flush();
        }
    }
    report.restored = known.size();

    // --- pending shards: this partition minus restored records.
    std::vector<std::size_t> pending;
    std::size_t partitionTotal = 0;
    std::size_t partitionRestored = 0;
    for (std::size_t g = 0; g < tasks.size(); ++g) {
        if (g % config_.shardCount != config_.shardIndex)
            continue;
        ++partitionTotal;
        if (known.count(g))
            ++partitionRestored;
        else
            pending.push_back(g);
    }

    // --- worker pool over the pending list. Seeds key off the GLOBAL
    // shard index, so results are invariant to what happens to be
    // pending (the byte-identical-resume property).
    const auto &execute = config_.execute;
    std::vector<ShardRecord> fresh(pending.size());
    std::vector<char> produced(pending.size(), 0);
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> stop{false};
    std::mutex commitMutex;
    std::size_t committed = 0;

    const auto worker = [&] {
        for (;;) {
            if (stop.load(std::memory_order_acquire))
                return;
            const std::size_t i = cursor.fetch_add(1);
            if (i >= pending.size())
                return;
            const std::size_t g = pending[i];

            ShardRecord rec;
            rec.shard = g;
            rec.key = shardKey(tasks[g]);
            SweepTask task = tasks[g];
            task.config.seed =
                SweepRunner::taskSeed(task.config.seed, g);
            try {
                const ExperimentResult res =
                    execute ? execute(task)
                            : runExperiment(task.config, task.profile);
                if (res.ok()) {
                    rec.ok = true;
                    rec.metrics = ensembleMetrics(res);
                    rec.gcCollections = res.run.gc.collections;
                    rec.bytecodes = res.run.bytecodesExecuted;
                } else if (res.failed) {
                    rec.error = res.failMessage.empty()
                                    ? "harness failure"
                                    : res.failMessage;
                } else {
                    rec.error = res.run.outOfMemory ? "out of memory"
                                                    : "stack overflow";
                }
            } catch (const std::exception &e) {
                rec.error = e.what();
            } catch (...) {
                rec.error = "unknown exception";
            }

            std::lock_guard<std::mutex> lock(commitMutex);
            if (journal.is_open()) {
                journal << journalLine(rec);
                journal.flush();
            }
            fresh[i] = std::move(rec);
            produced[i] = 1;
            ++committed;
            if (config_.progress)
                config_.progress(partitionRestored + committed,
                                 partitionTotal);
            if (crashAfter != 0 && committed >= crashAfter) {
                // Simulated hard crash for the fault-injection rig:
                // the journal is flushed, the process dies exactly as
                // an external SIGKILL would leave it.
                std::raise(SIGKILL);
            }
            if (config_.keepGoing && !config_.keepGoing(committed))
                stop.store(true, std::memory_order_release);
        }
    };

    unsigned jobs = SweepRunner::resolveJobs(config_.jobs);
    if (jobs > pending.size())
        jobs = static_cast<unsigned>(pending.size());
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            workers.emplace_back(worker);
        for (auto &w : workers)
            w.join();
    }

    report.aborted = stop.load();
    for (std::size_t i = 0; i < fresh.size(); ++i)
        if (produced[i]) {
            ++report.executed;
            known[fresh[i].shard] = std::move(fresh[i]);
        }
    report.records.reserve(known.size());
    for (auto &[g, rec] : known)
        report.records.push_back(std::move(rec));

    // --- optional result store: one batched flush for the whole run.
    if (!config_.resultStorePath.empty()) {
        try {
            KvStore store(config_.resultStorePath);
            for (const auto &rec : report.records) {
                std::string line = journalLine(rec);
                line.pop_back(); // strip the journal's newline
                store.put(rec.key, line);
            }
            store.flush();
            store.close();
        } catch (const KvError &e) {
            throw JobEngineError(std::string("result store: ") +
                                 e.what());
        }
    }
    return report;
}

void
writeJobReport(std::ostream &os, const JobReport &report)
{
    const auto &names = jobMetricNames();
    os << "{\n";
    os << "  \"schema\": \"" << kReportSchema << "\",\n";
    os << "  \"scenario\": ";
    json::writeString(os, report.scenarioName);
    os << ",\n  \"scenario_hash\": ";
    json::writeString(os, report.scenarioHash);
    os << ",\n  \"shards\": " << report.shardCount;
    os << ",\n  \"completed\": " << report.records.size();
    os << ",\n  \"failed\": " << report.failures();
    os << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < report.records.size(); ++i) {
        const auto &rec = report.records[i];
        os << "    {\"shard\": " << rec.shard << ", \"key\": ";
        json::writeString(os, rec.key);
        os << ", \"ok\": " << (rec.ok ? "true" : "false");
        if (!rec.ok) {
            os << ", \"error\": ";
            json::writeString(os, rec.error);
        } else {
            os << ", \"gc_collections\": " << rec.gcCollections
               << ", \"bytecodes\": " << rec.bytecodes
               << ", \"metrics\": {";
            for (std::size_t m = 0; m < rec.metrics.size(); ++m) {
                os << (m ? ", " : "");
                json::writeString(os, names[m]);
                os << ": ";
                json::writeNumber(os, rec.metrics[m]);
            }
            os << "}";
        }
        os << "}" << (i + 1 < report.records.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace harness
} // namespace javelin
