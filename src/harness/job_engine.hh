/**
 * @file
 * Resumable sweep job engine (ROADMAP item 1).
 *
 * SweepRunner is a one-shot fork-join loop: a crash at shard 9,000 of
 * 10,000 loses everything. JobEngine shards a sweep into independent
 * work items, executes them on the same deterministic worker pool, and
 * journals one completion record per shard — shard index, shard key,
 * and the result payload — to an append-only checkpoint file (JSON
 * lines, schema "javelin-journal-v1"). A killed run restarts with
 * --resume and re-executes only the shards missing from the journal.
 *
 * Determinism: the per-shard seed is SweepRunner::taskSeed(seed,
 * global shard index), so a shard computes the same result whether it
 * runs in the first attempt, a resume, or a --shard i/N partition.
 * Restored payloads round-trip exactly (precision-17 doubles, raw
 * integer tokens), and the final report orders records by shard
 * index, so a crashed-and-resumed sweep's report is byte-identical to
 * an uninterrupted run at any worker count.
 *
 * Journal robustness: a torn final record (the crash happened
 * mid-write) is truncated away on load; duplicate records for one
 * shard resolve last-write-wins; a journal whose scenario hash does
 * not match the scenario being run is refused outright — never
 * silently merged. Failed shards (simulated OOM or a thrown
 * exception) are journaled too, with their error text, so they
 * surface in the report under their shard key instead of vanishing,
 * and a resume does not pointlessly re-run a deterministic failure.
 *
 * Fault-injection hooks: JAVELIN_JOB_CRASH_AFTER=<n> raises SIGKILL
 * immediately after the n-th record commits (the CI kill-and-resume
 * smoke), and Config::keepGoing lets tests abort in-process at an
 * exact commit count without tearing down the test binary.
 */

#ifndef JAVELIN_HARNESS_JOB_ENGINE_HH
#define JAVELIN_HARNESS_JOB_ENGINE_HH

#include "harness/sweep.hh"

namespace javelin {
namespace harness {

/** Journal / checkpoint failure (stale hash, corrupt record, I/O). */
struct JobEngineError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Metric names serialized per shard, in payload order. */
const std::vector<std::string> &jobMetricNames();

/** One journaled shard completion: identity plus result payload. */
struct ShardRecord
{
    /** Global shard index in the expanded scenario. */
    std::size_t shard = 0;
    /** Stable identity (harness::shardKey of the task). */
    std::string key;
    bool ok = false;
    /** Failure text when !ok (OOM, stack overflow, exception). */
    std::string error;
    /** jobMetricNames() order; empty when !ok. */
    std::vector<double> metrics;
    std::uint64_t gcCollections = 0;
    std::uint64_t bytecodes = 0;
};

/** Outcome of one JobEngine::run invocation. */
struct JobReport
{
    std::string scenarioName;
    std::string scenarioHash;
    /** Shards in the full sweep (not just this partition). */
    std::size_t shardCount = 0;
    /** All known completion records, ordered by shard index. */
    std::vector<ShardRecord> records;

    /** Records restored from the checkpoint (not re-executed). */
    std::size_t restored = 0;
    /** Shards executed by this invocation. */
    std::size_t executed = 0;
    /** True when Config::keepGoing aborted the run mid-sweep. */
    bool aborted = false;

    std::size_t failures() const;
};

/**
 * The engine. One instance runs one sweep; configuration is immutable
 * after construction.
 */
class JobEngine
{
  public:
    struct Config
    {
        /** Journal path; empty disables checkpointing. */
        std::string checkpointPath;
        /**
         * Load an existing journal and re-run only missing shards.
         * Without this flag an existing checkpoint file is an error
         * (protects against clobbering a half-finished run).
         */
        bool resume = false;
        /** Worker threads (0 = auto, SweepRunner policy). */
        unsigned jobs = 0;
        /** Partition: run only shards with index % shardCount == shardIndex. */
        std::size_t shardIndex = 0;
        std::size_t shardCount = 1;
        /** Called (under the commit lock) as (done, partition total). */
        SweepRunner::Progress progress;
        /** Task executor; defaults to runExperiment (tests override). */
        std::function<ExperimentResult(const SweepTask &)> execute;
        /**
         * In-process kill switch: called after every record commit
         * with the number committed this invocation; returning false
         * stops the sweep as a crash would (no more shards claimed,
         * JobReport::aborted set). Null means always keep going.
         */
        std::function<bool(std::size_t)> keepGoing;
        /**
         * Raise SIGKILL after this many commits (0 = off). The
         * JAVELIN_JOB_CRASH_AFTER environment variable sets this when
         * the config leaves it 0.
         */
        std::size_t crashAfter = 0;
        /**
         * Also persist every known completion record into a
         * javelin-kv-v1 store (util/kv_store.hh), keyed by shard key
         * with the record's journal-line JSON as the value. Written
         * in one batch at the end of the run — the store merges
         * requests per page, so a 10,000-shard sweep costs a few
         * hundred page writes, not 10,000 appends. Repeated runs
         * against one store accumulate history (last-write-wins per
         * key). Empty disables.
         */
        std::string resultStorePath;
    };

    JobEngine() = default;
    explicit JobEngine(Config config) : config_(std::move(config)) {}

    /**
     * Run the sweep. `tasks` must be the FULL expansion (all shards,
     * every invocation — partitioning and resume select what
     * executes); `scenario_hash` stamps/validates the journal.
     * Throws JobEngineError on checkpoint problems.
     */
    JobReport run(const std::vector<SweepTask> &tasks,
                  const std::string &scenario_name,
                  const std::string &scenario_hash) const;

  private:
    Config config_;
};

/**
 * Serialize a report as versioned JSON (schema "javelin-sweep-v1"),
 * derived purely from the completion records so that a resumed run
 * reproduces an uninterrupted run's bytes exactly.
 */
void writeJobReport(std::ostream &os, const JobReport &report);

} // namespace harness
} // namespace javelin

#endif // JAVELIN_HARNESS_JOB_ENGINE_HH
