/**
 * @file
 * Report helpers shared by the figure-reproduction benches: paper-style
 * component labels, energy-decomposition tables, EDP tables.
 */

#ifndef JAVELIN_HARNESS_REPORT_HH
#define JAVELIN_HARNESS_REPORT_HH

#include <iosfwd>
#include <vector>

#include "harness/sweep.hh"
#include "util/table.hh"

namespace javelin {
namespace harness {

/** Components shown for a Jikes decomposition (paper Fig. 6 order). */
std::vector<core::ComponentId> jikesComponents();

/** Components shown for a Kaffe decomposition (paper Fig. 9/11). */
std::vector<core::ComponentId> kaffeComponents();

/**
 * Energy-decomposition table: one row per result, one column per
 * component with the percentage of total CPU energy.
 */
Table energyDecompositionTable(
    const std::vector<ExperimentResult> &results,
    const std::vector<core::ComponentId> &components);

/**
 * EDP table: rows = benchmarks, columns = heap sizes, one table per
 * collector is typical. "OOM" marks configurations that did not fit
 * (the reason the paper reports DaCapo only from 48 MB).
 */
Table edpTable(const std::vector<std::vector<ExperimentResult>> &rows,
               const std::vector<std::uint32_t> &heaps_mb);

/**
 * Average/peak power table per component (paper Fig. 8).
 */
Table powerTable(const std::vector<ExperimentResult> &results,
                 const std::vector<core::ComponentId> &components);

/** Echo an experiment one-liner (benchmark, config, headline numbers). */
void printRunSummary(std::ostream &os, const ExperimentResult &res);

/**
 * Surface every failed sweep outcome (shard key + error message) on
 * os; returns the failure count. Drivers call this instead of
 * silently indexing outcome.result — a worker exception must never
 * disappear into a table of zeros.
 */
std::size_t reportSweepFailures(std::ostream &os,
                                const std::vector<SweepTask> &tasks,
                                const std::vector<SweepOutcome> &outcomes);

} // namespace harness
} // namespace javelin

#endif // JAVELIN_HARNESS_REPORT_HH
