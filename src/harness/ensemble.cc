#include "harness/ensemble.hh"

#include <cmath>
#include <mutex>
#include <ostream>
#include <sstream>

#include "jvm/gc/collector.hh"
#include "jvm/jvm.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace javelin {
namespace harness {

namespace {

const char *
platformName(sim::PlatformKind kind)
{
    return kind == sim::PlatformKind::P6 ? "P6" : "PXA255";
}

} // namespace

std::vector<double>
ensembleMetrics(const ExperimentResult &res)
{
    const double seconds = res.run.seconds();
    const double throughput =
        seconds > 0.0
            ? static_cast<double>(res.run.bytecodesExecuted) / seconds
            : 0.0;
    return {
        res.attribution.totalJoules(),
        res.attribution.totalCpuJoules,
        res.attribution.totalMemJoules,
        res.edp(),
        seconds,
        throughput,
        res.attribution.powerOf(core::ComponentId::Gc).cpuJoules,
        res.attribution.powerOf(core::ComponentId::App).cpuJoules,
        // Model-exact total (switch-boundary integration): unlike the
        // attributed total it carries no DAQ-sampling error and no
        // final-partial-window truncation, which on short simulated
        // runs can jitter the attributed total by a few tenths of a
        // percent between otherwise identical trajectories. Effect
        // studies (e.g. the sampler-overhead ablation) difference this
        // metric; the gate keeps reading the attributed energies the
        // paper's rig would report.
        res.groundTruthCpuJoules + res.groundTruthMemJoules,
    };
}

namespace {

/** FNV-1a, so bootstrap streams are stable across standard libraries. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

const std::vector<std::string> &
ensembleMetricNames()
{
    static const std::vector<std::string> names = {
        "total_joules",  "cpu_joules",     "mem_joules",
        "edp_js",        "seconds",        "bytecodes_per_sec",
        "gc_cpu_joules", "app_cpu_joules", "gt_total_joules",
    };
    return names;
}

const MetricSummary *
EnsembleCellResult::metric(const std::string &name) const
{
    for (const auto &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

std::uint64_t
EnsembleRunner::memberProfileSeed(std::uint64_t profile_seed,
                                  std::uint64_t ensemble_seed)
{
    // Same SplitMix64-style mix the sweep engine uses, keyed by the
    // ensemble seed *value* so the executed stream is independent of
    // both the cell's and the seed's position in their lists.
    return SweepRunner::taskSeed(profile_seed,
                                 static_cast<std::size_t>(ensemble_seed));
}

std::vector<EnsembleCellResult>
EnsembleRunner::run(const std::vector<SweepTask> &cells) const
{
    JAVELIN_ASSERT(!config_.seeds.empty(),
                   "ensemble needs at least one seed");
    const std::size_t nSeeds = config_.seeds.size();
    const std::size_t total = cells.size() * nSeeds;

    struct MemberOutcome
    {
        std::vector<double> metrics;
        bool ok = false;
        std::string error;
    };
    std::vector<MemberOutcome> members(total);

    std::mutex progressMutex;
    std::size_t done = 0;
    SweepRunner::parallelFor(
        total,
        [&](std::size_t flat) {
            const std::size_t cellIdx = flat / nSeeds;
            const std::size_t seedIdx = flat % nSeeds;
            const std::uint64_t ensembleSeed = config_.seeds[seedIdx];

            SweepTask task = cells[cellIdx];
            task.profile.seed =
                memberProfileSeed(task.profile.seed, ensembleSeed);
            task.config.seed = ensembleSeed;
            if (config_.senseNoiseVoltsRms > 0.0)
                task.config.senseNoiseVoltsRms =
                    config_.senseNoiseVoltsRms;

            auto &slot = members[flat];
            try {
                const ExperimentResult res =
                    runExperiment(task.config, task.profile);
                if (res.ok()) {
                    slot.metrics = ensembleMetrics(res);
                    slot.ok = true;
                } else {
                    slot.error = res.run.outOfMemory
                                     ? "out of memory"
                                     : "stack overflow";
                }
            } catch (const std::exception &e) {
                slot.error = e.what();
            } catch (...) {
                slot.error = "unknown exception";
            }
            if (config_.progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                config_.progress(++done, total);
            }
        },
        config_.jobs);

    const auto &names = ensembleMetricNames();
    std::vector<EnsembleCellResult> results(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        auto &cell = results[c];
        cell.cell = cells[c];
        std::ostringstream key;
        key << cells[c].profile.name << '/'
            << jvm::vmKindName(cells[c].config.vm) << '/'
            << jvm::collectorName(cells[c].config.collector) << '/'
            << cells[c].config.heapNominalMB << "MB/"
            << platformName(cells[c].config.platform);
        cell.key = key.str();

        cell.metrics.resize(names.size());
        for (std::size_t m = 0; m < names.size(); ++m)
            cell.metrics[m].name = names[m];
        for (std::size_t s = 0; s < nSeeds; ++s) {
            const auto &member = members[c * nSeeds + s];
            if (!member.ok) {
                ++cell.failures;
                if (cell.firstError.empty())
                    cell.firstError = member.error;
                continue;
            }
            for (std::size_t m = 0; m < names.size(); ++m)
                cell.metrics[m].samples.push_back(member.metrics[m]);
        }
        for (std::size_t m = 0; m < names.size(); ++m) {
            auto &metric = cell.metrics[m];
            // Distinct bootstrap stream per (cell, metric): mix the
            // configured seed with stable identifiers, not positions.
            const std::uint64_t seed = SweepRunner::taskSeed(
                config_.bootstrapSeed ^ fnv1a(cell.key), m);
            metric.ci = bootstrapMeanCi(metric.samples,
                                        config_.resamples,
                                        config_.confidence, seed);
        }
    }
    return results;
}

void
writeEnsembleReport(std::ostream &os,
                    const std::vector<EnsembleCellResult> &cells,
                    const EnsembleConfig &config)
{
    os << "{\n";
    os << "  \"schema\": \"javelin-ensemble-v1\",\n";
    os << "  \"seeds\": [";
    for (std::size_t i = 0; i < config.seeds.size(); ++i)
        os << (i ? ", " : "") << config.seeds[i];
    os << "],\n";
    os << "  \"confidence\": ";
    json::writeNumber(os, config.confidence);
    os << ",\n  \"resamples\": " << config.resamples << ",\n";
    os << "  \"sense_noise_volts_rms\": ";
    json::writeNumber(os, config.senseNoiseVoltsRms);
    os << ",\n  \"cells\": [\n";
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const auto &cell = cells[c];
        os << "    {\n      \"key\": ";
        json::writeString(os, cell.key);
        os << ",\n      \"benchmark\": ";
        json::writeString(os, cell.cell.profile.name);
        os << ",\n      \"collector\": ";
        json::writeString(os,
                        jvm::collectorName(cell.cell.config.collector));
        os << ",\n      \"vm\": ";
        json::writeString(os, jvm::vmKindName(cell.cell.config.vm));
        os << ",\n      \"heap_mb\": " << cell.cell.config.heapNominalMB;
        os << ",\n      \"platform\": ";
        json::writeString(os, platformName(cell.cell.config.platform));
        os << ",\n      \"failures\": " << cell.failures;
        os << ",\n      \"metrics\": {\n";
        for (std::size_t m = 0; m < cell.metrics.size(); ++m) {
            const auto &metric = cell.metrics[m];
            os << "        ";
            json::writeString(os, metric.name);
            os << ": {\"samples\": [";
            for (std::size_t i = 0; i < metric.samples.size(); ++i) {
                os << (i ? ", " : "");
                json::writeNumber(os, metric.samples[i]);
            }
            os << "], \"mean\": ";
            json::writeNumber(os, metric.ci.point);
            os << ", \"ci_lo\": ";
            json::writeNumber(os, metric.ci.lo);
            os << ", \"ci_hi\": ";
            json::writeNumber(os, metric.ci.hi);
            os << "}" << (m + 1 < cell.metrics.size() ? "," : "")
               << "\n";
        }
        os << "      }\n    }" << (c + 1 < cells.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace harness
} // namespace javelin
