#include "harness/tenant_set.hh"

#include <algorithm>
#include <limits>

#include "jvm/address.hh"
#include "util/logging.hh"

namespace javelin {
namespace harness {

TenantSet::TenantSet(sim::System &system, core::ComponentPort &port)
    : system_(system), port_(port)
{
    // Tag every GC with the tenant that ran it: at a port transition
    // into Gc the CPU's occupant is the colliding tenant (GC always
    // runs inside a tenant's slice — allocation triggers it).
    port_.addObserver([this](core::ComponentId prev, core::ComponentId next,
                             Tick now) {
        if (next == core::ComponentId::Gc && !gcOpen_) {
            gcOpen_ = true;
            GcInterval gi;
            gi.tenant = onCpuTenant_ >= 0
                            ? static_cast<std::uint32_t>(onCpuTenant_)
                            : 0;
            gi.begin = now;
            gi.end = now;
            gcIntervals_.push_back(gi);
        } else if (prev == core::ComponentId::Gc && gcOpen_) {
            gcOpen_ = false;
            gcIntervals_.back().end = now;
        }
    });
}

TenantSet::~TenantSet() = default;

std::uint32_t
TenantSet::add(const TenantSpec &spec)
{
    JAVELIN_ASSERT(!ran_, "tenants must be added before run()");
    JAVELIN_ASSERT(spec.program != nullptr, "tenant needs a program");
    const auto idx = static_cast<std::uint32_t>(vms_.size());
    vms_.push_back(std::make_unique<jvm::Jvm>(system_, *spec.program,
                                              spec.vm, port_));
    vms_.back()->setYieldEachQuantum(true);
    vms_.back()->setOnCpu(false);
    tenants_.emplace_back(spec);
    return idx;
}

void
TenantSet::charge(Accum &acct)
{
    system_.syncPower();
    const double cpuJ = system_.cpuJoules();
    const double memJ = system_.memoryJoules();
    const Tick now = system_.cpu().now();
    const sim::PerfCounters counters = system_.counters();

    acct.cpu.add(cpuJ - refCpuJ_);
    acct.mem.add(memJ - refMemJ_);
    acct.ticks += now - refTick_;
    acct.counters += counters - refCounters_;

    refCpuJ_ = cpuJ;
    refMemJ_ = memJ;
    refTick_ = now;
    refCounters_ = counters;
}

void
TenantSet::pumpArrivals(Tick now)
{
    for (auto &t : tenants_) {
        if (t.failed)
            continue;
        while (t.generated < t.spec.requests && t.nextArrival <= now) {
            t.queue.push_back(t.nextArrival);
            ++t.arrived;
            ++t.generated;
            if (t.generated < t.spec.requests)
                t.nextArrival = t.epochTick + t.arrivals.next();
        }
    }
}

bool
TenantSet::runnable(const TenantState &t) const
{
    if (t.failed)
        return false;
    const auto &vm = *vms_[&t - tenants_.data()];
    return vm.requestActive() || !t.queue.empty();
}

bool
TenantSet::tenantDone(const TenantState &t) const
{
    if (t.failed)
        return true;
    const auto &vm = *vms_[&t - tenants_.data()];
    return t.generated >= t.spec.requests && t.queue.empty() &&
           !vm.requestActive();
}

CoTenancyResult
TenantSet::run()
{
    JAVELIN_ASSERT(!ran_, "a TenantSet runs exactly once");
    JAVELIN_ASSERT(!vms_.empty(), "no tenants");
    ran_ = true;

    sim::CpuModel &cpu = system_.cpu();
    CoTenancyResult res;
    res.startTick = cpu.now();

    // Model-total baselines (cross-check path, integrated by the power
    // models independently of the per-account partition).
    system_.syncPower();
    const double modelCpu0 = system_.cpuJoules();
    const double modelMem0 = system_.memoryJoules();

    // Attribution epoch: everything from here on lands in an account.
    refCpuJ_ = modelCpu0;
    refMemJ_ = modelMem0;
    refTick_ = cpu.now();
    refCounters_ = system_.counters();

    Accum idle;

    // Boot every tenant in index order; boot work (class preloading on
    // Kaffe, port/heap setup) is charged to the booting tenant.
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        TenantState &t = tenants_[i];
        onCpuTenant_ = static_cast<std::int32_t>(i);
        vms_[i]->setOnCpu(true);
        vms_[i]->beginService();
        vms_[i]->setOnCpu(false);
        charge(t.accum);
        // The arrival timeline starts when the set is up, offset by
        // the tenant's own seeded process.
        t.epochTick = cpu.now();
        if (t.spec.requests > 0)
            t.nextArrival = t.epochTick + t.arrivals.next();
        else
            t.generated = t.spec.requests;
    }
    onCpuTenant_ = -1;

    const auto n = tenants_.size();
    std::size_t last = n - 1;
    constexpr Tick kNever = std::numeric_limits<Tick>::max();

    for (;;) {
        pumpArrivals(cpu.now());

        // Deterministic round-robin: first runnable tenant after the
        // last one that ran.
        std::size_t pick = n;
        for (std::size_t k = 1; k <= n; ++k) {
            const std::size_t cand = (last + k) % n;
            if (runnable(tenants_[cand])) {
                pick = cand;
                break;
            }
        }

        if (pick == n) {
            // Nobody runnable: done, or waiting on future arrivals.
            bool allDone = true;
            Tick earliest = kNever;
            for (const auto &t : tenants_) {
                if (!tenantDone(t))
                    allDone = false;
                if (!t.failed && t.generated < t.spec.requests)
                    earliest = std::min(earliest, t.nextArrival);
            }
            if (allDone || earliest == kNever)
                break;
            if (earliest > cpu.now()) {
                system_.idleFor(earliest - cpu.now());
                charge(idle);
            }
            continue;
        }

        TenantState &t = tenants_[pick];
        jvm::Jvm &vm = *vms_[pick];

        if (pick != last) {
            // Thread-scheduler dispatch on a tenant switch, attributed
            // to the incoming tenant (it runs on its way in).
            core::ComponentScope scope(port_,
                                       core::ComponentId::Scheduler);
            cpu.execute(40, jvm::kSchedulerCode, 160);
            cpu.store(jvm::kStackBase + 0x10000);
            ++res.contextSwitches;
        }
        last = pick;

        onCpuTenant_ = static_cast<std::int32_t>(pick);
        vm.setOnCpu(true);
        if (!vm.requestActive()) {
            t.inFlightArrival = t.queue.front();
            t.queue.pop_front();
            t.inFlightStartJoules =
                t.accum.cpu.value() + t.accum.mem.value();
            vm.startRequest();
        }
        bool finished = false;
        try {
            finished = vm.runRequestSlice();
        } catch (const jvm::OutOfMemoryError &) {
            vm.abortRequest();
            t.failed = true;
            t.failMessage = "OutOfMemoryError";
        } catch (const jvm::StackOverflowError &) {
            vm.abortRequest();
            t.failed = true;
            t.failMessage = "StackOverflowError";
        }
        vm.setOnCpu(false);
        ++t.slices;
        charge(t.accum);
        onCpuTenant_ = -1;

        if (finished) {
            ++t.served;
            t.latenciesUs.push_back(
                static_cast<double>(cpu.now() - t.inFlightArrival) /
                static_cast<double>(kTicksPerMicro));
            t.requestJoules += t.accum.cpu.value() +
                               t.accum.mem.value() -
                               t.inFlightStartJoules;
        }
    }

    res.endTick = cpu.now();
    res.gcIntervals = std::move(gcIntervals_);

    res.idleCpuJoules = idle.cpu.value();
    res.idleMemJoules = idle.mem.value();
    res.idleTicks = idle.ticks;

    res.tenants.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        TenantState &t = tenants_[i];
        TenantAccount &a = res.tenants[i];
        a.cpuJoules = t.accum.cpu.value();
        a.memJoules = t.accum.mem.value();
        a.ticks = t.accum.ticks;
        a.counters = t.accum.counters;
        a.requestsArrived = t.arrived;
        a.requestsServed = t.served;
        a.slices = t.slices;
        a.failed = t.failed;
        a.failMessage = t.failMessage;
        a.vm = vms_[i]->endService();
        a.gcCollections = a.vm.gc.collections;
        a.gcPauseTicks = a.vm.gc.pauseTicks;
        if (!t.latenciesUs.empty()) {
            std::vector<double> sorted = t.latenciesUs;
            std::sort(sorted.begin(), sorted.end());
            double sum = 0.0;
            for (double v : sorted)
                sum += v;
            a.meanLatencyUs = sum / static_cast<double>(sorted.size());
            // Nearest-rank p95.
            const std::size_t rank = std::min(
                sorted.size() - 1,
                static_cast<std::size_t>(0.95 *
                                         static_cast<double>(sorted.size())));
            a.p95LatencyUs = sorted[rank];
            a.maxLatencyUs = sorted.back();
        }
        if (t.served > 0)
            a.energyPerRequestJ =
                t.requestJoules / static_cast<double>(t.served);
    }

    // Platform totals: DEFINED as the index-order sum of the accounts
    // (conservation is bit-for-bit by construction — DESIGN.md §11).
    double cpuSum = 0.0, memSum = 0.0;
    for (const auto &a : res.tenants) {
        cpuSum += a.cpuJoules;
        memSum += a.memJoules;
    }
    cpuSum += res.idleCpuJoules;
    memSum += res.idleMemJoules;
    res.platformCpuJoules = cpuSum;
    res.platformMemJoules = memSum;

    // Cross-check: the power models' own integration over the run.
    system_.syncPower();
    res.modelCpuJoules = system_.cpuJoules() - modelCpu0;
    res.modelMemJoules = system_.memoryJoules() - modelMem0;
    return res;
}

} // namespace harness
} // namespace javelin
