/**
 * @file
 * Seed-ensemble experiment runner: the statistical layer over
 * SweepRunner (ROADMAP item 4).
 *
 * A single pinned run cannot distinguish a real energy regression from
 * run-to-run variation, so the regression harness runs every
 * (workload x collector x heap) cell over an explicit list of ensemble
 * seeds. Each seed perturbs the synthetic program construction (the
 * benchmark profile's build seed) and the DAQ sense-noise streams,
 * giving an honest distribution of per-component joules, EDP and
 * throughput per cell. The runner then reduces each metric to
 * percentile-bootstrap confidence intervals (util/bootstrap.hh) and can
 * serialize the whole ensemble — per-seed samples included — as a
 * versioned JSON report that scripts/compare_ensemble.py gates on
 * statistically significant shifts (Mann-Whitney + permutation test)
 * instead of fixed thresholds.
 *
 * Determinism: the executed seeds depend only on (cell base seeds,
 * ensemble seed value) — never on the cell's position in the matrix —
 * so adding or reordering cells does not disturb any other cell's
 * samples, and a fixed seed list reproduces the report bit for bit at
 * any worker count.
 */

#ifndef JAVELIN_HARNESS_ENSEMBLE_HH
#define JAVELIN_HARNESS_ENSEMBLE_HH

#include <iosfwd>

#include "harness/sweep.hh"
#include "util/bootstrap.hh"

namespace javelin {
namespace harness {

/** One metric of one cell: per-seed samples plus the bootstrap CI. */
struct MetricSummary
{
    std::string name;
    /** One value per ensemble seed, in seed-list order. */
    std::vector<double> samples;
    BootstrapCi ci;
};

/** All metrics of one (benchmark x configuration) cell. */
struct EnsembleCellResult
{
    /** Stable identity: benchmark/vm/collector/heap/platform. */
    std::string key;
    SweepTask cell;
    std::vector<MetricSummary> metrics;
    /** Seeds whose run failed or threw (excluded from samples). */
    std::size_t failures = 0;
    /** Error message of the first failed seed (diagnostics). */
    std::string firstError;

    const MetricSummary *metric(const std::string &name) const;
};

/**
 * Ensemble runner configuration. The seed list is explicit (not a
 * count) so baselines can pin the exact ensemble they were captured
 * with; compare_ensemble.py refuses to compare reports whose seed
 * lists differ.
 */
struct EnsembleConfig
{
    /** Ensemble seeds; one experiment per (cell, seed). */
    std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
    /** Bootstrap resamples per metric. */
    std::size_t resamples = 2000;
    /** Two-sided CI confidence level. */
    double confidence = 0.95;
    /** Seed for the bootstrap resampling RNG. */
    std::uint64_t bootstrapSeed = 0x1ceb00daULL;
    /** Gaussian DAQ sense noise applied to every run (volts RMS). */
    double senseNoiseVoltsRms = 0.0005;
    /** Worker threads (0 = auto, same policy as SweepRunner). */
    unsigned jobs = 0;
    /** Progress callback, called after every completed run. */
    SweepRunner::Progress progress;
};

/** The metric names every cell reports, in report order. */
const std::vector<std::string> &ensembleMetricNames();

/**
 * The fixed per-run metric vector, in ensembleMetricNames() order.
 * Shared with the job engine, whose checkpoint payloads journal the
 * same vector per shard.
 */
std::vector<double> ensembleMetrics(const ExperimentResult &res);

/**
 * Runs cells x seeds and reduces to per-cell metric distributions.
 */
class EnsembleRunner
{
  public:
    EnsembleRunner() = default;
    explicit EnsembleRunner(EnsembleConfig config)
        : config_(std::move(config))
    {
    }

    const EnsembleConfig &config() const { return config_; }

    /**
     * Run every cell over the full seed ensemble (cells.size() *
     * seeds.size() experiments, fanned out with the SweepRunner worker
     * policy) and return one result per cell, in input order.
     */
    std::vector<EnsembleCellResult>
    run(const std::vector<SweepTask> &cells) const;

    /**
     * The exact seeds an ensemble run executes for one cell: the cell's
     * own profile/config seeds mixed with each ensemble seed value.
     * Exposed so tests can reproduce a single ensemble member by hand.
     */
    static std::uint64_t memberProfileSeed(std::uint64_t profile_seed,
                                           std::uint64_t ensemble_seed);

  private:
    EnsembleConfig config_;
};

/**
 * Serialize an ensemble as versioned JSON (schema
 * "javelin-ensemble-v1"): run metadata, the seed list, and per cell the
 * per-seed samples plus bootstrap CI of every metric. This is the
 * interchange format of the energy-regression gate; keep it in sync
 * with scripts/compare_ensemble.py.
 */
void writeEnsembleReport(std::ostream &os,
                         const std::vector<EnsembleCellResult> &cells,
                         const EnsembleConfig &config);

} // namespace harness
} // namespace javelin

#endif // JAVELIN_HARNESS_ENSEMBLE_HH
