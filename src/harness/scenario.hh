/**
 * @file
 * Declarative sweep scenarios: the characterization matrix as data.
 *
 * A scenario is a JSON document (schema "javelin-scenario-v1") giving a
 * base ExperimentConfig plus sweep axes (benchmark, platform, vm,
 * collector, heap, DVFS point, seed). expandScenario() takes the cross
 * product in a fixed axis order and yields the same SweepTask list the
 * compiled-in driver loops used to build, so sweeps move from code into
 * committed files that `javelin-sweep` executes, checkpoints, and
 * resumes (harness/job_engine.hh).
 *
 * Parsing is strict: unknown keys, duplicate keys, out-of-range values
 * and unknown benchmark/enum names are all rejected with the offending
 * source line ("line 12: unknown key ..."), so a typo'd knob can never
 * silently run the default matrix. Canonical serialization
 * (writeScenario) writes every base field explicitly; scenarioHash()
 * fingerprints that canonical form and is what the job engine stamps
 * into checkpoints to refuse stale resumes.
 */

#ifndef JAVELIN_HARNESS_SCENARIO_HH
#define JAVELIN_HARNESS_SCENARIO_HH

#include <stdexcept>

#include "harness/sweep.hh"

namespace javelin {
namespace harness {

/** Scenario rejection; message carries "line N:" when locatable. */
struct ScenarioError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * One declarative sweep: a base configuration and the axes swept over
 * it. Empty axis vectors mean "the base value only".
 */
struct Scenario
{
    std::string name;
    ExperimentConfig base;

    /** Benchmark names (workloads::benchmark); must be non-empty. */
    std::vector<std::string> benchmarks;
    std::vector<sim::PlatformKind> platforms;
    std::vector<jvm::VmKind> vms;
    std::vector<jvm::CollectorKind> collectors;
    std::vector<std::uint32_t> heapsMB;
    std::vector<int> dvfsPoints;
    /** Co-tenancy axes (DESIGN.md §11): tenant count, arrival shape. */
    std::vector<std::uint32_t> tenantCounts;
    std::vector<workloads::ArrivalKind> arrivals;
    std::vector<std::uint64_t> seeds;

    /** Shards the expansion yields (product of effective axis sizes). */
    std::size_t shardCount() const;
};

/** Parse and validate a scenario document. Throws ScenarioError. */
Scenario parseScenario(const std::string &text);

/** Parse a scenario file; errors are prefixed with the path. */
Scenario parseScenarioFile(const std::string &path);

/**
 * Canonical serialization: every base field written explicitly, axes
 * only when non-empty. parse(write(s)) == s, and write(parse(text))
 * is a fixed normal form of text.
 */
void writeScenario(std::ostream &os, const Scenario &s);

/** FNV-1a hex fingerprint of the canonical serialization. */
std::string scenarioHash(const Scenario &s);

/**
 * Cross product of the axes in fixed nesting order — benchmark,
 * platform, vm, collector, heap, dvfs, tenants, arrival, seed
 * (innermost) — mirroring the loop order of the original compiled
 * drivers, so ported sweeps keep their task indices and hence their
 * per-task seed streams (the co-tenancy axes are singletons in every
 * pre-existing scenario, so its indices are unchanged).
 */
std::vector<SweepTask> expandScenario(const Scenario &s);

/**
 * Stable shard identity used in checkpoints, reports and failure
 * listings: benchmark/vm/collector/heap/platform/dvfs/seed.
 */
std::string shardKey(const SweepTask &task);

/**
 * The committed sweeps of the ported drivers, by name ("fig07-edp",
 * "abl-dvfs", "ensemble-regression"). The pinned fixtures under
 * tests/fixtures/ (.scenario.json) are the canonical serializations
 * of exactly these. Throws ScenarioError for an unknown name.
 */
Scenario builtinScenario(const std::string &name);

/** Names builtinScenario() accepts. */
const std::vector<std::string> &builtinScenarioNames();

} // namespace harness
} // namespace javelin

#endif // JAVELIN_HARNESS_SCENARIO_HH
