#include "harness/experiment.hh"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "core/energy_accounting.hh"
#include "util/logging.hh"

namespace javelin {
namespace harness {

double
ExperimentResult::edp() const
{
    return core::energyDelayProduct(attribution.totalJoules(),
                                    run.seconds());
}

std::uint64_t
scaledHeapBytes(const ExperimentConfig &config)
{
    const auto raw = static_cast<std::uint64_t>(
        config.heapNominalMB * static_cast<double>(kMiB) *
        config.heapScale);
    // Block-align for the free-list spaces; enforce a sane floor.
    const std::uint64_t block = 16 * 1024;
    return std::max<std::uint64_t>(8 * block, raw / block * block);
}

sim::PlatformSpec
scaledPlatformSpec(const ExperimentConfig &config)
{
    sim::PlatformSpec spec = sim::platformSpec(config.platform);
    if (config.scaleCaches) {
        // Preserve heap:cache geometry (DESIGN.md §2): L1 halves, L2
        // quarters. Associativity and line size stay as measured.
        spec.memory.l1i.sizeBytes /= 2;
        spec.memory.l1d.sizeBytes /= 2;
        if (spec.memory.l2)
            spec.memory.l2->sizeBytes /= 4;
    }
    if (config.daqPeriod)
        spec.daqPeriod = config.daqPeriod;
    if (config.hpmPeriod)
        spec.hpmPeriod = config.hpmPeriod;
    return spec;
}

ExperimentResult
runExperiment(const ExperimentConfig &config, const jvm::Program &program)
{
    ExperimentResult res;
    res.config = config;
    res.benchmark = program.name;

    sim::System system(scaledPlatformSpec(config));

    jvm::JvmConfig vmCfg;
    vmCfg.kind = config.vm;
    vmCfg.collector = config.collector;
    vmCfg.heapBytes = scaledHeapBytes(config);
    vmCfg.interp = jvm::interpConfigFor(config.vm);
    vmCfg.chargePortWrites = config.chargePortWrites;
    vmCfg.adaptiveOptimization = config.adaptiveOptimization;
    vmCfg.chargeBarrierCost = config.chargeBarrierCost;

    if (config.dvfsPoint >= 0)
        system.dvfs().set(static_cast<std::size_t>(config.dvfsPoint));

    jvm::Jvm vm(system, program, vmCfg);

    core::Daq::Config daqCfg;
    daqCfg.cpuSense.noiseVoltsRms = config.senseNoiseVoltsRms;
    daqCfg.cpuSense.seed = config.seed * 31 + 1;
    daqCfg.memSense.noiseVoltsRms = config.senseNoiseVoltsRms;
    daqCfg.memSense.seed = config.seed * 31 + 2;
    // Optional async trace capture (tee: the in-memory traces still
    // feed attribution, the spools persist them without touching the
    // measured path's results).
    std::unique_ptr<core::TraceSpool> powerSpool, perfSpool;
    if (!config.traceSpoolDir.empty()) {
        std::filesystem::create_directories(config.traceSpoolDir);
        core::TraceSpool::Config sp;
        sp.backend = core::TraceSpool::backendFromEnv();
        sp.path = config.traceSpoolDir + "/" + program.name +
                  ".power.jtrc";
        sp.kind = core::tracefmt::RecordKind::Power;
        powerSpool = std::make_unique<core::TraceSpool>(sp);
        sp.path = config.traceSpoolDir + "/" + program.name +
                  ".perf.jtrc";
        sp.kind = core::tracefmt::RecordKind::Perf;
        perfSpool = std::make_unique<core::TraceSpool>(sp);
        daqCfg.spool = powerSpool.get();
    }
    core::Daq daq(system, vm.port(), daqCfg);
    core::HpmSampler::Config hpmCfg;
    hpmCfg.isrCostCycles = config.hpmIsrCostCycles;
    hpmCfg.spool = perfSpool.get();
    core::HpmSampler hpm(system, vm.port(), hpmCfg);
    core::GroundTruthAccountant truth(system, vm.port());

    res.run = vm.run();
    truth.finalize();
    // Flush the in-progress partial sampling windows so measured
    // totals conserve the run's full energy/counter deltas.
    daq.stop();
    hpm.stop();
    if (powerSpool)
        powerSpool->close();
    if (perfSpool)
        perfSpool->close();
    res.counters = system.counters();

    res.attribution = core::attribute(daq.trace(), hpm.trace());
    for (std::size_t i = 0; i < core::kNumComponents; ++i)
        res.groundTruth[i] =
            truth.slice(static_cast<core::ComponentId>(i));
    res.groundTruthCpuJoules = truth.totalCpuJoules();
    res.groundTruthMemJoules = truth.totalMemJoules();
    res.maxTemperatureC = system.thermal().maxTemperatureC();
    res.throttledSeconds = system.thermal().throttledSeconds();
    return res;
}

namespace {

/**
 * Request-sized builds: one co-tenancy request is the benchmark's
 * program with its allocation volume shrunk by this divisor, so a
 * request is milliseconds, not the full batch run (DESIGN.md §11).
 */
constexpr double kRequestVolumeDivisor = 64.0;

/** Collector for tenant i under the rotation policy. */
jvm::CollectorKind
tenantCollector(const ExperimentConfig &config, std::uint32_t i)
{
    if (!config.tenantCollectorRotate)
        return config.collector;
    constexpr std::uint32_t kKinds = 5; // CollectorKind enumerators
    const auto base = static_cast<std::uint32_t>(config.collector);
    return static_cast<jvm::CollectorKind>((base + i) % kKinds);
}

ExperimentResult
runCoTenancy(const ExperimentConfig &config,
             const workloads::BenchmarkProfile &profile)
{
    ExperimentResult res;
    res.config = config;
    res.benchmark = profile.name;

    sim::System system(scaledPlatformSpec(config));
    if (config.dvfsPoint >= 0)
        system.dvfs().set(static_cast<std::size_t>(config.dvfsPoint));

    // Per-tenant programs: the same benchmark, request-sized, with an
    // independent seed per tenant so tenants are statistically alike
    // but not in lockstep.
    workloads::StudyScale scale = workloads::studyScaleFor(config.dataset);
    scale.volume = config.heapScale / kRequestVolumeDivisor;
    std::vector<jvm::Program> programs;
    programs.reserve(config.tenants);
    for (std::uint32_t i = 0; i < config.tenants; ++i) {
        workloads::BenchmarkProfile p = profile;
        p.seed = profile.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
        programs.push_back(workloads::buildProgram(p, scale));
    }

    core::ComponentPort port(
        system, core::ComponentPort::Config{2.0, config.chargePortWrites});

    TenantSet set(system, port);
    for (std::uint32_t i = 0; i < config.tenants; ++i) {
        TenantSpec spec;
        spec.vm.kind = config.vm;
        spec.vm.collector = tenantCollector(config, i);
        spec.vm.heapBytes = scaledHeapBytes(config);
        spec.vm.interp = jvm::interpConfigFor(config.vm);
        spec.vm.chargePortWrites = config.chargePortWrites;
        spec.vm.adaptiveOptimization = config.adaptiveOptimization;
        spec.vm.chargeBarrierCost = config.chargeBarrierCost;
        spec.program = &programs[i];
        spec.arrival.kind = config.arrival;
        spec.arrival.ratePerSec = config.requestRateHz;
        spec.requests = config.requestsPerTenant;
        spec.seed = config.seed * 131 + 2 * i + 1;
        set.add(spec);
    }

    core::Daq::Config daqCfg;
    daqCfg.cpuSense.noiseVoltsRms = config.senseNoiseVoltsRms;
    daqCfg.cpuSense.seed = config.seed * 31 + 1;
    daqCfg.memSense.noiseVoltsRms = config.senseNoiseVoltsRms;
    daqCfg.memSense.seed = config.seed * 31 + 2;
    core::Daq daq(system, port, daqCfg);
    core::HpmSampler::Config hpmCfg;
    hpmCfg.isrCostCycles = config.hpmIsrCostCycles;
    core::HpmSampler hpm(system, port, hpmCfg);
    core::GroundTruthAccountant truth(system, port);

    res.cotenancy = set.run();
    truth.finalize();
    daq.stop();
    hpm.stop();
    res.counters = system.counters();

    res.attribution = core::attribute(daq.trace(), hpm.trace());
    for (std::size_t i = 0; i < core::kNumComponents; ++i)
        res.groundTruth[i] =
            truth.slice(static_cast<core::ComponentId>(i));
    res.groundTruthCpuJoules = truth.totalCpuJoules();
    res.groundTruthMemJoules = truth.totalMemJoules();
    res.maxTemperatureC = system.thermal().maxTemperatureC();
    res.throttledSeconds = system.thermal().throttledSeconds();

    // Cross-tenant aggregate rollup, so every downstream consumer of
    // ExperimentResult::run keeps working on co-tenancy shards.
    res.run.startTick = res.cotenancy.startTick;
    res.run.endTick = res.cotenancy.endTick;
    for (const auto &a : res.cotenancy.tenants) {
        res.run.bytecodesExecuted += a.vm.bytecodesExecuted;
        res.run.classesLoaded += a.vm.classesLoaded;
        res.run.methodsCompiled += a.vm.methodsCompiled;
        res.run.methodsOptimized += a.vm.methodsOptimized;
        res.run.gc.collections += a.vm.gc.collections;
        res.run.gc.minorCollections += a.vm.gc.minorCollections;
        res.run.gc.majorCollections += a.vm.gc.majorCollections;
        res.run.gc.pauseTicks += a.vm.gc.pauseTicks;
        res.run.gc.bytesAllocated += a.vm.gc.bytesAllocated;
        res.run.gc.objectsAllocated += a.vm.gc.objectsAllocated;
        res.run.gc.bytesCopied += a.vm.gc.bytesCopied;
        res.run.gc.objectsCopied += a.vm.gc.objectsCopied;
        res.run.gc.objectsMarked += a.vm.gc.objectsMarked;
        res.run.gc.bytesFreed += a.vm.gc.bytesFreed;
        res.run.gc.barrierHits += a.vm.gc.barrierHits;
        res.run.gc.remsetEntries += a.vm.gc.remsetEntries;
        if (a.failed && !res.failed) {
            res.failed = true;
            res.failMessage = "tenant failed: " + a.failMessage;
        }
    }
    return res;
}

} // namespace

ExperimentResult
runExperiment(const ExperimentConfig &config,
              const workloads::BenchmarkProfile &profile)
{
    if (config.tenants > 0)
        return runCoTenancy(config, profile);
    workloads::StudyScale scale = workloads::studyScaleFor(config.dataset);
    scale.volume = config.heapScale;
    const jvm::Program program = workloads::buildProgram(profile, scale);
    ExperimentResult res = runExperiment(config, program);
    res.benchmark = profile.name;
    return res;
}

} // namespace harness
} // namespace javelin
