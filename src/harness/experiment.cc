#include "harness/experiment.hh"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "core/energy_accounting.hh"
#include "util/logging.hh"

namespace javelin {
namespace harness {

double
ExperimentResult::edp() const
{
    return core::energyDelayProduct(attribution.totalJoules(),
                                    run.seconds());
}

std::uint64_t
scaledHeapBytes(const ExperimentConfig &config)
{
    const auto raw = static_cast<std::uint64_t>(
        config.heapNominalMB * static_cast<double>(kMiB) *
        config.heapScale);
    // Block-align for the free-list spaces; enforce a sane floor.
    const std::uint64_t block = 16 * 1024;
    return std::max<std::uint64_t>(8 * block, raw / block * block);
}

sim::PlatformSpec
scaledPlatformSpec(const ExperimentConfig &config)
{
    sim::PlatformSpec spec = sim::platformSpec(config.platform);
    if (config.scaleCaches) {
        // Preserve heap:cache geometry (DESIGN.md §2): L1 halves, L2
        // quarters. Associativity and line size stay as measured.
        spec.memory.l1i.sizeBytes /= 2;
        spec.memory.l1d.sizeBytes /= 2;
        if (spec.memory.l2)
            spec.memory.l2->sizeBytes /= 4;
    }
    if (config.daqPeriod)
        spec.daqPeriod = config.daqPeriod;
    if (config.hpmPeriod)
        spec.hpmPeriod = config.hpmPeriod;
    return spec;
}

ExperimentResult
runExperiment(const ExperimentConfig &config, const jvm::Program &program)
{
    ExperimentResult res;
    res.config = config;
    res.benchmark = program.name;

    sim::System system(scaledPlatformSpec(config));

    jvm::JvmConfig vmCfg;
    vmCfg.kind = config.vm;
    vmCfg.collector = config.collector;
    vmCfg.heapBytes = scaledHeapBytes(config);
    vmCfg.interp = jvm::interpConfigFor(config.vm);
    vmCfg.chargePortWrites = config.chargePortWrites;
    vmCfg.adaptiveOptimization = config.adaptiveOptimization;
    vmCfg.chargeBarrierCost = config.chargeBarrierCost;

    if (config.dvfsPoint >= 0)
        system.dvfs().set(static_cast<std::size_t>(config.dvfsPoint));

    jvm::Jvm vm(system, program, vmCfg);

    core::Daq::Config daqCfg;
    daqCfg.cpuSense.noiseVoltsRms = config.senseNoiseVoltsRms;
    daqCfg.cpuSense.seed = config.seed * 31 + 1;
    daqCfg.memSense.noiseVoltsRms = config.senseNoiseVoltsRms;
    daqCfg.memSense.seed = config.seed * 31 + 2;
    // Optional async trace capture (tee: the in-memory traces still
    // feed attribution, the spools persist them without touching the
    // measured path's results).
    std::unique_ptr<core::TraceSpool> powerSpool, perfSpool;
    if (!config.traceSpoolDir.empty()) {
        std::filesystem::create_directories(config.traceSpoolDir);
        core::TraceSpool::Config sp;
        sp.backend = core::TraceSpool::backendFromEnv();
        sp.path = config.traceSpoolDir + "/" + program.name +
                  ".power.jtrc";
        sp.kind = core::tracefmt::RecordKind::Power;
        powerSpool = std::make_unique<core::TraceSpool>(sp);
        sp.path = config.traceSpoolDir + "/" + program.name +
                  ".perf.jtrc";
        sp.kind = core::tracefmt::RecordKind::Perf;
        perfSpool = std::make_unique<core::TraceSpool>(sp);
        daqCfg.spool = powerSpool.get();
    }
    core::Daq daq(system, vm.port(), daqCfg);
    core::HpmSampler::Config hpmCfg;
    hpmCfg.isrCostCycles = config.hpmIsrCostCycles;
    hpmCfg.spool = perfSpool.get();
    core::HpmSampler hpm(system, vm.port(), hpmCfg);
    core::GroundTruthAccountant truth(system, vm.port());

    res.run = vm.run();
    truth.finalize();
    if (powerSpool)
        powerSpool->close();
    if (perfSpool)
        perfSpool->close();
    res.counters = system.counters();

    res.attribution = core::attribute(daq.trace(), hpm.trace());
    for (std::size_t i = 0; i < core::kNumComponents; ++i)
        res.groundTruth[i] =
            truth.slice(static_cast<core::ComponentId>(i));
    res.groundTruthCpuJoules = truth.totalCpuJoules();
    res.groundTruthMemJoules = truth.totalMemJoules();
    res.maxTemperatureC = system.thermal().maxTemperatureC();
    res.throttledSeconds = system.thermal().throttledSeconds();
    return res;
}

ExperimentResult
runExperiment(const ExperimentConfig &config,
              const workloads::BenchmarkProfile &profile)
{
    workloads::StudyScale scale = workloads::studyScaleFor(config.dataset);
    scale.volume = config.heapScale;
    const jvm::Program program = workloads::buildProgram(profile, scale);
    ExperimentResult res = runExperiment(config, program);
    res.benchmark = profile.name;
    return res;
}

} // namespace harness
} // namespace javelin
