/**
 * @file
 * Multi-JVM co-tenancy on one simulated platform (DESIGN.md §11).
 *
 * A TenantSet interleaves several jvm::Jvm instances on one
 * sim::System: the tenants share the memory hierarchy (caches, DRAM),
 * the power models, the thermal package and the DVFS budget — exactly
 * the coupling the paper's real machines exhibit when several VMs run
 * on one box — while each keeps a private heap, collector, class
 * loader and compiler.
 *
 * Scheduling is deterministic round-robin over runnable tenants at
 * interpreter-quantum granularity: every Jvm is put in
 * yield-each-quantum mode, so a slice is exactly one scheduling
 * quantum (quantumBytecodes bytecodes) or less if the request
 * finishes. Tenant switches charge the paper's scheduler-dispatch
 * path, attributed to the incoming tenant. Because all interleaving
 * decisions are functions of simulated state only, a co-tenancy run
 * is bit-for-bit reproducible from its seeds.
 *
 * Energy attribution partitions chronologically: at every scheduling
 * boundary the cumulative platform CPU/memory joules, the elapsed
 * ticks and the HPM counter block are read, and the delta since the
 * previous boundary is charged to the account of whoever occupied the
 * CPU (a tenant, or the idle account while the set waits for the next
 * arrival). Platform totals are *defined* as the index-order sum of
 * the per-tenant and idle accounts, so conservation — the sum of the
 * parts equals the whole — holds bit-for-bit by construction; the
 * independently-integrated power-model totals are carried alongside
 * as a cross-check (equal up to floating-point reassociation).
 */

#ifndef JAVELIN_HARNESS_TENANT_SET_HH
#define JAVELIN_HARNESS_TENANT_SET_HH

#include <deque>
#include <memory>
#include <vector>

#include "jvm/jvm.hh"
#include "util/kahan.hh"
#include "workloads/service.hh"

namespace javelin {
namespace harness {

/**
 * One tenant's definition: a VM personality serving requests of one
 * program under one arrival process.
 */
struct TenantSpec
{
    jvm::JvmConfig vm;
    /** Program each request executes (non-owning; outlives the set). */
    const jvm::Program *program = nullptr;
    workloads::ArrivalConfig arrival;
    /** Requests to serve (0 = an idle tenant that only boots). */
    std::uint32_t requests = 32;
    /** Seed of the tenant's arrival timeline. */
    std::uint64_t seed = 1;
};

/**
 * Everything attributed to one tenant over a co-tenancy run.
 */
struct TenantAccount
{
    /** Platform energy charged while this tenant occupied the CPU. */
    double cpuJoules = 0.0;
    double memJoules = 0.0;
    /** Simulated time this tenant occupied the CPU. */
    Tick ticks = 0;
    /** HPM counter deltas accumulated while on-CPU. */
    sim::PerfCounters counters;

    std::uint32_t requestsArrived = 0;
    std::uint32_t requestsServed = 0;
    /** Scheduling slices this tenant ran. */
    std::uint64_t slices = 0;

    /** Request latency (arrival to completion), microseconds. */
    double meanLatencyUs = 0.0;
    double p95LatencyUs = 0.0;
    double maxLatencyUs = 0.0;
    /** Mean platform energy charged to the tenant per served request. */
    double energyPerRequestJ = 0.0;

    std::uint64_t gcCollections = 0;
    Tick gcPauseTicks = 0;

    /** The tenant VM's own rollup (bytecodes, GC stats, compiles). */
    jvm::RunResult vm;

    bool failed = false;
    std::string failMessage;
};

/** One garbage collection, tagged with the tenant that ran it. */
struct GcInterval
{
    std::uint32_t tenant = 0;
    Tick begin = 0;
    Tick end = 0;
};

/**
 * Result of one co-tenancy run.
 */
struct CoTenancyResult
{
    std::vector<TenantAccount> tenants;

    /** Charged while no tenant was runnable (waiting for arrivals). */
    double idleCpuJoules = 0.0;
    double idleMemJoules = 0.0;
    Tick idleTicks = 0;

    /**
     * Platform totals, defined as the index-order sum of the tenant
     * accounts plus idle: Σ tenants[i].cpuJoules + idleCpuJoules.
     * Conservation is bit-for-bit by construction (see file header).
     */
    double platformCpuJoules = 0.0;
    double platformMemJoules = 0.0;

    /** Independently-integrated power-model deltas (cross-check). */
    double modelCpuJoules = 0.0;
    double modelMemJoules = 0.0;

    Tick startTick = 0;
    Tick endTick = 0;
    std::uint64_t contextSwitches = 0;

    /** Every GC of the run, in chronological order. */
    std::vector<GcInterval> gcIntervals;

    double seconds() const { return ticksToSeconds(endTick - startTick); }
};

/**
 * A set of co-tenant JVMs interleaved on one System.
 *
 * Usage: construct over a System and a shared ComponentPort (the
 * instrument stack — DAQ, HPM sampler, ground-truth accountant —
 * attaches to that port as usual), add() each tenant, then run()
 * exactly once.
 */
class TenantSet
{
  public:
    TenantSet(sim::System &system, core::ComponentPort &port);
    ~TenantSet();

    /** Add one tenant (before run()). Returns its index. */
    std::uint32_t add(const TenantSpec &spec);

    jvm::Jvm &tenant(std::uint32_t i) { return *vms_[i]; }
    std::uint32_t size() const { return static_cast<std::uint32_t>(vms_.size()); }

    /** Boot every tenant, serve every request, tear down. Call once. */
    CoTenancyResult run();

  private:
    struct Accum
    {
        NeumaierSum cpu;
        NeumaierSum mem;
        Tick ticks = 0;
        sim::PerfCounters counters;
    };

    struct TenantState
    {
        TenantSpec spec;
        workloads::ArrivalProcess arrivals;
        /** Arrival instants due but not yet started (absolute ticks). */
        std::deque<Tick> queue;
        /** Tick at which the tenant's arrival timeline starts. */
        Tick epochTick = 0;
        /** Next generated-but-not-due arrival (absolute ticks). */
        Tick nextArrival = 0;
        std::uint32_t generated = 0;
        /** Arrival tick of the in-flight request. */
        Tick inFlightArrival = 0;
        double inFlightStartJoules = 0.0;
        std::vector<double> latenciesUs;
        double requestJoules = 0.0;
        Accum accum;
        std::uint64_t slices = 0;
        std::uint32_t served = 0;
        std::uint32_t arrived = 0;
        bool failed = false;
        std::string failMessage;

        TenantState(const TenantSpec &s)
            : spec(s), arrivals(s.arrival, s.seed)
        {
        }
    };

    /** Charge everything since the last boundary to one account. */
    void charge(Accum &acct);
    void pumpArrivals(Tick now);
    bool runnable(const TenantState &t) const;
    bool tenantDone(const TenantState &t) const;

    sim::System &system_;
    core::ComponentPort &port_;
    std::vector<std::unique_ptr<jvm::Jvm>> vms_;
    std::vector<TenantState> tenants_;

    // Attribution boundary state.
    double refCpuJ_ = 0.0;
    double refMemJ_ = 0.0;
    Tick refTick_ = 0;
    sim::PerfCounters refCounters_;

    // GC-interval observer state.
    std::int32_t onCpuTenant_ = -1;
    bool gcOpen_ = false;
    std::vector<GcInterval> gcIntervals_;

    bool ran_ = false;
};

} // namespace harness
} // namespace javelin

#endif // JAVELIN_HARNESS_TENANT_SET_HH
