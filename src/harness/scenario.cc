#include "harness/scenario.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "jvm/gc/collector.hh"
#include "sim/platform.hh"
#include "util/json.hh"

namespace javelin {
namespace harness {

namespace {

constexpr const char *kSchema = "javelin-scenario-v1";

const char *
platformName(sim::PlatformKind kind)
{
    return kind == sim::PlatformKind::P6 ? "P6" : "PXA255";
}

const char *
datasetName(workloads::DatasetScale d)
{
    return d == workloads::DatasetScale::Full ? "Full" : "Small";
}

[[noreturn]] void
failAt(int line, const std::string &msg)
{
    throw ScenarioError("line " + std::to_string(line) + ": " + msg);
}

sim::PlatformKind
parsePlatform(const json::Value &v)
{
    const std::string &s = v.asString();
    if (s == "P6")
        return sim::PlatformKind::P6;
    if (s == "PXA255")
        return sim::PlatformKind::Pxa255;
    failAt(v.line, "unknown platform \"" + s + "\" (P6, PXA255)");
}

jvm::VmKind
parseVm(const json::Value &v)
{
    const std::string &s = v.asString();
    for (const auto kind : {jvm::VmKind::Jikes, jvm::VmKind::Kaffe})
        if (s == jvm::vmKindName(kind))
            return kind;
    failAt(v.line, "unknown vm \"" + s + "\" (JikesRVM, Kaffe)");
}

jvm::CollectorKind
parseCollector(const json::Value &v)
{
    const std::string &s = v.asString();
    for (const auto kind :
         {jvm::CollectorKind::SemiSpace, jvm::CollectorKind::MarkSweep,
          jvm::CollectorKind::GenCopy, jvm::CollectorKind::GenMS,
          jvm::CollectorKind::IncrementalMS})
        if (s == jvm::collectorName(kind))
            return kind;
    failAt(v.line, "unknown collector \"" + s +
                       "\" (SemiSpace, MarkSweep, GenCopy, GenMS, "
                       "IncMS)");
}

workloads::DatasetScale
parseDataset(const json::Value &v)
{
    const std::string &s = v.asString();
    if (s == "Full")
        return workloads::DatasetScale::Full;
    if (s == "Small")
        return workloads::DatasetScale::Small;
    failAt(v.line, "unknown dataset \"" + s + "\" (Full, Small)");
}

workloads::ArrivalKind
parseArrival(const json::Value &v)
{
    workloads::ArrivalKind kind;
    if (!workloads::parseArrivalKind(v.asString(), &kind))
        failAt(v.line, "unknown arrival \"" + v.asString() +
                           "\" (Poisson, Bursty, Diurnal)");
    return kind;
}

std::uint32_t
parseTenants(const json::Value &v)
{
    const std::uint64_t n = v.asU64();
    if (n > 64)
        failAt(v.line, "tenants " + std::to_string(n) +
                           " out of range [0, 64]");
    return static_cast<std::uint32_t>(n);
}

std::uint32_t
parseHeapMB(const json::Value &v)
{
    const std::uint64_t mb = v.asU64();
    if (mb < 1 || mb > 4096)
        failAt(v.line, "heap_mb " + std::to_string(mb) +
                           " out of range [1, 4096]");
    return static_cast<std::uint32_t>(mb);
}

int
parseDvfsPoint(const json::Value &v)
{
    const std::int64_t p = v.asI64();
    if (p < -1 || p > 15)
        failAt(v.line, "dvfs_point " + std::to_string(p) +
                           " out of range [-1, 15]");
    return static_cast<int>(p);
}

double
parseNonNegative(const json::Value &v, const char *what)
{
    const double d = v.asDouble();
    if (!(d >= 0.0))
        failAt(v.line, std::string(what) + " must be >= 0");
    return d;
}

std::string
validatedBenchmark(const json::Value &v)
{
    const std::string &name = v.asString();
    for (const auto &p : workloads::allBenchmarks())
        if (p.name == name)
            return name;
    failAt(v.line, "unknown benchmark \"" + name + "\"");
}

/** Wrap json::ParseError as ScenarioError (message keeps "line N:"). */
template <typename Fn>
auto
rethrowAsScenarioError(Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const json::ParseError &e) {
        throw ScenarioError(e.what());
    }
}

void
parseBase(const json::Value &obj, ExperimentConfig &cfg)
{
    for (const auto &[key, v] : obj.members) {
        if (key == "platform") {
            cfg.platform = parsePlatform(v);
        } else if (key == "vm") {
            cfg.vm = parseVm(v);
        } else if (key == "collector") {
            cfg.collector = parseCollector(v);
        } else if (key == "heap_mb") {
            cfg.heapNominalMB = parseHeapMB(v);
        } else if (key == "dataset") {
            cfg.dataset = parseDataset(v);
        } else if (key == "heap_scale") {
            cfg.heapScale = v.asDouble();
            if (!(cfg.heapScale > 0.0) || cfg.heapScale > 16.0)
                failAt(v.line, "heap_scale out of range (0, 16]");
        } else if (key == "scale_caches") {
            cfg.scaleCaches = v.asBool();
        } else if (key == "daq_period_ticks") {
            cfg.daqPeriod = v.asU64();
        } else if (key == "hpm_period_ticks") {
            cfg.hpmPeriod = v.asU64();
        } else if (key == "hpm_isr_cost_cycles") {
            cfg.hpmIsrCostCycles =
                parseNonNegative(v, "hpm_isr_cost_cycles");
        } else if (key == "sense_noise_volts_rms") {
            cfg.senseNoiseVoltsRms =
                parseNonNegative(v, "sense_noise_volts_rms");
        } else if (key == "charge_port_writes") {
            cfg.chargePortWrites = v.asBool();
        } else if (key == "adaptive_optimization") {
            cfg.adaptiveOptimization = v.asBool();
        } else if (key == "charge_barrier_cost") {
            cfg.chargeBarrierCost = v.asBool();
        } else if (key == "dvfs_point") {
            cfg.dvfsPoint = parseDvfsPoint(v);
        } else if (key == "tenants") {
            cfg.tenants = parseTenants(v);
        } else if (key == "arrival") {
            cfg.arrival = parseArrival(v);
        } else if (key == "request_rate_hz") {
            cfg.requestRateHz = v.asDouble();
            if (!(cfg.requestRateHz > 0.0))
                failAt(v.line, "request_rate_hz must be > 0");
        } else if (key == "requests_per_tenant") {
            const std::uint64_t r = v.asU64();
            if (r > 100000)
                failAt(v.line, "requests_per_tenant out of range "
                               "[0, 100000]");
            cfg.requestsPerTenant = static_cast<std::uint32_t>(r);
        } else if (key == "tenant_collector_rotate") {
            cfg.tenantCollectorRotate = v.asBool();
        } else if (key == "seed") {
            cfg.seed = v.asU64();
        } else {
            failAt(v.line, "unknown key \"" + key + "\" in \"base\"");
        }
    }
}

template <typename T, typename Fn>
std::vector<T>
parseAxis(const json::Value &v, const char *axis, Fn &&element)
{
    if (!v.isArray())
        failAt(v.line, std::string("sweep axis \"") + axis +
                           "\" must be an array");
    if (v.items.empty())
        failAt(v.line, std::string("sweep axis \"") + axis +
                           "\" must not be empty");
    std::vector<T> out;
    for (const auto &item : v.items) {
        T value = element(item);
        if (std::find(out.begin(), out.end(), value) != out.end())
            failAt(item.line, std::string("duplicate value in sweep "
                                          "axis \"") +
                                  axis + "\"");
        out.push_back(std::move(value));
    }
    return out;
}

void
parseSweep(const json::Value &obj, Scenario &s)
{
    for (const auto &[key, v] : obj.members) {
        if (key == "benchmark") {
            s.benchmarks = parseAxis<std::string>(
                v, "benchmark", validatedBenchmark);
        } else if (key == "platform") {
            s.platforms = parseAxis<sim::PlatformKind>(v, "platform",
                                                       parsePlatform);
        } else if (key == "vm") {
            s.vms = parseAxis<jvm::VmKind>(v, "vm", parseVm);
        } else if (key == "collector") {
            s.collectors = parseAxis<jvm::CollectorKind>(
                v, "collector", parseCollector);
        } else if (key == "heap_mb") {
            s.heapsMB =
                parseAxis<std::uint32_t>(v, "heap_mb", parseHeapMB);
        } else if (key == "dvfs_point") {
            s.dvfsPoints =
                parseAxis<int>(v, "dvfs_point", parseDvfsPoint);
        } else if (key == "tenants") {
            s.tenantCounts =
                parseAxis<std::uint32_t>(v, "tenants", parseTenants);
        } else if (key == "arrival") {
            s.arrivals = parseAxis<workloads::ArrivalKind>(
                v, "arrival", parseArrival);
        } else if (key == "seed") {
            s.seeds = parseAxis<std::uint64_t>(
                v, "seed",
                [](const json::Value &e) { return e.asU64(); });
        } else {
            failAt(v.line, "unknown key \"" + key + "\" in \"sweep\"");
        }
    }
    if (s.benchmarks.empty())
        failAt(obj.line, "\"sweep\" must list at least one benchmark");
}

/** Effective axis: the sweep list, or the base value alone. */
template <typename T>
std::vector<T>
effectiveAxis(const std::vector<T> &axis, const T &base)
{
    if (!axis.empty())
        return axis;
    return {base};
}

} // namespace

std::size_t
Scenario::shardCount() const
{
    std::size_t n = benchmarks.size();
    n *= platforms.empty() ? 1 : platforms.size();
    n *= vms.empty() ? 1 : vms.size();
    n *= collectors.empty() ? 1 : collectors.size();
    n *= heapsMB.empty() ? 1 : heapsMB.size();
    n *= dvfsPoints.empty() ? 1 : dvfsPoints.size();
    n *= tenantCounts.empty() ? 1 : tenantCounts.size();
    n *= arrivals.empty() ? 1 : arrivals.size();
    n *= seeds.empty() ? 1 : seeds.size();
    return n;
}

Scenario
parseScenario(const std::string &text)
{
    return rethrowAsScenarioError([&] {
        const json::Value doc = json::parse(text);
        if (!doc.isObject())
            failAt(doc.line, "scenario must be a JSON object");

        Scenario s;
        bool sawSchema = false;
        for (const auto &[key, v] : doc.members) {
            if (key == "schema") {
                if (v.asString() != kSchema)
                    failAt(v.line, "unsupported schema \"" +
                                       v.asString() + "\" (expected " +
                                       kSchema + ")");
                sawSchema = true;
            } else if (key == "name") {
                s.name = v.asString();
            } else if (key == "base") {
                if (!v.isObject())
                    failAt(v.line, "\"base\" must be an object");
                parseBase(v, s.base);
            } else if (key == "sweep") {
                if (!v.isObject())
                    failAt(v.line, "\"sweep\" must be an object");
                parseSweep(v, s);
            } else {
                failAt(v.line, "unknown key \"" + key + "\"");
            }
        }
        if (!sawSchema)
            failAt(doc.line, "missing \"schema\" key");
        if (s.benchmarks.empty())
            failAt(doc.line,
                   "missing \"sweep\" with a \"benchmark\" axis");
        return s;
    });
}

Scenario
parseScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ScenarioError("cannot open scenario file " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parseScenario(buf.str());
    } catch (const ScenarioError &e) {
        throw ScenarioError(path + ": " + e.what());
    }
}

void
writeScenario(std::ostream &os, const Scenario &s)
{
    const ExperimentConfig &b = s.base;
    os << "{\n";
    os << "  \"schema\": \"" << kSchema << "\",\n";
    os << "  \"name\": ";
    json::writeString(os, s.name);
    os << ",\n  \"base\": {\n";
    os << "    \"platform\": \"" << platformName(b.platform) << "\",\n";
    os << "    \"vm\": \"" << jvm::vmKindName(b.vm) << "\",\n";
    os << "    \"collector\": \"" << jvm::collectorName(b.collector)
       << "\",\n";
    os << "    \"heap_mb\": " << b.heapNominalMB << ",\n";
    os << "    \"dataset\": \"" << datasetName(b.dataset) << "\",\n";
    os << "    \"heap_scale\": ";
    json::writeNumber(os, b.heapScale);
    os << ",\n    \"scale_caches\": "
       << (b.scaleCaches ? "true" : "false") << ",\n";
    os << "    \"daq_period_ticks\": " << b.daqPeriod << ",\n";
    os << "    \"hpm_period_ticks\": " << b.hpmPeriod << ",\n";
    os << "    \"hpm_isr_cost_cycles\": ";
    json::writeNumber(os, b.hpmIsrCostCycles);
    os << ",\n    \"sense_noise_volts_rms\": ";
    json::writeNumber(os, b.senseNoiseVoltsRms);
    os << ",\n    \"charge_port_writes\": "
       << (b.chargePortWrites ? "true" : "false") << ",\n";
    os << "    \"adaptive_optimization\": "
       << (b.adaptiveOptimization ? "true" : "false") << ",\n";
    os << "    \"charge_barrier_cost\": "
       << (b.chargeBarrierCost ? "true" : "false") << ",\n";
    os << "    \"dvfs_point\": " << b.dvfsPoint << ",\n";
    os << "    \"tenants\": " << b.tenants << ",\n";
    os << "    \"arrival\": \"" << workloads::arrivalKindName(b.arrival)
       << "\",\n";
    os << "    \"request_rate_hz\": ";
    json::writeNumber(os, b.requestRateHz);
    os << ",\n    \"requests_per_tenant\": " << b.requestsPerTenant
       << ",\n";
    os << "    \"tenant_collector_rotate\": "
       << (b.tenantCollectorRotate ? "true" : "false") << ",\n";
    os << "    \"seed\": " << b.seed << "\n";
    os << "  },\n";
    os << "  \"sweep\": {\n";
    os << "    \"benchmark\": [";
    for (std::size_t i = 0; i < s.benchmarks.size(); ++i) {
        os << (i ? ", " : "");
        json::writeString(os, s.benchmarks[i]);
    }
    os << "]";
    if (!s.platforms.empty()) {
        os << ",\n    \"platform\": [";
        for (std::size_t i = 0; i < s.platforms.size(); ++i)
            os << (i ? ", " : "") << '"'
               << platformName(s.platforms[i]) << '"';
        os << "]";
    }
    if (!s.vms.empty()) {
        os << ",\n    \"vm\": [";
        for (std::size_t i = 0; i < s.vms.size(); ++i)
            os << (i ? ", " : "") << '"' << jvm::vmKindName(s.vms[i])
               << '"';
        os << "]";
    }
    if (!s.collectors.empty()) {
        os << ",\n    \"collector\": [";
        for (std::size_t i = 0; i < s.collectors.size(); ++i)
            os << (i ? ", " : "") << '"'
               << jvm::collectorName(s.collectors[i]) << '"';
        os << "]";
    }
    if (!s.heapsMB.empty()) {
        os << ",\n    \"heap_mb\": [";
        for (std::size_t i = 0; i < s.heapsMB.size(); ++i)
            os << (i ? ", " : "") << s.heapsMB[i];
        os << "]";
    }
    if (!s.dvfsPoints.empty()) {
        os << ",\n    \"dvfs_point\": [";
        for (std::size_t i = 0; i < s.dvfsPoints.size(); ++i)
            os << (i ? ", " : "") << s.dvfsPoints[i];
        os << "]";
    }
    if (!s.tenantCounts.empty()) {
        os << ",\n    \"tenants\": [";
        for (std::size_t i = 0; i < s.tenantCounts.size(); ++i)
            os << (i ? ", " : "") << s.tenantCounts[i];
        os << "]";
    }
    if (!s.arrivals.empty()) {
        os << ",\n    \"arrival\": [";
        for (std::size_t i = 0; i < s.arrivals.size(); ++i)
            os << (i ? ", " : "") << '"'
               << workloads::arrivalKindName(s.arrivals[i]) << '"';
        os << "]";
    }
    if (!s.seeds.empty()) {
        os << ",\n    \"seed\": [";
        for (std::size_t i = 0; i < s.seeds.size(); ++i)
            os << (i ? ", " : "") << s.seeds[i];
        os << "]";
    }
    os << "\n  }\n}\n";
}

std::string
scenarioHash(const Scenario &s)
{
    std::ostringstream canon;
    writeScenario(canon, s);
    const std::string text = canon.str();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    std::ostringstream hex;
    hex << std::hex;
    hex.width(16);
    hex.fill('0');
    hex << h;
    return hex.str();
}

std::vector<SweepTask>
expandScenario(const Scenario &s)
{
    const auto platforms =
        effectiveAxis(s.platforms, s.base.platform);
    const auto vms = effectiveAxis(s.vms, s.base.vm);
    const auto collectors =
        effectiveAxis(s.collectors, s.base.collector);
    const auto heaps = effectiveAxis(s.heapsMB, s.base.heapNominalMB);
    const auto dvfs = effectiveAxis(s.dvfsPoints, s.base.dvfsPoint);
    const auto tenants = effectiveAxis(s.tenantCounts, s.base.tenants);
    const auto arrivals = effectiveAxis(s.arrivals, s.base.arrival);
    const auto seeds = effectiveAxis(s.seeds, s.base.seed);

    std::vector<SweepTask> tasks;
    tasks.reserve(s.shardCount());
    for (const auto &bench : s.benchmarks)
        for (const auto platform : platforms)
            for (const auto vm : vms)
                for (const auto collector : collectors)
                    for (const auto heap : heaps)
                        for (const auto point : dvfs)
                            for (const auto tc : tenants)
                                for (const auto arr : arrivals)
                                    for (const auto seed : seeds) {
                                        ExperimentConfig cfg = s.base;
                                        cfg.platform = platform;
                                        cfg.vm = vm;
                                        cfg.collector = collector;
                                        cfg.heapNominalMB = heap;
                                        cfg.dvfsPoint = point;
                                        cfg.tenants = tc;
                                        cfg.arrival = arr;
                                        cfg.seed = seed;
                                        tasks.push_back(
                                            {cfg, workloads::benchmark(
                                                      bench)});
                                    }
    return tasks;
}

std::string
shardKey(const SweepTask &task)
{
    std::ostringstream key;
    key << task.profile.name << '/'
        << jvm::vmKindName(task.config.vm) << '/'
        << jvm::collectorName(task.config.collector) << '/'
        << task.config.heapNominalMB << "MB/"
        << platformName(task.config.platform) << "/dvfs"
        << task.config.dvfsPoint << "/s" << task.config.seed;
    // Co-tenancy shards carry their service axes; classic shards keep
    // their historical keys so existing checkpoints stay resumable.
    if (task.config.tenants > 0)
        key << "/t" << task.config.tenants << '/'
            << workloads::arrivalKindName(task.config.arrival) << "/r"
            << task.config.requestRateHz;
    return key.str();
}

Scenario
builtinScenario(const std::string &name)
{
    Scenario s;
    s.name = name;
    if (name == "fig07-edp") {
        // The Fig. 7 matrix: all 16 benchmarks x the four Jikes
        // collectors x the P6 heap ladder.
        for (const auto &p : workloads::allBenchmarks())
            s.benchmarks.push_back(p.name);
        s.collectors = {
            jvm::CollectorKind::SemiSpace, jvm::CollectorKind::MarkSweep,
            jvm::CollectorKind::GenCopy, jvm::CollectorKind::GenMS};
        s.heapsMB.assign(kP6HeapsMB.begin(), kP6HeapsMB.end());
    } else if (name == "abl-dvfs") {
        // Ablation A4: every P6 operating point for a compute-bound
        // and a GC-bound benchmark under GenCopy at 32 MB.
        s.base.collector = jvm::CollectorKind::GenCopy;
        s.base.heapNominalMB = 32;
        s.benchmarks = {"_222_mpegaudio", "_213_javac"};
        const std::size_t points = sim::p6Spec().dvfsPoints.size();
        for (std::size_t i = 0; i < points; ++i)
            s.dvfsPoints.push_back(static_cast<int>(i));
    } else if (name == "ensemble-regression") {
        // The energy-regression gate matrix (bench/ensemble_report):
        // GC-bound and mutator-bound corners, small dataset.
        s.base.dataset = workloads::DatasetScale::Small;
        s.base.heapNominalMB = 32;
        s.benchmarks = {"_202_jess", "_209_db"};
        s.collectors = {jvm::CollectorKind::SemiSpace,
                        jvm::CollectorKind::GenMS};
    } else if (name == "cotenancy-interference") {
        // The co-tenancy interference matrix (DESIGN.md §11): a GC-
        // bound and a mutator-bound benchmark, a copying and a
        // generational mark-sweep collector, 1/2/4 tenants sharing the
        // P6 power budget under Poisson arrivals.
        s.base.dataset = workloads::DatasetScale::Small;
        s.base.heapNominalMB = 32;
        s.base.tenants = 2;
        s.base.requestsPerTenant = 24;
        s.base.requestRateHz = 3000.0;
        s.benchmarks = {"_202_jess", "_209_db"};
        s.collectors = {jvm::CollectorKind::SemiSpace,
                        jvm::CollectorKind::GenMS};
        s.tenantCounts = {1, 2, 4};
    } else {
        throw ScenarioError("unknown builtin scenario \"" + name +
                            "\"");
    }
    return s;
}

const std::vector<std::string> &
builtinScenarioNames()
{
    static const std::vector<std::string> names = {
        "fig07-edp", "abl-dvfs", "ensemble-regression",
        "cotenancy-interference"};
    return names;
}

} // namespace harness
} // namespace javelin
