#include "harness/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>

namespace javelin {
namespace harness {

namespace {

/**
 * Drain an atomic work queue: claim indices until none remain, run
 * work(i) for each, then report completion under the progress lock.
 */
void
drainQueue(std::atomic<std::size_t> &next, std::size_t total,
           const std::function<void(std::size_t)> &work,
           std::mutex *progress_mutex, std::size_t *done,
           const SweepRunner::Progress &progress)
{
    for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total)
            return;
        work(i);
        if (progress) {
            std::lock_guard<std::mutex> lock(*progress_mutex);
            progress(++*done, total);
        }
    }
}

void
runPool(std::size_t total, unsigned jobs,
        const std::function<void(std::size_t)> &work,
        const SweepRunner::Progress &progress)
{
    std::atomic<std::size_t> next{0};
    std::mutex progressMutex;
    std::size_t done = 0;

    if (total == 0)
        return;
    if (jobs > total)
        jobs = static_cast<unsigned>(total);
    if (jobs <= 1) {
        // Serial path on the calling thread (JAVELIN_JOBS=1): easier to
        // debug and guaranteed free of thread scheduling entirely.
        drainQueue(next, total, work, &progressMutex, &done, progress);
        return;
    }

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        workers.emplace_back([&] {
            drainQueue(next, total, work, &progressMutex, &done,
                       progress);
        });
    for (auto &w : workers)
        w.join();
}

} // namespace

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("JAVELIN_JOBS")) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<unsigned>(parsed);
        std::cerr << "javelin: ignoring invalid JAVELIN_JOBS='" << env
                  << "'\n";
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::uint64_t
SweepRunner::taskSeed(std::uint64_t base_seed, std::size_t index)
{
    // SplitMix64 finalizer over the (seed, index) pair: distinct,
    // well-mixed streams for every task regardless of the base seed.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                      (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepTask> &tasks) const
{
    std::vector<SweepOutcome> outcomes(tasks.size());
    const auto &execute = config_.execute;

    runPool(
        tasks.size(), resolveJobs(config_.jobs),
        [&](std::size_t i) {
            SweepTask task = tasks[i];
            task.config.seed = taskSeed(task.config.seed, i);
            try {
                outcomes[i].result =
                    execute ? execute(task)
                            : runExperiment(task.config, task.profile);
            } catch (const std::exception &e) {
                outcomes[i].error = {true, e.what()};
            } catch (...) {
                outcomes[i].error = {true, "unknown exception"};
            }
            if (outcomes[i].error.failed) {
                // A failed task must not look like a successful
                // zero-energy run: stamp the outcome's result with the
                // task identity and the failure so report tables and
                // summaries surface it (result.ok() is now false).
                auto &res = outcomes[i].result;
                res.config = task.config;
                res.benchmark = task.profile.name;
                res.failed = true;
                res.failMessage = outcomes[i].error.message;
            }
        },
        config_.progress);

    return outcomes;
}

void
SweepRunner::parallelFor(std::size_t n,
                         const std::function<void(std::size_t)> &fn,
                         unsigned jobs)
{
    runPool(n, resolveJobs(jobs), fn, nullptr);
}

std::vector<SweepOutcome>
runSweep(const std::vector<SweepTask> &tasks, unsigned jobs)
{
    SweepRunner::Config cfg;
    cfg.jobs = jobs;
    return SweepRunner(cfg).run(tasks);
}

SweepRunner::Progress
consoleProgress(std::string label)
{
    return [label = std::move(label)](std::size_t done,
                                      std::size_t total) {
        std::cerr << '\r' << label << ": " << done << '/' << total;
        if (done == total)
            std::cerr << '\n';
    };
}

} // namespace harness
} // namespace javelin
