/**
 * @file
 * Parallel experiment-sweep engine.
 *
 * The paper's headline results are full-factorial sweeps (benchmarks x
 * collectors x heap sizes); every run constructs an independent
 * sim::System, so the sweep is embarrassingly parallel. SweepRunner
 * fans a task list out across a pool of worker threads and returns the
 * results in deterministic input order:
 *
 *  - each task's config seed is re-derived from (config.seed, task
 *    index) with taskSeed(), so noise streams are independent per task
 *    and identical whether the sweep runs serially or in parallel;
 *  - an exception escaping one task is captured into that outcome's
 *    SweepError instead of aborting the whole sweep;
 *  - an optional progress callback reports completed/total counts for
 *    long runs.
 *
 * The worker count defaults to std::thread::hardware_concurrency() and
 * can be overridden with Config::jobs or the JAVELIN_JOBS environment
 * variable (JAVELIN_JOBS=1 forces serial execution for debugging).
 */

#ifndef JAVELIN_HARNESS_SWEEP_HH
#define JAVELIN_HARNESS_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace javelin {
namespace harness {

/** One unit of sweep work: run one benchmark under one configuration. */
struct SweepTask
{
    ExperimentConfig config;
    workloads::BenchmarkProfile profile;
};

/** Failure record for one task (empty message means the task ran). */
struct SweepError
{
    bool failed = false;
    std::string message;

    explicit operator bool() const { return failed; }
};

/** Result slot for one task, in the same position as its input. */
struct SweepOutcome
{
    ExperimentResult result;
    SweepError error;

    /** Ran to completion and the simulated run itself succeeded. */
    bool ok() const { return !error.failed && result.ok(); }
};

/**
 * Thread-pool sweep engine. Stateless between run() calls; one instance
 * can be reused for several sweeps.
 */
class SweepRunner
{
  public:
    /** Progress callback: (completed tasks, total tasks). */
    using Progress = std::function<void(std::size_t, std::size_t)>;

    struct Config
    {
        /**
         * Worker threads: 0 means auto (the JAVELIN_JOBS environment
         * variable if set, else std::thread::hardware_concurrency()).
         */
        unsigned jobs = 0;
        /** Called (under a lock) after every completed task. */
        Progress progress;
        /**
         * Task executor; defaults to runExperiment. A custom executor
         * supports study-specific rigs and failure-injection tests.
         */
        std::function<ExperimentResult(const SweepTask &)> execute;
    };

    SweepRunner() = default;
    explicit SweepRunner(Config config) : config_(std::move(config)) {}

    /**
     * Run every task and return outcomes in input order. Results are
     * bit-identical for any worker count: the per-task seed depends
     * only on (task.config.seed, index), and each task simulates a
     * private sim::System.
     */
    std::vector<SweepOutcome> run(const std::vector<SweepTask> &tasks) const;

    /**
     * Generic parallel loop over [0, n) using the same worker policy,
     * for sweeps that do not fit the ExperimentConfig mould (custom
     * rigs like the thermal studies). fn must only touch state private
     * to its index.
     */
    static void parallelFor(std::size_t n,
                            const std::function<void(std::size_t)> &fn,
                            unsigned jobs = 0);

    /**
     * Resolve a worker count: requested if nonzero, else JAVELIN_JOBS,
     * else hardware concurrency (at least 1).
     */
    static unsigned resolveJobs(unsigned requested);

    /**
     * Deterministic per-task seed: a SplitMix64-style mix of the base
     * config seed and the task's position in the sweep. Serial loops
     * that must reproduce SweepRunner results apply the same mix.
     */
    static std::uint64_t taskSeed(std::uint64_t base_seed,
                                  std::size_t index);

  private:
    Config config_;
};

/** Convenience: run tasks with a default-configured runner. */
std::vector<SweepOutcome> runSweep(const std::vector<SweepTask> &tasks,
                                   unsigned jobs = 0);

/**
 * Progress callback that rewrites a "label: done/total" line on stderr
 * (and finishes the line when the sweep completes).
 */
SweepRunner::Progress consoleProgress(std::string label);

} // namespace harness
} // namespace javelin

#endif // JAVELIN_HARNESS_SWEEP_HH
