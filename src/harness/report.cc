#include "harness/report.hh"

#include <ostream>
#include <string>

#include "harness/scenario.hh"

namespace {

/** Table label for a run that produced no numbers. */
const char *
failureLabel(const javelin::harness::ExperimentResult &r)
{
    return r.failed ? "FAIL" : "OOM";
}

} // namespace

namespace javelin {
namespace harness {

using core::ComponentId;

std::vector<ComponentId>
jikesComponents()
{
    return {ComponentId::OptCompiler, ComponentId::BaseCompiler,
            ComponentId::ClassLoader, ComponentId::Gc, ComponentId::App};
}

std::vector<ComponentId>
kaffeComponents()
{
    return {ComponentId::Jit, ComponentId::ClassLoader, ComponentId::Gc,
            ComponentId::App};
}

Table
energyDecompositionTable(const std::vector<ExperimentResult> &results,
                         const std::vector<ComponentId> &components)
{
    std::vector<std::string> headers = {"benchmark", "heap(MB)"};
    for (const auto c : components)
        headers.push_back(std::string(componentName(c)) + "%");
    headers.push_back("JVM%");
    headers.push_back("mem%");
    Table t(std::move(headers));

    for (const auto &r : results) {
        t.beginRow();
        t.cell(r.benchmark).cell(
            static_cast<std::int64_t>(r.config.heapNominalMB));
        if (!r.ok()) {
            for (std::size_t i = 0; i < components.size() + 2; ++i)
                t.cell(failureLabel(r));
            continue;
        }
        for (const auto c : components)
            t.cellPct(r.attribution.energyFraction(c));
        t.cellPct(r.attribution.jvmEnergyFraction());
        const double total = r.attribution.totalJoules();
        t.cellPct(total > 0 ? r.attribution.totalMemJoules / total : 0.0);
    }
    return t;
}

Table
edpTable(const std::vector<std::vector<ExperimentResult>> &rows,
         const std::vector<std::uint32_t> &heaps_mb)
{
    std::vector<std::string> headers = {"benchmark", "collector"};
    for (const auto h : heaps_mb)
        headers.push_back(std::to_string(h) + "MB");
    Table t(std::move(headers));

    for (const auto &row : rows) {
        if (row.empty())
            continue;
        t.beginRow();
        t.cell(row.front().benchmark);
        t.cell(jvm::collectorName(row.front().config.collector));
        for (const auto &r : row) {
            if (r.ok())
                t.cell(r.edp() * 1e3, 3); // mJ*s at study scale
            else
                t.cell(failureLabel(r));
        }
    }
    return t;
}

Table
powerTable(const std::vector<ExperimentResult> &results,
           const std::vector<ComponentId> &components)
{
    std::vector<std::string> headers = {"benchmark", "heap(MB)"};
    for (const auto c : components) {
        headers.push_back(std::string(componentName(c)) + " avgW");
        headers.push_back(std::string(componentName(c)) + " pkW");
    }
    Table t(std::move(headers));

    for (const auto &r : results) {
        t.beginRow();
        t.cell(r.benchmark).cell(
            static_cast<std::int64_t>(r.config.heapNominalMB));
        if (!r.ok()) {
            for (std::size_t i = 0; i < components.size() * 2; ++i)
                t.cell(failureLabel(r));
            continue;
        }
        for (const auto c : components) {
            const auto &p = r.attribution.powerOf(c);
            t.cell(p.avgCpuWatts(), 2);
            t.cell(p.peakCpuWatts, 2);
        }
    }
    return t;
}

void
printRunSummary(std::ostream &os, const ExperimentResult &r)
{
    os << r.benchmark << " [" << jvm::vmKindName(r.config.vm) << "/"
       << jvm::collectorName(r.config.collector) << " heap "
       << r.config.heapNominalMB << "MB] ";
    if (!r.ok()) {
        if (r.failed)
            os << "HARNESS-FAILURE: " << r.failMessage << "\n";
        else
            os << (r.run.outOfMemory ? "OUT-OF-MEMORY"
                                     : "STACK-OVERFLOW")
               << "\n";
        return;
    }
    os << "time " << r.run.seconds() * 1e3 << " ms, cpu "
       << r.attribution.totalCpuJoules << " J, mem "
       << r.attribution.totalMemJoules << " J, JVM "
       << r.attribution.jvmEnergyFraction() * 100.0 << "%, GCs "
       << r.run.gc.collections << ", bytecodes "
       << r.run.bytecodesExecuted << "\n";
}

std::size_t
reportSweepFailures(std::ostream &os,
                    const std::vector<SweepTask> &tasks,
                    const std::vector<SweepOutcome> &outcomes)
{
    // Harness failures only: a simulated OOM/stack overflow is a
    // legitimate experimental result ("did not fit", shown as OOM in
    // the tables), but a worker exception means the shard never ran.
    std::size_t failures = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto &o = outcomes[i];
        if (!o.error.failed && !o.result.failed)
            continue;
        ++failures;
        const std::string key =
            i < tasks.size() ? shardKey(tasks[i]) : "<unknown shard>";
        os << "sweep failure: shard " << i << " [" << key
           << "]: " << (o.error.failed ? o.error.message
                                       : o.result.failMessage)
           << "\n";
    }
    return failures;
}

} // namespace harness
} // namespace javelin
