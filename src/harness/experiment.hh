/**
 * @file
 * The experiment harness: the public API most users interact with.
 *
 * One Experiment run reproduces the paper's measurement flow end to
 * end: assemble a platform (P6 or DBPXA255), boot a JVM personality
 * (Jikes or Kaffe) with a chosen collector and heap size, attach the
 * DAQ, the HPM sampler and the ground-truth accountant to the
 * component-ID port, execute a benchmark, and post-process the traces
 * into a per-component Attribution.
 *
 * Heap sizes are specified with the paper's nominal labels (32..128 MB
 * on the P6, 12..32 MB on the PXA255); the study scale divides both
 * heaps and allocation volumes by 16, and the platform's caches are
 * scaled (L1 by 2, L2 by 4) so the heap:cache geometry of the paper is
 * preserved (see DESIGN.md §2).
 */

#ifndef JAVELIN_HARNESS_EXPERIMENT_HH
#define JAVELIN_HARNESS_EXPERIMENT_HH

#include <array>

#include "core/attribution.hh"
#include "core/daq.hh"
#include "core/ground_truth.hh"
#include "core/hpm_sampler.hh"
#include "harness/tenant_set.hh"
#include "jvm/jvm.hh"
#include "workloads/program_builder.hh"
#include "workloads/service.hh"
#include "workloads/suite.hh"

namespace javelin {
namespace harness {

/** The paper's P6 heap sweep (Section IV-A). */
constexpr std::array<std::uint32_t, 7> kP6HeapsMB = {32,  48, 64, 80,
                                                     96, 112, 128};

/** The PXA255 heap sweep (Section VI-E). */
constexpr std::array<std::uint32_t, 6> kPxaHeapsMB = {12, 16, 20, 24,
                                                      28, 32};

/**
 * Configuration for one experimental run.
 */
struct ExperimentConfig
{
    sim::PlatformKind platform = sim::PlatformKind::P6;
    jvm::VmKind vm = jvm::VmKind::Jikes;
    jvm::CollectorKind collector = jvm::CollectorKind::GenCopy;
    /** Heap size using the paper's nominal label (MB). */
    std::uint32_t heapNominalMB = 32;
    workloads::DatasetScale dataset = workloads::DatasetScale::Full;

    /** Study scale: nominal sizes are multiplied by this. */
    double heapScale = 1.0 / 16.0;
    /** Preserve heap:cache geometry by scaling the caches too. */
    bool scaleCaches = true;

    /** DAQ sampling period override (0 = the platform's 40 us). */
    Tick daqPeriod = 0;
    /** HPM sampling period override (0 = platform OS timer). */
    Tick hpmPeriod = 0;
    /**
     * CPU cycles charged per HPM sample (timer-ISR cost; 0 keeps the
     * sampler free as in all golden runs). Lets the sampler-overhead
     * ablation measure the infrastructure's own energy perturbation.
     */
    double hpmIsrCostCycles = 0.0;
    /** Gaussian noise on the DAQ sense channels (volts RMS). */
    double senseNoiseVoltsRms = 0.0;
    /** Charge the component-port writes to the CPU. */
    bool chargePortWrites = true;
    /** Disable the adaptive optimizing system (ablation). */
    bool adaptiveOptimization = true;
    /** Charge write-barrier work to the mutator (ablation A2). */
    bool chargeBarrierCost = true;
    /** DVFS operating-point index (-1 = platform maximum). */
    int dvfsPoint = -1;

    /**
     * Co-tenancy (DESIGN.md §11): number of tenant VMs interleaved on
     * the platform. 0 (the default) is the classic single-VM batch
     * run; >= 1 switches to service mode, where each tenant serves
     * requestsPerTenant invocations of a request-sized build of the
     * benchmark under the configured arrival process.
     */
    std::uint32_t tenants = 0;
    /** Arrival-process shape for every tenant. */
    workloads::ArrivalKind arrival = workloads::ArrivalKind::Poisson;
    /** Mean offered load per tenant (requests per simulated second). */
    double requestRateHz = 2000.0;
    /** Requests each tenant serves. */
    std::uint32_t requestsPerTenant = 32;
    /** Rotate tenant collectors through the collector enum starting at
     *  `collector` (tenant i gets collector + i mod #kinds), so one
     *  run exhibits cross-collector interference. */
    bool tenantCollectorRotate = false;

    std::uint64_t seed = 7;

    /**
     * Host-side trace capture: when non-empty, the run's power and
     * perf traces are also spooled asynchronously to
     * <dir>/<benchmark>.power.jtrc and <dir>/<benchmark>.perf.jtrc
     * (javelin-trace-v1; inspect with the javelin-trace CLI). Pure
     * host I/O — the simulation, its seeds, and every measured number
     * are unchanged, which is why this knob is deliberately NOT part
     * of the scenario serialization or its hash.
     */
    std::string traceSpoolDir;
};

/**
 * Everything measured in one run.
 */
struct ExperimentResult
{
    ExperimentConfig config;
    std::string benchmark;
    jvm::RunResult run;
    core::Attribution attribution;

    /** Final free-running HPM counter block (golden-run regression). */
    sim::PerfCounters counters;

    /** Exact per-component accounting (simulator-only reference). */
    std::array<core::GroundTruthAccountant::Slice, core::kNumComponents>
        groundTruth;
    double groundTruthCpuJoules = 0.0;
    double groundTruthMemJoules = 0.0;

    /** Thermal outcome. */
    double maxTemperatureC = 0.0;
    double throttledSeconds = 0.0;

    /** Per-tenant accounts and interference data (tenants > 0 only;
     *  `run` then carries the cross-tenant aggregate). */
    CoTenancyResult cotenancy;

    /**
     * The harness itself failed (an exception escaped the run). Set by
     * the sweep engines so a failed shard can never masquerade as a
     * successful zero-energy run in downstream tables.
     */
    bool failed = false;
    std::string failMessage;

    bool ok() const
    {
        return !failed && !run.outOfMemory && !run.stackOverflow;
    }

    /** Energy-delay product over measured totals (J*s). */
    double edp() const;
};

/** Heap bytes for a nominal label under a config's study scale. */
std::uint64_t scaledHeapBytes(const ExperimentConfig &config);

/** Platform spec with the config's memory-system scaling applied. */
sim::PlatformSpec scaledPlatformSpec(const ExperimentConfig &config);

/**
 * Run one benchmark under one configuration.
 */
ExperimentResult runExperiment(const ExperimentConfig &config,
                               const workloads::BenchmarkProfile &profile);

/** Run a pre-built program (tests, custom studies). */
ExperimentResult runExperiment(const ExperimentConfig &config,
                               const jvm::Program &program);

} // namespace harness
} // namespace javelin

#endif // JAVELIN_HARNESS_EXPERIMENT_HH
