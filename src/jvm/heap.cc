#include "jvm/heap.hh"

#include "util/units.hh"

namespace javelin {
namespace jvm {

Heap::Heap(std::uint64_t bytes)
    : mem_(bytes, 0)
{
    JAVELIN_ASSERT(bytes >= 64 * kKiB, "heap too small: ", bytes);
    JAVELIN_ASSERT(bytes % 8 == 0, "heap size must be 8-byte aligned");
}

} // namespace jvm
} // namespace javelin
