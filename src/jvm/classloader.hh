/**
 * @file
 * Dynamic class loader (the CL component of Sections VI-A and VI-E).
 *
 * Loading a class walks its metadata (class-file parse), resolves its
 * constant-pool entries against a shared system symbol table (dependent
 * loads with poor locality), loads the superclass, and probabilistically
 * eager-loads referenced classes.
 *
 * The two VMs differ exactly as the paper describes: Jikes merges system
 * (boot) classes with the JVM binary so they cost nothing at run time,
 * while Kaffe loads every class lazily through this path — the source of
 * its long, CL-dominated initialization on the PXA255 (Fig. 11).
 */

#ifndef JAVELIN_JVM_CLASSLOADER_HH
#define JAVELIN_JVM_CLASSLOADER_HH

#include <vector>

#include "core/component_port.hh"
#include "jvm/program.hh"
#include "sim/system.hh"
#include "util/random.hh"

namespace javelin {
namespace jvm {

/**
 * Lazy class loader with a per-VM boot-class policy.
 */
class ClassLoader
{
  public:
    struct Config
    {
        /**
         * If true (Jikes), classes whose id is below bootClassCount are
         * considered merged into the VM image and load for free.
         */
        bool bootClassesPreloaded = true;
        /** Number of leading class ids considered boot classes. */
        std::uint32_t bootClassCount = 0;
        /** Probability of eagerly loading a referenced class. */
        double eagerLoadProbability = 0.35;
        /** Dependent symbol-table probes per constant-pool entry. */
        std::uint32_t resolutionProbes = 2;
        /** Extra per-class overhead factor (Kaffe's parser is slower). */
        double costFactor = 1.0;
    };

    ClassLoader(sim::System &system, core::ComponentPort &port,
                const Program &program, const Config &config,
                std::uint64_t seed);

    /** Load a class (and its dependencies) if not yet loaded. */
    void ensureLoaded(ClassId id);

    bool
    isLoaded(ClassId id) const
    {
        return loaded_.at(id);
    }

    std::uint32_t classesLoaded() const { return loadedCount_; }

    const Config &config() const { return config_; }

  private:
    void loadOne(ClassId id);

    /** Shared system symbol table footprint (256 KiB). */
    static constexpr Address kSymbolTableBase = kMetadataBase + 0x400000;
    static constexpr Address kSymbolTableBytes = 256 * 1024;

    sim::System &system_;
    core::ComponentPort &port_;
    const Program &program_;
    Config config_;
    Rng rng_;
    std::vector<bool> loaded_;
    std::uint32_t loadedCount_ = 0;
    std::uint32_t depth_ = 0;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_CLASSLOADER_HH
