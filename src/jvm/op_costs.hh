/**
 * @file
 * Shared static cost metadata of the bytecode set: the per-opcode base
 * micro-op table, the foldable/traceable opcode classes and the
 * per-tier micro-op transform. Both the interpreter (per-op cost
 * tables, trace guards) and Program::layout() (the method-granular
 * superinstruction tables, DESIGN.md §5g) derive from these, so the
 * pre-folded prefix sums cached on the program are by construction the
 * same numbers the engine's per-op oracle charges.
 */

#ifndef JAVELIN_JVM_OP_COSTS_HH
#define JAVELIN_JVM_OP_COSTS_HH

#include <algorithm>
#include <cstdint>

#include "jvm/bytecode.hh"
#include "jvm/compilers.hh"

namespace javelin {
namespace jvm {
namespace op_costs {

/**
 * Opcodes the execute-batching fast path may fold into one segment
 * charge (DESIGN.md §5f): straight-line register arithmetic with no
 * branches, no frame or heap traffic, no polls beyond the tail check,
 * and no failure paths. Everything else terminates a run and goes
 * through the per-op dispatch in both modes.
 */
constexpr bool
isFoldable(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::IConst:
      case Op::Move:
      case Op::IAdd:
      case Op::ISub:
      case Op::IMul:
      case Op::IDiv:
      case Op::IRem:
      case Op::IXor:
      case Op::FAdd:
      case Op::FMul:
      case Op::Rand:
        return true;
      default:
        return false;
    }
}

/**
 * Opcodes the fast path may execute inside one trace (runTraceFast)
 * without returning to the outer dispatch loop: the foldable set plus
 * every op that never invalidates the trace's cached frame and
 * register views mid-handler without announcing it. Branches and heap
 * accessors keep their exact per-op v2 charge stream inside the trace
 * — only the foldable runs between them are folded — and Call/Ret run
 * inline with their exact push/pop charges, the trace refreshing its
 * cached views afterwards (DESIGN.md §5g). New/NewArray also run
 * inline: a collection they trigger updates root *values* in place
 * and never resizes the frame stack or register pools, so every
 * cached pointer stays valid (allocation-heavy loops would otherwise
 * bounce off the trace on every object). NativeWork (polls
 * mid-handler, and a poll's sample must see the outer loop's hoisted
 * state) and Halt end the trace.
 */
constexpr bool
isTraceable(Op op)
{
    switch (op) {
      case Op::Goto:
      case Op::IfLt:
      case Op::IfGe:
      case Op::IfEq:
      case Op::IfNe:
      case Op::IfNull:
      case Op::IfNotNull:
      case Op::Call:
      case Op::Ret:
      case Op::GetField:
      case Op::PutField:
      case Op::GetRef:
      case Op::PutRef:
      case Op::GetElem:
      case Op::PutElem:
      case Op::GetRefElem:
      case Op::PutRefElem:
      case Op::ArrayLen:
      case Op::GetStatic:
      case Op::PutStatic:
      case Op::New:
      case Op::NewArray:
        return true;
      default:
        return isFoldable(op);
    }
}

/**
 * Semantic micro-ops per opcode before the tier transform — exactly
 * the literals the original switch passed to semUops(). Zero means the
 * handler issues no semantic execute() at all (Nop, Goto, NativeWork,
 * Halt and NumOps); those entries are never read.
 */
constexpr std::uint8_t kBaseUops[kNumOps] = {
    0, // Nop
    1, // IConst
    1, // Move
    1, // IAdd
    1, // ISub
    2, // IMul
    8, // IDiv
    8, // IRem
    1, // IXor
    3, // FAdd
    4, // FMul
    5, // Rand
    0, // Goto
    1, // IfLt
    1, // IfGe
    1, // IfEq
    1, // IfNe
    1, // IfNull
    1, // IfNotNull
    4, // Call
    2, // Ret
    3, // New
    4, // NewArray
    2, // GetField
    2, // PutField
    2, // GetRef
    2, // PutRef
    2, // GetElem
    2, // PutElem
    2, // GetRefElem
    2, // PutRefElem
    1, // ArrayLen
    1, // GetStatic
    1, // PutStatic
    0, // NativeWork
    0, // Halt
};

/**
 * The tier transform over a base micro-op count: optimized code runs
 * ~7/8 of the micro-ops (never below one), jitted (Kaffe) code ~25%
 * more; zero-base opcodes issue no semantic execute under any tier.
 * Identical to the per-op tables Interpreter::buildTierCosts builds,
 * which static_assert against this function.
 */
constexpr std::uint32_t
tierSemUops(Tier tier, std::uint32_t base_uops)
{
    if (base_uops == 0)
        return 0;
    if (tier == Tier::Optimized)
        return std::max<std::uint32_t>(1, (base_uops * 7) >> 3);
    if (tier == Tier::Jitted)
        return base_uops + (base_uops >> 2);
    return base_uops;
}

/** FP result-latency stall of one opcode, in half-cycles (FAdd 2.5,
 *  FMul 3.5 cycles; everything else none). Kept in halves so prefix
 *  sums over a method are exact integers (DESIGN.md §5g). */
constexpr std::uint32_t
fpStallHalfCycles(Op op)
{
    if (op == Op::FAdd)
        return 5;
    if (op == Op::FMul)
        return 7;
    return 0;
}

} // namespace op_costs
} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_OP_COSTS_HH
