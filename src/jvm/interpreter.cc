#include "jvm/interpreter.hh"

#include <algorithm>

namespace javelin {
namespace jvm {

Interpreter::Interpreter(sim::System &system, core::ComponentPort &port,
                         const Program &program, ObjectModel &om,
                         Collector &collector, ClassLoader &loader,
                         CompilerModel &compiler,
                         std::vector<MethodRuntime> &method_rt,
                         Statics &statics, const Config &config)
    : system_(system), port_(port), program_(program), om_(om),
      collector_(collector), loader_(loader), compiler_(compiler),
      methodRt_(method_rt), statics_(statics), config_(config),
      rng_(program.randSeed),
      needsBarrier_(collector.needsWriteBarrier())
{
    JAVELIN_ASSERT(methodRt_.size() == program_.methods.size(),
                   "method runtime table size mismatch");
    frames_.reserve(config_.maxStackDepth);
    intRegs_.reserve(4096);
    refRegs_.reserve(2048);
}

MethodId
Interpreter::currentMethod() const
{
    return frames_.empty() ? program_.entry : frames_.back().method->id;
}

void
Interpreter::forEachStackRoot(const std::function<void(Address &)> &fn)
{
    for (Address &ref : refRegs_)
        fn(ref);
}

void
Interpreter::prepareMethod(MethodId id)
{
    MethodRuntime &rt = methodRt_[id];
    ++rt.invocations;
    if (rt.tier != Tier::Interpreted ||
        config_.compileOnInvoke == Tier::Interpreted)
        return;
    const MethodInfo &m = program_.methods[id];
    loader_.ensureLoaded(m.holder);
    if (config_.compileOnInvoke == Tier::Jitted)
        compiler_.jitCompile(m, rt);
    else
        compiler_.baselineCompile(m, rt);
}

void
Interpreter::pushFrame(MethodId id, const Frame *caller,
                       std::int32_t ret_dst, std::int32_t int_arg_base,
                       std::int32_t ref_arg_base)
{
    if (frames_.size() >= config_.maxStackDepth)
        throw StackOverflowError{};
    prepareMethod(id);

    const MethodInfo &m = program_.methods[id];
    Frame f;
    f.method = &m;
    f.rt = &methodRt_[id];
    f.pc = 0;
    f.intBase = static_cast<std::uint32_t>(intRegs_.size());
    f.refBase = static_cast<std::uint32_t>(refRegs_.size());
    f.retDst = ret_dst;
    intRegs_.resize(intRegs_.size() + m.nIntRegs, 0);
    refRegs_.resize(refRegs_.size() + m.nRefRegs, kNull);

    if (caller) {
        for (std::uint32_t i = 0; i < m.nIntArgs; ++i)
            intRegs_[f.intBase + i] =
                intRegs_[caller->intBase + int_arg_base + i];
        for (std::uint32_t i = 0; i < m.nRefArgs; ++i)
            refRegs_[f.refBase + i] =
                refRegs_[caller->refBase + ref_arg_base + i];
    }
    frames_.push_back(f);

    // Frame setup: link, spill, prologue.
    sim::CpuModel &cpu = system_.cpu();
    cpu.execute(6, kVmCodeBase + 0x1e000, 24);
    cpu.store(kStackBase + frames_.size() * 64);
}

void
Interpreter::popFrame(std::int64_t value)
{
    const Frame f = frames_.back();
    frames_.pop_back();
    intRegs_.resize(f.intBase);
    refRegs_.resize(f.refBase);

    sim::CpuModel &cpu = system_.cpu();
    cpu.execute(4, kVmCodeBase + 0x1e400, 16);
    cpu.load(kStackBase + (frames_.size() + 1) * 64);

    if (frames_.empty()) {
        result_ = value;
    } else if (f.retDst >= 0) {
        const Frame &caller = frames_.back();
        intRegs_[caller.intBase + f.retDst] = value;
    }
}

void
Interpreter::chargeDispatch(const Frame &f, Op op)
{
    sim::CpuModel &cpu = system_.cpu();
    const auto &costs = compiler_.costs();
    switch (f.rt->tier) {
      case Tier::Interpreted:
        cpu.execute(12, kInterpreterCodeBase +
                            static_cast<Address>(op) * 128, 48);
        cpu.load(f.method->bytecodeAddr + f.pc * sizeof(Instruction));
        break;
      case Tier::Baseline:
        cpu.execute(4, f.rt->codeAddr + f.pc * costs.baselineBytesPerBc,
                    costs.baselineBytesPerBc);
        break;
      case Tier::Jitted:
        cpu.execute(5, f.rt->codeAddr + f.pc * costs.jitBytesPerBc,
                    costs.jitBytesPerBc);
        break;
      case Tier::Optimized:
        cpu.execute(2, f.rt->codeAddr + f.pc * costs.optBytesPerBc,
                    costs.optBytesPerBc);
        break;
    }

    // Frame-local spill/reload traffic: baseline and JIT code keep the
    // register file in the stack frame (L1-resident), optimized code
    // keeps most of it in machine registers.
    const std::uint32_t spillOneIn =
        f.rt->tier == Tier::Optimized ? 4 : 1;
    if ((++spillCounter_ % spillOneIn) == 0) {
        const Address frame =
            kStackBase + frames_.size() * 256;
        cpu.load(frame + ((f.pc * 8) & 0xf8));
    }
}

std::uint32_t
Interpreter::semUops(const Frame &f, std::uint32_t uops) const
{
    if (f.rt->tier == Tier::Optimized)
        return std::max<std::uint32_t>(1, (uops * 7) >> 3);
    if (f.rt->tier == Tier::Jitted)
        return uops + (uops >> 2); // naive code: ~25% more micro-ops
    return uops;
}

bool
Interpreter::elideFieldAccess(const Frame &f)
{
    if (f.rt->tier != Tier::Optimized)
        return false;
    return (++elideCounter_ % config_.optElideOneIn) == 0;
}

Address
Interpreter::allocObject(ClassId cls_id, std::uint32_t array_len)
{
    loader_.ensureLoaded(cls_id);
    const ClassInfo &cls = program_.classOf(cls_id);
    const std::uint32_t bytes = om_.objectBytes(cls, array_len);
    const Address addr = collector_.allocate(bytes);
    if (addr == kNull)
        throw OutOfMemoryError{bytes};
    om_.initObject(addr, cls, bytes, array_len);
    collector_.postInit(addr);
    return addr;
}

void
Interpreter::doNativeWork(std::uint32_t uops, std::uint32_t bytes)
{
    sim::CpuModel &cpu = system_.cpu();
    constexpr std::uint64_t kWindow = 1 << 20;
    std::uint32_t remaining = uops;
    std::uint32_t off = 0;
    while (remaining > 0 || off < bytes) {
        const std::uint32_t chunk = std::min<std::uint32_t>(remaining, 64);
        if (chunk)
            cpu.execute(chunk, kVmCodeBase + 0x1c000, chunk * 4);
        remaining -= chunk;
        if (off < bytes) {
            cpu.load(kNativeBase + (nativeCursor_ % kWindow));
            nativeCursor_ += 64;
            off += 64;
        }
        system_.poll();
    }
}

std::int64_t
Interpreter::run(MethodId entry)
{
    JAVELIN_ASSERT(frames_.empty(), "engine already running");
    halted_ = false;
    result_ = 0;
    pushFrame(entry, nullptr, -1, 0, 0);

    sim::CpuModel &cpu = system_.cpu();
    std::uint32_t pollCountdown = config_.pollInterval;
    std::uint32_t quantumCountdown = config_.quantumBytecodes;

    while (!frames_.empty() && !halted_) {
        Frame &f = frames_.back();
        JAVELIN_ASSERT(f.pc < f.method->code.size(),
                       "pc fell off method ", f.method->name);
        const Instruction &in = f.method->code[f.pc];
        chargeDispatch(f, in.op);
        ++executed_;

        // Register-file views for this frame.
        std::int64_t *ir = intRegs_.data() + f.intBase;
        Address *rr = refRegs_.data() + f.refBase;

        std::uint32_t next = f.pc + 1;
        switch (in.op) {
          case Op::Nop:
            break;
          case Op::IConst:
            cpu.execute(semUops(f, 1), 0, 0);
            ir[in.a] = in.b;
            break;
          case Op::Move:
            cpu.execute(semUops(f, 1), 0, 0);
            ir[in.a] = ir[in.b];
            break;
          case Op::IAdd:
            cpu.execute(semUops(f, 1), 0, 0);
            ir[in.a] = ir[in.b] + ir[in.c];
            break;
          case Op::ISub:
            cpu.execute(semUops(f, 1), 0, 0);
            ir[in.a] = ir[in.b] - ir[in.c];
            break;
          case Op::IMul:
            cpu.execute(semUops(f, 2), 0, 0);
            ir[in.a] = ir[in.b] * ir[in.c];
            break;
          case Op::IDiv:
            cpu.execute(semUops(f, 8), 0, 0);
            ir[in.a] = ir[in.c] != 0 ? ir[in.b] / ir[in.c] : 0;
            break;
          case Op::IRem:
            cpu.execute(semUops(f, 8), 0, 0);
            ir[in.a] = ir[in.c] != 0 ? ir[in.b] % ir[in.c] : 0;
            break;
          case Op::IXor:
            cpu.execute(semUops(f, 1), 0, 0);
            ir[in.a] = ir[in.b] ^ ir[in.c];
            break;
          case Op::FAdd:
            cpu.execute(semUops(f, 3), 0, 0);
            // FP pipelines expose latency on dependent accumulations.
            cpu.stall(2.5);
            ir[in.a] = ir[in.b] + ir[in.c];
            break;
          case Op::FMul:
            cpu.execute(semUops(f, 4), 0, 0);
            cpu.stall(3.5);
            ir[in.a] = ir[in.b] * ir[in.c];
            break;
          case Op::Rand: {
            cpu.execute(semUops(f, 5), 0, 0);
            const std::int64_t bound = ir[in.b];
            ir[in.a] = bound > 0
                ? static_cast<std::int64_t>(rng_.uniformInt(
                      static_cast<std::uint64_t>(bound)))
                : 0;
            break;
          }
          case Op::Goto:
            cpu.branch(false);
            next = static_cast<std::uint32_t>(in.a);
            break;
          case Op::IfLt:
          case Op::IfGe:
          case Op::IfEq:
          case Op::IfNe: {
            cpu.execute(semUops(f, 1), 0, 0);
            bool taken = false;
            switch (in.op) {
              case Op::IfLt: taken = ir[in.a] < ir[in.b]; break;
              case Op::IfGe: taken = ir[in.a] >= ir[in.b]; break;
              case Op::IfEq: taken = ir[in.a] == ir[in.b]; break;
              default:       taken = ir[in.a] != ir[in.b]; break;
            }
            const bool mispredict =
                taken && (++branchCounter_ % config_.mispredictOneIn) == 0;
            cpu.branch(mispredict);
            if (taken)
                next = static_cast<std::uint32_t>(in.c);
            break;
          }
          case Op::IfNull:
          case Op::IfNotNull: {
            cpu.execute(semUops(f, 1), 0, 0);
            const bool taken = (in.op == Op::IfNull)
                ? rr[in.a] == kNull
                : rr[in.a] != kNull;
            cpu.branch(false);
            if (taken)
                next = static_cast<std::uint32_t>(in.b);
            break;
          }
          case Op::Call: {
            cpu.execute(semUops(f, 4), 0, 0);
            f.pc = next; // resume point after return
            pushFrame(static_cast<MethodId>(in.b), &f, in.a, in.c, in.d);
            goto frame_changed;
          }
          case Op::Ret: {
            cpu.execute(semUops(f, 2), 0, 0);
            popFrame(ir[in.a]);
            goto frame_changed;
          }
          case Op::New: {
            cpu.execute(semUops(f, 3), 0, 0);
            const Address obj =
                allocObject(static_cast<ClassId>(in.b), 0);
            // Re-fetch the frame register view: a collection may have
            // run and frames_/refRegs_ storage may have been reused.
            refRegs_[frames_.back().refBase + in.a] = obj;
            break;
          }
          case Op::NewArray: {
            cpu.execute(semUops(f, 4), 0, 0);
            const std::int64_t len = std::max<std::int64_t>(0, ir[in.c]);
            const Address obj = allocObject(
                static_cast<ClassId>(in.b),
                static_cast<std::uint32_t>(len));
            refRegs_[frames_.back().refBase + in.a] = obj;
            break;
          }
          case Op::GetField: {
            const Address obj = rr[in.b];
            JAVELIN_ASSERT(obj != kNull, "null getfield in ",
                           f.method->name);
            cpu.execute(semUops(f, 2), 0, 0);
            if (elideFieldAccess(f))
                ir[in.a] = om_.scalarRaw(obj,
                                         static_cast<std::uint32_t>(in.c));
            else
                ir[in.a] = om_.loadScalar(
                    obj, static_cast<std::uint32_t>(in.c));
            break;
          }
          case Op::PutField: {
            const Address obj = rr[in.a];
            JAVELIN_ASSERT(obj != kNull, "null putfield in ",
                           f.method->name);
            cpu.execute(semUops(f, 2), 0, 0);
            om_.storeScalar(obj, static_cast<std::uint32_t>(in.b),
                            ir[in.c]);
            break;
          }
          case Op::GetRef: {
            const Address obj = rr[in.b];
            JAVELIN_ASSERT(obj != kNull, "null getref");
            cpu.execute(semUops(f, 2), 0, 0);
            rr[in.a] = om_.loadRef(obj, static_cast<std::uint32_t>(in.c));
            break;
          }
          case Op::PutRef: {
            const Address obj = rr[in.a];
            JAVELIN_ASSERT(obj != kNull, "null putref");
            cpu.execute(semUops(f, 2), 0, 0);
            const Address value = rr[in.c];
            const auto slot = static_cast<std::uint32_t>(in.b);
            if (needsBarrier_)
                collector_.writeBarrier(obj, om_.refSlotAddr(obj, slot),
                                        value);
            om_.storeRef(obj, slot, value);
            break;
          }
          case Op::GetElem: {
            const Address arr = rr[in.b];
            JAVELIN_ASSERT(arr != kNull, "null getelem");
            const auto idx = static_cast<std::uint32_t>(ir[in.c]);
            JAVELIN_ASSERT(idx < om_.arrayLenRaw(arr),
                           "getelem index out of bounds");
            cpu.execute(semUops(f, 2), 0, 0);
            if (elideFieldAccess(f))
                ir[in.a] = om_.scalarRaw(arr, idx);
            else
                ir[in.a] = om_.loadScalar(arr, idx);
            break;
          }
          case Op::PutElem: {
            const Address arr = rr[in.a];
            JAVELIN_ASSERT(arr != kNull, "null putelem");
            const auto idx = static_cast<std::uint32_t>(ir[in.b]);
            JAVELIN_ASSERT(idx < om_.arrayLenRaw(arr),
                           "putelem index out of bounds");
            cpu.execute(semUops(f, 2), 0, 0);
            om_.storeScalar(arr, idx, ir[in.c]);
            break;
          }
          case Op::GetRefElem: {
            const Address arr = rr[in.b];
            JAVELIN_ASSERT(arr != kNull, "null getrefelem");
            const auto idx = static_cast<std::uint32_t>(ir[in.c]);
            JAVELIN_ASSERT(idx < om_.arrayLenRaw(arr),
                           "getrefelem index out of bounds");
            cpu.execute(semUops(f, 2), 0, 0);
            rr[in.a] = om_.loadRef(arr, idx);
            break;
          }
          case Op::PutRefElem: {
            const Address arr = rr[in.a];
            JAVELIN_ASSERT(arr != kNull, "null putrefelem");
            const auto idx = static_cast<std::uint32_t>(ir[in.b]);
            JAVELIN_ASSERT(idx < om_.arrayLenRaw(arr),
                           "putrefelem index out of bounds");
            cpu.execute(semUops(f, 2), 0, 0);
            const Address value = rr[in.c];
            if (needsBarrier_)
                collector_.writeBarrier(arr, om_.refSlotAddr(arr, idx),
                                        value);
            om_.storeRef(arr, idx, value);
            break;
          }
          case Op::ArrayLen: {
            const Address arr = rr[in.b];
            JAVELIN_ASSERT(arr != kNull, "null arraylen");
            cpu.execute(semUops(f, 1), 0, 0);
            cpu.load(arr + kAuxOffset);
            ir[in.a] = om_.arrayLenRaw(arr);
            break;
          }
          case Op::GetStatic:
            cpu.execute(semUops(f, 1), 0, 0);
            rr[in.a] = statics_.load(static_cast<std::uint32_t>(in.b));
            break;
          case Op::PutStatic:
            cpu.execute(semUops(f, 1), 0, 0);
            statics_.store(static_cast<std::uint32_t>(in.a), rr[in.b]);
            break;
          case Op::NativeWork:
            doNativeWork(static_cast<std::uint32_t>(in.a),
                         static_cast<std::uint32_t>(in.b));
            break;
          case Op::Halt:
            halted_ = true;
            break;
          case Op::NumOps:
            JAVELIN_PANIC("invalid opcode executed");
        }
        f.pc = next;

      frame_changed:
        if (--pollCountdown == 0) {
            pollCountdown = config_.pollInterval;
            system_.poll();
        }
        if (--quantumCountdown == 0) {
            quantumCountdown = config_.quantumBytecodes;
            if (onQuantum)
                onQuantum();
        }
    }

    frames_.clear();
    intRegs_.clear();
    refRegs_.clear();
    return result_;
}

} // namespace jvm
} // namespace javelin
