#include "jvm/interpreter.hh"

#include <algorithm>
#include <bit>

namespace javelin {
namespace jvm {

namespace {

/**
 * Opcode list in enum order, used to build the threaded-dispatch label
 * table and to pin the base micro-op table below to the enum layout.
 */
#define JAVELIN_FOR_EACH_OP(X) \
    X(Nop) X(IConst) X(Move) X(IAdd) X(ISub) X(IMul) X(IDiv) X(IRem) \
    X(IXor) X(FAdd) X(FMul) X(Rand) X(Goto) X(IfLt) X(IfGe) X(IfEq) \
    X(IfNe) X(IfNull) X(IfNotNull) X(Call) X(Ret) X(New) X(NewArray) \
    X(GetField) X(PutField) X(GetRef) X(PutRef) X(GetElem) X(PutElem) \
    X(GetRefElem) X(PutRefElem) X(ArrayLen) X(GetStatic) X(PutStatic) \
    X(NativeWork) X(Halt) X(NumOps)

#define JAVELIN_OP_ENUM(name) Op::name,
constexpr Op kOpOrder[] = {JAVELIN_FOR_EACH_OP(JAVELIN_OP_ENUM)};
#undef JAVELIN_OP_ENUM

constexpr bool
opOrderMatchesEnum()
{
    for (std::size_t i = 0; i < kNumOps + 1; ++i)
        if (kOpOrder[i] != static_cast<Op>(i))
            return false;
    return true;
}

static_assert(sizeof(kOpOrder) / sizeof(kOpOrder[0]) == kNumOps + 1,
              "JAVELIN_FOR_EACH_OP must list every opcode plus NumOps");
static_assert(opOrderMatchesEnum(),
              "JAVELIN_FOR_EACH_OP must match the Op enum order");

/**
 * Division with the INT64_MIN / -1 overflow case defined as wrap
 * (-fwrapv covers add/sub/mul but not division overflow). b / -1 is
 * -b for every other b, so this only defines the one UB input.
 */
inline std::int64_t
wrapDiv(std::int64_t a, std::int64_t b)
{
    if (b == -1)
        return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
    return a / b;
}

/**
 * Semantic micro-ops per opcode before the tier transform — exactly
 * the literals the original switch passed to semUops(). Zero means the
 * handler issues no semantic execute() at all (Nop, Goto, NativeWork,
 * Halt and NumOps); those entries are never read.
 */
constexpr std::uint8_t kBaseUops[kNumOps] = {
    0, // Nop
    1, // IConst
    1, // Move
    1, // IAdd
    1, // ISub
    2, // IMul
    8, // IDiv
    8, // IRem
    1, // IXor
    3, // FAdd
    4, // FMul
    5, // Rand
    0, // Goto
    1, // IfLt
    1, // IfGe
    1, // IfEq
    1, // IfNe
    1, // IfNull
    1, // IfNotNull
    4, // Call
    2, // Ret
    3, // New
    4, // NewArray
    2, // GetField
    2, // PutField
    2, // GetRef
    2, // PutRef
    2, // GetElem
    2, // PutElem
    2, // GetRefElem
    2, // PutRefElem
    1, // ArrayLen
    1, // GetStatic
    1, // PutStatic
    0, // NativeWork
    0, // Halt
};

} // namespace

Interpreter::Interpreter(sim::System &system, core::ComponentPort &port,
                         const Program &program, ObjectModel &om,
                         Collector &collector, ClassLoader &loader,
                         CompilerModel &compiler,
                         std::vector<MethodRuntime> &method_rt,
                         Statics &statics, const Config &config)
    : system_(system), port_(port), program_(program), om_(om),
      collector_(collector), loader_(loader), compiler_(compiler),
      methodRt_(method_rt), statics_(statics), config_(config),
      rng_(program.randSeed),
      needsBarrier_(collector.needsWriteBarrier())
{
    JAVELIN_ASSERT(methodRt_.size() == program_.methods.size(),
                   "method runtime table size mismatch");
    frames_.reserve(config_.maxStackDepth);
    intRegs_.reserve(4096);
    refRegs_.reserve(2048);
    buildTierCosts();
}

void
Interpreter::buildTierCosts()
{
    const auto &costs = compiler_.costs();
    for (unsigned t = 0; t < 4; ++t) {
        const Tier tier = static_cast<Tier>(t);
        TierCost &tc = tierCosts_[t];
        switch (tier) {
          case Tier::Interpreted:
            tc.dispatchUops = 12;
            tc.bytesPerBc = 0; // dispatch fetches 48 B of handler code
            break;
          case Tier::Baseline:
            tc.dispatchUops = 4;
            tc.bytesPerBc = costs.baselineBytesPerBc;
            break;
          case Tier::Jitted:
            tc.dispatchUops = 5;
            tc.bytesPerBc = costs.jitBytesPerBc;
            break;
          case Tier::Optimized:
            tc.dispatchUops = 2;
            tc.bytesPerBc = costs.optBytesPerBc;
            break;
        }
        // Frame-local spill/reload gate: the original spillOneIn was 4
        // for optimized code and 1 otherwise — both powers of two, so
        // the modulo becomes a mask and the counter behaves the same.
        tc.spillMask = tier == Tier::Optimized ? 3u : 0u;
        for (std::size_t op = 0; op < kNumOps; ++op) {
            const std::uint32_t u = kBaseUops[op];
            std::uint32_t v = u; // Interpreted/Baseline run it straight
            if (tier == Tier::Optimized)
                v = std::max<std::uint32_t>(1, (u * 7) >> 3);
            else if (tier == Tier::Jitted)
                v = u + (u >> 2); // naive code: ~25% more micro-ops
            tc.uops[op] = static_cast<std::uint8_t>(v);
        }
    }

    mispredictPow2_ = std::has_single_bit(config_.mispredictOneIn);
    mispredictMask_ = mispredictPow2_ ? config_.mispredictOneIn - 1 : 0;
    elidePow2_ = std::has_single_bit(config_.optElideOneIn);
    elideMask_ = elidePow2_ ? config_.optElideOneIn - 1 : 0;
}

MethodId
Interpreter::currentMethod() const
{
    return frames_.empty() ? program_.entry : frames_.back().method->id;
}

void
Interpreter::forEachStackRoot(const std::function<void(Address &)> &fn)
{
    for (Address &ref : refRegs_)
        fn(ref);
}

void
Interpreter::prepareMethod(MethodId id)
{
    MethodRuntime &rt = methodRt_[id];
    ++rt.invocations;
    if (rt.tier != Tier::Interpreted ||
        config_.compileOnInvoke == Tier::Interpreted)
        return;
    const MethodInfo &m = program_.methods[id];
    loader_.ensureLoaded(m.holder);
    if (config_.compileOnInvoke == Tier::Jitted)
        compiler_.jitCompile(m, rt);
    else
        compiler_.baselineCompile(m, rt);
}

void
Interpreter::pushFrame(MethodId id, const Frame *caller,
                       std::int32_t ret_dst, std::int32_t int_arg_base,
                       std::int32_t ref_arg_base)
{
    if (frames_.size() >= config_.maxStackDepth)
        throw StackOverflowError{};
    prepareMethod(id);

    const MethodInfo &m = program_.methods[id];
    Frame f;
    f.method = &m;
    f.rt = &methodRt_[id];
    f.pc = 0;
    f.intBase = static_cast<std::uint32_t>(intRegs_.size());
    f.refBase = static_cast<std::uint32_t>(refRegs_.size());
    f.retDst = ret_dst;
    intRegs_.resize(intRegs_.size() + m.nIntRegs, 0);
    refRegs_.resize(refRegs_.size() + m.nRefRegs, kNull);

    if (caller) {
        for (std::uint32_t i = 0; i < m.nIntArgs; ++i)
            intRegs_[f.intBase + i] =
                intRegs_[caller->intBase + int_arg_base + i];
        for (std::uint32_t i = 0; i < m.nRefArgs; ++i)
            refRegs_[f.refBase + i] =
                refRegs_[caller->refBase + ref_arg_base + i];
    }
    frames_.push_back(f);

    // Frame setup: link, spill, prologue.
    sim::CpuModel &cpu = system_.cpu();
    cpu.execute(6, kVmCodeBase + 0x1e000, 24);
    cpu.store(kStackBase + frames_.size() * 64);
}

void
Interpreter::popFrame(std::int64_t value)
{
    const Frame f = frames_.back();
    frames_.pop_back();
    intRegs_.resize(f.intBase);
    refRegs_.resize(f.refBase);

    sim::CpuModel &cpu = system_.cpu();
    cpu.execute(4, kVmCodeBase + 0x1e400, 16);
    cpu.load(kStackBase + (frames_.size() + 1) * 64);

    if (frames_.empty()) {
        result_ = value;
    } else if (f.retDst >= 0) {
        const Frame &caller = frames_.back();
        intRegs_[caller.intBase + f.retDst] = value;
    }
}

Address
Interpreter::allocObject(ClassId cls_id, std::uint32_t array_len)
{
    loader_.ensureLoaded(cls_id);
    const ClassInfo &cls = program_.classOf(cls_id);
    const std::uint32_t bytes = om_.objectBytes(cls, array_len);
    const Address addr = collector_.allocate(bytes);
    if (addr == kNull)
        throw OutOfMemoryError{bytes};
    om_.initObject(addr, cls, bytes, array_len);
    collector_.postInit(addr);
    return addr;
}

std::uint32_t
Interpreter::pollFreeIterations(const sim::CpuModel &cpu) const
{
    const Tick due = system_.nextTaskDue();
    const Tick now = cpu.now();
    if (due <= now)
        return 1; // a task is due: poll right after the next iteration
    const Tick slack = due - now;

    // Conservative bound on how far one full chunk iteration (64-uop
    // execute spanning 256 code bytes + one load) can advance time:
    // every access takes its worst-case penalty (L1 dirty victim, L2
    // miss with dirty victim, DRAM, prefetch catch-up) and stalls are
    // never overlapped. The true advance is strictly smaller, so polls
    // skipped inside the bound are provably no-ops.
    const auto &mem = system_.memory().config();
    const double maxPenalty =
        2.0 * mem.writebackCycles + mem.l2HitCycles +
        static_cast<double>(mem.dramCycles) +
        static_cast<double>(mem.dramCycles) / 3.0;
    const double penaltyScale =
        std::max(1.0, cpu.config().memStallFactor);
    const double maxAccesses = 256.0 / mem.l1i.lineBytes + 2.0;
    const double maxCycles = 65.0 * cpu.config().baseCpi +
                             (maxAccesses + 1.0) * maxPenalty *
                                 penaltyScale +
                             16.0;
    const double maxTicksPerIter =
        maxCycles * cpu.effectivePeriodTicks() * 1.0625 + 2.0;

    const double iters = static_cast<double>(slack) / maxTicksPerIter;
    if (iters >= 4.0e9)
        return 0xFFFFFFFFu;
    return static_cast<std::uint32_t>(iters) + 1;
}

void
Interpreter::doNativeWork(std::uint32_t uops, std::uint32_t bytes)
{
    sim::CpuModel &cpu = system_.cpu();
    constexpr std::uint64_t kWindow = 1 << 20;
    std::uint32_t remaining = uops;
    std::uint32_t off = 0;
    while (remaining > 0 || off < bytes) {
        // Hoisted-poll fast path: a run of full 64-uop + 64-byte-load
        // iterations short enough that no periodic task can come due
        // before it ends (pollFreeIterations), issued through the
        // order-preserving mixed block, then one poll at exactly the
        // tick the per-iteration loop would have polled next.
        if (remaining >= 64 && off + 64 <= bytes) {
            const std::uint32_t full =
                std::min(remaining / 64, (bytes - off) / 64);
            const std::uint32_t n =
                std::min(full, pollFreeIterations(cpu));
            if (n > 1) {
                cpu.execLoadBlock(n, 64, kVmCodeBase + 0x1c000, 64 * 4,
                                  kNativeBase, nativeCursor_,
                                  kWindow - 1, 64);
                remaining -= n * 64;
                off += n * 64;
                nativeCursor_ += static_cast<std::uint64_t>(n) * 64;
                system_.poll();
                continue;
            }
        }
        // Ragged head/tail (and task-imminent) iterations keep the
        // original per-iteration sequence and poll cadence.
        const std::uint32_t chunk = std::min<std::uint32_t>(remaining, 64);
        if (chunk)
            cpu.execute(chunk, kVmCodeBase + 0x1c000, chunk * 4);
        remaining -= chunk;
        if (off < bytes) {
            cpu.load(kNativeBase + (nativeCursor_ % kWindow));
            nativeCursor_ += 64;
            off += 64;
        }
        system_.poll();
    }
}

/**
 * Threaded dispatch uses the GNU computed-goto extension; any other
 * compiler (or -DJAVELIN_NO_COMPUTED_GOTO) gets the portable switch.
 * Both modes share the handler bodies in interpreter_ops.inc.
 */
#if defined(__GNUC__) && !defined(JAVELIN_NO_COMPUTED_GOTO)
#define JAVELIN_THREADED_DISPATCH 1
#else
#define JAVELIN_THREADED_DISPATCH 0
#endif

/**
 * Per-bytecode front end, identical for both dispatch modes and to the
 * original chargeDispatch(): refresh the frame/instruction/cost views,
 * charge the dispatch execute (plus the bytecode operand fetch when
 * interpreted), gate the frame-spill load, and count the bytecode.
 */
#define JAVELIN_FETCH_CHARGE() \
    do { \
        f = &frames_.back(); \
        JAVELIN_ASSERT(f->pc < f->method->code.size(), \
                       "pc fell off method ", f->method->name); \
        in = &f->method->code[f->pc]; \
        rt = f->rt; \
        tc = &tierCosts_[static_cast<unsigned>(rt->tier)]; \
        if (rt->tier == Tier::Interpreted) { \
            cpu.execute(tc->dispatchUops, \
                        kInterpreterCodeBase + \
                            static_cast<Address>(in->op) * 128, \
                        48); \
            cpu.load(f->method->bytecodeAddr + \
                     f->pc * sizeof(Instruction)); \
        } else { \
            cpu.execute(tc->dispatchUops, \
                        rt->codeAddr + f->pc * tc->bytesPerBc, \
                        tc->bytesPerBc); \
        } \
        if (((++spillCounter_) & tc->spillMask) == 0) \
            cpu.load(kStackBase + frames_.size() * 256 + \
                     ((f->pc * 8) & 0xf8)); \
        ++executed_; \
        ir = intRegs_.data() + f->intBase; \
        rr = refRegs_.data() + f->refBase; \
        next = f->pc + 1; \
    } while (0)

/** Safepoint tail run after every bytecode (including Call/Ret/Halt). */
#define JAVELIN_TAIL_CHECKS() \
    do { \
        if (--pollCountdown == 0) { \
            pollCountdown = config_.pollInterval; \
            system_.poll(); \
        } \
        if (--quantumCountdown == 0) { \
            quantumCountdown = config_.quantumBytecodes; \
            if (onQuantum) \
                onQuantum(); \
        } \
    } while (0)

/** Charge Op::name's semantic micro-ops from the tier cost table. */
#define JAVELIN_SEM_EXEC(name) \
    cpu.execute(tc->uops[static_cast<unsigned>(Op::name)], 0, 0)

std::int64_t
Interpreter::run(MethodId entry)
{
    JAVELIN_ASSERT(frames_.empty(), "engine already running");
    halted_ = false;
    result_ = 0;
    pushFrame(entry, nullptr, -1, 0, 0);

    sim::CpuModel &cpu = system_.cpu();
    std::uint32_t pollCountdown = config_.pollInterval;
    std::uint32_t quantumCountdown = config_.quantumBytecodes;

    // Per-bytecode views, refreshed by JAVELIN_FETCH_CHARGE.
    Frame *f = nullptr;
    const Instruction *in = nullptr;
    const MethodRuntime *rt = nullptr;
    const TierCost *tc = nullptr;
    std::int64_t *ir = nullptr;
    Address *rr = nullptr;
    std::uint32_t next = 0;

#if JAVELIN_THREADED_DISPATCH

    static const void *const kLabels[] = {
#define JAVELIN_OP_LABEL(name) &&javelin_op_##name,
        JAVELIN_FOR_EACH_OP(JAVELIN_OP_LABEL)
#undef JAVELIN_OP_LABEL
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumOps + 1);

#define JAVELIN_DISPATCH_NEXT() \
    do { \
        if (frames_.empty() || halted_) \
            goto javelin_run_done; \
        JAVELIN_FETCH_CHARGE(); \
        goto *kLabels[static_cast<unsigned>(in->op)]; \
    } while (0)

    // Entry: frames_ is non-empty and halted_ false after pushFrame.
    JAVELIN_FETCH_CHARGE();
    goto *kLabels[static_cast<unsigned>(in->op)];

#define JAVELIN_OP(name) javelin_op_##name: {
#define JAVELIN_OP_END \
    } \
    f->pc = next; \
    JAVELIN_TAIL_CHECKS(); \
    JAVELIN_DISPATCH_NEXT();
#define JAVELIN_OP_END_FRAME \
    } \
    JAVELIN_TAIL_CHECKS(); \
    JAVELIN_DISPATCH_NEXT();

#include "jvm/interpreter_ops.inc"

#undef JAVELIN_OP
#undef JAVELIN_OP_END
#undef JAVELIN_OP_END_FRAME
#undef JAVELIN_DISPATCH_NEXT

javelin_run_done:;

#else // !JAVELIN_THREADED_DISPATCH

    while (!frames_.empty() && !halted_) {
        JAVELIN_FETCH_CHARGE();
        switch (in->op) {
#define JAVELIN_OP(name) case Op::name: {
#define JAVELIN_OP_END \
    } \
    f->pc = next; \
    break;
#define JAVELIN_OP_END_FRAME \
    } \
    break;

#include "jvm/interpreter_ops.inc"

#undef JAVELIN_OP
#undef JAVELIN_OP_END
#undef JAVELIN_OP_END_FRAME
        }
        JAVELIN_TAIL_CHECKS();
    }

#endif // JAVELIN_THREADED_DISPATCH

    frames_.clear();
    intRegs_.clear();
    refRegs_.clear();
    return result_;
}

#undef JAVELIN_SEM_EXEC
#undef JAVELIN_TAIL_CHECKS
#undef JAVELIN_FETCH_CHARGE
#undef JAVELIN_FOR_EACH_OP

} // namespace jvm
} // namespace javelin
