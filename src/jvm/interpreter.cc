#include "jvm/interpreter.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "jvm/op_costs.hh"

namespace javelin {
namespace jvm {

bool
interpFastPathDefault()
{
    static const bool on =
        std::getenv("JAVELIN_INTERP_NO_FAST_PATH") == nullptr;
    return on;
}

namespace {

using op_costs::isFoldable;
using op_costs::isTraceable;
using op_costs::kBaseUops;

/**
 * Opcode list in enum order, used to build the threaded-dispatch label
 * table and to pin the base micro-op table below to the enum layout.
 */
#define JAVELIN_FOR_EACH_OP(X) \
    X(Nop) X(IConst) X(Move) X(IAdd) X(ISub) X(IMul) X(IDiv) X(IRem) \
    X(IXor) X(FAdd) X(FMul) X(Rand) X(Goto) X(IfLt) X(IfGe) X(IfEq) \
    X(IfNe) X(IfNull) X(IfNotNull) X(Call) X(Ret) X(New) X(NewArray) \
    X(GetField) X(PutField) X(GetRef) X(PutRef) X(GetElem) X(PutElem) \
    X(GetRefElem) X(PutRefElem) X(ArrayLen) X(GetStatic) X(PutStatic) \
    X(NativeWork) X(Halt) X(NumOps)

#define JAVELIN_OP_ENUM(name) Op::name,
constexpr Op kOpOrder[] = {JAVELIN_FOR_EACH_OP(JAVELIN_OP_ENUM)};
#undef JAVELIN_OP_ENUM

constexpr bool
opOrderMatchesEnum()
{
    for (std::size_t i = 0; i < kNumOps + 1; ++i)
        if (kOpOrder[i] != static_cast<Op>(i))
            return false;
    return true;
}

static_assert(sizeof(kOpOrder) / sizeof(kOpOrder[0]) == kNumOps + 1,
              "JAVELIN_FOR_EACH_OP must list every opcode plus NumOps");
static_assert(opOrderMatchesEnum(),
              "JAVELIN_FOR_EACH_OP must match the Op enum order");

/**
 * Division with the INT64_MIN / -1 overflow case defined as wrap
 * (-fwrapv covers add/sub/mul but not division overflow). b / -1 is
 * -b for every other b, so this only defines the one UB input.
 */
inline std::int64_t
wrapDiv(std::int64_t a, std::int64_t b)
{
    if (b == -1)
        return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
    return a / b;
}

} // namespace

Interpreter::Interpreter(sim::System &system, core::ComponentPort &port,
                         const Program &program, ObjectModel &om,
                         Collector &collector, ClassLoader &loader,
                         CompilerModel &compiler,
                         std::vector<MethodRuntime> &method_rt,
                         Statics &statics, const Config &config)
    : system_(system), port_(port), program_(program), om_(om),
      collector_(collector), loader_(loader), compiler_(compiler),
      methodRt_(method_rt), statics_(statics), config_(config),
      rng_(program.randSeed),
      needsBarrier_(collector.needsWriteBarrier())
{
    JAVELIN_ASSERT(methodRt_.size() == program_.methods.size(),
                   "method runtime table size mismatch");
    frames_.reserve(config_.maxStackDepth);
    // The per-method superinstruction tables (run lengths, micro-op and
    // FP-stall prefix sums) are built once by Program::layout() and
    // shared by every engine instance (DESIGN.md §5g).
    std::uint32_t max_int = 0;
    std::uint32_t max_ref = 0;
    for (const auto &m : program_.methods) {
        JAVELIN_ASSERT(m.runLen.size() == m.code.size() &&
                           m.fpStallHalfPrefix.size() ==
                               m.code.size() + 1,
                       "Program::layout() not run before execution of ",
                       m.name);
        max_int = std::max<std::uint32_t>(max_int, m.nIntRegs);
        max_ref = std::max<std::uint32_t>(max_ref, m.nRefRegs);
    }
    // Worst-case pool sizes: storage allocated once and never moved
    // (see the member comment).
    intRegs_.assign(
        static_cast<std::size_t>(config_.maxStackDepth) * max_int, 0);
    refRegs_.assign(
        static_cast<std::size_t>(config_.maxStackDepth) * max_ref,
        kNull);
    buildTierCosts();
}

void
Interpreter::buildTierCosts()
{
    const auto &costs = compiler_.costs();
    for (unsigned t = 0; t < 4; ++t) {
        const Tier tier = static_cast<Tier>(t);
        TierCost &tc = tierCosts_[t];
        switch (tier) {
          case Tier::Interpreted:
            tc.dispatchUops = 12;
            tc.bytesPerBc = 0; // dispatch fetches 48 B of handler code
            break;
          case Tier::Baseline:
            tc.dispatchUops = 4;
            tc.bytesPerBc = costs.baselineBytesPerBc;
            break;
          case Tier::Jitted:
            tc.dispatchUops = 5;
            tc.bytesPerBc = costs.jitBytesPerBc;
            break;
          case Tier::Optimized:
            tc.dispatchUops = 2;
            tc.bytesPerBc = costs.optBytesPerBc;
            break;
        }
        // Frame-local spill/reload gate: the original spillOneIn was 4
        // for optimized code and 1 otherwise — both powers of two, so
        // the modulo becomes a mask and the counter behaves the same.
        tc.spillMask = tier == Tier::Optimized ? 3u : 0u;
        for (std::size_t op = 0; op < kNumOps; ++op) {
            // The shared transform keeps these tables and the prefix
            // sums Program::layout() caches in lockstep by
            // construction (op_costs.hh).
            const std::uint32_t v =
                op_costs::tierSemUops(tier, kBaseUops[op]);
            tc.uops[op] = static_cast<std::uint8_t>(v);
            tc.opExecUops[op] =
                static_cast<std::uint8_t>(tc.dispatchUops + v);
        }
    }

    mispredictPow2_ = std::has_single_bit(config_.mispredictOneIn);
    mispredictMask_ = mispredictPow2_ ? config_.mispredictOneIn - 1 : 0;
    elidePow2_ = std::has_single_bit(config_.optElideOneIn);
    elideMask_ = elidePow2_ ? config_.optElideOneIn - 1 : 0;
}

MethodId
Interpreter::currentMethod() const
{
    return frames_.empty() ? program_.entry : frames_.back().method->id;
}

void
Interpreter::forEachStackRoot(const std::function<void(Address &)> &fn)
{
    // Only the live prefix holds roots; slots above the top are stale
    // windows of popped frames.
    for (std::uint32_t i = 0; i < refTop_; ++i)
        fn(refRegs_[i]);
}

void
Interpreter::prepareMethod(MethodId id)
{
    MethodRuntime &rt = methodRt_[id];
    ++rt.invocations;
    if (rt.tier != Tier::Interpreted ||
        config_.compileOnInvoke == Tier::Interpreted)
        return;
    const MethodInfo &m = program_.methods[id];
    loader_.ensureLoaded(m.holder);
    if (config_.compileOnInvoke == Tier::Jitted)
        compiler_.jitCompile(m, rt);
    else
        compiler_.baselineCompile(m, rt);
}

void
Interpreter::pushFrame(MethodId id, const Frame *caller,
                       std::int32_t ret_dst, std::int32_t int_arg_base,
                       std::int32_t ref_arg_base)
{
    if (frames_.size() >= config_.maxStackDepth)
        throw StackOverflowError{};
    prepareMethod(id);

    const MethodInfo &m = program_.methods[id];
    Frame f;
    f.method = &m;
    f.rt = &methodRt_[id];
    f.runLen = m.runLen.data();
    f.pc = 0;
    f.intBase = intTop_;
    f.refBase = refTop_;
    f.retDst = ret_dst;
    // Fresh window: zero-fill in place (the pools are pre-sized for
    // the deepest possible stack, so the top can never pass the end).
    std::fill_n(intRegs_.data() + intTop_, m.nIntRegs,
                std::int64_t{0});
    std::fill_n(refRegs_.data() + refTop_, m.nRefRegs, kNull);
    intTop_ += m.nIntRegs;
    refTop_ += m.nRefRegs;

    if (caller) {
        for (std::uint32_t i = 0; i < m.nIntArgs; ++i)
            intRegs_[f.intBase + i] =
                intRegs_[caller->intBase + int_arg_base + i];
        for (std::uint32_t i = 0; i < m.nRefArgs; ++i)
            refRegs_[f.refBase + i] =
                refRegs_[caller->refBase + ref_arg_base + i];
    }
    frames_.push_back(f);

    // Frame setup: link, spill, prologue.
    sim::CpuModel &cpu = system_.cpu();
    cpu.execute(6, kVmCodeBase + 0x1e000, 24);
    cpu.store(kStackBase + frames_.size() * 64);
}

void
Interpreter::popFrame(std::int64_t value)
{
    const std::int32_t ret_dst = frames_.back().retDst;
    intTop_ = frames_.back().intBase;
    refTop_ = frames_.back().refBase;
    frames_.pop_back();

    sim::CpuModel &cpu = system_.cpu();
    cpu.execute(4, kVmCodeBase + 0x1e400, 16);
    cpu.load(kStackBase + (frames_.size() + 1) * 64);

    if (frames_.empty()) {
        result_ = value;
    } else if (ret_dst >= 0) {
        const Frame &caller = frames_.back();
        intRegs_[caller.intBase + ret_dst] = value;
    }
}

Address
Interpreter::allocObject(ClassId cls_id, std::uint32_t array_len)
{
    loader_.ensureLoaded(cls_id);
    const ClassInfo &cls = program_.classOf(cls_id);
    const std::uint32_t bytes = om_.objectBytes(cls, array_len);
    const Address addr = collector_.allocate(bytes);
    if (addr == kNull)
        throw OutOfMemoryError{bytes};
    om_.initObject(addr, cls, bytes, array_len);
    collector_.postInit(addr);
    return addr;
}

std::uint32_t
Interpreter::pollFreeIterations(const sim::CpuModel &cpu) const
{
    const Tick due = system_.nextTaskDue();
    const Tick now = cpu.now();
    if (due <= now)
        return 1; // a task is due: poll right after the next iteration
    const Tick slack = due - now;

    // Conservative bound on how far one full chunk iteration (64-uop
    // execute spanning 256 code bytes + one load) can advance time:
    // every access takes its worst-case penalty (L1 dirty victim, L2
    // miss with dirty victim, DRAM, prefetch catch-up) and stalls are
    // never overlapped. The true advance is strictly smaller, so polls
    // skipped inside the bound are provably no-ops.
    const auto &mem = system_.memory().config();
    const double maxPenalty =
        2.0 * mem.writebackCycles + mem.l2HitCycles +
        static_cast<double>(mem.dramCycles) +
        static_cast<double>(mem.dramCycles) / 3.0;
    const double penaltyScale =
        std::max(1.0, cpu.config().memStallFactor);
    const double maxAccesses = 256.0 / mem.l1i.lineBytes + 2.0;
    const double maxCycles = 65.0 * cpu.config().baseCpi +
                             (maxAccesses + 1.0) * maxPenalty *
                                 penaltyScale +
                             16.0;
    const double maxTicksPerIter =
        maxCycles * cpu.effectivePeriodTicks() * 1.0625 + 2.0;

    const double iters = static_cast<double>(slack) / maxTicksPerIter;
    if (iters >= 4.0e9)
        return 0xFFFFFFFFu;
    return static_cast<std::uint32_t>(iters) + 1;
}

void
Interpreter::doNativeWork(std::uint32_t uops, std::uint32_t bytes)
{
    sim::CpuModel &cpu = system_.cpu();
    constexpr std::uint64_t kWindow = 1 << 20;
    std::uint32_t remaining = uops;
    std::uint32_t off = 0;
    while (remaining > 0 || off < bytes) {
        // Hoisted-poll fast path: a run of full 64-uop + 64-byte-load
        // iterations short enough that no periodic task can come due
        // before it ends (pollFreeIterations), issued through the
        // order-preserving mixed block, then one poll at exactly the
        // tick the per-iteration loop would have polled next.
        if (remaining >= 64 && off + 64 <= bytes) {
            const std::uint32_t full =
                std::min(remaining / 64, (bytes - off) / 64);
            const std::uint32_t n =
                std::min(full, pollFreeIterations(cpu));
            if (n > 1) {
                cpu.execLoadBlock(n, 64, kVmCodeBase + 0x1c000, 64 * 4,
                                  kNativeBase, nativeCursor_,
                                  kWindow - 1, 64);
                remaining -= n * 64;
                off += n * 64;
                nativeCursor_ += static_cast<std::uint64_t>(n) * 64;
                system_.poll();
                continue;
            }
        }
        // Ragged head/tail (and task-imminent) iterations keep the
        // original per-iteration sequence and poll cadence.
        const std::uint32_t chunk = std::min<std::uint32_t>(remaining, 64);
        if (chunk)
            cpu.execute(chunk, kVmCodeBase + 0x1c000, chunk * 4);
        remaining -= chunk;
        if (off < bytes) {
            cpu.load(kNativeBase + (nativeCursor_ % kWindow));
            nativeCursor_ += 64;
            off += 64;
        }
        system_.poll();
    }
}

std::uint32_t
Interpreter::sumSegmentUops(const Frame &f, const TierCost &tc,
                            std::uint32_t pc0, std::uint32_t n,
                            double *stall_cycles) const
{
    // Two prefix-sum lookups replace the per-op walk (DESIGN.md §5g).
    // FP stalls are multiples of 0.5, so the half-cycle prefix
    // difference scaled by 0.5 is bit-identical to summing 2.5/3.5
    // per op in any order.
    const MethodInfo &m = *f.method;
    const auto &pref =
        m.semUopPrefix[static_cast<unsigned>(f.rt->tier)];
    *stall_cycles = 0.5 * (m.fpStallHalfPrefix[pc0 + n] -
                           m.fpStallHalfPrefix[pc0]);
    return n * tc.dispatchUops + (pref[pc0 + n] - pref[pc0]);
}

void
Interpreter::emitSegmentCharges(sim::CpuModel &cpu, const Frame &f,
                                const TierCost &tc, std::uint32_t pc0,
                                std::uint32_t n, std::uint32_t uops,
                                double stall_cycles)
{
    if (f.rt->tier == Tier::Interpreted) {
        // One folded execute for the run's dispatch + semantic
        // micro-ops; the run's handler code is charged as a single
        // resident 48-byte fetch span at the first handler (precedent:
        // the GC copy loop's fixed kCopyCodeBytes span). The operand
        // fetches stay per-bytecode, threaded through the one-line
        // bytecode stream buffer: only a word in a fresh D-line
        // reaches the cache (DESIGN.md §5g).
        cpu.execute(uops,
                    kInterpreterCodeBase +
                        static_cast<Address>(f.method->code[pc0].op) *
                            128,
                    48);
        cpu.loadBufferedBlock(
            f.method->bytecodeAddr +
                static_cast<Address>(pc0) * sizeof(Instruction),
            n, sizeof(Instruction), bcFetchLine_);
    } else {
        // Compiled tiers: the run's emitted code is contiguous — one
        // execute spanning it touches exactly the lines the per-op
        // walk did, each once.
        cpu.execute(uops,
                    f.rt->codeAddr +
                        static_cast<Address>(pc0) * tc.bytesPerBc,
                    n * tc.bytesPerBc);
    }
    if (tc.spillMask == 0) {
        // The spill gate fires on every bytecode for mask 0: the run's
        // loads walk the same wrapping 256-byte stack window.
        spillCounter_ += n;
        cpu.loadWindowBlock(n, kStackBase + frames_.size() * 256,
                            static_cast<std::uint64_t>(pc0) * 8, 0xf8, 8);
    } else {
        for (std::uint32_t j = 0; j < n; ++j)
            if (((++spillCounter_) & tc.spillMask) == 0)
                cpu.load(kStackBase + frames_.size() * 256 +
                         (((pc0 + j) * 8) & 0xf8));
    }
    if (stall_cycles != 0.0)
        cpu.stall(stall_cycles);
}

void
Interpreter::runSegmentFast(sim::CpuModel &cpu, Frame &f,
                            const TierCost &tc, std::uint32_t pc0,
                            std::uint32_t n)
{
    const Instruction *code = f.method->code.data() + pc0;
    std::int64_t *ir = intRegs_.data() + f.intBase;
    // The segment's charge sums come from the program's precomputed
    // prefix tables (sumSegmentUops), so this loop is pure semantics;
    // host-side register writes are invisible to the cost model.
    double stall = 0.0;
    const std::uint32_t uops = sumSegmentUops(f, tc, pc0, n, &stall);
    for (std::uint32_t j = 0; j < n; ++j) {
        const Instruction &in = code[j];
        switch (in.op) {
          case Op::Nop:
            break;
          case Op::IConst:
            ir[in.a] = in.b;
            break;
          case Op::Move:
            ir[in.a] = ir[in.b];
            break;
          case Op::IAdd:
            ir[in.a] = ir[in.b] + ir[in.c];
            break;
          case Op::ISub:
            ir[in.a] = ir[in.b] - ir[in.c];
            break;
          case Op::IMul:
            ir[in.a] = ir[in.b] * ir[in.c];
            break;
          case Op::IDiv:
            ir[in.a] =
                ir[in.c] != 0 ? wrapDiv(ir[in.b], ir[in.c]) : 0;
            break;
          case Op::IRem:
            ir[in.a] = (ir[in.c] != 0 && ir[in.c] != -1)
                           ? ir[in.b] % ir[in.c]
                           : 0;
            break;
          case Op::IXor:
            ir[in.a] = ir[in.b] ^ ir[in.c];
            break;
          case Op::FAdd:
            ir[in.a] = ir[in.b] + ir[in.c];
            break;
          case Op::FMul:
            ir[in.a] = ir[in.b] * ir[in.c];
            break;
          case Op::Rand: {
            const std::int64_t bound = ir[in.b];
            ir[in.a] = bound > 0
                           ? static_cast<std::int64_t>(rng_.uniformInt(
                                 static_cast<std::uint64_t>(bound)))
                           : 0;
            break;
          }
          default:
            JAVELIN_PANIC("non-foldable op in a folded segment");
        }
    }
    emitSegmentCharges(cpu, f, tc, pc0, n, uops, stall);
    executed_ += n;
}

/**
 * Fast-path trace executor: runs from the current pc until the next
 * non-traceable op (NativeWork/Halt), folding maximal runs of
 * foldable bytecodes into segment charges (runSegmentFast) and
 * executing branches, heap accessors, allocations and Call/Ret inline
 * with their exact per-op v2 charge stream — the same handler bodies
 * as the oracle, included from interpreter_ops.inc below, preceded by
 * the same dispatch/operand/spill charges the per-op front end emits.
 * Poll and quantum countdowns tick exactly as JAVELIN_TAIL_CHECKS
 * does (segments are clamped so boundaries land between bytecodes),
 * and the tier cost table is re-read after every quantum since the
 * optimizing compiler may have retiered the method.
 *
 * Within a trace, only Call/Ret can resize the frame stack or the
 * register pools, and they jump to the frame-refresh tail below,
 * which re-hoists every cached view after the frame change — in
 * exactly the order the outer dispatch loop observes (handler, then
 * tail checks, then refetch), so a poll's adaptive sample and a
 * quantum's retier see the same frame stack in both modes (DESIGN.md
 * §5g). New/NewArray run inline too: a collection they trigger
 * rewrites root values strictly in place (forEachStackRoot) and never
 * pushes frames or resizes the register pools, so the hoisted code,
 * ir and rr pointers all stay valid across it. A StackOverflowError
 * from an inline Call, or an OutOfMemoryError from an inline
 * allocation, propagates with the same charges emitted as per-op
 * dispatch.
 */
void
Interpreter::runTraceFast(sim::CpuModel &cpu,
                          std::uint32_t &pollCountdown,
                          std::uint32_t &quantumCountdown)
{
    Frame *f = &frames_.back();
    const MethodRuntime *rt = f->rt;
    const TierCost *tc = &tierCosts_[static_cast<unsigned>(rt->tier)];
    const Instruction *code = f->method->code.data();
    std::int64_t *ir = intRegs_.data() + f->intBase;
    Address *rr = refRegs_.data() + f->refBase;
    const Instruction *in = nullptr;
    std::uint32_t next = 0;

    for (;;) {
        {
            JAVELIN_ASSERT(f->pc < f->method->code.size(),
                           "pc fell off method ", f->method->name);
            const std::uint32_t run = f->runLen[f->pc];
            double fpStall = 0.0;
            if (run != 0) {
                const std::uint32_t n = std::min(
                    run, std::min(pollCountdown, quantumCountdown));
                if (n > 1) {
                    runSegmentFast(cpu, *f, *tc, f->pc, n);
                    f->pc += n;
                    pollCountdown -= n;
                    if (pollCountdown == 0) {
                        pollCountdown = config_.pollInterval;
                        system_.poll();
                    }
                    quantumCountdown -= n;
                    if (quantumCountdown == 0) {
                        quantumCountdown = config_.quantumBytecodes;
                        if (onQuantum)
                            onQuantum();
                        tc = &tierCosts_[static_cast<unsigned>(
                            rt->tier)];
                        if (yield_)
                            return;
                    }
                    continue;
                }
                // A segment clamped to one bytecode folds to exactly
                // the per-op charge stream below — opExecUops is
                // dispatch + semantic micro-ops, a one-element operand
                // block is one load, the spill gate advances
                // identically — plus the trailing FP stall, so skip
                // the segment call machinery (most static runs are
                // short; this is the hottest case).
                const Op op0 = code[f->pc].op;
                fpStall = op0 == Op::FAdd ? 2.5
                          : op0 == Op::FMul ? 3.5
                                            : 0.0;
            }

            in = &code[f->pc];
            if (!isTraceable(in->op))
                return;

            // The per-op front-end charges, verbatim from
            // JAVELIN_FETCH_CHARGE: folded dispatch+semantic execute
            // (plus the bytecode operand fetch when interpreted) and
            // the gated spill load.
            if (rt->tier == Tier::Interpreted) {
                cpu.execute(
                    tc->opExecUops[static_cast<unsigned>(in->op)],
                    kInterpreterCodeBase +
                        static_cast<Address>(in->op) * 128,
                    48);
                cpu.loadBuffered(f->method->bytecodeAddr +
                                     f->pc * sizeof(Instruction),
                                 bcFetchLine_);
            } else {
                cpu.execute(
                    tc->opExecUops[static_cast<unsigned>(in->op)],
                    rt->codeAddr + f->pc * tc->bytesPerBc,
                    tc->bytesPerBc);
            }
            if (((++spillCounter_) & tc->spillMask) == 0)
                cpu.load(kStackBase + frames_.size() * 256 +
                         ((f->pc * 8) & 0xf8));
            if (fpStall != 0.0)
                cpu.stall(fpStall);
            ++executed_;
            next = f->pc + 1;

            // The shared handler bodies. Non-traceable cases compile
            // here but never execute (the guard above returned);
            // foldable cases never execute either (run != 0 took the
            // segment path). Call/Ret jump to the frame-refresh tail.
            switch (in->op) {
#define JAVELIN_OP(name) case Op::name: {
#define JAVELIN_OP_END \
    } \
    break;
#define JAVELIN_OP_END_FRAME \
    } \
    goto javelin_trace_frame_changed;
#include "jvm/interpreter_ops.inc"
#undef JAVELIN_OP_END_FRAME
#undef JAVELIN_OP_END
#undef JAVELIN_OP
            }
            f->pc = next;

            // JAVELIN_TAIL_CHECKS, with the quantum's possible
            // retiering folded in.
            if (--pollCountdown == 0) {
                pollCountdown = config_.pollInterval;
                system_.poll();
            }
            if (--quantumCountdown == 0) {
                quantumCountdown = config_.quantumBytecodes;
                if (onQuantum)
                    onQuantum();
                tc = &tierCosts_[static_cast<unsigned>(rt->tier)];
                if (yield_)
                    return;
            }
            continue;
        }

    javelin_trace_frame_changed:
        // A Call pushed (after saving the resume pc) or a Ret popped
        // the current frame. Tail checks run first — the outer loop
        // also polls after the frame change — then every hoisted view
        // is refreshed from the new top frame. The final Ret leaves
        // the stack empty; dispatch ends the run.
        if (--pollCountdown == 0) {
            pollCountdown = config_.pollInterval;
            system_.poll();
        }
        if (--quantumCountdown == 0) {
            quantumCountdown = config_.quantumBytecodes;
            if (onQuantum)
                onQuantum();
            if (yield_)
                return;
        }
        if (frames_.empty())
            return;
        f = &frames_.back();
        rt = f->rt;
        tc = &tierCosts_[static_cast<unsigned>(rt->tier)];
        code = f->method->code.data();
        ir = intRegs_.data() + f->intBase;
        rr = refRegs_.data() + f->refBase;
    }
}

/**
 * Threaded dispatch uses the GNU computed-goto extension; any other
 * compiler (or -DJAVELIN_NO_COMPUTED_GOTO) gets the portable switch.
 * Both modes share the handler bodies in interpreter_ops.inc.
 */
#if defined(__GNUC__) && !defined(JAVELIN_NO_COMPUTED_GOTO)
#define JAVELIN_THREADED_DISPATCH 1
#else
#define JAVELIN_THREADED_DISPATCH 0
#endif

/**
 * Fast-path trace gate, run before each dispatch's liveness check: if
 * the pending op is traceable, the whole trace — folded segments plus
 * inline branches, heap accessors and Call/Ret — runs in
 * runTraceFast's host loop, and dispatch resumes at the first
 * non-traceable op (or with the stack empty after the final Ret, which
 * is why this must precede the frames_.empty() test: the per-bytecode
 * front end below may not touch frames_.back() afterwards).
 */
#define JAVELIN_MAYBE_TRACE() \
    do { \
        if (config_.fastPath && !frames_.empty() && !halted_ && \
            !yield_ && \
            isTraceable( \
                frames_.back().method->code[frames_.back().pc].op)) \
            runTraceFast(cpu, pollCountdown, quantumCountdown); \
    } while (0)

/**
 * Per-bytecode front end, identical for both dispatch modes.
 *
 * A foldable bytecode always sits at the head of a segment of
 * n = min(static run length, poll countdown, quantum countdown) ≥ 1
 * foldable bytecodes whose folded charges are emitted up front by
 * emitSegmentCharges (DESIGN.md §5f) — the clamping means polls and
 * quantum callbacks can only come due at a segment boundary, so the
 * poll tick schedule is bit-identical to per-op execution. On the fast
 * path JAVELIN_MAYBE_TRACE already ran everything traceable, so the
 * pending op takes the per-op path below; in oracle mode
 * (JAVELIN_INTERP_NO_FAST_PATH=1) the threaded dispatch executes each
 * segment per-op with the already-paid charges suppressed
 * (segPrepaid_). Non-foldable ops keep the historical per-op charge
 * sequence: dispatch execute (plus the bytecode operand fetch when
 * interpreted) and the gated frame-spill load.
 */
#define JAVELIN_FETCH_CHARGE() \
    do { \
        f = &frames_.back(); \
        JAVELIN_ASSERT(f->pc < f->method->code.size(), \
                       "pc fell off method ", f->method->name); \
        rt = f->rt; \
        tc = &tierCosts_[static_cast<unsigned>(rt->tier)]; \
        if (!config_.fastPath) { \
            const std::uint32_t run_ = f->runLen[f->pc]; \
            if (run_ != 0 && segPrepaid_ == 0) { \
                const std::uint32_t n_ = std::min( \
                    run_, std::min(pollCountdown, quantumCountdown)); \
                double stall_ = 0.0; \
                const std::uint32_t uops_ = \
                    sumSegmentUops(*f, *tc, f->pc, n_, &stall_); \
                emitSegmentCharges(cpu, *f, *tc, f->pc, n_, uops_, \
                                   stall_); \
                segPrepaid_ = n_; \
            } \
        } \
        in = &f->method->code[f->pc]; \
        if (segPrepaid_ != 0) { \
            --segPrepaid_; \
        } else { \
            if (rt->tier == Tier::Interpreted) { \
                cpu.execute( \
                    tc->opExecUops[static_cast<unsigned>(in->op)], \
                    kInterpreterCodeBase + \
                        static_cast<Address>(in->op) * 128, \
                    48); \
                cpu.loadBuffered(f->method->bytecodeAddr + \
                                     f->pc * sizeof(Instruction), \
                                 bcFetchLine_); \
            } else { \
                cpu.execute( \
                    tc->opExecUops[static_cast<unsigned>(in->op)], \
                    rt->codeAddr + f->pc * tc->bytesPerBc, \
                    tc->bytesPerBc); \
            } \
            if (((++spillCounter_) & tc->spillMask) == 0) \
                cpu.load(kStackBase + frames_.size() * 256 + \
                         ((f->pc * 8) & 0xf8)); \
        } \
        ++executed_; \
        ir = intRegs_.data() + f->intBase; \
        rr = refRegs_.data() + f->refBase; \
        next = f->pc + 1; \
    } while (0)

/** Safepoint tail run after every bytecode (including Call/Ret/Halt). */
#define JAVELIN_TAIL_CHECKS() \
    do { \
        if (--pollCountdown == 0) { \
            pollCountdown = config_.pollInterval; \
            system_.poll(); \
        } \
        if (--quantumCountdown == 0) { \
            quantumCountdown = config_.quantumBytecodes; \
            if (onQuantum) \
                onQuantum(); \
        } \
    } while (0)

std::int64_t
Interpreter::run(MethodId entry)
{
    start(entry);
    while (!runSlice()) {
    }
    return result_;
}

void
Interpreter::start(MethodId entry)
{
    JAVELIN_ASSERT(frames_.empty() && !active_,
                   "engine already running");
    halted_ = false;
    result_ = 0;
    segPrepaid_ = 0;
    bcFetchLine_ = ~Address{0};
    pollCountdown_ = config_.pollInterval;
    quantumCountdown_ = config_.quantumBytecodes;
    yield_ = false;
    active_ = true;
    pushFrame(entry, nullptr, -1, 0, 0);
}

void
Interpreter::abortRun()
{
    frames_.clear();
    intTop_ = 0;
    refTop_ = 0;
    segPrepaid_ = 0;
    yield_ = false;
    active_ = false;
}

bool
Interpreter::runSlice()
{
    JAVELIN_ASSERT(active_, "runSlice without start");
    yield_ = false;

    sim::CpuModel &cpu = system_.cpu();
    // The countdowns stay in locals through the hot loop (the members
    // only carry them across slices), so single-tenant codegen is
    // unchanged.
    std::uint32_t pollCountdown = pollCountdown_;
    std::uint32_t quantumCountdown = quantumCountdown_;

    // Per-bytecode views, refreshed by JAVELIN_FETCH_CHARGE.
    Frame *f = nullptr;
    const Instruction *in = nullptr;
    const MethodRuntime *rt = nullptr;
    const TierCost *tc = nullptr;
    std::int64_t *ir = nullptr;
    Address *rr = nullptr;
    std::uint32_t next = 0;

#if JAVELIN_THREADED_DISPATCH

    static const void *const kLabels[] = {
#define JAVELIN_OP_LABEL(name) &&javelin_op_##name,
        JAVELIN_FOR_EACH_OP(JAVELIN_OP_LABEL)
#undef JAVELIN_OP_LABEL
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumOps + 1);

#define JAVELIN_DISPATCH_NEXT() \
    do { \
        JAVELIN_MAYBE_TRACE(); \
        if (frames_.empty() || halted_ || yield_) \
            goto javelin_run_done; \
        JAVELIN_FETCH_CHARGE(); \
        goto *kLabels[static_cast<unsigned>(in->op)]; \
    } while (0)

    // Entry: frames_ is non-empty, halted_ and yield_ false after
    // start() and at every slice resume (the trace gate may drain the
    // whole program right here).
    JAVELIN_DISPATCH_NEXT();

#define JAVELIN_OP(name) javelin_op_##name: {
#define JAVELIN_OP_END \
    } \
    f->pc = next; \
    JAVELIN_TAIL_CHECKS(); \
    JAVELIN_DISPATCH_NEXT();
#define JAVELIN_OP_END_FRAME \
    } \
    JAVELIN_TAIL_CHECKS(); \
    JAVELIN_DISPATCH_NEXT();

#include "jvm/interpreter_ops.inc"

#undef JAVELIN_OP
#undef JAVELIN_OP_END
#undef JAVELIN_OP_END_FRAME
#undef JAVELIN_DISPATCH_NEXT

javelin_run_done:;

#else // !JAVELIN_THREADED_DISPATCH

    for (;;) {
        JAVELIN_MAYBE_TRACE();
        if (frames_.empty() || halted_ || yield_)
            break;
        JAVELIN_FETCH_CHARGE();
        switch (in->op) {
#define JAVELIN_OP(name) case Op::name: {
#define JAVELIN_OP_END \
    } \
    f->pc = next; \
    break;
#define JAVELIN_OP_END_FRAME \
    } \
    break;

#include "jvm/interpreter_ops.inc"

#undef JAVELIN_OP
#undef JAVELIN_OP_END
#undef JAVELIN_OP_END_FRAME
        }
        JAVELIN_TAIL_CHECKS();
    }

#endif // JAVELIN_THREADED_DISPATCH

    pollCountdown_ = pollCountdown;
    quantumCountdown_ = quantumCountdown;
    if (!frames_.empty() && !halted_)
        return false; // yielded at a quantum boundary
    frames_.clear();
    intTop_ = 0;
    refTop_ = 0;
    active_ = false;
    return true;
}

#undef JAVELIN_TAIL_CHECKS
#undef JAVELIN_FETCH_CHARGE
#undef JAVELIN_MAYBE_TRACE
#undef JAVELIN_FOR_EACH_OP

} // namespace jvm
} // namespace javelin
