/**
 * @file
 * Object layout and timed heap access.
 *
 * Every object is laid out as a 16-byte header (class id, total size,
 * GC word, aux/array-length) followed by reference slots and then scalar
 * slots, each 8 bytes. Accessors come in two flavours: the default ones
 * charge the CPU model for the memory traffic (this is how JVM activity
 * turns into cache behaviour and ultimately power); the *Raw variants
 * move data without timing and exist for tests and invariant checkers.
 *
 * GC metadata uses the gcBits word; when an object has been moved, a
 * 64-bit forwarding pointer overwrites the first header word (the
 * from-space copy is dead at that point, exactly as in a real Cheney
 * collector).
 */

#ifndef JAVELIN_JVM_OBJECT_MODEL_HH
#define JAVELIN_JVM_OBJECT_MODEL_HH

#include <cstring>
#include <functional>

#include "jvm/heap.hh"
#include "jvm/program.hh"
#include "sim/cpu_model.hh"

namespace javelin {
namespace jvm {

/** GC bit assignments within the gcBits header word. */
enum GcBits : std::uint32_t
{
    kMarkBit = 1u << 0,
    kForwardedBit = 1u << 1,
    kLoggedBit = 1u << 2,     ///< object is in a remembered set
    kColorShift = 4,          ///< two-bit tri-colour field
    kColorMask = 3u << kColorShift,
};

/** Tri-colour states for the incremental collector. */
enum class Color : std::uint32_t { White = 0, Gray = 1, Black = 2 };

/** Header field offsets. */
constexpr std::uint32_t kClassIdOffset = 0;
constexpr std::uint32_t kSizeOffset = 4;
constexpr std::uint32_t kGcBitsOffset = 8;
constexpr std::uint32_t kAuxOffset = 12;

/**
 * Memoized decode of one object's header: the host pointer to its
 * bytes plus the layout facts (class, size, slot counts) the GC
 * walkers re-derive constantly through classOfRaw/refCountRaw chains.
 * Valid until the object's first header line is rewritten (initObject,
 * copyObject destination, setForwarding) — ObjectModel invalidates its
 * memo at exactly those points. The mutable gcBits word is *not*
 * cached; read it through the heap.
 */
struct ObjectView
{
    Address obj = kNull;
    const std::uint8_t *ptr = nullptr;
    const ClassInfo *cls = nullptr;
    std::uint32_t size = 0;
    std::uint32_t refs = 0;
    std::uint32_t scalars = 0;

    /** Reference slot `slot` (untimed host read). */
    Address
    ref(std::uint32_t slot) const
    {
        std::uint64_t v;
        std::memcpy(&v, ptr + kHeaderBytes +
                            static_cast<std::size_t>(slot) * kSlotBytes,
                    sizeof(v));
        return v;
    }
};

/**
 * Object layout operations over a Heap, charging a CpuModel.
 */
class ObjectModel
{
  public:
    ObjectModel(Heap &heap, sim::CpuModel &cpu,
                const std::vector<ClassInfo> &classes);

    /** Total heap bytes for an instance of cls (array_len for arrays). */
    std::uint32_t objectBytes(const ClassInfo &cls,
                              std::uint32_t array_len) const;

    /**
     * Write a fresh header and zero the body. Charges header stores and
     * cache-line-granular zeroing traffic.
     */
    void initObject(Address obj, const ClassInfo &cls,
                    std::uint32_t total_bytes, std::uint32_t array_len);

    // --- charged accessors (drive the cache model) ---
    //
    // The slot accessors and the raw header decodes they ride on are
    // defined inline here: the interpreter's trace executor issues
    // millions of them per simulated second, and out-of-line they cost
    // a call/return around what is otherwise a few host loads plus the
    // (force-inlined) CpuModel charge.

    /** Load the header word pair (one line access). */
    std::uint32_t loadClassId(Address obj);
    std::uint32_t loadSize(Address obj);

    std::uint32_t
    loadGcBits(Address obj)
    {
        cpu_.load(obj + kGcBitsOffset);
        return heap_.read32(obj + kGcBitsOffset);
    }

    void
    storeGcBits(Address obj, std::uint32_t bits)
    {
        cpu_.store(obj + kGcBitsOffset);
        heap_.write32(obj + kGcBitsOffset, bits);
    }

    Address
    loadRef(Address obj, std::uint32_t slot)
    {
        const Address a = refSlotAddr(obj, slot);
        cpu_.load(a);
        return heap_.read64(a);
    }

    void
    storeRef(Address obj, std::uint32_t slot, Address value)
    {
        const Address a = refSlotAddr(obj, slot);
        cpu_.store(a);
        heap_.write64(a, value);
    }

    std::int64_t
    loadScalar(Address obj, std::uint32_t slot)
    {
        const Address a = scalarSlotAddr(obj, slot);
        cpu_.load(a);
        return static_cast<std::int64_t>(heap_.read64(a));
    }

    void
    storeScalar(Address obj, std::uint32_t slot, std::int64_t value)
    {
        const Address a = scalarSlotAddr(obj, slot);
        cpu_.store(a);
        heap_.write64(a, static_cast<std::uint64_t>(value));
    }

    /** Copy an object's bytes (charged per 16-byte chunk). */
    void copyObject(Address dst, Address src, std::uint32_t bytes);

    /** Install a forwarding pointer over the from-space header. */
    void setForwarding(Address obj, Address to);

    /** Follow a forwarding pointer (caller checked the bit). */
    Address loadForwarding(Address obj);

    // --- raw (untimed) accessors for host-side bookkeeping & tests ---

    std::uint32_t
    classIdRaw(Address obj) const
    {
        return heap_.read32(obj + kClassIdOffset);
    }
    std::uint32_t
    sizeRaw(Address obj) const
    {
        return heap_.read32(obj + kSizeOffset);
    }
    std::uint32_t
    gcBitsRaw(Address obj) const
    {
        return heap_.read32(obj + kGcBitsOffset);
    }
    void
    setGcBitsRaw(Address obj, std::uint32_t bits)
    {
        heap_.write32(obj + kGcBitsOffset, bits);
    }
    std::uint32_t
    auxRaw(Address obj) const
    {
        return heap_.read32(obj + kAuxOffset);
    }
    Address
    refRaw(Address obj, std::uint32_t slot) const
    {
        return heap_.read64(refSlotAddr(obj, slot));
    }
    std::int64_t
    scalarRaw(Address obj, std::uint32_t slot) const
    {
        return static_cast<std::int64_t>(
            heap_.read64(scalarSlotAddr(obj, slot)));
    }
    Address forwardingRaw(Address obj) const;
    bool
    isForwardedRaw(Address obj) const
    {
        return (gcBitsRaw(obj) & kForwardedBit) != 0;
    }

    /** Class of an object via its (raw) header. */
    const ClassInfo &
    classOfRaw(Address obj) const
    {
        const std::uint32_t id = classIdRaw(obj);
        JAVELIN_ASSERT(id < classes_.size(), "corrupt object header at ",
                       obj);
        return classes_[id];
    }

    /** Number of reference slots (raw header reads). */
    std::uint32_t
    refCountRaw(Address obj) const
    {
        const ClassInfo &cls = classOfRaw(obj);
        if (cls.isRefArray)
            return auxRaw(obj);
        if (cls.isScalarArray)
            return 0;
        return cls.refFields;
    }

    /** Number of scalar slots (raw header reads). */
    std::uint32_t scalarCountRaw(Address obj) const;

    /** Array length (raw). */
    std::uint32_t arrayLenRaw(Address obj) const { return auxRaw(obj); }

    /** Address of a reference slot. */
    Address
    refSlotAddr(Address obj, std::uint32_t slot) const
    {
        return obj + kHeaderBytes + slot * kSlotBytes;
    }

    /** Address of a scalar slot (scalars follow the reference slots). */
    Address
    scalarSlotAddr(Address obj, std::uint32_t slot) const
    {
        return obj + kHeaderBytes +
               (refCountRaw(obj) + slot) * kSlotBytes;
    }

    // --- memoized header decode (GC fast path, DESIGN.md §5e) ---

    /**
     * Dual-MRU memo over header decodes, the same discipline as the
     * sim::Cache line memo: slot 0 is the most recent decode, slot 1
     * the runner-up, a second hit swaps them. GC drain loops touch the
     * same few classes' layouts over and over; the memo collapses the
     * classIdRaw -> bounds-assert -> classes_[] -> aux chain to one
     * compare per repeat. Untimed — callers charge traffic themselves.
     * @pre obj is a live, initialized object (not kNull).
     */
    const ObjectView &
    view(Address obj)
    {
        if (view_[0].obj == obj) [[likely]]
            return view_[0];
        if (view_[1].obj == obj) {
            std::swap(view_[0], view_[1]);
            return view_[0];
        }
        return viewSlow(obj);
    }

    /** Drop any memoized decode of obj (its header is being rewritten). */
    void
    invalidateView(Address obj)
    {
        if (view_[0].obj == obj)
            view_[0] = ObjectView{};
        if (view_[1].obj == obj)
            view_[1] = ObjectView{};
    }

    /** Drop all memoized decodes (sweeps free cells wholesale). */
    void
    invalidateViews()
    {
        view_[0] = ObjectView{};
        view_[1] = ObjectView{};
    }

    Heap &heap() { return heap_; }
    const std::vector<ClassInfo> &classes() const { return classes_; }

  private:
    const ObjectView &viewSlow(Address obj);

    Heap &heap_;
    sim::CpuModel &cpu_;
    const std::vector<ClassInfo> &classes_;
    ObjectView view_[2];
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_OBJECT_MODEL_HH
