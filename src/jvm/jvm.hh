/**
 * @file
 * Top-level virtual machine.
 *
 * Assembles heap, object model, collector, class loader, compilers and
 * execution engine over a simulated System, and implements the two VM
 * personalities of the paper:
 *
 *  - Jikes RVM: no interpreter (baseline compile on first invocation),
 *    timer-sampled adaptive optimizing recompilation running on a
 *    service thread, system classes merged into the VM image, choice of
 *    SemiSpace / MarkSweep / GenCopy / GenMS collectors, component IDs
 *    written at thread-dispatch points.
 *  - Kaffe: one-shot non-optimizing JIT, incremental tri-colour
 *    mark-sweep collector, every class (including system classes)
 *    loaded lazily, component IDs written by entry/exit bracketing.
 *
 * The Jvm is the GcHost: it enumerates roots (statics + stack registers)
 * and brackets collector activity on the component port.
 */

#ifndef JAVELIN_JVM_JVM_HH
#define JAVELIN_JVM_JVM_HH

#include <deque>
#include <memory>

#include "jvm/interpreter.hh"

namespace javelin {
namespace jvm {

/** Which virtual machine personality to run. */
enum class VmKind { Jikes, Kaffe };

const char *vmKindName(VmKind kind);

/**
 * Full VM configuration for one run.
 */
struct JvmConfig
{
    VmKind kind = VmKind::Jikes;
    CollectorKind collector = CollectorKind::GenCopy;
    /** Heap size in (already scaled) bytes. */
    std::uint64_t heapBytes = 4 * kMiB;

    /** Adaptive-system sampling interval (Jikes only). */
    Tick sampleInterval = 100 * kTicksPerMicro;
    /** Samples before a method is declared hot. */
    std::uint32_t hotSampleThreshold = 4;
    /** Opt-compiler work units per service-thread slice. */
    std::uint32_t optSliceUnits = 800;
    /** Enable the adaptive optimizing system (Jikes only). */
    bool adaptiveOptimization = true;

    Interpreter::Config interp;

    /** Charge component-port writes to the CPU (perturbation study). */
    bool chargePortWrites = true;
    /** Charge write-barrier work to the mutator (ablation A2). */
    bool chargeBarrierCost = true;
};

/**
 * Result of one benchmark run.
 */
struct RunResult
{
    std::int64_t returnValue = 0;
    bool outOfMemory = false;
    bool stackOverflow = false;
    std::uint64_t bytecodesExecuted = 0;
    Collector::Stats gc;
    std::uint32_t classesLoaded = 0;
    std::uint32_t methodsCompiled = 0;
    std::uint32_t methodsOptimized = 0;
    Tick startTick = 0;
    Tick endTick = 0;

    double
    seconds() const
    {
        return ticksToSeconds(endTick - startTick);
    }
};

/**
 * One virtual machine instance (one run).
 */
class Jvm : public GcHost
{
  public:
    Jvm(sim::System &system, const Program &program,
        const JvmConfig &config);

    /**
     * Co-tenant instance: write component IDs through a shared,
     * externally-owned port (harness::TenantSet). Everything else —
     * heap, collector, loader, compilers, engine — is private to this
     * instance; only the System (and hence caches, DRAM, power and
     * thermal budget) and the port are shared.
     */
    Jvm(sim::System &system, const Program &program,
        const JvmConfig &config, core::ComponentPort &shared_port);

    ~Jvm() override;

    /** Execute the program's entry method to completion. */
    RunResult run();

    /**
     * Sliced service mode (DESIGN.md §11): run() decomposed so a
     * scheduler can interleave many instances on one System. A tenant
     * is booted once (beginService), then serves requests: each
     * request is one run of the program's entry method, executed in
     * quantum-bounded slices. Long-lived VM state — loaded classes,
     * compiled methods, heap, collector — persists across requests,
     * so later requests run warm. endService() closes the rollup.
     */
    void beginService();
    /** Arm the next request (entry method invocation). */
    void startRequest();
    /** Run one slice; true when the request completed. */
    bool runRequestSlice();
    /** A request is in flight (startRequest'd, not yet completed). */
    bool requestActive() const { return engine_->active(); }
    /** Tear down a request whose slice threw (OOM/stack overflow). */
    void abortRequest() { engine_->abortRun(); }
    RunResult endService();

    /** Scheduled state: a descheduled tenant's VM-internal timers
     *  (the Jikes adaptive sampler) do not fire. */
    void setOnCpu(bool on) { onCpu_ = on; }
    /** Yield the engine back to the scheduler every quantum. */
    void setYieldEachQuantum(bool y) { yieldEachQuantum_ = y; }

    core::ComponentPort &port() { return port_; }
    Collector &collector() { return *collector_; }
    ClassLoader &classLoader() { return loader_; }
    CompilerModel &compiler() { return compiler_; }
    Interpreter &engine() { return *engine_; }
    Statics &statics() { return statics_; }
    Heap &heap() { return heap_; }
    ObjectModel &objectModel() { return om_; }
    const JvmConfig &config() const { return config_; }

    // GcHost interface.
    void forEachRoot(const std::function<void(Address &)> &fn) override;
    void gcBegin(bool major) override;
    void gcEnd(bool major) override;

  private:
    Jvm(sim::System &system, const Program &program,
        const JvmConfig &config, core::ComponentPort *shared_port);

    void adaptiveSample(Tick now);
    void serviceQuantum();
    void chargeSchedulerDispatch();

    sim::System &system_;
    const Program &program_;
    JvmConfig config_;
    /** Owned in the classic single-VM case; null when sharing. */
    std::unique_ptr<core::ComponentPort> ownedPort_;
    core::ComponentPort &port_;
    Heap heap_;
    ObjectModel om_;
    std::unique_ptr<Collector> collector_;
    ClassLoader loader_;
    CompilerModel compiler_;
    Statics statics_;
    std::vector<MethodRuntime> methodRt_;
    std::unique_ptr<Interpreter> engine_;
    std::deque<MethodId> optQueue_;
    bool running_ = false;
    bool onCpu_ = true;
    bool yieldEachQuantum_ = false;
    std::int64_t lastReturnValue_ = 0;
    Tick serviceStartTick_ = 0;
};

/** Derive the per-VM interpreter/loader settings for a personality. */
Interpreter::Config interpConfigFor(VmKind kind);
ClassLoader::Config loaderConfigFor(VmKind kind, const Program &program);

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_JVM_HH
