/**
 * @file
 * The execution engine.
 *
 * Executes javelin bytecode under any compilation tier. One engine
 * implements the semantics; the *cost model* differs per tier:
 *
 *  - Interpreted: template-dispatch micro-ops at the interpreter's own
 *    code addresses plus a data-side fetch of the bytecode itself.
 *  - Baseline (Jikes first-invoke): modest per-bytecode overhead,
 *    instruction fetch walks the method's emitted code linearly.
 *  - Optimized (adaptive recompilation): lower overhead, denser code,
 *    and a fraction of scalar field traffic elided by register
 *    allocation (the value is still read — only the timing access is
 *    removed, so semantics never depend on the tier).
 *  - Jitted (Kaffe): baseline-like but with bulkier, slower code.
 *
 * The engine polls the system's periodic tasks at bytecode granularity
 * (the safepoint mechanism) and yields to service work — the optimizing
 * compiler thread — every scheduling quantum.
 *
 * Dispatch is threaded (computed-goto) where the compiler supports it,
 * with a portable switch fallback (define JAVELIN_NO_COMPUTED_GOTO to
 * force it); both paths share one set of opcode handler bodies
 * (interpreter_ops.inc) and drive the cost model from a per-tier,
 * per-opcode precomputed table, so the architectural event stream is
 * identical in either mode and to the original switch loop
 * (DESIGN.md §5d, pinned by tests/test_golden_runs.cc).
 */

#ifndef JAVELIN_JVM_INTERPRETER_HH
#define JAVELIN_JVM_INTERPRETER_HH

#include <functional>

#include "core/component_port.hh"
#include "jvm/classloader.hh"
#include "jvm/compilers.hh"
#include "jvm/gc/collector.hh"
#include "jvm/statics.hh"
#include "util/random.hh"

namespace javelin {
namespace jvm {

/** Default for Interpreter::Config::fastPath: true unless
 *  JAVELIN_INTERP_NO_FAST_PATH is set in the environment (checked
 *  once), mirroring gcFastPathDefault(). */
bool interpFastPathDefault();

/** Thrown when the collector cannot satisfy an allocation. */
struct OutOfMemoryError
{
    std::uint32_t requestedBytes = 0;
};

/** Thrown when the call stack exceeds its configured limit. */
struct StackOverflowError
{
};

/**
 * Bytecode execution engine.
 */
class Interpreter
{
  public:
    struct Config
    {
        /** Tier installed on a method's first invocation. */
        Tier compileOnInvoke = Tier::Baseline;
        /** Bytecodes between scheduler-quantum callbacks. */
        std::uint32_t quantumBytecodes = 4096;
        /** Bytecodes between periodic-task polls. */
        std::uint32_t pollInterval = 16;
        /** Maximum call depth. */
        std::uint32_t maxStackDepth = 256;
        /** Taken branches mispredicted: one in N. */
        std::uint32_t mispredictOneIn = 8;
        /** Scalar field accesses elided in optimized code: one in N. */
        std::uint32_t optElideOneIn = 4;
        /**
         * Use the execute-batching fast path (DESIGN.md §5f): maximal
         * straight-line runs of foldable bytecodes execute in one host
         * loop under one folded charge. Off = the per-op threaded
         * dispatch, kept as the oracle for tests/test_interp_diff.cc.
         * Both emit bit-identical architectural events and joules.
         */
        bool fastPath = interpFastPathDefault();
    };

    Interpreter(sim::System &system, core::ComponentPort &port,
                const Program &program, ObjectModel &om,
                Collector &collector, ClassLoader &loader,
                CompilerModel &compiler,
                std::vector<MethodRuntime> &method_rt, Statics &statics,
                const Config &config);

    /**
     * Run the program's entry method to completion.
     * @return the entry method's return value (0 if it halts).
     * @throws OutOfMemoryError, StackOverflowError
     */
    std::int64_t run(MethodId entry);

    /**
     * Sliced execution (multi-tenant interleaving, DESIGN.md §11):
     * start() arms a run of entry without executing a bytecode;
     * runSlice() then executes until the program finishes or a
     * requestYield() is observed at the next quantum boundary. run()
     * is exactly start() + runSlice() until finished, so a run that
     * never yields is bit-identical to the historical single call.
     */
    void start(MethodId entry);

    /**
     * Execute the started program until it finishes or yields.
     * @return true when finished (result() is valid), false on yield.
     * @throws OutOfMemoryError, StackOverflowError
     */
    bool runSlice();

    /** Stop at the next quantum boundary; runSlice() returns false.
     *  Only honored from within onQuantum (the scheduling points). */
    void requestYield() { yield_ = true; }

    /** A start()ed program that has not finished yet. */
    bool active() const { return active_; }

    /** Entry return value of the last finished run (0 if it halted). */
    std::int64_t result() const { return result_; }

    /** Discard the current run's stack (failed-tenant teardown after
     *  an OutOfMemoryError/StackOverflowError escaped runSlice()). */
    void abortRun();

    /** Visit every reference register of every live frame. */
    void forEachStackRoot(const std::function<void(Address &)> &fn);

    /** Method currently on top of the stack (for adaptive sampling). */
    MethodId currentMethod() const;

    /** Invoked every scheduling quantum (service-thread dispatch). */
    std::function<void()> onQuantum;

    /** Total bytecodes executed. */
    std::uint64_t bytecodesExecuted() const { return executed_; }

    const Config &config() const { return config_; }

  private:
    struct Frame
    {
        const MethodInfo *method;
        MethodRuntime *rt;
        /** Per-pc foldable-run lengths of method (built once by
         *  Program::layout() — MethodInfo::runLen). */
        const std::uint16_t *runLen;
        std::uint32_t pc;
        std::uint32_t intBase;
        std::uint32_t refBase;
        std::int32_t retDst;
    };

    /**
     * Per-tier cost table, precomputed at construction (DESIGN.md §5d):
     * the dispatch overhead, code stride, spill-gate mask and the
     * semUops tier transform folded into a per-opcode micro-op count.
     */
    struct TierCost
    {
        /** Micro-ops charged per bytecode dispatch. */
        std::uint32_t dispatchUops = 0;
        /** Emitted bytes per bytecode (compiled tiers' code stride). */
        std::uint32_t bytesPerBc = 0;
        /** Spill load fires when (++spillCounter_ & mask) == 0. */
        std::uint32_t spillMask = 0;
        /** Semantic micro-ops per opcode after the tier transform. */
        std::uint8_t uops[kNumOps] = {};
        /**
         * dispatchUops + uops[op]: the v3 per-op charge folds an op's
         * semantic micro-ops into its dispatch execute (one execute
         * call per non-foldable bytecode instead of two; the fetch
         * span and every other event are unchanged — DESIGN.md §5f).
         */
        std::uint8_t opExecUops[kNumOps] = {};
    };

    void pushFrame(MethodId id, const Frame *caller, std::int32_t ret_dst,
                   std::int32_t int_arg_base, std::int32_t ref_arg_base);
    void popFrame(std::int64_t value);
    void prepareMethod(MethodId id);
    void buildTierCosts();

    /**
     * Emit the folded v3 charge stream for the segment of n foldable
     * bytecodes at [pc0, pc0 + n) of frame f: one execute covering the
     * run's dispatch + semantic micro-ops (uops) and its fetch span,
     * the per-op operand loads (interpreted tier), the per-op
     * spill-gate loads with exact counter semantics, then one folded
     * stall (stall_cycles). Shared verbatim by the fast path and the
     * per-op oracle so every floating-point accumulation happens in
     * the same order (DESIGN.md §5f).
     */
    void emitSegmentCharges(sim::CpuModel &cpu, const Frame &f,
                            const TierCost &tc, std::uint32_t pc0,
                            std::uint32_t n, std::uint32_t uops,
                            double stall_cycles);

    /** Sum a segment's semantic micro-ops and FP stall cycles (the
     *  oracle's charge pass; the fast path fuses this into its
     *  execution loop — the sums are exact either way). */
    std::uint32_t sumSegmentUops(const Frame &f, const TierCost &tc,
                                 std::uint32_t pc0, std::uint32_t n,
                                 double *stall_cycles) const;

    /** Execute n foldable bytecodes at pc0 host-side and emit their
     *  folded charges (the fast path's segment body). */
    void runSegmentFast(sim::CpuModel &cpu, Frame &f, const TierCost &tc,
                        std::uint32_t pc0, std::uint32_t n);

    /** Fast-path trace executor: folded segments plus inline branch
     *  and heap-accessor ops, until the next frame-changing or
     *  allocating op. Ticks the countdowns exactly like the per-op
     *  tail checks. */
    void runTraceFast(sim::CpuModel &cpu, std::uint32_t &poll_countdown,
                      std::uint32_t &quantum_countdown);

    /** Taken-branch mispredict gate; counts and fires exactly like the
     *  original (++branchCounter_ % mispredictOneIn) == 0. */
    bool
    fireMispredict()
    {
        ++branchCounter_;
        return mispredictPow2_
            ? (branchCounter_ & mispredictMask_) == 0
            : branchCounter_ % config_.mispredictOneIn == 0;
    }

    bool
    elideFieldAccess(const Frame &f)
    {
        if (f.rt->tier != Tier::Optimized)
            return false;
        ++elideCounter_;
        return elidePow2_ ? (elideCounter_ & elideMask_) == 0
                          : elideCounter_ % config_.optElideOneIn == 0;
    }

    Address allocObject(ClassId cls_id, std::uint32_t array_len);
    void doNativeWork(std::uint32_t uops, std::uint32_t bytes);

    /** Iterations of doNativeWork's full chunk guaranteed not to reach
     *  the next periodic-task deadline (always >= 1; see DESIGN §5d). */
    std::uint32_t pollFreeIterations(const sim::CpuModel &cpu) const;

    sim::System &system_;
    core::ComponentPort &port_;
    const Program &program_;
    ObjectModel &om_;
    Collector &collector_;
    ClassLoader &loader_;
    CompilerModel &compiler_;
    std::vector<MethodRuntime> &methodRt_;
    Statics &statics_;
    Config config_;
    Rng rng_;

    TierCost tierCosts_[4]; // indexed by static_cast<unsigned>(Tier)
    std::uint32_t mispredictMask_ = 0;
    std::uint32_t elideMask_ = 0;
    bool mispredictPow2_ = true;
    bool elidePow2_ = true;

    std::vector<Frame> frames_;
    /** Register pools, sized once (maxStackDepth * widest method) so
     *  the storage never moves: a frame push zero-fills its window and
     *  bumps the top, a pop drops the top back — no per-call vector
     *  resize, and every pointer the trace executor hoists stays valid
     *  for the life of the run. Only [0, intTop_) / [0, refTop_) are
     *  live; forEachStackRoot must never walk past the top. */
    std::vector<std::int64_t> intRegs_;
    std::vector<Address> refRegs_;
    std::uint32_t intTop_ = 0;
    std::uint32_t refTop_ = 0;

    bool needsBarrier_;
    std::uint64_t executed_ = 0;
    std::uint32_t branchCounter_ = 0;
    std::uint32_t spillCounter_ = 0;
    std::uint32_t elideCounter_ = 0;
    /** Oracle mode: bytecodes of the current segment whose charges
     *  were already emitted by emitSegmentCharges. */
    std::uint32_t segPrepaid_ = 0;
    /** One-line bytecode-operand stream buffer (D-side analogue of
     *  the i-fetch buffer, DESIGN.md §5g): the last operand D-line
     *  the interpreted tier fetched. Threaded through every operand
     *  fetch — per-op and folded, fast path and oracle — in bytecode
     *  order, so both dispatch modes evolve it identically. ~0 means
     *  empty; reset at the top of run(). */
    Address bcFetchLine_ = ~Address{0};
    std::uint64_t nativeCursor_ = 0;
    std::int64_t result_ = 0;
    bool halted_ = false;
    /** Slice state: the countdowns live in locals inside runSlice()'s
     *  hot loop and are carried across slices through these members;
     *  yield_ is observed at quantum boundaries only. */
    std::uint32_t pollCountdown_ = 0;
    std::uint32_t quantumCountdown_ = 0;
    bool yield_ = false;
    bool active_ = false;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_INTERPRETER_HH
