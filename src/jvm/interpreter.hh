/**
 * @file
 * The execution engine.
 *
 * Executes javelin bytecode under any compilation tier. One engine
 * implements the semantics; the *cost model* differs per tier:
 *
 *  - Interpreted: template-dispatch micro-ops at the interpreter's own
 *    code addresses plus a data-side fetch of the bytecode itself.
 *  - Baseline (Jikes first-invoke): modest per-bytecode overhead,
 *    instruction fetch walks the method's emitted code linearly.
 *  - Optimized (adaptive recompilation): lower overhead, denser code,
 *    and a fraction of scalar field traffic elided by register
 *    allocation (the value is still read — only the timing access is
 *    removed, so semantics never depend on the tier).
 *  - Jitted (Kaffe): baseline-like but with bulkier, slower code.
 *
 * The engine polls the system's periodic tasks at bytecode granularity
 * (the safepoint mechanism) and yields to service work — the optimizing
 * compiler thread — every scheduling quantum.
 *
 * Dispatch is threaded (computed-goto) where the compiler supports it,
 * with a portable switch fallback (define JAVELIN_NO_COMPUTED_GOTO to
 * force it); both paths share one set of opcode handler bodies
 * (interpreter_ops.inc) and drive the cost model from a per-tier,
 * per-opcode precomputed table, so the architectural event stream is
 * identical in either mode and to the original switch loop
 * (DESIGN.md §5d, pinned by tests/test_golden_runs.cc).
 */

#ifndef JAVELIN_JVM_INTERPRETER_HH
#define JAVELIN_JVM_INTERPRETER_HH

#include <functional>

#include "core/component_port.hh"
#include "jvm/classloader.hh"
#include "jvm/compilers.hh"
#include "jvm/gc/collector.hh"
#include "jvm/statics.hh"
#include "util/random.hh"

namespace javelin {
namespace jvm {

/** Thrown when the collector cannot satisfy an allocation. */
struct OutOfMemoryError
{
    std::uint32_t requestedBytes = 0;
};

/** Thrown when the call stack exceeds its configured limit. */
struct StackOverflowError
{
};

/**
 * Bytecode execution engine.
 */
class Interpreter
{
  public:
    struct Config
    {
        /** Tier installed on a method's first invocation. */
        Tier compileOnInvoke = Tier::Baseline;
        /** Bytecodes between scheduler-quantum callbacks. */
        std::uint32_t quantumBytecodes = 4096;
        /** Bytecodes between periodic-task polls. */
        std::uint32_t pollInterval = 16;
        /** Maximum call depth. */
        std::uint32_t maxStackDepth = 256;
        /** Taken branches mispredicted: one in N. */
        std::uint32_t mispredictOneIn = 8;
        /** Scalar field accesses elided in optimized code: one in N. */
        std::uint32_t optElideOneIn = 4;
    };

    Interpreter(sim::System &system, core::ComponentPort &port,
                const Program &program, ObjectModel &om,
                Collector &collector, ClassLoader &loader,
                CompilerModel &compiler,
                std::vector<MethodRuntime> &method_rt, Statics &statics,
                const Config &config);

    /**
     * Run the program's entry method to completion.
     * @return the entry method's return value (0 if it halts).
     * @throws OutOfMemoryError, StackOverflowError
     */
    std::int64_t run(MethodId entry);

    /** Visit every reference register of every live frame. */
    void forEachStackRoot(const std::function<void(Address &)> &fn);

    /** Method currently on top of the stack (for adaptive sampling). */
    MethodId currentMethod() const;

    /** Invoked every scheduling quantum (service-thread dispatch). */
    std::function<void()> onQuantum;

    /** Total bytecodes executed. */
    std::uint64_t bytecodesExecuted() const { return executed_; }

    const Config &config() const { return config_; }

  private:
    struct Frame
    {
        const MethodInfo *method;
        MethodRuntime *rt;
        std::uint32_t pc;
        std::uint32_t intBase;
        std::uint32_t refBase;
        std::int32_t retDst;
    };

    /**
     * Per-tier cost table, precomputed at construction (DESIGN.md §5d):
     * the dispatch overhead, code stride, spill-gate mask and the
     * semUops tier transform folded into a per-opcode micro-op count.
     */
    struct TierCost
    {
        /** Micro-ops charged per bytecode dispatch. */
        std::uint32_t dispatchUops = 0;
        /** Emitted bytes per bytecode (compiled tiers' code stride). */
        std::uint32_t bytesPerBc = 0;
        /** Spill load fires when (++spillCounter_ & mask) == 0. */
        std::uint32_t spillMask = 0;
        /** Semantic micro-ops per opcode after the tier transform. */
        std::uint8_t uops[kNumOps] = {};
    };

    void pushFrame(MethodId id, const Frame *caller, std::int32_t ret_dst,
                   std::int32_t int_arg_base, std::int32_t ref_arg_base);
    void popFrame(std::int64_t value);
    void prepareMethod(MethodId id);
    void buildTierCosts();

    /** Taken-branch mispredict gate; counts and fires exactly like the
     *  original (++branchCounter_ % mispredictOneIn) == 0. */
    bool
    fireMispredict()
    {
        ++branchCounter_;
        return mispredictPow2_
            ? (branchCounter_ & mispredictMask_) == 0
            : branchCounter_ % config_.mispredictOneIn == 0;
    }

    bool
    elideFieldAccess(const Frame &f)
    {
        if (f.rt->tier != Tier::Optimized)
            return false;
        ++elideCounter_;
        return elidePow2_ ? (elideCounter_ & elideMask_) == 0
                          : elideCounter_ % config_.optElideOneIn == 0;
    }

    Address allocObject(ClassId cls_id, std::uint32_t array_len);
    void doNativeWork(std::uint32_t uops, std::uint32_t bytes);

    /** Iterations of doNativeWork's full chunk guaranteed not to reach
     *  the next periodic-task deadline (always >= 1; see DESIGN §5d). */
    std::uint32_t pollFreeIterations(const sim::CpuModel &cpu) const;

    sim::System &system_;
    core::ComponentPort &port_;
    const Program &program_;
    ObjectModel &om_;
    Collector &collector_;
    ClassLoader &loader_;
    CompilerModel &compiler_;
    std::vector<MethodRuntime> &methodRt_;
    Statics &statics_;
    Config config_;
    Rng rng_;

    TierCost tierCosts_[4]; // indexed by static_cast<unsigned>(Tier)
    std::uint32_t mispredictMask_ = 0;
    std::uint32_t elideMask_ = 0;
    bool mispredictPow2_ = true;
    bool elidePow2_ = true;

    std::vector<Frame> frames_;
    std::vector<std::int64_t> intRegs_;
    std::vector<Address> refRegs_;

    bool needsBarrier_;
    std::uint64_t executed_ = 0;
    std::uint32_t branchCounter_ = 0;
    std::uint32_t spillCounter_ = 0;
    std::uint32_t elideCounter_ = 0;
    std::uint64_t nativeCursor_ = 0;
    std::int64_t result_ = 0;
    bool halted_ = false;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_INTERPRETER_HH
