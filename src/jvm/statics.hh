/**
 * @file
 * Static reference slots: the program-visible global roots. Backed by
 * host memory with simulated addresses in the statics region, so static
 * accesses show up in the cache model and the slots are enumerable as
 * GC roots.
 */

#ifndef JAVELIN_JVM_STATICS_HH
#define JAVELIN_JVM_STATICS_HH

#include <vector>

#include "jvm/address.hh"
#include "sim/system.hh"
#include "util/logging.hh"

namespace javelin {
namespace jvm {

/**
 * The static (global) reference table.
 */
class Statics
{
  public:
    Statics(sim::System &system, std::uint32_t count)
        : system_(system), values_(count, kNull)
    {
    }

    std::uint32_t
    count() const
    {
        return static_cast<std::uint32_t>(values_.size());
    }

    Address
    slotAddr(std::uint32_t i) const
    {
        return kStaticsBase + static_cast<Address>(i) * kSlotBytes;
    }

    /** Charged load. */
    Address
    load(std::uint32_t i)
    {
        JAVELIN_ASSERT(i < values_.size(), "static index out of range");
        system_.cpu().load(slotAddr(i));
        return values_[i];
    }

    /** Charged store. */
    void
    store(std::uint32_t i, Address v)
    {
        JAVELIN_ASSERT(i < values_.size(), "static index out of range");
        system_.cpu().store(slotAddr(i));
        values_[i] = v;
    }

    /** Host-side slot for GC root enumeration (no timing). */
    Address &slotHost(std::uint32_t i) { return values_[i]; }

  private:
    sim::System &system_;
    std::vector<Address> values_;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_STATICS_HH
