#include "jvm/program.hh"

#include <algorithm>
#include <sstream>

#include "jvm/op_costs.hh"
#include "util/logging.hh"

namespace javelin {
namespace jvm {

namespace {

/**
 * Build one method's superinstruction tables (DESIGN.md §5g): the
 * per-pc maximal foldable-run lengths (backward scan) and the prefix
 * sums the segment front end charges from — per-tier semantic
 * micro-ops and FP stall half-cycles. Done once per program instead of
 * once per Interpreter construction, so short runs (benchmark suites,
 * sweeps) stop paying an O(code) rebuild per VM instance.
 */
void
buildFoldTables(MethodInfo &m)
{
    const std::size_t len = m.code.size();
    m.runLen.assign(len, 0);
    std::uint32_t run = 0;
    for (std::size_t i = len; i-- > 0;) {
        if (op_costs::isFoldable(m.code[i].op)) {
            run = std::min<std::uint32_t>(run + 1, 0xFFFF);
            m.runLen[i] = static_cast<std::uint16_t>(run);
        } else {
            run = 0;
        }
    }

    m.fpStallHalfPrefix.assign(len + 1, 0);
    for (std::size_t i = 0; i < len; ++i)
        m.fpStallHalfPrefix[i + 1] =
            m.fpStallHalfPrefix[i] +
            op_costs::fpStallHalfCycles(m.code[i].op);

    for (unsigned t = 0; t < 4; ++t) {
        auto &pref = m.semUopPrefix[t];
        pref.assign(len + 1, 0);
        for (std::size_t i = 0; i < len; ++i)
            pref[i + 1] =
                pref[i] +
                op_costs::tierSemUops(
                    static_cast<Tier>(t),
                    op_costs::kBaseUops[static_cast<unsigned>(
                        m.code[i].op)]);
    }
}

} // namespace

void
Program::layout()
{
    Address metadata = kMetadataBase;
    for (auto &cls : classes) {
        cls.metadataAddr = metadata;
        metadata += alignUp(cls.metadataBytes);
    }
    for (auto &m : methods) {
        m.bytecodeAddr = metadata;
        metadata += alignUp(static_cast<std::uint32_t>(
            m.code.size() * sizeof(Instruction)));
        buildFoldTables(m);
    }
    JAVELIN_ASSERT(metadata < kStaticsBase,
                   "metadata region overflow: program too large");
}

std::size_t
Program::totalCodeSize() const
{
    std::size_t n = 0;
    for (const auto &m : methods)
        n += m.code.size();
    return n;
}

namespace {

class Verifier
{
  public:
    Verifier(const Program &program) : program_(program) {}

    std::vector<std::string>
    run()
    {
        if (program_.classes.empty())
            fail(0, 0, "program has no classes");
        if (program_.methods.empty())
            fail(0, 0, "program has no methods");
        for (std::size_t i = 0; i < program_.classes.size(); ++i)
            checkClass(static_cast<ClassId>(i));
        for (std::size_t i = 0; i < program_.methods.size(); ++i)
            checkMethod(static_cast<MethodId>(i));
        if (program_.entry >= program_.methods.size())
            fail(0, 0, "entry method out of range");
        return std::move(errors_);
    }

  private:
    void
    fail(MethodId m, std::size_t pc, const std::string &what)
    {
        std::ostringstream os;
        os << "method " << m << " pc " << pc << ": " << what;
        errors_.push_back(os.str());
    }

    void
    checkClass(ClassId id)
    {
        const ClassInfo &cls = program_.classes[id];
        if (cls.id != id)
            fail(0, 0, "class table id mismatch at " + std::to_string(id));
        if (cls.isRefArray && cls.isScalarArray)
            fail(0, 0, "class " + cls.name + " is both array kinds");
        if (cls.isArray() && (cls.refFields || cls.scalarFields))
            fail(0, 0, "array class " + cls.name + " has fields");
        if (cls.super != kNoClass && cls.super >= program_.classes.size())
            fail(0, 0, "class " + cls.name + " has bad super");
        for (ClassId ref : cls.referencedClasses)
            if (ref >= program_.classes.size())
                fail(0, 0, "class " + cls.name + " references bad class");
    }

    bool
    classOk(ClassId id) const
    {
        return id < program_.classes.size();
    }

    void
    checkMethod(MethodId id)
    {
        const MethodInfo &m = program_.methods[id];
        if (m.id != id)
            fail(id, 0, "method table id mismatch");
        if (m.code.empty()) {
            fail(id, 0, "empty method body");
            return;
        }
        if (m.nIntArgs > m.nIntRegs || m.nRefArgs > m.nRefRegs)
            fail(id, 0, "argument count exceeds register file");

        const auto codeLen = static_cast<std::int32_t>(m.code.size());
        auto intReg = [&](std::int32_t r) { return r >= 0 && r < m.nIntRegs; };
        auto refReg = [&](std::int32_t r) { return r >= 0 && r < m.nRefRegs; };
        auto target = [&](std::int32_t t) { return t >= 0 && t < codeLen; };

        bool sawTerminator = false;
        for (std::size_t pc = 0; pc < m.code.size(); ++pc) {
            const Instruction &in = m.code[pc];
            switch (in.op) {
              case Op::Nop:
                break;
              case Op::IConst:
                if (!intReg(in.a))
                    fail(id, pc, "iconst bad reg");
                break;
              case Op::Move:
                if (!intReg(in.a) || !intReg(in.b))
                    fail(id, pc, "move bad reg");
                break;
              case Op::IAdd:
              case Op::ISub:
              case Op::IMul:
              case Op::IDiv:
              case Op::IRem:
              case Op::IXor:
              case Op::FAdd:
              case Op::FMul:
                if (!intReg(in.a) || !intReg(in.b) || !intReg(in.c))
                    fail(id, pc, "alu bad reg");
                break;
              case Op::Rand:
                if (!intReg(in.a) || !intReg(in.b))
                    fail(id, pc, "rand bad reg");
                break;
              case Op::Goto:
                if (!target(in.a))
                    fail(id, pc, "goto bad target");
                break;
              case Op::IfLt:
              case Op::IfGe:
              case Op::IfEq:
              case Op::IfNe:
                if (!intReg(in.a) || !intReg(in.b) || !target(in.c))
                    fail(id, pc, "if bad operands");
                break;
              case Op::IfNull:
              case Op::IfNotNull:
                if (!refReg(in.a) || !target(in.b))
                    fail(id, pc, "ifnull bad operands");
                break;
              case Op::Call: {
                if (!intReg(in.a)) {
                    fail(id, pc, "call bad dst");
                    break;
                }
                if (in.b < 0 ||
                    in.b >= static_cast<std::int32_t>(
                        program_.methods.size())) {
                    fail(id, pc, "call bad method");
                    break;
                }
                const MethodInfo &callee =
                    program_.methods[static_cast<MethodId>(in.b)];
                if (callee.nIntArgs &&
                    (in.c < 0 || in.c + callee.nIntArgs > m.nIntRegs))
                    fail(id, pc, "call int-arg window out of range");
                if (callee.nRefArgs &&
                    (in.d < 0 || in.d + callee.nRefArgs > m.nRefRegs))
                    fail(id, pc, "call ref-arg window out of range");
                break;
              }
              case Op::Ret:
                if (!intReg(in.a))
                    fail(id, pc, "ret bad reg");
                sawTerminator = true;
                break;
              case Op::New:
                if (!refReg(in.a) || !classOk(static_cast<ClassId>(in.b)))
                    fail(id, pc, "new bad operands");
                else if (program_.classes[static_cast<ClassId>(in.b)]
                             .isArray())
                    fail(id, pc, "new of array class");
                break;
              case Op::NewArray:
                if (!refReg(in.a) || !classOk(static_cast<ClassId>(in.b)) ||
                    !intReg(in.c))
                    fail(id, pc, "newarray bad operands");
                else if (!program_.classes[static_cast<ClassId>(in.b)]
                              .isArray())
                    fail(id, pc, "newarray of non-array class");
                break;
              case Op::GetField:
                if (!intReg(in.a) || !refReg(in.b))
                    fail(id, pc, "getfield bad regs");
                break;
              case Op::PutField:
                if (!refReg(in.a) || !intReg(in.c))
                    fail(id, pc, "putfield bad regs");
                break;
              case Op::GetRef:
                if (!refReg(in.a) || !refReg(in.b))
                    fail(id, pc, "getref bad regs");
                break;
              case Op::PutRef:
                if (!refReg(in.a) || !refReg(in.c))
                    fail(id, pc, "putref bad regs");
                break;
              case Op::GetElem:
                if (!intReg(in.a) || !refReg(in.b) || !intReg(in.c))
                    fail(id, pc, "getelem bad regs");
                break;
              case Op::PutElem:
                if (!refReg(in.a) || !intReg(in.b) || !intReg(in.c))
                    fail(id, pc, "putelem bad regs");
                break;
              case Op::GetRefElem:
                if (!refReg(in.a) || !refReg(in.b) || !intReg(in.c))
                    fail(id, pc, "getrefelem bad regs");
                break;
              case Op::PutRefElem:
                if (!refReg(in.a) || !intReg(in.b) || !refReg(in.c))
                    fail(id, pc, "putrefelem bad regs");
                break;
              case Op::ArrayLen:
                if (!intReg(in.a) || !refReg(in.b))
                    fail(id, pc, "arraylen bad regs");
                break;
              case Op::GetStatic:
                if (!refReg(in.a) || in.b < 0 ||
                    in.b >= static_cast<std::int32_t>(program_.numStatics))
                    fail(id, pc, "getstatic bad operands");
                break;
              case Op::PutStatic:
                if (in.a < 0 ||
                    in.a >= static_cast<std::int32_t>(program_.numStatics) ||
                    !refReg(in.b))
                    fail(id, pc, "putstatic bad operands");
                break;
              case Op::NativeWork:
                if (in.a < 0 || in.b < 0)
                    fail(id, pc, "nativework negative cost");
                break;
              case Op::Halt:
                sawTerminator = true;
                break;
              case Op::NumOps:
                fail(id, pc, "invalid opcode");
                break;
            }
        }
        if (!sawTerminator)
            fail(id, m.code.size() - 1, "method lacks ret/halt");
    }

    const Program &program_;
    std::vector<std::string> errors_;
};

} // namespace

std::vector<std::string>
Program::verify() const
{
    return Verifier(*this).run();
}

} // namespace jvm
} // namespace javelin
