#include "jvm/classloader.hh"

#include <algorithm>

#include "util/logging.hh"

namespace javelin {
namespace jvm {

ClassLoader::ClassLoader(sim::System &system, core::ComponentPort &port,
                         const Program &program, const Config &config,
                         std::uint64_t seed)
    : system_(system), port_(port), program_(program), config_(config),
      rng_(seed), loaded_(program.classes.size(), false)
{
    if (config_.bootClassesPreloaded) {
        const std::uint32_t n =
            std::min<std::uint32_t>(config_.bootClassCount,
                                    static_cast<std::uint32_t>(
                                        loaded_.size()));
        for (std::uint32_t i = 0; i < n; ++i)
            loaded_[i] = true;
        loadedCount_ = n;
    }
}

void
ClassLoader::ensureLoaded(ClassId id)
{
    JAVELIN_ASSERT(id < loaded_.size(), "bad class id ", id);
    if (loaded_[id])
        return;
    core::ComponentScope scope(port_, core::ComponentId::ClassLoader);
    loadOne(id);
}

void
ClassLoader::loadOne(ClassId id)
{
    if (loaded_[id])
        return;
    loaded_[id] = true; // set first: classes may reference each other
    ++loadedCount_;
    ++depth_;

    const ClassInfo &cls = program_.classOf(id);
    sim::CpuModel &cpu = system_.cpu();

    const auto scaled = [&](double v) {
        return static_cast<std::uint32_t>(v * config_.costFactor);
    };

    // Parse pass: stream through the class metadata.
    const std::uint32_t bytes = cls.metadataBytes;
    for (std::uint32_t off = 0; off < bytes; off += 16) {
        cpu.load(cls.metadataAddr + off);
        cpu.execute(scaled(7), kClassLoaderCode, 28);
        if ((off & 0xff) == 0)
            system_.poll();
    }

    // Constant-pool resolution: dependent probes into the shared symbol
    // table (hash-spread, so mostly cache-cold — the stall-heavy phase
    // the paper sees on the PXA255).
    for (std::uint32_t e = 0; e < cls.constantPoolEntries; ++e) {
        std::uint64_t h = (static_cast<std::uint64_t>(id) << 20) ^
                          (e * 0x9e3779b97f4a7c15ULL);
        for (std::uint32_t probe = 0; probe < config_.resolutionProbes;
             ++probe) {
            h = h * 6364136223846793005ULL + 1442695040888963407ULL;
            cpu.load(kSymbolTableBase + (h % kSymbolTableBytes & ~7ULL));
            cpu.execute(scaled(9), kClassLoaderCode + 512, 36);
        }
        cpu.load(cls.metadataAddr + (e * 24) % cls.metadataBytes);
    }
    system_.poll();

    // Superclass is required; referenced classes load eagerly with some
    // probability (the rest stay lazy until first use).
    if (cls.super != kNoClass)
        loadOne(cls.super);
    if (depth_ < 16) {
        for (ClassId ref : cls.referencedClasses)
            if (!loaded_[ref] && rng_.bernoulli(config_.eagerLoadProbability))
                loadOne(ref);
    }
    --depth_;
}

} // namespace jvm
} // namespace javelin
