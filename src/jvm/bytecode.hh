/**
 * @file
 * The javelin bytecode instruction set.
 *
 * A compact register-based (Dalvik-style) bytecode stands in for Java
 * bytecode: methods have separate integer and reference register files,
 * structured control flow via conditional branches, invocation with a
 * callee-register window, and the full set of heap operations the JVM
 * components care about (allocation, field and array access for both
 * scalar and reference data, static roots). Reference and integer
 * registers are strictly separated so garbage collection roots are
 * precise, exactly as in the Jikes RVM.
 */

#ifndef JAVELIN_JVM_BYTECODE_HH
#define JAVELIN_JVM_BYTECODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace javelin {
namespace jvm {

/** Opcode set. 'r' prefix in comments = reference register file. */
enum class Op : std::uint8_t
{
    Nop = 0,
    IConst,     ///< i[a] = imm(b)
    Move,       ///< i[a] = i[b]
    IAdd,       ///< i[a] = i[b] + i[c]
    ISub,       ///< i[a] = i[b] - i[c]
    IMul,       ///< i[a] = i[b] * i[c]
    IDiv,       ///< i[a] = i[b] / i[c]  (b/0 yields 0, like a guarded div)
    IRem,       ///< i[a] = i[b] % i[c]  (mod 0 yields 0)
    IXor,       ///< i[a] = i[b] ^ i[c]
    FAdd,       ///< i[a] = i[b] + i[c], charged at FP cost
    FMul,       ///< i[a] = i[b] * i[c], charged at FP cost
    Rand,       ///< i[a] = uniform [0, i[b]) from the program's PRNG
    Goto,       ///< pc = a
    IfLt,       ///< if (i[a] < i[b]) pc = c
    IfGe,       ///< if (i[a] >= i[b]) pc = c
    IfEq,       ///< if (i[a] == i[b]) pc = c
    IfNe,       ///< if (i[a] != i[b]) pc = c
    IfNull,     ///< if (r[a] == null) pc = b
    IfNotNull,  ///< if (r[a] != null) pc = b
    Call,       ///< i[a] = invoke method b with int args i[c..c+nIntArgs)
                ///<        and ref args r[d..d+nRefArgs)
    Ret,        ///< return i[a] to the caller
    New,        ///< r[a] = new instance of class b
    NewArray,   ///< r[a] = new array of class b with length i[c]
    GetField,   ///< i[a] = r[b].scalar[c]
    PutField,   ///< r[a].scalar[b] = i[c]
    GetRef,     ///< r[a] = r[b].ref[c]
    PutRef,     ///< r[a].ref[b] = r[c]   (write barrier applies)
    GetElem,    ///< i[a] = r[b].elem[i[c]]        (scalar array)
    PutElem,    ///< r[a].elem[i[b]] = i[c]
    GetRefElem, ///< r[a] = r[b].relem[i[c]]       (reference array)
    PutRefElem, ///< r[a].relem[i[b]] = r[c]  (write barrier applies)
    ArrayLen,   ///< i[a] = r[b].length
    GetStatic,  ///< r[a] = statics[b]
    PutStatic,  ///< statics[a] = r[b]
    NativeWork, ///< run a native kernel: a ALU ops, b bytes streamed
    Halt,       ///< stop the thread
    NumOps,
};

/** Number of opcodes (for dispatch-table sizing). */
constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::NumOps);

/**
 * One decoded instruction. Operand meaning depends on the opcode; see
 * the Op documentation above.
 */
struct Instruction
{
    Op op = Op::Nop;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::int32_t d = 0;
};

/** Mnemonic of an opcode. */
const char *opName(Op op);

/** Human-readable one-line disassembly of an instruction. */
std::string disassemble(const Instruction &inst);

/** True if the opcode reads or writes the Java heap. */
bool opTouchesHeap(Op op);

/** True if the opcode is a reference store (write-barrier candidate). */
constexpr bool
opIsRefStore(Op op)
{
    return op == Op::PutRef || op == Op::PutRefElem;
}

/** Body of one method. */
using Code = std::vector<Instruction>;

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_BYTECODE_HH
