/**
 * @file
 * Fluent helper for constructing methods in javelin bytecode. Used by
 * the workload program builder and by tests that need small hand-built
 * programs. Tracks register allocation and supports forward branch
 * patching.
 */

#ifndef JAVELIN_JVM_METHOD_BUILDER_HH
#define JAVELIN_JVM_METHOD_BUILDER_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "jvm/program.hh"
#include "util/logging.hh"

namespace javelin {
namespace jvm {

/**
 * Builds one MethodInfo.
 */
class MethodBuilder
{
  public:
    MethodBuilder(Program &program, std::string name, ClassId holder,
                  std::uint16_t n_int_args = 0,
                  std::uint16_t n_ref_args = 0)
        : program_(program)
    {
        method_.id = static_cast<MethodId>(program.methods.size());
        method_.name = std::move(name);
        method_.holder = holder;
        method_.nIntArgs = n_int_args;
        method_.nRefArgs = n_ref_args;
        nextInt_ = n_int_args;
        nextRef_ = n_ref_args;
    }

    /** Allocate a fresh integer register. */
    std::int32_t
    ireg()
    {
        JAVELIN_ASSERT(nextInt_ < 256, "int register file exhausted");
        return nextInt_++;
    }

    /** Allocate a fresh reference register. */
    std::int32_t
    rreg()
    {
        JAVELIN_ASSERT(nextRef_ < 256, "ref register file exhausted");
        return nextRef_++;
    }

    /** Emit one instruction; returns its pc. */
    std::uint32_t
    emit(Op op, std::int32_t a = 0, std::int32_t b = 0,
         std::int32_t c = 0, std::int32_t d = 0)
    {
        method_.code.push_back({op, a, b, c, d});
        return static_cast<std::uint32_t>(method_.code.size() - 1);
    }

    /** Current pc (target for a backward branch landing here next). */
    std::uint32_t
    here() const
    {
        return static_cast<std::uint32_t>(method_.code.size());
    }

    /** Patch a previously emitted branch's target field. */
    void
    patchTarget(std::uint32_t pc, std::uint32_t target)
    {
        Instruction &in = method_.code.at(pc);
        switch (in.op) {
          case Op::Goto:
            in.a = static_cast<std::int32_t>(target);
            break;
          case Op::IfLt:
          case Op::IfGe:
          case Op::IfEq:
          case Op::IfNe:
            in.c = static_cast<std::int32_t>(target);
            break;
          case Op::IfNull:
          case Op::IfNotNull:
            in.b = static_cast<std::int32_t>(target);
            break;
          default:
            JAVELIN_PANIC("patching a non-branch at pc ", pc);
        }
    }

    /**
     * Emit `dst = callee(...)`: the callee's integer arguments are
     * taken from this frame's registers [int_arg_base, ...), reference
     * arguments from [ref_arg_base, ...). Typed wrapper over the raw
     * Call encoding (MethodId lands in the b operand).
     */
    std::uint32_t
    call(std::int32_t dst, MethodId callee, std::int32_t int_arg_base = 0,
         std::int32_t ref_arg_base = 0)
    {
        return emit(Op::Call, dst, static_cast<std::int32_t>(callee),
                    int_arg_base, ref_arg_base);
    }

    /** Convenience: load an immediate into a fresh register. */
    std::int32_t
    constant(std::int64_t value)
    {
        JAVELIN_ASSERT(value >= INT32_MIN && value <= INT32_MAX,
                       "immediate out of range");
        const std::int32_t r = ireg();
        emit(Op::IConst, r, static_cast<std::int32_t>(value));
        return r;
    }

    /** Finish with `ret src`; registers the method with the program. */
    MethodId
    finishRet(std::int32_t src)
    {
        emit(Op::Ret, src);
        return commit();
    }

    /** Finish with `halt` (entry methods). */
    MethodId
    finishHalt()
    {
        emit(Op::Halt);
        return commit();
    }

    MethodInfo &method() { return method_; }

  private:
    MethodId
    commit()
    {
        method_.nIntRegs = nextInt_;
        method_.nRefRegs = std::max<std::uint16_t>(nextRef_, 1);
        const MethodId id = method_.id;
        JAVELIN_ASSERT(id == program_.methods.size(),
                       "methods added out of order during build of ",
                       method_.name);
        program_.methods.push_back(std::move(method_));
        return id;
    }

    Program &program_;
    MethodInfo method_;
    std::uint16_t nextInt_ = 0;
    std::uint16_t nextRef_ = 0;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_METHOD_BUILDER_HH
