#include "jvm/freelist.hh"

#include <algorithm>

namespace javelin {
namespace jvm {

bool
FreeListAllocator::Block::allocated(std::uint32_t cell) const
{
    return (allocBits[cell >> 6] >> (cell & 63)) & 1;
}

void
FreeListAllocator::Block::setAllocated(std::uint32_t cell, bool on)
{
    if (on)
        allocBits[cell >> 6] |= 1ULL << (cell & 63);
    else
        allocBits[cell >> 6] &= ~(1ULL << (cell & 63));
}

FreeListAllocator::FreeListAllocator(Heap &heap, const Space &space)
    : heap_(heap), space_(space)
{
    JAVELIN_ASSERT(space_.size % kBlockBytes == 0,
                   "mark-sweep space must be block aligned, got ",
                   space_.size);
    space_.cursor = space_.start;
    availHead_.fill(-1);
    carveBlock_.fill(-1);
    blocks_.reserve(space_.size / kBlockBytes);
}

std::uint32_t
FreeListAllocator::classFor(std::uint32_t bytes)
{
    JAVELIN_ASSERT(bytes <= kMaxCellBytes,
                   "object too large for mark-sweep space: ", bytes);
    for (std::uint32_t k = 0; k < kNumClasses; ++k)
        if (kSizeClasses[k] >= bytes)
            return k;
    JAVELIN_PANIC("unreachable");
}

void
FreeListAllocator::availPush(std::uint32_t k, std::uint32_t idx)
{
    Block &b = blocks_[idx];
    JAVELIN_ASSERT(!b.inAvail, "block already on the avail list");
    b.availPrev = -1;
    b.availNext = availHead_[k];
    if (availHead_[k] >= 0)
        blocks_[static_cast<std::size_t>(availHead_[k])].availPrev =
            static_cast<std::int32_t>(idx);
    availHead_[k] = static_cast<std::int32_t>(idx);
    b.inAvail = true;
}

void
FreeListAllocator::availRemove(std::uint32_t k, std::uint32_t idx)
{
    Block &b = blocks_[idx];
    JAVELIN_ASSERT(b.inAvail, "block not on the avail list");
    if (b.availPrev >= 0)
        blocks_[static_cast<std::size_t>(b.availPrev)].availNext =
            b.availNext;
    else
        availHead_[k] = b.availNext;
    if (b.availNext >= 0)
        blocks_[static_cast<std::size_t>(b.availNext)].availPrev =
            b.availPrev;
    b.availNext = -1;
    b.availPrev = -1;
    b.inAvail = false;
}

FreeListAllocator::Block *
FreeListAllocator::newBlock(std::uint32_t size_class)
{
    // Prefer a retired (fully-free) block over virgin space: this is
    // the cross-class reuse the old always-bump policy lacked.
    Block *b = nullptr;
    if (!virginBlocks_.empty()) {
        const std::uint32_t idx = virginBlocks_.back();
        virginBlocks_.pop_back();
        b = &blocks_[idx];
        JAVELIN_ASSERT(b->virgin && b->liveCells == 0,
                       "non-virgin block in the virgin pool");
        b->virgin = false;
    } else {
        const Address start = space_.bump(kBlockBytes);
        if (start == kNull)
            return nullptr;
        blocks_.emplace_back();
        b = &blocks_.back();
        b->start = start;
    }
    b->sizeClass = size_class;
    b->cellBytes = kSizeClasses[size_class];
    b->cellCount = kBlockBytes / b->cellBytes;
    b->bumpCells = 0;
    b->freeHead = kNull;
    b->freeCells = 0;
    b->allocBits.assign((b->cellCount + 63) / 64, 0);
    return b;
}

FreeListAllocator::Block *
FreeListAllocator::blockOf(Address addr)
{
    JAVELIN_ASSERT(space_.contains(addr), "address outside MS space");
    const auto idx = (addr - space_.start) / kBlockBytes;
    JAVELIN_ASSERT(idx < blocks_.size(), "address in uncarved block");
    return &blocks_[idx];
}

const FreeListAllocator::Block *
FreeListAllocator::blockOf(Address addr) const
{
    return const_cast<FreeListAllocator *>(this)->blockOf(addr);
}

Address
FreeListAllocator::alloc(std::uint32_t bytes, std::uint32_t *traffic_loads)
{
    const std::uint32_t k = classFor(bytes);
    *traffic_loads = 0;

    // Fast path: pop the head block's free list (one heap load for the
    // link, exactly as the old single per-class list charged).
    if (availHead_[k] >= 0) {
        const auto idx = static_cast<std::uint32_t>(availHead_[k]);
        Block &b = blocks_[idx];
        const Address addr = b.freeHead;
        b.freeHead = heap_.read64(addr);
        *traffic_loads = 1;
        const std::uint32_t cell =
            static_cast<std::uint32_t>((addr - b.start) / b.cellBytes);
        JAVELIN_ASSERT(!b.allocated(cell), "double allocation");
        b.setAllocated(cell, true);
        ++b.liveCells;
        --b.freeCells;
        if (b.freeCells == 0)
            availRemove(k, idx);
        usedBytes_ += b.cellBytes;
        freeListedBytes_ -= b.cellBytes;
        return addr;
    }

    // Carve from the block currently being bump-filled for this class.
    if (carveBlock_[k] >= 0) {
        Block &b = blocks_[static_cast<std::size_t>(carveBlock_[k])];
        if (b.bumpCells < b.cellCount) {
            const Address addr = b.start + static_cast<Address>(
                b.bumpCells) * b.cellBytes;
            b.setAllocated(b.bumpCells, true);
            ++b.bumpCells;
            ++b.liveCells;
            usedBytes_ += b.cellBytes;
            return addr;
        }
        carveBlock_[k] = -1;
    }

    // Grab a block: a retired one if available, else bump the space.
    Block *b = newBlock(k);
    if (!b)
        return kNull;
    carveBlock_[k] = static_cast<std::int32_t>(b - blocks_.data());
    const Address addr = b->start;
    b->setAllocated(0, true);
    b->bumpCells = 1;
    b->liveCells = 1;
    usedBytes_ += b->cellBytes;
    return addr;
}

void
FreeListAllocator::freeCell(Address addr)
{
    Block *b = blockOf(addr);
    const std::uint32_t cell =
        static_cast<std::uint32_t>((addr - b->start) / b->cellBytes);
    JAVELIN_ASSERT(b->allocated(cell), "freeing a free cell");
    b->setAllocated(cell, false);
    heap_.write64(addr, b->freeHead);
    b->freeHead = addr;
    ++b->freeCells;
    --b->liveCells;
    if (!b->inAvail)
        availPush(b->sizeClass,
                  static_cast<std::uint32_t>(b - blocks_.data()));
    usedBytes_ -= b->cellBytes;
    freeListedBytes_ += b->cellBytes;
}

bool
FreeListAllocator::isAllocatedCell(Address addr) const
{
    if (!space_.contains(addr))
        return false;
    const auto idx = (addr - space_.start) / kBlockBytes;
    if (idx >= blocks_.size())
        return false;
    const Block &b = blocks_[idx];
    if ((addr - b.start) % b.cellBytes != 0)
        return false;
    const std::uint32_t cell =
        static_cast<std::uint32_t>((addr - b.start) / b.cellBytes);
    return b.allocated(cell);
}

bool
FreeListAllocator::isWithinAllocatedCell(Address addr) const
{
    if (!space_.contains(addr))
        return false;
    const auto idx = (addr - space_.start) / kBlockBytes;
    if (idx >= blocks_.size())
        return false;
    const Block &b = blocks_[idx];
    const std::uint32_t cell =
        static_cast<std::uint32_t>((addr - b.start) / b.cellBytes);
    return b.allocated(cell);
}

void
FreeListAllocator::beginSweep()
{
    // Nothing to rebuild: per-block free lists persist across sweeps,
    // so cells freed in an earlier cycle and not yet reused stay
    // directly allocatable instead of leaking (the pre-virgin-pool
    // design cleared every list here and re-linked only the cells the
    // *current* sweep freed).
}

void
FreeListAllocator::endSweep()
{
    for (std::uint32_t idx = 0; idx < blocks_.size(); ++idx) {
        Block &b = blocks_[idx];
        if (b.virgin || b.liveCells != 0 || b.bumpCells == 0)
            continue;
        // Every carved cell is free: unhook the block and retire it.
        // The link stores the sweep issued for these cells were real
        // traffic; only host metadata is rewound here.
        if (b.inAvail)
            availRemove(b.sizeClass, idx);
        if (carveBlock_[b.sizeClass] ==
            static_cast<std::int32_t>(idx))
            carveBlock_[b.sizeClass] = -1;
        freeListedBytes_ -=
            static_cast<std::uint64_t>(b.freeCells) * b.cellBytes;
        b.freeCells = 0;
        b.freeHead = kNull;
        b.bumpCells = 0;
        b.virgin = true;
        virginBlocks_.push_back(idx);
    }
}

std::uint64_t
FreeListAllocator::freeBytes() const
{
    const std::uint64_t uncarved =
        space_.end() - (space_.start +
                        static_cast<Address>(blocks_.size()) * kBlockBytes);
    return uncarved + freeListedBytes_ +
           static_cast<std::uint64_t>(virginBlocks_.size()) * kBlockBytes;
}

std::uint32_t
FreeListAllocator::cellBytesAt(Address addr) const
{
    return blockOf(addr)->cellBytes;
}

} // namespace jvm
} // namespace javelin
