#include "jvm/freelist.hh"

#include <algorithm>

namespace javelin {
namespace jvm {

bool
FreeListAllocator::Block::allocated(std::uint32_t cell) const
{
    return (allocBits[cell >> 6] >> (cell & 63)) & 1;
}

void
FreeListAllocator::Block::setAllocated(std::uint32_t cell, bool on)
{
    if (on)
        allocBits[cell >> 6] |= 1ULL << (cell & 63);
    else
        allocBits[cell >> 6] &= ~(1ULL << (cell & 63));
}

FreeListAllocator::FreeListAllocator(Heap &heap, const Space &space)
    : heap_(heap), space_(space)
{
    JAVELIN_ASSERT(space_.size % kBlockBytes == 0,
                   "mark-sweep space must be block aligned, got ",
                   space_.size);
    space_.cursor = space_.start;
    freeHeads_.fill(kNull);
    carveBlock_.fill(-1);
    blocks_.reserve(space_.size / kBlockBytes);
}

std::uint32_t
FreeListAllocator::classFor(std::uint32_t bytes)
{
    JAVELIN_ASSERT(bytes <= kMaxCellBytes,
                   "object too large for mark-sweep space: ", bytes);
    for (std::uint32_t k = 0; k < kNumClasses; ++k)
        if (kSizeClasses[k] >= bytes)
            return k;
    JAVELIN_PANIC("unreachable");
}

FreeListAllocator::Block *
FreeListAllocator::newBlock(std::uint32_t size_class)
{
    const Address start = space_.bump(kBlockBytes);
    if (start == kNull)
        return nullptr;
    Block b;
    b.start = start;
    b.sizeClass = size_class;
    b.cellBytes = kSizeClasses[size_class];
    b.cellCount = kBlockBytes / b.cellBytes;
    b.allocBits.assign((b.cellCount + 63) / 64, 0);
    blocks_.push_back(std::move(b));
    return &blocks_.back();
}

FreeListAllocator::Block *
FreeListAllocator::blockOf(Address addr)
{
    JAVELIN_ASSERT(space_.contains(addr), "address outside MS space");
    const auto idx = (addr - space_.start) / kBlockBytes;
    JAVELIN_ASSERT(idx < blocks_.size(), "address in uncarved block");
    return &blocks_[idx];
}

const FreeListAllocator::Block *
FreeListAllocator::blockOf(Address addr) const
{
    return const_cast<FreeListAllocator *>(this)->blockOf(addr);
}

Address
FreeListAllocator::alloc(std::uint32_t bytes, std::uint32_t *traffic_loads)
{
    const std::uint32_t k = classFor(bytes);
    *traffic_loads = 0;

    // Fast path: pop the free list (one heap load for the link).
    if (freeHeads_[k] != kNull) {
        const Address addr = freeHeads_[k];
        freeHeads_[k] = heap_.read64(addr);
        *traffic_loads = 1;
        Block *b = blockOf(addr);
        const std::uint32_t cell =
            static_cast<std::uint32_t>((addr - b->start) / b->cellBytes);
        JAVELIN_ASSERT(!b->allocated(cell), "double allocation");
        b->setAllocated(cell, true);
        usedBytes_ += b->cellBytes;
        freeListedBytes_ -= b->cellBytes;
        return addr;
    }

    // Carve from the current virgin block for this class.
    if (carveBlock_[k] >= 0) {
        Block &b = blocks_[static_cast<std::size_t>(carveBlock_[k])];
        if (b.bumpCells < b.cellCount) {
            const Address addr = b.start + static_cast<Address>(
                b.bumpCells) * b.cellBytes;
            b.setAllocated(b.bumpCells, true);
            ++b.bumpCells;
            usedBytes_ += b.cellBytes;
            return addr;
        }
        carveBlock_[k] = -1;
    }

    // Grab a new block.
    Block *b = newBlock(k);
    if (!b)
        return kNull;
    carveBlock_[k] = static_cast<std::int32_t>(blocks_.size() - 1);
    const Address addr = b->start;
    b->setAllocated(0, true);
    b->bumpCells = 1;
    usedBytes_ += b->cellBytes;
    return addr;
}

void
FreeListAllocator::freeCell(Address addr)
{
    Block *b = blockOf(addr);
    const std::uint32_t cell =
        static_cast<std::uint32_t>((addr - b->start) / b->cellBytes);
    JAVELIN_ASSERT(b->allocated(cell), "freeing a free cell");
    b->setAllocated(cell, false);
    heap_.write64(addr, freeHeads_[b->sizeClass]);
    freeHeads_[b->sizeClass] = addr;
    usedBytes_ -= b->cellBytes;
    freeListedBytes_ += b->cellBytes;
}

bool
FreeListAllocator::isAllocatedCell(Address addr) const
{
    if (!space_.contains(addr))
        return false;
    const auto idx = (addr - space_.start) / kBlockBytes;
    if (idx >= blocks_.size())
        return false;
    const Block &b = blocks_[idx];
    if ((addr - b.start) % b.cellBytes != 0)
        return false;
    const std::uint32_t cell =
        static_cast<std::uint32_t>((addr - b.start) / b.cellBytes);
    return b.allocated(cell);
}

bool
FreeListAllocator::isWithinAllocatedCell(Address addr) const
{
    if (!space_.contains(addr))
        return false;
    const auto idx = (addr - space_.start) / kBlockBytes;
    if (idx >= blocks_.size())
        return false;
    const Block &b = blocks_[idx];
    const std::uint32_t cell =
        static_cast<std::uint32_t>((addr - b.start) / b.cellBytes);
    return b.allocated(cell);
}

void
FreeListAllocator::beginSweep()
{
    freeHeads_.fill(kNull);
    freeListedBytes_ = 0;
}

std::uint64_t
FreeListAllocator::freeBytes() const
{
    const std::uint64_t uncarved =
        space_.end() - (space_.start +
                        static_cast<Address>(blocks_.size()) * kBlockBytes);
    return uncarved + freeListedBytes_;
}

std::uint32_t
FreeListAllocator::cellBytesAt(Address addr) const
{
    return blockOf(addr)->cellBytes;
}

} // namespace jvm
} // namespace javelin
