#include "jvm/bytecode.hh"

#include <sstream>

#include "util/logging.hh"

namespace javelin {
namespace jvm {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::IConst: return "iconst";
      case Op::Move: return "move";
      case Op::IAdd: return "iadd";
      case Op::ISub: return "isub";
      case Op::IMul: return "imul";
      case Op::IDiv: return "idiv";
      case Op::IRem: return "irem";
      case Op::IXor: return "ixor";
      case Op::FAdd: return "fadd";
      case Op::FMul: return "fmul";
      case Op::Rand: return "rand";
      case Op::Goto: return "goto";
      case Op::IfLt: return "iflt";
      case Op::IfGe: return "ifge";
      case Op::IfEq: return "ifeq";
      case Op::IfNe: return "ifne";
      case Op::IfNull: return "ifnull";
      case Op::IfNotNull: return "ifnotnull";
      case Op::Call: return "call";
      case Op::Ret: return "ret";
      case Op::New: return "new";
      case Op::NewArray: return "newarray";
      case Op::GetField: return "getfield";
      case Op::PutField: return "putfield";
      case Op::GetRef: return "getref";
      case Op::PutRef: return "putref";
      case Op::GetElem: return "getelem";
      case Op::PutElem: return "putelem";
      case Op::GetRefElem: return "getrefelem";
      case Op::PutRefElem: return "putrefelem";
      case Op::ArrayLen: return "arraylen";
      case Op::GetStatic: return "getstatic";
      case Op::PutStatic: return "putstatic";
      case Op::NativeWork: return "nativework";
      case Op::Halt: return "halt";
      case Op::NumOps: break;
    }
    JAVELIN_PANIC("bad opcode ", static_cast<int>(op));
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opName(inst.op) << " " << inst.a << ", " << inst.b << ", "
       << inst.c << ", " << inst.d;
    return os.str();
}

bool
opTouchesHeap(Op op)
{
    switch (op) {
      case Op::New:
      case Op::NewArray:
      case Op::GetField:
      case Op::PutField:
      case Op::GetRef:
      case Op::PutRef:
      case Op::GetElem:
      case Op::PutElem:
      case Op::GetRefElem:
      case Op::PutRefElem:
      case Op::ArrayLen:
        return true;
      default:
        return false;
    }
}

} // namespace jvm
} // namespace javelin
