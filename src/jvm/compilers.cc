#include "jvm/compilers.hh"

#include <algorithm>

#include "util/logging.hh"

namespace javelin {
namespace jvm {

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Interpreted:
        return "interpreted";
      case Tier::Baseline:
        return "baseline";
      case Tier::Optimized:
        return "optimized";
      case Tier::Jitted:
        return "jitted";
    }
    JAVELIN_PANIC("bad tier");
}

CompilerModel::CompilerModel(sim::System &system, core::ComponentPort &port)
    : CompilerModel(system, port, Costs())
{
}

CompilerModel::CompilerModel(sim::System &system, core::ComponentPort &port,
                             const Costs &costs)
    : system_(system), port_(port), costs_(costs)
{
}

Address
CompilerModel::allocCode(std::uint32_t bytes)
{
    const Address addr = codeCursor_;
    codeCursor_ += alignUp(bytes);
    JAVELIN_ASSERT(codeCursor_ < kMetadataBase, "code region overflow");
    return addr;
}

void
CompilerModel::baselineCompile(const MethodInfo &method, MethodRuntime &rt)
{
    core::ComponentScope scope(port_, core::ComponentId::BaseCompiler);
    sim::CpuModel &cpu = system_.cpu();

    const auto n = static_cast<std::uint32_t>(method.code.size());
    rt.codeBytes = n * costs_.baselineBytesPerBc;
    rt.codeAddr = allocCode(rt.codeBytes);

    for (std::uint32_t i = 0; i < n; ++i) {
        // Read the bytecode, run the template emitter, write the code.
        cpu.load(method.bytecodeAddr + i * sizeof(Instruction));
        cpu.execute(costs_.baselineUopsPerBc, kBaseCompilerCode,
                    costs_.baselineUopsPerBc * 4);
        cpu.store(rt.codeAddr + i * costs_.baselineBytesPerBc);
        if ((i & 63) == 0)
            system_.poll();
    }

    rt.tier = Tier::Baseline;
    ++methodsCompiled_;
}

void
CompilerModel::jitCompile(const MethodInfo &method, MethodRuntime &rt)
{
    core::ComponentScope scope(port_, core::ComponentId::Jit);
    sim::CpuModel &cpu = system_.cpu();

    const auto n = static_cast<std::uint32_t>(method.code.size());
    rt.codeBytes = n * costs_.jitBytesPerBc;
    rt.codeAddr = allocCode(rt.codeBytes);

    for (std::uint32_t i = 0; i < n; ++i) {
        cpu.load(method.bytecodeAddr + i * sizeof(Instruction));
        cpu.execute(costs_.jitUopsPerBc, kJitCompilerCode,
                    costs_.jitUopsPerBc * 4);
        cpu.store(rt.codeAddr + i * costs_.jitBytesPerBc);
        if ((i & 63) == 0)
            system_.poll();
    }

    rt.tier = Tier::Jitted;
    ++methodsCompiled_;
}

void
CompilerModel::optCompileStart(const MethodInfo &method, MethodRuntime &rt)
{
    JAVELIN_ASSERT(rt.optWorkRemaining == 0, "opt compile already running");
    rt.optWorkRemaining = static_cast<std::uint32_t>(method.code.size()) *
                          costs_.optPasses;
}

bool
CompilerModel::optCompileStep(const MethodInfo &method, MethodRuntime &rt,
                              std::uint32_t units)
{
    JAVELIN_ASSERT(rt.optWorkRemaining > 0, "no opt work pending");
    sim::CpuModel &cpu = system_.cpu();
    const auto n = static_cast<std::uint32_t>(method.code.size()) *
                   costs_.optPasses;

    const std::uint32_t todo = std::min(units, rt.optWorkRemaining);
    for (std::uint32_t u = 0; u < todo; ++u) {
        const std::uint32_t i = n - rt.optWorkRemaining + u;
        // IR transformation over a compiler workspace: one bytecode
        // read, IR node reads/writes, heavy analysis micro-ops.
        cpu.load(method.bytecodeAddr +
                 (i % method.code.size()) * sizeof(Instruction));
        cpu.load(kNativeBase + (i * 96) % (512 * 1024));
        cpu.store(kNativeBase + (i * 96 + 48) % (512 * 1024));
        cpu.execute(costs_.optUopsPerBcPass, kOptCompilerCode,
                    costs_.optUopsPerBcPass * 4);
        if ((u & 31) == 0)
            system_.poll();
    }
    rt.optWorkRemaining -= todo;
    if (rt.optWorkRemaining > 0)
        return false;

    // Emit the optimized body.
    const auto bcs = static_cast<std::uint32_t>(method.code.size());
    rt.codeBytes = bcs * costs_.optBytesPerBc;
    rt.codeAddr = allocCode(rt.codeBytes);
    for (std::uint32_t i = 0; i < bcs; ++i)
        cpu.store(rt.codeAddr + i * costs_.optBytesPerBc);
    rt.tier = Tier::Optimized;
    ++methodsOptimized_;
    return true;
}

} // namespace jvm
} // namespace javelin
