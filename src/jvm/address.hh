/**
 * @file
 * Simulated virtual address map of the JVM process.
 *
 * Every memory reference the JVM makes — bytecode dispatch, compiled
 * code fetch, object field access, class metadata walks, static roots,
 * GC header touches — carries a simulated address drawn from these
 * regions, so the cache hierarchy sees a realistic footprint for each
 * JVM component.
 */

#ifndef JAVELIN_JVM_ADDRESS_HH
#define JAVELIN_JVM_ADDRESS_HH

#include <cstdint>

#include "sim/cache.hh"

namespace javelin {
namespace jvm {

using Address = sim::Address;

/** The null reference. */
constexpr Address kNull = 0;

/** Interpreter dispatch loop code (per-opcode handler blocks). */
constexpr Address kInterpreterCodeBase = 0x0100'0000;

/** VM runtime code: GC, class loader, compilers (native code). */
constexpr Address kVmCodeBase = 0x0180'0000;

/** Compiled Java method code region (bump-allocated). */
constexpr Address kCodeBase = 0x0200'0000;

/** Class metadata and constant pools. */
constexpr Address kMetadataBase = 0x0800'0000;

/** Static reference slots (GC roots). */
constexpr Address kStaticsBase = 0x0C00'0000;

/** "Native" scratch buffers used by NativeWork bytecodes. */
constexpr Address kNativeBase = 0x1000'0000;

/** Java heap. */
constexpr Address kHeapBase = 0x4000'0000;

/** Thread stacks (operand registers spill here for GC scan costing). */
constexpr Address kStackBase = 0x7000'0000;

/** Offsets into kVmCodeBase for the major VM runtime routines, so each
 *  has its own I-cache footprint. */
constexpr Address kGcCopyCode = kVmCodeBase + 0x0000;
constexpr Address kGcMarkCode = kVmCodeBase + 0x2000;
constexpr Address kGcSweepCode = kVmCodeBase + 0x4000;
constexpr Address kGcScanCode = kVmCodeBase + 0x6000;
constexpr Address kAllocCode = kVmCodeBase + 0x8000;
constexpr Address kClassLoaderCode = kVmCodeBase + 0xa000;
constexpr Address kBaseCompilerCode = kVmCodeBase + 0xc000;
constexpr Address kOptCompilerCode = kVmCodeBase + 0x10000;
constexpr Address kJitCompilerCode = kVmCodeBase + 0x14000;
constexpr Address kSchedulerCode = kVmCodeBase + 0x18000;
constexpr Address kBarrierCode = kVmCodeBase + 0x1a000;

/** Round a size up to the 8-byte object alignment. */
constexpr std::uint32_t
alignUp(std::uint32_t bytes)
{
    return (bytes + 7u) & ~7u;
}

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_ADDRESS_HH
