/**
 * @file
 * Static program representation: classes, methods, and the program
 * object as loaded from a workload builder. A Program is immutable at
 * run time; per-run method state (compilation tier, counters) lives in
 * the Jvm so one Program can be executed under many configurations.
 */

#ifndef JAVELIN_JVM_PROGRAM_HH
#define JAVELIN_JVM_PROGRAM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "jvm/address.hh"
#include "jvm/bytecode.hh"

namespace javelin {
namespace jvm {

using ClassId = std::uint32_t;
using MethodId = std::uint32_t;

constexpr ClassId kNoClass = 0xffffffff;

/** Size of an object header in bytes: classId, size, gcBits, aux. */
constexpr std::uint32_t kHeaderBytes = 16;

/** Size of every field/element slot in bytes. */
constexpr std::uint32_t kSlotBytes = 8;

/**
 * One loaded (or loadable) class.
 */
struct ClassInfo
{
    ClassId id = 0;
    std::string name;
    /** Number of reference fields (laid out first after the header). */
    std::uint32_t refFields = 0;
    /** Number of scalar (64-bit) fields, after the reference fields. */
    std::uint32_t scalarFields = 0;
    bool isRefArray = false;
    bool isScalarArray = false;
    ClassId super = kNoClass;
    /** Metadata bytes the class loader walks when loading this class. */
    std::uint32_t metadataBytes = 1024;
    /** Constant-pool entries resolved at load time. */
    std::uint32_t constantPoolEntries = 24;
    /** Classes eagerly resolved (and possibly loaded) with this one. */
    std::vector<ClassId> referencedClasses;
    /** Assigned by Program::layout(). */
    Address metadataAddr = 0;

    bool isArray() const { return isRefArray || isScalarArray; }

    /** Heap bytes of one (non-array) instance, header included. */
    std::uint32_t
    instanceBytes() const
    {
        return kHeaderBytes + (refFields + scalarFields) * kSlotBytes;
    }

    /** Heap bytes of an array instance of the given length. */
    static std::uint32_t
    arrayBytes(std::uint32_t length)
    {
        return kHeaderBytes + length * kSlotBytes;
    }
};

/**
 * One method: code plus register-file shape.
 *
 * Arguments arrive in the low registers of each file: integer arguments
 * in i[0..nIntArgs), reference arguments in r[0..nRefArgs).
 */
struct MethodInfo
{
    MethodId id = 0;
    std::string name;
    ClassId holder = kNoClass;
    Code code;
    std::uint16_t nIntRegs = 8;
    std::uint16_t nRefRegs = 4;
    std::uint16_t nIntArgs = 0;
    std::uint16_t nRefArgs = 0;
    /** Location of the bytecode in the metadata region (set by layout). */
    Address bytecodeAddr = 0;

    /**
     * Method-granular superinstruction tables, built once by
     * Program::layout() and shared by every engine executing this
     * program (DESIGN.md §5g). All are program-static: the foldable-run
     * structure depends only on the code, and the per-tier micro-op
     * transform maps zero to zero, so prefix sums per tier are fixed at
     * load time no matter when methods are retiered.
     */
    /** Per-pc length of the maximal foldable run starting there
     *  (0 = the op is not foldable), saturated at 0xFFFF. */
    std::vector<std::uint16_t> runLen;
    /** Prefix sums (size code.size() + 1) of each op's FP result stall
     *  in half-cycles: a segment [a, b) stalls
     *  0.5 * (fpStallHalfPrefix[b] - fpStallHalfPrefix[a]) cycles,
     *  exact in binary since every stall is a multiple of 0.5. */
    std::vector<std::uint32_t> fpStallHalfPrefix;
    /** Prefix sums (size code.size() + 1) of tier-transformed semantic
     *  micro-ops, indexed by static_cast<unsigned>(Tier). */
    std::array<std::vector<std::uint32_t>, 4> semUopPrefix;
};

/**
 * A complete program.
 */
struct Program
{
    std::string name = "program";
    std::vector<ClassInfo> classes;
    std::vector<MethodInfo> methods;
    MethodId entry = 0;
    /** Number of static reference slots (GC roots). */
    std::uint32_t numStatics = 0;
    /**
     * The first bootClassCount classes are system/boot classes: merged
     * into the VM image under Jikes, loaded lazily at startup by Kaffe.
     */
    std::uint32_t bootClassCount = 0;
    /** Seed for the Rand opcode's deterministic stream. */
    std::uint64_t randSeed = 42;

    const ClassInfo &
    classOf(ClassId id) const
    {
        return classes.at(id);
    }
    const MethodInfo &
    methodOf(MethodId id) const
    {
        return methods.at(id);
    }

    /** Assign metadata/bytecode addresses. Must be called once. */
    void layout();

    /**
     * Static verification: branch targets, register indices, call arity,
     * class references. Returns a list of error strings (empty = valid).
     */
    std::vector<std::string> verify() const;

    /** Total bytecode instruction count across all methods. */
    std::size_t totalCodeSize() const;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_PROGRAM_HH
