/**
 * @file
 * Shared sweep over one segregated free-list space, used by MarkSweep,
 * GenMS's mature space and the incremental collector. Live cells get
 * their mark bit cleared; dead cells go back on their free lists. Both
 * drive modes emit the v2 per-block stream — one gcBits load and one
 * store per allocated cell (header rewrite for survivors, free-list
 * link write for corpses) followed by one folded kSpecSweepCell charge
 * for the block's allocated cells; see DESIGN.md §5e.
 */

#ifndef JAVELIN_JVM_GC_SWEEPER_HH
#define JAVELIN_JVM_GC_SWEEPER_HH

#include "jvm/freelist.hh"
#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * Sweep all blocks of `alloc`, rebuilding its free lists. Charged;
 * polls the samplers once per 16 KiB block, exactly as the historical
 * per-collector loops did.
 */
void sweepFreeListSpace(const GcEnv &env, const GcCostTable &costs,
                        FreeListAllocator &alloc, Collector::Stats &stats);

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_SWEEPER_HH
