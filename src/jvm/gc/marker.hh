/**
 * @file
 * Shared mark-phase machinery for the tracing (non-copying) collectors:
 * MarkSweep, the mature space of GenMS, and the final/stop-the-world
 * phases of Kaffe's incremental collector.
 */

#ifndef JAVELIN_JVM_GC_MARKER_HH
#define JAVELIN_JVM_GC_MARKER_HH

#include <functional>
#include <vector>

#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * Depth-first marker with an explicit mark stack.
 *
 * Two semantically identical drive modes (GcEnv::fastPath), both
 * emitting the v2 per-object charge stream (one folded kSpecMarkEdge
 * charge and one slot-load block per popped object — DESIGN.md §5e):
 * the fast path walks the graph through the ObjectView memo and raw
 * heap reads with polls hoisted behind a deficit counter; the
 * reference path is a naive scalar loop over the timed ObjectModel
 * accessors, kept as the differential-test oracle
 * (tests/test_gc_diff.cc).
 */
class Marker
{
  public:
    /** Restricts marking to a region (others are treated as pinned). */
    using InRegionFn = std::function<bool(Address)>;

    Marker(const GcEnv &env, const GcCostTable &costs,
           Collector::Stats &stats);

    /** Mark one reference (and queue its children). */
    void processRef(Address ref);

    /** Mark everything reachable from the VM roots. */
    void markFromRoots();

    /** Drain the mark stack. */
    void drain();

    std::uint64_t marked() const { return marked_; }

  private:
    void drainFast();
    void drainReference();

    const GcEnv &env_;
    const GcCostTable &costs_;
    Collector::Stats &stats_;
    std::vector<Address> stack_;
    std::vector<Address> children_;
    std::uint64_t marked_ = 0;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_MARKER_HH
