/**
 * @file
 * Shared mark-phase machinery for the tracing (non-copying) collectors:
 * MarkSweep, the mature space of GenMS, and the final/stop-the-world
 * phases of Kaffe's incremental collector.
 */

#ifndef JAVELIN_JVM_GC_MARKER_HH
#define JAVELIN_JVM_GC_MARKER_HH

#include <functional>
#include <vector>

#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * Depth-first marker with an explicit mark stack.
 */
class Marker
{
  public:
    /** Restricts marking to a region (others are treated as pinned). */
    using InRegionFn = std::function<bool(Address)>;

    Marker(const GcEnv &env, Collector::Stats &stats);

    /** Mark everything reachable from the VM roots. */
    void markFromRoots();

    /** Mark one reference (and queue its children). */
    void processRef(Address ref);

    /** Drain the mark stack. */
    void drain();

    std::uint64_t marked() const { return marked_; }

  private:
    const GcEnv &env_;
    Collector::Stats &stats_;
    std::vector<Address> stack_;
    std::uint64_t marked_ = 0;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_MARKER_HH
