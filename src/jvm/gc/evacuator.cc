#include "jvm/gc/evacuator.hh"

#include "jvm/address.hh"

namespace javelin {
namespace jvm {

Evacuator::Evacuator(const GcEnv &env, Collector::Stats &stats,
                     ShouldMoveFn should_move, AllocFn alloc_to)
    : env_(env), stats_(stats), shouldMove_(std::move(should_move)),
      allocTo_(std::move(alloc_to))
{
    gray_.reserve(1024);
}

bool
Evacuator::processSlot(Address &ref)
{
    ObjectModel &om = env_.om;

    // Forwarding pointers can chain across regions when a minor
    // collection was abandoned for a major one, so snap in a loop and
    // re-test the region predicate each time.
    std::uint32_t bits;
    for (;;) {
        if (ref == kNull || !shouldMove_(ref))
            return true;
        bits = om.loadGcBits(ref);
        if (!(bits & kForwardedBit))
            break;
        ref = om.loadForwarding(ref);
    }

    const std::uint32_t size = om.sizeRaw(ref);
    const Address to = allocTo_(size);
    if (to == kNull) {
        failed_ = true;
        return false;
    }

    om.copyObject(to, ref, size);
    // Clear any from-space GC bits in the new copy.
    om.setGcBitsRaw(to, 0);
    om.setForwarding(ref, to);
    ref = to;

    ++copiedObjects_;
    stats_.bytesCopied += size;
    ++stats_.objectsCopied;
    gray_.push_back(to);

    // Copy-path bookkeeping: plan dispatch, TIB interrogation, size
    // decode, cursor update, forwarding-word CAS.
    chargeGcWork(env_.system,
                 gc_costs::kCopyPerObject +
                     (size / 16) * gc_costs::kCopyPer16Bytes,
                 kGcCopyCode);
    return true;
}

bool
Evacuator::scanObject(Address obj)
{
    ObjectModel &om = env_.om;
    const std::uint32_t refs = om.refCountRaw(obj);
    chargeGcWork(env_.system, gc_costs::kScanPerObject, kGcScanCode);
    for (std::uint32_t i = 0; i < refs; ++i) {
        chargeGcWork(env_.system, gc_costs::kScanPerSlot, kGcScanCode);
        Address child = om.loadRef(obj, i);
        if (child == kNull)
            continue;
        const Address before = child;
        if (!processSlot(child))
            return false;
        if (child != before)
            om.storeRef(obj, i, child);
    }
    return true;
}

bool
Evacuator::drain()
{
    // Breadth-first (Cheney) order: objects are scanned long after they
    // were copied, so the scan re-misses on the copied data instead of
    // riding the copy's cache footprint — the memory behaviour the
    // paper measures for the copying collectors.
    while (grayHead_ < gray_.size()) {
        // Only consume the entry once its scan completed: a failed
        // (out-of-space) scan leaves the object queued so a resumed
        // pass rescans it; processSlot is idempotent via forwarding.
        if (!scanObject(gray_[grayHead_]))
            return false;
        ++grayHead_;
        env_.system.poll();
    }
    gray_.clear();
    grayHead_ = 0;
    return !failed_;
}

} // namespace jvm
} // namespace javelin
