#include "jvm/gc/evacuator.hh"

#include "jvm/address.hh"

namespace javelin {
namespace jvm {

Evacuator::Evacuator(const GcEnv &env, const GcCostTable &costs,
                     Collector::Stats &stats, MoveRegion region,
                     AllocFn alloc_to)
    : env_(env), costs_(costs), stats_(stats), region_(region),
      allocTo_(std::move(alloc_to))
{
    gray_.reserve(1024);
    children_.reserve(64);
}

bool
Evacuator::processSlot(Address &ref)
{
    ObjectModel &om = env_.om;
    sim::CpuModel &cpu = env_.system.cpu();

    // Forwarding pointers can chain across regions when a minor
    // collection was abandoned for a major one, so snap in a loop and
    // re-test the region predicate each time.
    std::uint32_t bits;
    for (;;) {
        if (ref == kNull || !region_.contains(ref))
            return true;
        bits = om.loadGcBits(ref);
        ++unitAcc_;
        if (!(bits & kForwardedBit))
            break;
        ref = om.loadForwarding(ref);
        ++unitAcc_;
    }

    const std::uint32_t size = om.sizeRaw(ref);
    // Decode the slot count now, while the header just read for the
    // size is host-cache hot; the scan consumes it from the work-list
    // instead of re-decoding long after the copy evicted it.
    const std::uint32_t refs = om.refCountRaw(ref);
    std::uint32_t traffic = 0;
    const Address to = allocTo_(size, &traffic);
    if (to == kNull) {
        failed_ = true;
        return false;
    }
    // Free-list link chasing re-touches the popped cell (historically
    // charged by the GenMS matureAlloc callback at this exact point).
    cpu.loadBlock(to, traffic, 0);
    unitAcc_ += traffic;

    om.copyObject(to, ref, size);
    // Clear any from-space GC bits in the new copy.
    om.setGcBitsRaw(to, 0);
    om.setForwarding(ref, to);
    // copyBlock pairs per started 16-byte granule + forwarding store.
    unitAcc_ += 2 * ((size + 15) / 16) + 1;
    ref = to;

    ++copiedObjects_;
    stats_.bytesCopied += size;
    ++stats_.objectsCopied;
    gray_.push_back({to, refs});

    // Copy-path bookkeeping: plan dispatch, TIB interrogation, size
    // decode, cursor update, forwarding-word CAS.
    costs_.chargeCopy(cpu, size);
    unitAcc_ += GcCostTable::chargeUnits(
        gc_costs::kCopyPerObject +
        (size / 16) * gc_costs::kCopyPer16Bytes);
    return true;
}

/** Naive scalar scan over the timed accessors — the oracle. Emits the
 *  v2 stream: per-object folded charges, slot loads in slot order,
 *  then each slot's evacuation events and writeback. */
bool
Evacuator::scanObjectReference(Address obj, std::uint32_t refs)
{
    ObjectModel &om = env_.om;
    sim::CpuModel &cpu = env_.system.cpu();
    JAVELIN_ASSERT(om.refCountRaw(obj) == refs,
                   "stale slot count on the gray list for ", obj);
    costs_.charge(cpu, kSpecScanObject, 1);
    if (refs == 0)
        return true;
    costs_.charge(cpu, kSpecScanSlot, refs);
    children_.clear();
    for (std::uint32_t i = 0; i < refs; ++i)
        children_.push_back(om.loadRef(obj, i));
    for (std::uint32_t i = 0; i < refs; ++i) {
        Address child = children_[i];
        if (child == kNull)
            continue;
        const Address before = child;
        // On failure the slot is not written back (a resumed pass
        // rescans it; forwarding makes processSlot idempotent).
        if (!processSlot(child))
            return false;
        if (child != before)
            om.storeRef(obj, i, child);
    }
    return true;
}

/** Identical v2 stream driven off the ObjectView memo, accruing
 *  deficit units into unitAcc_ for the hoisted-poll drain. */
bool
Evacuator::scanObjectFast(Address obj, std::uint32_t refs)
{
    Heap &heap = env_.heap;
    sim::CpuModel &cpu = env_.system.cpu();
    // Cheney scan: every to-space object is scanned exactly once, so
    // the dual-MRU view memo can never hit here — the slot count rides
    // the gray entry from the copy step instead of a header re-decode
    // (the slot array is read through a host pointer; processSlot
    // never rewrites the slots of the object being scanned, only this
    // loop's explicit writeback does).
    costs_.charge(cpu, kSpecScanObject, 1);
    ++unitAcc_;
    if (refs == 0)
        return true;
    costs_.charge(cpu, kSpecScanSlot, refs);
    const Address slot0 = obj + kHeaderBytes;
    const std::uint8_t *slots = heap.ptr(slot0);
    cpu.loadBlock(slot0, refs, kSlotBytes);
    unitAcc_ +=
        GcCostTable::chargeUnits(gc_costs::kScanPerSlot * refs) +
        refs;
    for (std::uint32_t i = 0; i < refs; ++i) {
        Address child;
        std::memcpy(&child, slots + static_cast<std::size_t>(i) * kSlotBytes,
                    sizeof(child));
        if (child == kNull)
            continue;
        const Address before = child;
        if (!processSlot(child))
            return false;
        if (child != before) {
            const Address slotAddr =
                slot0 + static_cast<Address>(i) * kSlotBytes;
            cpu.store(slotAddr);
            ++unitAcc_;
            heap.write64(slotAddr, child);
        }
    }
    return true;
}

bool
Evacuator::drain()
{
    // Breadth-first (Cheney) order: objects are scanned long after they
    // were copied, so the scan re-misses on the copied data instead of
    // riding the copy's cache footprint — the memory behaviour the
    // paper measures for the copying collectors.
    if (!env_.fastPath) {
        while (grayHead_ < gray_.size()) {
            // Only consume the entry once its scan completed: a failed
            // (out-of-space) scan leaves the object queued so a resumed
            // pass rescans it; processSlot is idempotent via forwarding.
            if (!scanObjectReference(gray_[grayHead_].addr,
                                     gray_[grayHead_].refs))
                return false;
            ++grayHead_;
            env_.system.poll();
        }
        gray_.clear();
        grayHead_ = 0;
        return !failed_;
    }

    // Deficit-counter poll hoisting; see Marker::drainFast for the
    // identical-poll-ticks argument.
    std::int64_t budget =
        static_cast<std::int64_t>(gcPollFreeUnits(env_.system));
    while (grayHead_ < gray_.size()) {
        unitAcc_ = 0;
        if (!scanObjectFast(gray_[grayHead_].addr, gray_[grayHead_].refs))
            return false;
        ++grayHead_;
        budget -= static_cast<std::int64_t>(unitAcc_);
        if (budget <= 0) {
            env_.system.poll();
            budget =
                static_cast<std::int64_t>(gcPollFreeUnits(env_.system));
        }
    }
    gray_.clear();
    grayHead_ = 0;
    return !failed_;
}

} // namespace jvm
} // namespace javelin
