#include "jvm/gc/sweeper.hh"

namespace javelin {
namespace jvm {

void
sweepFreeListSpace(const GcEnv &env, const GcCostTable &costs,
                   FreeListAllocator &alloc, Collector::Stats &stats)
{
    alloc.beginSweep();
    // Cells reclaimed below may be re-carved into new objects later;
    // drop every memoized header decode up front rather than tracking
    // per-cell invalidation through the whole sweep.
    env.om.invalidateViews();

    if (!env.fastPath) {
        // Reference path: per-cell loop over the timed accessors.
        ObjectModel &om = env.om;
        for (const auto &block : alloc.blocks()) {
            std::uint32_t cells = 0;
            for (std::uint32_t cell = 0; cell < block.bumpCells; ++cell) {
                if (!block.allocated(cell))
                    continue;
                const Address addr =
                    block.start +
                    static_cast<Address>(cell) * block.cellBytes;
                const std::uint32_t bits = om.loadGcBits(addr);
                if (bits & kMarkBit) {
                    om.storeGcBits(addr, bits & ~kMarkBit);
                } else {
                    stats.bytesFreed += block.cellBytes;
                    alloc.freeCell(addr);
                    env.system.cpu().store(addr); // free-list link write
                }
                ++cells;
            }
            if (cells)
                costs.charge(env.system.cpu(), kSpecSweepCell, cells);
            env.system.poll();
        }
        // Retire fully-free blocks to the virgin pool (host metadata
        // only; the per-cell link traffic above already happened).
        alloc.endSweep();
        return;
    }

    // Fast path: liveness decisions and heap mutation run host-side,
    // the per-cell traffic issues directly in cell order — the
    // identical event stream, with the poll staying at its historical
    // per-block cadence.
    Heap &heap = env.heap;
    sim::CpuModel &cpu = env.system.cpu();
    for (const auto &block : alloc.blocks()) {
        std::uint32_t cells = 0;
        for (std::uint32_t cell = 0; cell < block.bumpCells; ++cell) {
            if (!block.allocated(cell))
                continue;
            const Address addr =
                block.start + static_cast<Address>(cell) * block.cellBytes;
            cpu.load(addr + kGcBitsOffset);
            const std::uint32_t bits = heap.read32(addr + kGcBitsOffset);
            if (bits & kMarkBit) {
                heap.write32(addr + kGcBitsOffset, bits & ~kMarkBit);
                cpu.store(addr + kGcBitsOffset);
            } else {
                stats.bytesFreed += block.cellBytes;
                alloc.freeCell(addr);
                cpu.store(addr); // free-list link write
            }
            ++cells;
        }
        if (cells)
            costs.charge(cpu, kSpecSweepCell, cells);
        env.system.poll();
    }
    alloc.endSweep();
}

} // namespace jvm
} // namespace javelin
