#include "jvm/gc/collector.hh"

#include "jvm/gc/gencopy.hh"
#include "jvm/gc/genms.hh"
#include "jvm/gc/incremental_ms.hh"
#include "jvm/gc/marksweep.hh"
#include "jvm/gc/semispace.hh"
#include "util/logging.hh"

namespace javelin {
namespace jvm {

void
chargeGcWork(sim::System &system, std::uint32_t micro_ops,
             Address code_addr)
{
    system.cpu().execute(micro_ops, code_addr, micro_ops * 4);
    system.cpu().stall(micro_ops *
                       system.spec().cpu.gcStallPerUop);
}

const char *
collectorName(CollectorKind kind)
{
    switch (kind) {
      case CollectorKind::SemiSpace:
        return "SemiSpace";
      case CollectorKind::MarkSweep:
        return "MarkSweep";
      case CollectorKind::GenCopy:
        return "GenCopy";
      case CollectorKind::GenMS:
        return "GenMS";
      case CollectorKind::IncrementalMS:
        return "IncMS";
    }
    JAVELIN_PANIC("bad collector kind");
}

std::unique_ptr<Collector>
makeCollector(CollectorKind kind, const GcEnv &env)
{
    switch (kind) {
      case CollectorKind::SemiSpace:
        return std::make_unique<SemiSpaceCollector>(env);
      case CollectorKind::MarkSweep:
        return std::make_unique<MarkSweepCollector>(env);
      case CollectorKind::GenCopy:
        return std::make_unique<GenCopyCollector>(env);
      case CollectorKind::GenMS:
        return std::make_unique<GenMSCollector>(env);
      case CollectorKind::IncrementalMS:
        return std::make_unique<IncrementalMSCollector>(env);
    }
    JAVELIN_PANIC("bad collector kind");
}

} // namespace jvm
} // namespace javelin
