#include "jvm/gc/collector.hh"

#include <algorithm>
#include <cstdlib>

#include "jvm/gc/gencopy.hh"
#include "jvm/gc/genms.hh"
#include "jvm/gc/incremental_ms.hh"
#include "jvm/gc/marksweep.hh"
#include "jvm/gc/semispace.hh"
#include "util/logging.hh"

namespace javelin {
namespace jvm {

void
chargeGcWork(sim::System &system, std::uint32_t micro_ops,
             Address code_addr)
{
    system.cpu().execute(micro_ops, code_addr, micro_ops * 4);
    system.cpu().stall(micro_ops *
                       system.spec().cpu.gcStallPerUop);
}

GcCostTable
GcCostTable::make(const sim::System &system)
{
    const double perUop = system.spec().cpu.gcStallPerUop;
    GcCostTable t;
    t.stallPerUop = perUop;
    const auto spec = [perUop](std::uint32_t uops, Address code) {
        // Same operands as one chargeGcWork(uops, code) call: code
        // footprint uops*4 and stall uops*gcStallPerUop (one uint32 x
        // double product, so the prefolded double is bit-identical).
        return GcCostTable::PhaseCost{uops, uops * 4, code,
                                      uops * perUop};
    };
    t.specs[kSpecMarkObject] = spec(gc_costs::kMarkPerObject, kGcMarkCode);
    t.specs[kSpecMarkEdge] = spec(gc_costs::kMarkPerEdge, kGcMarkCode);
    t.specs[kSpecScanObject] = spec(gc_costs::kScanPerObject, kGcScanCode);
    t.specs[kSpecScanSlot] = spec(gc_costs::kScanPerSlot, kGcScanCode);
    t.specs[kSpecSweepCell] = spec(gc_costs::kSweepPerCell, kGcSweepCode);
    return t;
}

std::uint64_t
gcPollFreeUnits(sim::System &system)
{
    const sim::CpuModel &cpu = system.cpu();
    const Tick due = system.nextTaskDue();
    const Tick now = cpu.now();
    if (due <= now)
        return 0; // a task is due: poll at the next opportunity
    const Tick slack = due - now;

    // Conservative bound on how far one burst unit can advance time.
    // A unit is one deferred op; oversized kExecN charges count
    // 1 + uops/64 units, so a unit covers at most a 64-uop execute
    // (with its fetch accesses — 256 code bytes span at most 5 lines
    // at 64-byte lines, fewer at larger) plus its dependence stall,
    // or one data access. Every access takes its worst-case penalty
    // (L1 dirty victim, L2 miss with dirty victim, DRAM, prefetch
    // catch-up) and stalls are never overlapped, exactly as in
    // Interpreter::pollFreeIterations. The true advance is strictly
    // smaller, so polls skipped inside the budget are provably no-ops.
    const auto &mem = system.memory().config();
    const double maxPenalty =
        2.0 * mem.writebackCycles + mem.l2HitCycles +
        static_cast<double>(mem.dramCycles) +
        static_cast<double>(mem.dramCycles) / 3.0;
    const double penaltyScale =
        std::max(1.0, cpu.config().memStallFactor);
    const double maxCycles =
        65.0 * (cpu.config().baseCpi + cpu.config().gcStallPerUop) +
        6.0 * maxPenalty * penaltyScale + 16.0;
    const double maxTicksPerUnit =
        maxCycles * cpu.effectivePeriodTicks() * 1.0625 + 2.0;

    const double units = static_cast<double>(slack) / maxTicksPerUnit;
    if (units >= 4.0e9)
        return 0xFFFFFFFFu;
    return static_cast<std::uint64_t>(units);
}

bool
gcFastPathDefault()
{
    static const bool on = std::getenv("JAVELIN_GC_NO_FAST_PATH") == nullptr;
    return on;
}

const char *
collectorName(CollectorKind kind)
{
    switch (kind) {
      case CollectorKind::SemiSpace:
        return "SemiSpace";
      case CollectorKind::MarkSweep:
        return "MarkSweep";
      case CollectorKind::GenCopy:
        return "GenCopy";
      case CollectorKind::GenMS:
        return "GenMS";
      case CollectorKind::IncrementalMS:
        return "IncMS";
    }
    JAVELIN_PANIC("bad collector kind");
}

std::unique_ptr<Collector>
makeCollector(CollectorKind kind, const GcEnv &env)
{
    switch (kind) {
      case CollectorKind::SemiSpace:
        return std::make_unique<SemiSpaceCollector>(env);
      case CollectorKind::MarkSweep:
        return std::make_unique<MarkSweepCollector>(env);
      case CollectorKind::GenCopy:
        return std::make_unique<GenCopyCollector>(env);
      case CollectorKind::GenMS:
        return std::make_unique<GenMSCollector>(env);
      case CollectorKind::IncrementalMS:
        return std::make_unique<IncrementalMSCollector>(env);
    }
    JAVELIN_PANIC("bad collector kind");
}

} // namespace jvm
} // namespace javelin
