#include "jvm/gc/marker.hh"

#include "jvm/address.hh"

namespace javelin {
namespace jvm {

Marker::Marker(const GcEnv &env, Collector::Stats &stats)
    : env_(env), stats_(stats)
{
    stack_.reserve(1024);
}

void
Marker::processRef(Address ref)
{
    ObjectModel &om = env_.om;
    std::uint32_t bits;
    // Follow forwarding pointers: a mark phase can run while an
    // abandoned evacuation has left forwarded shells behind.
    for (;;) {
        if (ref == kNull)
            return;
        bits = om.loadGcBits(ref);
        if (!(bits & kForwardedBit))
            break;
        ref = om.loadForwarding(ref);
    }
    if (bits & kMarkBit)
        return;
    om.storeGcBits(ref, bits | kMarkBit);
    ++marked_;
    ++stats_.objectsMarked;
    stack_.push_back(ref);
    chargeGcWork(env_.system, gc_costs::kMarkPerObject, kGcMarkCode);
}

void
Marker::drain()
{
    ObjectModel &om = env_.om;
    while (!stack_.empty()) {
        const Address obj = stack_.back();
        stack_.pop_back();
        const std::uint32_t refs = om.refCountRaw(obj);
        for (std::uint32_t i = 0; i < refs; ++i) {
            chargeGcWork(env_.system, gc_costs::kMarkPerEdge,
                         kGcMarkCode);
            const Address child = om.loadRef(obj, i);
            processRef(child);
        }
        env_.system.poll();
    }
}

void
Marker::markFromRoots()
{
    env_.host.forEachRoot([this](Address &ref) { processRef(ref); });
    drain();
}

} // namespace jvm
} // namespace javelin
