#include "jvm/gc/marker.hh"

#include "jvm/address.hh"

namespace javelin {
namespace jvm {

Marker::Marker(const GcEnv &env, const GcCostTable &costs,
               Collector::Stats &stats)
    : env_(env), costs_(costs), stats_(stats)
{
    stack_.reserve(1024);
    children_.reserve(64);
}

void
Marker::processRef(Address ref)
{
    ObjectModel &om = env_.om;
    std::uint32_t bits;
    // Follow forwarding pointers: a mark phase can run while an
    // abandoned evacuation has left forwarded shells behind.
    for (;;) {
        if (ref == kNull)
            return;
        bits = om.loadGcBits(ref);
        if (!(bits & kForwardedBit))
            break;
        ref = om.loadForwarding(ref);
    }
    if (bits & kMarkBit)
        return;
    om.storeGcBits(ref, bits | kMarkBit);
    ++marked_;
    ++stats_.objectsMarked;
    stack_.push_back(ref);
    costs_.charge(env_.system.cpu(), kSpecMarkObject, 1);
}

/**
 * Batched drain (DESIGN.md §5e): per popped object, one folded
 * kSpecMarkEdge charge for all its edges, one slot-load block, then
 * the per-child test-and-mark events — the same v2 stream the
 * reference drain emits, produced from the ObjectView memo and raw
 * heap reads instead of the timed accessor chain.
 *
 * Poll hoisting (the doNativeWork technique): the reference drain
 * polls once per popped object, but a poll only does work when a
 * periodic task is due. gcPollFreeUnits() bounds, conservatively, how
 * many work units can run before the next deadline; each event below
 * decrements the budget by at least its unit weight, so every object
 * boundary skipped while the budget stays positive provably satisfies
 * now < due — a no-op poll. The first boundary at which a task CAN be
 * due is therefore always one where we do poll, and since the event
 * stream (hence the tick at that boundary) is identical to the
 * reference path's, the task fires at the identical tick.
 * test_gc_diff pins this with a tick-recording periodic task.
 */
void
Marker::drainFast()
{
    ObjectModel &om = env_.om;
    Heap &heap = env_.heap;
    sim::CpuModel &cpu = env_.system.cpu();
    std::int64_t budget =
        static_cast<std::int64_t>(gcPollFreeUnits(env_.system));
    while (!stack_.empty()) {
        const Address obj = stack_.back();
        stack_.pop_back();
        // Safe to hold by reference: marking rewrites no header word
        // other than gcBits, which the view does not cache.
        const ObjectView &v = om.view(obj);
        const std::uint32_t refs = v.refs;
        if (refs == 0)
            continue; // zero events — the skipped poll is a no-op
        costs_.charge(cpu, kSpecMarkEdge, refs);
        const Address slot0 = obj + kHeaderBytes;
        cpu.loadBlock(slot0, refs, kSlotBytes);
        std::uint64_t units =
            GcCostTable::chargeUnits(gc_costs::kMarkPerEdge * refs) +
            refs;
        for (std::uint32_t i = 0; i < refs; ++i) {
            Address child = v.ref(i);
            std::uint32_t bits;
            for (;;) {
                if (child == kNull)
                    goto next_child;
                cpu.load(child + kGcBitsOffset);
                ++units;
                bits = heap.read32(child + kGcBitsOffset);
                if (!(bits & kForwardedBit))
                    break;
                cpu.load(child);
                ++units;
                child = heap.read64(child + kClassIdOffset);
            }
            if (bits & kMarkBit)
                goto next_child;
            cpu.store(child + kGcBitsOffset);
            heap.write32(child + kGcBitsOffset, bits | kMarkBit);
            ++marked_;
            ++stats_.objectsMarked;
            stack_.push_back(child);
            costs_.charge(cpu, kSpecMarkObject, 1);
            units += 2; // store + single-item charge
          next_child:;
        }
        budget -= static_cast<std::int64_t>(units);
        if (budget <= 0) {
            env_.system.poll();
            budget =
                static_cast<std::int64_t>(gcPollFreeUnits(env_.system));
        }
    }
}

/** Naive scalar drain over the timed accessors — the oracle. Emits the
 *  identical v2 stream: folded edge charge, slot loads in slot order,
 *  then each child's test-and-mark events, one poll per object. */
void
Marker::drainReference()
{
    ObjectModel &om = env_.om;
    while (!stack_.empty()) {
        const Address obj = stack_.back();
        stack_.pop_back();
        const std::uint32_t refs = om.refCountRaw(obj);
        if (refs == 0)
            continue;
        costs_.charge(env_.system.cpu(), kSpecMarkEdge, refs);
        children_.clear();
        for (std::uint32_t i = 0; i < refs; ++i)
            children_.push_back(om.loadRef(obj, i));
        for (const Address child : children_)
            processRef(child);
        env_.system.poll();
    }
}

void
Marker::drain()
{
    if (env_.fastPath)
        drainFast();
    else
        drainReference();
}

void
Marker::markFromRoots()
{
    env_.host.forEachRoot([this](Address &ref) { processRef(ref); });
    drain();
}

} // namespace jvm
} // namespace javelin
