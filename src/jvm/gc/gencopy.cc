#include "jvm/gc/gencopy.hh"

#include <algorithm>

#include "jvm/gc/evacuator.hh"

namespace javelin {
namespace jvm {

GenCopyCollector::GenCopyCollector(const GcEnv &env)
    : Collector(env), remset_(env.system)
{
    // A bounded nursery (an eighth of the heap, as in the JMTk default
    // configuration) leaves the mature semispaces room to breathe.
    const std::uint64_t nurseryBytes = (env_.heap.size() / 8) & ~7ULL;
    const std::uint64_t half = ((env_.heap.size() - nurseryBytes) / 2)
                               & ~7ULL;
    Address at = env_.heap.base();
    nursery_ = Space("nursery", at, nurseryBytes);
    at += nurseryBytes;
    mature_[0] = Space("mature0", at, half);
    at += half;
    mature_[1] = Space("mature1", at, half);
    recomputeNurseryLimit();
}

void
GenCopyCollector::recomputeNurseryLimit()
{
    // Appel-style bound: never let more live bytes accumulate in the
    // nursery than the active mature half can absorb.
    nurseryLimit_ = std::min<std::uint64_t>(
        nursery_.size, mature_[activeHalf_].freeBytes());
}

Address
GenCopyCollector::allocate(std::uint32_t bytes)
{
    if (oom_)
        return kNull;
    chargeWork(7, kAllocCode);

    if (bytes >= kPretenureBytes) {
        Address addr = mature_[activeHalf_].bump(bytes);
        if (addr == kNull) {
            majorCollect();
            if (oom_)
                return kNull;
            addr = mature_[activeHalf_].bump(bytes);
            if (addr == kNull)
                return kNull;
        }
        recomputeNurseryLimit();
        stats_.bytesAllocated += bytes;
        ++stats_.objectsAllocated;
        return addr;
    }

    for (int attempt = 0; attempt < 3; ++attempt) {
        if (nursery_.used() + bytes <= nurseryLimit_) {
            const Address addr = nursery_.bump(bytes);
            if (addr != kNull) {
                stats_.bytesAllocated += bytes;
                ++stats_.objectsAllocated;
                return addr;
            }
        }
        // Nursery exhausted (or limit shrunk): collect and retry.
        minorCollect();
        if (oom_)
            return kNull;
        if (nurseryLimit_ < std::max<std::uint64_t>(kMinNursery, bytes)) {
            majorCollect();
            if (oom_)
                return kNull;
        }
    }
    return kNull;
}

void
GenCopyCollector::writeBarrier(Address holder, Address slot_addr,
                               Address value)
{
    if (env_.chargeBarrierCost)
        chargeWork(3, kBarrierCode);
    if (value == kNull || inNursery(holder) || !inNursery(value))
        return;
    ++stats_.barrierHits;
    ++stats_.remsetEntries;
    remset_.record(slot_addr);
}

void
GenCopyCollector::minorCollect()
{
    env_.host.gcBegin(false);
    const Tick start = env_.system.cpu().now();

    Space &target = mature_[activeHalf_];
    Evacuator evac(
        env_, costs_, stats_, MoveRegion::of(nursery_),
        [&target](std::uint32_t bytes, std::uint32_t *) {
            return target.bump(bytes);
        });

    env_.host.forEachRoot([&evac](Address &ref) {
        evac.processSlot(ref);
    });
    // Remembered-set entries are roots for a minor collection. Replaying
    // the SSB reads the buffer back: charge one window load per entry.
    remset_.chargeReplayReads(env_.fastPath);
    Heap &heap = env_.heap;
    remset_.forEach([&](Address slot) {
        env_.system.cpu().load(slot);
        Address ref = heap.read64(slot);
        const Address before = ref;
        evac.processSlot(ref);
        if (ref != before) {
            env_.system.cpu().store(slot);
            heap.write64(slot, ref);
        }
    });
    evac.drain();
    remset_.clear();

    if (evac.failed()) {
        // The Appel bound makes this unreachable unless the heap itself
        // is too small for the live set; fall back to a major collection.
        majorCollect();
        if (oom_) {
            env_.host.gcEnd(false);
            return;
        }
    }

    nursery_.reset();
    recomputeNurseryLimit();
    ++stats_.collections;
    ++stats_.minorCollections;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(false);

    if (nurseryLimit_ < kMinNursery)
        majorCollect();
}

void
GenCopyCollector::majorCollect()
{
    env_.host.gcBegin(true);
    const Tick start = env_.system.cpu().now();

    Space &from = mature_[activeHalf_];
    Space &to = mature_[1 - activeHalf_];
    to.reset();

    Evacuator evac(
        env_, costs_, stats_, MoveRegion::of(nursery_, from),
        [&to](std::uint32_t bytes, std::uint32_t *) {
            return to.bump(bytes);
        });

    env_.host.forEachRoot([&evac](Address &ref) {
        evac.processSlot(ref);
    });
    evac.drain();

    if (evac.failed()) {
        // Live data exceeds one mature half: genuine out-of-memory.
        oom_ = true;
    } else {
        from.reset();
        activeHalf_ = 1 - activeHalf_;
        nursery_.reset();
    }
    remset_.clear();
    recomputeNurseryLimit();

    ++stats_.collections;
    ++stats_.majorCollections;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(true);
}

void
GenCopyCollector::collect(bool major)
{
    if (major)
        majorCollect();
    else
        minorCollect();
}

std::uint64_t
GenCopyCollector::heapUsed() const
{
    return nursery_.used() + mature_[activeHalf_].used();
}

} // namespace jvm
} // namespace javelin
