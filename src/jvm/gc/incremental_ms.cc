#include "jvm/gc/incremental_ms.hh"

#include "jvm/gc/sweeper.hh"

namespace javelin {
namespace jvm {

namespace {

std::uint64_t
blockAlignDown(std::uint64_t bytes)
{
    return bytes & ~static_cast<std::uint64_t>(
        FreeListAllocator::kBlockBytes - 1);
}

} // namespace

IncrementalMSCollector::IncrementalMSCollector(const GcEnv &env)
    : IncrementalMSCollector(env, Tuning())
{
}

IncrementalMSCollector::IncrementalMSCollector(const GcEnv &env,
                                               const Tuning &tuning)
    : Collector(env), tuning_(tuning),
      alloc_(env.heap, Space("incms", env.heap.base(),
                             blockAlignDown(env.heap.size())))
{
    gray_.reserve(1024);
}

void
IncrementalMSCollector::shade(Address ref)
{
    if (ref == kNull)
        return;
    ObjectModel &om = env_.om;
    const std::uint32_t bits = om.loadGcBits(ref);
    ++unitAcc_;
    if (bits & kMarkBit)
        return;
    om.storeGcBits(ref, bits | kMarkBit);
    ++stats_.objectsMarked;
    gray_.push_back(ref);
    costs_.charge(env_.system.cpu(), kSpecMarkObject, 1);
    unitAcc_ += 2; // store + single-item charge
}

/**
 * Kaffe's scan charges kMarkPerEdge once per *object* (not per edge) —
 * a historical quirk both drive modes preserve. The v2 stream is the
 * charge, then the slot loads in slot order, then the shades.
 */
void
IncrementalMSCollector::scanObject(Address obj)
{
    ObjectModel &om = env_.om;
    const std::uint32_t refs = om.refCountRaw(obj);
    costs_.charge(env_.system.cpu(), kSpecMarkEdge, 1);
    children_.clear();
    for (std::uint32_t i = 0; i < refs; ++i)
        children_.push_back(om.loadRef(obj, i));
    for (const Address child : children_)
        shade(child);
}

void
IncrementalMSCollector::scanObjectFast(Address obj)
{
    // Header decode through the dual-MRU memo; marking rewrites no
    // header word other than gcBits (uncached), so the reference stays
    // valid across the shades.
    sim::CpuModel &cpu = env_.system.cpu();
    const ObjectView &v = env_.om.view(obj);
    costs_.charge(cpu, kSpecMarkEdge, 1);
    ++unitAcc_;
    const Address slot0 = obj + kHeaderBytes;
    cpu.loadBlock(slot0, v.refs, kSlotBytes);
    unitAcc_ += v.refs;
    for (std::uint32_t i = 0; i < v.refs; ++i)
        shade(v.ref(i));
}

void
IncrementalMSCollector::startCycle()
{
    env_.host.gcBegin(false);
    marking_ = true;
    // Root scan: Kaffe scans thread stacks conservatively, so charge a
    // full word-by-word walk in addition to the precise shading.
    env_.host.forEachRoot([this](Address &ref) {
        chargeWork(3, kGcScanCode);
        shade(ref);
    });
    ++stats_.minorCollections; // counts marking increments started
    env_.host.gcEnd(false);
}

void
IncrementalMSCollector::step(std::uint32_t n)
{
    env_.host.gcBegin(false);
    while (n-- > 0 && !gray_.empty()) {
        const Address obj = gray_.back();
        gray_.pop_back();
        if (env_.fastPath)
            scanObjectFast(obj);
        else
            scanObject(obj);
    }
    env_.host.gcEnd(false);
    if (gray_.empty())
        finishCycle();
}

void
IncrementalMSCollector::finishCycle()
{
    env_.host.gcBegin(true);
    const Tick start = env_.system.cpu().now();

    // Atomic termination: rescan roots (mutator may have moved white
    // references into registers since the initial scan), drain, sweep.
    env_.host.forEachRoot([this](Address &ref) {
        chargeWork(3, kGcScanCode);
        shade(ref);
    });
    if (env_.fastPath) {
        // Deficit-counter poll hoisting; see Marker::drainFast for the
        // identical-poll-ticks argument.
        std::int64_t budget =
            static_cast<std::int64_t>(gcPollFreeUnits(env_.system));
        while (!gray_.empty()) {
            const Address obj = gray_.back();
            gray_.pop_back();
            unitAcc_ = 0;
            scanObjectFast(obj);
            budget -= static_cast<std::int64_t>(unitAcc_);
            if (budget <= 0) {
                env_.system.poll();
                budget = static_cast<std::int64_t>(
                    gcPollFreeUnits(env_.system));
            }
        }
    } else {
        while (!gray_.empty()) {
            const Address obj = gray_.back();
            gray_.pop_back();
            scanObject(obj);
            env_.system.poll();
        }
    }
    sweep();
    marking_ = false;

    ++stats_.collections;
    ++stats_.majorCollections;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(true);
}

void
IncrementalMSCollector::sweep()
{
    sweepFreeListSpace(env_, costs_, alloc_, stats_);
}

Address
IncrementalMSCollector::allocate(std::uint32_t bytes)
{
    chargeWork(9, kAllocCode);

    if (marking_)
        step(tuning_.stepObjects);

    std::uint32_t traffic = 0;
    Address addr = alloc_.alloc(bytes, &traffic);
    if (addr == kNull) {
        // Out of cells: finish any in-flight cycle, else run a full
        // stop-the-world cycle, then retry once.
        if (marking_) {
            finishCycle();
        } else {
            startCycle();
            if (marking_)
                finishCycle();
        }
        addr = alloc_.alloc(bytes, &traffic);
        if (addr == kNull)
            return kNull;
    }
    env_.system.cpu().loadBlock(addr, traffic, 0);

    stats_.bytesAllocated += bytes;
    ++stats_.objectsAllocated;

    if (!marking_ &&
        static_cast<double>(alloc_.usedBytes()) >
            tuning_.triggerFraction * static_cast<double>(env_.heap.size()))
        startCycle();

    return addr;
}

void
IncrementalMSCollector::postInit(Address obj)
{
    // Allocate-black: objects born during marking survive this cycle.
    if (marking_) {
        ObjectModel &om = env_.om;
        om.setGcBitsRaw(obj, om.gcBitsRaw(obj) | kMarkBit);
    }
}

void
IncrementalMSCollector::writeBarrier(Address holder, Address slot_addr,
                                     Address value)
{
    (void)holder;
    (void)slot_addr;
    if (env_.chargeBarrierCost)
        chargeWork(2, kBarrierCode);
    if (!marking_ || value == kNull)
        return;
    // Dijkstra insertion barrier: the stored reference is shaded so a
    // black holder can never point at a white object.
    ++stats_.barrierHits;
    env_.host.gcBegin(false);
    shade(value);
    env_.host.gcEnd(false);
}

void
IncrementalMSCollector::collect(bool major)
{
    if (!marking_)
        startCycle();
    if (major)
        finishCycle();
    else if (marking_)
        step(tuning_.stepObjects * 8);
}

std::uint64_t
IncrementalMSCollector::heapUsed() const
{
    return alloc_.usedBytes();
}

} // namespace jvm
} // namespace javelin
