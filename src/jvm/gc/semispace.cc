#include "jvm/gc/semispace.hh"

#include <utility>

#include "jvm/gc/evacuator.hh"

namespace javelin {
namespace jvm {

SemiSpaceCollector::SemiSpaceCollector(const GcEnv &env)
    : Collector(env)
{
    const std::uint64_t half = (env_.heap.size() / 2) & ~7ULL;
    active_ = Space("ss-from", env_.heap.base(), half);
    idle_ = Space("ss-to", env_.heap.base() + half, half);
}

Address
SemiSpaceCollector::allocate(std::uint32_t bytes)
{
    // Fast path: bump pointer (test + add + cursor store).
    chargeWork(6, kAllocCode);
    Address addr = active_.bump(bytes);
    if (addr == kNull) {
        collect(true);
        chargeWork(6, kAllocCode);
        addr = active_.bump(bytes);
        if (addr == kNull)
            return kNull; // genuinely out of memory
    }
    stats_.bytesAllocated += bytes;
    ++stats_.objectsAllocated;
    return addr;
}

void
SemiSpaceCollector::collect(bool major)
{
    (void)major; // every collection is full-heap
    env_.host.gcBegin(true);
    const Tick start = env_.system.cpu().now();

    idle_.reset();
    const Space from = active_;
    Evacuator evac(
        env_, costs_, stats_, MoveRegion::of(from),
        [this](std::uint32_t bytes, std::uint32_t *) {
            return idle_.bump(bytes);
        });

    env_.host.forEachRoot([&evac](Address &ref) {
        evac.processSlot(ref);
    });
    evac.drain();
    JAVELIN_ASSERT(!evac.failed(),
                   "semispace to-space overflow (halves are equal)");

    std::swap(active_, idle_);
    ++stats_.collections;
    ++stats_.majorCollections;
    stats_.bytesFreed += from.used() > active_.used()
                             ? from.used() - active_.used()
                             : 0;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(true);
}

} // namespace jvm
} // namespace javelin
