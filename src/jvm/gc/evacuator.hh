/**
 * @file
 * Shared evacuation machinery for the copying collectors.
 *
 * Implements the copy/forward/trace core of a Cheney-style collector
 * with a pluggable "should this object move" predicate and target
 * allocator, so SemiSpace (full-heap copy), GenCopy (nursery-to-mature
 * promotion and mature semispace major) and GenMS (nursery-to-free-list
 * promotion) all share one verified implementation.
 *
 * Like the marker, the evacuator has two semantically identical drive
 * modes (GcEnv::fastPath), both emitting the v2 per-object charge
 * stream (folded scan charges and one slot-load block per scanned
 * object — DESIGN.md §5e): a batched fast path driven off the
 * ObjectView memo with polls hoisted behind a deficit counter, and a
 * naive scalar reference path kept as the differential-test oracle.
 */

#ifndef JAVELIN_JVM_GC_EVACUATOR_HH
#define JAVELIN_JVM_GC_EVACUATOR_HH

#include <functional>
#include <vector>

#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * The "should this object move" predicate, devirtualized: every
 * collector's from-region is one or two contiguous address ranges
 * (from-space, the nursery, nursery + mature-from on a GenCopy
 * major), so the per-slot test is a pair of compares instead of a
 * std::function indirection on the hottest evacuation edge.
 */
struct MoveRegion
{
    Address lo0 = 1, hi0 = 0; // empty
    Address lo1 = 1, hi1 = 0;

    static MoveRegion
    of(const Space &s)
    {
        return {s.start, s.end(), 1, 0};
    }

    static MoveRegion
    of(const Space &a, const Space &b)
    {
        return {a.start, a.end(), b.start, b.end()};
    }

    bool
    contains(Address a) const
    {
        return (a >= lo0 && a < hi0) || (a >= lo1 && a < hi1);
    }
};

/**
 * One evacuation pass. Construct, configure, drive, discard.
 */
class Evacuator
{
  public:
    /**
     * Target allocator: returns the new address (kNull when out of
     * space) and reports any free-list words touched through
     * *traffic_loads (bump allocators leave it 0). The evacuator
     * charges that traffic itself, at the same point in the event
     * stream the allocator historically did, so the charge can ride
     * the deferred burst.
     */
    using AllocFn =
        std::function<Address(std::uint32_t, std::uint32_t *)>;

    Evacuator(const GcEnv &env, const GcCostTable &costs,
              Collector::Stats &stats, MoveRegion region,
              AllocFn alloc_to);

    /**
     * Process one slot: null and non-moving refs pass through; already
     * forwarded objects are snapped; everything else is copied.
     * @return false if the target allocator ran out of space.
     */
    bool processSlot(Address &ref);

    /** Trace from all copied-but-unscanned objects until empty. */
    bool drain();

    /** Objects copied by this pass so far. */
    std::uint64_t copied() const { return copiedObjects_; }

    bool failed() const { return failed_; }

    /**
     * Gray work-list entry: the copied object plus its reference-slot
     * count, decoded once at copy time while the header is host-cache
     * hot, so the scan never re-decodes a header it copied moments
     * earlier (the old per-address list spent ~9 % of evacuation self
     * time in that re-decode). The decode is untimed either way — the
     * architectural event stream is unchanged.
     */
    struct GrayEntry
    {
        Address addr;
        std::uint32_t refs;
    };

    /**
     * Clear the failure flag so the pass can be resumed after the
     * caller freed target space. Copied-but-unscanned objects stay
     * queued; the interrupted object is rescanned (idempotent).
     */
    void resetFailure() { failed_ = false; }

    /** Visit every copied-but-unscanned object (GenMS pins these as
     *  mark roots before sweeping mid-evacuation). */
    template <typename Fn>
    void
    forEachPending(Fn &&fn) const
    {
        for (std::size_t i = grayHead_; i < gray_.size(); ++i)
            fn(gray_[i].addr);
    }

  private:
    bool scanObjectReference(Address obj, std::uint32_t refs);
    bool scanObjectFast(Address obj, std::uint32_t refs);

    const GcEnv &env_;
    const GcCostTable &costs_;
    Collector::Stats &stats_;
    MoveRegion region_;
    AllocFn allocTo_;
    std::vector<GrayEntry> gray_;
    std::vector<Address> children_;
    std::size_t grayHead_ = 0;
    std::uint64_t copiedObjects_ = 0;
    /** Deficit units accrued by processSlot/scan charges (fast drain). */
    std::uint64_t unitAcc_ = 0;
    bool failed_ = false;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_EVACUATOR_HH
