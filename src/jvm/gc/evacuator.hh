/**
 * @file
 * Shared evacuation machinery for the copying collectors.
 *
 * Implements the copy/forward/trace core of a Cheney-style collector
 * with a pluggable "should this object move" predicate and target
 * allocator, so SemiSpace (full-heap copy), GenCopy (nursery-to-mature
 * promotion and mature semispace major) and GenMS (nursery-to-free-list
 * promotion) all share one verified implementation.
 */

#ifndef JAVELIN_JVM_GC_EVACUATOR_HH
#define JAVELIN_JVM_GC_EVACUATOR_HH

#include <functional>
#include <vector>

#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * One evacuation pass. Construct, configure, drive, discard.
 */
class Evacuator
{
  public:
    using ShouldMoveFn = std::function<bool(Address)>;
    using AllocFn = std::function<Address(std::uint32_t)>;

    Evacuator(const GcEnv &env, Collector::Stats &stats,
              ShouldMoveFn should_move, AllocFn alloc_to);

    /**
     * Process one slot: null and non-moving refs pass through; already
     * forwarded objects are snapped; everything else is copied.
     * @return false if the target allocator ran out of space.
     */
    bool processSlot(Address &ref);

    /** Trace from all copied-but-unscanned objects until empty. */
    bool drain();

    /** Objects copied by this pass so far. */
    std::uint64_t copied() const { return copiedObjects_; }

    bool failed() const { return failed_; }

    /**
     * Clear the failure flag so the pass can be resumed after the
     * caller freed target space. Copied-but-unscanned objects stay
     * queued; the interrupted object is rescanned (idempotent).
     */
    void resetFailure() { failed_ = false; }

    /** Visit every copied-but-unscanned object (GenMS pins these as
     *  mark roots before sweeping mid-evacuation). */
    template <typename Fn>
    void
    forEachPending(Fn &&fn) const
    {
        for (std::size_t i = grayHead_; i < gray_.size(); ++i)
            fn(gray_[i]);
    }

  private:
    bool scanObject(Address obj);

    const GcEnv &env_;
    Collector::Stats &stats_;
    ShouldMoveFn shouldMove_;
    AllocFn allocTo_;
    std::vector<Address> gray_;
    std::size_t grayHead_ = 0;
    std::uint64_t copiedObjects_ = 0;
    bool failed_ = false;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_EVACUATOR_HH
