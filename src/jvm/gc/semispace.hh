/**
 * @file
 * SemiSpace copying collector (paper Section III-B).
 *
 * The heap is divided into two halves; objects bump-allocate into the
 * active half, and when it fills, live objects are copied into the other
 * half and the roles invert. Copying compacts survivors in traversal
 * order, which is the source of the mutator-locality benefit the paper
 * observes for _209_db at large heaps.
 */

#ifndef JAVELIN_JVM_GC_SEMISPACE_HH
#define JAVELIN_JVM_GC_SEMISPACE_HH

#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * Classic two-space copying collector.
 */
class SemiSpaceCollector : public Collector
{
  public:
    explicit SemiSpaceCollector(const GcEnv &env);

    const char *name() const override { return "SemiSpace"; }
    Address allocate(std::uint32_t bytes) override;
    void collect(bool major) override;
    std::uint64_t heapUsed() const override { return active_.used(); }

    /** Active (allocation) half, for tests. */
    const Space &activeSpace() const { return active_; }
    const Space &idleSpace() const { return idle_; }

  private:
    Space active_;
    Space idle_;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_SEMISPACE_HH
