#include "jvm/gc/marksweep.hh"

#include "jvm/gc/marker.hh"

namespace javelin {
namespace jvm {

MarkSweepCollector::MarkSweepCollector(const GcEnv &env)
    : Collector(env),
      alloc_(env.heap,
             Space("ms", env.heap.base(),
                   env.heap.size() & ~static_cast<std::uint64_t>(
                       FreeListAllocator::kBlockBytes - 1)))
{
}

Address
MarkSweepCollector::allocate(std::uint32_t bytes)
{
    std::uint32_t traffic = 0;
    // Size-class dispatch and free-list pop.
    chargeWork(9, kAllocCode);
    Address addr = alloc_.alloc(bytes, &traffic);
    if (addr == kNull) {
        collect(true);
        chargeWork(9, kAllocCode);
        addr = alloc_.alloc(bytes, &traffic);
        if (addr == kNull)
            return kNull;
    }
    // Free-list link chasing re-touches the popped cell.
    env_.system.cpu().loadBlock(addr, traffic, 0);
    stats_.bytesAllocated += bytes;
    ++stats_.objectsAllocated;
    return addr;
}

void
MarkSweepCollector::sweep()
{
    alloc_.beginSweep();
    ObjectModel &om = env_.om;
    for (const auto &block : alloc_.blocks()) {
        for (std::uint32_t cell = 0; cell < block.bumpCells; ++cell) {
            if (!block.allocated(cell))
                continue;
            const Address addr =
                block.start + static_cast<Address>(cell) * block.cellBytes;
            const std::uint32_t bits = om.loadGcBits(addr);
            if (bits & kMarkBit) {
                om.storeGcBits(addr, bits & ~kMarkBit);
            } else {
                stats_.bytesFreed += block.cellBytes;
                alloc_.freeCell(addr);
                env_.system.cpu().store(addr); // free-list link write
            }
            chargeGcWork(env_.system, gc_costs::kSweepPerCell,
                         kGcSweepCode);
        }
        pollSamplers();
    }
}

void
MarkSweepCollector::collect(bool major)
{
    (void)major;
    env_.host.gcBegin(true);
    const Tick start = env_.system.cpu().now();

    Marker marker(env_, stats_);
    marker.markFromRoots();
    sweep();

    ++stats_.collections;
    ++stats_.majorCollections;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(true);
}

std::uint64_t
MarkSweepCollector::heapUsed() const
{
    return alloc_.usedBytes();
}

} // namespace jvm
} // namespace javelin
