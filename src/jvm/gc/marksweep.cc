#include "jvm/gc/marksweep.hh"

#include "jvm/gc/marker.hh"
#include "jvm/gc/sweeper.hh"

namespace javelin {
namespace jvm {

MarkSweepCollector::MarkSweepCollector(const GcEnv &env)
    : Collector(env),
      alloc_(env.heap,
             Space("ms", env.heap.base(),
                   env.heap.size() & ~static_cast<std::uint64_t>(
                       FreeListAllocator::kBlockBytes - 1)))
{
}

Address
MarkSweepCollector::allocate(std::uint32_t bytes)
{
    std::uint32_t traffic = 0;
    // Size-class dispatch and free-list pop.
    chargeWork(9, kAllocCode);
    Address addr = alloc_.alloc(bytes, &traffic);
    if (addr == kNull) {
        collect(true);
        chargeWork(9, kAllocCode);
        addr = alloc_.alloc(bytes, &traffic);
        if (addr == kNull)
            return kNull;
    }
    // Free-list link chasing re-touches the popped cell.
    env_.system.cpu().loadBlock(addr, traffic, 0);
    stats_.bytesAllocated += bytes;
    ++stats_.objectsAllocated;
    return addr;
}

void
MarkSweepCollector::sweep()
{
    sweepFreeListSpace(env_, costs_, alloc_, stats_);
}

void
MarkSweepCollector::collect(bool major)
{
    (void)major;
    env_.host.gcBegin(true);
    const Tick start = env_.system.cpu().now();

    Marker marker(env_, costs_, stats_);
    marker.markFromRoots();
    sweep();

    ++stats_.collections;
    ++stats_.majorCollections;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(true);
}

std::uint64_t
MarkSweepCollector::heapUsed() const
{
    return alloc_.usedBytes();
}

} // namespace jvm
} // namespace javelin
