/**
 * @file
 * Kaffe's incremental, conservative, tri-colour mark-sweep collector
 * (paper Section IV-A).
 *
 * A marking cycle starts when heap occupancy crosses a trigger fraction.
 * Marking then proceeds in small increments piggybacked on allocation
 * (each allocation advances the collector by a few objects), with a
 * Dijkstra-style insertion write barrier keeping the tri-colour
 * invariant. When the gray set drains, roots are rescanned atomically
 * (the conservative stack scan) and the heap is swept. Objects
 * allocated during marking are born black.
 */

#ifndef JAVELIN_JVM_GC_INCREMENTAL_MS_HH
#define JAVELIN_JVM_GC_INCREMENTAL_MS_HH

#include <vector>

#include "jvm/freelist.hh"
#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * Incremental tri-colour mark-sweep (the Kaffe collector).
 */
class IncrementalMSCollector : public Collector
{
  public:
    struct Tuning
    {
        /** Start marking above this fraction of heap bytes in use. */
        double triggerFraction = 0.70;
        /** Objects traced per allocation while marking. */
        std::uint32_t stepObjects = 4;
    };

    explicit IncrementalMSCollector(const GcEnv &env);
    IncrementalMSCollector(const GcEnv &env, const Tuning &tuning);

    const char *name() const override { return "IncMS"; }
    Address allocate(std::uint32_t bytes) override;
    void writeBarrier(Address holder, Address slot_addr,
                      Address value) override;
    bool needsWriteBarrier() const override { return true; }
    void collect(bool major) override;
    std::uint64_t heapUsed() const override;

    /** Hook: objects allocated while marking are born black. */
    void postInit(Address obj) override;

    bool marking() const { return marking_; }
    const FreeListAllocator &allocator() const { return alloc_; }

  private:
    void startCycle();
    /** Trace up to n gray objects; finishes the cycle when drained. */
    void step(std::uint32_t n);
    /** Shade one reference gray if white. */
    void shade(Address ref);
    /** Scan one gray object, blackening it (reference oracle). */
    void scanObject(Address obj);
    /** Batched scanObject: identical v2 stream via the view memo. */
    void scanObjectFast(Address obj);
    /** Atomic finish: rescan roots, drain, sweep. */
    void finishCycle();
    void sweep();

    Tuning tuning_;
    FreeListAllocator alloc_;
    bool marking_ = false;
    std::vector<Address> gray_;
    std::vector<Address> children_;
    /** Deficit units accrued by shade/scan charges (fast drain). */
    std::uint64_t unitAcc_ = 0;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_INCREMENTAL_MS_HH
