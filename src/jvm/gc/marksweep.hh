/**
 * @file
 * Stop-the-world Mark-and-Sweep collector (paper Section III-B).
 *
 * Allocates from segregated fixed-size free lists; never moves objects.
 * Collection marks the live graph and then sweeps every carved block,
 * returning unmarked cells to their free lists. The sweep's streaming
 * walk over the whole heap is the main source of this collector's
 * characteristic memory-bound (low-power, on the P6) profile.
 */

#ifndef JAVELIN_JVM_GC_MARKSWEEP_HH
#define JAVELIN_JVM_GC_MARKSWEEP_HH

#include "jvm/freelist.hh"
#include "jvm/gc/collector.hh"

namespace javelin {
namespace jvm {

/**
 * Non-moving mark-sweep collector.
 */
class MarkSweepCollector : public Collector
{
  public:
    explicit MarkSweepCollector(const GcEnv &env);

    const char *name() const override { return "MarkSweep"; }
    Address allocate(std::uint32_t bytes) override;
    void collect(bool major) override;
    std::uint64_t heapUsed() const override;

    const FreeListAllocator &allocator() const { return alloc_; }

  private:
    /** Sweep all blocks, rebuilding the free lists. Charged. */
    void sweep();

    FreeListAllocator alloc_;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_MARKSWEEP_HH
