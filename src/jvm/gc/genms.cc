#include "jvm/gc/genms.hh"

#include <algorithm>

#include "jvm/gc/evacuator.hh"
#include "jvm/gc/marker.hh"
#include "jvm/gc/sweeper.hh"

namespace javelin {
namespace jvm {

namespace {

/** Largest multiple of the block size not above the given bytes. */
std::uint64_t
blockAlignDown(std::uint64_t bytes)
{
    return bytes & ~static_cast<std::uint64_t>(
        FreeListAllocator::kBlockBytes - 1);
}

} // namespace

GenMSCollector::GenMSCollector(const GcEnv &env)
    : Collector(env),
      nursery_("nursery", env.heap.base(), (env.heap.size() / 8) & ~7ULL),
      mature_(env.heap,
              Space("genms-mature", env.heap.base() + nursery_.size,
                    blockAlignDown(env.heap.size() - nursery_.size))),
      remset_(env.system)
{
    recomputeNurseryLimit();
}

void
GenMSCollector::recomputeNurseryLimit()
{
    nurseryLimit_ =
        std::min<std::uint64_t>(nursery_.size, mature_.freeBytes());
}

Address
GenMSCollector::matureAlloc(std::uint32_t bytes)
{
    std::uint32_t traffic = 0;
    const Address addr = mature_.alloc(bytes, &traffic);
    if (addr != kNull)
        env_.system.cpu().loadBlock(addr, traffic, 0);
    return addr;
}

Address
GenMSCollector::allocate(std::uint32_t bytes)
{
    if (oom_)
        return kNull;
    chargeWork(7, kAllocCode);

    if (bytes >= kPretenureBytes) {
        Address addr = matureAlloc(bytes);
        if (addr == kNull) {
            majorCollect();
            if (oom_)
                return kNull;
            addr = matureAlloc(bytes);
            if (addr == kNull)
                return kNull;
        }
        recomputeNurseryLimit();
        stats_.bytesAllocated += bytes;
        ++stats_.objectsAllocated;
        return addr;
    }

    for (int attempt = 0; attempt < 3; ++attempt) {
        if (nursery_.used() + bytes <= nurseryLimit_) {
            const Address addr = nursery_.bump(bytes);
            if (addr != kNull) {
                stats_.bytesAllocated += bytes;
                ++stats_.objectsAllocated;
                return addr;
            }
        }
        minorCollect();
        if (oom_)
            return kNull;
        if (nurseryLimit_ < std::max<std::uint64_t>(kMinNursery, bytes)) {
            majorCollect();
            if (oom_)
                return kNull;
        }
    }
    return kNull;
}

void
GenMSCollector::writeBarrier(Address holder, Address slot_addr,
                             Address value)
{
    if (env_.chargeBarrierCost)
        chargeWork(3, kBarrierCode);
    if (value == kNull || inNursery(holder) || !inNursery(value))
        return;
    ++stats_.barrierHits;
    ++stats_.remsetEntries;
    remset_.record(slot_addr);
}

bool
GenMSCollector::driveEvacuation(Evacuator &evac)
{
    env_.host.forEachRoot([&evac](Address &ref) {
        evac.processSlot(ref);
    });
    // Replaying the SSB reads the buffer back: charge one window load
    // per entry before walking the recorded slots.
    remset_.chargeReplayReads(env_.fastPath);
    Heap &heap = env_.heap;
    remset_.forEach([&](Address slot) {
        env_.system.cpu().load(slot);
        Address ref = heap.read64(slot);
        const Address before = ref;
        evac.processSlot(ref);
        if (ref != before) {
            env_.system.cpu().store(slot);
            heap.write64(slot, ref);
        }
    });
    evac.drain();
    return !evac.failed();
}

void
GenMSCollector::minorCollect()
{
    env_.host.gcBegin(false);
    const Tick start = env_.system.cpu().now();

    Evacuator evac(
        env_, costs_, stats_, MoveRegion::of(nursery_),
        [this](std::uint32_t bytes, std::uint32_t *traffic) {
            // The evacuator charges the reported free-list traffic at
            // the same event position matureAlloc historically did.
            return mature_.alloc(bytes, traffic);
        });

    if (!driveEvacuation(evac)) {
        // Mature free space could not absorb the survivors. Mark-sweep
        // the mature space and RESUME the same evacuation pass: the
        // gray queue still holds copied-but-unscanned objects whose
        // reference slots point into the nursery, so abandoning the
        // pass would leave dangling young pointers behind. Pending
        // copies are pinned as mark roots or the sweep could reclaim
        // them mid-flight.
        std::vector<Address> pending;
        evac.forEachPending([&](Address a) { pending.push_back(a); });
        markSweepMature(pending);
        evac.resetFailure();
        if (!driveEvacuation(evac))
            oom_ = true;
        if (oom_) {
            env_.host.gcEnd(false);
            return;
        }
    }

    remset_.clear();
    nursery_.reset();
    recomputeNurseryLimit();
    ++stats_.collections;
    ++stats_.minorCollections;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(false);

    if (nurseryLimit_ < kMinNursery)
        markSweepMature();
}

void
GenMSCollector::majorCollect()
{
    // Empty the nursery first so the mark-sweep pass only sees the
    // mature space (standard GenMS discipline).
    if (nursery_.used() > 0) {
        minorCollect();
        if (oom_)
            return;
    }
    markSweepMature();
}

void
GenMSCollector::markSweepMature(const std::vector<Address> &extra_roots)
{
    env_.host.gcBegin(true);
    const Tick start = env_.system.cpu().now();

    Marker marker(env_, costs_, stats_);
    for (const Address a : extra_roots)
        marker.processRef(a);
    marker.markFromRoots();

    // Sweep the mature free lists.
    sweepFreeListSpace(env_, costs_, mature_, stats_);

    // Entries whose holder cell was just swept are stale; processing
    // them later would scribble on free-list links. Entries into live
    // cells stay: a retrying minor collection still needs those
    // old-to-young edges.
    remset_.pruneIf([this](Address slot) {
        return !mature_.isWithinAllocatedCell(slot);
    });
    recomputeNurseryLimit();
    ++stats_.collections;
    ++stats_.majorCollections;
    stats_.pauseTicks += env_.system.cpu().now() - start;
    env_.host.gcEnd(true);
}

void
GenMSCollector::collect(bool major)
{
    if (major)
        majorCollect();
    else
        minorCollect();
}

std::uint64_t
GenMSCollector::heapUsed() const
{
    return nursery_.used() + mature_.usedBytes();
}

} // namespace jvm
} // namespace javelin
