/**
 * @file
 * Generational copying collector (GenCopy, paper Fig. 3).
 *
 * New objects allocate in a nursery; minor collections copy nursery
 * survivors into the mature space, which is itself managed as a pair of
 * semispaces collected by a full copying pass when it fills. A write
 * barrier records mature-to-nursery pointers in a sequential store
 * buffer. The nursery size adapts (Appel-style) so promotion can never
 * overflow the mature space mid-collection.
 */

#ifndef JAVELIN_JVM_GC_GENCOPY_HH
#define JAVELIN_JVM_GC_GENCOPY_HH

#include "jvm/gc/collector.hh"
#include "jvm/gc/remset.hh"

namespace javelin {
namespace jvm {

/**
 * Nursery + copying mature space.
 */
class GenCopyCollector : public Collector
{
  public:
    explicit GenCopyCollector(const GcEnv &env);

    const char *name() const override { return "GenCopy"; }
    Address allocate(std::uint32_t bytes) override;
    void writeBarrier(Address holder, Address slot_addr,
                      Address value) override;
    bool needsWriteBarrier() const override { return true; }
    void collect(bool major) override;
    std::uint64_t heapUsed() const override;

    const Space &nursery() const { return nursery_; }
    const Space &matureActive() const { return mature_[activeHalf_]; }
    const RememberedSet &remset() const { return remset_; }
    std::uint64_t nurseryLimit() const { return nurseryLimit_; }

  private:
    void minorCollect();
    void majorCollect();
    void recomputeNurseryLimit();
    bool inNursery(Address a) const { return nursery_.contains(a); }

    /** Objects at least this large are allocated directly in mature. */
    static constexpr std::uint32_t kPretenureBytes = 4096;
    /** Smallest useful nursery before a major collection is forced. */
    static constexpr std::uint64_t kMinNursery = 32 * 1024;

    Space nursery_;
    Space mature_[2];
    int activeHalf_ = 0;
    std::uint64_t nurseryLimit_ = 0;
    RememberedSet remset_;
    bool oom_ = false;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_GENCOPY_HH
