#include "jvm/gc/remset.hh"

namespace javelin {
namespace jvm {

RememberedSet::RememberedSet(sim::System &system)
    : system_(system)
{
    slots_.reserve(4096);
}

void
RememberedSet::record(Address slot_addr)
{
    const Address buf =
        kSsbBase + (slots_.size() % kSsbWindowSlots) * sizeof(Address);
    system_.cpu().store(buf);
    slots_.push_back(slot_addr);
}

} // namespace jvm
} // namespace javelin
