#include "jvm/gc/remset.hh"

namespace javelin {
namespace jvm {

RememberedSet::RememberedSet(sim::System &system)
    : system_(system)
{
    slots_.reserve(4096);
}

} // namespace jvm
} // namespace javelin
