/**
 * @file
 * Garbage collector framework.
 *
 * Javelin implements the paper's full collector matrix (Fig. 3):
 * non-generational SemiSpace and MarkSweep, generational GenCopy and
 * GenMS (Jikes RVM / JMTk family), plus Kaffe's incremental conservative
 * tri-colour mark-sweep. Collectors operate on the *simulated* heap:
 * every header touch, copy, mark and sweep turns into cache traffic and
 * cycles on the CPU model, so per-collector power/energy behaviour is an
 * emergent property rather than a scripted constant.
 */

#ifndef JAVELIN_JVM_GC_COLLECTOR_HH
#define JAVELIN_JVM_GC_COLLECTOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "jvm/object_model.hh"
#include "sim/system.hh"

namespace javelin {
namespace jvm {

/**
 * Per-operation micro-op charges for collector work, calibrated to
 * JMTk-era tracing rates (every edge goes through plan dispatch, TIB
 * interrogation and bounds/state tests, putting tracing at several
 * cycles per byte — see Blackburn et al., SIGMETRICS'04). GC code is
 * dominated by short dependent chains, so a stall factor models its
 * inherently low ILP (the paper measures GC IPC ~0.55 vs ~0.8 for the
 * application).
 */
namespace gc_costs {
constexpr std::uint32_t kCopyPerObject = 80;
constexpr std::uint32_t kCopyPer16Bytes = 8;
constexpr std::uint32_t kScanPerObject = 12;
constexpr std::uint32_t kScanPerSlot = 28;
constexpr std::uint32_t kMarkPerObject = 40;
constexpr std::uint32_t kMarkPerEdge = 26;
constexpr std::uint32_t kSweepPerCell = 12;
/**
 * Static code footprint charged per copy invocation (two fetch lines:
 * dispatch prologue + the 16-byte move loop). The copy routine is
 * compact and stays fetch-resident across objects; the historical
 * uops*4 span charged instruction fetch proportional to the *data*
 * moved — an artifact the v2 cost tables remove (DESIGN.md §5e).
 * Retired micro-ops are unchanged.
 */
constexpr std::uint32_t kCopyCodeBytes = 128;
} // namespace gc_costs

/** Charge GC bookkeeping work (micro-ops plus dependence stalls). */
void chargeGcWork(sim::System &system, std::uint32_t micro_ops,
                  Address code_addr);

/** Indices into GcCostTable::specs, one per fixed-cost GC charge. */
enum GcPhaseSpec : std::uint8_t
{
    kSpecMarkObject = 0, ///< gc_costs::kMarkPerObject at kGcMarkCode
    kSpecMarkEdge,       ///< gc_costs::kMarkPerEdge at kGcMarkCode
    kSpecScanObject,     ///< gc_costs::kScanPerObject at kGcScanCode
    kSpecScanSlot,       ///< gc_costs::kScanPerSlot at kGcScanCode
    kSpecSweepCell,      ///< gc_costs::kSweepPerCell at kGcSweepCode
    kNumPhaseSpecs,
};

/**
 * Per-phase precomputed cost table (DESIGN.md §5e, mirroring the
 * interpreter's tier tables): each gc_costs::k* constant folded
 * together with its component code address, its static code footprint
 * (micro_ops * 4 bytes, as chargeGcWork always passed) and the
 * dependence-stall product micro_ops * gcStallPerUop.
 *
 * charge(cpu, s, 1) is bit-identical to one historical
 * chargeGcWork(uops, addr) call: identical execute() operands and an
 * identical stall summand (stallPerItem * 1.0 == stallPerItem).
 * charge(cpu, s, n) for n > 1 is the v2 *folded* form — one execute of
 * n items' micro-ops over one loop-body fetch span, one stall of the
 * prefolded product times n. Folding is an intentional model change
 * (batch the per-edge bookkeeping dispatch at object/block
 * granularity); see DESIGN.md §5e for the delta statement and the
 * golden-refresh protocol.
 */
struct GcCostTable
{
    struct PhaseCost
    {
        std::uint32_t uops = 0;      ///< micro-ops per item
        std::uint32_t codeBytes = 0; ///< loop-body footprint (uops * 4)
        Address codeAddr = 0;
        double stallPerItem = 0.0;   ///< uops * gcStallPerUop, prefolded
    };

    PhaseCost specs[kNumPhaseSpecs];
    /** gcStallPerUop, for the size-dependent copy charge. */
    double stallPerUop = 0.0;

    /** Charge `count` items of phase `s` as one execute + one stall. */
    void
    charge(sim::CpuModel &cpu, GcPhaseSpec s, std::uint32_t count) const
    {
        const PhaseCost &c = specs[s];
        cpu.execute(c.uops * count, c.codeAddr, c.codeBytes);
        cpu.stall(c.stallPerItem * static_cast<double>(count));
    }

    /**
     * Copy-path bookkeeping for one object of `size` bytes: plan
     * dispatch, TIB interrogation, size decode, cursor update,
     * forwarding-word CAS. Micro-op count and stall are the historical
     * per-object products; the fetch span is the fixed
     * gc_costs::kCopyCodeBytes routine footprint.
     */
    void
    chargeCopy(sim::CpuModel &cpu, std::uint32_t size) const
    {
        const std::uint32_t uops =
            gc_costs::kCopyPerObject +
            (size / 16) * gc_costs::kCopyPer16Bytes;
        cpu.execute(uops, kGcCopyCode, gc_costs::kCopyCodeBytes);
        cpu.stall(static_cast<double>(uops) * stallPerUop);
    }

    /** Deficit units consumed by a charge of `total_uops` micro-ops
     *  (see gcPollFreeUnits): one unit per started 64-uop chunk. */
    static std::uint64_t
    chargeUnits(std::uint32_t total_uops)
    {
        return 1 + total_uops / 64;
    }

    static GcCostTable make(const sim::System &system);
};

/**
 * How many deficit units of GC work can run before the next periodic
 * task could possibly come due (same conservative-bound technique as
 * Interpreter::pollFreeIterations / doNativeWork). A unit is one data
 * access or one execute of at most 64 micro-ops; folded charges count
 * GcCostTable::chargeUnits. Zero means a task is already due. Polls
 * skipped while the consumed units stay under this budget are provably
 * no-ops; see DESIGN.md §5e for the argument.
 */
std::uint64_t gcPollFreeUnits(sim::System &system);

/** Default for GcEnv::fastPath: true unless JAVELIN_GC_NO_FAST_PATH is
 *  set in the environment (checked once). */
bool gcFastPathDefault();

/** The collector algorithms of paper Fig. 3 (plus Kaffe's). */
enum class CollectorKind
{
    SemiSpace,
    MarkSweep,
    GenCopy,
    GenMS,
    IncrementalMS,
};

const char *collectorName(CollectorKind kind);

/**
 * Interface the collector uses to reach the VM: root enumeration and
 * component bracketing (the Jikes scheduler writes the GC component ID
 * when it dispatches the collector thread; Kaffe brackets inline).
 */
class GcHost
{
  public:
    virtual ~GcHost() = default;

    /**
     * Visit every root slot. The visitor may update the slot (copying
     * collectors). Implementations charge root-scan traffic themselves.
     */
    virtual void forEachRoot(const std::function<void(Address &)> &fn) = 0;

    /** Called when a collection (or increment) begins. */
    virtual void gcBegin(bool major) = 0;

    /** Called when a collection (or increment) ends. */
    virtual void gcEnd(bool major) = 0;
};

/** Everything a collector needs to operate. */
struct GcEnv
{
    Heap &heap;
    ObjectModel &om;
    sim::System &system;
    GcHost &host;
    /** Charge the mutator for write-barrier work (ablation A2 turns the
     *  cost off while keeping the remembered sets correct). */
    bool chargeBarrierCost = true;
    /**
     * Use the batched fast paths (host-side graph walk + exact event
     * replay, DESIGN.md §5e). Off = the historical per-word reference
     * paths, kept as the oracle for tests/test_gc_diff.cc. Both produce
     * bit-identical architectural events and joules.
     */
    bool fastPath = gcFastPathDefault();
};

/**
 * Abstract collector.
 */
class Collector
{
  public:
    struct Stats
    {
        std::uint64_t collections = 0;
        std::uint64_t minorCollections = 0;
        std::uint64_t majorCollections = 0;
        Tick pauseTicks = 0;
        std::uint64_t bytesAllocated = 0;
        std::uint64_t objectsAllocated = 0;
        std::uint64_t bytesCopied = 0;
        std::uint64_t objectsCopied = 0;
        std::uint64_t objectsMarked = 0;
        std::uint64_t bytesFreed = 0;
        std::uint64_t barrierHits = 0;
        std::uint64_t remsetEntries = 0;
    };

    explicit Collector(const GcEnv &env)
        : env_(env), costs_(GcCostTable::make(env.system))
    {
    }
    virtual ~Collector() = default;

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    virtual const char *name() const = 0;

    /**
     * Allocate raw object storage (header included, 8-byte aligned).
     * Triggers collection on exhaustion; returns 0 only when the heap
     * is truly out of memory.
     */
    virtual Address allocate(std::uint32_t bytes) = 0;

    /**
     * Reference-store barrier hook. Called for every PutRef/PutRefElem
     * (and PutStatic in generational configurations does not need it:
     * statics are scanned as roots at every collection).
     */
    virtual void
    writeBarrier(Address holder, Address slot_addr, Address value)
    {
        (void)holder;
        (void)slot_addr;
        (void)value;
    }

    /** True if the mutator must invoke writeBarrier on ref stores. */
    virtual bool needsWriteBarrier() const { return false; }

    /**
     * Called after a fresh object's header has been initialized
     * (IncrementalMS uses it to allocate black during marking).
     */
    virtual void postInit(Address obj) { (void)obj; }

    /** Explicit collection trigger (tests, thermal-aware GC policy). */
    virtual void collect(bool major) = 0;

    /** Bytes currently considered live-or-allocated. */
    virtual std::uint64_t heapUsed() const = 0;

    const Stats &stats() const { return stats_; }

  protected:
    /** Charge GC bookkeeping micro-ops at a VM-code address. */
    void
    chargeWork(std::uint32_t micro_ops, Address code_addr)
    {
        env_.system.cpu().execute(micro_ops, code_addr, micro_ops * 4);
    }

    /** Record the pause and keep periodic samplers running. */
    void pollSamplers() { env_.system.poll(); }

    GcEnv env_;
    /** Precomputed per-phase charges for this platform. */
    GcCostTable costs_;
    Stats stats_;
};

/** Create a collector over a fresh heap. */
std::unique_ptr<Collector> makeCollector(CollectorKind kind,
                                         const GcEnv &env);

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_COLLECTOR_HH
