/**
 * @file
 * Generational mark-sweep collector (GenMS, paper Fig. 3).
 *
 * Nursery allocation and promotion are identical in spirit to GenCopy,
 * but the mature space is a non-moving segregated free-list space
 * collected by mark-sweep when it fills. Combines the cheap minor
 * collections of a generational design with mark-sweep's space
 * efficiency (no copy reserve) in the old generation.
 */

#ifndef JAVELIN_JVM_GC_GENMS_HH
#define JAVELIN_JVM_GC_GENMS_HH

#include <vector>

#include "jvm/freelist.hh"
#include "jvm/gc/collector.hh"
#include "jvm/gc/evacuator.hh"
#include "jvm/gc/remset.hh"

namespace javelin {
namespace jvm {

/**
 * Nursery + mark-sweep mature space.
 */
class GenMSCollector : public Collector
{
  public:
    explicit GenMSCollector(const GcEnv &env);

    const char *name() const override { return "GenMS"; }
    Address allocate(std::uint32_t bytes) override;
    void writeBarrier(Address holder, Address slot_addr,
                      Address value) override;
    bool needsWriteBarrier() const override { return true; }
    void collect(bool major) override;
    std::uint64_t heapUsed() const override;

    const Space &nursery() const { return nursery_; }
    const FreeListAllocator &mature() const { return mature_; }
    const RememberedSet &remset() const { return remset_; }
    std::uint64_t nurseryLimit() const { return nurseryLimit_; }

  private:
    void minorCollect();
    void majorCollect();
    /** Mark-sweep the mature space only (no nursery preamble).
     *  extra_roots pins objects that are mid-evacuation. */
    void markSweepMature(const std::vector<Address> &extra_roots = {});
    /** Drive one evacuation pass over roots + remset + gray queue. */
    bool driveEvacuation(Evacuator &evac);
    void recomputeNurseryLimit();
    bool inNursery(Address a) const { return nursery_.contains(a); }
    Address matureAlloc(std::uint32_t bytes);

    static constexpr std::uint32_t kPretenureBytes = 4096;
    static constexpr std::uint64_t kMinNursery = 32 * 1024;

    Space nursery_;
    FreeListAllocator mature_;
    std::uint64_t nurseryLimit_ = 0;
    RememberedSet remset_;
    bool oom_ = false;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_GENMS_HH
