/**
 * @file
 * Remembered set for the generational collectors: a sequential store
 * buffer (SSB) of mature-space slot addresses that may hold references
 * into the nursery. The write barrier appends to it; minor collections
 * treat its entries as roots and then clear it.
 */

#ifndef JAVELIN_JVM_GC_REMSET_HH
#define JAVELIN_JVM_GC_REMSET_HH

#include <vector>

#include "jvm/address.hh"
#include "sim/system.hh"

namespace javelin {
namespace jvm {

/**
 * Sequential store buffer of interesting slots.
 */
class RememberedSet
{
  public:
    explicit RememberedSet(sim::System &system);

    /** Append one slot address (charges the SSB buffer store). */
    void record(Address slot_addr);

    std::size_t size() const { return slots_.size(); }
    bool empty() const { return slots_.empty(); }

    /** Visit every recorded slot. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Address slot : slots_)
            fn(slot);
    }

    void clear() { slots_.clear(); }

    /** Drop entries matching a predicate (stale-slot pruning). */
    template <typename Pred>
    void
    pruneIf(Pred &&pred)
    {
        std::erase_if(slots_, pred);
    }

  private:
    /** Simulated location of the SSB buffer itself. */
    static constexpr Address kSsbBase = kNativeBase + 0x200000;
    /** The buffer wraps within this window for cache purposes. */
    static constexpr std::size_t kSsbWindowSlots = 8192;

    sim::System &system_;
    std::vector<Address> slots_;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_REMSET_HH
