/**
 * @file
 * Remembered set for the generational collectors: a sequential store
 * buffer (SSB) of mature-space slot addresses that may hold references
 * into the nursery. The write barrier appends to it; minor collections
 * treat its entries as roots and then clear it.
 */

#ifndef JAVELIN_JVM_GC_REMSET_HH
#define JAVELIN_JVM_GC_REMSET_HH

#include <vector>

#include "jvm/address.hh"
#include "sim/system.hh"

namespace javelin {
namespace jvm {

/**
 * Sequential store buffer of interesting slots.
 */
class RememberedSet
{
  public:
    explicit RememberedSet(sim::System &system);

    /** Append one slot address (charges the SSB buffer store). */
    void
    record(Address slot_addr)
    {
        // SSB cursor wrap: the window is a power of two, so the wrap
        // is a mask and the slot scaling a shift (bit-identical values
        // to the historical % / sizeof multiply, minus the division).
        const Address buf =
            kSsbBase +
            ((slots_.size() & (kSsbWindowSlots - 1)) << kSlotShift);
        system_.cpu().store(buf);
        slots_.push_back(slot_addr);
    }

    /**
     * Charge the SSB read traffic of replaying the buffer: one load
     * per recorded entry, at the same wrapping window address the
     * entry's record() stored to. The batched form issues them through
     * CpuModel::loadWindowBlock; the reference form is the per-entry
     * loop. Both are event-for-event identical. Call once per replay
     * (minor-collection remset walk), before visiting the slots.
     */
    void
    chargeReplayReads(bool batched)
    {
        const auto n = static_cast<std::uint32_t>(slots_.size());
        constexpr std::uint64_t kWindowMask =
            (static_cast<std::uint64_t>(kSsbWindowSlots) << kSlotShift) - 1;
        if (batched) {
            system_.cpu().loadWindowBlock(n, kSsbBase, 0, kWindowMask,
                                          sizeof(Address));
        } else {
            std::uint64_t cursor = 0;
            for (std::uint32_t i = 0; i < n; ++i) {
                system_.cpu().load(kSsbBase + (cursor & kWindowMask));
                cursor += sizeof(Address);
            }
        }
    }

    std::size_t size() const { return slots_.size(); }
    bool empty() const { return slots_.empty(); }

    /** Visit every recorded slot. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Address slot : slots_)
            fn(slot);
    }

    void clear() { slots_.clear(); }

    /** Drop entries matching a predicate (stale-slot pruning). */
    template <typename Pred>
    void
    pruneIf(Pred &&pred)
    {
        std::erase_if(slots_, pred);
    }

  private:
    /** Simulated location of the SSB buffer itself. */
    static constexpr Address kSsbBase = kNativeBase + 0x200000;
    /** The buffer wraps within this window for cache purposes. */
    static constexpr std::size_t kSsbWindowSlots = 8192;
    static_assert((kSsbWindowSlots & (kSsbWindowSlots - 1)) == 0,
                  "SSB window must be a power of two (shift/mask wrap)");
    /** log2(sizeof(Address)): slot index -> byte offset. */
    static constexpr unsigned kSlotShift = 3;
    static_assert(sizeof(Address) == 1u << kSlotShift);

    sim::System &system_;
    std::vector<Address> slots_;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_GC_REMSET_HH
