/**
 * @file
 * The simulated Java heap: a contiguous range of simulated addresses
 * backed by host memory, carved into Spaces by the collectors.
 *
 * Heap accessors here are *untimed* — they move bytes only. All cache
 * and cycle accounting is done by the callers (ObjectModel, allocators,
 * collectors) through the CpuModel, so the timing and the data paths
 * stay independently testable.
 */

#ifndef JAVELIN_JVM_HEAP_HH
#define JAVELIN_JVM_HEAP_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "jvm/address.hh"
#include "util/logging.hh"

namespace javelin {
namespace jvm {

/**
 * Backing store for the simulated heap.
 */
class Heap
{
  public:
    explicit Heap(std::uint64_t bytes);

    Address base() const { return kHeapBase; }
    std::uint64_t size() const { return mem_.size(); }
    Address end() const { return kHeapBase + mem_.size(); }

    bool
    contains(Address addr) const
    {
        return addr >= kHeapBase && addr < end();
    }

    /** Host pointer for a simulated address. */
    std::uint8_t *
    ptr(Address addr)
    {
        JAVELIN_ASSERT(contains(addr), "heap access out of range: ", addr);
        return mem_.data() + (addr - kHeapBase);
    }

    const std::uint8_t *
    ptr(Address addr) const
    {
        JAVELIN_ASSERT(contains(addr), "heap access out of range: ", addr);
        return mem_.data() + (addr - kHeapBase);
    }

    std::uint64_t
    read64(Address addr) const
    {
        std::uint64_t v;
        std::memcpy(&v, ptr(addr), sizeof(v));
        return v;
    }

    void
    write64(Address addr, std::uint64_t v)
    {
        std::memcpy(ptr(addr), &v, sizeof(v));
    }

    std::uint32_t
    read32(Address addr) const
    {
        std::uint32_t v;
        std::memcpy(&v, ptr(addr), sizeof(v));
        return v;
    }

    void
    write32(Address addr, std::uint32_t v)
    {
        std::memcpy(ptr(addr), &v, sizeof(v));
    }

    /** Copy a block within the heap (regions must not overlap). */
    void
    copyBlock(Address dst, Address src, std::uint32_t bytes)
    {
        JAVELIN_ASSERT(dst + bytes <= end() && src + bytes <= end(),
                       "copyBlock out of range");
        std::memcpy(ptr(dst), ptr(src), bytes);
    }

    void
    zero(Address addr, std::uint32_t bytes)
    {
        JAVELIN_ASSERT(addr + bytes <= end(), "zero out of range");
        std::memset(ptr(addr), 0, bytes);
    }

  private:
    std::vector<std::uint8_t> mem_;
};

/**
 * A contiguous region of the heap with an optional bump cursor.
 */
struct Space
{
    std::string name;
    Address start = 0;
    std::uint64_t size = 0;
    Address cursor = 0;

    Space() = default;
    Space(std::string n, Address s, std::uint64_t sz)
        : name(std::move(n)), start(s), size(sz), cursor(s)
    {
    }

    Address end() const { return start + size; }
    bool
    contains(Address addr) const
    {
        return addr >= start && addr < end();
    }
    std::uint64_t used() const { return cursor - start; }
    std::uint64_t freeBytes() const { return end() - cursor; }
    void reset() { cursor = start; }

    /** Bump-allocate; returns 0 if the space is exhausted. */
    Address
    bump(std::uint32_t bytes)
    {
        if (cursor + bytes > end())
            return kNull;
        const Address addr = cursor;
        cursor += bytes;
        return addr;
    }
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_HEAP_HH
