#include "jvm/jvm.hh"

#include "util/logging.hh"

namespace javelin {
namespace jvm {

const char *
vmKindName(VmKind kind)
{
    switch (kind) {
      case VmKind::Jikes:
        return "JikesRVM";
      case VmKind::Kaffe:
        return "Kaffe";
    }
    JAVELIN_PANIC("bad vm kind");
}

Interpreter::Config
interpConfigFor(VmKind kind)
{
    Interpreter::Config c;
    c.compileOnInvoke =
        kind == VmKind::Kaffe ? Tier::Jitted : Tier::Baseline;
    return c;
}

namespace {

/**
 * Loader config with the platform factored in: on the DBPXA255 class
 * files come out of FLASH through JAR decompression (cf. Farkas et al.
 * on pocket-device JVMs), making each class load far more expensive
 * than on the P6 workstation.
 */
ClassLoader::Config
loaderConfigForPlatform(VmKind kind, const Program &program,
                        sim::PlatformKind platform)
{
    ClassLoader::Config c = loaderConfigFor(kind, program);
    if (platform == sim::PlatformKind::Pxa255)
        c.costFactor *= 7.0;
    return c;
}

} // namespace

ClassLoader::Config
loaderConfigFor(VmKind kind, const Program &program)
{
    ClassLoader::Config c;
    if (kind == VmKind::Jikes) {
        // System classes are merged with the JVM binary (Section VI-E).
        c.bootClassesPreloaded = true;
        c.bootClassCount = program.bootClassCount;
        c.costFactor = 1.0;
    } else {
        // Kaffe loads everything lazily and its class-file parser is
        // slower, generating many more CL calls during initialization.
        c.bootClassesPreloaded = false;
        c.bootClassCount = program.bootClassCount;
        c.costFactor = 1.4;
        c.eagerLoadProbability = 0.45;
    }
    return c;
}

Jvm::Jvm(sim::System &system, const Program &program,
         const JvmConfig &config)
    : Jvm(system, program, config, nullptr)
{
}

Jvm::Jvm(sim::System &system, const Program &program,
         const JvmConfig &config, core::ComponentPort &shared_port)
    : Jvm(system, program, config, &shared_port)
{
}

Jvm::Jvm(sim::System &system, const Program &program,
         const JvmConfig &config, core::ComponentPort *shared_port)
    : system_(system), program_(program), config_(config),
      ownedPort_(shared_port
                     ? nullptr
                     : std::make_unique<core::ComponentPort>(
                           system, core::ComponentPort::Config{
                                       2.0, config.chargePortWrites})),
      port_(shared_port ? *shared_port : *ownedPort_),
      heap_(config.heapBytes),
      om_(heap_, system.cpu(), program.classes),
      loader_(system, port_, program,
              loaderConfigForPlatform(config.kind, program,
                                      system.spec().kind),
              program.randSeed ^ 1),
      compiler_(system, port_),
      statics_(system, program.numStatics),
      methodRt_(program.methods.size())
{
    // A Kaffe VM compiles through its JIT; guard against configs that
    // forgot to derive the interpreter settings from the personality.
    if (config_.kind == VmKind::Kaffe &&
        config_.interp.compileOnInvoke == Tier::Baseline)
        config_.interp.compileOnInvoke = Tier::Jitted;

    const GcEnv env{heap_, om_, system_, *this,
                    config_.chargeBarrierCost, gcFastPathDefault()};
    collector_ = makeCollector(config_.collector, env);

    engine_ = std::make_unique<Interpreter>(
        system_, port_, program_, om_, *collector_, loader_, compiler_,
        methodRt_, statics_, config_.interp);
    engine_->onQuantum = [this] {
        serviceQuantum();
        if (yieldEachQuantum_)
            engine_->requestYield();
    };

    if (config_.kind == VmKind::Jikes && config_.adaptiveOptimization) {
        system_.addPeriodicTask("adaptive-sampler", config_.sampleInterval,
                                [this](Tick now) { adaptiveSample(now); });
    }
}

Jvm::~Jvm() = default;

void
Jvm::chargeSchedulerDispatch()
{
    // Thread-scheduler dispatch path: save/restore, queue manipulation,
    // and the component-ID write the paper adds to the Jikes scheduler.
    core::ComponentScope scope(port_, core::ComponentId::Scheduler);
    system_.cpu().execute(40, kSchedulerCode, 160);
    system_.cpu().store(kStackBase + 0x10000);
}

void
Jvm::gcBegin(bool major)
{
    (void)major;
    // Jikes runs collections on the GC thread: dispatching it goes
    // through the scheduler. Kaffe brackets inline (its increments are
    // too short for a thread switch).
    if (config_.kind == VmKind::Jikes)
        chargeSchedulerDispatch();
    port_.push(core::ComponentId::Gc);
}

void
Jvm::gcEnd(bool major)
{
    (void)major;
    port_.pop();
    if (config_.kind == VmKind::Jikes)
        chargeSchedulerDispatch();
}

void
Jvm::forEachRoot(const std::function<void(Address &)> &fn)
{
    sim::CpuModel &cpu = system_.cpu();

    // Statics table: every slot is scanned.
    for (std::uint32_t i = 0; i < statics_.count(); ++i) {
        cpu.load(statics_.slotAddr(i));
        Address &slot = statics_.slotHost(i);
        const Address before = slot;
        fn(slot);
        if (slot != before)
            cpu.store(statics_.slotAddr(i));
    }

    // Thread stacks: every live reference register.
    std::size_t idx = 0;
    engine_->forEachStackRoot([&](Address &ref) {
        cpu.load(kStackBase + idx * kSlotBytes);
        const Address before = ref;
        fn(ref);
        if (ref != before)
            cpu.store(kStackBase + idx * kSlotBytes);
        ++idx;
    });
}

void
Jvm::adaptiveSample(Tick now)
{
    (void)now;
    if (!running_ || !onCpu_)
        return;
    // Timer-driven method sampling plus the controller-thread decision
    // logic (measured at <1% of execution in the paper; we keep it
    // visible under the Scheduler component).
    core::ComponentScope scope(port_, core::ComponentId::Scheduler);
    system_.cpu().execute(25, kSchedulerCode + 0x400, 100);

    const MethodId mid = engine_->currentMethod();
    MethodRuntime &rt = methodRt_[mid];
    ++rt.samples;
    if (rt.tier == Tier::Baseline && !rt.optRequested &&
        rt.samples >= config_.hotSampleThreshold) {
        rt.optRequested = true;
        compiler_.optCompileStart(program_.methods[mid], rt);
        optQueue_.push_back(mid);
    }
}

void
Jvm::serviceQuantum()
{
    if (optQueue_.empty())
        return;
    // Dispatch the optimizing-compiler thread for one slice.
    chargeSchedulerDispatch();
    {
        core::ComponentScope scope(port_, core::ComponentId::OptCompiler);
        const MethodId mid = optQueue_.front();
        if (compiler_.optCompileStep(program_.methods[mid], methodRt_[mid],
                                     config_.optSliceUnits))
            optQueue_.pop_front();
    }
    chargeSchedulerDispatch();
}

void
Jvm::beginService()
{
    serviceStartTick_ = system_.cpu().now();
    port_.rawWrite(core::ComponentId::App);
    running_ = true;

    // Kaffe has a long initialization period characterized by a high
    // number of calls to the class loader: system classes are loaded
    // through the normal lazy path at VM startup (Section VI-E).
    if (config_.kind == VmKind::Kaffe) {
        for (ClassId id = 0; id < program_.bootClassCount; ++id)
            loader_.ensureLoaded(id);
    }
}

void
Jvm::startRequest()
{
    engine_->start(program_.entry);
}

bool
Jvm::runRequestSlice()
{
    const bool finished = engine_->runSlice();
    if (finished)
        lastReturnValue_ = engine_->result();
    return finished;
}

RunResult
Jvm::endService()
{
    running_ = false;
    RunResult res;
    res.startTick = serviceStartTick_;
    res.returnValue = lastReturnValue_;
    res.endTick = system_.cpu().now();
    res.bytecodesExecuted = engine_->bytecodesExecuted();
    res.gc = collector_->stats();
    res.classesLoaded = loader_.classesLoaded();
    res.methodsCompiled = compiler_.methodsCompiled();
    res.methodsOptimized = compiler_.methodsOptimized();
    return res;
}

RunResult
Jvm::run()
{
    beginService();

    bool oom = false, so = false;
    try {
        startRequest();
        while (!runRequestSlice()) {
        }
    } catch (const OutOfMemoryError &) {
        oom = true;
    } catch (const StackOverflowError &) {
        so = true;
    }

    RunResult res = endService();
    res.outOfMemory = oom;
    res.stackOverflow = so;
    return res;
}

} // namespace jvm
} // namespace javelin
