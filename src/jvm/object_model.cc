#include "jvm/object_model.hh"

namespace javelin {
namespace jvm {

ObjectModel::ObjectModel(Heap &heap, sim::CpuModel &cpu,
                         const std::vector<ClassInfo> &classes)
    : heap_(heap), cpu_(cpu), classes_(classes)
{
}

std::uint32_t
ObjectModel::objectBytes(const ClassInfo &cls, std::uint32_t array_len) const
{
    if (cls.isArray())
        return alignUp(ClassInfo::arrayBytes(array_len));
    return alignUp(cls.instanceBytes());
}

void
ObjectModel::initObject(Address obj, const ClassInfo &cls,
                        std::uint32_t total_bytes, std::uint32_t array_len)
{
    invalidateView(obj);
    heap_.write32(obj + kClassIdOffset, cls.id);
    heap_.write32(obj + kSizeOffset, total_bytes);
    heap_.write32(obj + kGcBitsOffset, 0);
    heap_.write32(obj + kAuxOffset, array_len);
    heap_.zero(obj + kHeaderBytes, total_bytes - kHeaderBytes);

    // Header store plus cache-line-granular zeroing traffic.
    cpu_.store(obj);
    cpu_.storeBlock(obj + 64, (total_bytes - 1) / 64, 64);
}

std::uint32_t
ObjectModel::loadClassId(Address obj)
{
    cpu_.load(obj + kClassIdOffset);
    return heap_.read32(obj + kClassIdOffset);
}

std::uint32_t
ObjectModel::loadSize(Address obj)
{
    cpu_.load(obj + kSizeOffset);
    return heap_.read32(obj + kSizeOffset);
}

void
ObjectModel::copyObject(Address dst, Address src, std::uint32_t bytes)
{
    invalidateView(dst);
    heap_.copyBlock(dst, src, bytes);
    cpu_.copyBlock(dst, src, bytes);
}

void
ObjectModel::setForwarding(Address obj, Address to)
{
    invalidateView(obj);
    heap_.write32(obj + kGcBitsOffset,
                  heap_.read32(obj + kGcBitsOffset) | kForwardedBit);
    heap_.write64(obj + kClassIdOffset, to);
    cpu_.store(obj);
}

Address
ObjectModel::loadForwarding(Address obj)
{
    cpu_.load(obj);
    return heap_.read64(obj + kClassIdOffset);
}

Address
ObjectModel::forwardingRaw(Address obj) const
{
    return heap_.read64(obj + kClassIdOffset);
}

const ObjectView &
ObjectModel::viewSlow(Address obj)
{
    const std::uint32_t id = heap_.read32(obj + kClassIdOffset);
    JAVELIN_ASSERT(id < classes_.size(), "corrupt object header at ", obj);
    const ClassInfo &cls = classes_[id];
    ObjectView v;
    v.obj = obj;
    v.ptr = heap_.ptr(obj);
    v.cls = &cls;
    v.size = heap_.read32(obj + kSizeOffset);
    const std::uint32_t aux = heap_.read32(obj + kAuxOffset);
    v.refs = cls.isRefArray ? aux : (cls.isScalarArray ? 0 : cls.refFields);
    v.scalars =
        cls.isScalarArray ? aux : (cls.isRefArray ? 0 : cls.scalarFields);
    // Evict the runner-up, promote the new decode to MRU.
    view_[1] = view_[0];
    view_[0] = v;
    return view_[0];
}

std::uint32_t
ObjectModel::scalarCountRaw(Address obj) const
{
    const ClassInfo &cls = classOfRaw(obj);
    if (cls.isScalarArray)
        return auxRaw(obj);
    if (cls.isRefArray)
        return 0;
    return cls.scalarFields;
}

} // namespace jvm
} // namespace javelin
