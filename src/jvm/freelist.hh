/**
 * @file
 * Segregated-fit free-list allocator used by the mark-sweep spaces.
 *
 * The paper's MarkSweep collector "uses a list of available fixed-size
 * memory chunks to allocate new objects" (Section III-B). This allocator
 * carves the space into 16 KiB blocks, assigns each block a size class,
 * and threads free cells of each class onto in-heap singly-linked free
 * lists (the next pointer lives in the first word of the free cell, as
 * in real segregated-fit allocators, so allocation and sweeping generate
 * genuine heap traffic).
 *
 * Free lists are per block (as in MMTk-style block-structured
 * mark-sweep): each block owns the list of its own free cells, and each
 * size class keeps an intrusive list of blocks with something on their
 * list. Two properties fall out of that structure (DESIGN.md §5f):
 *
 *  - free cells survive across collections — a sweep appends newly-dead
 *    cells to the surviving lists instead of rebuilding from scratch,
 *    so a cell freed in one cycle and not reused before the next no
 *    longer leaks;
 *  - a block whose cells are all free at the end of a sweep is retired
 *    to a *virgin pool* (endSweep) and can be re-carved later for any
 *    size class, so one class's historical peak no longer ratchets the
 *    space another class could use.
 */

#ifndef JAVELIN_JVM_FREELIST_HH
#define JAVELIN_JVM_FREELIST_HH

#include <array>
#include <cstdint>
#include <vector>

#include "jvm/heap.hh"

namespace javelin {
namespace jvm {

/**
 * Block-structured segregated-fit allocator over one Space.
 */
class FreeListAllocator
{
  public:
    static constexpr std::uint32_t kBlockBytes = 16 * 1024;

    /** Cell size classes; the largest equals a whole block. */
    static constexpr std::array<std::uint32_t, 18> kSizeClasses = {
        16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
        1024, 1536, 2048, 4096, 8192, 16384,
    };
    static constexpr std::uint32_t kNumClasses = kSizeClasses.size();
    static constexpr std::uint32_t kMaxCellBytes = kSizeClasses.back();

    /** Host-side metadata for one block. */
    struct Block
    {
        Address start = 0;
        std::uint32_t cellBytes = 0;
        std::uint32_t sizeClass = 0;
        std::uint32_t cellCount = 0;
        /** Cells carved so far (fresh blocks are bump-allocated). */
        std::uint32_t bumpCells = 0;
        /** Carved cells currently allocated. */
        std::uint32_t liveCells = 0;
        /** Carved cells on this block's free list. */
        std::uint32_t freeCells = 0;
        /** Head of this block's in-heap free list (kNull = empty). */
        Address freeHead = kNull;
        /** Intrusive links in the class's avail-block list (-1 = end). */
        std::int32_t availNext = -1;
        std::int32_t availPrev = -1;
        bool inAvail = false;
        /** Retired to the virgin pool, awaiting reassignment. */
        bool virgin = false;
        /** One bit per cell: allocated or free. */
        std::vector<std::uint64_t> allocBits;

        bool allocated(std::uint32_t cell) const;
        void setAllocated(std::uint32_t cell, bool on);
    };

    FreeListAllocator(Heap &heap, const Space &space);

    /** Size class index for a request; panics above kMaxCellBytes. */
    static std::uint32_t classFor(std::uint32_t bytes);

    /**
     * Allocate a cell able to hold the requested bytes. Returns 0 when
     * memory is exhausted (caller should collect and retry).
     * Reports the number of heap words touched through *traffic so the
     * caller can charge the CPU model.
     */
    Address alloc(std::uint32_t bytes, std::uint32_t *traffic_loads);

    /**
     * Return a cell to its block's free list (sweep path). The caller
     * charges one store for the free-list link write. The cell is
     * immediately reusable by alloc().
     */
    void freeCell(Address addr);

    /** True if addr is the start of a currently-allocated cell. */
    bool isAllocatedCell(Address addr) const;

    /** True if addr lies anywhere inside a currently-allocated cell. */
    bool isWithinAllocatedCell(Address addr) const;

    /** Start of a sweep. Free lists persist across sweeps (the sweep
     *  appends corpses); this only drops memoized state. */
    void beginSweep();

    /**
     * End of a sweep: retire every block whose carved cells are all
     * free to the virgin pool, making its 16 KiB reassignable to any
     * size class. Host metadata only — the sweep already issued the
     * per-cell link traffic.
     */
    void endSweep();

    /** Bytes currently handed out (cell granularity). */
    std::uint64_t usedBytes() const { return usedBytes_; }

    /** Bytes not yet carved plus free-listed plus retired blocks. */
    std::uint64_t freeBytes() const;

    /** Blocks currently in the virgin pool. */
    std::size_t virginBlockCount() const { return virginBlocks_.size(); }

    const std::vector<Block> &blocks() const { return blocks_; }
    const Space &space() const { return space_; }

    /** Cell size of the block containing addr. */
    std::uint32_t cellBytesAt(Address addr) const;

  private:
    Block *blockOf(Address addr);
    const Block *blockOf(Address addr) const;
    Block *newBlock(std::uint32_t size_class);
    void availPush(std::uint32_t k, std::uint32_t idx);
    void availRemove(std::uint32_t k, std::uint32_t idx);

    Heap &heap_;
    Space space_;
    std::vector<Block> blocks_;
    /** Heads of the per-class avail-block lists (-1 = empty). */
    std::array<std::int32_t, kNumClasses> availHead_;
    /** Block currently being bump-carved, one per size class (-1 none). */
    std::array<std::int32_t, kNumClasses> carveBlock_;
    /** Fully-free blocks awaiting reassignment (endSweep). */
    std::vector<std::uint32_t> virginBlocks_;
    std::uint64_t usedBytes_ = 0;
    std::uint64_t freeListedBytes_ = 0;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_FREELIST_HH
