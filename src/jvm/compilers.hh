/**
 * @file
 * Compilation tiers and compiler cost models.
 *
 * Jikes RVM has no interpreter: methods are baseline-compiled on first
 * invocation (fast, mediocre code), and the adaptive system later
 * recompiles hot methods with the optimizing compiler on its own thread
 * (slow, good code). Kaffe's JIT translates opcodes to native
 * instructions "without performing extensive code optimizations"
 * (Section VI-D), so compilation is cheap but the generated code is
 * slower than Jikes baseline output. An interpreter tier also exists
 * (Kaffe can be built as an interpreter; javelin uses it for
 * differential testing).
 *
 * Compiled code occupies real addresses in the code region, so code
 * density differences between tiers show up in the I-cache.
 */

#ifndef JAVELIN_JVM_COMPILERS_HH
#define JAVELIN_JVM_COMPILERS_HH

#include <vector>

#include "core/component_port.hh"
#include "jvm/program.hh"
#include "sim/system.hh"

namespace javelin {
namespace jvm {

/** Execution tier of a method. */
enum class Tier : std::uint8_t
{
    Interpreted,
    Baseline,
    Optimized,
    Jitted,
};

const char *tierName(Tier tier);

/**
 * Per-run, per-method mutable state.
 */
struct MethodRuntime
{
    Tier tier = Tier::Interpreted;
    Address codeAddr = 0;
    std::uint32_t codeBytes = 0;
    std::uint64_t invocations = 0;
    std::uint32_t samples = 0;
    bool optRequested = false;
    /** Remaining opt-compilation work units (bytecodes). */
    std::uint32_t optWorkRemaining = 0;
};

/**
 * The three compilers as cost models over the simulated machine.
 */
class CompilerModel
{
  public:
    struct Costs
    {
        /** Micro-ops per bytecode for a baseline compile. */
        std::uint32_t baselineUopsPerBc = 30;
        /** Emitted bytes per bytecode (baseline). */
        std::uint32_t baselineBytesPerBc = 12;
        /** Micro-ops per bytecode per optimization pass. */
        std::uint32_t optUopsPerBcPass = 90;
        /** Number of optimizer passes. */
        std::uint32_t optPasses = 4;
        /** Emitted bytes per bytecode (optimized: denser code). */
        std::uint32_t optBytesPerBc = 8;
        /** Micro-ops per bytecode for the Kaffe JIT (template emit
         *  plus per-opcode constant-pool lookups and verification). */
        std::uint32_t jitUopsPerBc = 150;
        /** Emitted bytes per bytecode (JIT: naive, bulky code). */
        std::uint32_t jitBytesPerBc = 14;
    };

    CompilerModel(sim::System &system, core::ComponentPort &port);
    CompilerModel(sim::System &system, core::ComponentPort &port,
                  const Costs &costs);

    /** Synchronous baseline compile (Jikes, first invocation). */
    void baselineCompile(const MethodInfo &method, MethodRuntime &rt);

    /** Synchronous JIT translation (Kaffe, first invocation). */
    void jitCompile(const MethodInfo &method, MethodRuntime &rt);

    /** Begin an optimizing compile (queued onto the opt thread). */
    void optCompileStart(const MethodInfo &method, MethodRuntime &rt);

    /**
     * Perform up to `units` bytecodes of optimizing-compile work.
     * @return true when the method finished compiling (tier flipped).
     */
    bool optCompileStep(const MethodInfo &method, MethodRuntime &rt,
                        std::uint32_t units);

    std::uint32_t methodsCompiled() const { return methodsCompiled_; }
    std::uint32_t methodsOptimized() const { return methodsOptimized_; }
    const Costs &costs() const { return costs_; }

  private:
    Address allocCode(std::uint32_t bytes);

    sim::System &system_;
    core::ComponentPort &port_;
    Costs costs_;
    Address codeCursor_ = kCodeBase;
    std::uint32_t methodsCompiled_ = 0;
    std::uint32_t methodsOptimized_ = 0;
};

} // namespace jvm
} // namespace javelin

#endif // JAVELIN_JVM_COMPILERS_HH
