/**
 * @file
 * High-speed data acquisition system (paper Section IV-D).
 *
 * Samples the CPU and memory power channels (through sense-resistor
 * models) and the component-ID register every 40 us of simulated time.
 * As in the paper, this places a 40 us measurement window on all power
 * measurements: transient changes inside the window are not captured,
 * nor is the exact instant of a component switch. The sampled power for
 * a window is the window-average of the (exactly integrated) power
 * model, which is what a real integrating DAQ front-end reports.
 */

#ifndef JAVELIN_CORE_DAQ_HH
#define JAVELIN_CORE_DAQ_HH

#include "core/component_port.hh"
#include "core/sense_resistor.hh"
#include "core/trace_spool.hh"
#include "core/traces.hh"
#include "sim/system.hh"
#include "util/kahan.hh"

namespace javelin {
namespace core {

/**
 * The sampling DAQ: one instance per experiment run.
 */
class Daq
{
  public:
    struct Config
    {
        /** Sampling period; 0 means "use the platform's default". */
        Tick period = 0;
        /** CPU rail sense channel. */
        SenseResistor::Config cpuSense;
        /** Memory rail sense channel. */
        SenseResistor::Config memSense;
        /**
         * Preallocate this many samples — honored only in the
         * in-memory (oracle) mode; along the spooled path capture
         * memory is bounded by the spool's two block buffers and the
         * knob is dead.
         */
        std::size_t reserve = 1 << 16;
        /**
         * Asynchronous sink (non-owning): every sample is appended to
         * this spool as it is taken. With keepInMemory left on this
         * tees capture (the differential oracle); with it off,
         * capture runs at flat RSS for arbitrarily long traces.
         */
        TraceSpool *spool = nullptr;
        /** Keep the in-memory PowerTrace (the oracle mode). */
        bool keepInMemory = true;
    };

    Daq(sim::System &system, ComponentPort &port);
    Daq(sim::System &system, ComponentPort &port, const Config &config);

    /** Sampling period actually in use. */
    Tick period() const { return period_; }

    /** In-memory trace; empty in spool-only capture mode. */
    const PowerTrace &trace() const { return trace_; }

    /** Samples taken (both modes). */
    std::uint64_t samplesTaken() const { return samplesTaken_; }

    /** Total measured CPU energy: sum of sample power * actual window. */
    double measuredCpuJoules() const;

    /** Total measured memory energy. */
    double measuredMemJoules() const;

    /**
     * Detach: flush the in-progress partial window as one final sample
     * covering [last sample, now), so the measured totals equal the
     * exactly-integrated energy of the whole attachment interval. On
     * ms-scale runs the truncated final window used to be a visible
     * fraction of the total. Idempotent; periodic firings after stop()
     * are ignored. The harness calls this once before attribution.
     */
    void stop();

    bool stopped() const { return stopped_; }

  private:
    void sample(Tick now);

    sim::System &system_;
    ComponentPort &port_;
    Tick period_;
    SenseResistor cpuSense_;
    SenseResistor memSense_;
    PowerTrace trace_;
    TraceSpool *spool_ = nullptr;
    bool keepInMemory_ = true;
    bool stopped_ = false;
    std::uint64_t samplesTaken_ = 0;

    /**
     * Running compensated energy integrals, accumulated sample by
     * sample in the exact order integrateCpuJoules/integrateMemJoules
     * walk the trace, so measured totals are bit-identical between
     * the in-memory and spooled capture modes.
     */
    NeumaierSum cpuJoules_;
    NeumaierSum memJoules_;

    double refCpuJoules_ = 0.0;
    double refMemJoules_ = 0.0;
    Tick refTick_ = 0;
    double lastCpuWatts_ = 0.0;
    double lastMemWatts_ = 0.0;
};

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_DAQ_HH
