/**
 * @file
 * High-speed data acquisition system (paper Section IV-D).
 *
 * Samples the CPU and memory power channels (through sense-resistor
 * models) and the component-ID register every 40 us of simulated time.
 * As in the paper, this places a 40 us measurement window on all power
 * measurements: transient changes inside the window are not captured,
 * nor is the exact instant of a component switch. The sampled power for
 * a window is the window-average of the (exactly integrated) power
 * model, which is what a real integrating DAQ front-end reports.
 */

#ifndef JAVELIN_CORE_DAQ_HH
#define JAVELIN_CORE_DAQ_HH

#include "core/component_port.hh"
#include "core/sense_resistor.hh"
#include "core/traces.hh"
#include "sim/system.hh"

namespace javelin {
namespace core {

/**
 * The sampling DAQ: one instance per experiment run.
 */
class Daq
{
  public:
    struct Config
    {
        /** Sampling period; 0 means "use the platform's default". */
        Tick period = 0;
        /** CPU rail sense channel. */
        SenseResistor::Config cpuSense;
        /** Memory rail sense channel. */
        SenseResistor::Config memSense;
        /** Preallocate this many samples. */
        std::size_t reserve = 1 << 16;
    };

    Daq(sim::System &system, ComponentPort &port);
    Daq(sim::System &system, ComponentPort &port, const Config &config);

    /** Sampling period actually in use. */
    Tick period() const { return period_; }

    const PowerTrace &trace() const { return trace_; }

    /** Total measured CPU energy: sum of sample power * actual window. */
    double measuredCpuJoules() const;

    /** Total measured memory energy. */
    double measuredMemJoules() const;

  private:
    void sample(Tick now);

    sim::System &system_;
    ComponentPort &port_;
    Tick period_;
    SenseResistor cpuSense_;
    SenseResistor memSense_;
    PowerTrace trace_;

    double refCpuJoules_ = 0.0;
    double refMemJoules_ = 0.0;
    Tick refTick_ = 0;
    double lastCpuWatts_ = 0.0;
    double lastMemWatts_ = 0.0;
};

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_DAQ_HH
