/**
 * @file
 * The memory-mapped component-ID register of paper Section IV-C.
 *
 * The instrumented JVM writes the ID of the component taking control of
 * the processor to an I/O-mapped register (the parallel port on the P6
 * platform, GPIO pins on the DBPXA255). The DAQ samples this register
 * alongside the power channels, which is how power samples get attributed
 * to components.
 *
 * Two write styles are supported, matching the two JVMs:
 *  - push()/pop() entry/exit bracketing (Kaffe instrumentation), which
 *    correctly handles recurrent and overlapping component calls via an
 *    ID stack;
 *  - rawWrite() absolute writes (Jikes instrumentation, issued by the
 *    thread scheduler at dispatch time).
 *
 * Each write optionally charges the CPU a small I/O-store cost so the
 * perturbation of the measurement itself can be studied.
 */

#ifndef JAVELIN_CORE_COMPONENT_PORT_HH
#define JAVELIN_CORE_COMPONENT_PORT_HH

#include <functional>
#include <vector>

#include "core/component.hh"
#include "sim/system.hh"

namespace javelin {
namespace core {

/**
 * Memory-mapped component-ID I/O register.
 */
class ComponentPort
{
  public:
    /** Called on every value change: (previous, next, time-of-switch). */
    using Observer =
        std::function<void(ComponentId, ComponentId, Tick)>;

    struct Config
    {
        /** Cycles charged to the CPU per port write (I/O store cost). */
        double writeCostCycles = 2.0;
        /** Whether to charge the write cost at all. */
        bool chargeWrites = true;
    };

    explicit ComponentPort(sim::System &system);
    ComponentPort(sim::System &system, const Config &config);

    /** Enter a component; restores the previous one on pop(). */
    void push(ComponentId id);

    /** Leave the most recently pushed component. */
    void pop();

    /** Absolute write (Jikes scheduler style); clears the nesting stack. */
    void rawWrite(ComponentId id);

    /** Value currently visible at the register's output pins. */
    ComponentId current() const { return current_; }

    /** Nesting depth of push()ed components. */
    std::size_t depth() const { return stack_.size(); }

    /** Register a switch observer (e.g., the ground-truth accountant). */
    void addObserver(Observer observer);

    std::uint64_t writeCount() const { return writeCount_; }

  private:
    void write(ComponentId id);

    sim::System &system_;
    Config config_;
    ComponentId current_ = ComponentId::App;
    std::vector<ComponentId> stack_;
    std::vector<Observer> observers_;
    std::uint64_t writeCount_ = 0;
};

/**
 * RAII component bracket: pushes on construction, pops on destruction.
 */
class ComponentScope
{
  public:
    ComponentScope(ComponentPort &port, ComponentId id)
        : port_(port)
    {
        port_.push(id);
    }

    ~ComponentScope() { port_.pop(); }

    ComponentScope(const ComponentScope &) = delete;
    ComponentScope &operator=(const ComponentScope &) = delete;

  private:
    ComponentPort &port_;
};

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_COMPONENT_PORT_HH
