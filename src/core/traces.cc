#include "core/traces.hh"

#include "util/kahan.hh"

namespace javelin {
namespace core {

double
integrateCpuJoules(const PowerTrace &trace)
{
    NeumaierSum j;
    for (const auto &s : trace)
        j.add(s.cpuWatts * ticksToSeconds(s.windowTicks));
    return j.value();
}

double
integrateMemJoules(const PowerTrace &trace)
{
    NeumaierSum j;
    for (const auto &s : trace)
        j.add(s.memWatts * ticksToSeconds(s.windowTicks));
    return j.value();
}

} // namespace core
} // namespace javelin
