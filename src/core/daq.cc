#include "core/daq.hh"

#include "util/logging.hh"

namespace javelin {
namespace core {

Daq::Daq(sim::System &system, ComponentPort &port)
    : Daq(system, port, Config())
{
}

Daq::Daq(sim::System &system, ComponentPort &port, const Config &config)
    : system_(system), port_(port),
      period_(config.period ? config.period : system.spec().daqPeriod),
      cpuSense_(config.cpuSense), memSense_(config.memSense),
      spool_(config.spool), keepInMemory_(config.keepInMemory)
{
    JAVELIN_ASSERT(period_ > 0, "DAQ period must be positive");
    JAVELIN_ASSERT(keepInMemory_ || spool_,
                   "spool-only capture needs a spool");
    if (spool_)
        JAVELIN_ASSERT(spool_->kind() == tracefmt::RecordKind::Power,
                       "DAQ spool must carry power records");
    // The pre-sizing knob only matters when the trace lives in
    // memory; spooled capture is bounded by the spool's two buffers.
    if (keepInMemory_)
        trace_.reserve(config.reserve);
    refTick_ = system_.cpu().now();
    // Snapshot the energy baseline at attach time: a DAQ connected to a
    // warm system must not attribute pre-attach energy to its first
    // sample window.
    system_.syncPower();
    refCpuJoules_ = system_.power().cumulativeJoules();
    refMemJoules_ = system_.memoryPower().cumulativeJoules();
    lastCpuWatts_ = system_.power().idleWatts();
    lastMemWatts_ = system_.memoryPower().config().idleWatts;
    system_.addPeriodicTask("daq", period_,
                            [this](Tick now) { sample(now); });
}

void
Daq::sample(Tick now)
{
    if (stopped_)
        return;
    system_.syncPower();
    const Tick actual = system_.cpu().now();

    const double cpuJ = system_.power().cumulativeJoules();
    const double memJ = system_.memoryPower().cumulativeJoules();

    PowerSample s;
    s.tick = now;
    s.component = port_.current();
    if (actual > refTick_) {
        const Tick window = actual - refTick_;
        const double dt = ticksToSeconds(window);
        const double trueCpuW = (cpuJ - refCpuJoules_) / dt;
        const double trueMemW = (memJ - refMemJoules_) / dt;
        s.windowTicks = window;
        s.cpuWatts = cpuSense_.measureWatts(trueCpuW,
                                            system_.power().railVolts());
        s.memWatts =
            memSense_.measureWatts(trueMemW,
                                   system_.memoryPower().railVolts());
        lastCpuWatts_ = s.cpuWatts;
        lastMemWatts_ = s.memWatts;
    } else {
        // Catch-up tick inside a burst (the simulation polled late):
        // the best estimate for every sample in the gap is the gap's
        // window average, which the first tick of the burst computed.
        // That first tick already integrated the whole gap, so these
        // samples cover zero additional time: windowTicks stays 0 and
        // they contribute no energy, only trace shape.
        s.windowTicks = 0;
        s.cpuWatts = lastCpuWatts_;
        s.memWatts = lastMemWatts_;
    }
    if (keepInMemory_)
        trace_.push_back(s);
    if (spool_)
        spool_->append(s);
    ++samplesTaken_;
    // Same term, same order as integrate{Cpu,Mem}Joules over the
    // trace: the running totals are bit-identical to an end-of-run
    // integration, and available in spool-only mode.
    cpuJoules_.add(s.cpuWatts * ticksToSeconds(s.windowTicks));
    memJoules_.add(s.memWatts * ticksToSeconds(s.windowTicks));

    refCpuJoules_ = cpuJ;
    refMemJoules_ = memJ;
    refTick_ = actual;
}

void
Daq::stop()
{
    if (stopped_)
        return;
    // The final partial window [refTick_, now) goes through the exact
    // periodic-sample path, so its term lands in the running Neumaier
    // totals in the same order an on-schedule sample's would. A stop
    // that lands exactly on a sample boundary has nothing to flush.
    system_.syncPower();
    if (system_.cpu().now() > refTick_)
        sample(system_.cpu().now());
    stopped_ = true;
}

double
Daq::measuredCpuJoules() const
{
    return cpuJoules_.value();
}

double
Daq::measuredMemJoules() const
{
    return memJoules_.value();
}

} // namespace core
} // namespace javelin
