/**
 * @file
 * OS-timer-driven hardware-performance-monitor sampler (Section IV-E).
 *
 * The operating system's main timer takes a periodic sample (1 ms on the
 * P6 platform, 10 ms on the DBPXA255) of whatever is running: the HPM
 * counter deltas over the period are attributed to the JVM component
 * registered at the sampling instant. This is the source of the
 * per-component IPC and cache-miss-rate numbers in paper Section VI-C.
 */

#ifndef JAVELIN_CORE_HPM_SAMPLER_HH
#define JAVELIN_CORE_HPM_SAMPLER_HH

#include "core/component_port.hh"
#include "core/trace_spool.hh"
#include "core/traces.hh"
#include "sim/system.hh"

namespace javelin {
namespace core {

/**
 * Periodic performance-counter sampler.
 */
class HpmSampler
{
  public:
    struct Config
    {
        /** Sampling period; 0 means "use the platform's OS timer". */
        Tick period = 0;
        /** Pre-size the in-memory trace; dead on the spooled path. */
        std::size_t reserve = 1 << 12;
        /** Asynchronous sink (non-owning); see Daq::Config::spool. */
        TraceSpool *spool = nullptr;
        /** Keep the in-memory PerfTrace (the oracle mode). */
        bool keepInMemory = true;
        /**
         * CPU cycles charged per sample for the timer ISR that reads
         * the counters (the measurement infrastructure's own
         * perturbation; 0 models a free sampler and is the default so
         * golden runs are unaffected). See bench/abl_sampling_error.
         */
        double isrCostCycles = 0.0;
    };

    HpmSampler(sim::System &system, ComponentPort &port);
    HpmSampler(sim::System &system, ComponentPort &port,
               const Config &config);

    Tick period() const { return period_; }
    /** In-memory trace; empty in spool-only capture mode. */
    const PerfTrace &trace() const { return trace_; }
    /** Samples taken (both modes). */
    std::uint64_t samplesTaken() const { return samplesTaken_; }

    /**
     * Detach: flush the counter delta accumulated since the last
     * periodic sample as one final sample, so per-component counter
     * attribution totals conserve the run's full counter deltas (the
     * perf-side analogue of Daq::stop()). The flush is a harness read,
     * not a timer interrupt, so no ISR cost is charged. Idempotent.
     */
    void stop();

  private:
    void sample(Tick now);

    sim::System &system_;
    ComponentPort &port_;
    Tick period_;
    double isrCostCycles_ = 0.0;
    PerfTrace trace_;
    TraceSpool *spool_ = nullptr;
    bool keepInMemory_ = true;
    bool stopped_ = false;
    std::uint64_t samplesTaken_ = 0;
    sim::PerfCounters last_;
};

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_HPM_SAMPLER_HH
