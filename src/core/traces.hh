/**
 * @file
 * Trace record types produced by the measurement infrastructure and
 * consumed by the offline analysis (paper Fig. 4, right-hand block).
 */

#ifndef JAVELIN_CORE_TRACES_HH
#define JAVELIN_CORE_TRACES_HH

#include <vector>

#include "core/component.hh"
#include "sim/perf_counters.hh"
#include "util/units.hh"

namespace javelin {
namespace core {

/**
 * One DAQ sample: power on the CPU and memory rails plus the component-ID
 * register value at the sampling instant.
 */
struct PowerSample
{
    Tick tick = 0;
    /** Window-average CPU power since the previous sample (watts). */
    double cpuWatts = 0.0;
    /** Window-average memory power since the previous sample (watts). */
    double memWatts = 0.0;
    /**
     * Length of the integration window this sample's power averages
     * over. Nominally the DAQ period, but a sample taken after the
     * simulation polled late covers the whole gap, and the catch-up
     * samples that follow it inside the same burst cover no new time at
     * all (windowTicks == 0). Energy integration must weight each
     * sample by this actual window, never by the nominal period.
     */
    Tick windowTicks = 0;
    /** Component ID visible on the port at the sampling instant. */
    ComponentId component = ComponentId::App;
};

/** Full power trace of a run. */
using PowerTrace = std::vector<PowerSample>;

/**
 * Energy integral of the CPU channel: sum of cpuWatts * actual window
 * over the trace, with compensated (Neumaier) summation so the result
 * does not drift with trace length (see util/kahan.hh). Used by the
 * DAQ's measured totals and by the drift regression tests.
 */
double integrateCpuJoules(const PowerTrace &trace);

/** Energy integral of the memory channel; see integrateCpuJoules. */
double integrateMemJoules(const PowerTrace &trace);

/**
 * One HPM sample: performance-counter deltas over the OS timer period,
 * attributed to the component running at the sampling instant.
 */
struct PerfSample
{
    Tick tick = 0;
    ComponentId component = ComponentId::App;
    sim::PerfCounters delta;
};

/** Full performance trace of a run. */
using PerfTrace = std::vector<PerfSample>;

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_TRACES_HH
