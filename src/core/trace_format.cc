#include "core/trace_format.hh"

#include <array>
#include <cstring>

#include "util/logging.hh"

namespace javelin {
namespace core {
namespace tracefmt {

std::size_t
recordBytes(RecordKind kind)
{
    switch (kind) {
      case RecordKind::Power:
        return kPowerRecordBytes;
      case RecordKind::Perf:
        return kPerfRecordBytes;
    }
    JAVELIN_PANIC("bad RecordKind ", static_cast<std::uint32_t>(kind));
}

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> kCrcTable = makeCrcTable();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putF64(unsigned char *p, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(p, bits);
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

double
getF64(const unsigned char *p)
{
    const std::uint64_t bits = getU64(p);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

void
encodeFileHeader(RecordKind kind, unsigned char *out)
{
    std::memcpy(out, kMagic, 8);
    putU32(out + 8, kVersion);
    putU32(out + 12, kEndianCheck);
    putU32(out + 16, static_cast<std::uint32_t>(kind));
    putU32(out + 20,
           static_cast<std::uint32_t>(recordBytes(kind)));
    putU32(out + 24, 0); // reserved
    putU32(out + 28, crc32(out, 28));
}

RecordKind
decodeFileHeader(const unsigned char *p, const char *pathForErrors)
{
    if (std::memcmp(p, kMagic, 8) != 0)
        JAVELIN_FATAL(pathForErrors,
                      ": not a javelin-trace file (bad magic)");
    if (getU32(p + 28) != crc32(p, 28))
        JAVELIN_FATAL(pathForErrors, ": file header CRC mismatch");
    if (getU32(p + 8) != kVersion)
        JAVELIN_FATAL(pathForErrors, ": unsupported trace version ",
                      getU32(p + 8));
    if (getU32(p + 12) != kEndianCheck)
        JAVELIN_FATAL(pathForErrors,
                      ": endianness marker mismatch (file written on "
                      "an incompatible host)");
    const std::uint32_t kindRaw = getU32(p + 16);
    if (kindRaw != static_cast<std::uint32_t>(RecordKind::Power) &&
        kindRaw != static_cast<std::uint32_t>(RecordKind::Perf))
        JAVELIN_FATAL(pathForErrors, ": unknown record kind ", kindRaw);
    const auto kind = static_cast<RecordKind>(kindRaw);
    if (getU32(p + 20) != recordBytes(kind))
        JAVELIN_FATAL(pathForErrors, ": record size ", getU32(p + 20),
                      " does not match kind (want ", recordBytes(kind),
                      ")");
    return kind;
}

void
encodeBlockHeader(std::uint32_t payloadBytes, unsigned char *out)
{
    putU32(out, kBlockMagic);
    putU32(out + 4, payloadBytes);
}

void
encodeBlockFooter(const BlockFooter &f, unsigned char *out)
{
    putU64(out, f.firstTick);
    putU64(out + 8, f.lastTick);
    putU32(out + 16, f.recordCount);
    putU32(out + 20, f.componentMask);
    putU32(out + 24, f.payloadCrc);
    putU32(out + 28, crc32(out, 28));
}

bool
decodeBlockFooter(const unsigned char *p, BlockFooter &out)
{
    if (getU32(p + 28) != crc32(p, 28))
        return false;
    out.firstTick = getU64(p);
    out.lastTick = getU64(p + 8);
    out.recordCount = getU32(p + 16);
    out.componentMask = getU32(p + 20);
    out.payloadCrc = getU32(p + 24);
    return true;
}

void
encodePowerRecord(const PowerSample &s, unsigned char *out)
{
    putU64(out, s.tick);
    putU64(out + 8, s.windowTicks);
    putF64(out + 16, s.cpuWatts);
    putF64(out + 24, s.memWatts);
    putU32(out + 32,
           static_cast<std::uint32_t>(componentIndex(s.component)));
    putU32(out + 36, 0); // pad
}

PowerSample
decodePowerRecord(const unsigned char *p)
{
    PowerSample s;
    s.tick = getU64(p);
    s.windowTicks = getU64(p + 8);
    s.cpuWatts = getF64(p + 16);
    s.memWatts = getF64(p + 24);
    s.component = static_cast<ComponentId>(getU32(p + 32));
    return s;
}

void
encodePerfRecord(const PerfSample &s, unsigned char *out)
{
    putU64(out, s.tick);
    putU32(out + 8,
           static_cast<std::uint32_t>(componentIndex(s.component)));
    putU32(out + 12, 0); // pad
    const auto &d = s.delta;
    const std::uint64_t fields[14] = {
        d.cycles,      d.instructions,     d.stallCycles,
        d.branches,    d.branchMispredicts, d.l1iAccesses,
        d.l1iMisses,   d.l1dAccesses,      d.l1dMisses,
        d.l2Accesses,  d.l2Misses,         d.l2Probes,
        d.dramAccesses, d.dramWritebacks,
    };
    for (int i = 0; i < 14; ++i)
        putU64(out + 16 + 8 * i, fields[i]);
}

PerfSample
decodePerfRecord(const unsigned char *p)
{
    PerfSample s;
    s.tick = getU64(p);
    s.component = static_cast<ComponentId>(getU32(p + 8));
    auto &d = s.delta;
    std::uint64_t fields[14];
    for (int i = 0; i < 14; ++i)
        fields[i] = getU64(p + 16 + 8 * i);
    d.cycles = fields[0];
    d.instructions = fields[1];
    d.stallCycles = fields[2];
    d.branches = fields[3];
    d.branchMispredicts = fields[4];
    d.l1iAccesses = fields[5];
    d.l1iMisses = fields[6];
    d.l1dAccesses = fields[7];
    d.l1dMisses = fields[8];
    d.l2Accesses = fields[9];
    d.l2Misses = fields[10];
    d.l2Probes = fields[11];
    d.dramAccesses = fields[12];
    d.dramWritebacks = fields[13];
    return s;
}

std::uint32_t
recordComponentBit(RecordKind kind, const unsigned char *p)
{
    const std::size_t off = kind == RecordKind::Power ? 32 : 8;
    return 1u << getU32(p + off);
}

} // namespace tracefmt
} // namespace core
} // namespace javelin
