/**
 * @file
 * Exact per-component energy/performance accountant.
 *
 * A real measurement rig only sees the sampled traces; the simulator can
 * additionally integrate energy exactly at every component switch (the
 * power model is linear in counters and time, so switch-boundary
 * integration is exact). This accountant observes the ComponentPort and
 * provides the reference against which the sampled attribution is
 * validated (tests and bench/abl_sampling_error — the quantization-error
 * study the paper could not run on hardware).
 */

#ifndef JAVELIN_CORE_GROUND_TRUTH_HH
#define JAVELIN_CORE_GROUND_TRUTH_HH

#include <array>

#include "core/component_port.hh"
#include "sim/system.hh"

namespace javelin {
namespace core {

/**
 * Exact per-component accounting, updated at component switches.
 */
class GroundTruthAccountant
{
  public:
    struct Slice
    {
        double cpuJoules = 0.0;
        double memJoules = 0.0;
        Tick time = 0;
        sim::PerfCounters counters;
    };

    GroundTruthAccountant(sim::System &system, ComponentPort &port);

    /** Close the currently-open slice (call once at end of run). */
    void finalize();

    const Slice &slice(ComponentId id) const;

    double totalCpuJoules() const;
    double totalMemJoules() const;
    Tick totalTime() const;

  private:
    void onSwitch(ComponentId prev, ComponentId next, Tick now);
    void accumulate(ComponentId id);

    sim::System &system_;
    ComponentPort &port_;
    std::array<Slice, kNumComponents> slices_;

    double refCpuJ_ = 0.0;
    double refMemJ_ = 0.0;
    Tick refTick_ = 0;
    sim::PerfCounters refCounters_;
    bool finalized_ = false;
};

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_GROUND_TRUTH_HH
