/**
 * @file
 * Double-buffered asynchronous trace spooling (DESIGN.md §10).
 *
 * TraceSpool takes PowerSample/PerfSample appends on the measured
 * path, encodes them into one of two fixed-size block buffers, and
 * hands sealed blocks to a dedicated writer thread, so capture memory
 * is bounded by the two buffers no matter how long the run is and the
 * simulation never blocks on file I/O unless it outruns the disk (at
 * which point the swap waits — backpressure, never data loss). Blocks
 * land on disk in the javelin-trace-v1 format (core/trace_format.hh):
 * framed, CRC-stamped, each carrying a footer index of its tick range
 * and component mask.
 *
 * The writer drains with plain pwrite(2) by default — the portable
 * path and the oracle the io_uring backend is verified against. On
 * Linux hosts with <linux/io_uring.h>, setting
 * Config::backend = Backend::IoUring (or JAVELIN_TRACE_IO_URING=1)
 * submits block writes through a small io_uring instead; if ring setup
 * fails at runtime (old kernel, seccomp) the spool falls back to
 * pwrite with a warning rather than failing the run.
 *
 * TraceReader is the other half: it validates the file, builds the
 * block index from footers alone (no record decoding), recovers a
 * torn tail the way the job-engine journal does (drop the incomplete
 * final block, refuse corruption anywhere earlier), and serves whole
 * reads or tick-range reads that skip non-intersecting blocks.
 */

#ifndef JAVELIN_CORE_TRACE_SPOOL_HH
#define JAVELIN_CORE_TRACE_SPOOL_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/trace_format.hh"
#include "core/traces.hh"

namespace javelin {
namespace core {

/**
 * Asynchronous double-buffered writer of javelin-trace-v1 files.
 */
class TraceSpool
{
  public:
    enum class Backend
    {
        /** pwrite(2) on the writer thread; always available. */
        Pwrite,
        /** io_uring submission; falls back to Pwrite if unavailable. */
        IoUring,
    };

    struct Config
    {
        std::string path;
        tracefmt::RecordKind kind = tracefmt::RecordKind::Power;
        /**
         * Capacity of each of the two block buffers, frame overhead
         * included; also the on-disk block size. Clamped up so a
         * buffer always holds at least one record.
         */
        std::size_t bufferBytes = 1 << 20;
        Backend backend = Backend::Pwrite;
        /** fsync the file before closing it. */
        bool fsyncOnClose = false;
        /**
         * Fault injection (0 = off): the Nth block write is
         * deliberately torn — only half its bytes reach the file —
         * and SIGKILL is raised, leaving exactly the wreckage an
         * external kill mid-write would. Mirrors
         * JAVELIN_JOB_CRASH_AFTER; used by the CI kill-mid-spool
         * smoke and the torn-tail tests.
         */
        std::size_t crashAfterBlocks = 0;
        /**
         * Test hook: writer thread sleeps this long before each block
         * write, forcing the appender into the backpressure wait so
         * the differential fuzz can cover slow-disk schedules.
         */
        unsigned writerDelayMicros = 0;
    };

    explicit TraceSpool(Config config);
    ~TraceSpool();

    TraceSpool(const TraceSpool &) = delete;
    TraceSpool &operator=(const TraceSpool &) = delete;

    /** Append one power sample (kind must be Power). */
    void append(const PowerSample &s);
    /** Append one perf sample (kind must be Perf). */
    void append(const PerfSample &s);

    /**
     * Seal the partial block, drain the writer, close the file.
     * Idempotent; the destructor calls it. After close() the file is
     * complete and readable.
     */
    void close();

    const std::string &path() const { return config_.path; }
    tracefmt::RecordKind kind() const { return config_.kind; }
    std::uint64_t recordsAppended() const { return recordsAppended_; }

    /** Blocks fully written to the file so far (writer-side). */
    std::uint64_t blocksWritten() const;
    /** Bytes written to the file so far, header included. */
    std::uint64_t bytesWritten() const;
    /** True when the io_uring backend was requested and is active. */
    bool usingIoUring() const { return usingIoUring_; }

    /** Host support probe for the io_uring backend. */
    static bool ioUringAvailable();

    /** Backend::IoUring if JAVELIN_TRACE_IO_URING=1, else Pwrite. */
    static Backend backendFromEnv();

  private:
    struct Buffer
    {
        std::vector<unsigned char> data;
        /** Next free byte (starts past the block header). */
        std::size_t fill = 0;
        std::uint32_t recordCount = 0;
        Tick firstTick = 0;
        Tick lastTick = 0;
        std::uint32_t componentMask = 0;
        bool sealed = false;
        bool inFlight = false;
    };

    void appendEncoded(Tick tick, std::uint32_t componentBit,
                       const unsigned char *rec, std::size_t len);
    void sealActive();
    void writerLoop();
    void writeBlock(const unsigned char *data, std::size_t len);
    void pwriteAll(const unsigned char *data, std::size_t len);

    Config config_;
    std::size_t recordBytes_ = 0;
    int fd_ = -1;
    std::uint64_t recordsAppended_ = 0;

    Buffer buffers_[2];
    int active_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<int> sealedQueue_;
    bool stopping_ = false;
    bool closed_ = false;
    std::uint64_t blocksWritten_ = 0;
    std::uint64_t fileOffset_ = 0;
    std::thread writer_;

    bool usingIoUring_ = false;
    struct IoUringCtx;
    IoUringCtx *ring_ = nullptr;
};

/**
 * Reader/recovery side of javelin-trace-v1 files.
 */
class TraceReader
{
  public:
    /** One entry of the block index, straight from the footers. */
    struct BlockInfo
    {
        /** Byte offset of the block header in the file. */
        std::uint64_t offset = 0;
        std::uint32_t recordCount = 0;
        Tick firstTick = 0;
        Tick lastTick = 0;
        std::uint32_t componentMask = 0;
    };

    /**
     * Open and index a trace file. Fails through JAVELIN_FATAL on
     * structural corruption anywhere before the final block; a torn
     * final block is dropped and reported via torn().
     */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    tracefmt::RecordKind kind() const { return kind_; }
    const std::vector<BlockInfo> &blocks() const { return blocks_; }
    /** True when an incomplete final block was dropped on open. */
    bool torn() const { return torn_; }
    /** Bytes of the file covered by intact blocks (incl. header). */
    std::uint64_t intactBytes() const { return intactBytes_; }
    std::uint64_t recordCount() const;

    /** Decode every record (payload CRCs verified per block). */
    PowerTrace readPower() const;
    PerfTrace readPerf() const;

    /**
     * Decode only records with tick in [fromTick, toTick], consulting
     * the block index to skip blocks that cannot intersect the range.
     */
    PowerTrace readPowerRange(Tick fromTick, Tick toTick) const;
    PerfTrace readPerfRange(Tick fromTick, Tick toTick) const;

  private:
    std::vector<unsigned char> blockPayload(const BlockInfo &b) const;

    std::string path_;
    int fd_ = -1;
    tracefmt::RecordKind kind_ = tracefmt::RecordKind::Power;
    std::size_t recordBytes_ = 0;
    std::vector<BlockInfo> blocks_;
    bool torn_ = false;
    std::uint64_t intactBytes_ = 0;
};

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_TRACE_SPOOL_HH
