#include "core/trace_spool.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "util/logging.hh"

#if defined(__linux__) && __has_include(<linux/io_uring.h>) && \
    defined(SYS_io_uring_setup) && defined(SYS_io_uring_enter)
#define JAVELIN_HAVE_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#endif

namespace javelin {
namespace core {

using namespace tracefmt;

// ---------------------------------------------------------------------
// io_uring backend: a tiny queue-depth-4 ring used only by the writer
// thread, one submitted write per sealed block, completion awaited
// before the buffer is recycled. Raw syscalls, no liburing dependency.
// ---------------------------------------------------------------------

struct TraceSpool::IoUringCtx
{
#ifdef JAVELIN_HAVE_IO_URING
    int ringFd = -1;
    void *sqRing = nullptr;
    std::size_t sqRingBytes = 0;
    void *cqRing = nullptr;
    std::size_t cqRingBytes = 0;
    io_uring_sqe *sqes = nullptr;
    std::size_t sqesBytes = 0;
    unsigned *sqTail = nullptr;
    unsigned *sqMask = nullptr;
    unsigned *sqArray = nullptr;
    unsigned *cqHead = nullptr;
    unsigned *cqMask = nullptr;
    io_uring_cqe *cqes = nullptr;

    ~IoUringCtx()
    {
        if (sqRing && sqRing != MAP_FAILED)
            ::munmap(sqRing, sqRingBytes);
        if (cqRing && cqRing != MAP_FAILED && cqRing != sqRing)
            ::munmap(cqRing, cqRingBytes);
        if (sqes && sqes != MAP_FAILED)
            ::munmap(sqes, sqesBytes);
        if (ringFd >= 0)
            ::close(ringFd);
    }

    static IoUringCtx *
    create()
    {
        io_uring_params params;
        std::memset(&params, 0, sizeof params);
        const int fd = static_cast<int>(
            ::syscall(SYS_io_uring_setup, 4u, &params));
        if (fd < 0)
            return nullptr;

        auto ctx = new IoUringCtx();
        ctx->ringFd = fd;
        ctx->sqRingBytes =
            params.sq_off.array + params.sq_entries * sizeof(unsigned);
        ctx->cqRingBytes =
            params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
        const bool singleMmap =
            params.features & IORING_FEAT_SINGLE_MMAP;
        if (singleMmap)
            ctx->sqRingBytes = ctx->cqRingBytes =
                std::max(ctx->sqRingBytes, ctx->cqRingBytes);

        ctx->sqRing = ::mmap(nullptr, ctx->sqRingBytes,
                             PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                             IORING_OFF_SQ_RING);
        ctx->cqRing = singleMmap
                          ? ctx->sqRing
                          : ::mmap(nullptr, ctx->cqRingBytes,
                                   PROT_READ | PROT_WRITE, MAP_SHARED,
                                   fd, IORING_OFF_CQ_RING);
        ctx->sqesBytes = params.sq_entries * sizeof(io_uring_sqe);
        ctx->sqes = static_cast<io_uring_sqe *>(
            ::mmap(nullptr, ctx->sqesBytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED, fd, IORING_OFF_SQES));
        if (ctx->sqRing == MAP_FAILED || ctx->cqRing == MAP_FAILED ||
            ctx->sqes == MAP_FAILED) {
            delete ctx;
            return nullptr;
        }

        auto *sq = static_cast<unsigned char *>(ctx->sqRing);
        ctx->sqTail =
            reinterpret_cast<unsigned *>(sq + params.sq_off.tail);
        ctx->sqMask =
            reinterpret_cast<unsigned *>(sq + params.sq_off.ring_mask);
        ctx->sqArray =
            reinterpret_cast<unsigned *>(sq + params.sq_off.array);
        auto *cq = static_cast<unsigned char *>(ctx->cqRing);
        ctx->cqHead =
            reinterpret_cast<unsigned *>(cq + params.cq_off.head);
        ctx->cqMask =
            reinterpret_cast<unsigned *>(cq + params.cq_off.ring_mask);
        ctx->cqes =
            reinterpret_cast<io_uring_cqe *>(cq + params.cq_off.cqes);
        return ctx;
    }

    /**
     * Submit one write and wait for its completion. Returns the
     * write's result (bytes written or -errno).
     */
    long
    writeAndWait(int fd, const unsigned char *data, std::size_t len,
                 std::uint64_t offset)
    {
        const unsigned tail =
            __atomic_load_n(sqTail, __ATOMIC_RELAXED);
        const unsigned idx = tail & *sqMask;
        io_uring_sqe *sqe = &sqes[idx];
        std::memset(sqe, 0, sizeof *sqe);
        sqe->opcode = IORING_OP_WRITE;
        sqe->fd = fd;
        sqe->addr = reinterpret_cast<std::uint64_t>(data);
        sqe->len = static_cast<std::uint32_t>(len);
        sqe->off = offset;
        sqArray[idx] = idx;
        __atomic_store_n(sqTail, tail + 1, __ATOMIC_RELEASE);

        const long rc = ::syscall(SYS_io_uring_enter, ringFd, 1u, 1u,
                                  IORING_ENTER_GETEVENTS, nullptr, 0);
        if (rc < 0)
            return -errno;

        const unsigned head =
            __atomic_load_n(cqHead, __ATOMIC_ACQUIRE);
        const io_uring_cqe *cqe = &cqes[head & *cqMask];
        const long res = cqe->res;
        __atomic_store_n(cqHead, head + 1, __ATOMIC_RELEASE);
        return res;
    }
#endif // JAVELIN_HAVE_IO_URING
};

bool
TraceSpool::ioUringAvailable()
{
#ifdef JAVELIN_HAVE_IO_URING
    static const bool available = [] {
        IoUringCtx *probe = IoUringCtx::create();
        const bool ok = probe != nullptr;
        delete probe;
        return ok;
    }();
    return available;
#else
    return false;
#endif
}

TraceSpool::Backend
TraceSpool::backendFromEnv()
{
    const char *env = std::getenv("JAVELIN_TRACE_IO_URING");
    if (env && env[0] != '\0' && env[0] != '0')
        return Backend::IoUring;
    return Backend::Pwrite;
}

// ---------------------------------------------------------------------
// TraceSpool
// ---------------------------------------------------------------------

TraceSpool::TraceSpool(Config config) : config_(std::move(config))
{
    recordBytes_ = tracefmt::recordBytes(config_.kind);
    const std::size_t minBytes =
        kBlockHeaderBytes + recordBytes_ + kBlockFooterBytes;
    if (config_.bufferBytes < minBytes)
        config_.bufferBytes = minBytes;

    JAVELIN_ASSERT(!config_.path.empty(), "trace spool needs a path");
    fd_ = ::open(config_.path.c_str(),
                 O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd_ < 0)
        JAVELIN_FATAL("trace spool: cannot create ", config_.path, ": ",
                      std::strerror(errno));

    unsigned char header[kFileHeaderBytes];
    encodeFileHeader(config_.kind, header);
    pwriteAll(header, kFileHeaderBytes);
    fileOffset_ = kFileHeaderBytes;

    for (auto &b : buffers_) {
        b.data.resize(config_.bufferBytes);
        b.fill = kBlockHeaderBytes;
    }

    if (config_.backend == Backend::IoUring) {
#ifdef JAVELIN_HAVE_IO_URING
        ring_ = IoUringCtx::create();
        usingIoUring_ = ring_ != nullptr;
        if (!usingIoUring_)
            JAVELIN_WARN("trace spool: io_uring requested but ring "
                         "setup failed; falling back to pwrite");
#else
        JAVELIN_WARN("trace spool: io_uring requested but this build "
                     "has no io_uring support; falling back to pwrite");
#endif
    }

    writer_ = std::thread([this] { writerLoop(); });
}

TraceSpool::~TraceSpool()
{
    close();
    delete ring_;
    ring_ = nullptr;
}

void
TraceSpool::append(const PowerSample &s)
{
    JAVELIN_ASSERT(config_.kind == RecordKind::Power,
                   "power append on a perf spool");
    unsigned char rec[kPowerRecordBytes];
    encodePowerRecord(s, rec);
    appendEncoded(s.tick,
                  1u << static_cast<std::uint32_t>(
                      componentIndex(s.component)),
                  rec, kPowerRecordBytes);
}

void
TraceSpool::append(const PerfSample &s)
{
    JAVELIN_ASSERT(config_.kind == RecordKind::Perf,
                   "perf append on a power spool");
    unsigned char rec[kPerfRecordBytes];
    encodePerfRecord(s, rec);
    appendEncoded(s.tick,
                  1u << static_cast<std::uint32_t>(
                      componentIndex(s.component)),
                  rec, kPerfRecordBytes);
}

void
TraceSpool::appendEncoded(Tick tick, std::uint32_t componentBit,
                          const unsigned char *rec, std::size_t len)
{
    JAVELIN_ASSERT(!closed_, "append on a closed trace spool");
    Buffer *b = &buffers_[active_];
    if (b->fill + len + kBlockFooterBytes > b->data.size()) {
        sealActive();
        b = &buffers_[active_];
    }
    std::memcpy(b->data.data() + b->fill, rec, len);
    b->fill += len;
    if (b->recordCount == 0) {
        b->firstTick = tick;
        b->lastTick = tick;
    } else {
        b->firstTick = std::min(b->firstTick, tick);
        b->lastTick = std::max(b->lastTick, tick);
    }
    b->componentMask |= componentBit;
    ++b->recordCount;
    ++recordsAppended_;
}

void
TraceSpool::sealActive()
{
    Buffer &b = buffers_[active_];
    if (b.recordCount == 0)
        return;

    const std::size_t payloadBytes = b.fill - kBlockHeaderBytes;
    encodeBlockHeader(static_cast<std::uint32_t>(payloadBytes),
                      b.data.data());
    BlockFooter footer;
    footer.firstTick = b.firstTick;
    footer.lastTick = b.lastTick;
    footer.recordCount = b.recordCount;
    footer.componentMask = b.componentMask;
    footer.payloadCrc =
        crc32(b.data.data() + kBlockHeaderBytes, payloadBytes);
    encodeBlockFooter(footer, b.data.data() + b.fill);
    b.fill += kBlockFooterBytes;

    const int next = active_ ^ 1;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        b.sealed = true;
        sealedQueue_.push_back(active_);
        cv_.notify_all();
        // Backpressure: the other buffer must be drained before it
        // can fill. Capture memory stays bounded by the two buffers.
        cv_.wait(lock, [&] {
            return !buffers_[next].sealed && !buffers_[next].inFlight;
        });
    }
    active_ = next;
    Buffer &a = buffers_[active_];
    a.fill = kBlockHeaderBytes;
    a.recordCount = 0;
    a.firstTick = 0;
    a.lastTick = 0;
    a.componentMask = 0;
}

void
TraceSpool::writerLoop()
{
    for (;;) {
        int idx;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return stopping_ || !sealedQueue_.empty();
            });
            if (sealedQueue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            idx = sealedQueue_.front();
            sealedQueue_.erase(sealedQueue_.begin());
            buffers_[idx].inFlight = true;
            buffers_[idx].sealed = false;
        }
        if (config_.writerDelayMicros)
            ::usleep(config_.writerDelayMicros);

        Buffer &b = buffers_[idx];
        const bool crashThisBlock =
            config_.crashAfterBlocks != 0 &&
            blocksWritten_ + 1 >= config_.crashAfterBlocks;
        if (crashThisBlock) {
            // Fault injection: tear this block halfway through its
            // write and die as an external SIGKILL would leave the
            // file — the torn-tail rule's natural habitat.
            writeBlock(b.data.data(), b.fill / 2);
            std::raise(SIGKILL);
        }
        writeBlock(b.data.data(), b.fill);

        {
            std::lock_guard<std::mutex> lock(mutex_);
            fileOffset_ += b.fill;
            ++blocksWritten_;
            b.inFlight = false;
        }
        cv_.notify_all();
    }
}

void
TraceSpool::writeBlock(const unsigned char *data, std::size_t len)
{
#ifdef JAVELIN_HAVE_IO_URING
    if (usingIoUring_) {
        std::size_t done = 0;
        while (done < len) {
            const long res = ring_->writeAndWait(
                fd_, data + done, len - done, fileOffset_ + done);
            if (res < 0)
                JAVELIN_FATAL("trace spool: io_uring write to ",
                              config_.path, " failed: ",
                              std::strerror(static_cast<int>(-res)));
            if (res == 0)
                JAVELIN_FATAL("trace spool: io_uring short write to ",
                              config_.path);
            done += static_cast<std::size_t>(res);
        }
        return;
    }
#endif
    pwriteAll(data, len);
}

void
TraceSpool::pwriteAll(const unsigned char *data, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n =
            ::pwrite(fd_, data + done, len - done,
                     static_cast<off_t>(fileOffset_ + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            JAVELIN_FATAL("trace spool: write to ", config_.path,
                          " failed: ", std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
}

void
TraceSpool::close()
{
    if (closed_)
        return;
    sealActive();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (writer_.joinable())
        writer_.join();
    if (config_.fsyncOnClose && ::fsync(fd_) != 0)
        JAVELIN_FATAL("trace spool: fsync of ", config_.path,
                      " failed: ", std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    closed_ = true;
}

std::uint64_t
TraceSpool::blocksWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return blocksWritten_;
}

std::uint64_t
TraceSpool::bytesWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fileOffset_;
}

// ---------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------

namespace {

/** pread exactly len bytes; false on EOF-short reads. */
bool
preadAll(int fd, unsigned char *out, std::size_t len,
         std::uint64_t offset, const std::string &path)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::pread(fd, out + done, len - done,
                                  static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            JAVELIN_FATAL("trace reader: read of ", path, " failed: ",
                          std::strerror(errno));
        }
        if (n == 0)
            return false;
        done += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0)
        JAVELIN_FATAL("trace reader: cannot open ", path, ": ",
                      std::strerror(errno));
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        JAVELIN_FATAL("trace reader: cannot stat ", path);
    const std::uint64_t fileSize =
        static_cast<std::uint64_t>(st.st_size);

    if (fileSize < kFileHeaderBytes)
        JAVELIN_FATAL(path, ": too short for a javelin-trace file (",
                      fileSize, " bytes)");
    unsigned char header[kFileHeaderBytes];
    preadAll(fd_, header, kFileHeaderBytes, 0, path_);
    kind_ = decodeFileHeader(header, path.c_str());
    recordBytes_ = tracefmt::recordBytes(kind_);

    // Block scan: hop header-to-header, validate footers, apply the
    // torn-tail rule (see trace_format.hh).
    std::uint64_t off = kFileHeaderBytes;
    while (off < fileSize) {
        const std::uint64_t remaining = fileSize - off;
        if (remaining < kBlockHeaderBytes) {
            torn_ = true; // tear inside a block header
            break;
        }
        unsigned char bh[kBlockHeaderBytes];
        preadAll(fd_, bh, kBlockHeaderBytes, off, path_);
        if (getU32(bh) != kBlockMagic)
            JAVELIN_FATAL(path, ": corrupt block header at offset ",
                          off, " (bad magic)");
        const std::uint64_t payloadBytes = getU32(bh + 4);
        if (payloadBytes == 0 || payloadBytes % recordBytes_ != 0)
            JAVELIN_FATAL(path, ": corrupt block header at offset ",
                          off, " (payload length ", payloadBytes, ")");
        const std::uint64_t blockEnd =
            off + kBlockHeaderBytes + payloadBytes + kBlockFooterBytes;
        if (blockEnd > fileSize) {
            torn_ = true; // tear inside payload or footer
            break;
        }

        unsigned char fb[kBlockFooterBytes];
        preadAll(fd_, fb, kBlockFooterBytes,
                 off + kBlockHeaderBytes + payloadBytes, path_);
        BlockFooter footer;
        const bool footerOk =
            decodeBlockFooter(fb, footer) &&
            footer.recordCount * recordBytes_ == payloadBytes &&
            footer.firstTick <= footer.lastTick;
        if (!footerOk) {
            if (blockEnd == fileSize) {
                torn_ = true; // corrupt final block: drop it
                break;
            }
            JAVELIN_FATAL(path, ": corrupt block footer at offset ",
                          off + kBlockHeaderBytes + payloadBytes,
                          " (not at the end of the file)");
        }

        BlockInfo info;
        info.offset = off;
        info.recordCount = footer.recordCount;
        info.firstTick = footer.firstTick;
        info.lastTick = footer.lastTick;
        info.componentMask = footer.componentMask;
        blocks_.push_back(info);
        off = blockEnd;
    }
    intactBytes_ = blocks_.empty()
                       ? kFileHeaderBytes
                       : blocks_.back().offset + kBlockHeaderBytes +
                             blocks_.back().recordCount * recordBytes_ +
                             kBlockFooterBytes;
}

TraceReader::~TraceReader()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::uint64_t
TraceReader::recordCount() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks_)
        n += b.recordCount;
    return n;
}

std::vector<unsigned char>
TraceReader::blockPayload(const BlockInfo &b) const
{
    const std::size_t payloadBytes = b.recordCount * recordBytes_;
    std::vector<unsigned char> payload(payloadBytes);
    preadAll(fd_, payload.data(), payloadBytes,
             b.offset + kBlockHeaderBytes, path_);

    unsigned char fb[kBlockFooterBytes];
    preadAll(fd_, fb, kBlockFooterBytes,
             b.offset + kBlockHeaderBytes + payloadBytes, path_);
    BlockFooter footer;
    if (!decodeBlockFooter(fb, footer) ||
        crc32(payload.data(), payloadBytes) != footer.payloadCrc)
        JAVELIN_FATAL(path_, ": block payload CRC mismatch at offset ",
                      b.offset);
    return payload;
}

PowerTrace
TraceReader::readPower() const
{
    return readPowerRange(0, ~static_cast<Tick>(0));
}

PerfTrace
TraceReader::readPerf() const
{
    return readPerfRange(0, ~static_cast<Tick>(0));
}

PowerTrace
TraceReader::readPowerRange(Tick fromTick, Tick toTick) const
{
    JAVELIN_ASSERT(kind_ == RecordKind::Power,
                   "power read on a perf trace");
    PowerTrace out;
    for (const auto &b : blocks_) {
        if (b.lastTick < fromTick || b.firstTick > toTick)
            continue; // index seek: block cannot intersect the range
        const auto payload = blockPayload(b);
        for (std::uint32_t i = 0; i < b.recordCount; ++i) {
            const unsigned char *rec =
                payload.data() + i * kPowerRecordBytes;
            const Tick t = recordTick(rec);
            if (t < fromTick || t > toTick)
                continue;
            out.push_back(decodePowerRecord(rec));
        }
    }
    return out;
}

PerfTrace
TraceReader::readPerfRange(Tick fromTick, Tick toTick) const
{
    JAVELIN_ASSERT(kind_ == RecordKind::Perf,
                   "perf read on a power trace");
    PerfTrace out;
    for (const auto &b : blocks_) {
        if (b.lastTick < fromTick || b.firstTick > toTick)
            continue;
        const auto payload = blockPayload(b);
        for (std::uint32_t i = 0; i < b.recordCount; ++i) {
            const unsigned char *rec =
                payload.data() + i * kPerfRecordBytes;
            const Tick t = recordTick(rec);
            if (t < fromTick || t > toTick)
                continue;
            out.push_back(decodePerfRecord(rec));
        }
    }
    return out;
}

} // namespace core
} // namespace javelin
