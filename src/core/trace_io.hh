/**
 * @file
 * Trace serialization: export the DAQ power trace and the HPM
 * performance trace as CSV (the format the paper's offline analysis
 * consumed, and what a user needs to plot Fig. 1/6/8-style charts from
 * a javelin run), and re-import them for offline tooling round-trips.
 */

#ifndef JAVELIN_CORE_TRACE_IO_HH
#define JAVELIN_CORE_TRACE_IO_HH

#include <iosfwd>

#include "core/traces.hh"

namespace javelin {
namespace core {

/** Write a power trace as CSV: tick,us,cpu_watts,mem_watts,component. */
void writePowerCsv(std::ostream &os, const PowerTrace &trace);

/** Write a perf trace as CSV (per-sample counter deltas). */
void writePerfCsv(std::ostream &os, const PerfTrace &trace);

/**
 * Parse a power trace written by writePowerCsv.
 * @throws via JAVELIN_FATAL on malformed input.
 */
PowerTrace readPowerCsv(std::istream &is);

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_TRACE_IO_HH
