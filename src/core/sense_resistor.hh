/**
 * @file
 * Precision sense-resistor current measurement (paper Section IV-D).
 *
 * Current is measured indirectly: a small precision resistor sits in
 * series with the supply rail and the DAQ samples the voltage drop across
 * it, so I = V_drop / R. The model converts the power model's true power
 * into a measured current, with optional gaussian measurement noise and
 * ADC quantization, so the acquisition error budget of a real rig can be
 * reproduced and studied.
 */

#ifndef JAVELIN_CORE_SENSE_RESISTOR_HH
#define JAVELIN_CORE_SENSE_RESISTOR_HH

#include "util/random.hh"

namespace javelin {
namespace core {

/**
 * One sense-resistor + ADC channel pair.
 */
class SenseResistor
{
  public:
    struct Config
    {
        /** Sense resistance in ohms (milliohm-class in practice). */
        double resistanceOhms = 0.010;
        /** Gaussian noise on the sampled drop voltage (volts RMS). */
        double noiseVoltsRms = 0.0;
        /** ADC least-significant-bit size in volts; 0 disables. */
        double adcLsbVolts = 0.0;
        /** Noise stream seed. */
        std::uint64_t seed = 12345;
    };

    explicit SenseResistor(const Config &config);

    /**
     * Measure the current implied by (true_watts, rail_volts).
     * @return measured amps after noise and quantization.
     */
    double measureAmps(double true_watts, double rail_volts);

    /** Convenience: measured power = measured amps * rail volts. */
    double measureWatts(double true_watts, double rail_volts);

    const Config &config() const { return config_; }

  private:
    Config config_;
    Rng rng_;
};

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_SENSE_RESISTOR_HH
