#include "core/sense_resistor.hh"

#include <cmath>

#include "util/logging.hh"

namespace javelin {
namespace core {

SenseResistor::SenseResistor(const Config &config)
    : config_(config), rng_(config.seed)
{
    JAVELIN_ASSERT(config_.resistanceOhms > 0, "bad sense resistance");
}

double
SenseResistor::measureAmps(double true_watts, double rail_volts)
{
    JAVELIN_ASSERT(rail_volts > 0, "bad rail voltage");
    const double true_amps = true_watts / rail_volts;
    double drop = true_amps * config_.resistanceOhms;
    if (config_.noiseVoltsRms > 0)
        drop += rng_.normal(0.0, config_.noiseVoltsRms);
    if (config_.adcLsbVolts > 0)
        drop = std::round(drop / config_.adcLsbVolts) * config_.adcLsbVolts;
    return drop / config_.resistanceOhms;
}

double
SenseResistor::measureWatts(double true_watts, double rail_volts)
{
    return measureAmps(true_watts, rail_volts) * rail_volts;
}

} // namespace core
} // namespace javelin
