/**
 * @file
 * Energy-efficiency metrics (paper Section III-A).
 *
 * The energy-delay product (EDP, joules * seconds) conveys the combined
 * attributes of energy and performance: a slow low-power configuration is
 * penalized by its execution time, an aggressive high-power one by its
 * energy. Peak power matters for thermal/packaging limits.
 */

#ifndef JAVELIN_CORE_ENERGY_ACCOUNTING_HH
#define JAVELIN_CORE_ENERGY_ACCOUNTING_HH

#include "core/attribution.hh"

namespace javelin {
namespace core {

/** Energy-delay product in joule-seconds. */
constexpr double
energyDelayProduct(double joules, double seconds)
{
    return joules * seconds;
}

/** EDP of a full run (CPU + memory energy, total run time). */
double edpOf(const Attribution &a);

/** EDP of the CPU alone. */
double cpuEdpOf(const Attribution &a);

/** Relative improvement of b over a: (a - b) / a. */
double relativeImprovement(double a, double b);

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_ENERGY_ACCOUNTING_HH
