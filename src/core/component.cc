#include "core/component.hh"

#include "util/logging.hh"

namespace javelin {
namespace core {

std::string_view
componentName(ComponentId id)
{
    switch (id) {
      case ComponentId::App:
        return "App";
      case ComponentId::Gc:
        return "GC";
      case ComponentId::ClassLoader:
        return "CL";
      case ComponentId::BaseCompiler:
        return "Base";
      case ComponentId::OptCompiler:
        return "Opt";
      case ComponentId::Jit:
        return "JIT";
      case ComponentId::Scheduler:
        return "Sched";
      case ComponentId::Idle:
        return "Idle";
      case ComponentId::NumComponents:
        break;
    }
    JAVELIN_PANIC("bad component id ", static_cast<int>(id));
}

} // namespace core
} // namespace javelin
