#include "core/hpm_sampler.hh"

#include "util/logging.hh"

namespace javelin {
namespace core {

HpmSampler::HpmSampler(sim::System &system, ComponentPort &port)
    : HpmSampler(system, port, Config())
{
}

HpmSampler::HpmSampler(sim::System &system, ComponentPort &port,
                       const Config &config)
    : system_(system), port_(port),
      period_(config.period ? config.period : system.spec().hpmPeriod),
      isrCostCycles_(config.isrCostCycles), spool_(config.spool),
      keepInMemory_(config.keepInMemory)
{
    JAVELIN_ASSERT(period_ > 0, "HPM period must be positive");
    JAVELIN_ASSERT(keepInMemory_ || spool_,
                   "spool-only capture needs a spool");
    if (spool_)
        JAVELIN_ASSERT(spool_->kind() ==
                           core::tracefmt::RecordKind::Perf,
                       "HPM spool must carry perf records");
    if (keepInMemory_)
        trace_.reserve(config.reserve);
    last_ = system_.counters();
    system_.addPeriodicTask("hpm", period_,
                            [this](Tick now) { sample(now); });
}

void
HpmSampler::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    const sim::PerfCounters current = system_.counters();
    if (current.cycles == last_.cycles)
        return; // on-boundary stop: nothing accumulated to flush
    PerfSample s;
    s.tick = system_.cpu().now();
    s.component = port_.current();
    s.delta = current - last_;
    if (keepInMemory_)
        trace_.push_back(s);
    if (spool_)
        spool_->append(s);
    ++samplesTaken_;
    last_ = current;
}

void
HpmSampler::sample(Tick now)
{
    if (stopped_)
        return;
    // Charge the ISR before reading: the counter snapshot then includes
    // the sampler's own work, exactly as a real OS-timer handler would.
    if (isrCostCycles_ > 0.0)
        system_.cpu().stall(isrCostCycles_);
    const sim::PerfCounters current = system_.counters();
    PerfSample s;
    s.tick = now;
    s.component = port_.current();
    s.delta = current - last_;
    if (keepInMemory_)
        trace_.push_back(s);
    if (spool_)
        spool_->append(s);
    ++samplesTaken_;
    last_ = current;
}

} // namespace core
} // namespace javelin
