/**
 * @file
 * javelin-trace-v1: the compact binary on-disk format for measurement
 * traces (DESIGN.md §10).
 *
 * A trace file is a 32-byte file header followed by framed blocks.
 * Every multi-byte field is little-endian and encoded/decoded with
 * explicit byte shifts, so files are portable across hosts; doubles are
 * stored as their IEEE-754 bit patterns, so a spooled-then-read trace
 * is bit-identical to the in-memory trace it came from.
 *
 * Block frame:
 *
 *   [u32 blockMagic][u32 payloadBytes]          8-byte header
 *   [recordCount * recordBytes]                 payload
 *   [u64 firstTick][u64 lastTick]               32-byte footer index
 *   [u32 recordCount][u32 componentMask]
 *   [u32 payloadCrc][u32 footerCrc]
 *
 * The footer is the per-block index: a reader hops header-to-header
 * (the header gives the payload length) and consults only the footers
 * to answer "which blocks intersect tick range [a, b]" without
 * decoding a single record. componentMask is the OR of
 * (1 << componentIndex) over the block's records, so component-scoped
 * scans can skip blocks too.
 *
 * Torn-tail recovery rule (mirrors the javelin-journal-v1 rule that an
 * append-only file can only tear at its tail): a final block that is
 * incomplete — fewer bytes than a block header, a declared extent
 * running past EOF, or a CRC/shape check failing on the block that
 * ends exactly at EOF — is dropped and the intact prefix is returned.
 * The same defects anywhere *before* the final block mean real
 * corruption, never a tear, and readers refuse the file. A present
 * but wrong block magic is always corruption: an interrupted
 * sequential append truncates to a prefix, it does not scramble bytes
 * it already wrote.
 */

#ifndef JAVELIN_CORE_TRACE_FORMAT_HH
#define JAVELIN_CORE_TRACE_FORMAT_HH

#include <cstddef>
#include <cstdint>

#include "core/traces.hh"

namespace javelin {
namespace core {
namespace tracefmt {

/** File magic: "JVLTRC1\0". */
constexpr unsigned char kMagic[8] = {'J', 'V', 'L', 'T',
                                     'R', 'C', '1', '\0'};
constexpr std::uint32_t kVersion = 1;
/** Stamped into the header so a byte-swapped reader fails loudly. */
constexpr std::uint32_t kEndianCheck = 0x01020304u;
/** Block frame magic: "JBLK" as little-endian u32. */
constexpr std::uint32_t kBlockMagic = 0x4B4C424Au;

constexpr std::size_t kFileHeaderBytes = 32;
constexpr std::size_t kBlockHeaderBytes = 8;
constexpr std::size_t kBlockFooterBytes = 32;

/** What one file's records are. */
enum class RecordKind : std::uint32_t
{
    Power = 1,
    Perf = 2,
};

/** tick, windowTicks, cpuWatts, memWatts, component, pad. */
constexpr std::size_t kPowerRecordBytes = 40;
/** tick, component, pad, then the 14 PerfCounters fields. */
constexpr std::size_t kPerfRecordBytes = 128;

/** Fixed record size for a kind. */
std::size_t recordBytes(RecordKind kind);

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320), seedable for chaining. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

// --- little-endian primitives -----------------------------------------

void putU32(unsigned char *p, std::uint32_t v);
void putU64(unsigned char *p, std::uint64_t v);
void putF64(unsigned char *p, double v);
std::uint32_t getU32(const unsigned char *p);
std::uint64_t getU64(const unsigned char *p);
double getF64(const unsigned char *p);

// --- file header ------------------------------------------------------

/** Encode the 32-byte file header (CRC stamped last). */
void encodeFileHeader(RecordKind kind, unsigned char *out);

/**
 * Validate a file header. Returns the record kind; on any mismatch
 * (magic, version, endianness, record size, CRC) fails through
 * JAVELIN_FATAL naming the defect.
 */
RecordKind decodeFileHeader(const unsigned char *p,
                            const char *pathForErrors);

// --- block frame ------------------------------------------------------

/** The per-block footer index, as read back from a file. */
struct BlockFooter
{
    Tick firstTick = 0;
    Tick lastTick = 0;
    std::uint32_t recordCount = 0;
    /** OR of (1 << componentIndex) over the block's records. */
    std::uint32_t componentMask = 0;
    std::uint32_t payloadCrc = 0;
};

void encodeBlockHeader(std::uint32_t payloadBytes, unsigned char *out);

/**
 * Encode the footer; payloadCrc must already be computed over the
 * payload bytes. footerCrc is computed here over the first 28 footer
 * bytes.
 */
void encodeBlockFooter(const BlockFooter &f, unsigned char *out);

/** Decode + verify the footer's own CRC. Returns false on mismatch. */
bool decodeBlockFooter(const unsigned char *p, BlockFooter &out);

// --- records ----------------------------------------------------------

void encodePowerRecord(const PowerSample &s, unsigned char *out);
PowerSample decodePowerRecord(const unsigned char *p);
void encodePerfRecord(const PerfSample &s, unsigned char *out);
PerfSample decodePerfRecord(const unsigned char *p);

/** Tick of an encoded record (offset 0 in both layouts). */
inline Tick
recordTick(const unsigned char *p)
{
    return getU64(p);
}

/** Component bit of an encoded record of the given kind. */
std::uint32_t recordComponentBit(RecordKind kind, const unsigned char *p);

} // namespace tracefmt
} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_TRACE_FORMAT_HH
