#include "core/energy_accounting.hh"

namespace javelin {
namespace core {

double
edpOf(const Attribution &a)
{
    return energyDelayProduct(a.totalJoules(), a.totalSeconds);
}

double
cpuEdpOf(const Attribution &a)
{
    return energyDelayProduct(a.totalCpuJoules, a.totalSeconds);
}

double
relativeImprovement(double a, double b)
{
    return a != 0.0 ? (a - b) / a : 0.0;
}

} // namespace core
} // namespace javelin
