/**
 * @file
 * Identifiers for the JVM software components the paper monitors.
 *
 * Jikes RVM runs are decomposed into application, garbage collector,
 * class loader, baseline compiler and optimizing compiler (Section VI);
 * Kaffe runs into application, garbage collector, class loader and JIT
 * compiler. The scheduler/controller component exists so the Jikes thread
 * scheduler can be monitored too (the paper measured it below 1 % and we
 * keep it visible rather than folding it into App).
 */

#ifndef JAVELIN_CORE_COMPONENT_HH
#define JAVELIN_CORE_COMPONENT_HH

#include <cstdint>
#include <string_view>

namespace javelin {
namespace core {

/**
 * JVM software component identifiers, as written to the component-ID
 * I/O register.
 */
enum class ComponentId : std::uint8_t
{
    App = 0,
    Gc,
    ClassLoader,
    BaseCompiler,
    OptCompiler,
    Jit,
    Scheduler,
    Idle,
    NumComponents,
};

constexpr std::size_t kNumComponents =
    static_cast<std::size_t>(ComponentId::NumComponents);

/** Short display name ("GC", "CL", ...), matching the paper's labels. */
std::string_view componentName(ComponentId id);

/** Index form for dense arrays. */
constexpr std::size_t
componentIndex(ComponentId id)
{
    return static_cast<std::size_t>(id);
}

/** True for the components counted as "JVM energy" in Section VI. */
constexpr bool
isJvmServiceComponent(ComponentId id)
{
    switch (id) {
      case ComponentId::Gc:
      case ComponentId::ClassLoader:
      case ComponentId::BaseCompiler:
      case ComponentId::OptCompiler:
      case ComponentId::Jit:
      case ComponentId::Scheduler:
        return true;
      default:
        return false;
    }
}

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_COMPONENT_HH
