#include "core/attribution.hh"

#include <algorithm>

#include "util/units.hh"

namespace javelin {
namespace core {

double
Attribution::energyFraction(ComponentId id) const
{
    return totalCpuJoules > 0 ? powerOf(id).cpuJoules / totalCpuJoules
                              : 0.0;
}

double
Attribution::jvmEnergyFraction() const
{
    double j = 0.0;
    for (std::size_t i = 0; i < kNumComponents; ++i) {
        const auto id = static_cast<ComponentId>(i);
        if (isJvmServiceComponent(id))
            j += power[i].cpuJoules;
    }
    return totalCpuJoules > 0 ? j / totalCpuJoules : 0.0;
}

Attribution
attribute(const PowerTrace &power_trace, const PerfTrace &perf_trace)
{
    Attribution a;

    for (const auto &s : power_trace) {
        // Integrate over the window this sample actually averaged:
        // catch-up samples inside a burst cover zero additional time
        // and must not add energy (they only record trace shape).
        const double dt = ticksToSeconds(s.windowTicks);
        auto &c = a.power[componentIndex(s.component)];
        c.cpuJoules += s.cpuWatts * dt;
        c.memJoules += s.memWatts * dt;
        c.seconds += dt;
        c.peakCpuWatts = std::max(c.peakCpuWatts, s.cpuWatts);
        ++c.samples;

        a.totalCpuJoules += s.cpuWatts * dt;
        a.totalMemJoules += s.memWatts * dt;
        a.totalSeconds += dt;
        a.peakCpuWatts = std::max(a.peakCpuWatts, s.cpuWatts);
    }

    for (const auto &s : perf_trace) {
        auto &c = a.perf[componentIndex(s.component)];
        c.counters += s.delta;
        ++c.samples;
    }

    return a;
}

} // namespace core
} // namespace javelin
