/**
 * @file
 * Offline analysis of the power and performance traces (paper Fig. 4,
 * right block): per-component energy, average power, peak power, and
 * per-component performance-counter aggregates (IPC, miss rates).
 */

#ifndef JAVELIN_CORE_ATTRIBUTION_HH
#define JAVELIN_CORE_ATTRIBUTION_HH

#include <array>

#include "core/traces.hh"

namespace javelin {
namespace core {

/** Per-component power/energy aggregate from a sampled PowerTrace. */
struct ComponentPowerStats
{
    double cpuJoules = 0.0;
    double memJoules = 0.0;
    /** Attributed running time (sum of actual sample windows). */
    double seconds = 0.0;
    double peakCpuWatts = 0.0;
    std::uint64_t samples = 0;

    double
    avgCpuWatts() const
    {
        return seconds > 0 ? cpuJoules / seconds : 0.0;
    }
    double
    avgMemWatts() const
    {
        return seconds > 0 ? memJoules / seconds : 0.0;
    }
};

/** Per-component performance aggregate from a sampled PerfTrace. */
struct ComponentPerfStats
{
    sim::PerfCounters counters;
    std::uint64_t samples = 0;

    double ipc() const { return counters.ipc(); }
    double l2MissRate() const { return counters.l2MissRate(); }
    double l1dMissRate() const { return counters.l1dMissRate(); }
};

/**
 * Complete offline attribution result for one run.
 */
struct Attribution
{
    std::array<ComponentPowerStats, kNumComponents> power;
    std::array<ComponentPerfStats, kNumComponents> perf;

    double totalCpuJoules = 0.0;
    double totalMemJoules = 0.0;
    double totalSeconds = 0.0;
    double peakCpuWatts = 0.0;

    const ComponentPowerStats &
    powerOf(ComponentId id) const
    {
        return power[componentIndex(id)];
    }
    const ComponentPerfStats &
    perfOf(ComponentId id) const
    {
        return perf[componentIndex(id)];
    }

    /** Fraction of total CPU energy attributed to one component. */
    double energyFraction(ComponentId id) const;

    /** Fraction of CPU energy spent in JVM service components. */
    double jvmEnergyFraction() const;

    /** Total system energy (CPU + memory). */
    double
    totalJoules() const
    {
        return totalCpuJoules + totalMemJoules;
    }
};

/**
 * Build an Attribution from the sampled traces.
 *
 * Each power sample is integrated over its own windowTicks (the time it
 * actually averaged), so bursty traces with non-uniform windows — and
 * zero-length catch-up samples — account energy exactly once.
 *
 * @param power_trace DAQ samples
 * @param perf_trace HPM samples (may be empty)
 */
Attribution attribute(const PowerTrace &power_trace,
                      const PerfTrace &perf_trace);

} // namespace core
} // namespace javelin

#endif // JAVELIN_CORE_ATTRIBUTION_HH
