#include "core/ground_truth.hh"

#include "util/logging.hh"

namespace javelin {
namespace core {

GroundTruthAccountant::GroundTruthAccountant(sim::System &system,
                                             ComponentPort &port)
    : system_(system), port_(port)
{
    refTick_ = system_.cpu().now();
    refCounters_ = system_.counters();
    port_.addObserver([this](ComponentId prev, ComponentId next, Tick now) {
        (void)next;
        (void)now;
        onSwitch(prev, next, now);
    });
}

void
GroundTruthAccountant::accumulate(ComponentId id)
{
    system_.syncPower();
    const double cpuJ = system_.power().cumulativeJoules();
    const double memJ = system_.memoryPower().cumulativeJoules();
    const Tick now = system_.cpu().now();
    const sim::PerfCounters counters = system_.counters();

    Slice &s = slices_[componentIndex(id)];
    s.cpuJoules += cpuJ - refCpuJ_;
    s.memJoules += memJ - refMemJ_;
    s.time += now - refTick_;
    s.counters += counters - refCounters_;

    refCpuJ_ = cpuJ;
    refMemJ_ = memJ;
    refTick_ = now;
    refCounters_ = counters;
}

void
GroundTruthAccountant::onSwitch(ComponentId prev, ComponentId next,
                                Tick now)
{
    (void)next;
    (void)now;
    JAVELIN_ASSERT(!finalized_, "switch after finalize");
    accumulate(prev);
}

void
GroundTruthAccountant::finalize()
{
    if (finalized_)
        return;
    accumulate(port_.current());
    finalized_ = true;
}

const GroundTruthAccountant::Slice &
GroundTruthAccountant::slice(ComponentId id) const
{
    return slices_[componentIndex(id)];
}

double
GroundTruthAccountant::totalCpuJoules() const
{
    double j = 0.0;
    for (const auto &s : slices_)
        j += s.cpuJoules;
    return j;
}

double
GroundTruthAccountant::totalMemJoules() const
{
    double j = 0.0;
    for (const auto &s : slices_)
        j += s.memJoules;
    return j;
}

Tick
GroundTruthAccountant::totalTime() const
{
    Tick t = 0;
    for (const auto &s : slices_)
        t += s.time;
    return t;
}

} // namespace core
} // namespace javelin
