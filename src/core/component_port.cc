#include "core/component_port.hh"

#include "util/logging.hh"

namespace javelin {
namespace core {

ComponentPort::ComponentPort(sim::System &system)
    : ComponentPort(system, Config())
{
}

ComponentPort::ComponentPort(sim::System &system, const Config &config)
    : system_(system), config_(config)
{
    stack_.reserve(16);
}

void
ComponentPort::write(ComponentId id)
{
    ++writeCount_;
    if (config_.chargeWrites)
        system_.cpu().stall(config_.writeCostCycles);
    if (id == current_)
        return;
    const ComponentId prev = current_;
    current_ = id;
    const Tick now = system_.cpu().now();
    for (const auto &obs : observers_)
        obs(prev, id, now);
}

void
ComponentPort::push(ComponentId id)
{
    stack_.push_back(current_);
    write(id);
}

void
ComponentPort::pop()
{
    JAVELIN_ASSERT(!stack_.empty(), "component pop without push");
    const ComponentId prev = stack_.back();
    stack_.pop_back();
    write(prev);
}

void
ComponentPort::rawWrite(ComponentId id)
{
    stack_.clear();
    write(id);
}

void
ComponentPort::addObserver(Observer observer)
{
    observers_.push_back(std::move(observer));
}

} // namespace core
} // namespace javelin
