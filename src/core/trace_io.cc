#include "core/trace_io.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/logging.hh"
#include "util/units.hh"

namespace javelin {
namespace core {

void
writePowerCsv(std::ostream &os, const PowerTrace &trace)
{
    os << "tick,us,window_ticks,cpu_watts,mem_watts,component\n";
    for (const auto &s : trace) {
        os << s.tick << ',' << static_cast<double>(s.tick) / kTicksPerMicro
           << ',' << s.windowTicks << ',' << s.cpuWatts << ','
           << s.memWatts << ',' << componentName(s.component) << '\n';
    }
}

void
writePerfCsv(std::ostream &os, const PerfTrace &trace)
{
    os << "tick,component,cycles,instructions,stall_cycles,"
          "l1d_accesses,l1d_misses,l2_accesses,l2_misses,"
          "dram_accesses,ipc,l2_miss_rate\n";
    for (const auto &s : trace) {
        const auto &d = s.delta;
        os << s.tick << ',' << componentName(s.component) << ','
           << d.cycles << ',' << d.instructions << ',' << d.stallCycles
           << ',' << d.l1dAccesses << ',' << d.l1dMisses << ','
           << d.l2Accesses << ',' << d.l2Misses << ',' << d.dramAccesses
           << ',' << d.ipc() << ',' << d.l2MissRate() << '\n';
    }
}

namespace {

ComponentId
componentByName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumComponents; ++i) {
        const auto id = static_cast<ComponentId>(i);
        if (componentName(id) == name)
            return id;
    }
    JAVELIN_FATAL("unknown component in trace: ", name);
}

} // namespace

PowerTrace
readPowerCsv(std::istream &is)
{
    PowerTrace trace;
    std::string line;
    if (!std::getline(is, line))
        return trace; // empty input: empty trace
    if (line.rfind("tick,", 0) != 0)
        JAVELIN_FATAL("power CSV missing header");
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string field;
        PowerSample s;

        if (!std::getline(ls, field, ','))
            JAVELIN_FATAL("power CSV: missing tick in '", line, "'");
        s.tick = static_cast<Tick>(std::stoull(field));
        std::getline(ls, field, ','); // derived microseconds (ignored)
        if (!std::getline(ls, field, ','))
            JAVELIN_FATAL("power CSV: missing window in '", line, "'");
        s.windowTicks = static_cast<Tick>(std::stoull(field));
        if (!std::getline(ls, field, ','))
            JAVELIN_FATAL("power CSV: missing cpu watts in '", line, "'");
        s.cpuWatts = std::stod(field);
        if (!std::getline(ls, field, ','))
            JAVELIN_FATAL("power CSV: missing mem watts in '", line, "'");
        s.memWatts = std::stod(field);
        if (!std::getline(ls, field, ','))
            JAVELIN_FATAL("power CSV: missing component in '", line, "'");
        s.component = componentByName(field);
        trace.push_back(s);
    }
    return trace;
}

} // namespace core
} // namespace javelin
