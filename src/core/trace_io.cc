#include "core/trace_io.hh"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <system_error>

#include "util/logging.hh"
#include "util/units.hh"

namespace javelin {
namespace core {

namespace {

/**
 * Shortest representation that round-trips the exact double
 * (std::to_chars with no precision argument), so a written trace
 * parses back bit-identical — default ostream precision (6) loses
 * low-order bits on every power value.
 */
void
writeDouble(std::ostream &os, double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    os.write(buf, res.ptr - buf);
}

} // namespace

void
writePowerCsv(std::ostream &os, const PowerTrace &trace)
{
    os << "tick,us,window_ticks,cpu_watts,mem_watts,component\n";
    for (const auto &s : trace) {
        os << s.tick << ',';
        writeDouble(os, static_cast<double>(s.tick) / kTicksPerMicro);
        os << ',' << s.windowTicks << ',';
        writeDouble(os, s.cpuWatts);
        os << ',';
        writeDouble(os, s.memWatts);
        os << ',' << componentName(s.component) << '\n';
    }
}

void
writePerfCsv(std::ostream &os, const PerfTrace &trace)
{
    os << "tick,component,cycles,instructions,stall_cycles,"
          "l1d_accesses,l1d_misses,l2_accesses,l2_misses,"
          "dram_accesses,ipc,l2_miss_rate\n";
    for (const auto &s : trace) {
        const auto &d = s.delta;
        os << s.tick << ',' << componentName(s.component) << ','
           << d.cycles << ',' << d.instructions << ',' << d.stallCycles
           << ',' << d.l1dAccesses << ',' << d.l1dMisses << ','
           << d.l2Accesses << ',' << d.l2Misses << ','
           << d.dramAccesses << ',';
        writeDouble(os, d.ipc());
        os << ',';
        writeDouble(os, d.l2MissRate());
        os << '\n';
    }
}

namespace {

ComponentId
componentByName(const std::string &name, std::size_t lineNo)
{
    for (std::size_t i = 0; i < kNumComponents; ++i) {
        const auto id = static_cast<ComponentId>(i);
        if (componentName(id) == name)
            return id;
    }
    JAVELIN_FATAL("power CSV line ", lineNo,
                  ": unknown component in trace: ", name);
}

/** Split the next comma field; fatal (with line number) if missing. */
std::string
nextField(std::istringstream &ls, std::size_t lineNo, const char *what)
{
    std::string field;
    if (!std::getline(ls, field, ','))
        JAVELIN_FATAL("power CSV line ", lineNo, ": missing ", what,
                      " field");
    return field;
}

/**
 * Strict full-field numeric parses: a malformed field fails through
 * JAVELIN_FATAL naming the line and the offending text (matching
 * util/json's line-numbered diagnostics) instead of escaping as an
 * uncaught std::invalid_argument from std::stoull/std::stod.
 */
std::uint64_t
parseU64Field(const std::string &field, std::size_t lineNo,
              const char *what)
{
    std::uint64_t v = 0;
    const char *first = field.data();
    const char *last = field.data() + field.size();
    const auto res = std::from_chars(first, last, v);
    if (res.ec != std::errc() || res.ptr != last || field.empty())
        JAVELIN_FATAL("power CSV line ", lineNo, ": malformed ", what,
                      " field '", field, "'");
    return v;
}

double
parseDoubleField(const std::string &field, std::size_t lineNo,
                 const char *what)
{
    double v = 0.0;
    const char *first = field.data();
    const char *last = field.data() + field.size();
    const auto res = std::from_chars(first, last, v);
    if (res.ec != std::errc() || res.ptr != last || field.empty())
        JAVELIN_FATAL("power CSV line ", lineNo, ": malformed ", what,
                      " field '", field, "'");
    return v;
}

} // namespace

PowerTrace
readPowerCsv(std::istream &is)
{
    PowerTrace trace;
    std::string line;
    if (!std::getline(is, line))
        return trace; // empty input: empty trace
    if (line.rfind("tick,", 0) != 0)
        JAVELIN_FATAL("power CSV missing header");
    std::size_t lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        PowerSample s;

        s.tick = static_cast<Tick>(
            parseU64Field(nextField(ls, lineNo, "tick"), lineNo,
                          "tick"));
        nextField(ls, lineNo, "us"); // derived microseconds (ignored)
        s.windowTicks = static_cast<Tick>(
            parseU64Field(nextField(ls, lineNo, "window"), lineNo,
                          "window"));
        s.cpuWatts =
            parseDoubleField(nextField(ls, lineNo, "cpu watts"),
                             lineNo, "cpu watts");
        s.memWatts =
            parseDoubleField(nextField(ls, lineNo, "mem watts"),
                             lineNo, "mem watts");
        s.component =
            componentByName(nextField(ls, lineNo, "component"),
                            lineNo);
        trace.push_back(s);
    }
    return trace;
}

} // namespace core
} // namespace javelin
