#include "sim/system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace javelin {
namespace sim {

System::System(const PlatformSpec &spec)
    : spec_(spec), memory_(spec.memory, counters_),
      cpu_(spec.cpu, memory_, counters_), power_(spec.power),
      memPower_(spec.memPower), thermal_(spec.thermal),
      dvfs_(*this, spec.dvfsPoints)
{
    addPeriodicTask("thermal", spec_.thermalPeriod,
                    [this](Tick now) { thermalStep(now); });
}

void
System::addPeriodicTask(const std::string &name, Tick period, TaskFn fn,
                        Tick phase)
{
    JAVELIN_ASSERT(period > 0, "periodic task needs a positive period");
    TaskEntry entry{name, period, cpu_.now() + period + phase,
                    std::move(fn)};
    tasks_.push_back(std::move(entry));
    recomputeNextDue();
}

void
System::recomputeNextDue()
{
    nextDue_ = std::numeric_limits<Tick>::max();
    for (const auto &t : tasks_)
        nextDue_ = std::min(nextDue_, t.next);
}

void
System::runDueTasks()
{
    const Tick now = cpu_.now();
    for (auto &t : tasks_) {
        while (t.next <= now) {
            const Tick scheduled = t.next;
            // Advance the deadline before firing so a task observing
            // poll() re-entrantly cannot fire itself twice.
            t.next += t.period;
            t.fn(scheduled);
        }
    }
    recomputeNextDue();
}

void
System::syncPower()
{
    cpu_.materializeCounters();
    power_.update(counters_, cpu_.now());
    memPower_.update(counters_, cpu_.now());
}

double
System::cpuJoules()
{
    syncPower();
    return power_.cumulativeJoules();
}

double
System::memoryJoules()
{
    syncPower();
    return memPower_.cumulativeJoules();
}

void
System::applyOperatingPoint(const OperatingPoint &point)
{
    // Integrate energy at the old settings up to this instant first so
    // the change does not retroactively re-price past activity.
    syncPower();
    cpu_.setFrequency(point.freqHz);
    power_.setFrequency(point.freqHz);
    power_.setVoltage(point.volts);
}

void
System::idleFor(Tick duration)
{
    const Tick end = cpu_.now() + duration;
    while (cpu_.now() < end) {
        const Tick step = std::min<Tick>(end - cpu_.now(),
                                         spec_.thermalPeriod);
        cpu_.idleFor(step);
        poll();
    }
}

void
System::thermalStep(Tick now)
{
    syncPower();
    const double joules = power_.cumulativeJoules();
    if (now > thermalRefTick_) {
        const double watts =
            (joules - thermalRefJoules_) / ticksToSeconds(now -
                                                          thermalRefTick_);
        const bool changed =
            thermal_.step(watts, ticksToSeconds(now - thermalRefTick_));
        if (changed)
            cpu_.setDutyCycle(thermal_.requestedDuty());
    }
    thermalRefJoules_ = joules;
    thermalRefTick_ = now;
}

DvfsController::DvfsController(System &system,
                               std::vector<OperatingPoint> points)
    : system_(system), points_(std::move(points)),
      current_(points_.empty() ? 0 : points_.size() - 1)
{
    // Apply the boot operating point so the CPU and power models agree
    // with current() from tick zero; otherwise a spec whose nominal
    // frequency/voltage differs from the top operating point would run
    // at settings dvfs().current() does not report until the first
    // set().
    if (!points_.empty()) {
        system_.applyOperatingPoint(points_[current_]);
        JAVELIN_ASSERT(system_.cpu().frequency() ==
                           points_[current_].freqHz,
                       "DVFS boot point not applied to the CPU model");
        JAVELIN_ASSERT(system_.power().voltage() ==
                           points_[current_].volts,
                       "DVFS boot point not applied to the power model");
    }
}

void
DvfsController::set(std::size_t index)
{
    JAVELIN_ASSERT(index < points_.size(), "bad operating point index");
    current_ = index;
    system_.applyOperatingPoint(points_[current_]);
}

void
DvfsController::up()
{
    if (current_ + 1 < points_.size())
        set(current_ + 1);
}

void
DvfsController::down()
{
    if (current_ > 0)
        set(current_ - 1);
}

} // namespace sim
} // namespace javelin
