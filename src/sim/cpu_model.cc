#include "sim/cpu_model.hh"

#include "util/logging.hh"

namespace javelin {
namespace sim {

CpuModel::CpuModel(const Config &config, MemoryHierarchy &memory,
                   PerfCounters &counters)
    : config_(config), memory_(memory), counters_(counters),
      freqHz_(config.freqHz)
{
    JAVELIN_ASSERT(freqHz_ > 0, "cpu frequency must be positive");
    JAVELIN_ASSERT(config_.baseCpi > 0, "base CPI must be positive");
    recomputePeriod();
}

void
CpuModel::recomputePeriod()
{
    periodEffTicks_ =
        static_cast<double>(kTicksPerSecond) / freqHz_ / duty_;
}

void
CpuModel::chargePenalty(std::uint32_t penalty_cycles)
{
    if (penalty_cycles == 0)
        return;
    const double exposed =
        static_cast<double>(penalty_cycles) * config_.memStallFactor;
    counters_.stallCycles += static_cast<std::uint64_t>(exposed);
    advanceCycles(exposed);
}

void
CpuModel::execute(std::uint32_t micro_ops, Address code_addr,
                  std::uint32_t code_bytes)
{
    // One I-cache access per line spanned by the batch. A zero-byte
    // batch charges no fetch: it models micro-ops whose code was already
    // fetched by the surrounding dispatch batch.
    if (code_bytes > 0) {
        const std::uint32_t line = memory_.config().l1i.lineBytes;
        const Address first = code_addr / line;
        const Address last = (code_addr + code_bytes - 1) / line;
        for (Address l = first; l <= last; ++l)
            chargePenalty(memory_.fetch(l * line));
    }

    counters_.instructions += micro_ops;
    advanceCycles(static_cast<double>(micro_ops) * config_.baseCpi);
}

void
CpuModel::load(Address addr)
{
    // A load is itself a retired micro-op occupying an issue slot.
    ++counters_.instructions;
    advanceCycles(config_.baseCpi);
    chargePenalty(memory_.data(addr, false));
}

void
CpuModel::store(Address addr)
{
    ++counters_.instructions;
    advanceCycles(config_.baseCpi);
    // Stores retire through a store buffer; expose half the miss penalty.
    const std::uint32_t penalty = memory_.data(addr, true);
    if (penalty)
        chargePenalty(penalty / 2);
}

void
CpuModel::branch(bool mispredict)
{
    ++counters_.branches;
    ++counters_.instructions;
    advanceCycles(config_.baseCpi);
    if (mispredict) {
        ++counters_.branchMispredicts;
        const auto p = static_cast<double>(config_.branchPenalty);
        counters_.stallCycles += config_.branchPenalty;
        advanceCycles(p);
    }
}

void
CpuModel::stall(double cycles)
{
    JAVELIN_ASSERT(cycles >= 0, "negative stall");
    counters_.stallCycles += static_cast<std::uint64_t>(cycles);
    advanceCycles(cycles);
}

void
CpuModel::idleFor(Tick duration)
{
    // Idle advances wall-clock time but not the cycle counters; the HPM
    // cycle counter on both platforms halts when the clock is gated.
    tickAcc_ += static_cast<double>(duration);
}

void
CpuModel::setDutyCycle(double duty)
{
    JAVELIN_ASSERT(duty > 0.0 && duty <= 1.0, "bad duty cycle ", duty);
    duty_ = duty;
    recomputePeriod();
}

void
CpuModel::setFrequency(double freq_hz)
{
    JAVELIN_ASSERT(freq_hz > 0, "bad frequency");
    freqHz_ = freq_hz;
    recomputePeriod();
}

} // namespace sim
} // namespace javelin
