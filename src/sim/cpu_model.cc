#include "sim/cpu_model.hh"

#include "util/logging.hh"

namespace javelin {
namespace sim {

CpuModel::CpuModel(const Config &config, MemoryHierarchy &memory,
                   PerfCounters &counters)
    : config_(config), memory_(memory), counters_(counters),
      freqHz_(config.freqHz)
{
    JAVELIN_ASSERT(freqHz_ > 0, "cpu frequency must be positive");
    JAVELIN_ASSERT(config_.baseCpi > 0, "base CPI must be positive");
    const std::uint32_t line = memory_.config().l1i.lineBytes;
    JAVELIN_ASSERT(line > 0 && std::has_single_bit(line),
                   "L1I line size must be a power of two");
    fetchLineShift_ = static_cast<std::uint32_t>(std::countr_zero(line));
    const std::uint32_t dline = memory_.config().l1d.lineBytes;
    JAVELIN_ASSERT(dline > 0 && std::has_single_bit(dline),
                   "L1D line size must be a power of two");
    dataLineShift_ = static_cast<std::uint32_t>(std::countr_zero(dline));
    recomputePeriod();
}

void
CpuModel::recomputePeriod()
{
    periodEffTicks_ =
        static_cast<double>(kTicksPerSecond) / freqHz_ / duty_;
    baseCpiTicks_ = config_.baseCpi * periodEffTicks_;
}

void
CpuModel::idleFor(Tick duration)
{
    // Idle advances wall-clock time but not the cycle counters; the HPM
    // cycle counter on both platforms halts when the clock is gated.
    tickAcc_ += static_cast<double>(duration);
}

void
CpuModel::setDutyCycle(double duty)
{
    JAVELIN_ASSERT(duty > 0.0 && duty <= 1.0, "bad duty cycle ", duty);
    duty_ = duty;
    recomputePeriod();
}

void
CpuModel::setFrequency(double freq_hz)
{
    JAVELIN_ASSERT(freq_hz > 0, "bad frequency");
    freqHz_ = freq_hz;
    recomputePeriod();
}

} // namespace sim
} // namespace javelin
