#include "sim/memory_hierarchy.hh"

namespace javelin {
namespace sim {

MemoryHierarchy::MemoryHierarchy(const Config &config,
                                 PerfCounters &counters)
    : config_(config), counters_(counters), l1i_(config.l1i),
      l1d_(config.l1d)
{
    if (config_.l2)
        l2_.emplace(*config_.l2);
}

std::uint32_t
MemoryHierarchy::lowerLevel(Address addr, bool is_write, bool victim_dirty)
{
    std::uint32_t penalty = 0;
    if (victim_dirty)
        penalty += config_.writebackCycles;

    if (l2_) {
        ++counters_.l2Accesses;
        const auto r = l2_->access(addr, is_write);
        if (r.hit) {
            // A hit on a prefetched line may catch the fill in flight:
            // streaming faster than DRAM can deliver still stalls.
            if (r.prefetchedHit)
                penalty += config_.dramCycles / 3;
            return penalty + config_.l2HitCycles;
        }
        ++counters_.l2Misses;
        if (r.writeback) {
            ++counters_.dramWritebacks;
            penalty += config_.writebackCycles;
        }
        ++counters_.dramAccesses;
        return penalty + config_.dramCycles;
    }

    if (victim_dirty)
        ++counters_.dramWritebacks;
    ++counters_.dramAccesses;
    return penalty + config_.dramCycles;
}

void
MemoryHierarchy::prefetchNextLine(Address addr)
{
    if (!l2_)
        return;
    const Address next = addr + l2_->config().lineBytes;
    // Bypass the demand counters: prefetch traffic costs DRAM energy
    // but neither stalls the core nor perturbs the L2 miss rate the
    // HPM samplers report. The L2 tag-array probe itself is counted
    // (and priced by the power model) whether or not it fills; the
    // probe and the fill share one scan via insertPrefetch's return.
    ++counters_.l2Probes;
    if (l2_->insertPrefetch(next))
        ++counters_.dramAccesses;
}

std::uint32_t
MemoryHierarchy::dataMiss(Address addr, bool is_write, bool victim_dirty)
{
    const std::uint32_t penalty = lowerLevel(addr, is_write, victim_dirty);
    if (config_.nextLinePrefetch)
        prefetchNextLine(addr);
    return penalty;
}

void
MemoryHierarchy::flush()
{
    l1i_.flush();
    l1d_.flush();
    if (l2_)
        l2_->flush();
}

} // namespace sim
} // namespace javelin
