#include "sim/perf_counters.hh"

namespace javelin {
namespace sim {

PerfCounters
PerfCounters::operator-(const PerfCounters &rhs) const
{
    PerfCounters d;
    d.cycles = cycles - rhs.cycles;
    d.instructions = instructions - rhs.instructions;
    d.stallCycles = stallCycles - rhs.stallCycles;
    d.branches = branches - rhs.branches;
    d.branchMispredicts = branchMispredicts - rhs.branchMispredicts;
    d.l1iAccesses = l1iAccesses - rhs.l1iAccesses;
    d.l1iMisses = l1iMisses - rhs.l1iMisses;
    d.l1dAccesses = l1dAccesses - rhs.l1dAccesses;
    d.l1dMisses = l1dMisses - rhs.l1dMisses;
    d.l2Accesses = l2Accesses - rhs.l2Accesses;
    d.l2Misses = l2Misses - rhs.l2Misses;
    d.l2Probes = l2Probes - rhs.l2Probes;
    d.dramAccesses = dramAccesses - rhs.dramAccesses;
    d.dramWritebacks = dramWritebacks - rhs.dramWritebacks;
    return d;
}

PerfCounters &
PerfCounters::operator+=(const PerfCounters &rhs)
{
    cycles += rhs.cycles;
    instructions += rhs.instructions;
    stallCycles += rhs.stallCycles;
    branches += rhs.branches;
    branchMispredicts += rhs.branchMispredicts;
    l1iAccesses += rhs.l1iAccesses;
    l1iMisses += rhs.l1iMisses;
    l1dAccesses += rhs.l1dAccesses;
    l1dMisses += rhs.l1dMisses;
    l2Accesses += rhs.l2Accesses;
    l2Misses += rhs.l2Misses;
    l2Probes += rhs.l2Probes;
    dramAccesses += rhs.dramAccesses;
    dramWritebacks += rhs.dramWritebacks;
    return *this;
}

double
PerfCounters::ipc() const
{
    return cycles ? static_cast<double>(instructions) /
                    static_cast<double>(cycles)
                  : 0.0;
}

double
PerfCounters::l2MissRate() const
{
    return l2Accesses ? static_cast<double>(l2Misses) /
                        static_cast<double>(l2Accesses)
                      : 0.0;
}

double
PerfCounters::l1dMissRate() const
{
    return l1dAccesses ? static_cast<double>(l1dMisses) /
                         static_cast<double>(l1dAccesses)
                       : 0.0;
}

} // namespace sim
} // namespace javelin
