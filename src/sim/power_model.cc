#include "sim/power_model.hh"

#include "util/logging.hh"

namespace javelin {
namespace sim {

PowerModel::PowerModel(const Config &config)
    : config_(config), volts_(config.nominalVolts),
      freqHz_(config.nominalFreqHz)
{
    JAVELIN_ASSERT(config_.idleWatts >= 0, "negative idle power");
    JAVELIN_ASSERT(config_.nominalVolts > 0, "bad nominal voltage");
}

double
PowerModel::idleWatts() const
{
    // Idle power is dominated by the clock tree and leakage; scale it
    // with f * V^2 like the dynamic part (a common first-order model).
    const double vr = volts_ / config_.nominalVolts;
    const double fr = freqHz_ / config_.nominalFreqHz;
    return config_.idleWatts * vr * vr * (0.5 + 0.5 * fr);
}

double
PowerModel::dynamicJoules(const PerfCounters &delta) const
{
    const double vr = volts_ / config_.nominalVolts;
    const double scale = vr * vr;
    const double e =
        config_.epInstr * static_cast<double>(delta.instructions) +
        config_.epL1d * static_cast<double>(delta.l1dAccesses) +
        config_.epL1i * static_cast<double>(delta.l1iAccesses) +
        config_.epL2 * static_cast<double>(delta.l2Accesses) +
        config_.epL2Probe * static_cast<double>(delta.l2Probes) +
        config_.epDram * static_cast<double>(delta.dramAccesses +
                                             delta.dramWritebacks) +
        config_.epStallCycle * static_cast<double>(delta.stallCycles);
    return e * scale;
}

void
PowerModel::update(const PerfCounters &counters, Tick now)
{
    JAVELIN_ASSERT(now >= lastTick_, "time went backwards in power model");
    const double dt = ticksToSeconds(now - lastTick_);
    cumulativeJoules_ += idleWatts() * dt +
                         dynamicJoules(counters - lastCounters_);
    lastCounters_ = counters;
    lastTick_ = now;
}

double
PowerModel::windowWatts(double ref_joules, Tick ref_tick, Tick now) const
{
    if (now <= ref_tick)
        return idleWatts();
    const double dt = ticksToSeconds(now - ref_tick);
    return (cumulativeJoules_ - ref_joules) / dt;
}

void
PowerModel::setVoltage(double volts)
{
    JAVELIN_ASSERT(volts > 0, "bad voltage");
    volts_ = volts;
}

void
PowerModel::setFrequency(double freq_hz)
{
    JAVELIN_ASSERT(freq_hz > 0, "bad frequency");
    freqHz_ = freq_hz;
}

} // namespace sim
} // namespace javelin
