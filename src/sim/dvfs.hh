/**
 * @file
 * Dynamic voltage and frequency scaling support (paper Section VII lists
 * DVFS as future work; javelin implements it as an extension exercised by
 * bench/abl_dvfs).
 */

#ifndef JAVELIN_SIM_DVFS_HH
#define JAVELIN_SIM_DVFS_HH

#include <cstddef>
#include <vector>

namespace javelin {
namespace sim {

class System;

/** One frequency/voltage pair the core can run at. */
struct OperatingPoint
{
    double freqHz;
    double volts;
};

/**
 * Policy wrapper around a platform's table of operating points.
 */
class DvfsController
{
  public:
    DvfsController(System &system, std::vector<OperatingPoint> points);

    /** Number of available operating points (highest performance last). */
    std::size_t numPoints() const { return points_.size(); }
    std::size_t currentIndex() const { return current_; }
    const OperatingPoint &current() const { return points_[current_]; }
    const OperatingPoint &point(std::size_t i) const { return points_.at(i); }

    /** Select an operating point by index. */
    void set(std::size_t index);

    /** Step one point up (faster) or down (slower); saturates. */
    void up();
    void down();

  private:
    System &system_;
    std::vector<OperatingPoint> points_;
    std::size_t current_;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_DVFS_HH
