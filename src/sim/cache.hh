/**
 * @file
 * Set-associative write-back cache model with true-LRU replacement.
 *
 * Models the cache geometries of the paper's two platforms: the Pentium M
 * (32 KB 8-way L1I/L1D, 1 MB 8-way L2) and the PXA255 (32 KB 32-way
 * L1I/L1D, no L2). Timing is handled by the enclosing MemoryHierarchy;
 * this class only tracks hit/miss/victim state and statistics.
 *
 * The access path is split into an inlined MRU fast path and an
 * out-of-line way scan (DESIGN.md §5c): the model remembers the way it
 * touched last, and a repeated hit on the same line — the dominant
 * pattern for straight-line instruction fetch and field loops — skips
 * the scan entirely. The memo is purely an index: the fast path
 * re-validates tag and valid bit, and performs exactly the same LRU
 * clock, dirty-bit and statistics updates as the scan, so no
 * architectural event ever differs (tests/test_cache_diff.cc holds an
 * independent reference model to that contract).
 */

#ifndef JAVELIN_SIM_CACHE_HH
#define JAVELIN_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace javelin {
namespace sim {

/** Simulated physical address. */
using Address = std::uint64_t;

/**
 * One cache level.
 */
class Cache
{
  public:
    struct Config
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 32 * 1024;
        std::uint32_t assoc = 8;
        std::uint32_t lineBytes = 64;
    };

    /** Outcome of a single cache access. */
    struct Result
    {
        bool hit = false;
        /** A dirty victim line was evicted and must be written back. */
        bool writeback = false;
        /** Hit on a line brought in by the prefetcher (possibly still
         *  in flight — the hierarchy charges a catch-up penalty). */
        bool prefetchedHit = false;
    };

    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t readMisses = 0;
        std::uint64_t writeMisses = 0;
        std::uint64_t writebacks = 0;

        std::uint64_t accesses() const { return reads + writes; }
        std::uint64_t misses() const { return readMisses + writeMisses; }
        double
        missRate() const
        {
            const auto a = accesses();
            return a ? static_cast<double>(misses()) /
                       static_cast<double>(a)
                     : 0.0;
        }
    };

    explicit Cache(const Config &config);

    /**
     * Access one address. A miss allocates the line (fetch-on-write for
     * stores) and evicts the LRU way, reporting a writeback if the victim
     * was dirty.
     *
     * Fast path: if the MRU memo still holds the addressed line, the way
     * scan is skipped. A tag can only reside in the set it indexes, so a
     * tag+valid match on the memoized way proves it is the right line.
     */
    Result
    access(Address addr, bool is_write)
    {
        const Address line = lineNumber(addr);
        if (mru_ != kNoMru) {
            Way &way = ways_[mru_];
            if (way.tag == line && way.valid) [[likely]] {
                ++useClock_;
                if (is_write)
                    ++stats_.writes;
                else
                    ++stats_.reads;
                way.lastUse = useClock_;
                way.dirty = way.dirty || is_write;
                const bool was_prefetched = way.prefetched;
                way.prefetched = false;
                return {true, false, was_prefetched};
            }
        }
        return accessSlow(line, is_write);
    }

    /** Insert a line on behalf of the prefetcher (no recency claim on
     *  the demand stream; the line is tagged as prefetched). */
    void insertPrefetch(Address addr);

    /** True if the line holding addr is currently resident. */
    bool contains(Address addr) const;

    /** Invalidate everything (e.g., between experiment runs). */
    void flush();

    const Config &config() const { return config_; }
    const Stats &stats() const { return stats_; }
    std::uint32_t numSets() const { return numSets_; }

  private:
    struct Way
    {
        Address tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    /** Sentinel: MRU memo empty (fresh or just flushed). */
    static constexpr std::uint32_t kNoMru = 0xFFFFFFFFu;

    /** Full way scan: hit refresh or LRU-victim allocation. Updates the
     *  MRU memo to the touched way. */
    Result accessSlow(Address line, bool is_write);

    Address lineNumber(Address addr) const { return addr >> lineShift_; }
    std::uint32_t
    setIndex(Address line) const
    {
        return static_cast<std::uint32_t>(line) & setMask_;
    }

    Config config_;
    Stats stats_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_;
    std::uint32_t setMask_;
    std::uint32_t mru_ = kNoMru;
    std::uint64_t useClock_ = 0;
    std::vector<Way> ways_; // numSets_ * assoc, set-major
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_CACHE_HH
