/**
 * @file
 * Set-associative write-back cache model with true-LRU replacement.
 *
 * Models the cache geometries of the paper's two platforms: the Pentium M
 * (32 KB 8-way L1I/L1D, 1 MB 8-way L2) and the PXA255 (32 KB 32-way
 * L1I/L1D, no L2). Timing is handled by the enclosing MemoryHierarchy;
 * this class only tracks hit/miss/victim state and statistics.
 *
 * The access path is split into an inlined memo fast path and an
 * out-of-line way scan (DESIGN.md §5c/§5d/§5g): a direct-mapped,
 * line-indexed way memo (sized to four times the line capacity) remembers
 * which way last held each line, so *every* re-touched resident line —
 * straight-line instruction fetch, the interpreter's handler lines,
 * frame and spill lines across a deep call stack, the GC's scan/copy
 * spans — skips the scan, not just the last two lines per set as the
 * earlier per-set MRU-2 memo did. Call-dense workloads walk hundreds
 * of distinct stack lines between re-touches; per-set recency lost
 * them, a line-indexed table does not. The memo is purely a way
 * index: the fast path re-validates the tag (a tag can only reside in
 * the set it indexes, so a validated match proves the right, valid
 * line), and performs exactly the same LRU clock, dirty-bit and
 * statistics updates as the scan, so no architectural event ever
 * differs (tests/test_cache_diff.cc holds an independent reference
 * model to that contract).
 *
 * Storage is structure-of-arrays (DESIGN.md §5d): the tags of one set
 * are contiguous, so the hit scan touches one host cache line per set;
 * the replacement metadata lives in a parallel array that is only read
 * when a victim must actually be chosen. An invalid way holds a
 * sentinel tag no real line can produce, which keeps the hit scan a
 * single compare per way and lets the MRU memo slots point at a
 * permanently-invalid extra tag slot instead of branching on "memo
 * empty".
 */

#ifndef JAVELIN_SIM_CACHE_HH
#define JAVELIN_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace javelin {
namespace sim {

/** Simulated physical address. */
using Address = std::uint64_t;

/**
 * One cache level.
 */
class Cache
{
  public:
    struct Config
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 32 * 1024;
        std::uint32_t assoc = 8;
        std::uint32_t lineBytes = 64;
    };

    /** Outcome of a single cache access. */
    struct Result
    {
        bool hit = false;
        /** A dirty victim line was evicted and must be written back. */
        bool writeback = false;
        /** Hit on a line brought in by the prefetcher (possibly still
         *  in flight — the hierarchy charges a catch-up penalty). */
        bool prefetchedHit = false;
    };

    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t readMisses = 0;
        std::uint64_t writeMisses = 0;
        std::uint64_t writebacks = 0;

        std::uint64_t accesses() const { return reads + writes; }
        std::uint64_t misses() const { return readMisses + writeMisses; }
        double
        missRate() const
        {
            const auto a = accesses();
            return a ? static_cast<double>(misses()) /
                       static_cast<double>(a)
                     : 0.0;
        }
    };

    explicit Cache(const Config &config);

    /**
     * Access one address. A miss allocates the line (fetch-on-write for
     * stores) and evicts the LRU way, reporting a writeback if the victim
     * was dirty.
     *
     * Fast path: if the line's memo slot still points at a way holding
     * it, the way scan is skipped. A tag can only reside in the set it
     * indexes and invalid ways hold the unreachable sentinel tag, so a
     * tag match on a memoized way proves it is the right, valid line.
     */
    Result
    access(Address addr, bool is_write)
    {
        const Address line = lineNumber(addr);
        const std::uint32_t way = memo_[memoSlot(line)];
        if (tags_[way] == line) [[likely]]
            return hitWay(way, is_write);
        return accessSlow(line, is_write);
    }

    /**
     * Fold `count` further accesses to the line the immediately
     * preceding access() touched, with nothing else in between: the
     * line is resident and its memo slot points at it by construction,
     * so the final cache state and statistics are exactly those of
     * `count` access() calls — the LRU clock ticks once per access,
     * the hit counters grow by `count`, the way's use word ends at the
     * final clock with the dirty bit carried (or set, for writes) and
     * the prefetched bit dropped, just as repeated hitWay calls would
     * leave it. Block accessors use this to skip re-walking the memo
     * for stride runs inside one line.
     */
    void
    repeatHits(Address addr, std::uint32_t count, bool is_write)
    {
        const Address line = lineNumber(addr);
        const std::uint32_t way = memo_[memoSlot(line)];
        JAVELIN_ASSERT(tags_[way] == line,
                       "repeatHits on a non-resident line");
        useClock_ += count;
        if (is_write)
            stats_.writes += count;
        else
            stats_.reads += count;
        use_[way] = (useClock_ << kUseShift) | (use_[way] & kUseDirty) |
                    (is_write ? kUseDirty : 0);
    }

    /**
     * Insert a line on behalf of the prefetcher (no recency claim on
     * the demand stream; the line is tagged as prefetched).
     * @return true if the line was actually filled, false if it was
     *         already resident (no state changes beyond the LRU clock
     *         tick, exactly like the pre-memo early return).
     */
    bool insertPrefetch(Address addr);

    /** True if the line holding addr is currently resident. */
    bool contains(Address addr) const;

    /** Invalidate everything (e.g., between experiment runs). */
    void flush();


    const Config &config() const { return config_; }
    const Stats &stats() const { return stats_; }
    std::uint32_t numSets() const { return numSets_; }

  private:
    /**
     * Tag stored for an invalid way. lineBytes >= 2 is asserted, so a
     * real line number is always < 2^63 and can never compare equal.
     */
    static constexpr Address kInvalidTag = ~static_cast<Address>(0);

    /**
     * Replacement/state word of one way: the LRU clock value shifted
     * left two, with the dirty bit at bit 0 and the prefetched bit at
     * bit 1. Use clock values are unique (the clock ticks on every
     * access), so comparing packed words orders ways exactly like
     * comparing raw clock values — and the whole set's replacement
     * state fits one 64-byte host line, where the old per-way struct
     * (clock + three bools, padded) spread a set across three.
     */
    static constexpr std::uint64_t kUseDirty = 1;
    static constexpr std::uint64_t kUsePrefetched = 2;
    static constexpr std::uint64_t kUseShift = 2;

    /** Direct-mapped memo slot of a line. */
    std::size_t
    memoSlot(Address line) const
    {
        return static_cast<std::size_t>(line) & memoMask_;
    }

    /** Full way scan: hit refresh or LRU-victim allocation. Updates the
     *  line's memo slot to the touched way. */
    Result accessSlow(Address line, bool is_write);

    /** Shared hit bookkeeping for the memo fast path and the scan. */
    Result
    hitWay(std::uint32_t way, bool is_write)
    {
        ++useClock_;
        if (is_write)
            ++stats_.writes;
        else
            ++stats_.reads;
        const std::uint64_t old = use_[way];
        use_[way] = (useClock_ << kUseShift) |
                    (old & kUseDirty) |
                    (is_write ? kUseDirty : 0);
        return {true, false, (old & kUsePrefetched) != 0};
    }

    bool wayValid(std::uint32_t way) const
    {
        return tags_[way] != kInvalidTag;
    }
    bool wayDirty(std::uint32_t way) const
    {
        return (use_[way] & kUseDirty) != 0;
    }

    Address lineNumber(Address addr) const { return addr >> lineShift_; }
    std::uint32_t
    setIndex(Address line) const
    {
        return static_cast<std::uint32_t>(line) & setMask_;
    }

    Config config_;
    Stats stats_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_;
    std::uint32_t setMask_;
    std::uint32_t memoMask_;
    /** Line-indexed way memo (direct-mapped, 4x the line capacity);
     *  empty slots point at the sentinel tag slot. */
    std::vector<std::uint32_t> memo_;
    std::uint64_t useClock_ = 0;
    /** numSets_ * assoc set-major tags + one trailing sentinel slot
     *  that permanently holds kInvalidTag (the empty-memo target). */
    std::vector<Address> tags_;
    /** Packed per-way replacement words, numSets_ * assoc, set-major. */
    std::vector<std::uint64_t> use_;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_CACHE_HH
