#include "sim/memory_power.hh"

#include "util/logging.hh"

namespace javelin {
namespace sim {

MemoryPowerModel::MemoryPowerModel(const Config &config)
    : config_(config)
{
    JAVELIN_ASSERT(config_.idleWatts >= 0, "negative idle power");
}

void
MemoryPowerModel::update(const PerfCounters &counters, Tick now)
{
    JAVELIN_ASSERT(now >= lastTick_,
                   "time went backwards in memory power model");
    const double dt = ticksToSeconds(now - lastTick_);
    const PerfCounters delta = counters - lastCounters_;
    cumulativeJoules_ +=
        config_.idleWatts * dt +
        config_.epAccess * static_cast<double>(delta.dramAccesses +
                                               delta.dramWritebacks);
    lastCounters_ = counters;
    lastTick_ = now;
}

double
MemoryPowerModel::windowWatts(double ref_joules, Tick ref_tick,
                              Tick now) const
{
    if (now <= ref_tick)
        return config_.idleWatts;
    const double dt = ticksToSeconds(now - ref_tick);
    return (cumulativeJoules_ - ref_joules) / dt;
}

} // namespace sim
} // namespace javelin
