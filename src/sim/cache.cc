#include "sim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace javelin {
namespace sim {

Cache::Cache(const Config &config)
    : config_(config)
{
    JAVELIN_ASSERT(config_.lineBytes >= 2 &&
                   std::has_single_bit(config_.lineBytes),
                   "cache line size must be a power of two >= 2");
    JAVELIN_ASSERT(config_.assoc > 0, "cache associativity must be > 0");
    JAVELIN_ASSERT(config_.sizeBytes %
                   (static_cast<std::uint64_t>(config_.lineBytes) *
                    config_.assoc) == 0,
                   "cache size must be a multiple of assoc * line size");

    numSets_ = static_cast<std::uint32_t>(
        config_.sizeBytes /
        (static_cast<std::uint64_t>(config_.lineBytes) * config_.assoc));
    JAVELIN_ASSERT(numSets_ > 0 && std::has_single_bit(numSets_),
                   "cache set count must be a power of two, got ",
                   numSets_);
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    setMask_ = numSets_ - 1;

    const std::size_t ways =
        static_cast<std::size_t>(numSets_) * config_.assoc;
    tags_.assign(ways + 1, kInvalidTag);
    use_.assign(ways, 0);
    // 4x the line capacity: the miss stream reaching a lower level is
    // exactly the set of lines the upper level cannot hold, so memo
    // pressure is highest right where collisions are most expensive.
    memoMask_ = static_cast<std::uint32_t>(
                    std::bit_ceil(static_cast<std::uint64_t>(ways))) *
                    4 -
                1;
    memo_.assign(static_cast<std::size_t>(memoMask_) + 1,
                 static_cast<std::uint32_t>(ways));
}

Cache::Result
Cache::accessSlow(Address line, bool is_write)
{
    const std::uint32_t set = setIndex(line);
    const std::uint32_t base = set * config_.assoc;
    const Address *tags = tags_.data() + base;
    const std::uint64_t *use = use_.data() + base;

    // Deep-stack workloads walk more distinct lines than the scaled L1
    // holds, so true misses dominate this path (the memo catches most
    // resident re-touches before it). One fixed-trip, branch-free pass
    // computes all three selects a miss needs — the hit way, the last
    // invalid way (as the original combined scan preferred) and the
    // strict LRU minimum (first minimum wins; packed use words order
    // exactly like raw clock values because clocks are unique) — so a
    // miss never re-walks the set. The 8-way trip count covers every
    // cache of both paper platforms except the PXA255's 32-way L1s.
    std::uint32_t hit = config_.assoc;
    std::uint32_t free_way = config_.assoc;
    std::uint32_t lru = 0;
    std::uint64_t lru_use = ~std::uint64_t{0};
    if (config_.assoc == 8) [[likely]] {
        for (std::uint32_t w = 0; w < 8; ++w) {
            hit = tags[w] == line ? w : hit;
            free_way = tags[w] == kInvalidTag ? w : free_way;
            const bool less = use[w] < lru_use;
            lru = less ? w : lru;
            lru_use = less ? use[w] : lru_use;
        }
    } else {
        for (std::uint32_t w = 0; w < config_.assoc; ++w) {
            hit = tags[w] == line ? w : hit;
            free_way = tags[w] == kInvalidTag ? w : free_way;
            const bool less = use[w] < lru_use;
            lru = less ? w : lru;
            lru_use = less ? use[w] : lru_use;
        }
    }
    if (hit != config_.assoc) {
        memo_[memoSlot(line)] = base + hit;
        return hitWay(base + hit, is_write);
    }

    // Miss: allocate into the victim (fetch-on-write policy for stores).
    ++useClock_;
    if (is_write) {
        ++stats_.writes;
        ++stats_.writeMisses;
    } else {
        ++stats_.reads;
        ++stats_.readMisses;
    }

    const std::uint32_t victim =
        base + (free_way < config_.assoc ? free_way : lru);
    const bool writeback = wayValid(victim) && wayDirty(victim);
    if (writeback)
        ++stats_.writebacks;
    use_[victim] = (useClock_ << kUseShift) | (is_write ? kUseDirty : 0);
    tags_[victim] = line;
    memo_[memoSlot(line)] = victim;
    return {false, writeback, false};
}

bool
Cache::insertPrefetch(Address addr)
{
    const Address line = lineNumber(addr);
    // The LRU clock always advances, resident or not, matching the
    // pre-SoA scan (a lone clock tick with no lastUse write is
    // unobservable: only the relative order of lastUse values matters).
    ++useClock_;
    const std::uint32_t set = setIndex(line);
    if (tags_[memo_[memoSlot(line)]] == line)
        return false; // already resident (memoized) — no state change
    const std::uint32_t base = set * config_.assoc;
    const Address *tags = tags_.data() + base;
    const std::uint64_t *use = use_.data() + base;
    // Same fused fixed-trip select as accessSlow's miss path.
    std::uint32_t hit = config_.assoc;
    std::uint32_t free_way = config_.assoc;
    std::uint32_t lru = 0;
    std::uint64_t lru_use = ~std::uint64_t{0};
    if (config_.assoc == 8) [[likely]] {
        for (std::uint32_t w = 0; w < 8; ++w) {
            hit = tags[w] == line ? w : hit;
            free_way = tags[w] == kInvalidTag ? w : free_way;
            const bool less = use[w] < lru_use;
            lru = less ? w : lru;
            lru_use = less ? use[w] : lru_use;
        }
    } else {
        for (std::uint32_t w = 0; w < config_.assoc; ++w) {
            hit = tags[w] == line ? w : hit;
            free_way = tags[w] == kInvalidTag ? w : free_way;
            const bool less = use[w] < lru_use;
            lru = less ? w : lru;
            lru_use = less ? use[w] : lru_use;
        }
    }
    if (hit != config_.assoc)
        return false; // already resident

    const std::uint32_t victim =
        base + (free_way < config_.assoc ? free_way : lru);
    if (wayValid(victim) && wayDirty(victim))
        ++stats_.writebacks;
    use_[victim] = (useClock_ << kUseShift) | kUsePrefetched;
    tags_[victim] = line;
    // A demand stream catching up with the prefetcher hits this line
    // next, so memoizing the inserted way helps; the fast path
    // re-validates the tag, so a stale memo can never corrupt state.
    memo_[memoSlot(line)] = victim;
    return true;
}

bool
Cache::contains(Address addr) const
{
    const Address line = lineNumber(addr);
    const std::uint32_t base = setIndex(line) * config_.assoc;
    const Address *tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (tags[w] == line)
            return true;
    return false;
}

void
Cache::flush()
{
    const std::size_t ways = use_.size();
    tags_.assign(ways + 1, kInvalidTag);
    use_.assign(ways, 0);
    useClock_ = 0;
    memo_.assign(memo_.size(), static_cast<std::uint32_t>(ways));
}

} // namespace sim
} // namespace javelin
