#include "sim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace javelin {
namespace sim {

Cache::Cache(const Config &config)
    : config_(config)
{
    JAVELIN_ASSERT(config_.lineBytes >= 2 &&
                   std::has_single_bit(config_.lineBytes),
                   "cache line size must be a power of two >= 2");
    JAVELIN_ASSERT(config_.assoc > 0, "cache associativity must be > 0");
    JAVELIN_ASSERT(config_.sizeBytes %
                   (static_cast<std::uint64_t>(config_.lineBytes) *
                    config_.assoc) == 0,
                   "cache size must be a multiple of assoc * line size");

    numSets_ = static_cast<std::uint32_t>(
        config_.sizeBytes /
        (static_cast<std::uint64_t>(config_.lineBytes) * config_.assoc));
    JAVELIN_ASSERT(numSets_ > 0 && std::has_single_bit(numSets_),
                   "cache set count must be a power of two, got ",
                   numSets_);
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    setMask_ = numSets_ - 1;

    const std::size_t ways =
        static_cast<std::size_t>(numSets_) * config_.assoc;
    tags_.assign(ways + 1, kInvalidTag);
    use_.assign(ways, 0);
    mru_.assign(2 * static_cast<std::size_t>(numSets_),
                static_cast<std::uint32_t>(ways));
}

std::uint32_t
Cache::pickVictim(std::uint32_t base) const
{
    // Invalid ways carry the sentinel tag; a free way (the last one, as
    // the original combined scan preferred) always wins. Otherwise the
    // packed use words order exactly like raw clock values (clocks are
    // unique), so the strict minimum is the true LRU way.
    const Address *tags = tags_.data() + base;
    std::uint32_t free_way = config_.assoc;
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (tags[w] == kInvalidTag)
            free_way = w;
    if (free_way < config_.assoc)
        return free_way;
    const std::uint64_t *use = use_.data() + base;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < config_.assoc; ++w)
        if (use[w] < use[victim])
            victim = w;
    return victim;
}

Cache::Result
Cache::accessSlow(Address line, bool is_write)
{
    const std::uint32_t set = setIndex(line);
    const std::uint32_t base = set * config_.assoc;
    const Address *tags = tags_.data() + base;

    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (tags[w] == line) {
            pushMru(set, base + w);
            return hitWay(base + w, is_write);
        }
    }

    // Miss: allocate into the victim (fetch-on-write policy for stores).
    ++useClock_;
    if (is_write) {
        ++stats_.writes;
        ++stats_.writeMisses;
    } else {
        ++stats_.reads;
        ++stats_.readMisses;
    }

    const std::uint32_t victim = base + pickVictim(base);
    const bool writeback = wayValid(victim) && wayDirty(victim);
    if (writeback)
        ++stats_.writebacks;
    use_[victim] = (useClock_ << kUseShift) | (is_write ? kUseDirty : 0);
    tags_[victim] = line;
    pushMru(set, victim);
    return {false, writeback, false};
}

bool
Cache::insertPrefetch(Address addr)
{
    const Address line = lineNumber(addr);
    // The LRU clock always advances, resident or not, matching the
    // pre-SoA scan (a lone clock tick with no lastUse write is
    // unobservable: only the relative order of lastUse values matters).
    ++useClock_;
    const std::uint32_t set = setIndex(line);
    const std::uint32_t *m =
        mru_.data() + 2 * static_cast<std::size_t>(set);
    if (tags_[m[0]] == line || tags_[m[1]] == line)
        return false; // already resident (memoized) — no state change
    const std::uint32_t base = set * config_.assoc;
    const Address *tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (tags[w] == line)
            return false; // already resident

    const std::uint32_t victim = base + pickVictim(base);
    if (wayValid(victim) && wayDirty(victim))
        ++stats_.writebacks;
    use_[victim] = (useClock_ << kUseShift) | kUsePrefetched;
    tags_[victim] = line;
    // A demand stream catching up with the prefetcher hits this line
    // next, so memoizing the inserted way helps; the fast path
    // re-validates the tag, so a stale memo can never corrupt state.
    pushMru(set, victim);
    return true;
}

bool
Cache::contains(Address addr) const
{
    const Address line = lineNumber(addr);
    const std::uint32_t base = setIndex(line) * config_.assoc;
    const Address *tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (tags[w] == line)
            return true;
    return false;
}

void
Cache::flush()
{
    const std::size_t ways = use_.size();
    tags_.assign(ways + 1, kInvalidTag);
    use_.assign(ways, 0);
    useClock_ = 0;
    mru_.assign(2 * static_cast<std::size_t>(numSets_),
                static_cast<std::uint32_t>(ways));
}

} // namespace sim
} // namespace javelin
