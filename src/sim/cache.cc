#include "sim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace javelin {
namespace sim {

Cache::Cache(const Config &config)
    : config_(config)
{
    JAVELIN_ASSERT(config_.lineBytes > 0 &&
                   std::has_single_bit(config_.lineBytes),
                   "cache line size must be a power of two");
    JAVELIN_ASSERT(config_.assoc > 0, "cache associativity must be > 0");
    JAVELIN_ASSERT(config_.sizeBytes %
                   (static_cast<std::uint64_t>(config_.lineBytes) *
                    config_.assoc) == 0,
                   "cache size must be a multiple of assoc * line size");

    numSets_ = static_cast<std::uint32_t>(
        config_.sizeBytes /
        (static_cast<std::uint64_t>(config_.lineBytes) * config_.assoc));
    JAVELIN_ASSERT(numSets_ > 0 && std::has_single_bit(numSets_),
                   "cache set count must be a power of two, got ",
                   numSets_);
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    setMask_ = numSets_ - 1;
    ways_.resize(static_cast<std::size_t>(numSets_) * config_.assoc);
}

Cache::Result
Cache::accessSlow(Address line, bool is_write)
{
    const std::uint32_t set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * config_.assoc];
    ++useClock_;

    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    Way *victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = useClock_;
            way.dirty = way.dirty || is_write;
            const bool was_prefetched = way.prefetched;
            way.prefetched = false;
            mru_ = static_cast<std::uint32_t>(&way - ways_.data());
            return {true, false, was_prefetched};
        }
        if (!way.valid) {
            victim = &way; // free way always preferred
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    // Miss: allocate into the victim (fetch-on-write policy for stores).
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    const bool writeback = victim->valid && victim->dirty;
    if (writeback)
        ++stats_.writebacks;
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = useClock_;
    victim->dirty = is_write;
    victim->prefetched = false;
    mru_ = static_cast<std::uint32_t>(victim - ways_.data());
    return {false, writeback, false};
}

void
Cache::insertPrefetch(Address addr)
{
    const Address line = lineNumber(addr);
    const std::uint32_t set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * config_.assoc];
    ++useClock_;

    Way *victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line)
            return; // already resident
        if (!way.valid)
            victim = &way;
        else if (victim->valid && way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (victim->valid && victim->dirty)
        ++stats_.writebacks;
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = useClock_;
    victim->dirty = false;
    victim->prefetched = true;
    // A demand stream catching up with the prefetcher hits this line
    // next, so memoizing the inserted way helps; the fast path
    // re-validates the tag, so a stale memo can never corrupt state.
    mru_ = static_cast<std::uint32_t>(victim - ways_.data());
}

bool
Cache::contains(Address addr) const
{
    const Address line = lineNumber(addr);
    const std::uint32_t set = setIndex(line);
    const Way *base = &ways_[static_cast<std::size_t>(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (base[w].valid && base[w].tag == line)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &way : ways_)
        way = Way();
    useClock_ = 0;
    mru_ = kNoMru;
}

} // namespace sim
} // namespace javelin
