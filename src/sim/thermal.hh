/**
 * @file
 * Lumped-RC package thermal model with emergency throttling.
 *
 * Reproduces the behaviour of paper Fig. 1: with the fan enabled the
 * Pentium M settles near 60 C under load; with the fan disabled the
 * temperature climbs to 99 C in about four minutes, at which point the
 * processor's emergency response reduces the clock duty cycle to 50 %,
 * proportionally reducing performance (and power), and the temperature
 * saw-tooths around the trip point.
 */

#ifndef JAVELIN_SIM_THERMAL_HH
#define JAVELIN_SIM_THERMAL_HH

#include "util/units.hh"

namespace javelin {
namespace sim {

/**
 * Single-node RC thermal model: C dT/dt = P - (T - T_amb) / R.
 */
class ThermalModel
{
  public:
    struct Config
    {
        double ambientC = 25.0;
        /** Junction-to-ambient thermal resistance with the fan on (C/W). */
        double rFanOnCperW = 2.8;
        /** Thermal resistance with the fan disabled. */
        double rFanOffCperW = 8.0;
        /** Lumped thermal capacitance (J/C). */
        double capacitanceJperC = 22.0;
        /** Emergency throttle engage temperature. */
        double throttleOnC = 99.0;
        /** Temperature at which full speed resumes. */
        double throttleOffC = 97.0;
        /** Duty cycle applied while throttled. */
        double throttleDuty = 0.5;
    };

    explicit ThermalModel(const Config &config);

    /**
     * Advance the thermal state by dt seconds with the given average
     * power. Returns true if the throttle state changed.
     */
    bool step(double watts, double dt_seconds);

    double temperatureC() const { return tempC_; }
    bool throttled() const { return throttled_; }
    bool fanEnabled() const { return fanEnabled_; }
    void setFanEnabled(bool enabled) { fanEnabled_ = enabled; }

    /** Duty cycle the CPU should run at right now. */
    double
    requestedDuty() const
    {
        return throttled_ ? config_.throttleDuty : 1.0;
    }

    /** Steady-state temperature at a constant power level. */
    double steadyStateC(double watts) const;

    double maxTemperatureC() const { return maxTempC_; }

    /**
     * Seconds spent with the throttle engaged. Steps on which the
     * throttle flips are split at the exact trip-point crossing (the
     * trajectory is a monotone exponential, so the crossing has a
     * closed form); only time past the boundary is counted.
     */
    double throttledSeconds() const { return throttledSeconds_; }

    const Config &config() const { return config_; }

  private:
    /** Time within [0, dt] at which the trajectory from start_c toward
     *  target crosses threshold_c (0 if it starts at/past it). */
    static double crossingSeconds(double start_c, double target,
                                  double tau, double threshold_c,
                                  double dt_seconds);

    Config config_;
    double tempC_;
    double maxTempC_;
    bool fanEnabled_ = true;
    bool throttled_ = false;
    double throttledSeconds_ = 0.0;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_THERMAL_HH
