/**
 * @file
 * Activity-based processor power model.
 *
 * The paper observes (Section VI-C) that "power consumption is highly
 * correlated with processor utilization": components with high IPC draw
 * more power, while components that stall on off-chip accesses (like the
 * garbage collector on the Pentium M) draw less. This model captures that
 * directly: power is an idle floor plus per-event activation energies for
 * retired micro-ops and cache/DRAM traffic. Voltage scaling (DVFS) scales
 * the dynamic part quadratically and the idle part linearly with
 * frequency times V^2.
 *
 * The model is integrated lazily: update() advances the cumulative energy
 * using the *current* settings, so callers must call update() at every
 * voltage/frequency change point (System does this) and before reading.
 */

#ifndef JAVELIN_SIM_POWER_MODEL_HH
#define JAVELIN_SIM_POWER_MODEL_HH

#include "sim/perf_counters.hh"
#include "util/units.hh"

namespace javelin {
namespace sim {

/**
 * CPU power/energy model with lazy exact integration.
 */
class PowerModel
{
  public:
    struct Config
    {
        /** Measured idle power of the platform's CPU rail (watts). */
        double idleWatts = 4.5;
        /** Nominal core voltage. */
        double nominalVolts = 1.484;
        /** Nominal core frequency (for idle-power frequency scaling). */
        double nominalFreqHz = 1.6e9;
        /** Joules per retired micro-op at nominal voltage. */
        double epInstr = 4.0e-9;
        /** Joules per L1D access. */
        double epL1d = 0.6e-9;
        /** Joules per L1I access. */
        double epL1i = 0.4e-9;
        /** Joules per L2 access. */
        double epL2 = 4.0e-9;
        /**
         * Joules per L2 tag-array probe from the next-line prefetcher
         * (ROADMAP §5c model fix): a probe reads the tag array but
         * only a miss moves data, so it costs a fraction of epL2.
         */
        double epL2Probe = 0.0;
        /** Joules per DRAM access seen from the CPU (bus + controller). */
        double epDram = 12.0e-9;
        /**
         * Joules per stall cycle: a stalled out-of-order core keeps its
         * clock tree, speculation and queues burning well above idle.
         */
        double epStallCycle = 0.0;
    };

    explicit PowerModel(const Config &config);

    /**
     * Integrate energy from the last update point to (counters, now)
     * using the current voltage/frequency settings.
     */
    void update(const PerfCounters &counters, Tick now);

    /** Total CPU energy consumed up to the last update (joules). */
    double cumulativeJoules() const { return cumulativeJoules_; }

    /** Average power over the window since the given reference point. */
    double windowWatts(double ref_joules, Tick ref_tick, Tick now) const;

    /** Set operating voltage (DVFS); call update() first. */
    void setVoltage(double volts);
    double voltage() const { return volts_; }

    /** Set operating frequency (affects idle power); update() first. */
    void setFrequency(double freq_hz);

    /** Instantaneous voltage at the sense point (for the DAQ channel). */
    double railVolts() const { return volts_; }

    const Config &config() const { return config_; }

    /** Idle power at current settings (watts). */
    double idleWatts() const;

  private:
    double dynamicJoules(const PerfCounters &delta) const;

    Config config_;
    double volts_;
    double freqHz_;
    double cumulativeJoules_ = 0.0;
    PerfCounters lastCounters_;
    Tick lastTick_ = 0;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_POWER_MODEL_HH
