/**
 * @file
 * Main-memory (DRAM/SDRAM) power model.
 *
 * The paper measures RAM power with sense resistors on the memory supply
 * line (Section IV-D): 250 mW idle on the P6 platform and about 5 mW on
 * the DBPXA255. Active energy is charged per DRAM access and writeback.
 * Uses the same lazy exact-integration discipline as PowerModel.
 */

#ifndef JAVELIN_SIM_MEMORY_POWER_HH
#define JAVELIN_SIM_MEMORY_POWER_HH

#include "sim/perf_counters.hh"
#include "util/units.hh"

namespace javelin {
namespace sim {

/**
 * DRAM power/energy model.
 */
class MemoryPowerModel
{
  public:
    struct Config
    {
        /** Idle (refresh + standby) power in watts. */
        double idleWatts = 0.25;
        /** Supply voltage at the sense point. */
        double supplyVolts = 2.5;
        /** Joules per DRAM data access (activate + read/write + IO). */
        double epAccess = 20.0e-9;
    };

    explicit MemoryPowerModel(const Config &config);

    /** Integrate energy up to (counters, now) at current settings. */
    void update(const PerfCounters &counters, Tick now);

    /** Total memory energy consumed up to the last update (joules). */
    double cumulativeJoules() const { return cumulativeJoules_; }

    /** Average power over a window since a reference point. */
    double windowWatts(double ref_joules, Tick ref_tick, Tick now) const;

    double railVolts() const { return config_.supplyVolts; }
    const Config &config() const { return config_; }

  private:
    Config config_;
    double cumulativeJoules_ = 0.0;
    PerfCounters lastCounters_;
    Tick lastTick_ = 0;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_MEMORY_POWER_HH
