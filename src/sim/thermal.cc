#include "sim/thermal.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace javelin {
namespace sim {

ThermalModel::ThermalModel(const Config &config)
    : config_(config), tempC_(config.ambientC), maxTempC_(config.ambientC)
{
    JAVELIN_ASSERT(config_.capacitanceJperC > 0, "bad thermal capacitance");
    JAVELIN_ASSERT(config_.throttleOffC < config_.throttleOnC,
                   "throttle hysteresis is inverted");
}

double
ThermalModel::steadyStateC(double watts) const
{
    const double r = fanEnabled_ ? config_.rFanOnCperW
                                 : config_.rFanOffCperW;
    return config_.ambientC + watts * r;
}

bool
ThermalModel::step(double watts, double dt_seconds)
{
    JAVELIN_ASSERT(dt_seconds >= 0, "negative thermal step");
    const double r = fanEnabled_ ? config_.rFanOnCperW
                                 : config_.rFanOffCperW;

    // Exact solution of the linear ODE over the step, which keeps the
    // model stable for arbitrarily large dt.
    const double tau = r * config_.capacitanceJperC;
    const double target = config_.ambientC + watts * r;
    const double decay = std::exp(-dt_seconds / tau);
    tempC_ = target + (tempC_ - target) * decay;
    maxTempC_ = std::max(maxTempC_, tempC_);
    if (throttled_)
        throttledSeconds_ += dt_seconds;

    const bool was = throttled_;
    if (!throttled_ && tempC_ >= config_.throttleOnC)
        throttled_ = true;
    else if (throttled_ && tempC_ <= config_.throttleOffC)
        throttled_ = false;
    return throttled_ != was;
}

} // namespace sim
} // namespace javelin
