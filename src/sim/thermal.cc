#include "sim/thermal.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace javelin {
namespace sim {

ThermalModel::ThermalModel(const Config &config)
    : config_(config), tempC_(config.ambientC), maxTempC_(config.ambientC)
{
    JAVELIN_ASSERT(config_.capacitanceJperC > 0, "bad thermal capacitance");
    JAVELIN_ASSERT(config_.throttleOffC < config_.throttleOnC,
                   "throttle hysteresis is inverted");
}

double
ThermalModel::steadyStateC(double watts) const
{
    const double r = fanEnabled_ ? config_.rFanOnCperW
                                 : config_.rFanOffCperW;
    return config_.ambientC + watts * r;
}

double
ThermalModel::crossingSeconds(double start_c, double target,
                              double tau, double threshold_c,
                              double dt_seconds)
{
    // T(t) = target + (T0 - target) e^{-t/tau} is monotonic toward
    // target, so if the endpoint is past the threshold the trajectory
    // crossed it exactly once, at t* = tau ln((T0 - t)/(thr - t)).
    const double num = start_c - target;
    const double den = threshold_c - target;
    if (!(num != 0.0) || !(den != 0.0) || num * den <= 0.0)
        return 0.0; // already at/past the threshold when the step began
    return std::clamp(tau * std::log(num / den), 0.0, dt_seconds);
}

bool
ThermalModel::step(double watts, double dt_seconds)
{
    JAVELIN_ASSERT(dt_seconds >= 0, "negative thermal step");
    const double r = fanEnabled_ ? config_.rFanOnCperW
                                 : config_.rFanOffCperW;

    // Exact solution of the linear ODE over the step, which keeps the
    // model stable for arbitrarily large dt.
    const double tau = r * config_.capacitanceJperC;
    const double target = config_.ambientC + watts * r;
    const double decay = std::exp(-dt_seconds / tau);
    const double startC = tempC_;
    tempC_ = target + (tempC_ - target) * decay;
    maxTempC_ = std::max(maxTempC_, tempC_);

    const bool was = throttled_;
    if (!throttled_ && tempC_ >= config_.throttleOnC)
        throttled_ = true;
    else if (throttled_ && tempC_ <= config_.throttleOffC)
        throttled_ = false;

    // Throttled-time accounting. A step on which the throttle flips is
    // split at the exact trip-point crossing: only the portion spent
    // past the boundary is charged, instead of charging (or dropping)
    // the whole step at the entry state. The duty *actuation* still
    // happens at step granularity (System::thermalStep applies the new
    // duty after this returns) — that is the control loop's modeled
    // 200 us latency, not an accounting error.
    if (was && throttled_) {
        throttledSeconds_ += dt_seconds;
    } else if (!was && throttled_) {
        throttledSeconds_ +=
            dt_seconds - crossingSeconds(startC, target, tau,
                                         config_.throttleOnC,
                                         dt_seconds);
    } else if (was && !throttled_) {
        throttledSeconds_ += crossingSeconds(startC, target, tau,
                                             config_.throttleOffC,
                                             dt_seconds);
    }
    return throttled_ != was;
}

} // namespace sim
} // namespace javelin
