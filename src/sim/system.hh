/**
 * @file
 * The simulated system under test: one platform's CPU, memory hierarchy,
 * power models and thermal package, plus a registry of periodic tasks
 * (the DAQ sampler, the HPM sampler, the OS scheduler timer) that fire as
 * simulated time advances.
 *
 * The execution layer (the JVM) calls poll() at bytecode boundaries; any
 * task whose deadline has passed fires then, which mirrors the timer
 * jitter a real OS-timer-driven sampler experiences.
 */

#ifndef JAVELIN_SIM_SYSTEM_HH
#define JAVELIN_SIM_SYSTEM_HH

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/cpu_model.hh"
#include "sim/dvfs.hh"
#include "sim/memory_hierarchy.hh"
#include "sim/memory_power.hh"
#include "sim/platform.hh"
#include "sim/power_model.hh"
#include "sim/thermal.hh"

namespace javelin {
namespace sim {

/**
 * A fully-assembled simulated platform instance.
 */
class System
{
  public:
    using TaskFn = std::function<void(Tick)>;

    explicit System(const PlatformSpec &spec);

    CpuModel &cpu() { return cpu_; }
    const CpuModel &cpu() const { return cpu_; }
    MemoryHierarchy &memory() { return memory_; }
    PowerModel &power() { return power_; }
    const PowerModel &power() const { return power_; }
    MemoryPowerModel &memoryPower() { return memPower_; }
    const MemoryPowerModel &memoryPower() const { return memPower_; }
    ThermalModel &thermal() { return thermal_; }
    const ThermalModel &thermal() const { return thermal_; }
    DvfsController &dvfs() { return dvfs_; }
    const PlatformSpec &spec() const { return spec_; }
    const PerfCounters &
    counters() const
    {
        // The cycle/stall images are materialized lazily (DESIGN.md
        // §5d); bring them up to date before handing the block out.
        cpu_.materializeCounters();
        return counters_;
    }

    /**
     * Register a periodic task. The first firing happens one period from
     * the current time (plus optional phase offset).
     */
    void addPeriodicTask(const std::string &name, Tick period, TaskFn fn,
                         Tick phase = 0);

    /** Fire every task whose deadline has passed. Cheap when none is due. */
    void
    poll()
    {
        if (cpu_.now() >= nextDue_)
            runDueTasks();
    }

    /** Tick at which the earliest periodic task is next due (max Tick
     *  if none). Lets burst loops bound how long no poll can fire. */
    Tick nextTaskDue() const { return nextDue_; }

    /** Bring both power models up to the current instant. */
    void syncPower();

    /** CPU energy consumed so far (after an implicit syncPower). */
    double cpuJoules();

    /** Memory energy consumed so far (after an implicit syncPower). */
    double memoryJoules();

    /** Switch DVFS operating point, keeping energy integration exact. */
    void applyOperatingPoint(const OperatingPoint &point);

    /**
     * Let simulated time advance while the CPU idles, still firing
     * periodic tasks (used for idle/thermal experiments).
     */
    void idleFor(Tick duration);

  private:
    friend class DvfsController;

    struct TaskEntry
    {
        std::string name;
        Tick period;
        Tick next;
        TaskFn fn;
    };

    void runDueTasks();
    void recomputeNextDue();
    void thermalStep(Tick now);

    PlatformSpec spec_;
    PerfCounters counters_;
    MemoryHierarchy memory_;
    CpuModel cpu_;
    PowerModel power_;
    MemoryPowerModel memPower_;
    ThermalModel thermal_;
    DvfsController dvfs_;

    std::vector<TaskEntry> tasks_;
    Tick nextDue_ = std::numeric_limits<Tick>::max();

    // Thermal integration window state.
    double thermalRefJoules_ = 0.0;
    Tick thermalRefTick_ = 0;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_SYSTEM_HH
