/**
 * @file
 * Two- or three-level memory hierarchy: L1I and L1D, an optional unified
 * L2, and DRAM. Returns stall-cycle penalties for the CPU model and
 * updates the HPM counter block with per-level access/miss events.
 *
 * The L1-hit case — the overwhelming majority of simulated accesses —
 * is fully inlined here (DESIGN.md §5c); only misses drop into the
 * out-of-line L2/DRAM walk. The optional L2 lives in-object
 * (std::optional) rather than behind a unique_ptr, so the miss path
 * takes no heap indirection either.
 */

#ifndef JAVELIN_SIM_MEMORY_HIERARCHY_HH
#define JAVELIN_SIM_MEMORY_HIERARCHY_HH

#include <optional>

#include "sim/cache.hh"
#include "sim/perf_counters.hh"

namespace javelin {
namespace sim {

/**
 * The cache/DRAM stack of one platform.
 */
class MemoryHierarchy
{
  public:
    struct Config
    {
        Cache::Config l1i;
        Cache::Config l1d;
        /** Unset on platforms without an L2 (e.g., the PXA255). */
        std::optional<Cache::Config> l2;
        /** Extra stall cycles for an L1 miss that hits in L2. */
        std::uint32_t l2HitCycles = 9;
        /** Extra stall cycles for an access that goes to DRAM. */
        std::uint32_t dramCycles = 180;
        /** Extra stall cycles charged for a dirty-victim writeback. */
        std::uint32_t writebackCycles = 4;
        /**
         * Hardware next-line prefetcher: on an L1D miss, the following
         * line is pulled into L2 (no stall; DRAM traffic is counted).
         * Present on the Pentium M, absent on the PXA255.
         */
        bool nextLinePrefetch = false;
    };

    MemoryHierarchy(const Config &config, PerfCounters &counters);

    /** Instruction fetch of the line containing addr. Returns penalty. */
    std::uint32_t
    fetch(Address addr)
    {
        ++counters_.l1iAccesses;
        const auto r = l1i_.access(addr, false);
        if (r.hit) [[likely]]
            return 0;
        ++counters_.l1iMisses;
        return lowerLevel(addr, false, r.writeback);
    }

    /** Data access. Returns the stall-cycle penalty beyond an L1 hit. */
    std::uint32_t
    data(Address addr, bool is_write)
    {
        ++counters_.l1dAccesses;
        const auto r = l1d_.access(addr, is_write);
        if (r.hit) [[likely]]
            return 0;
        ++counters_.l1dMisses;
        return dataMiss(addr, is_write, r.writeback);
    }

    /**
     * Fold `count` further data accesses to the line the immediately
     * preceding data() call touched (same line, nothing in between).
     * They are L1 hits by construction — zero penalty each — and leave
     * counters and cache state exactly as `count` data() calls would.
     */
    void
    dataRepeat(Address addr, std::uint32_t count, bool is_write)
    {
        counters_.l1dAccesses += count;
        l1d_.repeatHits(addr, count, is_write);
    }

    /** Invalidate all levels. */
    void flush();

    bool hasL2() const { return l2_.has_value(); }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return *l2_; }
    const Config &config() const { return config_; }

  private:
    /** Send an L1 miss down to L2/DRAM; returns the penalty. */
    std::uint32_t lowerLevel(Address addr, bool is_write, bool victim_dirty);

    /** L1D-miss slow path: lower levels plus the next-line prefetcher. */
    std::uint32_t dataMiss(Address addr, bool is_write, bool victim_dirty);

    /** Pull the line after addr into L2 without stalling the core. */
    void prefetchNextLine(Address addr);

    Config config_;
    PerfCounters &counters_;
    Cache l1i_;
    Cache l1d_;
    std::optional<Cache> l2_;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_MEMORY_HIERARCHY_HH
