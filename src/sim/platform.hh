/**
 * @file
 * Platform specifications for the paper's two measurement targets.
 *
 * P6: a 1.6 GHz Pentium M development board with 512 MB RAM, 32 KB L1I,
 * 32 KB write-back L1D and a 1 MB on-die L2 (paper Section IV-B), with
 * measured idle powers of about 4.5 W (CPU) and 250 mW (RAM).
 *
 * DBPXA255: an Intel PXA255 development board at 400 MHz, single-issue
 * in-order, 32-way 32 KB I and D caches, no L2, 64 MB SDRAM; idle powers
 * about 70 mW (CPU) and 5 mW (memory).
 */

#ifndef JAVELIN_SIM_PLATFORM_HH
#define JAVELIN_SIM_PLATFORM_HH

#include <string>
#include <vector>

#include "sim/cpu_model.hh"
#include "sim/dvfs.hh"
#include "sim/memory_hierarchy.hh"
#include "sim/memory_power.hh"
#include "sim/power_model.hh"
#include "sim/thermal.hh"
#include "util/units.hh"

namespace javelin {
namespace sim {

/** Which of the paper's boards a spec describes. */
enum class PlatformKind { P6, Pxa255 };

/**
 * Complete description of one hardware platform.
 */
struct PlatformSpec
{
    std::string name;
    PlatformKind kind;
    CpuModel::Config cpu;
    MemoryHierarchy::Config memory;
    PowerModel::Config power;
    MemoryPowerModel::Config memPower;
    ThermalModel::Config thermal;
    std::vector<OperatingPoint> dvfsPoints;
    /** OS-timer HPM sampling period (1 ms on P6, 10 ms on PXA255). */
    Tick hpmPeriod = kTicksPerMilli;
    /** DAQ sampling period (40 us in the paper). */
    Tick daqPeriod = 40 * kTicksPerMicro;
    /** Thermal integration step. */
    Tick thermalPeriod = 200 * kTicksPerMicro;
};

/** The Pentium M development board (paper Fig. 2). */
PlatformSpec p6Spec();

/** The Intel DBPXA255 development board. */
PlatformSpec pxa255Spec();

/** Look up a spec by kind. */
PlatformSpec platformSpec(PlatformKind kind);

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_PLATFORM_HH
