#include "sim/platform.hh"

#include "util/logging.hh"

namespace javelin {
namespace sim {

PlatformSpec
p6Spec()
{
    PlatformSpec spec;
    spec.name = "P6 (Pentium M 1.6GHz)";
    spec.kind = PlatformKind::P6;

    spec.cpu.name = "pentium-m";
    spec.cpu.freqHz = 1.6e9;
    // Three-decode front end, but sustained throughput well below that;
    // 0.45 cycles per micro-op gives a ~2.2 peak IPC before stalls.
    spec.cpu.baseCpi = 0.45;
    // Out-of-order core overlaps a large part of miss latency.
    spec.cpu.memStallFactor = 0.7;
    spec.cpu.branchPenalty = 10;
    spec.cpu.gcStallPerUop = 0.55;

    spec.memory.l1i = {"l1i", 32 * kKiB, 8, 64};
    spec.memory.l1d = {"l1d", 32 * kKiB, 8, 64};
    spec.memory.l2 = Cache::Config{"l2", 1 * kMiB, 8, 64};
    spec.memory.l2HitCycles = 9;
    spec.memory.dramCycles = 180;   // ~112 ns at 1.6 GHz
    spec.memory.writebackCycles = 4;
    spec.memory.nextLinePrefetch = true;

    // Calibrated so application-like activity (IPC ~0.8) draws ~13 W and
    // GC-like pointer chasing (IPC ~0.55) draws ~1 W less, on top of the
    // paper's measured 4.5 W idle. See bench/tab_component_stats.
    spec.power.idleWatts = 4.5;
    spec.power.nominalVolts = 1.484;
    spec.power.nominalFreqHz = 1.6e9;
    spec.power.epInstr = 5.4e-9;
    spec.power.epStallCycle = 0.5e-9;
    spec.power.epL1d = 0.8e-9;
    spec.power.epL1i = 0.45e-9;
    spec.power.epL2 = 5.0e-9;
    // Next-line prefetcher tag probe (ROADMAP §5c model fix): reads the
    // L2 tag array only, so ~30% of a full L2 access.
    spec.power.epL2Probe = 1.5e-9;
    spec.power.epDram = 12.0e-9;

    spec.memPower.idleWatts = 0.25;
    spec.memPower.supplyVolts = 2.5;
    spec.memPower.epAccess = 35.0e-9;

    // Fan-on steady state near 60 C at ~12.5 W (Fig. 1); fan-off steady
    // state well above the 99 C trip point, reached in about 240 s.
    spec.thermal.ambientC = 25.0;
    spec.thermal.rFanOnCperW = 2.8;
    spec.thermal.rFanOffCperW = 8.0;
    spec.thermal.capacitanceJperC = 22.0;
    spec.thermal.throttleOnC = 99.0;
    spec.thermal.throttleOffC = 97.0;
    spec.thermal.throttleDuty = 0.5;

    // Pentium M 725-style P-states (highest performance last).
    spec.dvfsPoints = {
        {0.6e9, 0.956}, {0.8e9, 1.036}, {1.0e9, 1.164},
        {1.2e9, 1.276}, {1.4e9, 1.420}, {1.6e9, 1.484},
    };

    spec.hpmPeriod = kTicksPerMilli;        // 1 ms OS timer
    spec.daqPeriod = 40 * kTicksPerMicro;   // 40 us DAQ
    spec.thermalPeriod = 200 * kTicksPerMicro;
    return spec;
}

PlatformSpec
pxa255Spec()
{
    PlatformSpec spec;
    spec.name = "DBPXA255 (Intel PXA255 400MHz)";
    spec.kind = PlatformKind::Pxa255;

    spec.cpu.name = "pxa255";
    spec.cpu.freqHz = 400e6;
    spec.cpu.baseCpi = 1.15;        // single-issue in-order
    spec.cpu.memStallFactor = 1.0;  // no overlap: stalls fully exposed
    spec.cpu.branchPenalty = 4;
    spec.cpu.gcStallPerUop = 0.05;  // in-order: GC no worse than mutator

    spec.memory.l1i = {"l1i", 32 * kKiB, 32, 32};
    spec.memory.l1d = {"l1d", 32 * kKiB, 32, 32};
    spec.memory.l2.reset();         // no L2 cache on the PXA255
    spec.memory.dramCycles = 24;    // ~60 ns SDRAM at 400 MHz
    spec.memory.writebackCycles = 6;

    // 70 mW measured idle; dynamic energies sized so a busy core draws a
    // few hundred milliwatts, with memory traffic relatively cheap in
    // stall terms but visible in energy (XScale-class behaviour).
    spec.power.idleWatts = 0.070;
    spec.power.nominalVolts = 1.3;
    spec.power.nominalFreqHz = 400e6;
    spec.power.epInstr = 0.60e-9;
    spec.power.epStallCycle = 0.15e-9;
    spec.power.epL1d = 0.10e-9;
    spec.power.epL1i = 0.06e-9;
    spec.power.epL2 = 0.0;
    spec.power.epL2Probe = 0.0; // no L2, no prefetcher
    spec.power.epDram = 4.0e-9;

    spec.memPower.idleWatts = 0.005;
    spec.memPower.supplyVolts = 3.3;
    spec.memPower.epAccess = 12.0e-9;

    // Passively cooled; generous headroom (the PXA255 has no emergency
    // throttle in practice at these power levels).
    spec.thermal.ambientC = 25.0;
    spec.thermal.rFanOnCperW = 30.0;
    spec.thermal.rFanOffCperW = 60.0;
    spec.thermal.capacitanceJperC = 4.0;
    spec.thermal.throttleOnC = 99.0;
    spec.thermal.throttleOffC = 97.0;
    spec.thermal.throttleDuty = 0.5;

    spec.dvfsPoints = {
        {100e6, 0.85}, {200e6, 1.0}, {300e6, 1.1}, {400e6, 1.3},
    };

    spec.hpmPeriod = 10 * kTicksPerMilli;   // 10 ms OS timer
    spec.daqPeriod = 40 * kTicksPerMicro;
    spec.thermalPeriod = 500 * kTicksPerMicro;
    return spec;
}

PlatformSpec
platformSpec(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::P6:
        return p6Spec();
      case PlatformKind::Pxa255:
        return pxa255Spec();
    }
    JAVELIN_PANIC("unknown platform kind");
}

} // namespace sim
} // namespace javelin
