/**
 * @file
 * Timing model of an in-order(-ish) processor core.
 *
 * The JVM execution layer drives this model with micro-op batches and
 * explicit data accesses at simulated addresses. The model charges a base
 * CPI per micro-op, adds stall cycles returned by the memory hierarchy
 * (scaled by a memory-level-parallelism overlap factor on the out-of-order
 * Pentium M, unscaled on the in-order PXA255), and advances simulated time
 * accordingly. Emergency thermal throttling (50 % clock duty cycle, as in
 * paper Fig. 1) and DVFS both act by stretching the effective clock
 * period.
 */

#ifndef JAVELIN_SIM_CPU_MODEL_HH
#define JAVELIN_SIM_CPU_MODEL_HH

#include <string>

#include "sim/memory_hierarchy.hh"
#include "sim/perf_counters.hh"
#include "util/units.hh"

namespace javelin {
namespace sim {

/**
 * Cycle-approximate CPU core.
 */
class CpuModel
{
  public:
    struct Config
    {
        std::string name = "cpu";
        /** Core clock in hertz. */
        double freqHz = 1.6e9;
        /** Cycles per micro-op with no stalls (1/peak-IPC). */
        double baseCpi = 0.5;
        /**
         * Fraction of a memory stall penalty actually exposed. Out-of-order
         * cores overlap part of the miss latency with useful work.
         */
        double memStallFactor = 1.0;
        /** Extra cycles on a mispredicted branch. */
        std::uint32_t branchPenalty = 10;
        /**
         * Stall cycles per micro-op of GC bookkeeping work. An
         * out-of-order core cannot extract ILP from the collector's
         * short dependent chains (low GC IPC, Section VI-C); an
         * in-order core is equally serialized for mutator and GC, so
         * the relative penalty vanishes (the PXA255's GC is its
         * highest-IPC component, Section VI-E).
         */
        double gcStallPerUop = 0.55;
    };

    /**
     * @param config core parameters
     * @param memory cache hierarchy timing source
     * @param counters shared HPM counter block (also fed by the hierarchy)
     */
    CpuModel(const Config &config, MemoryHierarchy &memory,
             PerfCounters &counters);

    /**
     * Execute a straight-line batch of micro-ops whose code occupies
     * [code_addr, code_addr + code_bytes). Instruction fetch goes through
     * the I-cache one access per line touched.
     */
    void execute(std::uint32_t micro_ops, Address code_addr,
                 std::uint32_t code_bytes);

    /** Issue a data load at a simulated address. */
    void load(Address addr);

    /** Issue a data store at a simulated address. */
    void store(Address addr);

    /** Retire a branch micro-op. */
    void branch(bool mispredict);

    /** Burn cycles without retiring instructions (e.g., spin/idle). */
    void stall(double cycles);

    /** Advance simulated time with the core halted (clock-gated idle). */
    void idleFor(Tick duration);

    /** Current simulated time in ticks. */
    Tick now() const { return static_cast<Tick>(tickAcc_); }

    /** Free-running HPM counter block. */
    const PerfCounters &counters() const { return counters_; }

    /** Total retired micro-ops (convenience). */
    std::uint64_t instructions() const { return counters_.instructions; }

    /**
     * Set the clock duty cycle (1.0 = full speed, 0.5 = emergency
     * throttle). Stretching the effective period models the Pentium M
     * thermal response of paper Fig. 1.
     */
    void setDutyCycle(double duty);
    double dutyCycle() const { return duty_; }

    /** Change the core frequency (DVFS). Takes effect immediately. */
    void setFrequency(double freq_hz);
    double frequency() const { return freqHz_; }

    const Config &config() const { return config_; }

  private:
    void
    advanceCycles(double cycles)
    {
        cycleAcc_ += cycles;
        counters_.cycles = static_cast<std::uint64_t>(cycleAcc_);
        tickAcc_ += cycles * periodEffTicks_;
    }

    void chargePenalty(std::uint32_t penalty_cycles);
    void recomputePeriod();

    Config config_;
    MemoryHierarchy &memory_;
    PerfCounters &counters_;
    double freqHz_;
    double duty_ = 1.0;
    double periodEffTicks_ = 0.0;
    double cycleAcc_ = 0.0;
    double tickAcc_ = 0.0;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_CPU_MODEL_HH
