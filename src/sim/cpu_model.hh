/**
 * @file
 * Timing model of an in-order(-ish) processor core.
 *
 * The JVM execution layer drives this model with micro-op batches and
 * explicit data accesses at simulated addresses. The model charges a base
 * CPI per micro-op, adds stall cycles returned by the memory hierarchy
 * (scaled by a memory-level-parallelism overlap factor on the out-of-order
 * Pentium M, unscaled on the in-order PXA255), and advances simulated time
 * accordingly. Emergency thermal throttling (50 % clock duty cycle, as in
 * paper Fig. 1) and DVFS both act by stretching the effective clock
 * period.
 *
 * Every per-micro-op entry point (execute/load/store/branch/stall) is
 * defined inline here so the whole hot path — dispatch, L1 lookup with
 * MRU memo, cycle accounting — compiles into the caller's loop
 * (DESIGN.md §5c). The three hottest (execute/load/branch) are
 * force-inlined: the interpreter's trace executor has enough call
 * sites that the compiler's code-growth heuristic would otherwise
 * outline them, paying ~20M call/returns per simulated second. The block accessors (loadBlock/storeBlock/copyBlock/
 * execLoadBlock) are the batched entry points the interpreter, the
 * compilers and the GC copy/sweep loops use: they are defined *in terms
 * of* the single-access operations, in source order, so they are
 * event-for-event and rounding-for-rounding identical to the loops
 * they replace (tests/test_cache_diff.cc proves it), while letting one
 * inlined frame absorb the whole burst.
 *
 * Batched accounting (DESIGN.md §5d): the cycle and stall-cycle HPM
 * counters are the floor of double accumulators. The accumulators are
 * updated per event — the floating-point accumulation order is part of
 * the pinned golden behavior, since baseCpi values like 0.45 are not
 * exactly representable — but the integer counter images are only
 * materialized when somebody reads them (counters(), System sampling
 * points), not on every micro-op.
 */

#ifndef JAVELIN_SIM_CPU_MODEL_HH
#define JAVELIN_SIM_CPU_MODEL_HH

#include <bit>
#include <string>

#include "sim/memory_hierarchy.hh"
#include "sim/perf_counters.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace javelin {
namespace sim {

/**
 * Cycle-approximate CPU core.
 */
class CpuModel
{
  public:
    struct Config
    {
        std::string name = "cpu";
        /** Core clock in hertz. */
        double freqHz = 1.6e9;
        /** Cycles per micro-op with no stalls (1/peak-IPC). */
        double baseCpi = 0.5;
        /**
         * Fraction of a memory stall penalty actually exposed. Out-of-order
         * cores overlap part of the miss latency with useful work.
         */
        double memStallFactor = 1.0;
        /** Extra cycles on a mispredicted branch. */
        std::uint32_t branchPenalty = 10;
        /**
         * Stall cycles per micro-op of GC bookkeeping work. An
         * out-of-order core cannot extract ILP from the collector's
         * short dependent chains (low GC IPC, Section VI-C); an
         * in-order core is equally serialized for mutator and GC, so
         * the relative penalty vanishes (the PXA255's GC is its
         * highest-IPC component, Section VI-E).
         */
        double gcStallPerUop = 0.55;
    };

    /**
     * @param config core parameters
     * @param memory cache hierarchy timing source
     * @param counters shared HPM counter block (also fed by the hierarchy)
     */
    CpuModel(const Config &config, MemoryHierarchy &memory,
             PerfCounters &counters);

    /**
     * Execute a straight-line batch of micro-ops whose code occupies
     * [code_addr, code_addr + code_bytes). Instruction fetch goes
     * through the I-cache one access per line touched, except that the
     * front end holds the most recently fetched line in a one-line
     * fetch buffer: a batch whose first line is still in the buffer
     * does not re-access the I-cache for it (real fetch units stream
     * from the fetch buffer, not the cache, while decode stays within
     * a line). The buffer state is a pure function of the execute
     * sequence, so both interpreter dispatch modes see it identically.
     */
    [[gnu::always_inline]] inline void
    execute(std::uint32_t micro_ops, Address code_addr,
            std::uint32_t code_bytes)
    {
        // One I-cache access per line spanned by the batch. A zero-byte
        // batch charges no fetch: it models micro-ops whose code was
        // already fetched by the surrounding dispatch batch. Line size
        // is a power of two, so the span is a shift, not a division.
        if (code_bytes > 0) {
            Address first = code_addr >> fetchLineShift_;
            const Address last =
                (code_addr + code_bytes - 1) >> fetchLineShift_;
            first += static_cast<Address>(first == fetchBufLine_);
            for (Address l = first; l <= last; ++l)
                chargePenalty(memory_.fetch(l << fetchLineShift_));
            fetchBufLine_ = last;
        }

        counters_.instructions += micro_ops;
        advanceCycles(static_cast<double>(micro_ops) * config_.baseCpi);
    }

    /** Issue a data load at a simulated address. */
    [[gnu::always_inline]] inline void
    load(Address addr)
    {
        // A load is itself a retired micro-op occupying an issue slot.
        ++counters_.instructions;
        advanceBaseCpi();
        chargePenalty(memory_.data(addr, false));
    }

    /** Issue a data store at a simulated address. */
    void
    store(Address addr)
    {
        ++counters_.instructions;
        advanceBaseCpi();
        // Stores retire through a store buffer; expose half the miss
        // penalty.
        const std::uint32_t penalty = memory_.data(addr, true);
        if (penalty)
            chargePenalty(penalty / 2);
    }

    /**
     * Issue a data load through a caller-owned one-line stream buffer
     * (the D-side analogue of execute()'s i-fetch buffer): if the
     * address falls in the line named by `buf_line`, the word comes
     * straight from the buffer — the load micro-op still retires and
     * charges its base CPI, but the D-cache is not accessed at all.
     * Otherwise the buffer refills: a normal load() is charged and
     * `buf_line` is updated. The buffer state is a pure function of
     * the address sequence the caller issues, so two charge paths
     * that issue the same sequence (the interpreter's per-op oracle
     * and its folded fast path) see identical buffer behavior by
     * construction. The interpreter threads its bytecode-operand
     * stream through this: adjacent bytecode words share a D-line
     * 7 times out of 8, and a real interpreter's front end reads
     * them from the sequential fill, not through a fresh cache port
     * access per word (DESIGN.md §5g).
     */
    [[gnu::always_inline]] inline void
    loadBuffered(Address addr, Address &buf_line)
    {
        ++counters_.instructions;
        advanceBaseCpi();
        const Address line = addr >> dataLineShift_;
        if (line == buf_line) [[likely]]
            return;
        buf_line = line;
        chargePenalty(memory_.data(addr, false));
    }

    /**
     * Issue `count` loads at addr, addr + stride, ... through the
     * caller's one-line stream buffer — exactly the corresponding
     * loadBuffered() loop (the interpreter's folded operand-fetch
     * runs charge through this, and its per-op oracle issues the
     * identical sequence one loadBuffered at a time).
     */
    void
    loadBufferedBlock(Address addr, std::uint32_t count,
                      std::uint32_t stride_bytes, Address &buf_line)
    {
        for (std::uint32_t i = 0; i < count; ++i)
            loadBuffered(addr + static_cast<Address>(i) * stride_bytes,
                         buf_line);
    }

    /**
     * Fold `k` repeats of a load whose line the immediately preceding
     * data access touched: counters, cycle accumulation and cache
     * state come out exactly as k load() calls would leave them (each
     * is an L1 hit with zero penalty by construction), without
     * re-walking the hierarchy per access. Cycle time still advances
     * once per retired load — a single fused add would round
     * differently than the per-access sequence the oracle charges.
     */
    void
    repeatLoads(Address addr, std::uint32_t k)
    {
        counters_.instructions += k;
        for (std::uint32_t j = 0; j < k; ++j)
            advanceBaseCpi();
        memory_.dataRepeat(addr, k, false);
    }

    /**
     * Issue `count` loads at addr, addr + stride, ... Equivalent to the
     * corresponding load() loop; a zero stride models repeated touches
     * of one location (e.g., free-list link chasing). Consecutive
     * loads that land in one cache line are folded through
     * repeatLoads — the stride runs the interpreter's operand and
     * spill streams issue spend most of their accesses inside a line.
     */
    void
    loadBlock(Address addr, std::uint32_t count, std::uint32_t stride_bytes)
    {
        std::uint32_t i = 0;
        while (i < count) {
            const Address a =
                addr + static_cast<Address>(i) * stride_bytes;
            load(a);
            ++i;
            std::uint32_t k = 0;
            while (i + k < count &&
                   ((addr + static_cast<Address>(i + k) * stride_bytes) >>
                    dataLineShift_) == (a >> dataLineShift_))
                ++k;
            if (k > 0) {
                repeatLoads(a, k);
                i += k;
            }
        }
    }

    /** Issue `count` stores at addr, addr + stride, ... (see loadBlock). */
    void
    storeBlock(Address addr, std::uint32_t count, std::uint32_t stride_bytes)
    {
        for (std::uint32_t i = 0; i < count; ++i)
            store(addr + static_cast<Address>(i) * stride_bytes);
    }

    /**
     * Memory traffic of copying `bytes` bytes from src to dst at the
     * collector's 16-byte copy granularity: an interleaved load/store
     * pair per granule, exactly as the evacuator's copy loop issues
     * them.
     */
    void
    copyBlock(Address dst, Address src, std::uint32_t bytes)
    {
        for (std::uint32_t off = 0; off < bytes; off += 16) {
            load(src + off);
            store(dst + off);
        }
    }

    /**
     * Order-preserving mixed execute/load burst: `iters` repetitions of
     * an execute(chunk_uops, code_addr, code_bytes) followed by one
     * load at data_base + (cursor & window_mask), the cursor advancing
     * by cursor_stride bytes per iteration. Event-for-event identical
     * to the caller writing that loop itself (the interpreter's
     * doNativeWork chunk loop runs on this).
     */
    void
    execLoadBlock(std::uint32_t iters, std::uint32_t chunk_uops,
                  Address code_addr, std::uint32_t code_bytes,
                  Address data_base, std::uint64_t cursor,
                  std::uint64_t window_mask, std::uint32_t cursor_stride)
    {
        for (std::uint32_t i = 0; i < iters; ++i) {
            execute(chunk_uops, code_addr, code_bytes);
            load(data_base + (cursor & window_mask));
            cursor += cursor_stride;
        }
    }

    /**
     * Issue `count` loads through a wrapping buffer window: addresses
     * are base + (cursor & window_mask) with the cursor advancing by
     * stride_bytes per load. Equivalent to the corresponding load()
     * loop; the remembered-set replay charges its sequential-store-
     * buffer reads through this.
     */
    void
    loadWindowBlock(std::uint32_t count, Address base, std::uint64_t cursor,
                    std::uint64_t window_mask, std::uint32_t stride_bytes)
    {
        // Same-line folding as loadBlock; the wrap makes each address
        // explicit, so runs are detected access by access.
        std::uint32_t i = 0;
        while (i < count) {
            const Address a = base + (cursor & window_mask);
            load(a);
            cursor += stride_bytes;
            ++i;
            std::uint32_t k = 0;
            while (i + k < count &&
                   ((base + (cursor & window_mask)) >> dataLineShift_) ==
                       (a >> dataLineShift_)) {
                cursor += stride_bytes;
                ++k;
            }
            if (k > 0) {
                repeatLoads(a, k);
                i += k;
            }
        }
    }

    /** Retire a branch micro-op. */
    [[gnu::always_inline]] inline void
    branch(bool mispredict)
    {
        ++counters_.branches;
        ++counters_.instructions;
        advanceBaseCpi();
        if (mispredict) {
            ++counters_.branchMispredicts;
            const auto p = static_cast<double>(config_.branchPenalty);
            addStallCycles(p);
            advanceCycles(p);
        }
    }

    /** Burn cycles without retiring instructions (e.g., spin/idle). */
    void
    stall(double cycles)
    {
        JAVELIN_ASSERT(cycles >= 0, "negative stall");
        addStallCycles(cycles);
        advanceCycles(cycles);
    }

    /** Advance simulated time with the core halted (clock-gated idle). */
    void idleFor(Tick duration);

    /** Current simulated time in ticks. */
    Tick now() const { return static_cast<Tick>(tickAcc_); }

    /** Effective clock period (ticks per cycle) at current DVFS/duty
     *  settings; lets callers bound how far a burst can advance time. */
    double effectivePeriodTicks() const { return periodEffTicks_; }

    /**
     * Bring the integer cycle/stall-cycle counter images up to date
     * with the double accumulators. Must run before any read of the
     * shared PerfCounters block; counters() and System's sampling
     * points do it implicitly.
     */
    void
    materializeCounters() const
    {
        counters_.cycles = static_cast<std::uint64_t>(cycleAcc_);
        counters_.stallCycles = static_cast<std::uint64_t>(stallAcc_);
    }

    /** Free-running HPM counter block. */
    const PerfCounters &
    counters() const
    {
        materializeCounters();
        return counters_;
    }

    /** Total retired micro-ops (convenience). */
    std::uint64_t instructions() const { return counters_.instructions; }

    /**
     * Set the clock duty cycle (1.0 = full speed, 0.5 = emergency
     * throttle). Stretching the effective period models the Pentium M
     * thermal response of paper Fig. 1.
     */
    void setDutyCycle(double duty);
    double dutyCycle() const { return duty_; }

    /** Change the core frequency (DVFS). Takes effect immediately. */
    void setFrequency(double freq_hz);
    double frequency() const { return freqHz_; }

    const Config &config() const { return config_; }

  private:
    void
    advanceCycles(double cycles)
    {
        cycleAcc_ += cycles;
        tickAcc_ += cycles * periodEffTicks_;
    }

    /**
     * advanceCycles(config_.baseCpi) with the tick product hoisted:
     * baseCpi * periodEffTicks_ only changes when the period does, so
     * recomputePeriod() folds it once and every retired micro-op adds
     * the identical double the per-call multiply would produce.
     */
    [[gnu::always_inline]] inline void
    advanceBaseCpi()
    {
        cycleAcc_ += config_.baseCpi;
        tickAcc_ += baseCpiTicks_;
    }

    /**
     * Accumulate stall cycles in a double so fractional penalties
     * (memStallFactor scaling, FP-latency stalls) are not truncated
     * per event; the architectural counter is the floor of the
     * accumulator, exactly like the cycle counter. Both integer images
     * are written lazily by materializeCounters().
     */
    void
    addStallCycles(double cycles)
    {
        stallAcc_ += cycles;
    }

    void
    chargePenalty(std::uint32_t penalty_cycles)
    {
        if (penalty_cycles == 0) [[likely]]
            return;
        const double exposed =
            static_cast<double>(penalty_cycles) * config_.memStallFactor;
        addStallCycles(exposed);
        advanceCycles(exposed);
    }

    void recomputePeriod();

    Config config_;
    MemoryHierarchy &memory_;
    PerfCounters &counters_;
    /** log2 of the L1I line size, precomputed for the fetch span. */
    std::uint32_t fetchLineShift_;
    /** log2 of the L1D line size (same-line folding in block loads). */
    std::uint32_t dataLineShift_;
    /** Line index held by the one-line fetch buffer (see execute);
     *  ~0 is unreachable for any real address, so it means "empty". */
    Address fetchBufLine_ = ~Address{0};
    double freqHz_;
    double duty_ = 1.0;
    double periodEffTicks_ = 0.0;
    /** config_.baseCpi * periodEffTicks_, folded by recomputePeriod(). */
    double baseCpiTicks_ = 0.0;
    double cycleAcc_ = 0.0;
    double tickAcc_ = 0.0;
    double stallAcc_ = 0.0;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_CPU_MODEL_HH
