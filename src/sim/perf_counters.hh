/**
 * @file
 * Hardware performance monitor (HPM) counter block.
 *
 * Models the event counters the paper samples through its custom HPM API
 * (Section IV-E): cycles, retired instructions, cache accesses and misses
 * at each level, and stall cycles. Counters are free-running; samplers
 * take snapshots and compute deltas, exactly as the OS-timer-driven
 * sampler in the paper does.
 */

#ifndef JAVELIN_SIM_PERF_COUNTERS_HH
#define JAVELIN_SIM_PERF_COUNTERS_HH

#include <cstdint>

namespace javelin {
namespace sim {

/**
 * Free-running event counters exposed by the simulated processor.
 */
struct PerfCounters
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /** L2 tag-array probes by the next-line prefetcher (demand traffic
     *  is not included; see MemoryHierarchy::prefetchNextLine). */
    std::uint64_t l2Probes = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t dramWritebacks = 0;

    /** Component-wise difference (this - earlier snapshot). */
    PerfCounters operator-(const PerfCounters &rhs) const;
    PerfCounters &operator+=(const PerfCounters &rhs);

    /** Instructions per cycle over this (delta) counter block. */
    double ipc() const;

    /** L2 miss rate (misses / accesses) over this delta block. */
    double l2MissRate() const;

    /** L1D miss rate over this delta block. */
    double l1dMissRate() const;
};

} // namespace sim
} // namespace javelin

#endif // JAVELIN_SIM_PERF_COUNTERS_HH
