/**
 * @file
 * Deterministic pseudo-random number generation and distributions.
 *
 * All stochastic behaviour in javelin flows through Rng so that every
 * experiment is exactly reproducible from its seed. The generator is
 * xoshiro256** seeded through SplitMix64, which gives independent,
 * high-quality streams from small integer seeds.
 */

#ifndef JAVELIN_UTIL_RANDOM_HH
#define JAVELIN_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace javelin {

/**
 * Deterministic random number generator with common distributions.
 */
class Rng
{
  public:
    /** Construct from a small seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 1);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial: true with probability p. */
    bool bernoulli(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Normally distributed value (Box-Muller). */
    double normal(double mean, double stddev);

    /**
     * Log-normal-ish positive size draw: mean-preserving, clamped to
     * [min_value, max_value]. Used for object and method size draws.
     */
    std::uint64_t sizeDraw(double mean, double sigma,
                           std::uint64_t min_value, std::uint64_t max_value);

    /**
     * Zipf-distributed rank in [0, n): rank k is drawn with probability
     * proportional to (k+1)^-s. s >= 0 is the skew parameter; larger s
     * concentrates mass on small ranks (s = 0 is uniform). Exact
     * rejection-inversion sampling (Hörmann & Derflinger), deterministic
     * per seed.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Fork an independent stream (e.g., one per simulated thread). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace javelin

#endif // JAVELIN_UTIL_RANDOM_HH
