#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace javelin {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    JAVELIN_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::beginRow()
{
    cells_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    JAVELIN_ASSERT(!cells_.empty(), "cell() before beginRow()");
    JAVELIN_ASSERT(cells_.back().size() < headers_.size(),
                   "row has too many cells");
    cells_.back().push_back(s);
    return *this;
}

Table &
Table::cell(const char *s)
{
    return cell(std::string(s));
}

Table &
Table::cell(std::int64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return cell(os.str());
}

Table &
Table::cellPct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return cell(os.str());
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    return cells_.at(row).at(col);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : cells_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << v;
        }
        os << '\n';
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : cells_)
        emitRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emitRow(headers_);
    for (const auto &row : cells_)
        emitRow(row);
}

} // namespace javelin
