/**
 * @file
 * Compensated (Kahan–Neumaier) floating-point summation.
 *
 * Long measurement traces integrate to a total many orders of magnitude
 * larger than any single term: a 40 us DAQ window contributes ~1e-4 J
 * while a sweep's total reaches tens of joules over millions of
 * samples, so naive left-to-right accumulation loses low-order bits on
 * every add and the error grows with trace length (O(n·eps) worst
 * case). Neumaier's variant of Kahan's algorithm keeps a running
 * compensation term that captures the bits each add rounds away,
 * bounding the error independent of n, and — unlike classic Kahan —
 * stays correct when a term is larger than the running sum.
 */

#ifndef JAVELIN_UTIL_KAHAN_HH
#define JAVELIN_UTIL_KAHAN_HH

#include <cmath>

namespace javelin {

/**
 * Neumaier compensated accumulator. Usable in constexpr contexts and
 * cheap enough for hot loops (two adds, one fabs-compare per term).
 */
class NeumaierSum
{
  public:
    /** Add one term. */
    void
    add(double x)
    {
        const double t = sum_ + x;
        // Whichever operand is larger determines which one lost
        // low-order bits in the rounded add; recover them exactly.
        if (std::abs(sum_) >= std::abs(x))
            comp_ += (sum_ - t) + x;
        else
            comp_ += (x - t) + sum_;
        sum_ = t;
    }

    /** The compensated total. */
    double value() const { return sum_ + comp_; }

    void
    reset()
    {
        sum_ = 0.0;
        comp_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

} // namespace javelin

#endif // JAVELIN_UTIL_KAHAN_HH
