/**
 * @file
 * Unit conventions used throughout javelin.
 *
 * Simulated time is kept as an integer count of picoseconds (Tick), as in
 * gem5, so clock periods of both platforms (625 ps at 1.6 GHz, 2500 ps at
 * 400 MHz) are exact. Power is watts, energy joules, both as doubles.
 */

#ifndef JAVELIN_UTIL_UNITS_HH
#define JAVELIN_UTIL_UNITS_HH

#include <cstdint>

namespace javelin {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Ticks per second (picosecond resolution). */
constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

constexpr Tick kTicksPerMilli = kTicksPerSecond / 1'000;
constexpr Tick kTicksPerMicro = kTicksPerSecond / 1'000'000;

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/** Convert seconds to ticks (rounds down). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSecond));
}

/** Clock period in ticks for a frequency in hertz. */
constexpr Tick
periodForFreq(double hz)
{
    return static_cast<Tick>(static_cast<double>(kTicksPerSecond) / hz);
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

} // namespace javelin

#endif // JAVELIN_UTIL_UNITS_HH
