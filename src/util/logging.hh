/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (a javelin bug); it aborts
 * so a debugger or core dump can capture the state. fatal() is for user
 * errors (bad configuration, impossible parameters); it exits cleanly with
 * a nonzero status. warn() and inform() never terminate.
 */

#ifndef JAVELIN_UTIL_LOGGING_HH
#define JAVELIN_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace javelin {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on an internal invariant violation. */
#define JAVELIN_PANIC(...) \
    ::javelin::detail::panicImpl(__FILE__, __LINE__, \
                                 ::javelin::detail::concat(__VA_ARGS__))

/** Exit on a user-caused unrecoverable condition. */
#define JAVELIN_FATAL(...) \
    ::javelin::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::javelin::detail::concat(__VA_ARGS__))

/** Alert the user to suspicious but non-fatal conditions. */
#define JAVELIN_WARN(...) \
    ::javelin::detail::warnImpl(__FILE__, __LINE__, \
                                ::javelin::detail::concat(__VA_ARGS__))

/** Print a normal operating status message. */
#define JAVELIN_INFORM(...) \
    ::javelin::detail::informImpl(::javelin::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. */
#define JAVELIN_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            JAVELIN_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace javelin

#endif // JAVELIN_UTIL_LOGGING_HH
