/**
 * @file
 * Resampling statistics for the energy-regression harness: percentile
 * bootstrap confidence intervals over seed ensembles, and two-sample
 * significance tests (Mann-Whitney rank test, permutation test) used
 * to gate CI on statistically significant regressions instead of fixed
 * thresholds (ROADMAP item 4; Bechet et al., Nyholm et al.).
 *
 * Everything here is deterministic: bootstrap resampling and the
 * Monte-Carlo permutation test draw from a caller-seeded Rng, so a
 * fixed seed list reproduces every interval and p-value bit for bit.
 */

#ifndef JAVELIN_UTIL_BOOTSTRAP_HH
#define JAVELIN_UTIL_BOOTSTRAP_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace javelin {

/** A statistic reduced over one sample vector (mean, median, ...). */
using Statistic = std::function<double(const std::vector<double> &)>;

/** Percentile-method bootstrap confidence interval for one statistic. */
struct BootstrapCi
{
    /** The statistic evaluated on the original sample. */
    double point = 0.0;
    /** Lower/upper CI bounds (percentiles of the resampled statistic). */
    double lo = 0.0;
    double hi = 0.0;
    /** Two-sided confidence level, e.g. 0.95. */
    double confidence = 0.0;
    std::size_t resamples = 0;

    /** Half-width relative to the point estimate (0 when point is 0). */
    double relativeHalfWidth() const;
};

/** Arithmetic mean (0 for an empty vector). */
double meanOf(const std::vector<double> &xs);

/**
 * Linear-interpolation quantile (the common "type 7" estimator) of a
 * sample, q in [0, 1]. Takes its argument by value and sorts it.
 */
double quantileOf(std::vector<double> xs, double q);

/** Median via quantileOf. */
double medianOf(std::vector<double> xs);

/**
 * Percentile-method bootstrap CI: resample xs with replacement
 * `resamples` times, evaluate `stat` on each resample, and return the
 * (alpha/2, 1 - alpha/2) percentiles of the resampled statistic.
 * Deterministic for a fixed seed. A sample of size < 2 yields the
 * degenerate interval [point, point].
 */
BootstrapCi bootstrapCi(const std::vector<double> &xs,
                        const Statistic &stat, std::size_t resamples,
                        double confidence, std::uint64_t seed);

/** bootstrapCi with the mean as the statistic. */
BootstrapCi bootstrapMeanCi(const std::vector<double> &xs,
                            std::size_t resamples, double confidence,
                            std::uint64_t seed);

/**
 * Two-sided Mann-Whitney U test p-value for samples a vs b: the
 * normal approximation with midranks, tie-corrected variance and a
 * 0.5 continuity correction. Returns 1.0 when either sample is empty
 * or the pooled sample has no variation (all ties). Small ensembles
 * (n around 8 per side) are within the approximation's usual range;
 * permutationP is the exactish alternative.
 */
double mannWhitneyP(const std::vector<double> &a,
                    const std::vector<double> &b);

/**
 * Two-sided Monte-Carlo permutation test on the difference of means:
 * the fraction of `rounds` random relabelings of the pooled sample
 * whose |mean difference| is at least the observed one, with the +1
 * add-one correction so p is never exactly 0. Deterministic per seed.
 */
double permutationP(const std::vector<double> &a,
                    const std::vector<double> &b, std::size_t rounds,
                    std::uint64_t seed);

} // namespace javelin

#endif // JAVELIN_UTIL_BOOTSTRAP_HH
