#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace javelin {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta *
           (static_cast<double>(n_) * static_cast<double>(other.n_)) /
           static_cast<double>(total);
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
            static_cast<double>(total);
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    // NaN, not 0.0: an empty accumulator must not masquerade as a real
    // observation in reports (0 J would read as a measured minimum).
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double
RunningStat::max() const
{
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    JAVELIN_ASSERT(hi > lo && bins > 0, "bad histogram bounds");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto bin = static_cast<std::size_t>((x - lo_) / width_);
        bin = std::min(bin, counts_.size() - 1);
        ++counts_[bin];
    }
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::percentile(double p) const
{
    JAVELIN_ASSERT(p >= 0.0 && p <= 1.0, "percentile out of range");
    if (total_ == 0)
        return lo_;
    // Nearest-rank: the smallest value with at least ceil(p * n) samples
    // at or below it. The rank is clamped to [1, n] so p = 0 selects the
    // first sample rather than a rank of 0 (which every prefix count
    // trivially satisfies — the old floor/>= pairing made p50 of a
    // single-sample histogram report lo_ regardless of the sample).
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(total_))));
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return binLow(i) + width_;
    }
    return hi_;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "hist[" << lo_ << "," << hi_ << ") n=" << total_
       << " p50=" << percentile(0.5) << " p99=" << percentile(0.99)
       << " under=" << underflow_ << " over=" << overflow_;
    return os.str();
}

} // namespace javelin
