/**
 * @file
 * Simple column-oriented table builder used by the benchmark harness to
 * print paper-style result tables, both human-aligned and as CSV.
 */

#ifndef JAVELIN_UTIL_TABLE_HH
#define JAVELIN_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace javelin {

/**
 * A growable table of string cells with typed convenience setters.
 *
 * Usage:
 * @code
 *   Table t({"bench", "heap(MB)", "EDP(Js)"});
 *   t.beginRow();
 *   t.cell("javac").cell(32).cell(1.25, 3);
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Start a new row; subsequent cell() calls fill it left to right. */
    Table &beginRow();

    Table &cell(const std::string &s);
    Table &cell(const char *s);
    Table &cell(std::int64_t v);
    Table &cell(std::uint64_t v);
    Table &cell(int v) { return cell(static_cast<std::int64_t>(v)); }

    /** Fixed-precision floating point cell. */
    Table &cell(double v, int precision = 3);

    /** Percentage cell rendered as "12.3%". */
    Table &cellPct(double fraction, int precision = 1);

    std::size_t rows() const { return cells_.size(); }
    std::size_t columns() const { return headers_.size(); }
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Pretty-print with aligned columns. */
    void print(std::ostream &os) const;

    /** Emit machine-readable CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> cells_;
};

} // namespace javelin

#endif // JAVELIN_UTIL_TABLE_HH
