/**
 * @file
 * javelin-kv-v1 on-disk layout (all integers little-endian):
 *
 *   superblock (32 bytes at offset 0):
 *     bytes  0-7   magic "JVLKV1\0\0"
 *     bytes  8-11  u32 version (1)
 *     bytes 12-15  u32 endian check 0x01020304
 *     bytes 16-19  u32 page size (4096)
 *     bytes 20-23  u32 CRC-32 of bytes 0-19
 *     bytes 24-31  zero pad
 *
 *   pages (4096 bytes each, starting at offset 32). Every page ends
 *   with a u32 CRC-32 of its first 4092 bytes. Three page kinds:
 *
 *     leaf (kind 1):   u32 kind, u32 entryCount, then entryCount
 *                      packed entries [u32 keyLen, u32 valLen, key,
 *                      value], zero fill to the CRC.
 *     extent (kind 2): u32 kind, u32 keyLen, u32 valLen, key, then
 *                      the first run of value bytes. The value
 *                      continues across the following continuation
 *                      pages until valLen bytes are consumed.
 *     continuation:    4092 raw value bytes (no kind field — the
 *                      scanner knows how many follow an extent
 *                      start), then the CRC.
 *
 * Recovery mirrors the run journal: only the file's tail may be
 * torn. A trailing partial page, a CRC failure on the final page, or
 * a final extent whose continuation pages run past EOF is dropped
 * (and the file truncated back to the consistent prefix); the same
 * defect with intact pages after it cannot be an interrupted append
 * and throws KvError.
 */

#include "util/kv_store.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace javelin {

namespace {

constexpr unsigned char kMagic[8] = {'J', 'V', 'L', 'K', 'V',
                                     '1', '\0', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianCheck = 0x01020304;
constexpr std::size_t kSuperBytes = 32;
constexpr std::size_t kPageBytes = KvStore::kPageBytes;
/** Payload bytes per page (everything before the trailing CRC). */
constexpr std::size_t kPageDataBytes = kPageBytes - 4;
constexpr std::size_t kLeafHeaderBytes = 8;
constexpr std::size_t kLeafCapacity = kPageDataBytes - kLeafHeaderBytes;
constexpr std::size_t kExtentHeaderBytes = 12;
constexpr std::uint32_t kKindLeaf = 1;
constexpr std::uint32_t kKindExtent = 2;

std::uint32_t
crc32(const unsigned char *data, std::size_t len,
      std::uint32_t seed = 0)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

void
sealPage(unsigned char *page)
{
    putU32(page + kPageDataBytes, crc32(page, kPageDataBytes));
}

bool
pageIntact(const unsigned char *page)
{
    return getU32(page + kPageDataBytes) ==
           crc32(page, kPageDataBytes);
}

[[noreturn]] void
throwErrno(const std::string &path, const char *what)
{
    throw KvError("kv store " + path + ": " + what + ": " +
                  std::strerror(errno));
}

/** Continuation pages needed after the extent-start page. */
std::size_t
extentContPages(std::size_t keyLen, std::size_t valLen)
{
    const std::size_t firstRun =
        kPageDataBytes - kExtentHeaderBytes - keyLen;
    if (valLen <= firstRun)
        return 0;
    const std::size_t rest = valLen - firstRun;
    return (rest + kPageDataBytes - 1) / kPageDataBytes;
}

} // namespace

KvStore::KvStore(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
        throwErrno(path_, "open");
    load();
}

KvStore::~KvStore()
{
    try {
        close();
    } catch (const KvError &) {
        // Destructors must not throw; close() explicitly to observe
        // flush failures.
    }
}

void
KvStore::load()
{
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0)
        throwErrno(path_, "lseek");
    const auto fileBytes = static_cast<std::size_t>(end);

    unsigned char super[kSuperBytes] = {};
    if (fileBytes < kSuperBytes) {
        // Empty store, or a header torn by a crash during creation:
        // either way the whole tail drops and we start fresh.
        std::memcpy(super, kMagic, sizeof kMagic);
        putU32(super + 8, kVersion);
        putU32(super + 12, kEndianCheck);
        putU32(super + 16, static_cast<std::uint32_t>(kPageBytes));
        putU32(super + 20, crc32(super, 20));
        if (::pwrite(fd_, super, kSuperBytes, 0) !=
            static_cast<ssize_t>(kSuperBytes))
            throwErrno(path_, "write superblock");
        if (::ftruncate(fd_, kSuperBytes) != 0)
            throwErrno(path_, "truncate");
        pageCount_ = 0;
        return;
    }

    if (::pread(fd_, super, kSuperBytes, 0) !=
        static_cast<ssize_t>(kSuperBytes))
        throwErrno(path_, "read superblock");
    if (std::memcmp(super, kMagic, sizeof kMagic) != 0)
        throw KvError("kv store " + path_ + ": bad magic");
    if (getU32(super + 20) != crc32(super, 20))
        throw KvError("kv store " + path_ + ": superblock CRC mismatch");
    if (getU32(super + 8) != kVersion)
        throw KvError("kv store " + path_ + ": unsupported version " +
                      std::to_string(getU32(super + 8)));
    if (getU32(super + 12) != kEndianCheck)
        throw KvError("kv store " + path_ +
                      ": written on an incompatible-endian host");
    if (getU32(super + 16) != kPageBytes)
        throw KvError("kv store " + path_ + ": page size mismatch");

    // A trailing partial page can only be an interrupted append.
    const std::size_t fullPages = (fileBytes - kSuperBytes) / kPageBytes;
    bool torn = (fileBytes - kSuperBytes) % kPageBytes != 0;

    std::vector<unsigned char> page(kPageBytes);
    std::size_t i = 0;
    while (i < fullPages) {
        const off_t off =
            static_cast<off_t>(kSuperBytes + i * kPageBytes);
        if (::pread(fd_, page.data(), kPageBytes, off) !=
            static_cast<ssize_t>(kPageBytes))
            throwErrno(path_, "read page");
        if (!pageIntact(page.data())) {
            if (i + 1 == fullPages) {
                torn = true;
                break;
            }
            throw KvError("kv store " + path_ + ": page " +
                          std::to_string(i) + " CRC mismatch");
        }

        const std::uint32_t kind = getU32(page.data());
        if (kind == kKindLeaf) {
            const std::uint32_t n = getU32(page.data() + 4);
            std::size_t pos = kLeafHeaderBytes;
            for (std::uint32_t e = 0; e < n; ++e) {
                if (pos + 8 > kPageDataBytes)
                    throw KvError("kv store " + path_ + ": page " +
                                  std::to_string(i) +
                                  " leaf entry overruns page");
                const std::uint32_t keyLen = getU32(page.data() + pos);
                const std::uint32_t valLen =
                    getU32(page.data() + pos + 4);
                if (pos + 8 + keyLen + valLen > kPageDataBytes)
                    throw KvError("kv store " + path_ + ": page " +
                                  std::to_string(i) +
                                  " leaf entry overruns page");
                std::string key(
                    reinterpret_cast<const char *>(page.data() + pos +
                                                   8),
                    keyLen);
                Location loc;
                loc.page = i;
                loc.offset = static_cast<std::uint32_t>(pos);
                loc.valueBytes = valLen;
                loc.extent = false;
                index_[std::move(key)] = loc;
                pos += 8 + keyLen + valLen;
            }
            ++i;
        } else if (kind == kKindExtent) {
            const std::uint32_t keyLen = getU32(page.data() + 4);
            const std::uint32_t valLen = getU32(page.data() + 8);
            if (kExtentHeaderBytes + keyLen > kPageDataBytes)
                throw KvError("kv store " + path_ + ": page " +
                              std::to_string(i) +
                              " extent key overruns page");
            const std::size_t cont = extentContPages(keyLen, valLen);
            if (i + 1 + cont > fullPages) {
                // Extent runs past EOF: an interrupted append by
                // construction (nothing can follow it).
                torn = true;
                break;
            }
            // Verify the continuation pages now so corruption is
            // caught at open, matching the journal's fail-fast rule.
            bool contTorn = false;
            for (std::size_t c = 0; c < cont; ++c) {
                std::vector<unsigned char> cp(kPageBytes);
                const off_t coff = static_cast<off_t>(
                    kSuperBytes + (i + 1 + c) * kPageBytes);
                if (::pread(fd_, cp.data(), kPageBytes, coff) !=
                    static_cast<ssize_t>(kPageBytes))
                    throwErrno(path_, "read page");
                if (!pageIntact(cp.data())) {
                    if (i + 1 + cont == fullPages) {
                        contTorn = true;
                        break;
                    }
                    throw KvError("kv store " + path_ + ": page " +
                                  std::to_string(i + 1 + c) +
                                  " CRC mismatch");
                }
            }
            if (contTorn) {
                torn = true;
                break;
            }
            std::string key(
                reinterpret_cast<const char *>(page.data() +
                                               kExtentHeaderBytes),
                keyLen);
            Location loc;
            loc.page = i;
            loc.offset = 0;
            loc.valueBytes = valLen;
            loc.extent = true;
            index_[std::move(key)] = loc;
            i += 1 + cont;
        } else {
            // A CRC-intact page with an unknown kind was written
            // whole; that is corruption (or a future format), never
            // a tear.
            throw KvError("kv store " + path_ + ": page " +
                          std::to_string(i) + " has unknown kind " +
                          std::to_string(kind));
        }
    }
    pageCount_ = i;

    if (torn) {
        // Drop the torn tail so future appends never interleave with
        // stale half-written pages.
        if (::ftruncate(fd_, static_cast<off_t>(
                                 kSuperBytes +
                                 pageCount_ * kPageBytes)) != 0)
            throwErrno(path_, "truncate torn tail");
    }
}

void
KvStore::put(const std::string &key, const std::string &value)
{
    if (closed_)
        throw KvError("kv store " + path_ + ": put after close");
    if (key.empty())
        throw KvError("kv store " + path_ + ": empty key");
    if (key.size() > kLeafCapacity - 8)
        throw KvError("kv store " + path_ + ": key too large (" +
                      std::to_string(key.size()) + " bytes)");
    pending_[key] = value;
}

std::optional<std::string>
KvStore::get(const std::string &key) const
{
    if (const auto p = pending_.find(key); p != pending_.end())
        return p->second;
    if (const auto it = index_.find(key); it != index_.end())
        return readValue(it->second);
    return std::nullopt;
}

bool
KvStore::contains(const std::string &key) const
{
    return pending_.count(key) != 0 || index_.count(key) != 0;
}

std::vector<std::string>
KvStore::keys() const
{
    std::vector<std::string> out;
    out.reserve(pending_.size() + index_.size());
    for (const auto &[k, v] : pending_)
        out.push_back(k);
    for (const auto &[k, loc] : index_)
        if (pending_.count(k) == 0)
            out.push_back(k);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
KvStore::readValue(const Location &loc) const
{
    std::vector<unsigned char> page(kPageBytes);
    const off_t off =
        static_cast<off_t>(kSuperBytes + loc.page * kPageBytes);
    if (::pread(fd_, page.data(), kPageBytes, off) !=
        static_cast<ssize_t>(kPageBytes))
        throwErrno(path_, "read page");
    if (!pageIntact(page.data()))
        throw KvError("kv store " + path_ + ": page " +
                      std::to_string(loc.page) +
                      " CRC mismatch on read");

    if (!loc.extent) {
        const std::uint32_t keyLen = getU32(page.data() + loc.offset);
        const std::size_t valueOff = loc.offset + 8 + keyLen;
        return std::string(
            reinterpret_cast<const char *>(page.data() + valueOff),
            loc.valueBytes);
    }

    const std::uint32_t keyLen = getU32(page.data() + 4);
    std::string out;
    out.reserve(loc.valueBytes);
    const std::size_t firstRun =
        std::min<std::size_t>(loc.valueBytes,
                              kPageDataBytes - kExtentHeaderBytes -
                                  keyLen);
    out.append(reinterpret_cast<const char *>(
                   page.data() + kExtentHeaderBytes + keyLen),
               firstRun);
    std::uint64_t pageIdx = loc.page + 1;
    while (out.size() < loc.valueBytes) {
        const off_t coff =
            static_cast<off_t>(kSuperBytes + pageIdx * kPageBytes);
        if (::pread(fd_, page.data(), kPageBytes, coff) !=
            static_cast<ssize_t>(kPageBytes))
            throwErrno(path_, "read page");
        if (!pageIntact(page.data()))
            throw KvError("kv store " + path_ + ": page " +
                          std::to_string(pageIdx) +
                          " CRC mismatch on read");
        const std::size_t take =
            std::min<std::size_t>(loc.valueBytes - out.size(),
                                  kPageDataBytes);
        out.append(reinterpret_cast<const char *>(page.data()), take);
        ++pageIdx;
    }
    return out;
}

void
KvStore::writePage(std::uint64_t pageIndex, const unsigned char *page)
{
    const off_t off =
        static_cast<off_t>(kSuperBytes + pageIndex * kPageBytes);
    ssize_t done = 0;
    while (done < static_cast<ssize_t>(kPageBytes)) {
        const ssize_t n = ::pwrite(fd_, page + done, kPageBytes - done,
                                   off + done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno(path_, "write page");
        }
        done += n;
    }
    ++pageWrites_;
}

std::size_t
KvStore::flush()
{
    if (closed_)
        throw KvError("kv store " + path_ + ": flush after close");
    if (pending_.empty())
        return 0;

    const std::size_t writesBefore = pageWrites_;
    std::vector<unsigned char> page(kPageBytes, 0);
    std::uint32_t leafEntries = 0;
    std::size_t leafPos = kLeafHeaderBytes;
    // Deferred index updates for entries on the open leaf page: the
    // page index is only final once the page seals (extents emitted
    // mid-leaf would otherwise shift it).
    std::vector<std::pair<std::string, Location>> leafLocs;

    const auto sealLeaf = [&] {
        if (leafEntries == 0)
            return;
        putU32(page.data(), kKindLeaf);
        putU32(page.data() + 4, leafEntries);
        std::memset(page.data() + leafPos, 0, kPageDataBytes - leafPos);
        sealPage(page.data());
        writePage(pageCount_, page.data());
        for (auto &[k, loc] : leafLocs) {
            loc.page = pageCount_;
            index_[k] = loc;
        }
        ++pageCount_;
        leafLocs.clear();
        leafEntries = 0;
        leafPos = kLeafHeaderBytes;
    };

    for (const auto &[key, value] : pending_) {
        const std::size_t entryBytes = 8 + key.size() + value.size();
        if (entryBytes <= kLeafCapacity) {
            if (leafPos + entryBytes > kPageDataBytes)
                sealLeaf();
            putU32(page.data() + leafPos,
                   static_cast<std::uint32_t>(key.size()));
            putU32(page.data() + leafPos + 4,
                   static_cast<std::uint32_t>(value.size()));
            std::memcpy(page.data() + leafPos + 8, key.data(),
                        key.size());
            std::memcpy(page.data() + leafPos + 8 + key.size(),
                        value.data(), value.size());
            Location loc;
            loc.offset = static_cast<std::uint32_t>(leafPos);
            loc.valueBytes = static_cast<std::uint32_t>(value.size());
            loc.extent = false;
            leafLocs.emplace_back(key, loc);
            leafPos += entryBytes;
            ++leafEntries;
            continue;
        }

        // Oversized value: flush the open leaf so the extent's pages
        // stay contiguous, then emit start + continuation pages.
        sealLeaf();
        std::vector<unsigned char> ep(kPageBytes, 0);
        putU32(ep.data(), kKindExtent);
        putU32(ep.data() + 4, static_cast<std::uint32_t>(key.size()));
        putU32(ep.data() + 8, static_cast<std::uint32_t>(value.size()));
        std::memcpy(ep.data() + kExtentHeaderBytes, key.data(),
                    key.size());
        const std::size_t firstRun =
            std::min(value.size(),
                     kPageDataBytes - kExtentHeaderBytes - key.size());
        std::memcpy(ep.data() + kExtentHeaderBytes + key.size(),
                    value.data(), firstRun);
        sealPage(ep.data());
        const std::uint64_t startPage = pageCount_;
        writePage(pageCount_++, ep.data());

        std::size_t written = firstRun;
        while (written < value.size()) {
            std::fill(ep.begin(), ep.end(), 0);
            const std::size_t take =
                std::min(value.size() - written, kPageDataBytes);
            std::memcpy(ep.data(), value.data() + written, take);
            sealPage(ep.data());
            writePage(pageCount_++, ep.data());
            written += take;
        }

        Location loc;
        loc.page = startPage;
        loc.offset = 0;
        loc.valueBytes = static_cast<std::uint32_t>(value.size());
        loc.extent = true;
        index_[key] = loc;
    }
    sealLeaf();
    pending_.clear();
    return pageWrites_ - writesBefore;
}

void
KvStore::compact()
{
    flush();
    // Rewrite live entries into a fresh store, then swap it in. Keys
    // are re-put one at a time so peak memory stays one value, not
    // the whole store.
    const std::string tmpPath = path_ + ".compact";
    {
        ::unlink(tmpPath.c_str());
        KvStore tmp(tmpPath);
        std::size_t pendingBytes = 0;
        for (const auto &[key, loc] : index_) {
            tmp.put(key, readValue(loc));
            pendingBytes += key.size() + loc.valueBytes;
            // Flush in page-sized batches (not per key, which would
            // defeat the merging; not all at once, which would hold
            // the whole store in memory).
            if (pendingBytes >= 1 << 20) {
                tmp.flush();
                pendingBytes = 0;
            }
        }
        tmp.close();
    }
    ::close(fd_);
    if (::rename(tmpPath.c_str(), path_.c_str()) != 0)
        throwErrno(path_, "rename compacted store");
    fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fd_ < 0)
        throwErrno(path_, "reopen compacted store");
    index_.clear();
    pageCount_ = 0;
    load();
}

void
KvStore::close()
{
    if (closed_)
        return;
    flush();
    closed_ = true;
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace javelin
