#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace javelin {
namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace javelin
