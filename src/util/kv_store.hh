/**
 * @file
 * A small batched key-value store (javelin-kv-v1, DESIGN.md §10).
 *
 * Javelin's result artifacts — sweep shard records, golden-run
 * captures, bench history sidecars — are many small writes that used
 * to land as loose files or not persist at all. KvStore turns them
 * into one queryable file with FlashX simple_KV_store's batching
 * idiom: put() only queues a request; flush() merges every pending
 * request onto 4 KiB pages — all requests landing on the same page
 * become ONE page image — and issues exactly one pwrite per dirty
 * page. Values larger than a page span an extent of contiguous pages
 * with a single start header.
 *
 * The file is append-only at page granularity: an update never
 * rewrites an old page, it appends a new one, and the loader keeps
 * the last occurrence of each key in file order. That makes crash
 * behavior simple and journal-like: a torn final page (its CRC fails
 * or its extent runs past EOF) is dropped on open; a bad page
 * anywhere earlier is corruption and open() throws KvError. Dead
 * space from shadowed updates is reclaimed by compact().
 *
 * Values are kept on disk, not in memory: the open-time scan builds
 * only a key -> page-location index, so a multi-gigabyte store costs
 * memory proportional to its key count.
 */

#ifndef JAVELIN_UTIL_KV_STORE_HH
#define JAVELIN_UTIL_KV_STORE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace javelin {

/** Corruption, I/O failure, or misuse of a javelin-kv-v1 store. */
struct KvError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

class KvStore
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    /**
     * Open a store, creating the file if it does not exist. Scans
     * existing pages to rebuild the key index; drops a torn final
     * page; throws KvError on corruption anywhere earlier.
     */
    explicit KvStore(const std::string &path);
    ~KvStore();

    KvStore(const KvStore &) = delete;
    KvStore &operator=(const KvStore &) = delete;

    /**
     * Queue a put. Nothing reaches the file until flush(); a repeated
     * key overwrites the queued value (requests merge before paging).
     */
    void put(const std::string &key, const std::string &value);

    /**
     * Read a value: pending requests first, then the on-disk index.
     * std::nullopt for an absent key.
     */
    std::optional<std::string> get(const std::string &key) const;

    /** True if the key exists (pending or flushed). */
    bool contains(const std::string &key) const;

    /** Sorted union of pending and flushed keys. */
    std::vector<std::string> keys() const;

    /**
     * Write every pending request: requests are packed onto pages
     * (many small entries share one page; big values get an extent)
     * and each new page is written with one pwrite. Returns the
     * number of page writes issued.
     */
    std::size_t flush();

    /**
     * Rewrite the store keeping only live entries (drops the dead
     * space shadowed updates leave behind). Implies flush().
     */
    void compact();

    /** flush() + close the file. Idempotent; the destructor calls it. */
    void close();

    const std::string &path() const { return path_; }
    /** Pending (unflushed) request count. */
    std::size_t pendingCount() const { return pending_.size(); }
    /** Total page writes issued over this handle's lifetime. */
    std::size_t pageWrites() const { return pageWrites_; }
    /** Pages currently in the file. */
    std::size_t pageCount() const { return pageCount_; }

  private:
    struct Location
    {
        /** Page index of the leaf entry or extent start. */
        std::uint64_t page = 0;
        /** Offset of the entry inside the page (leaf) or 0 (extent). */
        std::uint32_t offset = 0;
        std::uint32_t valueBytes = 0;
        bool extent = false;
    };

    void load();
    std::string readValue(const Location &loc) const;
    void writePage(std::uint64_t pageIndex,
                   const unsigned char *page);

    std::string path_;
    int fd_ = -1;
    bool closed_ = false;
    std::uint64_t pageCount_ = 0;
    std::size_t pageWrites_ = 0;
    std::map<std::string, Location> index_;
    std::map<std::string, std::string> pending_;
};

} // namespace javelin

#endif // JAVELIN_UTIL_KV_STORE_HH
