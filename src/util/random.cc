#include "util/random.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace javelin {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits scaled into [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    JAVELIN_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    JAVELIN_ASSERT(lo <= hi, "uniformRange requires lo <= hi");
    return lo + static_cast<std::int64_t>(
        uniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return mean + stddev * spareNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpareNormal_ = true;
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t
Rng::sizeDraw(double mean, double sigma, std::uint64_t min_value,
              std::uint64_t max_value)
{
    JAVELIN_ASSERT(min_value <= max_value, "sizeDraw bounds inverted");
    // Log-normal with the requested arithmetic mean: if X ~ LogN(mu, s)
    // then E[X] = exp(mu + s^2/2), so mu = ln(mean) - s^2/2.
    const double s = std::max(sigma, 1e-9);
    const double mu = std::log(std::max(mean, 1.0)) - 0.5 * s * s;
    const double x = std::exp(normal(mu, s));
    const auto v = static_cast<std::uint64_t>(std::llround(x));
    return std::clamp(v, min_value, max_value);
}

namespace {

/** expm1(t)/t, continuous through t = 0 (limit 1). */
double
zipfExpm1Ratio(double t)
{
    return std::abs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t / 2.0;
}

/** log1p(t)/t, continuous through t = 0 (limit 1). */
double
zipfLog1pRatio(double t)
{
    return std::abs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t / 2.0;
}

/** H(x) = integral of x^-s: (x^(1-s) - 1)/(1-s), stable through s = 1. */
double
zipfHIntegral(double x, double s)
{
    const double logX = std::log(x);
    return zipfExpm1Ratio((1.0 - s) * logX) * logX;
}

/** Inverse of zipfHIntegral. */
double
zipfHIntegralInverse(double u, double s)
{
    double t = u * (1.0 - s);
    // Clamp: u at the lower domain edge can round below the pole.
    if (t < -1.0)
        t = -1.0;
    return std::exp(zipfLog1pRatio(t) * u);
}

} // namespace

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    JAVELIN_ASSERT(n > 0, "zipf needs a positive universe");
    JAVELIN_ASSERT(s >= 0.0, "zipf skew must be non-negative");
    if (n == 1)
        return 0;
    // Rejection-inversion for the bounded Zipf distribution (Hörmann &
    // Derflinger 1996, the scheme behind Apache Commons'
    // RejectionInversionZipfSampler). Invert the continuous envelope
    // H(x) = integral of x^-s over [0.5, n + 0.5], round to the nearest
    // rank k, and accept k exactly when u falls inside the area the
    // discrete mass k^-s claims under the envelope. The earlier code
    // inverted an envelope but skipped the acceptance test entirely,
    // which biased the ranks (and never produced rank 0 at all).
    const double nd = static_cast<double>(n);
    const double hX1 = zipfHIntegral(1.5, s) - 1.0;
    const double hN = zipfHIntegral(nd + 0.5, s);
    // Fast-accept band: |k - x| below this never needs the exact test.
    const double fastThreshold =
        2.0 - zipfHIntegralInverse(zipfHIntegral(2.5, s) -
                                       std::pow(2.0, -s),
                                   s);
    for (;;) {
        const double u = hN + uniform() * (hX1 - hN);
        const double x = zipfHIntegralInverse(u, s);
        double k = std::floor(x + 0.5);
        k = std::clamp(k, 1.0, nd);
        if (k - x <= fastThreshold ||
            u >= zipfHIntegral(k + 0.5, s) - std::pow(k, -s)) {
            // k is 1-based; the public contract is a rank in [0, n).
            return static_cast<std::uint64_t>(k) - 1;
        }
    }
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace javelin
