/**
 * @file
 * Lightweight statistics collectors used throughout the simulator:
 * running mean/min/max/variance (Welford) and fixed-bin histograms.
 */

#ifndef JAVELIN_UTIL_STATS_HH
#define JAVELIN_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace javelin {

/**
 * Single-pass mean / variance / extrema accumulator (Welford's method).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    /** Smallest observation; NaN when empty (not a real observation). */
    double min() const;
    /** Largest observation; NaN when empty (not a real observation). */
    double max() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width-bin histogram over [lo, hi) with overflow/underflow bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Value below which the given fraction of samples fall. */
    double percentile(double p) const;

    /** Render a short textual summary (for reports and debugging). */
    std::string summary() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace javelin

#endif // JAVELIN_UTIL_STATS_HH
