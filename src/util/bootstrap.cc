#include "util/bootstrap.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/kahan.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace javelin {

double
BootstrapCi::relativeHalfWidth() const
{
    if (point == 0.0)
        return 0.0;
    return 0.5 * (hi - lo) / std::abs(point);
}

double
meanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    NeumaierSum sum;
    for (const double x : xs)
        sum.add(x);
    return sum.value() / static_cast<double>(xs.size());
}

double
quantileOf(std::vector<double> xs, double q)
{
    JAVELIN_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(xs.begin(), xs.end());
    // Type-7 estimator: index h = q * (n - 1), linear between ranks.
    const double h = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = h - std::floor(h);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
medianOf(std::vector<double> xs)
{
    return quantileOf(std::move(xs), 0.5);
}

BootstrapCi
bootstrapCi(const std::vector<double> &xs, const Statistic &stat,
            std::size_t resamples, double confidence, std::uint64_t seed)
{
    JAVELIN_ASSERT(confidence > 0.0 && confidence < 1.0,
                   "confidence must be in (0, 1)");
    BootstrapCi ci;
    ci.confidence = confidence;
    ci.resamples = resamples;
    if (xs.empty()) {
        ci.point = ci.lo = ci.hi =
            std::numeric_limits<double>::quiet_NaN();
        return ci;
    }
    ci.point = stat(xs);
    if (xs.size() < 2 || resamples == 0) {
        ci.lo = ci.hi = ci.point;
        return ci;
    }

    Rng rng(seed);
    std::vector<double> resample(xs.size());
    std::vector<double> stats;
    stats.reserve(resamples);
    for (std::size_t r = 0; r < resamples; ++r) {
        for (auto &slot : resample)
            slot = xs[rng.uniformInt(xs.size())];
        stats.push_back(stat(resample));
    }
    const double alpha = 1.0 - confidence;
    ci.lo = quantileOf(stats, alpha / 2.0);
    ci.hi = quantileOf(std::move(stats), 1.0 - alpha / 2.0);
    return ci;
}

BootstrapCi
bootstrapMeanCi(const std::vector<double> &xs, std::size_t resamples,
                double confidence, std::uint64_t seed)
{
    return bootstrapCi(
        xs, [](const std::vector<double> &v) { return meanOf(v); },
        resamples, confidence, seed);
}

double
mannWhitneyP(const std::vector<double> &a, const std::vector<double> &b)
{
    const std::size_t na = a.size();
    const std::size_t nb = b.size();
    if (na == 0 || nb == 0)
        return 1.0;

    // Pool, sort, and assign midranks to ties.
    struct Tagged
    {
        double value;
        bool fromA;
    };
    std::vector<Tagged> pooled;
    pooled.reserve(na + nb);
    for (const double x : a)
        pooled.push_back({x, true});
    for (const double x : b)
        pooled.push_back({x, false});
    std::sort(pooled.begin(), pooled.end(),
              [](const Tagged &l, const Tagged &r) {
                  return l.value < r.value;
              });

    const double n = static_cast<double>(na + nb);
    double rankSumA = 0.0;
    double tieCorrection = 0.0; // sum of t^3 - t over tie groups
    std::size_t i = 0;
    while (i < pooled.size()) {
        std::size_t j = i;
        while (j < pooled.size() && pooled[j].value == pooled[i].value)
            ++j;
        // Ranks are 1-based: group [i, j) shares the average rank.
        const double midrank =
            (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
        const auto t = static_cast<double>(j - i);
        tieCorrection += t * t * t - t;
        for (std::size_t k = i; k < j; ++k)
            if (pooled[k].fromA)
                rankSumA += midrank;
        i = j;
    }

    const double nad = static_cast<double>(na);
    const double nbd = static_cast<double>(nb);
    const double u = rankSumA - nad * (nad + 1.0) / 2.0;
    const double meanU = nad * nbd / 2.0;
    const double variance =
        nad * nbd / 12.0 *
        ((n + 1.0) - tieCorrection / (n * (n - 1.0)));
    if (variance <= 0.0)
        return 1.0; // every observation tied: no evidence either way
    // Continuity correction toward the mean.
    const double shifted = std::abs(u - meanU) - 0.5;
    const double z = std::max(shifted, 0.0) / std::sqrt(variance);
    const double p = std::erfc(z / std::sqrt(2.0)); // two-sided
    return std::clamp(p, 0.0, 1.0);
}

double
permutationP(const std::vector<double> &a, const std::vector<double> &b,
             std::size_t rounds, std::uint64_t seed)
{
    if (a.empty() || b.empty() || rounds == 0)
        return 1.0;
    const double observed = std::abs(meanOf(a) - meanOf(b));
    std::vector<double> pooled;
    pooled.reserve(a.size() + b.size());
    pooled.insert(pooled.end(), a.begin(), a.end());
    pooled.insert(pooled.end(), b.begin(), b.end());

    Rng rng(seed);
    std::size_t atLeast = 0;
    std::vector<double> groupA(a.size());
    for (std::size_t r = 0; r < rounds; ++r) {
        rng.shuffle(pooled);
        std::copy(pooled.begin(),
                  pooled.begin() + static_cast<std::ptrdiff_t>(a.size()),
                  groupA.begin());
        std::vector<double> groupB(
            pooled.begin() + static_cast<std::ptrdiff_t>(a.size()),
            pooled.end());
        const double delta = std::abs(meanOf(groupA) - meanOf(groupB));
        if (delta >= observed - 1e-15 * std::abs(observed))
            ++atLeast;
    }
    return (static_cast<double>(atLeast) + 1.0) /
           (static_cast<double>(rounds) + 1.0);
}

} // namespace javelin
