#include "util/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace javelin {
namespace json {

namespace {

/** Recursive-descent parser over a flat buffer with line tracking. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    run()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after the document");
        return v;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ParseError(line_, msg);
    }

    bool
    atEnd() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return text_[pos_];
    }

    char
    advance()
    {
        const char c = text_[pos_++];
        if (c == '\n')
            ++line_;
        return c;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n')
                advance();
            else
                break;
        }
    }

    void
    expect(char c)
    {
        if (atEnd() || peek() != c)
            fail(std::string("expected '") + c + "'");
        advance();
    }

    bool
    consumeIf(char c)
    {
        if (!atEnd() && peek() == c) {
            advance();
            return true;
        }
        return false;
    }

    void
    expectKeyword(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (atEnd() || peek() != *p)
                fail(std::string("invalid token (expected \"") + word +
                     "\")");
            advance();
        }
    }

    Value
    parseValue()
    {
        skipWs();
        if (atEnd())
            fail("unexpected end of input");
        Value v;
        v.line = line_;
        switch (peek()) {
          case '{':
            parseObject(v);
            return v;
          case '[':
            parseArray(v);
            return v;
          case '"':
            v.kind = Value::Kind::String;
            v.str = parseString();
            return v;
          case 't':
            expectKeyword("true");
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return v;
          case 'f':
            expectKeyword("false");
            v.kind = Value::Kind::Bool;
            v.boolean = false;
            return v;
          case 'n':
            expectKeyword("null");
            v.kind = Value::Kind::Null;
            return v;
          default:
            parseNumber(v);
            return v;
        }
    }

    void
    parseObject(Value &v)
    {
        v.kind = Value::Kind::Object;
        expect('{');
        skipWs();
        if (consumeIf('}'))
            return;
        for (;;) {
            skipWs();
            if (atEnd() || peek() != '"')
                fail("expected a quoted object key");
            const int keyLine = line_;
            std::string key = parseString();
            for (const auto &m : v.members)
                if (m.first == key)
                    throw ParseError(keyLine, "duplicate key \"" + key +
                                                  "\"");
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (consumeIf(','))
                continue;
            expect('}');
            return;
        }
    }

    void
    parseArray(Value &v)
    {
        v.kind = Value::Kind::Array;
        expect('[');
        skipWs();
        if (consumeIf(']'))
            return;
        for (;;) {
            v.items.push_back(parseValue());
            skipWs();
            if (consumeIf(','))
                continue;
            expect(']');
            return;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (atEnd())
                fail("unterminated string");
            const char c = advance();
            if (c == '"')
                return out;
            if (c == '\n')
                fail("raw newline in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (atEnd())
                fail("unterminated escape");
            const char e = advance();
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("invalid escape");
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd() || !std::isxdigit(
                               static_cast<unsigned char>(peek())))
                fail("invalid \\u escape");
            const char c = advance();
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(c))
                           ? c - '0'
                           : std::tolower(c) - 'a' + 10);
        }
        // UTF-8 encode (BMP only; surrogate pairs are not needed by any
        // javelin format and are rejected for simplicity).
        if (code >= 0xd800 && code <= 0xdfff)
            fail("surrogate \\u escapes are not supported");
        std::string out;
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
        return out;
    }

    void
    parseNumber(Value &v)
    {
        const std::size_t start = pos_;
        if (consumeIf('-')) {
        }
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(peek())))
            advance();
        if (consumeIf('.')) {
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                fail("digits required after the decimal point");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                advance();
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                fail("digits required in the exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                advance();
        }
        v.kind = Value::Kind::Number;
        v.raw = text_.substr(start, pos_ - start);
        v.number = std::strtod(v.raw.c_str(), nullptr);
    }
};

} // namespace

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

void
Value::typeError(const char *wanted) const
{
    static const char *const names[] = {"null",   "bool",  "number",
                                        "string", "array", "object"};
    throw ParseError(line, std::string("expected ") + wanted +
                               ", got " +
                               names[static_cast<int>(kind)]);
}

bool
Value::asBool() const
{
    if (kind != Kind::Bool)
        typeError("a boolean");
    return boolean;
}

double
Value::asDouble() const
{
    if (kind != Kind::Number)
        typeError("a number");
    return number;
}

std::uint64_t
Value::asU64() const
{
    if (kind != Kind::Number || raw.find_first_of(".eE-") !=
                                    std::string::npos)
        typeError("a non-negative integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (errno == ERANGE || end == raw.c_str() || *end != '\0')
        typeError("a 64-bit unsigned integer");
    return v;
}

std::int64_t
Value::asI64() const
{
    if (kind != Kind::Number ||
        raw.find_first_of(".eE") != std::string::npos)
        typeError("an integer");
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(raw.c_str(), &end, 10);
    if (errno == ERANGE || end == raw.c_str() || *end != '\0')
        typeError("a 64-bit signed integer");
    return v;
}

const std::string &
Value::asString() const
{
    if (kind != Kind::String)
        typeError("a string");
    return str;
}

Value
parse(const std::string &text)
{
    return Parser(text).run();
}

void
writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
}

} // namespace json
} // namespace javelin
