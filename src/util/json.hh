/**
 * @file
 * Minimal self-contained JSON support for the harness interchange
 * formats (scenario specs, sweep checkpoints, sweep reports).
 *
 * The parser tracks the source line of every value so schema layers can
 * report "line 12: unknown key" errors, and it keeps the raw text of
 * every numeric token so 64-bit integers (seeds, bytecode counts) round
 * trip exactly — a double alone only holds 53 bits. The writers mirror
 * the ensemble-report conventions (precision-17 doubles, NaN/inf as
 * null) so that writing a parsed value reproduces the original bytes;
 * the job engine's byte-identical resume guarantee rests on that.
 *
 * Deliberately not a general-purpose library: no comments, no
 * trailing commas, objects keep insertion order in a flat vector.
 */

#ifndef JAVELIN_UTIL_JSON_HH
#define JAVELIN_UTIL_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace javelin {
namespace json {

/** Parse failure; message already includes "line N:". */
struct ParseError : std::runtime_error
{
    int line;
    ParseError(int line_, const std::string &msg)
        : std::runtime_error("line " + std::to_string(line_) + ": " +
                             msg),
          line(line_)
    {
    }
};

/** One JSON value; a tree of these is the parse result. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    /** 1-based source line where this value's first token started. */
    int line = 0;

    bool boolean = false;
    double number = 0.0;
    /** Exact numeric token text (u64-safe round trips). */
    std::string raw;
    std::string str;
    std::vector<Value> items;
    /** Object members in insertion order (duplicates rejected). */
    std::vector<std::pair<std::string, Value>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup; nullptr when absent (objects only). */
    const Value *find(const std::string &key) const;

    /** Typed accessors; throw ParseError (with this line) on mismatch. */
    bool asBool() const;
    double asDouble() const;
    /** Integer accessors parse the raw token: exact for 64-bit. */
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    const std::string &asString() const;

  private:
    [[noreturn]] void typeError(const char *wanted) const;
};

/**
 * Parse one JSON document (the whole string must be consumed, aside
 * from trailing whitespace). Throws ParseError.
 */
Value parse(const std::string &text);

/** JSON string literal: quotes, escapes for ", \, and control chars. */
void writeString(std::ostream &os, const std::string &s);

/** JSON double: full round-trip precision (17), NaN/inf as null. */
void writeNumber(std::ostream &os, double v);

} // namespace json
} // namespace javelin

#endif // JAVELIN_UTIL_JSON_HH
