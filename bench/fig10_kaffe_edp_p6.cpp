/**
 * @file
 * Reproduces paper Fig. 10: energy-delay product for Kaffe on the P6
 * platform across heap sizes.
 *
 * Expected shape (Section VI-D): the EDP changes little when the heap
 * grows — Kaffe's incremental collector and slow JIT code leave almost
 * no heap-size-dependent component — in sharp contrast to the Jikes
 * curves of Fig. 7.
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "util/stats.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    const bool fast = std::getenv("JAVELIN_FAST") != nullptr;
    auto benches = workloads::allBenchmarks();
    if (fast)
        benches.resize(4);
    const std::vector<std::uint32_t> heaps(kP6HeapsMB.begin(),
                                           kP6HeapsMB.end());

    std::vector<SweepTask> tasks;
    for (const auto &bench : benches) {
        for (const auto heap : heaps) {
            ExperimentConfig cfg;
            cfg.vm = jvm::VmKind::Kaffe;
            cfg.collector = jvm::CollectorKind::IncrementalMS;
            cfg.heapNominalMB = heap;
            tasks.push_back({cfg, bench});
        }
    }
    SweepRunner::Config rc;
    rc.progress = consoleProgress("fig10 sweep");
    const auto outcomes = SweepRunner(rc).run(tasks);

    std::vector<std::vector<ExperimentResult>> rows;
    RunningStat flatness; // max/min EDP ratio per benchmark
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<ExperimentResult> row;
        double lo = 1e300, hi = 0;
        for (std::size_t h = 0; h < heaps.size(); ++h) {
            row.push_back(outcomes[b * heaps.size() + h].result);
            if (row.back().ok()) {
                lo = std::min(lo, row.back().edp());
                hi = std::max(hi, row.back().edp());
            }
        }
        if (hi > 0)
            flatness.add(hi / lo);
        rows.push_back(std::move(row));
    }

    std::cout << "=== Fig. 10: Kaffe EDP (mJ*s at study scale) vs heap "
                 "size, P6 ===\n\n";
    edpTable(rows, heaps).print(std::cout);
    std::cout << "\nsummary: per-benchmark max/min EDP ratio across "
                 "heaps averages "
              << flatness.mean()
              << "x  (paper: EDP changes little with heap size)\n";
    return 0;
}
