/**
 * @file
 * Reproduces paper Fig. 9: energy distribution for the Kaffe virtual
 * machine on the P6 platform.
 *
 * Expected shape (Section VI-D): JVM components are much less visible
 * than under Jikes — the garbage collector averages ~7% of energy, the
 * class loader ~1%, the JIT under 1%; Kaffe's mark-and-sweep collector
 * draws about the same power as the Jikes one.
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "util/stats.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    const bool fast = std::getenv("JAVELIN_FAST") != nullptr;
    auto benches = workloads::allBenchmarks();
    if (fast)
        benches.resize(4);

    std::vector<ExperimentResult> rows;
    RunningStat gcShare, clShare, jitShare, gcPower;

    std::vector<SweepTask> tasks;
    for (const auto &bench : benches) {
        ExperimentConfig cfg;
        cfg.vm = jvm::VmKind::Kaffe;
        cfg.collector = jvm::CollectorKind::IncrementalMS;
        cfg.heapNominalMB = 64;
        tasks.push_back({cfg, bench});
    }
    SweepRunner::Config rc;
    rc.progress = consoleProgress("fig09 sweep");
    const auto outcomes = SweepRunner(rc).run(tasks);

    for (const auto &outcome : outcomes) {
        const auto &res = outcome.result;
        rows.push_back(res);
        if (!outcome.ok())
            continue;
        gcShare.add(res.attribution.energyFraction(core::ComponentId::Gc));
        clShare.add(res.attribution.energyFraction(
            core::ComponentId::ClassLoader));
        jitShare.add(
            res.attribution.energyFraction(core::ComponentId::Jit));
        const auto &gc = res.attribution.powerOf(core::ComponentId::Gc);
        if (gc.samples > 3)
            gcPower.add(gc.avgCpuWatts());
    }

    std::cout << "=== Fig. 9: Kaffe energy distribution, P6 (64 MB "
                 "heap) ===\n\n";
    energyDecompositionTable(rows, kaffeComponents()).print(std::cout);

    std::cout << "\nsummary (paper expectations in parentheses):\n"
              << "  avg GC share " << gcShare.mean() * 100
              << "%  (~7%)\n"
              << "  avg CL share " << clShare.mean() * 100
              << "%  (~1%)\n"
              << "  avg JIT share " << jitShare.mean() * 100
              << "%  (<1%)\n"
              << "  Kaffe GC avg power " << gcPower.mean()
              << " W  (similar to the Jikes mark-sweep collector)\n";
    return 0;
}
