/**
 * @file
 * Reproduces paper Fig. 8: average and peak power per component
 * (application, GC, class loader) for all benchmarks on Jikes RVM with
 * the GenCopy collector across heap sizes.
 *
 * Expected shape (Section VI-C): the garbage collector is one of the
 * least power-hungry components; JVM components show little power
 * variation from benchmark to benchmark; for most benchmarks peak power
 * is set by the application and not a JVM service (the _209_db GC peak
 * of 17.5 W being the visible exception).
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "util/stats.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    const bool fast = std::getenv("JAVELIN_FAST") != nullptr;
    auto benches = workloads::allBenchmarks();
    if (fast)
        benches.resize(4);
    const std::vector<std::uint32_t> heaps =
        fast ? std::vector<std::uint32_t>{32, 128}
             : std::vector<std::uint32_t>{32, 64, 96, 128};

    std::vector<ExperimentResult> rows;
    RunningStat appAvg, gcAvg, clAvg;
    int appSetsPeak = 0, total = 0;

    std::vector<SweepTask> tasks;
    for (const auto &bench : benches) {
        for (const auto heap : heaps) {
            ExperimentConfig cfg;
            cfg.collector = jvm::CollectorKind::GenCopy;
            cfg.heapNominalMB = heap;
            tasks.push_back({cfg, bench});
        }
    }
    SweepRunner::Config rc;
    rc.progress = consoleProgress("fig08 sweep");
    const auto outcomes = SweepRunner(rc).run(tasks);

    for (const auto &outcome : outcomes) {
        const auto &res = outcome.result;
        rows.push_back(res);
        if (!outcome.ok())
            continue;
        const auto &app =
            res.attribution.powerOf(core::ComponentId::App);
        const auto &gc =
            res.attribution.powerOf(core::ComponentId::Gc);
        const auto &cl =
            res.attribution.powerOf(core::ComponentId::ClassLoader);
        appAvg.add(app.avgCpuWatts());
        if (gc.samples > 3)
            gcAvg.add(gc.avgCpuWatts());
        if (cl.samples > 3)
            clAvg.add(cl.avgCpuWatts());
        ++total;
        appSetsPeak +=
            app.peakCpuWatts >= res.attribution.peakCpuWatts - 1e-9;
    }

    std::cout << "=== Fig. 8: average and peak power per component, "
                 "Jikes RVM + GenCopy, P6 ===\n\n";
    powerTable(rows, {core::ComponentId::App, core::ComponentId::Gc,
                      core::ComponentId::ClassLoader})
        .print(std::cout);

    std::cout << "\nsummary (paper expectations in parentheses):\n"
              << "  avg power: App " << appAvg.mean() << " W, GC "
              << gcAvg.mean() << " W, CL " << clAvg.mean()
              << " W  (GC is the least power-hungry component)\n"
              << "  GC power spread across runs: +/-" << gcAvg.stddev()
              << " W  (little variation)\n"
              << "  application sets the peak in " << appSetsPeak << "/"
              << total << " runs  (most benchmarks)\n";
    return 0;
}
