/**
 * @file
 * Reproduces paper Fig. 11: energy decomposition for Kaffe on the Intel
 * XScale PXA255 development board, five SpecJVM98 benchmarks at -s10
 * over 12-32 MB heaps.
 *
 * Expected shape (Section VI-E): the class loader becomes the highest
 * JVM energy consumer (~18% average) thanks to Kaffe's long, CL-heavy
 * initialization against the shrunken -s10 application work; the GC and
 * JIT average ~5% each; and — unlike on the P6 — the garbage collector
 * is the most power-hungry component (~270 mW, about 7% above the
 * application) because without an L2 its tight loops keep a relatively
 * high IPC.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "util/stats.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    std::vector<ExperimentResult> rows;
    RunningStat clShare, gcShare, jitShare, gcPowerMw, appPowerMw;

    std::vector<SweepTask> tasks;
    for (const auto &bench : workloads::embeddedBenchmarks()) {
        for (const auto heap : kPxaHeapsMB) {
            ExperimentConfig cfg;
            cfg.platform = sim::PlatformKind::Pxa255;
            cfg.vm = jvm::VmKind::Kaffe;
            cfg.collector = jvm::CollectorKind::IncrementalMS;
            cfg.dataset = workloads::DatasetScale::Small;
            cfg.heapNominalMB = heap;
            tasks.push_back({cfg, bench});
        }
    }
    SweepRunner::Config rc;
    rc.progress = consoleProgress("fig11 sweep");
    const auto outcomes = SweepRunner(rc).run(tasks);

    for (const auto &outcome : outcomes) {
        const auto &res = outcome.result;
        rows.push_back(res);
        if (!outcome.ok())
            continue;
        clShare.add(res.attribution.energyFraction(
            core::ComponentId::ClassLoader));
        gcShare.add(
            res.attribution.energyFraction(core::ComponentId::Gc));
        jitShare.add(
            res.attribution.energyFraction(core::ComponentId::Jit));
        const auto &gc = res.attribution.powerOf(core::ComponentId::Gc);
        const auto &app =
            res.attribution.powerOf(core::ComponentId::App);
        if (gc.samples > 3)
            gcPowerMw.add(gc.avgCpuWatts() * 1e3);
        appPowerMw.add(app.avgCpuWatts() * 1e3);
    }

    std::cout << "=== Fig. 11: Kaffe energy decomposition, DBPXA255, "
                 "SpecJVM98 -s10 ===\n\n";
    energyDecompositionTable(rows, kaffeComponents()).print(std::cout);

    std::cout << "\nsummary (paper expectations in parentheses):\n"
              << "  avg CL share " << clShare.mean() * 100
              << "%  (~18%: the top JVM consumer)\n"
              << "  avg GC share " << gcShare.mean() * 100
              << "%  (~5%)\n"
              << "  avg JIT share " << jitShare.mean() * 100
              << "%  (~5%)\n"
              << "  GC avg power " << gcPowerMw.mean() << " mW vs app "
              << appPowerMw.mean()
              << " mW  (GC ~270 mW, ~7% above the application)\n";
    return 0;
}
