/**
 * @file
 * Co-tenancy interference study (DESIGN.md §11): several JVM tenants
 * share one P6 power/thermal budget, each serving requests of a
 * GC-bound (_202_jess) or mutator-bound (_209_db) workload under a
 * copying (SemiSpace) or generational (GenMS) collector.
 *
 * Reported per (benchmark, collector, tenant-count) shard:
 *  - energy per request and request latency (mean/p95) per tenant —
 *    the offered-load/efficiency trade of adding tenants;
 *  - GC-induced cross-tenant interference: how much of the platform's
 *    energy during one tenant's GCs is borne while other tenants'
 *    requests queue (GC time x co-tenant count);
 *  - conservation check: per-tenant joules sum bit-for-bit to the
 *    platform totals (by construction; the independently integrated
 *    model totals are printed alongside).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"

using namespace javelin;
using namespace javelin::harness;

int
main(int argc, char **argv)
{
    Scenario scenario = builtinScenario("cotenancy-interference");
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scenario-out" && i + 1 < argc) {
            std::ofstream out(argv[++i]);
            if (!out) {
                std::cerr << "cannot open " << argv[i] << "\n";
                return 1;
            }
            writeScenario(out, scenario);
            return 0;
        }
        std::cerr << "usage: fig_cotenancy_interference "
                     "[--scenario-out FILE]\n";
        return 2;
    }

    if (std::getenv("JAVELIN_FAST") != nullptr) {
        scenario.benchmarks = {"_202_jess"};
        scenario.tenantCounts = {1, 2};
    }

    const auto tasks = expandScenario(scenario);
    SweepRunner::Config rc;
    rc.progress = consoleProgress("cotenancy sweep");
    const auto outcomes = SweepRunner(rc).run(tasks);
    if (reportSweepFailures(std::cerr, tasks, outcomes) > 0)
        return 1;

    std::cout << "=== Co-tenancy interference: shared P6 budget, "
                 "Jikes RVM, Poisson arrivals ===\n\n";

    Table shardTable({"bench", "collector", "tenants", "J/req",
                      "lat.mean(us)", "lat.p95(us)", "gc", "switches",
                      "platform(J)", "model(J)"});
    Table tenantTable({"bench", "collector", "tenants", "tenant",
                       "cpu(J)", "mem(J)", "served", "J/req",
                       "p95(us)", "gc-pause(ms)"});

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const ExperimentResult &r = outcomes[i].result;
        const CoTenancyResult &ct = r.cotenancy;
        const auto &cfg = tasks[i].config;

        double jPerReq = 0.0, meanLat = 0.0, p95 = 0.0;
        std::uint64_t gcs = 0, served = 0;
        for (const auto &a : ct.tenants) {
            jPerReq += a.energyPerRequestJ * a.requestsServed;
            meanLat += a.meanLatencyUs * a.requestsServed;
            p95 = std::max(p95, a.p95LatencyUs);
            gcs += a.gcCollections;
            served += a.requestsServed;
        }
        if (served > 0) {
            jPerReq /= static_cast<double>(served);
            meanLat /= static_cast<double>(served);
        }

        shardTable.beginRow()
            .cell(tasks[i].profile.name)
            .cell(jvm::collectorName(cfg.collector))
            .cell(static_cast<std::uint64_t>(cfg.tenants))
            .cell(jPerReq, 6)
            .cell(meanLat, 1)
            .cell(p95, 1)
            .cell(gcs)
            .cell(ct.contextSwitches)
            .cell(ct.platformCpuJoules + ct.platformMemJoules, 6)
            .cell(ct.modelCpuJoules + ct.modelMemJoules, 6);

        for (std::size_t t = 0; t < ct.tenants.size(); ++t) {
            const auto &a = ct.tenants[t];
            tenantTable.beginRow()
                .cell(tasks[i].profile.name)
                .cell(jvm::collectorName(cfg.collector))
                .cell(static_cast<std::uint64_t>(cfg.tenants))
                .cell(static_cast<std::uint64_t>(t))
                .cell(a.cpuJoules, 6)
                .cell(a.memJoules, 6)
                .cell(static_cast<std::uint64_t>(a.requestsServed))
                .cell(a.energyPerRequestJ, 6)
                .cell(a.p95LatencyUs, 1)
                .cell(ticksToSeconds(a.gcPauseTicks) * 1e3, 3);
        }
    }

    shardTable.print(std::cout);
    std::cout << "\nper-tenant accounts:\n";
    tenantTable.print(std::cout);

    // GC-induced interference: time co-tenants spend stalled behind
    // another tenant's collection (GC interval x co-tenant count),
    // and the energy-per-request inflation from 1 to max tenants.
    std::cout << "\nGC-induced interference (vs the 1-tenant "
                 "baseline of the same bench/collector):\n";
    for (const auto &bench : scenario.benchmarks)
        for (const auto collector : scenario.collectors) {
            double base = -1.0, peak = -1.0;
            std::uint32_t peakTenants = 0;
            double peakGcBlockedUs = 0.0;
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                if (tasks[i].profile.name != bench ||
                    tasks[i].config.collector != collector)
                    continue;
                const auto &ct = outcomes[i].result.cotenancy;
                double jpr = 0.0;
                std::uint64_t served = 0;
                for (const auto &a : ct.tenants) {
                    jpr += a.energyPerRequestJ * a.requestsServed;
                    served += a.requestsServed;
                }
                if (served)
                    jpr /= static_cast<double>(served);
                if (tasks[i].config.tenants == 1)
                    base = jpr;
                if (tasks[i].config.tenants >= peakTenants) {
                    peak = jpr;
                    peakTenants = tasks[i].config.tenants;
                    Tick gcTicks = 0;
                    for (const auto &gi : ct.gcIntervals)
                        gcTicks += gi.end - gi.begin;
                    peakGcBlockedUs =
                        ticksToSeconds(gcTicks) * 1e6 *
                        static_cast<double>(peakTenants - 1);
                }
            }
            if (base > 0 && peak > 0)
                std::cout << "  " << bench << "/"
                          << jvm::collectorName(collector) << ": J/req x"
                          << peak / base << " at " << peakTenants
                          << " tenants; co-tenant time behind GC "
                          << peakGcBlockedUs << " us\n";
        }
    return 0;
}
