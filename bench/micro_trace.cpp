/**
 * @file
 * Micro-benchmarks for the asynchronous trace spool (DESIGN.md §10).
 *
 * BM_TraceCapture times the hot-path cost the spool adds per sample:
 * encode into the active block buffer, with sealing and file I/O
 * riding on the writer thread. items_per_second is the gate metric —
 * capture must stay cheap enough that a 40 µs-period DAQ never
 * notices it.
 *
 * BM_TraceCaptureInMemory is the push_back baseline the spool is
 * compared against, and BM_EndToEndExperimentSpooled re-runs the CI's
 * end-to-end throughput floor with both spools attached, so "spooling
 * is free at the experiment level" is a measured, regression-gated
 * claim (scripts/ci.sh, bench/BENCH_trace.baseline.json).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/trace_spool.hh"
#include "harness/experiment.hh"
#include "workloads/suite.hh"

using namespace javelin;

namespace {

core::PowerSample
synthSample(std::uint64_t i)
{
    core::PowerSample s;
    s.tick = (i + 1) * 40 * kTicksPerMicro;
    s.windowTicks = 40 * kTicksPerMicro;
    s.cpuWatts = 2.0 + static_cast<double>(i % 997) / 997.0;
    s.memWatts = 0.3 + static_cast<double>(i % 101) / 303.0;
    s.component =
        static_cast<core::ComponentId>(i % core::kNumComponents);
    return s;
}

std::string
scratchPath(const char *name)
{
    return std::string("/tmp/javelin_bench_") + name + ".jtrc";
}

void
BM_TraceCapture(benchmark::State &state)
{
    // Per-sample spool append, writer thread draining to /tmp.
    core::TraceSpool::Config cfg;
    cfg.path = scratchPath("capture");
    cfg.backend = core::TraceSpool::backendFromEnv();
    core::TraceSpool spool(cfg);
    std::uint64_t i = 0;
    for (auto _ : state)
        spool.append(synthSample(i++));
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
    state.counters["samples_per_sec"] = benchmark::Counter(
        static_cast<double>(i), benchmark::Counter::kIsRate);
    spool.close();
    std::remove(cfg.path.c_str());
}

void
BM_TraceCaptureInMemory(benchmark::State &state)
{
    // The baseline the spool competes with: unbounded-RSS push_back.
    core::PowerTrace trace;
    std::uint64_t i = 0;
    for (auto _ : state) {
        trace.push_back(synthSample(i++));
        benchmark::DoNotOptimize(trace.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
    state.counters["samples_per_sec"] = benchmark::Counter(
        static_cast<double>(i), benchmark::Counter::kIsRate);
}

void
BM_EndToEndExperimentSpooled(benchmark::State &state)
{
    // The CI end-to-end pipeline with power + perf spooling enabled:
    // same floor (>= 50M bytecodes/s) must hold with capture on.
    std::uint64_t total_bytecodes = 0;
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.dataset = workloads::DatasetScale::Small;
        cfg.heapNominalMB = 32;
        cfg.traceSpoolDir = "/tmp/javelin_bench_spooldir";
        const auto res = harness::runExperiment(
            cfg, workloads::benchmark("_202_jess"));
        benchmark::DoNotOptimize(res.run.returnValue);
        total_bytecodes += res.run.bytecodesExecuted;
    }
    state.counters["bytecodes_per_sec"] =
        benchmark::Counter(static_cast<double>(total_bytecodes),
                           benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_TraceCapture);
BENCHMARK(BM_TraceCaptureInMemory);
BENCHMARK(BM_EndToEndExperimentSpooled)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
