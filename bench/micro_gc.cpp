/**
 * @file
 * M1: collector micro-benchmarks (google-benchmark). Measures simulator
 * wall-clock throughput of allocation and collection for each collector
 * and reports the *simulated* GC cost per object as a counter — useful
 * when tuning the GC cost model (DESIGN.md §6).
 */

#include <benchmark/benchmark.h>

#include "jvm/gc/collector.hh"
#include "sim/platform.hh"
#include "util/random.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

std::vector<ClassInfo>
classes()
{
    std::vector<ClassInfo> v(1);
    v[0].id = 0;
    v[0].name = "Node";
    v[0].refFields = 2;
    v[0].scalarFields = 4;
    return v;
}

class NullHost : public GcHost
{
  public:
    void
    forEachRoot(const std::function<void(Address &)> &fn) override
    {
        for (Address &r : roots)
            fn(r);
    }
    void gcBegin(bool) override {}
    void gcEnd(bool) override {}
    std::vector<Address> roots;
};

CollectorKind
kindOf(int i)
{
    switch (i) {
      case 0: return CollectorKind::SemiSpace;
      case 1: return CollectorKind::MarkSweep;
      case 2: return CollectorKind::GenCopy;
      case 3: return CollectorKind::GenMS;
      default: return CollectorKind::IncrementalMS;
    }
}

void
BM_AllocateChurn(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Heap heap(4 * kMiB);
    auto cls = classes();
    ObjectModel om(heap, system.cpu(), cls);
    NullHost host;
    auto collector = makeCollector(kindOf(static_cast<int>(state.range(0))),
                                   GcEnv{heap, om, system, host});
    host.roots.assign(16, kNull);
    Rng rng(7);

    const std::uint32_t bytes = om.objectBytes(cls[0], 0);
    std::uint64_t allocated = 0;
    for (auto _ : state) {
        const Address a = collector->allocate(bytes);
        if (a == kNull) {
            state.SkipWithError("unexpected OOM");
            break;
        }
        om.initObject(a, cls[0], bytes, 0);
        collector->postInit(a);
        host.roots[rng.uniformInt(16)] = a; // bounded live set
        ++allocated;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(allocated));
    state.counters["gc_count"] = static_cast<double>(
        collector->stats().collections);
    state.counters["sim_us_per_gc"] =
        collector->stats().collections
            ? ticksToSeconds(collector->stats().pauseTicks) * 1e6 /
                  static_cast<double>(collector->stats().collections)
            : 0.0;
}

void
BM_FullCollection(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Heap heap(8 * kMiB);
    auto cls = classes();
    ObjectModel om(heap, system.cpu(), cls);
    NullHost host;
    auto collector = makeCollector(kindOf(static_cast<int>(state.range(0))),
                                   GcEnv{heap, om, system, host});

    // Build a live set of linked nodes.
    const std::uint32_t bytes = om.objectBytes(cls[0], 0);
    Rng rng(11);
    host.roots.assign(64, kNull);
    for (int i = 0; i < 20000; ++i) {
        const Address a = collector->allocate(bytes);
        om.initObject(a, cls[0], bytes, 0);
        collector->postInit(a);
        const Address target = host.roots[rng.uniformInt(64)];
        if (target != kNull)
            om.storeRef(a, 0, target);
        host.roots[rng.uniformInt(64)] = a;
    }

    for (auto _ : state)
        collector->collect(true);
    state.counters["sim_ms_per_gc"] =
        ticksToSeconds(collector->stats().pauseTicks) * 1e3 /
        static_cast<double>(
            std::max<std::uint64_t>(1, collector->stats().collections));
}

} // namespace

BENCHMARK(BM_AllocateChurn)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullCollection)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
