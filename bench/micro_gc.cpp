/**
 * @file
 * M1: collector micro-benchmarks (google-benchmark). Measures simulator
 * wall-clock throughput of allocation and collection for each collector
 * and reports the *simulated* GC cost per object as a counter — useful
 * when tuning the GC cost model (DESIGN.md §6).
 */

#include <benchmark/benchmark.h>

#include "jvm/gc/collector.hh"
#include "sim/platform.hh"
#include "util/random.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

std::vector<ClassInfo>
classes()
{
    std::vector<ClassInfo> v(1);
    v[0].id = 0;
    v[0].name = "Node";
    v[0].refFields = 2;
    v[0].scalarFields = 4;
    return v;
}

class NullHost : public GcHost
{
  public:
    void
    forEachRoot(const std::function<void(Address &)> &fn) override
    {
        for (Address &r : roots)
            fn(r);
    }
    void gcBegin(bool) override {}
    void gcEnd(bool) override {}
    std::vector<Address> roots;
};

CollectorKind
kindOf(int i)
{
    switch (i) {
      case 0: return CollectorKind::SemiSpace;
      case 1: return CollectorKind::MarkSweep;
      case 2: return CollectorKind::GenCopy;
      case 3: return CollectorKind::GenMS;
      default: return CollectorKind::IncrementalMS;
    }
}

void
BM_AllocateChurn(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Heap heap(4 * kMiB);
    auto cls = classes();
    ObjectModel om(heap, system.cpu(), cls);
    NullHost host;
    auto collector = makeCollector(kindOf(static_cast<int>(state.range(0))),
                                   GcEnv{heap, om, system, host});
    host.roots.assign(16, kNull);
    Rng rng(7);

    const std::uint32_t bytes = om.objectBytes(cls[0], 0);
    std::uint64_t allocated = 0;
    for (auto _ : state) {
        const Address a = collector->allocate(bytes);
        if (a == kNull) {
            state.SkipWithError("unexpected OOM");
            break;
        }
        om.initObject(a, cls[0], bytes, 0);
        collector->postInit(a);
        host.roots[rng.uniformInt(16)] = a; // bounded live set
        ++allocated;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(allocated));
    state.counters["gc_count"] = static_cast<double>(
        collector->stats().collections);
    state.counters["sim_us_per_gc"] =
        collector->stats().collections
            ? ticksToSeconds(collector->stats().pauseTicks) * 1e6 /
                  static_cast<double>(collector->stats().collections)
            : 0.0;
}

void
BM_FullCollection(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Heap heap(8 * kMiB);
    auto cls = classes();
    ObjectModel om(heap, system.cpu(), cls);
    NullHost host;
    auto collector = makeCollector(kindOf(static_cast<int>(state.range(0))),
                                   GcEnv{heap, om, system, host});

    // Build a live set of linked nodes.
    const std::uint32_t bytes = om.objectBytes(cls[0], 0);
    Rng rng(11);
    host.roots.assign(64, kNull);
    for (int i = 0; i < 20000; ++i) {
        const Address a = collector->allocate(bytes);
        om.initObject(a, cls[0], bytes, 0);
        collector->postInit(a);
        const Address target = host.roots[rng.uniformInt(64)];
        if (target != kNull)
            om.storeRef(a, 0, target);
        host.roots[rng.uniformInt(64)] = a;
    }

    for (auto _ : state)
        collector->collect(true);
    state.counters["sim_ms_per_gc"] =
        ticksToSeconds(collector->stats().pauseTicks) * 1e3 /
        static_cast<double>(
            std::max<std::uint64_t>(1, collector->stats().collections));
}

/**
 * Mark-phase throughput: a fully-live graph (deep list spine plus wide
 * ref arrays) under MarkSweep, so each collect(true) is dominated by
 * Marker::drain edge traversal. Nothing dies, so the sweep only clears
 * mark bits.
 */
void
BM_GcMark(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Heap heap(8 * kMiB);
    auto cls = classes();
    ClassInfo arr;
    arr.id = 1;
    arr.name = "Object[]";
    arr.isRefArray = true;
    cls.push_back(arr);
    ObjectModel om(heap, system.cpu(), cls);
    NullHost host;
    auto collector =
        makeCollector(CollectorKind::MarkSweep,
                      GcEnv{heap, om, system, host});

    const std::uint32_t nodeBytes = om.objectBytes(cls[0], 0);
    constexpr std::uint32_t kArrayLen = 32;
    const std::uint32_t arrBytes = om.objectBytes(cls[1], kArrayLen);
    host.roots.assign(1, kNull);
    std::uint64_t liveObjects = 0;
    for (int i = 0; i < 1500; ++i) {
        const Address a = collector->allocate(arrBytes);
        om.initObject(a, cls[1], arrBytes, kArrayLen);
        for (std::uint32_t s = 0; s < kArrayLen; ++s) {
            const Address n = collector->allocate(nodeBytes);
            om.initObject(n, cls[0], nodeBytes, 0);
            om.storeRef(n, 0, host.roots[0]); // spine link
            om.storeRef(a, s, n);
            ++liveObjects;
        }
        om.storeRef(a, kArrayLen - 1, host.roots[0]);
        host.roots[0] = a;
        ++liveObjects;
    }

    for (auto _ : state)
        collector->collect(true);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * liveObjects));
    state.counters["objects_marked"] =
        static_cast<double>(collector->stats().objectsMarked);
}

/**
 * Evacuation throughput: a live linked graph under SemiSpace, so each
 * collect(true) copies the whole live set through
 * Evacuator::processSlot/scanObject (Cheney drain).
 */
void
BM_GcEvacuate(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Heap heap(8 * kMiB);
    auto cls = classes();
    ObjectModel om(heap, system.cpu(), cls);
    NullHost host;
    auto collector =
        makeCollector(CollectorKind::SemiSpace,
                      GcEnv{heap, om, system, host});

    const std::uint32_t bytes = om.objectBytes(cls[0], 0);
    Rng rng(13);
    host.roots.assign(64, kNull);
    constexpr std::uint64_t kLive = 20000;
    for (std::uint64_t i = 0; i < kLive; ++i) {
        const Address a = collector->allocate(bytes);
        om.initObject(a, cls[0], bytes, 0);
        const Address t0 = host.roots[rng.uniformInt(64)];
        if (t0 != kNull)
            om.storeRef(a, 0, t0);
        const Address t1 = host.roots[rng.uniformInt(64)];
        if (t1 != kNull)
            om.storeRef(a, 1, t1);
        host.roots[rng.uniformInt(64)] = a;
    }

    for (auto _ : state)
        collector->collect(true);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        collector->stats().objectsCopied));
    state.counters["objects_copied"] =
        static_cast<double>(collector->stats().objectsCopied);
}

/**
 * Sweep throughput: scalar-only garbage under MarkSweep (no edges, so
 * marking touches just the roots) — each iteration refills the free
 * lists with short-lived cells and collect(true) sweeps every block.
 */
void
BM_GcSweep(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Heap heap(8 * kMiB);
    std::vector<ClassInfo> cls(1);
    cls[0].id = 0;
    cls[0].name = "Leaf";
    cls[0].refFields = 0;
    cls[0].scalarFields = 6; // 64-byte cells
    ObjectModel om(heap, system.cpu(), cls);
    NullHost host;
    auto collector =
        makeCollector(CollectorKind::MarkSweep,
                      GcEnv{heap, om, system, host});

    const std::uint32_t bytes = om.objectBytes(cls[0], 0);
    constexpr int kGarbage = 20000;
    std::uint64_t cells = 0;
    for (auto _ : state) {
        for (int i = 0; i < kGarbage; ++i) {
            const Address a = collector->allocate(bytes);
            if (a == kNull) {
                state.SkipWithError("unexpected OOM");
                return;
            }
            om.initObject(a, cls[0], bytes, 0);
        }
        collector->collect(true);
        cells += kGarbage;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cells));
    state.counters["bytes_freed"] =
        static_cast<double>(collector->stats().bytesFreed);
}

} // namespace

BENCHMARK(BM_AllocateChurn)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullCollection)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GcMark)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GcEvacuate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GcSweep)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
