/**
 * @file
 * M2: simulator micro-benchmarks (google-benchmark): raw host-side
 * throughput of the cache model, the CPU timing model, the power
 * integrator and a full end-to-end experiment (bytecodes per second of
 * host time), so regressions in simulation speed are visible.
 */

#include <benchmark/benchmark.h>

#include "harness/experiment.hh"
#include "jvm/jvm.hh"
#include "jvm/method_builder.hh"
#include "sim/platform.hh"
#include "util/random.hh"

using namespace javelin;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    sim::Cache cache({"l1", 32 * kKiB, 8, 64});
    Rng rng(1);
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const sim::Address a = rng.uniformInt(1 << state.range(0));
        hits += cache.access(a, false).hit;
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations());
}

void
BM_CpuExecute(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    for (auto _ : state)
        system.cpu().execute(8, 0x1000, 32);
    state.SetItemsProcessed(state.iterations() * 8);
}

void
BM_CpuLoadStore(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    Rng rng(3);
    for (auto _ : state) {
        system.cpu().load(rng.uniformInt(1 << 22));
        system.cpu().store(rng.uniformInt(1 << 22));
    }
    state.SetItemsProcessed(state.iterations() * 2);
}

void
BM_PowerUpdate(benchmark::State &state)
{
    sim::System system(sim::p6Spec());
    for (auto _ : state) {
        system.cpu().execute(100, 0x1000, 64);
        system.syncPower();
    }
}

void
BM_InterpreterDispatch(benchmark::State &state)
{
    // ALU/branch-dense loop run entirely under the interpreted tier:
    // no heap traffic, no GC, no compilation, so host time is dominated
    // by the dispatch + cost-table hot path of Interpreter::run. Pins
    // the threaded-dispatch rewrite's throughput independently of the
    // end-to-end pipeline.
    jvm::Program p;
    p.name = "dispatch";
    jvm::ClassInfo cls;
    cls.id = 0;
    cls.name = "Main";
    p.classes.push_back(cls);
    jvm::MethodBuilder mb(p, "main", 0);
    const auto acc = mb.constant(0);
    const auto one = mb.constant(1);
    const auto tmp = mb.constant(3);
    const auto n = mb.constant(50000);
    const auto i = mb.constant(0);
    const auto top = mb.here();
    mb.emit(jvm::Op::IAdd, acc, acc, one);
    mb.emit(jvm::Op::IXor, tmp, acc, i);
    mb.emit(jvm::Op::ISub, acc, acc, tmp);
    mb.emit(jvm::Op::IAdd, i, i, one);
    const auto br = mb.emit(jvm::Op::IfLt, i, n, 0);
    mb.patchTarget(br, top);
    p.entry = mb.finishHalt();
    p.layout();

    std::uint64_t total_bytecodes = 0;
    for (auto _ : state) {
        sim::System system(sim::p6Spec());
        jvm::JvmConfig cfg;
        cfg.interp.compileOnInvoke = jvm::Tier::Interpreted;
        cfg.adaptiveOptimization = false;
        jvm::Jvm vm(system, p, cfg);
        const auto r = vm.run();
        benchmark::DoNotOptimize(r.returnValue);
        total_bytecodes += r.bytecodesExecuted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total_bytecodes));
    state.counters["bytecodes_per_sec"] =
        benchmark::Counter(static_cast<double>(total_bytecodes),
                           benchmark::Counter::kIsRate);
}

void
BM_EndToEndExperiment(benchmark::State &state)
{
    // Full pipeline: build + run one small benchmark with measurement.
    std::uint64_t total_bytecodes = 0;
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.dataset = workloads::DatasetScale::Small;
        cfg.heapNominalMB = 32;
        const auto res = harness::runExperiment(
            cfg, workloads::benchmark("_202_jess"));
        benchmark::DoNotOptimize(res.run.returnValue);
        total_bytecodes += res.run.bytecodesExecuted;
        state.counters["bytecodes"] =
            static_cast<double>(res.run.bytecodesExecuted);
    }
    // Host-side simulation throughput: the perf-trajectory metric that
    // scripts/ci.sh compares against the committed BENCH_sim.json.
    state.counters["bytecodes_per_sec"] =
        benchmark::Counter(static_cast<double>(total_bytecodes),
                           benchmark::Counter::kIsRate);
}

void
BM_EndToEndCallHeavy(benchmark::State &state)
{
    // Call-dominated pipeline: the synthetic call_heavy profile is
    // jess-shaped but with most of the compute replaced by a deep
    // helper chain, per-iteration recursion and six cold calls through
    // the dispatch tree, so frames push and pop every handful of
    // bytecodes. This is the benchmark the trace executor's inline
    // Call/Ret path (DESIGN.md §5g) is gated on: before it, every call
    // exited runTraceFast back to generic dispatch.
    std::uint64_t total_bytecodes = 0;
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.dataset = workloads::DatasetScale::Small;
        cfg.heapNominalMB = 32;
        const auto res = harness::runExperiment(
            cfg, workloads::benchmark("call_heavy"));
        benchmark::DoNotOptimize(res.run.returnValue);
        total_bytecodes += res.run.bytecodesExecuted;
        state.counters["gc_count"] =
            static_cast<double>(res.run.gc.collections);
        state.counters["bytecodes"] =
            static_cast<double>(res.run.bytecodesExecuted);
    }
    state.counters["bytecodes_per_sec"] =
        benchmark::Counter(static_cast<double>(total_bytecodes),
                           benchmark::Counter::kIsRate);
}

void
BM_EndToEndGcHeavy(benchmark::State &state)
{
    // GC-dominated pipeline: pmd's big live set (14 MB nominal) under
    // SemiSpace at the tightest paper heap (32 MB nominal, 2 MB
    // scaled; each semispace ~1 MB over a ~0.9 MB live graph) forces a
    // full-heap copying collection every few hundred KB of allocation,
    // so host time concentrates in the GC fast paths (marker/evacuator
    // drain, copy, sweep). Full dataset keeps the live set
    // paper-proportioned.
    // The bytecodes counter guards against silent OOM truncation: a
    // config that runs out of heap finishes early with far fewer
    // bytecodes and would otherwise look "faster".
    std::uint64_t total_bytecodes = 0;
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.dataset = workloads::DatasetScale::Full;
        cfg.heapNominalMB = 32;
        cfg.collector = jvm::CollectorKind::SemiSpace;
        const auto res = harness::runExperiment(
            cfg, workloads::benchmark("pmd"));
        benchmark::DoNotOptimize(res.run.returnValue);
        total_bytecodes += res.run.bytecodesExecuted;
        state.counters["gc_count"] =
            static_cast<double>(res.run.gc.collections);
        state.counters["bytecodes"] =
            static_cast<double>(res.run.bytecodesExecuted);
    }
    state.counters["bytecodes_per_sec"] =
        benchmark::Counter(static_cast<double>(total_bytecodes),
                           benchmark::Counter::kIsRate);
}

void
BM_EndToEndMutatorHeavy(benchmark::State &state)
{
    // Mutator-dominated pipeline: _201_compress is the suite's
    // compute-dense workload (tight ALU/array kernels, low allocation
    // rate), and a generous heap (64 MB nominal) keeps collections to a
    // handful, so host time concentrates in the interpreter execute
    // path — the trace executor, the folded segment charges and the
    // per-tier cost tables (DESIGN.md §5f). This is the benchmark the
    // execute-batching fast path is gated on; the gc_count counter
    // makes an accidental drift into GC-bound territory visible.
    std::uint64_t total_bytecodes = 0;
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.dataset = workloads::DatasetScale::Small;
        cfg.heapNominalMB = 64;
        const auto res = harness::runExperiment(
            cfg, workloads::benchmark("_201_compress"));
        benchmark::DoNotOptimize(res.run.returnValue);
        total_bytecodes += res.run.bytecodesExecuted;
        state.counters["gc_count"] =
            static_cast<double>(res.run.gc.collections);
        state.counters["bytecodes"] =
            static_cast<double>(res.run.bytecodesExecuted);
    }
    state.counters["bytecodes_per_sec"] =
        benchmark::Counter(static_cast<double>(total_bytecodes),
                           benchmark::Counter::kIsRate);
}

void
BM_EndToEndMultiTenant(benchmark::State &state)
{
    // Co-tenancy pipeline (DESIGN.md §11): two tenants interleaved at
    // quantum granularity on one platform, each serving Poisson
    // request traffic. Exercises the slice scheduler, the shared-port
    // per-tenant attribution and the arrival machinery on top of the
    // classic stack; the context_switches counter makes scheduler-
    // cadence drift visible alongside host throughput.
    std::uint64_t total_bytecodes = 0;
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.dataset = workloads::DatasetScale::Small;
        cfg.heapNominalMB = 32;
        cfg.tenants = 2;
        cfg.requestsPerTenant = 12;
        cfg.requestRateHz = 3000.0;
        const auto res = harness::runExperiment(
            cfg, workloads::benchmark("_202_jess"));
        benchmark::DoNotOptimize(res.cotenancy.platformCpuJoules);
        total_bytecodes += res.run.bytecodesExecuted;
        state.counters["context_switches"] =
            static_cast<double>(res.cotenancy.contextSwitches);
        state.counters["bytecodes"] =
            static_cast<double>(res.run.bytecodesExecuted);
    }
    state.counters["bytecodes_per_sec"] =
        benchmark::Counter(static_cast<double>(total_bytecodes),
                           benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_CacheAccess)->Arg(14)->Arg(18)->Arg(24);
BENCHMARK(BM_CpuExecute);
BENCHMARK(BM_CpuLoadStore);
BENCHMARK(BM_PowerUpdate);
BENCHMARK(BM_InterpreterDispatch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEndCallHeavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEndGcHeavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEndMutatorHeavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEndMultiTenant)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
