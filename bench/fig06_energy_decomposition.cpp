/**
 * @file
 * Reproduces paper Fig. 6: per-component energy decomposition (opt
 * compiler, base compiler, class loader, GC, application) for all 16
 * benchmarks under the Jikes RVM with the SemiSpace collector.
 *
 * The paper's headline numbers: up to 60% of total energy goes to JVM
 * components (_213_javac at 32 MB); the garbage collector averages 37%
 * for SpecJVM98 at 32 MB falling to 10% at 128 MB; DaCapo averages 32%
 * at 48 MB falling to 11% at 128 MB.
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "util/stats.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    const bool fast = std::getenv("JAVELIN_FAST") != nullptr;

    std::vector<ExperimentResult> rows;
    RunningStat specGcSmall, specGcBig, dacapoGcSmall, dacapoGcBig;
    double maxJvm = 0;
    std::string maxJvmAt;

    auto benches = workloads::allBenchmarks();
    if (fast)
        benches.resize(4);

    std::vector<SweepTask> tasks;
    for (const auto &bench : benches) {
        // DaCapo live sets do not fit a 32 MB copying heap (Section V):
        // their small-heap column is 48 MB, as in the paper.
        const std::uint32_t smallHeap =
            bench.suite == "DaCapo" ? 48 : 32;
        for (const std::uint32_t heap : {smallHeap, 128u}) {
            ExperimentConfig cfg;
            cfg.vm = jvm::VmKind::Jikes;
            cfg.collector = jvm::CollectorKind::SemiSpace;
            cfg.heapNominalMB = heap;
            tasks.push_back({cfg, bench});
        }
    }
    SweepRunner::Config rc;
    rc.progress = consoleProgress("fig06 sweep");
    const auto outcomes = SweepRunner(rc).run(tasks);

    for (const auto &outcome : outcomes) {
        const auto &res = outcome.result;
        const auto &bench = workloads::benchmark(res.benchmark);
        const std::uint32_t heap = res.config.heapNominalMB;
        rows.push_back(res);
        if (!outcome.ok())
            continue;
        const double gc =
            res.attribution.energyFraction(core::ComponentId::Gc);
        const double jvm = res.attribution.jvmEnergyFraction();
        if (jvm > maxJvm) {
            maxJvm = jvm;
            maxJvmAt = bench.name + "@" + std::to_string(heap);
        }
        if (bench.suite == "SpecJVM98")
            (heap == 32 ? specGcSmall : specGcBig).add(gc);
        if (bench.suite == "DaCapo")
            (heap == 48 ? dacapoGcSmall : dacapoGcBig).add(gc);
    }

    std::cout << "=== Fig. 6: energy decomposition, Jikes RVM + "
                 "SemiSpace, P6 ===\n\n";
    energyDecompositionTable(rows, jikesComponents()).print(std::cout);

    std::cout << "\nsummary (paper expectations in parentheses):\n";
    std::cout << "  max JVM energy share: " << maxJvm * 100 << "% at "
              << maxJvmAt << "  (up to ~60% for _213_javac@32MB)\n";
    std::cout << "  SpecJVM98 avg GC share: "
              << specGcSmall.mean() * 100 << "% @32MB -> "
              << specGcBig.mean() * 100 << "% @128MB  (37% -> 10%)\n";
    std::cout << "  DaCapo avg GC share: " << dacapoGcSmall.mean() * 100
              << "% @48MB -> " << dacapoGcBig.mean() * 100
              << "% @128MB  (32% -> 11%)\n";
    return 0;
}
