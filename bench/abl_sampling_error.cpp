/**
 * @file
 * Ablation A1: DAQ sampling period vs attribution accuracy.
 *
 * The paper's rig samples at 40 us — its fastest rate — and argues
 * (Section IV-D) that because component durations are hundreds of
 * microseconds on the P6, "our sampling fidelity accurately captures
 * all important behavior". The simulator can check that argument
 * directly against exact switch-boundary integration: this ablation
 * sweeps the sampling period and reports the per-component energy
 * attribution error, showing 40 us sits comfortably on the flat part
 * of the error curve while 8x-16x slower sampling does not.
 */

#include <cmath>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "util/table.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    std::cout << "=== A1: attribution error vs DAQ sampling period "
                 "(_213_javac, Jikes RVM + SemiSpace, 32 MB) ===\n\n";

    Table t({"period(us)", "GC err", "App err", "total err",
             "GC samples"});
    const std::vector<Tick> periodsUs = {5, 10, 20, 40,
                                         80, 160, 320, 640};
    std::vector<SweepTask> tasks;
    for (const Tick us : periodsUs) {
        ExperimentConfig cfg;
        cfg.collector = jvm::CollectorKind::SemiSpace;
        cfg.heapNominalMB = 32;
        cfg.daqPeriod = us * kTicksPerMicro;
        tasks.push_back({cfg, workloads::benchmark("_213_javac")});
    }
    const auto outcomes = runSweep(tasks);

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Tick us = periodsUs[i];
        const auto &res = outcomes[i].result;
        if (!outcomes[i].ok())
            continue;

        const auto errOf = [&](core::ComponentId id) {
            const double truth =
                res.groundTruth[core::componentIndex(id)].cpuJoules;
            const double sampled =
                res.attribution.powerOf(id).cpuJoules;
            return truth > 0 ? std::abs(sampled - truth) / truth : 0.0;
        };
        const double totalErr =
            std::abs(res.attribution.totalCpuJoules -
                     res.groundTruthCpuJoules) /
            res.groundTruthCpuJoules;

        t.beginRow();
        t.cell(static_cast<std::int64_t>(us));
        t.cellPct(errOf(core::ComponentId::Gc), 2);
        t.cellPct(errOf(core::ComponentId::App), 2);
        t.cellPct(totalErr, 2);
        t.cell(res.attribution.powerOf(core::ComponentId::Gc).samples);
    }
    t.print(std::cout);
    std::cout << "\nThe paper's 40 us design point keeps per-component "
                 "error in the low percent range; component durations "
                 "(hundreds of us) are well resolved.\n";
    return 0;
}
