/**
 * @file
 * Ablation A1: the measurement infrastructure, measured.
 *
 * Part A — DAQ sampling period vs attribution accuracy. The paper's
 * rig samples at 40 us — its fastest rate — and argues (Section IV-D)
 * that because component durations are hundreds of microseconds on the
 * P6, "our sampling fidelity accurately captures all important
 * behavior". The simulator can check that argument directly against
 * exact switch-boundary integration: this ablation sweeps the sampling
 * period and reports the per-component energy attribution error,
 * showing 40 us sits comfortably on the flat part of the error curve
 * while 8x-16x slower sampling does not.
 *
 * Part B — HPM sampler self-perturbation vs period. The DAQ is an
 * external box, but the HPM counters are read by an OS-timer ISR *on
 * the measured CPU*: the sampler spends the machine's own energy to
 * measure it. Each period runs a paired seed ensemble — ISR cost
 * charged vs free — and reports the relative shift of the model-exact
 * total energy with a percentile-bootstrap CI over the ensemble
 * (util/bootstrap.hh), deterministic for the fixed seed list. Two
 * columns separate two different effects: with adaptive optimization
 * *off* the ISR's direct cost is the only difference between the
 * paired runs, so the perturbation is the clean energy price of
 * sampling; with Jikes' timer-sampled adaptive optimization *on*, the
 * ISR shifts which method each sample-tick catches, the optimizer
 * makes different compilation decisions, and the indirect drift can
 * exceed the direct cost by an order of magnitude — the classic
 * observer effect of sample-driven JITs.
 *
 * Part C — component-ID port writes, the paper's other self-inflicted
 * cost (Section IV-C charges an I/O store per component switch), with
 * the same paired-ensemble CI treatment.
 */

#include <cmath>
#include <sstream>
#include <iostream>

#include "harness/ensemble.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

/**
 * Relative perturbation samples between two ensembles that ran the
 * same cell and seed list: (variant_i - reference_i) / reference_i,
 * paired per seed. Pairing requires both ensembles to have completed
 * every member.
 */
std::vector<double>
pairedPerturbation(const EnsembleCellResult &variant,
                   const EnsembleCellResult &reference,
                   const std::string &metric)
{
    const auto *v = variant.metric(metric);
    const auto *r = reference.metric(metric);
    JAVELIN_ASSERT(v && r && variant.failures == 0 &&
                       reference.failures == 0 &&
                       v->samples.size() == r->samples.size(),
                   "perturbation pairing needs complete ensembles");
    std::vector<double> rel(v->samples.size());
    for (std::size_t i = 0; i < rel.size(); ++i)
        rel[i] = (v->samples[i] - r->samples[i]) / r->samples[i];
    return rel;
}

/** Paired dE/E with a bootstrap CI, from the model-exact total. */
BootstrapCi
perturbationCi(const EnsembleCellResult &variant,
               const EnsembleCellResult &reference,
               const EnsembleConfig &ecfg, std::uint64_t seed)
{
    const auto rel =
        pairedPerturbation(variant, reference, "gt_total_joules");
    return bootstrapMeanCi(rel, ecfg.resamples, ecfg.confidence, seed);
}

void
perturbationStudy()
{
    std::cout << "\n=== A1 part B: HPM sampler self-perturbation vs "
                 "period (_213_javac small, Jikes RVM + SemiSpace, "
                 "8-seed ensemble, 95% bootstrap CI on the model-exact "
                 "total energy) ===\n\n";

    // 250 cycles per timer ISR: a PMU read plus handler entry/exit,
    // charged ahead of the counter snapshot (core::HpmSampler).
    constexpr double kIsrCostCycles = 250.0;
    const std::vector<Tick> hpmPeriodsUs = {40, 100, 250, 1000};

    EnsembleConfig ecfg;
    ecfg.senseNoiseVoltsRms = 0.0; // isolate the model perturbation
    ecfg.progress = consoleProgress("A1.B ensembles");

    // Four cells per period: {ISR free, ISR charged} x {adaptive
    // optimization off, on}. Differencing within each adaptive setting
    // separates the sampler's direct energy price from the indirect
    // drift it induces in the timer-sampled optimizer.
    std::vector<SweepTask> cells;
    const auto &profile = workloads::benchmark("_213_javac");
    for (const Tick us : hpmPeriodsUs) {
        for (const bool adaptive : {false, true}) {
            for (const bool charged : {false, true}) {
                ExperimentConfig cfg;
                cfg.collector = jvm::CollectorKind::SemiSpace;
                cfg.heapNominalMB = 32;
                cfg.dataset = workloads::DatasetScale::Small;
                cfg.hpmPeriod = us * kTicksPerMicro;
                cfg.hpmIsrCostCycles = charged ? kIsrCostCycles : 0.0;
                cfg.adaptiveOptimization = adaptive;
                cells.push_back({cfg, profile});
            }
        }
    }
    // Part C cells ride in the same fan-out: port-write charging
    // on/off at the default sampling rates (adaptive opt off, so the
    // differenced pairs isolate the port stores themselves).
    for (const bool charged : {false, true}) {
        ExperimentConfig cfg;
        cfg.collector = jvm::CollectorKind::SemiSpace;
        cfg.heapNominalMB = 32;
        cfg.dataset = workloads::DatasetScale::Small;
        cfg.adaptiveOptimization = false;
        cfg.chargePortWrites = charged;
        cells.push_back({cfg, profile});
    }

    const auto results = EnsembleRunner(ecfg).run(cells);

    Table t({"period(us)", "direct dE/E", "ci", "with JIT dE/E", "ci",
             "signif"});
    const auto ciCell = [](const BootstrapCi &ci) {
        std::ostringstream os;
        os.precision(3);
        os << "[" << 100.0 * ci.lo << "%, " << 100.0 * ci.hi << "%]";
        return os.str();
    };
    for (std::size_t p = 0; p < hpmPeriodsUs.size(); ++p) {
        const auto *base = &results[4 * p];
        const BootstrapCi direct =
            perturbationCi(base[1], base[0], ecfg, 0xab1a + 2 * p);
        const BootstrapCi jit =
            perturbationCi(base[3], base[2], ecfg, 0xab1b + 2 * p);
        // Unpaired rank test on the realistic (adaptive on) energies:
        // does the perturbation rise above ensemble noise at all?
        const double pValue =
            mannWhitneyP(base[3].metric("gt_total_joules")->samples,
                         base[2].metric("gt_total_joules")->samples);
        t.beginRow();
        t.cell(static_cast<std::int64_t>(hpmPeriodsUs[p]));
        t.cellPct(direct.point, 3);
        t.cell(ciCell(direct));
        t.cellPct(jit.point, 3);
        t.cell(ciCell(jit));
        t.cell(pValue < 0.05 ? "yes" : "no");
    }
    t.print(std::cout);

    const auto *port = &results[4 * hpmPeriodsUs.size()];
    const BootstrapCi portCi =
        perturbationCi(port[1], port[0], ecfg, 0xab1aff);
    std::cout << "\nPart C: component-ID port writes (2 cycles per "
                 "switch write): dE/E = "
              << 100.0 * portCi.point << "%  95% CI ["
              << 100.0 * portCi.lo << "%, " << 100.0 * portCi.hi
              << "%]\n";
    std::cout << "\nThe direct ISR cost scales inversely with the "
                 "period: visible at DAQ-class rates (40 us), "
                 "negligible at the 1 ms OS-timer rate the paper's HPM "
                 "path uses. With the timer-sampled optimizer enabled "
                 "the same ISR also shifts which methods get compiled, "
                 "and that observer effect dwarfs the direct cost.\n";
}

} // namespace

int
main()
{
    std::cout << "=== A1: attribution error vs DAQ sampling period "
                 "(_213_javac, Jikes RVM + SemiSpace, 32 MB) ===\n\n";

    Table t({"period(us)", "GC err", "App err", "total err",
             "GC samples"});
    const std::vector<Tick> periodsUs = {5, 10, 20, 40,
                                         80, 160, 320, 640};
    std::vector<SweepTask> tasks;
    for (const Tick us : periodsUs) {
        ExperimentConfig cfg;
        cfg.collector = jvm::CollectorKind::SemiSpace;
        cfg.heapNominalMB = 32;
        cfg.daqPeriod = us * kTicksPerMicro;
        tasks.push_back({cfg, workloads::benchmark("_213_javac")});
    }
    const auto outcomes = runSweep(tasks);

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Tick us = periodsUs[i];
        const auto &res = outcomes[i].result;
        if (!outcomes[i].ok())
            continue;

        const auto errOf = [&](core::ComponentId id) {
            const double truth =
                res.groundTruth[core::componentIndex(id)].cpuJoules;
            const double sampled =
                res.attribution.powerOf(id).cpuJoules;
            return truth > 0 ? std::abs(sampled - truth) / truth : 0.0;
        };
        const double totalErr =
            std::abs(res.attribution.totalCpuJoules -
                     res.groundTruthCpuJoules) /
            res.groundTruthCpuJoules;

        t.beginRow();
        t.cell(static_cast<std::int64_t>(us));
        t.cellPct(errOf(core::ComponentId::Gc), 2);
        t.cellPct(errOf(core::ComponentId::App), 2);
        t.cellPct(totalErr, 2);
        t.cell(res.attribution.powerOf(core::ComponentId::Gc).samples);
    }
    t.print(std::cout);
    std::cout << "\nThe paper's 40 us design point keeps per-component "
                 "error in the low percent range; component durations "
                 "(hundreds of us) are well resolved.\n";

    perturbationStudy();
    return 0;
}
