/**
 * @file
 * Reproduces paper Fig. 7: total-benchmark energy-delay product as a
 * function of heap size (32-128 MB) for the four Jikes RVM collectors
 * over all 16 benchmarks.
 *
 * Expected shape (Section VI-B): generational collectors win at small
 * heaps (GenMS improves on SemiSpace by up to 70% for _213_javac at
 * 32 MB); non-generational collectors close the gap as the heap grows;
 * _209_db is the exception where SemiSpace overtakes GenCopy at 128 MB
 * thanks to mutator locality; SemiSpace sees steep EDP drops from 32 to
 * 48 MB (56%/50%/27% for javac/mtrt/euler) where GenCopy barely moves.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/energy_accounting.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"

using namespace javelin;
using namespace javelin::harness;

int
main(int argc, char **argv)
{
    // The sweep is data, not code: the builtin "fig07-edp" scenario is
    // the matrix, --scenario-out exports it for javelin-sweep (the
    // committed copy is tests/fixtures/fig07_edp.scenario.json).
    Scenario scenario = builtinScenario("fig07-edp");
    std::string traceDir;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scenario-out" && i + 1 < argc) {
            std::ofstream out(argv[++i]);
            if (!out) {
                std::cerr << "cannot open " << argv[i] << "\n";
                return 1;
            }
            writeScenario(out, scenario);
            return 0;
        }
        if (arg == "--trace-dir" && i + 1 < argc) {
            traceDir = argv[++i];
            continue;
        }
        std::cerr << "usage: fig07_edp_collectors [--scenario-out "
                     "FILE] [--trace-dir DIR]\n";
        return 2;
    }

    if (std::getenv("JAVELIN_FAST") != nullptr)
        scenario.benchmarks = {"_213_javac", "_209_db",
                               "_222_mpegaudio", "euler"};

    std::vector<workloads::BenchmarkProfile> benches;
    for (const auto &name : scenario.benchmarks)
        benches.push_back(workloads::benchmark(name));
    const auto &collectors = scenario.collectors;
    const auto &heaps = scenario.heapsMB;

    auto tasks = expandScenario(scenario);
    // Per-shard spool directories: host-side capture only, so the
    // shard key (not the config hash) names each run's traces.
    if (!traceDir.empty())
        for (auto &task : tasks)
            task.config.traceSpoolDir =
                traceDir + "/" + shardKey(task);
    SweepRunner::Config rc;
    rc.progress = consoleProgress("fig07 sweep");
    const auto outcomes = SweepRunner(rc).run(tasks);
    if (reportSweepFailures(std::cerr, tasks, outcomes) > 0)
        return 1;

    std::vector<std::vector<ExperimentResult>> rows;
    for (std::size_t i = 0; i < outcomes.size(); i += heaps.size()) {
        std::vector<ExperimentResult> row;
        for (std::size_t h = 0; h < heaps.size(); ++h)
            row.push_back(outcomes[i + h].result);
        rows.push_back(std::move(row));
    }

    std::cout << "=== Fig. 7: EDP (mJ*s at study scale) vs heap size, "
                 "Jikes RVM, P6 ===\n\n";
    edpTable(rows, heaps).print(std::cout);

    // Scalar claims from Section VI-B.
    const auto edpOf = [&](const std::string &name,
                           jvm::CollectorKind kind, std::uint32_t heap) {
        for (std::size_t b = 0; b < benches.size(); ++b)
            for (std::size_t c = 0; c < collectors.size(); ++c)
                if (benches[b].name == name && collectors[c] == kind)
                    for (std::size_t h = 0; h < heaps.size(); ++h)
                        if (heaps[h] == heap) {
                            const auto &r =
                                rows[b * collectors.size() + c][h];
                            return r.ok() ? r.edp() : -1.0;
                        }
        return -1.0;
    };

    std::cout << "\nsummary (paper expectations in parentheses):\n";
    const double ssJavac32 =
        edpOf("_213_javac", jvm::CollectorKind::SemiSpace, 32);
    const double genmsJavac32 =
        edpOf("_213_javac", jvm::CollectorKind::GenMS, 32);
    if (ssJavac32 > 0 && genmsJavac32 > 0)
        std::cout << "  javac@32MB GenMS vs SemiSpace EDP improvement: "
                  << core::relativeImprovement(ssJavac32, genmsJavac32)
                         * 100 << "%  (~70%)\n";
    for (const auto &[name, gcExp, ssExp] :
         {std::tuple<const char *, double, double>{"_213_javac", 20, 56},
          {"_227_mtrt", 2, 50},
          {"euler", 3, 27}}) {
        const double ss32 =
            edpOf(name, jvm::CollectorKind::SemiSpace, 32);
        const double ss48 =
            edpOf(name, jvm::CollectorKind::SemiSpace, 48);
        const double gc32 =
            edpOf(name, jvm::CollectorKind::GenCopy, 32);
        const double gc48 =
            edpOf(name, jvm::CollectorKind::GenCopy, 48);
        if (ss32 > 0 && ss48 > 0 && gc32 > 0 && gc48 > 0)
            std::cout << "  " << name << " 32->48MB EDP drop: SemiSpace "
                      << core::relativeImprovement(ss32, ss48) * 100
                      << "% (" << ssExp << "%), GenCopy "
                      << core::relativeImprovement(gc32, gc48) * 100
                      << "% (" << gcExp << "%)\n";
    }
    const double ssDb128 =
        edpOf("_209_db", jvm::CollectorKind::SemiSpace, 128);
    const double gcDb128 =
        edpOf("_209_db", jvm::CollectorKind::GenCopy, 128);
    if (ssDb128 > 0 && gcDb128 > 0)
        std::cout << "  _209_db@128MB SemiSpace vs GenCopy EDP: "
                  << core::relativeImprovement(gcDb128, ssDb128) * 100
                  << "% better for SemiSpace  (~5%)\n";
    return 0;
}
