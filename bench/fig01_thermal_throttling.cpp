/**
 * @file
 * Reproduces paper Fig. 1: processor temperature under repetitive runs
 * of _222_mpegaudio on Jikes RVM (GenCopy), with the fan enabled and
 * disabled. With the fan on, the temperature settles near 60 C; with
 * the fan off it climbs to the 99 C trip point (about 240 s on the real
 * board), where the emergency response halves the clock duty cycle and
 * the temperature saw-tooths around the threshold.
 *
 * The study scale shortens runs by ~16x, so the thermal time constant
 * is shortened by the same factor (tau scales with R*C; we scale C) and
 * the time axis below is reported in equivalent paper seconds.
 */

#include <iostream>

#include "core/daq.hh"
#include "harness/experiment.hh"
#include "util/table.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

/** Thermal time dilation: simulated seconds -> paper seconds. */
constexpr double kThermalScale = 4000.0;

struct TracePoint
{
    double paperSeconds;
    double tempC;
    double duty;
};

std::vector<TracePoint>
runScenario(bool fan_enabled, double paper_seconds)
{
    auto spec = scaledPlatformSpec(ExperimentConfig{});
    spec.thermal.capacitanceJperC /= kThermalScale;

    const auto program = workloads::buildProgram(
        workloads::benchmark("_222_mpegaudio"),
        workloads::studyScaleFor(workloads::DatasetScale::Small));

    sim::System system(spec);
    system.thermal().setFanEnabled(fan_enabled);

    std::vector<TracePoint> trace;
    system.addPeriodicTask(
        "trace", 500 * kTicksPerMicro, [&](Tick now) {
            trace.push_back({ticksToSeconds(now) * kThermalScale,
                             system.thermal().temperatureC(),
                             system.cpu().dutyCycle()});
        });

    jvm::JvmConfig cfg;
    cfg.collector = jvm::CollectorKind::GenCopy;
    cfg.heapBytes = scaledHeapBytes(ExperimentConfig{});

    const double horizon = paper_seconds / kThermalScale;
    // Repetitive runs of the benchmark, as in the paper.
    while (ticksToSeconds(system.cpu().now()) < horizon) {
        jvm::Jvm vm(system, program, cfg);
        const auto r = vm.run();
        if (r.outOfMemory)
            break;
    }
    return trace;
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 1: Pentium M temperature, repetitive "
                 "_222_mpegaudio, Jikes RVM + GenCopy ===\n"
              << "(time axis in equivalent paper seconds; thermal mass "
                 "scaled with the study scale)\n\n";

    const auto fanOn = runScenario(true, 300.0);
    const auto fanOff = runScenario(false, 300.0);

    Table t({"t(s)", "fan-on T(C)", "fan-off T(C)", "fan-off duty"});
    const std::size_t n = std::min(fanOn.size(), fanOff.size());
    for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 25)) {
        t.beginRow();
        t.cell(fanOn[i].paperSeconds, 0);
        t.cell(fanOn[i].tempC, 1);
        t.cell(fanOff[i].tempC, 1);
        t.cell(fanOff[i].duty, 2);
    }
    t.print(std::cout);

    double fanOnMax = 0, fanOffMax = 0, tripAt = -1;
    for (const auto &p : fanOn)
        fanOnMax = std::max(fanOnMax, p.tempC);
    for (const auto &p : fanOff) {
        fanOffMax = std::max(fanOffMax, p.tempC);
        if (tripAt < 0 && p.duty < 1.0)
            tripAt = p.paperSeconds;
    }
    std::cout << "\nsummary (paper expectations in parentheses):\n"
              << "  fan-on peak temperature " << fanOnMax
              << " C  (~60 C steady)\n"
              << "  fan-off peak temperature " << fanOffMax
              << " C  (clips at 99 C)\n"
              << "  throttle engaged at t=" << tripAt
              << " s equivalent  (~240 s), duty 0.50\n";
    return 0;
}
