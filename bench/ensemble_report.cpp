/**
 * @file
 * Energy-regression ensemble report generator (ROADMAP item 4).
 *
 * Runs the committed regression matrix — a small set of (benchmark x
 * collector x heap) cells chosen to cover the GC-bound and
 * mutator-bound corners — over the pinned seed ensemble and writes the
 * versioned JSON report scripts/compare_ensemble.py gates on. The
 * committed baseline lives at bench/ENSEMBLE_energy.baseline.json;
 * regenerate it with:
 *
 *   build-release/bench/ensemble_report --out bench/ENSEMBLE_energy.baseline.json
 *
 * after any *intentional* model change, and say so in the commit (the
 * same protocol as the golden runs). The report is deterministic for a
 * fixed seed list at any JAVELIN_JOBS setting.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/ensemble.hh"
#include "harness/scenario.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

std::vector<std::uint64_t>
parseSeeds(const std::string &csv)
{
    std::vector<std::uint64_t> seeds;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            seeds.push_back(std::stoull(item));
    return seeds;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::string scenarioPath;
    std::string scenarioOutPath;
    EnsembleConfig cfg;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--seeds" && i + 1 < argc) {
            cfg.seeds = parseSeeds(argv[++i]);
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--scenario" && i + 1 < argc) {
            scenarioPath = argv[++i];
        } else if (arg == "--scenario-out" && i + 1 < argc) {
            scenarioOutPath = argv[++i];
        } else {
            std::cerr << "usage: ensemble_report [--out FILE] "
                         "[--seeds 1,2,...] [--quick]\n"
                         "                       [--scenario FILE] "
                         "[--scenario-out FILE]\n";
            return 2;
        }
    }
    if (cfg.seeds.empty()) {
        std::cerr << "ensemble_report: empty seed list\n";
        return 2;
    }
    if (quick)
        cfg.seeds.resize(std::min<std::size_t>(cfg.seeds.size(), 3));

    // The regression matrix is data: the builtin "ensemble-regression"
    // scenario (pinned as tests/fixtures/ensemble_regression.scenario
    // .json), or any scenario file passed with --scenario. The quick
    // mode prunes the matrix to its GC-bound corner.
    Scenario scenario;
    try {
        scenario = scenarioPath.empty()
                       ? builtinScenario("ensemble-regression")
                       : parseScenarioFile(scenarioPath);
    } catch (const ScenarioError &e) {
        std::cerr << "ensemble_report: " << e.what() << "\n";
        return 2;
    }
    if (quick && scenarioPath.empty()) {
        scenario.benchmarks = {"_202_jess"};
        scenario.collectors = {jvm::CollectorKind::SemiSpace};
    }
    if (!scenarioOutPath.empty()) {
        std::ofstream out(scenarioOutPath);
        if (!out) {
            std::cerr << "ensemble_report: cannot open "
                      << scenarioOutPath << "\n";
            return 1;
        }
        writeScenario(out, scenario);
        return 0;
    }

    cfg.progress = consoleProgress("ensemble");
    const auto cells = expandScenario(scenario);
    const auto results = EnsembleRunner(cfg).run(cells);

    for (const auto &cell : results) {
        if (cell.failures > 0)
            std::cerr << "warning: " << cell.key << ": "
                      << cell.failures
                      << " failed ensemble member(s), first: "
                      << cell.firstError << "\n";
        const auto *total = cell.metric("total_joules");
        std::cerr << cell.key << ": total "
                  << total->ci.point << " J  [" << total->ci.lo << ", "
                  << total->ci.hi << "] @" << total->ci.confidence
                  << "\n";
    }

    if (outPath.empty()) {
        writeEnsembleReport(std::cout, results, cfg);
    } else {
        std::ofstream out(outPath);
        if (!out) {
            std::cerr << "ensemble_report: cannot open " << outPath
                      << "\n";
            return 1;
        }
        writeEnsembleReport(out, results, cfg);
        std::cerr << "wrote " << outPath << "\n";
    }
    return 0;
}
