/**
 * @file
 * Ablation A2: write-barrier overhead.
 *
 * Section VI-B attributes part of GenCopy's mutator cost to "a slight
 * performance overhead of write barriers" that undermines its locality
 * benefit for _209_db. The simulator can isolate exactly that term:
 * the same run with the barrier's mutator charges switched off (the
 * remembered set stays correct, only the cost disappears) bounds the
 * barrier's contribution to time and energy.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "util/table.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    std::cout << "=== A2: write-barrier overhead, Jikes RVM + GenCopy, "
                 "128 MB ===\n\n";

    Table t({"benchmark", "time w/ barrier(ms)", "time w/o(ms)",
             "overhead", "energy overhead", "barrier hits"});
    const std::vector<const char *> names = {"_209_db", "_213_javac",
                                             "_202_jess", "pmd"};
    std::vector<SweepTask> tasks;
    for (const char *name : names) {
        ExperimentConfig cfg;
        cfg.collector = jvm::CollectorKind::GenCopy;
        cfg.heapNominalMB = 128;
        tasks.push_back({cfg, workloads::benchmark(name)});
        cfg.chargeBarrierCost = false;
        tasks.push_back({cfg, workloads::benchmark(name)});
    }
    const auto outcomes = runSweep(tasks);

    for (std::size_t i = 0; i < names.size(); ++i) {
        const char *name = names[i];
        const auto &with = outcomes[2 * i].result;
        const auto &without = outcomes[2 * i + 1].result;
        if (!outcomes[2 * i].ok() || !outcomes[2 * i + 1].ok())
            continue;

        t.beginRow();
        t.cell(name);
        t.cell(with.run.seconds() * 1e3, 2);
        t.cell(without.run.seconds() * 1e3, 2);
        t.cellPct((with.run.seconds() - without.run.seconds()) /
                  without.run.seconds(), 2);
        t.cellPct((with.attribution.totalCpuJoules -
                   without.attribution.totalCpuJoules) /
                  without.attribution.totalCpuJoules, 2);
        t.cell(with.run.gc.barrierHits);
    }
    t.print(std::cout);
    std::cout << "\nA few percent of mutator time — the \"slight "
                 "overhead\" the paper blames for GenCopy losing to "
                 "SemiSpace on _209_db at 128 MB.\n";
    return 0;
}
