/**
 * @file
 * Reproduces the scalar per-component claims of paper Sections VI-A and
 * VI-C (experiment T1 in DESIGN.md):
 *  - average GC energy share at 32 MB vs 128 MB heaps (37% -> 10% for
 *    SpecJVM98 with SemiSpace);
 *  - per-collector average GC power (GenCopy 12.8 W, SemiSpace 12.3 W,
 *    GenMS 12.7 W, MarkSweep 11.7 W) vs the application;
 *  - per-component IPC and L2 miss rates (App ~0.8/11%, GC ~0.55/54%);
 *  - main-memory energy share (5-8%).
 *
 * A finer HPM period than the paper's 1 ms OS timer is used because the
 * scaled runs last tens of milliseconds rather than minutes; the
 * sampling *mechanism* is unchanged.
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "util/stats.hh"

using namespace javelin;

int
main()
{
    const bool fast = std::getenv("JAVELIN_FAST") != nullptr;
    const auto collectors = {
        jvm::CollectorKind::GenCopy, jvm::CollectorKind::SemiSpace,
        jvm::CollectorKind::GenMS, jvm::CollectorKind::MarkSweep};

    std::vector<workloads::BenchmarkProfile> benches;
    for (const auto &b : workloads::suiteBenchmarks("SpecJVM98"))
        benches.push_back(b);
    if (fast)
        benches.resize(3);

    Table power({"collector", "GC avgW", "GC IPC", "GC L2miss",
                 "App avgW", "App IPC", "App L2miss", "mem%"});
    Table share({"collector", "GC% @32MB", "GC% @128MB"});

    std::vector<harness::SweepTask> tasks;
    for (const auto collector : collectors) {
        for (const auto &bench : benches) {
            for (const std::uint32_t heap : {32u, 128u}) {
                harness::ExperimentConfig cfg;
                cfg.collector = collector;
                cfg.heapNominalMB = heap;
                cfg.hpmPeriod = 100 * kTicksPerMicro;
                tasks.push_back({cfg, bench});
            }
        }
    }
    harness::SweepRunner::Config rc;
    rc.progress = harness::consoleProgress("tab sweep");
    const auto outcomes = harness::SweepRunner(rc).run(tasks);

    const std::size_t perCollector = benches.size() * 2;
    std::size_t taskIdx = 0;
    for (const auto collector : collectors) {
        RunningStat gcW, gcIpc, gcMiss, appW, appIpc, appMiss, memShare;
        RunningStat gc32, gc128;
        for (std::size_t i = 0; i < perCollector; ++i) {
            const auto &outcome = outcomes[taskIdx++];
            const auto &res = outcome.result;
            const std::uint32_t heap = res.config.heapNominalMB;
            if (!outcome.ok())
                continue;
            const auto &gc =
                res.attribution.powerOf(core::ComponentId::Gc);
            const auto &app =
                res.attribution.powerOf(core::ComponentId::App);
            const auto &gcp =
                res.attribution.perfOf(core::ComponentId::Gc);
            const auto &appp =
                res.attribution.perfOf(core::ComponentId::App);
            if (gc.samples > 3) {
                gcW.add(gc.avgCpuWatts());
                gcIpc.add(gcp.ipc());
                gcMiss.add(gcp.l2MissRate());
            }
            appW.add(app.avgCpuWatts());
            appIpc.add(appp.ipc());
            appMiss.add(appp.l2MissRate());
            memShare.add(res.attribution.totalMemJoules /
                         res.attribution.totalJoules());
            (heap == 32 ? gc32 : gc128)
                .add(res.attribution.energyFraction(
                    core::ComponentId::Gc));
        }
        power.beginRow();
        power.cell(jvm::collectorName(collector));
        power.cell(gcW.mean(), 2).cell(gcIpc.mean(), 2);
        power.cellPct(gcMiss.mean());
        power.cell(appW.mean(), 2).cell(appIpc.mean(), 2);
        power.cellPct(appMiss.mean());
        power.cellPct(memShare.mean());

        share.beginRow();
        share.cell(jvm::collectorName(collector));
        share.cellPct(gc32.mean()).cellPct(gc128.mean());
    }

    std::cout << "=== T1a: per-component power/IPC/L2 (SpecJVM98, "
                 "Jikes RVM, P6) ===\n";
    std::cout << "paper: GC avg power GenCopy 12.8W / SemiSpace 12.3W / "
                 "GenMS 12.7W / MarkSweep 11.7W;\n"
                 "       App IPC ~0.8 & L2 ~11%; GC IPC ~0.55 & L2 ~54%; "
                 "memory energy 5-8%\n\n";
    power.print(std::cout);

    std::cout << "\n=== T1b: average GC energy share vs heap "
                 "(paper: 37% @32MB -> 10% @128MB, SemiSpace) ===\n";
    share.print(std::cout);
    return 0;
}
