/**
 * @file
 * Ablation A4: dynamic voltage and frequency scaling (the paper's
 * Section VII future work, implemented as an extension).
 *
 * Sweeps the Pentium M operating points for a compute-bound benchmark
 * (_222_mpegaudio) and a GC-bound one (_213_javac at 32 MB): energy
 * falls with V^2 while runtime stretches with 1/f, so the EDP optimum
 * sits at an intermediate point — further down for memory-bound work,
 * whose stall time does not scale with the core clock.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "util/table.hh"

using namespace javelin;
using namespace javelin::harness;

int
main()
{
    std::cout << "=== A4: DVFS sweep, Jikes RVM + GenCopy, P6 ===\n\n";

    const auto spec = sim::p6Spec();
    const std::vector<const char *> names = {"_222_mpegaudio",
                                             "_213_javac"};
    std::vector<SweepTask> tasks;
    for (const char *name : names) {
        for (std::size_t i = 0; i < spec.dvfsPoints.size(); ++i) {
            ExperimentConfig cfg;
            cfg.collector = jvm::CollectorKind::GenCopy;
            cfg.heapNominalMB = 32;
            cfg.dvfsPoint = static_cast<int>(i);
            tasks.push_back({cfg, workloads::benchmark(name)});
        }
    }
    const auto outcomes = runSweep(tasks);

    std::size_t taskIdx = 0;
    for (const char *name : names) {
        Table t({"point", "freq(GHz)", "volts", "time(ms)", "energy(J)",
                 "EDP(mJ*s)"});
        for (std::size_t i = 0; i < spec.dvfsPoints.size(); ++i) {
            const auto &outcome = outcomes[taskIdx++];
            const auto &res = outcome.result;
            if (!outcome.ok())
                continue;
            t.beginRow();
            t.cell(static_cast<std::int64_t>(i));
            t.cell(spec.dvfsPoints[i].freqHz / 1e9, 1);
            t.cell(spec.dvfsPoints[i].volts, 3);
            t.cell(res.run.seconds() * 1e3, 2);
            t.cell(res.attribution.totalJoules(), 4);
            t.cell(res.edp() * 1e3, 3);
        }
        std::cout << name << ":\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Energy falls monotonically with the operating point; "
                 "EDP favours mid-range points, more so for the "
                 "memory-bound benchmark.\n";
    return 0;
}
