/**
 * @file
 * Ablation A4: dynamic voltage and frequency scaling (the paper's
 * Section VII future work, implemented as an extension).
 *
 * Sweeps the Pentium M operating points for a compute-bound benchmark
 * (_222_mpegaudio) and a GC-bound one (_213_javac at 32 MB): energy
 * falls with V^2 while runtime stretches with 1/f, so the EDP optimum
 * sits at an intermediate point — further down for memory-bound work,
 * whose stall time does not scale with the core clock.
 */

#include <fstream>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"
#include "util/table.hh"

using namespace javelin;
using namespace javelin::harness;

int
main(int argc, char **argv)
{
    // Declarative sweep: the builtin "abl-dvfs" scenario is the matrix
    // (pinned as tests/fixtures/abl_dvfs.scenario.json); --scenario-out
    // exports it for javelin-sweep.
    const Scenario scenario = builtinScenario("abl-dvfs");
    std::string traceDir;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scenario-out" && i + 1 < argc) {
            std::ofstream out(argv[++i]);
            if (!out) {
                std::cerr << "cannot open " << argv[i] << "\n";
                return 1;
            }
            writeScenario(out, scenario);
            return 0;
        }
        if (arg == "--trace-dir" && i + 1 < argc) {
            traceDir = argv[++i];
            continue;
        }
        std::cerr << "usage: abl_dvfs [--scenario-out FILE] "
                     "[--trace-dir DIR]\n";
        return 2;
    }

    std::cout << "=== A4: DVFS sweep, Jikes RVM + GenCopy, P6 ===\n\n";

    const auto spec = sim::p6Spec();
    const auto &names = scenario.benchmarks;
    auto tasks = expandScenario(scenario);
    // Host-side capture knob; shard keys name the per-run spool dirs.
    if (!traceDir.empty())
        for (auto &task : tasks)
            task.config.traceSpoolDir =
                traceDir + "/" + shardKey(task);
    const auto outcomes = runSweep(tasks);
    if (reportSweepFailures(std::cerr, tasks, outcomes) > 0)
        return 1;

    std::size_t taskIdx = 0;
    for (const auto &name : names) {
        Table t({"point", "freq(GHz)", "volts", "time(ms)", "energy(J)",
                 "EDP(mJ*s)"});
        for (std::size_t i = 0; i < spec.dvfsPoints.size(); ++i) {
            const auto &outcome = outcomes[taskIdx++];
            const auto &res = outcome.result;
            if (!outcome.ok())
                continue;
            t.beginRow();
            t.cell(static_cast<std::int64_t>(i));
            t.cell(spec.dvfsPoints[i].freqHz / 1e9, 1);
            t.cell(spec.dvfsPoints[i].volts, 3);
            t.cell(res.run.seconds() * 1e3, 2);
            t.cell(res.attribution.totalJoules(), 4);
            t.cell(res.edp() * 1e3, 3);
        }
        std::cout << name << ":\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Energy falls monotonically with the operating point; "
                 "EDP favours mid-range points, more so for the "
                 "memory-bound benchmark.\n";
    return 0;
}
