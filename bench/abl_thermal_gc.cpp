/**
 * @file
 * Ablation A3: thermal-aware garbage collection triggering — the
 * optimization paper Section VI-C proposes: "by triggering garbage
 * collection at points when the temperature of the processor has
 * exceeded a safety threshold level, the processor executes a component
 * with less power requirements, potentially giving it time to cool
 * down to a safe level."
 *
 * The policy here forces a collection whenever the die crosses a guard
 * temperature below the hardware trip point. Because the collector
 * draws less power than the application, the proactive pause flattens
 * the temperature ramp and delays (or avoids) the 50%-duty emergency
 * throttle, trading a little GC energy for sustained clock speed.
 */

#include <iostream>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "util/table.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

constexpr double kThermalScale = 4000.0;

struct Outcome
{
    double seconds;
    double joules;
    double peakC;
    double throttledPct;
    std::uint64_t collections;
};

Outcome
runScenario(bool thermal_gc, double guard_temp_c)
{
    auto spec = scaledPlatformSpec(ExperimentConfig{});
    spec.thermal.capacitanceJperC /= kThermalScale;

    const auto program = workloads::buildProgram(
        workloads::benchmark("_202_jess"),
        workloads::studyScaleFor(workloads::DatasetScale::Small));

    sim::System system(spec);
    system.thermal().setFanEnabled(false); // the fan-failure scenario

    jvm::JvmConfig cfg;
    cfg.collector = jvm::CollectorKind::GenCopy;
    cfg.heapBytes = scaledHeapBytes(ExperimentConfig{});

    Outcome out{};
    // One long-lived policy task; `current` points at the VM of the
    // iteration in flight (null between runs).
    jvm::Jvm *current = nullptr;
    if (thermal_gc) {
        system.addPeriodicTask(
            "thermal-gc", 200 * kTicksPerMicro, [&](Tick) {
                if (!current)
                    return;
                if (system.thermal().temperatureC() < guard_temp_c)
                    return;
                if (current->port().current() != core::ComponentId::App)
                    return; // never re-enter the collector
                current->collector().collect(false);
            });
    }
    const Tick horizon = secondsToTicks(180.0 / kThermalScale);
    while (system.cpu().now() < horizon) {
        jvm::Jvm vm(system, program, cfg);
        current = &vm;
        const auto r = vm.run();
        current = nullptr;
        out.collections += r.gc.collections;
        if (r.outOfMemory)
            break;
    }
    out.seconds = ticksToSeconds(system.cpu().now()) * kThermalScale;
    out.joules = system.cpuJoules() * kThermalScale;
    out.peakC = system.thermal().maxTemperatureC();
    out.throttledPct = system.thermal().throttledSeconds() /
                       ticksToSeconds(system.cpu().now()) * 100.0;
    return out;
}

} // namespace

int
main()
{
    std::cout << "=== A3: thermal-aware GC triggering (Section VI-C "
                 "proposal), fan disabled, _202_jess ===\n"
              << "(fixed wall-clock horizon; equivalent paper units)\n\n";

    // An allocation-heavy benchmark: proactive collections occupy a
    // substantial duty cycle, which is what produces cooling (for a
    // compute benchmark with an empty nursery the trigger is a no-op
    // and the policy has no effect).
    //
    // Each scenario simulates a private System, so the baseline and the
    // three guard temperatures run concurrently on the sweep pool.
    const std::vector<double> guards = {97.0, 95.0, 92.0};
    std::vector<Outcome> outcomes(1 + guards.size());
    SweepRunner::parallelFor(outcomes.size(), [&](std::size_t i) {
        outcomes[i] = i == 0 ? runScenario(false, 0)
                             : runScenario(true, guards[i - 1]);
    });

    const Outcome &base = outcomes[0];
    Table t({"policy", "peak T(C)", "throttled%", "GCs",
             "energy (rel)", "work done (rel)"});
    t.beginRow();
    t.cell("baseline").cell(base.peakC, 1).cell(base.throttledPct, 1);
    t.cell(base.collections).cell(1.0, 3).cell(1.0, 3);

    for (std::size_t g = 0; g < guards.size(); ++g) {
        const double guard = guards[g];
        const Outcome &o = outcomes[g + 1];
        t.beginRow();
        t.cell("GC @" + std::to_string(static_cast<int>(guard)) + "C");
        t.cell(o.peakC, 1);
        t.cell(o.throttledPct, 1);
        t.cell(o.collections);
        t.cell(o.joules / base.joules, 3);
        // Work proxy: collections aside, both scenarios run the same
        // benchmark in a loop; time spent unthrottled is the win.
        t.cell((100.0 - o.throttledPct) / (100.0 - base.throttledPct),
               3);
    }
    t.print(std::cout);
    std::cout << "\nTriggering the low-power GC below the trip point "
                 "reduces time spent in 50%-duty emergency throttling, "
                 "as the paper anticipates.\n";
    return 0;
}
