#!/usr/bin/env python3
"""Regenerate the ensemble-gate test fixtures from the real baseline.

Usage: make_ensemble_fixtures.py [BASELINE.json [OUTDIR]]

Produces, in tests/fixtures/:

  * ensemble_baseline.json   verbatim copy of the committed baseline
  * ensemble_ok.json         the same report under harmless jitter
                             (+-0.05% per sample, deterministic seed),
                             i.e. a healthy re-run on slightly
                             different hardware/noise
  * ensemble_regressed.json  the energy metrics shifted +5%, a clearly
                             significant regression

scripts/ci.sh gates compare_ensemble.py against this pair: the ok
fixture must pass and the regressed fixture must fail, exercising both
verdicts without re-running any simulation. Re-run this script whenever
bench/ENSEMBLE_energy.baseline.json is regenerated (the CI check will
remind you: stale fixtures have a different seed list or cell set).
"""

import json
import random
import sys

JITTER = 0.0005
REGRESSION = 0.05
REGRESSED_METRICS = ("total_joules", "cpu_joules", "mem_joules",
                     "edp_js", "gt_total_joules")


def perturbed(report, shift_metrics, shift, seed):
    out = json.loads(json.dumps(report))  # deep copy
    rng = random.Random(seed)
    for cell in out["cells"]:
        for name, metric in cell["metrics"].items():
            factor = 1.0 + (shift if name in shift_metrics else 0.0)
            metric["samples"] = [
                x * factor * (1.0 + rng.uniform(-JITTER, JITTER))
                for x in metric["samples"]
            ]
            if metric["samples"]:
                metric["mean"] = (sum(metric["samples"]) /
                                  len(metric["samples"]))
    return out


def main():
    baseline_path = (sys.argv[1] if len(sys.argv) > 1
                     else "bench/ENSEMBLE_energy.baseline.json")
    outdir = sys.argv[2] if len(sys.argv) > 2 else "tests/fixtures"
    with open(baseline_path) as f:
        baseline = json.load(f)

    fixtures = {
        "ensemble_baseline.json": baseline,
        "ensemble_ok.json": perturbed(baseline, (), 0.0, seed=42),
        "ensemble_regressed.json": perturbed(baseline, REGRESSED_METRICS,
                                             REGRESSION, seed=43),
    }
    for name, report in fixtures.items():
        path = f"{outdir}/{name}"
        with open(path, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
