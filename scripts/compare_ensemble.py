#!/usr/bin/env python3
"""Gate energy/EDP on statistically significant ensemble regressions.

Usage: compare_ensemble.py BASELINE.json CURRENT.json [options]
       compare_ensemble.py --self-test

Both files are ``javelin-ensemble-v1`` reports written by
``bench/ensemble_report`` (see src/harness/ensemble.hh): per
(benchmark x collector x heap) cell, the per-seed samples and bootstrap
CI of every metric. Instead of a fixed percentage threshold, each gated
metric is tested for a *statistically significant* shift in the bad
direction:

  * the primary test is a two-sided permutation test on the difference
    of means — exact (all C(n, na) relabelings) when the pooled sample
    is small enough, seeded Monte-Carlo otherwise;
  * a Mann-Whitney rank test (normal approximation, midranks,
    tie-corrected) is reported alongside for cross-checking;
  * Holm-Bonferroni controls the family-wise error rate across all
    (cell, metric) comparisons, so a wide matrix does not inflate the
    false-alarm rate;
  * ``--min-effect`` additionally requires the relative mean shift to
    exceed a practical floor (default 0.2 %), so a microscopically
    small but formally significant shift does not fail the build.

Gated metrics default to total_joules and edp_js, where "worse" means
"larger"; other metrics are reported for context. The seed lists of the
two reports must match — a different ensemble is a different
experiment, not a comparison.

Exit status: 0 = no significant regression, 1 = significant regression,
2 = usage or data error.
"""

import argparse
import itertools
import json
import math
import random
import sys

SCHEMA = "javelin-ensemble-v1"

# metric -> True when larger values are worse.
GATED_METRICS = {
    "total_joules": True,
    "edp_js": True,
}

# Exhaustive permutation up to this pooled size (C(16,8) = 12870).
EXACT_PERMUTATION_LIMIT = 16
MONTE_CARLO_ROUNDS = 20000
MONTE_CARLO_SEED = 0x5EED


def mean(xs):
    return sum(xs) / len(xs)


def permutation_p(a, b):
    """Two-sided permutation test p-value on the difference of means."""
    pooled = list(a) + list(b)
    n, na = len(pooled), len(a)
    observed = abs(mean(a) - mean(b))
    tolerance = 1e-12 * max(observed, 1.0)
    total_sum = sum(pooled)

    def delta(sum_a):
        return abs(sum_a / na - (total_sum - sum_a) / (n - na))

    if n <= EXACT_PERMUTATION_LIMIT:
        hits = total = 0
        for idx in itertools.combinations(range(n), na):
            total += 1
            if delta(sum(pooled[i] for i in idx)) >= observed - tolerance:
                hits += 1
        return hits / total
    rng = random.Random(MONTE_CARLO_SEED)
    hits = 0
    for _ in range(MONTE_CARLO_ROUNDS):
        rng.shuffle(pooled)
        if delta(sum(pooled[:na])) >= observed - tolerance:
            hits += 1
    return (hits + 1) / (MONTE_CARLO_ROUNDS + 1)


def mann_whitney_p(a, b):
    """Two-sided Mann-Whitney p (normal approx., midranks, ties)."""
    na, nb = len(a), len(b)
    if na == 0 or nb == 0:
        return 1.0
    pooled = sorted([(x, 0) for x in a] + [(x, 1) for x in b])
    n = na + nb
    rank_sum_a = 0.0
    tie_term = 0.0
    i = 0
    while i < n:
        j = i
        while j < n and pooled[j][0] == pooled[i][0]:
            j += 1
        midrank = (i + 1 + j) / 2.0
        t = j - i
        tie_term += t * t * t - t
        rank_sum_a += midrank * sum(1 for k in range(i, j)
                                    if pooled[k][1] == 0)
        i = j
    u = rank_sum_a - na * (na + 1) / 2.0
    mean_u = na * nb / 2.0
    var = na * nb / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var <= 0:
        return 1.0
    z = max(abs(u - mean_u) - 0.5, 0.0) / math.sqrt(var)
    return min(1.0, max(0.0, math.erfc(z / math.sqrt(2.0))))


def holm_significant(tests, alpha):
    """Holm-Bonferroni: return the set of indices judged significant."""
    order = sorted(range(len(tests)), key=lambda i: tests[i])
    significant = set()
    m = len(tests)
    for step, idx in enumerate(order):
        if tests[idx] <= alpha / (m - step):
            significant.add(idx)
        else:
            break
    return significant


def load_report(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{path}: expected schema {SCHEMA!r}, "
                         f"got {data.get('schema')!r}")
    return data


def cells_by_key(report):
    return {cell["key"]: cell for cell in report.get("cells", [])}


def compare(base, cur, alpha, min_effect, metrics, out=sys.stdout):
    """Compare two loaded reports; returns (exit_code, messages)."""
    if base.get("seeds") != cur.get("seeds"):
        print(f"error: seed lists differ ({base.get('seeds')} vs "
              f"{cur.get('seeds')}); ensembles are not comparable",
              file=sys.stderr)
        return 2

    base_cells = cells_by_key(base)
    cur_cells = cells_by_key(cur)
    for key in cur_cells.keys() - base_cells.keys():
        print(f"  note: cell {key} is new (not in baseline)", file=out)
    missing = base_cells.keys() - cur_cells.keys()
    if missing:
        print(f"error: cells missing from the current report: "
              f"{sorted(missing)}", file=sys.stderr)
        return 2

    comparisons = []  # (cell key, metric, p, rel_shift, worse, mw_p)
    for key in sorted(base_cells):
        bcell, ccell = base_cells[key], cur_cells[key]
        for name, larger_is_worse in metrics.items():
            bm = bcell["metrics"].get(name)
            cm = ccell["metrics"].get(name)
            if bm is None or cm is None:
                print(f"  {key}.{name}: missing, skipped", file=out)
                continue
            bs, cs = bm["samples"], cm["samples"]
            if len(bs) < 2 or len(cs) < 2:
                print(f"  {key}.{name}: <2 samples, skipped", file=out)
                continue
            base_mean, cur_mean = mean(bs), mean(cs)
            rel = ((cur_mean - base_mean) / base_mean
                   if base_mean else 0.0)
            worse = rel > 0 if larger_is_worse else rel < 0
            p = permutation_p(bs, cs)
            mw = mann_whitney_p(bs, cs)
            comparisons.append((key, name, p, rel, worse, mw))

    if not comparisons:
        print("error: no comparable (cell, metric) pair",
              file=sys.stderr)
        return 2

    significant = holm_significant([c[2] for c in comparisons], alpha)
    failures = []
    for i, (key, name, p, rel, worse, mw) in enumerate(comparisons):
        is_sig = i in significant
        regressed = (is_sig and worse and abs(rel) >= min_effect)
        if regressed:
            verdict = "REGRESSED"
            failures.append(f"{key}.{name}")
        elif is_sig and not worse:
            verdict = "improved"
        elif is_sig:
            verdict = "shift below --min-effect"
        else:
            verdict = "ok"
        print(f"  {key}.{name}: {rel:+.2%} "
              f"(perm p={p:.4g}, mw p={mw:.4g}) {verdict}", file=out)

    if failures:
        print(f"FAIL: statistically significant energy regression "
              f"(alpha={alpha}, Holm-corrected) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"OK: no significant regression across "
          f"{len(comparisons)} comparisons (alpha={alpha})", file=out)
    return 0


def self_test():
    """Deterministic unit checks; exits nonzero on the first failure."""
    checks = []

    def check(name, cond):
        checks.append((name, cond))
        print(f"  {'ok' if cond else 'FAIL'}: {name}")

    # Identical samples: every relabeling ties the observed delta.
    same = [1.0, 2.0, 3.0, 4.0]
    check("identical samples -> p = 1", permutation_p(same, same) == 1.0)

    # Fully separated samples: only the extreme splits reach the
    # observed delta; exact p = 2 / C(8, 4) = 1/35.
    lo, hi = [1.0, 1.1, 1.2, 1.3], [2.0, 2.1, 2.2, 2.3]
    p = permutation_p(lo, hi)
    check("separated samples -> exact p = 2/70",
          abs(p - 2 / 70) < 1e-12)
    check("mann-whitney separated p < 0.05",
          mann_whitney_p(lo, hi) < 0.05)
    check("mann-whitney identical p = 1",
          mann_whitney_p(same, same) == 1.0)

    # Holm: one strong p among weak ones survives, the weak do not.
    sig = holm_significant([0.001, 0.8, 0.9], 0.05)
    check("holm keeps only the strong p", sig == {0})

    # End-to-end verdicts on synthetic reports.
    def report(samples):
        return {
            "schema": SCHEMA,
            "seeds": list(range(len(samples))),
            "cells": [{
                "key": "bench/VM/GC/32MB/P6",
                "metrics": {
                    "total_joules": {"samples": samples},
                    "edp_js": {"samples": samples},
                },
            }],
        }

    base = report([10.0, 10.1, 9.9, 10.05, 9.95, 10.02, 9.98, 10.03])
    worse = report([10.8, 10.9, 10.7, 10.85, 10.75, 10.82, 10.78,
                    10.83])
    same_rep = report([10.0, 10.1, 9.9, 10.05, 9.95, 10.02, 9.98,
                       10.03])
    import contextlib
    import io

    def quiet_compare(a, b):
        sink = io.StringIO()
        with contextlib.redirect_stderr(sink):
            return compare(a, b, 0.05, 0.002, GATED_METRICS, sink)

    check("regressed report fails", quiet_compare(base, worse) == 1)
    check("identical report passes",
          quiet_compare(base, same_rep) == 0)
    # An *improvement* of the same magnitude must pass: direction
    # matters, not just significance.
    better = report([9.2, 9.3, 9.1, 9.25, 9.15, 9.22, 9.18, 9.23])
    check("improved report passes", quiet_compare(base, better) == 0)

    failed = [name for name, cond in checks if not cond]
    if failed:
        print(f"self-test FAILED: {failed}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(checks)} checks)")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--alpha", type=float, default=0.05,
                    help="family-wise significance level (default 0.05)")
    ap.add_argument("--min-effect", type=float, default=0.002,
                    help="minimum relative mean shift to gate on "
                         "(default 0.002 = 0.2%%)")
    ap.add_argument("--metrics", default=",".join(GATED_METRICS),
                    help="comma-separated gated metrics "
                         "(larger-is-worse semantics)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current reports are required")

    metrics = {name: GATED_METRICS.get(name, True)
               for name in args.metrics.split(",") if name}
    try:
        base = load_report(args.baseline)
        cur = load_report(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    return compare(base, cur, args.alpha, args.min_effect, metrics)


if __name__ == "__main__":
    sys.exit(main())
