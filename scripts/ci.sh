#!/bin/sh
# Tier-1 gate: configure, build, and run the full test suite; then the
# suite again in the two alternate dispatch modes (per-op interpreter
# oracle via JAVELIN_INTERP_NO_FAST_PATH, and the switch-dispatch
# fallback build without computed goto); then a
# Debug ASan+UBSan pass over the same suite (the threaded-dispatch and
# SoA hot paths lean on raw pointers and computed goto, exactly where
# sanitizers earn their keep); then the perf gate: Release builds of
# bench/micro_sim, bench/micro_gc, and bench/micro_trace whose gated
# throughput metrics must stay within 10 % of the committed baselines
# (see scripts/compare_bench.py); plus the trace-spool smoke
# (crash-recovery round trip) and the flat-RSS capture ceiling; and finally the statistical energy gate:
# a Release ensemble run over the pinned seed list, compared against
# bench/ENSEMBLE_energy.baseline.json for statistically significant
# energy/EDP regressions (see scripts/compare_ensemble.py). Mirrors
# what CI runs; keep it green before pushing.
set -eu

cd "$(dirname "$0")/.."

# --- gate-tooling self-tests and the fixture pair: the comparison
# --- scripts check their own logic, then the ensemble gate is
# --- exercised in both directions against committed fixtures (a
# --- healthy re-run must pass, an injected +5 % energy regression must
# --- fail) without running a single experiment.
if command -v python3 > /dev/null 2>&1; then
    python3 scripts/compare_bench.py --self-test
    python3 scripts/compare_ensemble.py --self-test
    python3 scripts/compare_ensemble.py tests/fixtures/ensemble_baseline.json \
        tests/fixtures/ensemble_ok.json
    if python3 scripts/compare_ensemble.py \
        tests/fixtures/ensemble_baseline.json \
        tests/fixtures/ensemble_regressed.json > /dev/null 2>&1; then
        echo "ci.sh: ensemble gate FAILED to flag the regressed fixture" >&2
        exit 1
    fi
    echo "ensemble gate fixtures: both verdicts exercised"
fi

# --- correctness gate (includes the differential fuzzers and the
# --- golden-run regressions; see tests/test_cache_diff.cc and
# --- tests/test_golden_runs.cc)
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

# --- kill-and-resume smoke: SIGKILL javelin-sweep mid-run via the
# --- JAVELIN_JOB_CRASH_AFTER hook, resume from the journal, and
# --- require (a) the resumed report byte-identical to an
# --- uninterrupted run and (b) the resume restored work and executed
# --- strictly fewer shards than the sweep holds — proof the
# --- checkpoint carried results across a hard crash.
SWEEP=build/src/tools/javelin-sweep
SMOKE=examples/scenarios/smoke.scenario.json
SMOKE_DIR=build/smoke
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
"$SWEEP" "$SMOKE" --jobs 2 --out "$SMOKE_DIR/clean.json" \
    2> /dev/null
if JAVELIN_JOB_CRASH_AFTER=3 "$SWEEP" "$SMOKE" --jobs 2 \
    --checkpoint "$SMOKE_DIR/journal.jsonl" \
    --out "$SMOKE_DIR/crashed.json" 2> /dev/null; then
    echo "ci.sh: crash injection did not kill javelin-sweep" >&2
    exit 1
fi
"$SWEEP" "$SMOKE" --jobs 2 --checkpoint "$SMOKE_DIR/journal.jsonl" \
    --resume --out "$SMOKE_DIR/resumed.json" \
    2> "$SMOKE_DIR/resume.log"
cmp "$SMOKE_DIR/clean.json" "$SMOKE_DIR/resumed.json"
stats=$(grep 'checkpoint: restored=' "$SMOKE_DIR/resume.log" | tail -n 1)
restored=${stats#*restored=}; restored=${restored%% *}
executed=${stats#*executed=}; executed=${executed%% *}
total=${stats#*total=}
if [ "$restored" -lt 1 ] || [ "$executed" -ge "$total" ] ||
    [ $((restored + executed)) -ne "$total" ]; then
    echo "ci.sh: resume accounting wrong: $stats" >&2
    exit 1
fi
echo "kill-and-resume smoke: report byte-identical," \
    "restored=$restored executed=$executed total=$total"

# --- co-tenancy smoke (DESIGN.md §11): the builtin multi-tenant sweep
# --- must produce byte-identical reports across worker counts (the
# --- interleaving is a function of simulated state only, so the
# --- host-side job schedule must not leak into a single number) and
# --- across a SIGKILL crash + journal resume.
COT_DIR=build/cotenancy-smoke
rm -rf "$COT_DIR"
mkdir -p "$COT_DIR"
"$SWEEP" --builtin cotenancy-interference --jobs 2 \
    --out "$COT_DIR/j2.json" 2> /dev/null
"$SWEEP" --builtin cotenancy-interference --jobs 1 \
    --out "$COT_DIR/j1.json" 2> /dev/null
cmp "$COT_DIR/j1.json" "$COT_DIR/j2.json"
if JAVELIN_JOB_CRASH_AFTER=4 "$SWEEP" --builtin cotenancy-interference \
    --jobs 2 --checkpoint "$COT_DIR/journal.jsonl" \
    --out "$COT_DIR/crashed.json" 2> /dev/null; then
    echo "ci.sh: crash injection did not kill the co-tenancy sweep" >&2
    exit 1
fi
"$SWEEP" --builtin cotenancy-interference --jobs 2 \
    --checkpoint "$COT_DIR/journal.jsonl" --resume \
    --out "$COT_DIR/resumed.json" 2> /dev/null
cmp "$COT_DIR/j2.json" "$COT_DIR/resumed.json"
echo "co-tenancy smoke: jobs-1, jobs-2 and crash-resumed reports" \
    "byte-identical"

# --- trace-spool smoke: record a synthetic power trace alongside an
# --- in-memory CSV oracle and require the spooled binary file to
# --- decode byte-identically; then SIGKILL the recorder mid-spool via
# --- --crash-after-blocks and require recovery to yield an exact,
# --- non-trivial line-prefix of the oracle (torn-tail semantics of
# --- javelin-trace-v1; DESIGN.md §10).
TRACE=build/src/tools/javelin-trace
TRACE_DIR=build/trace-smoke
rm -rf "$TRACE_DIR"
mkdir -p "$TRACE_DIR"
"$TRACE" record --samples 50000 --out "$TRACE_DIR/clean.jtrc" \
    --csv-oracle "$TRACE_DIR/oracle.csv" > /dev/null
"$TRACE" export-csv "$TRACE_DIR/clean.jtrc" "$TRACE_DIR/clean.csv"
cmp "$TRACE_DIR/oracle.csv" "$TRACE_DIR/clean.csv"
if "$TRACE" record --samples 50000 --out "$TRACE_DIR/torn.jtrc" \
    --buffer-bytes 65536 --crash-after-blocks 10 > /dev/null 2>&1; then
    echo "ci.sh: --crash-after-blocks did not kill javelin-trace" >&2
    exit 1
fi
"$TRACE" export-csv "$TRACE_DIR/torn.jtrc" "$TRACE_DIR/torn.csv"
head -n "$(wc -l < "$TRACE_DIR/torn.csv")" "$TRACE_DIR/oracle.csv" \
    | cmp - "$TRACE_DIR/torn.csv"
torn_lines=$(wc -l < "$TRACE_DIR/torn.csv")
oracle_lines=$(wc -l < "$TRACE_DIR/oracle.csv")
if [ "$torn_lines" -le 1 ] || [ "$torn_lines" -ge "$oracle_lines" ]; then
    echo "ci.sh: torn recovery line count wrong:" \
        "$torn_lines of $oracle_lines" >&2
    exit 1
fi
echo "trace smoke: clean round trip byte-identical, torn tail" \
    "recovered $torn_lines of $oracle_lines oracle lines"

# --- capture-RSS ceiling: spooled capture must hold flat memory as
# --- the sample count scales 10x (1M -> 10M samples). The in-memory
# --- path grows ~40 B per power sample (~400 MB at 10M); the spool
# --- must stay inside its fixed double-buffer budget, so allow well
# --- under one in-memory decade of growth.
trace_rss() {
    "$TRACE" record --samples "$1" --out "$TRACE_DIR/rss.jtrc" \
        --print-rss 2>&1 > /dev/null | sed -n 's/.*max_rss_kb=//p'
}
rss_1m=$(trace_rss 1000000)
rss_10m=$(trace_rss 10000000)
rm -f "$TRACE_DIR/rss.jtrc"
if [ $((rss_10m - rss_1m)) -gt 65536 ]; then
    echo "ci.sh: spooled capture RSS grew ${rss_1m}kB -> ${rss_10m}kB" \
        "over a 10x sample scale" >&2
    exit 1
fi
echo "rss ceiling: 1M samples ${rss_1m}kB, 10M samples ${rss_10m}kB"

# --- dispatch-mode gates: the same suite — including the call-dense
# --- differentials of tests/test_interp_diff.cc (call_heavy across all
# --- tiers and heaps) — must hold with the batched interpreter fast
# --- path disabled (the per-op oracle that the differential fuzzers
# --- compare against; its goldens must match the fast path's bit for
# --- bit), and in the portable switch-dispatch build without computed
# --- goto.
JAVELIN_INTERP_NO_FAST_PATH=1 ctest --test-dir build \
    --output-on-failure -j
cmake -B build-fallback -S . \
    -DCMAKE_CXX_FLAGS="-DJAVELIN_NO_COMPUTED_GOTO"
cmake --build build-fallback -j
ctest --test-dir build-fallback --output-on-failure -j

# --- sanitizer gate (skippable for quick iteration)
if [ "${JAVELIN_SKIP_ASAN:-0}" = "1" ]; then
    echo "ci.sh: JAVELIN_SKIP_ASAN=1, skipping the sanitizer gate"
else
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    cmake --build build-asan -j
    ctest --test-dir build-asan --output-on-failure -j
fi

# --- perf gate (skippable for quick correctness-only runs)
if [ "${JAVELIN_SKIP_BENCH:-0}" = "1" ]; then
    echo "ci.sh: JAVELIN_SKIP_BENCH=1, skipping the perf gate"
    exit 0
fi

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j --target micro_sim --target micro_gc \
    --target micro_trace
# Three full passes of each suite: every gate below takes the
# per-benchmark best of the three (compare_bench.py merges them), since
# a loaded host can depress any single run by well over the 10 %
# regression budget.
for i in 1 2 3; do
    ./build-release/bench/micro_sim --benchmark_format=json \
        --benchmark_min_time=1 > "BENCH_sim_$i.json"
    ./build-release/bench/micro_gc --benchmark_format=json \
        --benchmark_min_time=1 > "BENCH_gc_$i.json"
    ./build-release/bench/micro_trace --benchmark_format=json \
        --benchmark_min_time=1 > "BENCH_trace_$i.json"
done
if command -v python3 > /dev/null 2>&1; then
    # Trajectory context (non-gating): speedup over the pre-fast-path
    # simulator kept from before DESIGN.md §5c landed.
    python3 scripts/compare_bench.py bench/BENCH_sim.pre_fast_path.json \
        BENCH_sim_1.json BENCH_sim_2.json BENCH_sim_3.json \
        --max-regress 1.0
    # The gates: no more than 10 % below the committed baselines.
    python3 scripts/compare_bench.py bench/BENCH_sim.baseline.json \
        BENCH_sim_1.json BENCH_sim_2.json BENCH_sim_3.json \
        --max-regress 0.10
    python3 scripts/compare_bench.py bench/BENCH_gc.baseline.json \
        BENCH_gc_1.json BENCH_gc_2.json BENCH_gc_3.json \
        --max-regress 0.10
    # Co-tenancy gate (DESIGN.md §11): BM_EndToEndMultiTenant against
    # its own committed baseline (the other micro_sim gates are in
    # BENCH_sim.baseline.json, which predates the benchmark and is
    # deliberately left untouched).
    python3 scripts/compare_bench.py bench/BENCH_cotenancy.baseline.json \
        BENCH_sim_1.json BENCH_sim_2.json BENCH_sim_3.json \
        --max-regress 0.10
    # Tentpole perf targets (DESIGN.md §5g), over the same three runs:
    # BM_EndToEndCallHeavy against its committed pre-trace-v2 capture
    # and BM_EndToEndExperiment >= 50M bytecodes/s outright. The
    # measured call-path speedup is ~1.28-1.29x (paired interleaved
    # runs; see §5g); the gate sits at 1.15x as a regression tripwire
    # below it, same policy as the §5f mutator gate, because the
    # shared host cannot reproduce a point estimate run-to-run.
    python3 scripts/compare_bench.py bench/BENCH_sim.pre_trace_v2.json \
        BENCH_sim_1.json BENCH_sim_2.json BENCH_sim_3.json \
        --no-default-gates \
        --min-speedup BM_EndToEndCallHeavy.bytecodes_per_sec=1.15 \
        --min-rate BM_EndToEndExperiment.bytecodes_per_sec=50e6
    # Trace-spool gates (DESIGN.md §10): per-sample spool append cost
    # and the end-to-end pipeline with power + perf spooling attached.
    # The 50M floor is the same one the unspooled pipeline carries —
    # spooling must be free at the experiment level.
    python3 scripts/compare_bench.py bench/BENCH_trace.baseline.json \
        BENCH_trace_1.json BENCH_trace_2.json BENCH_trace_3.json \
        --max-regress 0.10 \
        --min-rate BM_EndToEndExperimentSpooled.bytecodes_per_sec=50e6
else
    echo "ci.sh: python3 not found, skipping benchmark comparison" >&2
fi

# --- bench history: archive one full JSON run of each suite into the
# --- local javelin-kv result store, keyed by UTC timestamp. The store
# --- is gitignored — per-host trend data for javelin-kv get/keys, not
# --- a gate.
KV=build/src/tools/javelin-kv
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
for suite in sim gc trace; do
    "$KV" put BENCH_HISTORY.kv "bench/$stamp/$suite" \
        "@BENCH_${suite}_1.json"
done
echo "bench history: archived sim/gc/trace under bench/$stamp"

# --- statistical energy gate: the pinned-seed ensemble must show no
# --- statistically significant energy/EDP regression against the
# --- committed baseline (Holm-corrected permutation test, not a fixed
# --- threshold; the fixed-threshold micro-benchmark gates above are
# --- unchanged). Regenerate the baseline only after intentional model
# --- changes: build-release/bench/ensemble_report --out
# --- bench/ENSEMBLE_energy.baseline.json, then
# --- scripts/make_ensemble_fixtures.py.
cmake --build build-release -j --target ensemble_report
./build-release/bench/ensemble_report --out ENSEMBLE_current.json
if command -v python3 > /dev/null 2>&1; then
    python3 scripts/compare_ensemble.py \
        bench/ENSEMBLE_energy.baseline.json ENSEMBLE_current.json
else
    echo "ci.sh: python3 not found, skipping the ensemble gate" >&2
fi
