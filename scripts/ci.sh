#!/bin/sh
# Tier-1 gate: configure, build, and run the full test suite; then the
# suite again in the two alternate dispatch modes (per-op interpreter
# oracle via JAVELIN_INTERP_NO_FAST_PATH, and the switch-dispatch
# fallback build without computed goto); then a
# Debug ASan+UBSan pass over the same suite (the threaded-dispatch and
# SoA hot paths lean on raw pointers and computed goto, exactly where
# sanitizers earn their keep); then the perf gate: Release builds of
# bench/micro_sim and bench/micro_gc whose gated throughput metrics
# must stay within 10 % of the committed baselines (see
# scripts/compare_bench.py); and finally the statistical energy gate:
# a Release ensemble run over the pinned seed list, compared against
# bench/ENSEMBLE_energy.baseline.json for statistically significant
# energy/EDP regressions (see scripts/compare_ensemble.py). Mirrors
# what CI runs; keep it green before pushing.
set -eu

cd "$(dirname "$0")/.."

# --- gate-tooling self-tests and the fixture pair: the comparison
# --- scripts check their own logic, then the ensemble gate is
# --- exercised in both directions against committed fixtures (a
# --- healthy re-run must pass, an injected +5 % energy regression must
# --- fail) without running a single experiment.
if command -v python3 > /dev/null 2>&1; then
    python3 scripts/compare_bench.py --self-test
    python3 scripts/compare_ensemble.py --self-test
    python3 scripts/compare_ensemble.py tests/fixtures/ensemble_baseline.json \
        tests/fixtures/ensemble_ok.json
    if python3 scripts/compare_ensemble.py \
        tests/fixtures/ensemble_baseline.json \
        tests/fixtures/ensemble_regressed.json > /dev/null 2>&1; then
        echo "ci.sh: ensemble gate FAILED to flag the regressed fixture" >&2
        exit 1
    fi
    echo "ensemble gate fixtures: both verdicts exercised"
fi

# --- correctness gate (includes the differential fuzzers and the
# --- golden-run regressions; see tests/test_cache_diff.cc and
# --- tests/test_golden_runs.cc)
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

# --- kill-and-resume smoke: SIGKILL javelin-sweep mid-run via the
# --- JAVELIN_JOB_CRASH_AFTER hook, resume from the journal, and
# --- require (a) the resumed report byte-identical to an
# --- uninterrupted run and (b) the resume restored work and executed
# --- strictly fewer shards than the sweep holds — proof the
# --- checkpoint carried results across a hard crash.
SWEEP=build/src/tools/javelin-sweep
SMOKE=examples/scenarios/smoke.scenario.json
SMOKE_DIR=build/smoke
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
"$SWEEP" "$SMOKE" --jobs 2 --out "$SMOKE_DIR/clean.json" \
    2> /dev/null
if JAVELIN_JOB_CRASH_AFTER=3 "$SWEEP" "$SMOKE" --jobs 2 \
    --checkpoint "$SMOKE_DIR/journal.jsonl" \
    --out "$SMOKE_DIR/crashed.json" 2> /dev/null; then
    echo "ci.sh: crash injection did not kill javelin-sweep" >&2
    exit 1
fi
"$SWEEP" "$SMOKE" --jobs 2 --checkpoint "$SMOKE_DIR/journal.jsonl" \
    --resume --out "$SMOKE_DIR/resumed.json" \
    2> "$SMOKE_DIR/resume.log"
cmp "$SMOKE_DIR/clean.json" "$SMOKE_DIR/resumed.json"
stats=$(grep 'checkpoint: restored=' "$SMOKE_DIR/resume.log" | tail -n 1)
restored=${stats#*restored=}; restored=${restored%% *}
executed=${stats#*executed=}; executed=${executed%% *}
total=${stats#*total=}
if [ "$restored" -lt 1 ] || [ "$executed" -ge "$total" ] ||
    [ $((restored + executed)) -ne "$total" ]; then
    echo "ci.sh: resume accounting wrong: $stats" >&2
    exit 1
fi
echo "kill-and-resume smoke: report byte-identical," \
    "restored=$restored executed=$executed total=$total"

# --- dispatch-mode gates: the same suite — including the call-dense
# --- differentials of tests/test_interp_diff.cc (call_heavy across all
# --- tiers and heaps) — must hold with the batched interpreter fast
# --- path disabled (the per-op oracle that the differential fuzzers
# --- compare against; its goldens must match the fast path's bit for
# --- bit), and in the portable switch-dispatch build without computed
# --- goto.
JAVELIN_INTERP_NO_FAST_PATH=1 ctest --test-dir build \
    --output-on-failure -j
cmake -B build-fallback -S . \
    -DCMAKE_CXX_FLAGS="-DJAVELIN_NO_COMPUTED_GOTO"
cmake --build build-fallback -j
ctest --test-dir build-fallback --output-on-failure -j

# --- sanitizer gate (skippable for quick iteration)
if [ "${JAVELIN_SKIP_ASAN:-0}" = "1" ]; then
    echo "ci.sh: JAVELIN_SKIP_ASAN=1, skipping the sanitizer gate"
else
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    cmake --build build-asan -j
    ctest --test-dir build-asan --output-on-failure -j
fi

# --- perf gate (skippable for quick correctness-only runs)
if [ "${JAVELIN_SKIP_BENCH:-0}" = "1" ]; then
    echo "ci.sh: JAVELIN_SKIP_BENCH=1, skipping the perf gate"
    exit 0
fi

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j --target micro_sim --target micro_gc
# Three full passes of each suite: every gate below takes the
# per-benchmark best of the three (compare_bench.py merges them), since
# a loaded host can depress any single run by well over the 10 %
# regression budget.
for i in 1 2 3; do
    ./build-release/bench/micro_sim --benchmark_format=json \
        --benchmark_min_time=1 > "BENCH_sim_$i.json"
    ./build-release/bench/micro_gc --benchmark_format=json \
        --benchmark_min_time=1 > "BENCH_gc_$i.json"
done
if command -v python3 > /dev/null 2>&1; then
    # Trajectory context (non-gating): speedup over the pre-fast-path
    # simulator kept from before DESIGN.md §5c landed.
    python3 scripts/compare_bench.py bench/BENCH_sim.pre_fast_path.json \
        BENCH_sim_1.json BENCH_sim_2.json BENCH_sim_3.json \
        --max-regress 1.0
    # The gates: no more than 10 % below the committed baselines.
    python3 scripts/compare_bench.py bench/BENCH_sim.baseline.json \
        BENCH_sim_1.json BENCH_sim_2.json BENCH_sim_3.json \
        --max-regress 0.10
    python3 scripts/compare_bench.py bench/BENCH_gc.baseline.json \
        BENCH_gc_1.json BENCH_gc_2.json BENCH_gc_3.json \
        --max-regress 0.10
    # Tentpole perf targets (DESIGN.md §5g), over the same three runs:
    # BM_EndToEndCallHeavy against its committed pre-trace-v2 capture
    # and BM_EndToEndExperiment >= 50M bytecodes/s outright. The
    # measured call-path speedup is ~1.28-1.29x (paired interleaved
    # runs; see §5g); the gate sits at 1.15x as a regression tripwire
    # below it, same policy as the §5f mutator gate, because the
    # shared host cannot reproduce a point estimate run-to-run.
    python3 scripts/compare_bench.py bench/BENCH_sim.pre_trace_v2.json \
        BENCH_sim_1.json BENCH_sim_2.json BENCH_sim_3.json \
        --no-default-gates \
        --min-speedup BM_EndToEndCallHeavy.bytecodes_per_sec=1.15 \
        --min-rate BM_EndToEndExperiment.bytecodes_per_sec=50e6
else
    echo "ci.sh: python3 not found, skipping benchmark comparison" >&2
fi

# --- statistical energy gate: the pinned-seed ensemble must show no
# --- statistically significant energy/EDP regression against the
# --- committed baseline (Holm-corrected permutation test, not a fixed
# --- threshold; the fixed-threshold micro-benchmark gates above are
# --- unchanged). Regenerate the baseline only after intentional model
# --- changes: build-release/bench/ensemble_report --out
# --- bench/ENSEMBLE_energy.baseline.json, then
# --- scripts/make_ensemble_fixtures.py.
cmake --build build-release -j --target ensemble_report
./build-release/bench/ensemble_report --out ENSEMBLE_current.json
if command -v python3 > /dev/null 2>&1; then
    python3 scripts/compare_ensemble.py \
        bench/ENSEMBLE_energy.baseline.json ENSEMBLE_current.json
else
    echo "ci.sh: python3 not found, skipping the ensemble gate" >&2
fi
