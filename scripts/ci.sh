#!/bin/sh
# Tier-1 gate: configure, build, and run the full test suite.
# Mirrors what CI runs; keep it green before pushing.
set -eu

cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j
