#!/usr/bin/env python3
"""Compare a fresh micro_sim run against a committed benchmark baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--max-regress FRAC]

Both files are google-benchmark ``--benchmark_format=json`` output. The
gate metric is the ``bytecodes_per_sec`` rate counter of
``BM_EndToEndExperiment`` (host-side simulation throughput, the perf
trajectory of ROADMAP.md); the remaining benchmarks are reported for
context but do not gate, since nanosecond-scale micro-benchmarks are too
noisy for a hard threshold.

Exits non-zero when the gate metric regresses more than ``--max-regress``
(default 10 %) below the baseline.
"""

import argparse
import json
import sys

GATE_BENCH = "BM_EndToEndExperiment"
GATE_COUNTER = "bytecodes_per_sec"


def load_rates(path):
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        rates[bench["name"]] = bench
    return rates


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="maximum allowed fractional regression "
                         "of the gate metric (default 0.10)")
    args = ap.parse_args()

    base = load_rates(args.baseline)
    cur = load_rates(args.current)

    # Context table: every benchmark present in both runs.
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        if "real_time" in b and "real_time" in c and b["real_time"] > 0:
            ratio = b["real_time"] / c["real_time"]
            print(f"  {name:<32} {b['real_time']:>12.2f} -> "
                  f"{c['real_time']:>12.2f} {b.get('time_unit', 'ns')}"
                  f"  ({ratio:.2f}x)")

    try:
        base_rate = base[GATE_BENCH][GATE_COUNTER]
        cur_rate = cur[GATE_BENCH][GATE_COUNTER]
    except KeyError:
        print(f"error: {GATE_BENCH}.{GATE_COUNTER} missing from "
              f"baseline or current run", file=sys.stderr)
        return 2

    ratio = cur_rate / base_rate
    print(f"\n{GATE_BENCH} {GATE_COUNTER}: "
          f"baseline {base_rate / 1e6:.2f}M, current {cur_rate / 1e6:.2f}M "
          f"({ratio:.2f}x baseline)")

    floor = 1.0 - args.max_regress
    if ratio < floor:
        print(f"FAIL: simulation throughput regressed below "
              f"{floor:.2f}x of the committed baseline", file=sys.stderr)
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
