#!/usr/bin/env python3
"""Compare a fresh micro-benchmark run against a committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--max-regress FRAC]

Both files are google-benchmark ``--benchmark_format=json`` output
(bench/micro_sim or bench/micro_gc). The gated metrics are the
throughput counters of the hot-path benchmarks:

  * BM_EndToEndExperiment   bytecodes_per_sec (the ROADMAP perf
    trajectory: host-side simulation throughput of a full experiment)
  * BM_EndToEndGcHeavy      bytecodes_per_sec (GC-dominated pipeline:
    pmd under SemiSpace at the tightest paper heap, the configuration
    the batched GC fast paths target)
  * BM_EndToEndMutatorHeavy bytecodes_per_sec (mutator-dominated
    pipeline: compress at a generous heap, the configuration the
    execute-batching interpreter fast path targets)
  * BM_InterpreterDispatch  bytecodes_per_sec (interpreted-tier
    dispatch + cost-table hot path in isolation)
  * BM_CacheAccess/{14,18,24}  items_per_second (the SoA cache model)
  * BM_GcMark / BM_GcEvacuate / BM_GcSweep  items_per_second (the
    three GC phase drains in isolation; see bench/micro_gc.cpp)

A gate missing from the *baseline* is skipped with a note — older
committed baselines predate the newer benchmarks — but a gate present
in the baseline and missing from the current run is an error. The
remaining benchmarks are reported for context only, since
nanosecond-scale micro-benchmarks are too noisy for a hard threshold.

Exits non-zero when any gated metric regresses more than
``--max-regress`` (default 10 %) below the baseline.
"""

import argparse
import json
import sys

GATES = [
    ("BM_EndToEndExperiment", "bytecodes_per_sec"),
    ("BM_EndToEndGcHeavy", "bytecodes_per_sec"),
    ("BM_EndToEndMutatorHeavy", "bytecodes_per_sec"),
    ("BM_InterpreterDispatch", "bytecodes_per_sec"),
    ("BM_CacheAccess/14", "items_per_second"),
    ("BM_CacheAccess/18", "items_per_second"),
    ("BM_CacheAccess/24", "items_per_second"),
    ("BM_GcMark", "items_per_second"),
    ("BM_GcEvacuate", "items_per_second"),
    ("BM_GcSweep", "items_per_second"),
]


def load_rates(path):
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        rates[bench["name"]] = bench
    return rates


def gate(base, cur, max_regress, out=sys.stdout):
    """Apply the gates to two loaded rate maps; returns the exit code."""
    floor = 1.0 - max_regress
    gated = 0
    failed = []
    print(file=out)
    for bench, counter in GATES:
        if bench not in base or counter not in base[bench]:
            print(f"  {bench}.{counter}: not in baseline, skipped",
                  file=out)
            continue
        if bench not in cur or counter not in cur[bench]:
            print(f"error: gated metric {bench}.{counter} present in "
                  f"the baseline but missing from the current run",
                  file=sys.stderr)
            return 2
        base_rate = base[bench][counter]
        cur_rate = cur[bench][counter]
        ratio = cur_rate / base_rate
        verdict = "ok" if ratio >= floor else "REGRESSED"
        print(f"  {bench}.{counter}: baseline {base_rate / 1e6:.2f}M, "
              f"current {cur_rate / 1e6:.2f}M ({ratio:.2f}x) {verdict}",
              file=out)
        gated += 1
        if ratio < floor:
            failed.append(f"{bench}.{counter}")

    if gated == 0:
        print("error: no gated metric present in both runs",
              file=sys.stderr)
        return 2
    if failed:
        print(f"FAIL: {', '.join(failed)} regressed below "
              f"{floor:.2f}x of the committed baseline", file=sys.stderr)
        return 1
    print(f"OK: all {gated} gated metrics within budget", file=out)
    return 0


def self_test():
    """Unit checks on the gating logic; exits nonzero on failure."""
    import contextlib
    import io

    def rates(value):
        return {name: {counter: value} for name, counter in GATES}

    def quiet_gate(base, cur, max_regress):
        sink = io.StringIO()
        with contextlib.redirect_stderr(sink):
            return gate(base, cur, max_regress, out=sink)

    checks = [
        ("equal rates pass", quiet_gate(rates(1e6), rates(1e6),
                                        0.10) == 0),
        ("5% regression passes a 10% gate",
         quiet_gate(rates(1e6), rates(0.95e6), 0.10) == 0),
        ("15% regression fails a 10% gate",
         quiet_gate(rates(1e6), rates(0.85e6), 0.10) == 1),
        ("improvement passes", quiet_gate(rates(1e6), rates(2e6),
                                          0.10) == 0),
        ("missing current metric is an error",
         quiet_gate(rates(1e6), {}, 0.10) == 2),
        ("empty baseline is an error", quiet_gate({}, rates(1e6),
                                                  0.10) == 2),
    ]
    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"self-test FAILED: {failed}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(checks)} checks)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="maximum allowed fractional regression "
                         "of each gated metric (default 0.10)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current runs are required")

    base = load_rates(args.baseline)
    cur = load_rates(args.current)

    # Context table: every benchmark present in both runs.
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        if "real_time" in b and "real_time" in c and b["real_time"] > 0:
            ratio = b["real_time"] / c["real_time"]
            print(f"  {name:<32} {b['real_time']:>12.2f} -> "
                  f"{c['real_time']:>12.2f} {b.get('time_unit', 'ns')}"
                  f"  ({ratio:.2f}x)")

    return gate(base, cur, args.max_regress)


if __name__ == "__main__":
    sys.exit(main())
