#!/usr/bin/env python3
"""Compare a fresh micro-benchmark run against a committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json... [--max-regress FRAC]

Both files are google-benchmark ``--benchmark_format=json`` output
(bench/micro_sim or bench/micro_gc). Several CURRENT runs may be given;
they are merged best-of-N per benchmark (the run with the highest gated
counter wins), which is how ci.sh takes best-of-3 on a loaded host.

Beyond the regression gates below, two requirement flags support the
tentpole perf targets (repeatable, both of the form NAME.counter=VALUE):

  --min-speedup  current/baseline of that counter must be >= VALUE
  --min-rate     the current counter itself must be >= VALUE
  --no-default-gates  apply only the requirement flags (used with a
                      benchmark_filter'd current run that does not
                      contain every default gate)

The gated metrics are the throughput counters of the hot-path
benchmarks:

  * BM_EndToEndExperiment   bytecodes_per_sec (the ROADMAP perf
    trajectory: host-side simulation throughput of a full experiment)
  * BM_EndToEndGcHeavy      bytecodes_per_sec (GC-dominated pipeline:
    pmd under SemiSpace at the tightest paper heap, the configuration
    the batched GC fast paths target)
  * BM_EndToEndMutatorHeavy bytecodes_per_sec (mutator-dominated
    pipeline: compress at a generous heap, the configuration the
    execute-batching interpreter fast path targets)
  * BM_InterpreterDispatch  bytecodes_per_sec (interpreted-tier
    dispatch + cost-table hot path in isolation)
  * BM_CacheAccess/{14,18,24}  items_per_second (the SoA cache model)
  * BM_GcMark / BM_GcEvacuate / BM_GcSweep  items_per_second (the
    three GC phase drains in isolation; see bench/micro_gc.cpp)
  * BM_TraceCapture         items_per_second (per-sample append cost
    of the async trace spool; see bench/micro_trace.cpp)
  * BM_EndToEndExperimentSpooled  bytecodes_per_sec (the end-to-end
    pipeline with power + perf spooling attached — capture must stay
    free at the experiment level)
  * BM_EndToEndMultiTenant  bytecodes_per_sec (two co-tenant VMs
    interleaved at quantum granularity serving Poisson traffic; the
    slice scheduler + per-tenant attribution hot path — gated against
    bench/BENCH_cotenancy.baseline.json)

A gate missing from the *baseline* is skipped with a note — older
committed baselines predate the newer benchmarks — but a gate present
in the baseline and missing from the current run is an error. The
remaining benchmarks are reported for context only, since
nanosecond-scale micro-benchmarks are too noisy for a hard threshold.

Exits non-zero when any gated metric regresses more than
``--max-regress`` (default 10 %) below the baseline.
"""

import argparse
import json
import sys

GATES = [
    ("BM_EndToEndExperiment", "bytecodes_per_sec"),
    ("BM_EndToEndCallHeavy", "bytecodes_per_sec"),
    ("BM_EndToEndGcHeavy", "bytecodes_per_sec"),
    ("BM_EndToEndMutatorHeavy", "bytecodes_per_sec"),
    ("BM_InterpreterDispatch", "bytecodes_per_sec"),
    ("BM_CacheAccess/14", "items_per_second"),
    ("BM_CacheAccess/18", "items_per_second"),
    ("BM_CacheAccess/24", "items_per_second"),
    ("BM_GcMark", "items_per_second"),
    ("BM_GcEvacuate", "items_per_second"),
    ("BM_GcSweep", "items_per_second"),
    ("BM_TraceCapture", "items_per_second"),
    ("BM_EndToEndExperimentSpooled", "bytecodes_per_sec"),
    ("BM_EndToEndMultiTenant", "bytecodes_per_sec"),
]


"""Throughput counters a benchmark may carry, used to rank best-of-N
runs of one benchmark (higher is better; real_time breaks ties for
benchmarks with no rate counter)."""
RATE_COUNTERS = ("bytecodes_per_sec", "items_per_second")


def load_rates(path):
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        rates[bench["name"]] = bench
    return rates


def merge_best(runs):
    """Best-of-N merge: per benchmark, keep the fastest entry."""

    def score(entry):
        for counter in RATE_COUNTERS:
            if counter in entry:
                return entry[counter]
        return -entry.get("real_time", 0.0)

    merged = {}
    for run in runs:
        for name, entry in run.items():
            if name not in merged or score(entry) > score(merged[name]):
                merged[name] = entry
    return merged


def parse_requirement(spec):
    """Parse a NAME.counter=VALUE requirement flag."""
    lhs, _, value = spec.rpartition("=")
    bench, _, counter = lhs.rpartition(".")
    if not bench or not counter or not value:
        raise ValueError(f"bad requirement spec: {spec!r} "
                         f"(want NAME.counter=VALUE)")
    return bench, counter, float(value)


def gate(base, cur, max_regress, out=sys.stdout, min_speedup=(),
         min_rate=(), default_gates=True):
    """Apply the gates to two loaded rate maps; returns the exit code."""
    floor = 1.0 - max_regress
    gated = 0
    failed = []
    print(file=out)
    for bench, counter in (GATES if default_gates else []):
        if bench not in base or counter not in base[bench]:
            print(f"  {bench}.{counter}: not in baseline, skipped",
                  file=out)
            continue
        if bench not in cur or counter not in cur[bench]:
            print(f"error: gated metric {bench}.{counter} present in "
                  f"the baseline but missing from the current run",
                  file=sys.stderr)
            return 2
        base_rate = base[bench][counter]
        cur_rate = cur[bench][counter]
        ratio = cur_rate / base_rate
        verdict = "ok" if ratio >= floor else "REGRESSED"
        print(f"  {bench}.{counter}: baseline {base_rate / 1e6:.2f}M, "
              f"current {cur_rate / 1e6:.2f}M ({ratio:.2f}x) {verdict}",
              file=out)
        gated += 1
        if ratio < floor:
            failed.append(f"{bench}.{counter}")

    # Requirement gates: hard floors, not regression tolerances. A
    # metric missing from either side is an error — these name specific
    # targets, so a silently skipped one would be a green lie.
    for bench, counter, need in min_speedup:
        if bench not in base or counter not in base[bench] or \
                bench not in cur or counter not in cur[bench]:
            print(f"error: --min-speedup metric {bench}.{counter} "
                  f"missing from the baseline or the current run",
                  file=sys.stderr)
            return 2
        ratio = cur[bench][counter] / base[bench][counter]
        verdict = "ok" if ratio >= need else "BELOW TARGET"
        print(f"  {bench}.{counter}: {ratio:.3f}x over baseline "
              f"(target >= {need}x) {verdict}", file=out)
        gated += 1
        if ratio < need:
            failed.append(f"{bench}.{counter} speedup {ratio:.3f} "
                          f"< {need}")
    for bench, counter, need in min_rate:
        if bench not in cur or counter not in cur[bench]:
            print(f"error: --min-rate metric {bench}.{counter} missing "
                  f"from the current run", file=sys.stderr)
            return 2
        rate = cur[bench][counter]
        verdict = "ok" if rate >= need else "BELOW TARGET"
        print(f"  {bench}.{counter}: {rate / 1e6:.2f}M "
              f"(target >= {need / 1e6:.2f}M) {verdict}", file=out)
        gated += 1
        if rate < need:
            failed.append(f"{bench}.{counter} rate {rate:.3g} < {need:.3g}")

    if gated == 0:
        print("error: no gated metric present in both runs",
              file=sys.stderr)
        return 2
    if failed:
        print(f"FAIL: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"OK: all {gated} gated metrics within budget", file=out)
    return 0


def self_test():
    """Unit checks on the gating logic; exits nonzero on failure."""
    import contextlib
    import io

    def rates(value):
        return {name: {counter: value} for name, counter in GATES}

    def quiet_gate(base, cur, max_regress, **kw):
        sink = io.StringIO()
        with contextlib.redirect_stderr(sink):
            return gate(base, cur, max_regress, out=sink, **kw)

    speed = [("BM_EndToEndCallHeavy", "bytecodes_per_sec", 1.3)]
    floor50 = [("BM_EndToEndExperiment", "bytecodes_per_sec", 50e6)]
    checks = [
        ("equal rates pass", quiet_gate(rates(1e6), rates(1e6),
                                        0.10) == 0),
        ("5% regression passes a 10% gate",
         quiet_gate(rates(1e6), rates(0.95e6), 0.10) == 0),
        ("15% regression fails a 10% gate",
         quiet_gate(rates(1e6), rates(0.85e6), 0.10) == 1),
        ("improvement passes", quiet_gate(rates(1e6), rates(2e6),
                                          0.10) == 0),
        ("missing current metric is an error",
         quiet_gate(rates(1e6), {}, 0.10) == 2),
        ("empty baseline is an error", quiet_gate({}, rates(1e6),
                                                  0.10) == 2),
        ("1.4x speedup passes a 1.3x requirement",
         quiet_gate(rates(1e6), rates(1.4e6), 0.10, min_speedup=speed,
                    default_gates=False) == 0),
        ("1.2x speedup fails a 1.3x requirement",
         quiet_gate(rates(1e6), rates(1.2e6), 0.10, min_speedup=speed,
                    default_gates=False) == 1),
        ("rate above an absolute floor passes",
         quiet_gate(rates(1e6), rates(55e6), 0.10, min_rate=floor50,
                    default_gates=False) == 0),
        ("rate below an absolute floor fails",
         quiet_gate(rates(1e6), rates(45e6), 0.10, min_rate=floor50,
                    default_gates=False) == 1),
        ("requirement metric missing from current is an error",
         quiet_gate(rates(1e6), {}, 0.10, min_rate=floor50,
                    default_gates=False) == 2),
        ("best-of-N merge keeps the fastest run",
         merge_best([rates(1e6), rates(3e6),
                     rates(2e6)])["BM_EndToEndExperiment"]
         ["bytecodes_per_sec"] == 3e6),
        ("requirement spec parses",
         parse_requirement("BM_EndToEndCallHeavy.bytecodes_per_sec=1.3")
         == ("BM_EndToEndCallHeavy", "bytecodes_per_sec", 1.3)),
    ]
    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"self-test FAILED: {failed}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(checks)} checks)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="*")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="maximum allowed fractional regression "
                         "of each gated metric (default 0.10)")
    ap.add_argument("--min-speedup", action="append", default=[],
                    metavar="NAME.counter=RATIO",
                    help="require current/baseline of that counter to "
                         "be at least RATIO (repeatable)")
    ap.add_argument("--min-rate", action="append", default=[],
                    metavar="NAME.counter=RATE",
                    help="require the current counter to be at least "
                         "RATE (repeatable)")
    ap.add_argument("--no-default-gates", action="store_true",
                    help="apply only the --min-speedup/--min-rate "
                         "requirements, not the regression gate list")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current runs are required")

    base = load_rates(args.baseline)
    cur = merge_best([load_rates(p) for p in args.current])
    if len(args.current) > 1:
        print(f"  (best-of-{len(args.current)} merge of "
              f"{', '.join(args.current)})")

    # Context table: every benchmark present in both runs.
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        if "real_time" in b and "real_time" in c and b["real_time"] > 0:
            ratio = b["real_time"] / c["real_time"]
            print(f"  {name:<32} {b['real_time']:>12.2f} -> "
                  f"{c['real_time']:>12.2f} {b.get('time_unit', 'ns')}"
                  f"  ({ratio:.2f}x)")

    return gate(base, cur, args.max_regress,
                min_speedup=[parse_requirement(s)
                             for s in args.min_speedup],
                min_rate=[parse_requirement(s) for s in args.min_rate],
                default_gates=not args.no_default_gates)


if __name__ == "__main__":
    sys.exit(main())
