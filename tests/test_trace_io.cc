/**
 * @file
 * Tests for trace CSV export/import round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/trace_io.hh"

using namespace javelin;
using namespace javelin::core;

namespace {

PowerTrace
sampleTrace()
{
    PowerTrace t;
    for (int i = 0; i < 5; ++i) {
        PowerSample s;
        s.tick = static_cast<Tick>(i) * 40 * kTicksPerMicro;
        s.windowTicks = i == 2 ? 0 : 40 * kTicksPerMicro;
        s.cpuWatts = 10.0 + i * 0.5;
        s.memWatts = 0.25 + i * 0.01;
        s.component = i % 2 ? ComponentId::Gc : ComponentId::App;
        t.push_back(s);
    }
    return t;
}

} // namespace

TEST(TraceIo, PowerCsvHasHeaderAndRows)
{
    std::ostringstream os;
    writePowerCsv(os, sampleTrace());
    const std::string csv = os.str();
    EXPECT_NE(csv.find("tick,us,window_ticks,cpu_watts,mem_watts,"
                       "component"),
              std::string::npos);
    EXPECT_NE(csv.find(",GC"), std::string::npos);
    EXPECT_NE(csv.find(",App"), std::string::npos);
    // 1 header + 5 data rows
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
}

TEST(TraceIo, PowerRoundTrip)
{
    const PowerTrace original = sampleTrace();
    std::stringstream ss;
    writePowerCsv(ss, original);
    const PowerTrace back = readPowerCsv(ss);
    ASSERT_EQ(back.size(), original.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].tick, original[i].tick);
        EXPECT_EQ(back[i].windowTicks, original[i].windowTicks);
        EXPECT_NEAR(back[i].cpuWatts, original[i].cpuWatts, 1e-9);
        EXPECT_NEAR(back[i].memWatts, original[i].memWatts, 1e-9);
        EXPECT_EQ(back[i].component, original[i].component);
    }
}

TEST(TraceIo, PowerRoundTripIsExact)
{
    // Values with no finite decimal expansion: the writer emits the
    // shortest string that parses back to the same bits, so the
    // round trip must be EXACT equality, not near-equality.
    PowerTrace original;
    for (int i = 1; i <= 200; ++i) {
        PowerSample s;
        s.tick = static_cast<Tick>(i) * 40 * kTicksPerMicro;
        s.windowTicks = 40 * kTicksPerMicro;
        s.cpuWatts = 1.0 / 3.0 * i + 0.1;
        s.memWatts = 2.0 / 7.0 * i;
        s.component = static_cast<ComponentId>(i % kNumComponents);
        original.push_back(s);
    }
    std::stringstream ss;
    writePowerCsv(ss, original);
    const PowerTrace back = readPowerCsv(ss);
    ASSERT_EQ(back.size(), original.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].tick, original[i].tick);
        EXPECT_EQ(back[i].windowTicks, original[i].windowTicks);
        EXPECT_EQ(back[i].cpuWatts, original[i].cpuWatts)
            << "sample " << i;
        EXPECT_EQ(back[i].memWatts, original[i].memWatts)
            << "sample " << i;
        EXPECT_EQ(back[i].component, original[i].component);
    }

    // Write -> read -> write: byte-stable the second time around.
    std::stringstream ss2;
    writePowerCsv(ss2, back);
    std::stringstream ss3;
    writePowerCsv(ss3, original);
    EXPECT_EQ(ss2.str(), ss3.str());
}

TEST(TraceIo, MalformedNumericFieldDiesWithLineNumber)
{
    // Garbage in the tick column on data line 3 (file line 4): the
    // loader must die with the line number and the offending field,
    // not escape as an uncaught std::invalid_argument.
    std::istringstream is(
        "tick,us,window_ticks,cpu_watts,mem_watts,component\n"
        "1,0.1,40,2,3,App\n"
        "2,0.2,40,2,3,App\n"
        "oops,0.3,40,2,3,App\n");
    EXPECT_EXIT(readPowerCsv(is), testing::ExitedWithCode(1),
                "power CSV line 4: malformed tick field 'oops'");
}

TEST(TraceIo, MalformedDoubleFieldDiesWithLineNumber)
{
    std::istringstream is(
        "tick,us,window_ticks,cpu_watts,mem_watts,component\n"
        "1,0.1,40,2.x5,3,App\n");
    EXPECT_EXIT(readPowerCsv(is), testing::ExitedWithCode(1),
                "power CSV line 2: malformed cpu watts field '2.x5'");
}

TEST(TraceIo, MissingFieldDiesWithLineNumber)
{
    std::istringstream is(
        "tick,us,window_ticks,cpu_watts,mem_watts,component\n"
        "1,0.1,40\n");
    EXPECT_EXIT(readPowerCsv(is), testing::ExitedWithCode(1),
                "power CSV line 2: missing cpu watts field");
}

TEST(TraceIo, EmptyInputYieldsEmptyTrace)
{
    std::istringstream is("");
    EXPECT_TRUE(readPowerCsv(is).empty());
}

TEST(TraceIo, MissingHeaderDies)
{
    std::istringstream is("1,2,3,4,App\n");
    EXPECT_EXIT(readPowerCsv(is), testing::ExitedWithCode(1),
                "missing header");
}

TEST(TraceIo, MalformedRowDies)
{
    std::istringstream is(
        "tick,us,window_ticks,cpu_watts,mem_watts,component\n42\n");
    EXPECT_EXIT(readPowerCsv(is), testing::ExitedWithCode(1),
                "power CSV");
}

TEST(TraceIo, UnknownComponentDies)
{
    std::istringstream is("tick,us,window_ticks,cpu_watts,mem_watts,"
                          "component\n1,0.1,40,2,3,Nope\n");
    EXPECT_EXIT(readPowerCsv(is), testing::ExitedWithCode(1),
                "unknown component");
}

TEST(TraceIo, PerfCsvColumns)
{
    PerfTrace t;
    PerfSample s;
    s.tick = 1000;
    s.component = ComponentId::Gc;
    s.delta.cycles = 100;
    s.delta.instructions = 55;
    s.delta.l2Accesses = 10;
    s.delta.l2Misses = 5;
    t.push_back(s);

    std::ostringstream os;
    writePerfCsv(os, t);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("ipc,l2_miss_rate"), std::string::npos);
    EXPECT_NE(csv.find("GC,100,55"), std::string::npos);
    EXPECT_NE(csv.find("0.55"), std::string::npos); // IPC
    EXPECT_NE(csv.find("0.5"), std::string::npos);  // miss rate
}
