/**
 * @file
 * Tests for the seed-ensemble regression harness: determinism across
 * worker counts, seed-value (not position) keyed members, report
 * serialization, and end-to-end sensitivity to an injected model
 * change.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/ensemble.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

SweepTask
cheapCell()
{
    ExperimentConfig cfg;
    cfg.collector = jvm::CollectorKind::SemiSpace;
    cfg.heapNominalMB = 32;
    cfg.dataset = workloads::DatasetScale::Small;
    return {cfg, workloads::benchmark("_202_jess")};
}

EnsembleConfig
testConfig(std::vector<std::uint64_t> seeds)
{
    EnsembleConfig cfg;
    cfg.seeds = std::move(seeds);
    cfg.resamples = 200; // enough for a CI, cheap enough for a test
    return cfg;
}

/** The one base ensemble most tests share, computed once. */
const EnsembleCellResult &
baseResult()
{
    static const EnsembleCellResult cached = [] {
        const auto results = EnsembleRunner(testConfig({7, 8, 9}))
                                 .run({cheapCell()});
        return results.at(0);
    }();
    return cached;
}

} // namespace

TEST(Ensemble, MetricsCompleteAndOrdered)
{
    const auto &cell = baseResult();
    EXPECT_EQ(cell.failures, 0u);
    EXPECT_EQ(cell.key, "_202_jess/JikesRVM/SemiSpace/32MB/P6");
    for (const auto &name : ensembleMetricNames()) {
        const auto *m = cell.metric(name);
        ASSERT_NE(m, nullptr) << name;
        EXPECT_EQ(m->samples.size(), 3u) << name;
        EXPECT_LE(m->ci.lo, m->ci.hi) << name;
    }
    EXPECT_GT(cell.metric("total_joules")->ci.point, 0.0);
    EXPECT_GT(cell.metric("gt_total_joules")->ci.point, 0.0);
    EXPECT_EQ(cell.metric("no_such_metric"), nullptr);
}

TEST(Ensemble, SeedsProduceDistinctRuns)
{
    // The ensemble must carry real run-to-run variation, or the CIs
    // degenerate and the gate can never see past a point estimate.
    const auto &samples = baseResult().metric("total_joules")->samples;
    EXPECT_NE(samples[0], samples[1]);
    EXPECT_NE(samples[1], samples[2]);
}

TEST(Ensemble, DeterministicAcrossWorkerCounts)
{
    auto serial = testConfig({7, 8, 9});
    serial.jobs = 1;
    const auto rerun = EnsembleRunner(serial).run({cheapCell()});
    const auto &base = baseResult();
    for (const auto &name : ensembleMetricNames()) {
        const auto &a = rerun.at(0).metric(name)->samples;
        const auto &b = base.metric(name)->samples;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_DOUBLE_EQ(a[i], b[i]) << name << " seed#" << i;
    }
}

TEST(Ensemble, MemberKeyedBySeedValueNotPosition)
{
    // Running {8} alone must reproduce the middle member of {7, 8, 9}:
    // samples depend on the seed's value, so baselines survive seed
    // list extension and cell reordering.
    const auto solo = EnsembleRunner(testConfig({8})).run({cheapCell()});
    EXPECT_DOUBLE_EQ(solo.at(0).metric("total_joules")->samples.at(0),
                     baseResult().metric("total_joules")->samples.at(1));
}

TEST(Ensemble, ReportCarriesSchemaSeedsAndSamples)
{
    std::ostringstream os;
    writeEnsembleReport(os, {baseResult()}, testConfig({7, 8, 9}));
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"javelin-ensemble-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"seeds\": [7, 8, 9]"), std::string::npos);
    EXPECT_NE(json.find("_202_jess/JikesRVM/SemiSpace/32MB/P6"),
              std::string::npos);
    for (const auto &name : ensembleMetricNames())
        EXPECT_NE(json.find("\"" + name + "\""), std::string::npos)
            << name;
    EXPECT_EQ(json.find("nan"), std::string::npos)
        << "non-finite values must serialize as null";
}

TEST(Ensemble, DetectsInjectedEnergyCost)
{
    // End-to-end sensitivity: charging the HPM ISR at a DAQ-class
    // period must raise the model-exact energy of every paired member
    // (adaptive optimization off, so no indirect drift).
    SweepTask base = cheapCell();
    base.config.hpmPeriod = 40 * kTicksPerMicro;
    base.config.adaptiveOptimization = false;
    SweepTask charged = base;
    charged.config.hpmIsrCostCycles = 500.0;

    const auto results =
        EnsembleRunner(testConfig({7, 8, 9})).run({base, charged});
    const auto &free = results.at(0).metric("gt_total_joules")->samples;
    const auto &cost =
        results.at(1).metric("gt_total_joules")->samples;
    ASSERT_EQ(free.size(), cost.size());
    for (std::size_t i = 0; i < free.size(); ++i)
        EXPECT_GT(cost[i], free[i]) << "seed#" << i;
}
