/**
 * @file
 * Correctness tests for all five collectors, including a randomized
 * property suite: after any sequence of allocation, mutation and
 * collection, every object reachable from the roots must be intact
 * (scalar payloads preserved, reference structure isomorphic) and
 * garbage must eventually be reclaimed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "jvm/gc/collector.hh"
#include "jvm/gc/gencopy.hh"
#include "jvm/gc/genms.hh"
#include "jvm/gc/incremental_ms.hh"
#include "jvm/gc/marksweep.hh"
#include "jvm/gc/semispace.hh"
#include "sim/platform.hh"
#include "util/random.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

std::vector<ClassInfo>
gcClasses()
{
    std::vector<ClassInfo> classes(2);
    classes[0].id = 0;
    classes[0].name = "Node";
    classes[0].refFields = 2;
    classes[0].scalarFields = 2;
    classes[1].id = 1;
    classes[1].name = "Object[]";
    classes[1].isRefArray = true;
    return classes;
}

/** Minimal VM stand-in: a root array plus gc bracket counting. */
class TestHost : public GcHost
{
  public:
    void
    forEachRoot(const std::function<void(Address &)> &fn) override
    {
        for (Address &r : roots)
            fn(r);
    }
    void gcBegin(bool major) override { ++begins; majors += major; }
    void gcEnd(bool) override { ++ends; }

    std::vector<Address> roots;
    int begins = 0;
    int ends = 0;
    int majors = 0;
};

struct GcFixture
{
    explicit GcFixture(CollectorKind kind, std::uint64_t heap_bytes)
        : system(sim::p6Spec()), heap(heap_bytes),
          classes(gcClasses()), om(heap, system.cpu(), classes)
    {
        collector = makeCollector(kind, GcEnv{heap, om, system, host});
    }

    /** Allocate and initialize one Node; returns 0 on OOM. */
    Address
    newNode(std::int64_t v0, std::int64_t v1)
    {
        const std::uint32_t bytes = om.objectBytes(classes[0], 0);
        const Address a = collector->allocate(bytes);
        if (a == kNull)
            return kNull;
        om.initObject(a, classes[0], bytes, 0);
        collector->postInit(a);
        om.setGcBitsRaw(a, om.gcBitsRaw(a)); // no-op; keep layout honest
        heapStore(a, 0, kNull);
        heapStore(a, 1, kNull);
        om.storeScalar(a, 0, v0);
        om.storeScalar(a, 1, v1);
        return a;
    }

    /** Reference store through the mutator path (barrier included). */
    void
    heapStore(Address holder, std::uint32_t slot, Address value)
    {
        if (collector->needsWriteBarrier())
            collector->writeBarrier(holder, om.refSlotAddr(holder, slot),
                                    value);
        om.storeRef(holder, slot, value);
    }

    /** Checksum of the graph reachable from the roots (raw walk). */
    std::uint64_t
    reachableChecksum(std::size_t *count = nullptr) const
    {
        std::unordered_set<Address> seen;
        std::vector<Address> stack(host.roots.begin(), host.roots.end());
        std::uint64_t sum = 0;
        std::size_t n = 0;
        while (!stack.empty()) {
            const Address a = stack.back();
            stack.pop_back();
            if (a == kNull || !seen.insert(a).second)
                continue;
            ++n;
            EXPECT_FALSE(om.isForwardedRaw(a))
                << "reachable object left forwarded";
            sum ^= static_cast<std::uint64_t>(om.scalarRaw(a, 0)) *
                   0x9e3779b97f4a7c15ULL;
            sum += static_cast<std::uint64_t>(om.scalarRaw(a, 1));
            for (std::uint32_t i = 0; i < om.refCountRaw(a); ++i)
                stack.push_back(om.refRaw(a, i));
        }
        if (count)
            *count = n;
        return sum;
    }

    sim::System system;
    Heap heap;
    std::vector<ClassInfo> classes;
    ObjectModel om;
    TestHost host;
    std::unique_ptr<Collector> collector;
};

} // namespace

// ---------- Targeted per-collector tests ----------

TEST(SemiSpace, SurvivorsCopiedAndUpdated)
{
    GcFixture f(CollectorKind::SemiSpace, 256 * kKiB);
    const Address a = f.newNode(11, 22);
    const Address b = f.newNode(33, 44);
    f.heapStore(a, 0, b);
    f.host.roots.push_back(a);

    f.collector->collect(true);
    const Address a2 = f.host.roots[0];
    EXPECT_NE(a2, a); // moved
    EXPECT_EQ(f.om.scalarRaw(a2, 0), 11);
    const Address b2 = f.om.refRaw(a2, 0);
    EXPECT_NE(b2, b);
    EXPECT_EQ(f.om.scalarRaw(b2, 1), 44);
    EXPECT_EQ(f.collector->stats().objectsCopied, 2u);
}

TEST(SemiSpace, GarbageReclaimed)
{
    GcFixture f(CollectorKind::SemiSpace, 256 * kKiB);
    for (int i = 0; i < 100; ++i)
        f.newNode(i, i);
    f.collector->collect(true);
    EXPECT_EQ(f.collector->heapUsed(), 0u); // nothing was rooted
}

TEST(SemiSpace, AllocationTriggersCollection)
{
    GcFixture f(CollectorKind::SemiSpace, 128 * kKiB);
    for (int i = 0; i < 5000; ++i)
        ASSERT_NE(f.newNode(i, i), kNull);
    EXPECT_GT(f.host.begins, 0);
    EXPECT_EQ(f.host.begins, f.host.ends);
}

TEST(SemiSpace, OutOfMemoryOnLiveOverflow)
{
    GcFixture f(CollectorKind::SemiSpace, 128 * kKiB);
    // Keep everything live: half the heap cannot hold it.
    Address prev = kNull;
    bool oom = false;
    for (int i = 0; i < 5000 && !oom; ++i) {
        const Address n = f.newNode(i, i);
        if (n == kNull) {
            oom = true;
            break;
        }
        f.heapStore(n, 0, prev);
        prev = n;
        if (f.host.roots.empty())
            f.host.roots.push_back(n);
        else
            f.host.roots[0] = n;
    }
    EXPECT_TRUE(oom);
}

TEST(MarkSweep, ObjectsDoNotMove)
{
    GcFixture f(CollectorKind::MarkSweep, 256 * kKiB);
    const Address a = f.newNode(5, 6);
    f.host.roots.push_back(a);
    f.collector->collect(true);
    EXPECT_EQ(f.host.roots[0], a);
    EXPECT_EQ(f.om.scalarRaw(a, 0), 5);
}

TEST(MarkSweep, SweepFreesGarbageCells)
{
    GcFixture f(CollectorKind::MarkSweep, 256 * kKiB);
    const Address keep = f.newNode(1, 2);
    f.host.roots.push_back(keep);
    for (int i = 0; i < 200; ++i)
        f.newNode(i, i);
    const auto used = f.collector->heapUsed();
    f.collector->collect(true);
    EXPECT_LT(f.collector->heapUsed(), used / 4);
    EXPECT_GT(f.collector->stats().bytesFreed, 0u);
    // Mark bits are cleared after the sweep.
    EXPECT_EQ(f.om.gcBitsRaw(keep) & kMarkBit, 0u);
}

TEST(GenCopy, MinorPromotesSurvivors)
{
    GcFixture f(CollectorKind::GenCopy, 512 * kKiB);
    auto *gc = static_cast<GenCopyCollector *>(f.collector.get());
    const Address a = f.newNode(7, 8);
    EXPECT_TRUE(gc->nursery().contains(a));
    f.host.roots.push_back(a);
    f.collector->collect(false);
    const Address a2 = f.host.roots[0];
    EXPECT_TRUE(gc->matureActive().contains(a2));
    EXPECT_EQ(f.om.scalarRaw(a2, 0), 7);
    EXPECT_EQ(gc->stats().minorCollections, 1u);
}

TEST(GenCopy, WriteBarrierCatchesOldToYoung)
{
    GcFixture f(CollectorKind::GenCopy, 512 * kKiB);
    auto *gc = static_cast<GenCopyCollector *>(f.collector.get());
    // Promote one object to mature.
    const Address a = f.newNode(1, 1);
    f.host.roots.push_back(a);
    f.collector->collect(false);
    const Address old = f.host.roots[0];
    ASSERT_TRUE(gc->matureActive().contains(old));

    // Create a young object reachable ONLY through the old object.
    const Address young = f.newNode(42, 43);
    f.heapStore(old, 0, young);
    EXPECT_GT(gc->remset().size(), 0u);

    f.collector->collect(false);
    const Address promoted = f.om.refRaw(f.host.roots[0], 0);
    EXPECT_NE(promoted, kNull);
    EXPECT_TRUE(gc->matureActive().contains(promoted));
    EXPECT_EQ(f.om.scalarRaw(promoted, 0), 42);
}

TEST(GenCopy, YoungToYoungNotRecorded)
{
    GcFixture f(CollectorKind::GenCopy, 512 * kKiB);
    auto *gc = static_cast<GenCopyCollector *>(f.collector.get());
    const Address a = f.newNode(1, 1);
    const Address b = f.newNode(2, 2);
    f.heapStore(a, 0, b);
    EXPECT_EQ(gc->remset().size(), 0u);
    EXPECT_EQ(gc->stats().barrierHits, 0u);
}

TEST(GenCopy, MajorCollectsMature)
{
    GcFixture f(CollectorKind::GenCopy, 512 * kKiB);
    auto *gc = static_cast<GenCopyCollector *>(f.collector.get());
    // Promote garbage into mature, then drop it.
    for (int batch = 0; batch < 10; ++batch) {
        f.host.roots.clear();
        for (int i = 0; i < 50; ++i)
            f.host.roots.push_back(f.newNode(i, batch));
        f.collector->collect(false);
    }
    f.host.roots.clear();
    f.collector->collect(true);
    EXPECT_EQ(gc->heapUsed(), 0u);
}

TEST(GenMS, MinorPromotesIntoFreeList)
{
    GcFixture f(CollectorKind::GenMS, 512 * kKiB);
    auto *gc = static_cast<GenMSCollector *>(f.collector.get());
    const Address a = f.newNode(9, 10);
    EXPECT_TRUE(gc->nursery().contains(a));
    f.host.roots.push_back(a);
    f.collector->collect(false);
    const Address a2 = f.host.roots[0];
    EXPECT_TRUE(gc->mature().isAllocatedCell(a2));
    EXPECT_EQ(f.om.scalarRaw(a2, 1), 10);
}

TEST(GenMS, MajorSweepsMatureGarbage)
{
    GcFixture f(CollectorKind::GenMS, 512 * kKiB);
    auto *gc = static_cast<GenMSCollector *>(f.collector.get());
    for (int batch = 0; batch < 8; ++batch) {
        f.host.roots.clear();
        for (int i = 0; i < 80; ++i)
            f.host.roots.push_back(f.newNode(i, batch));
        f.collector->collect(false); // promote, then orphan next batch
    }
    const Address keep = f.host.roots[0];
    f.host.roots.clear();
    f.host.roots.push_back(keep);
    f.collector->collect(true);
    EXPECT_LT(gc->mature().usedBytes(), 4096u);
    EXPECT_EQ(f.om.scalarRaw(f.host.roots[0], 0), 0);
}

TEST(IncMS, IncrementalCycleCompletes)
{
    GcFixture f(CollectorKind::IncrementalMS, 256 * kKiB);
    auto *gc = static_cast<IncrementalMSCollector *>(f.collector.get());
    f.host.roots.push_back(f.newNode(1, 2));
    // Allocate garbage until a cycle starts and finishes.
    for (int i = 0; i < 20000; ++i)
        ASSERT_NE(f.newNode(i, i), kNull);
    EXPECT_GT(gc->stats().majorCollections, 0u);
    EXPECT_GT(gc->stats().bytesFreed, 0u);
    EXPECT_EQ(f.om.scalarRaw(f.host.roots[0], 1), 2);
}

TEST(IncMS, DijkstraBarrierPreservesHiddenObject)
{
    GcFixture f(CollectorKind::IncrementalMS, 256 * kKiB);
    auto *gc = static_cast<IncrementalMSCollector *>(f.collector.get());
    const Address holder = f.newNode(1, 1);
    f.host.roots.push_back(holder);

    // Fill until marking starts.
    while (!gc->marking())
        ASSERT_NE(f.newNode(0, 0), kNull);

    // Hide a white object behind an already-scanned root holder.
    const Address hidden = f.newNode(321, 654);
    f.heapStore(f.host.roots[0], 0, hidden);

    gc->collect(true); // finish the cycle
    const Address h = f.om.refRaw(f.host.roots[0], 0);
    ASSERT_NE(h, kNull);
    EXPECT_EQ(f.om.scalarRaw(h, 0), 321);
}

TEST(IncMS, AllocateBlackDuringMarking)
{
    GcFixture f(CollectorKind::IncrementalMS, 256 * kKiB);
    auto *gc = static_cast<IncrementalMSCollector *>(f.collector.get());
    // Find an allocation that happened while a marking cycle was still
    // in flight afterwards (an allocation can itself finish a cycle).
    for (int i = 0; i < 50000; ++i) {
        const Address a = f.newNode(5, 5);
        ASSERT_NE(a, kNull);
        if (gc->marking()) {
            EXPECT_TRUE(f.om.gcBitsRaw(a) & kMarkBit)
                << "object born white during marking";
            return;
        }
    }
    FAIL() << "marking never observed";
}

// ---------- Randomized property suite over all collectors ----------

struct GcPropertyParam
{
    CollectorKind kind;
    std::uint64_t heapKiB;
    std::uint64_t seed;
};

class GcProperty : public testing::TestWithParam<GcPropertyParam>
{
};

TEST_P(GcProperty, ReachableGraphSurvivesChurn)
{
    const auto param = GetParam();
    GcFixture f(param.kind, param.heapKiB * kKiB);
    Rng rng(param.seed);

    // Rooted ring buffer of recent objects plus some long-lived roots.
    constexpr int kRoots = 24;
    f.host.roots.assign(kRoots, kNull);

    for (int step = 0; step < 6000; ++step) {
        const Address n = f.newNode(step, static_cast<std::int64_t>(
                                              rng.next() & 0xffff));
        ASSERT_NE(n, kNull) << "unexpected OOM at step " << step;

        // Link to up to two random roots (graph entropy).
        for (int e = 0; e < 2; ++e) {
            const Address target =
                f.host.roots[rng.uniformInt(kRoots)];
            if (target != kNull && rng.bernoulli(0.7))
                f.heapStore(n, e, target);
        }
        // Replace a random root (dropping whatever hung off it).
        f.host.roots[rng.uniformInt(kRoots)] = n;

        if (step % 512 == 511) {
            std::size_t before = 0;
            const std::uint64_t sum = f.reachableChecksum(&before);
            f.collector->collect(rng.bernoulli(0.3));
            std::size_t after = 0;
            EXPECT_EQ(f.reachableChecksum(&after), sum)
                << "graph corrupted at step " << step;
            EXPECT_EQ(before, after);
        }
    }

    // Final: drop all roots; a full collection reclaims everything the
    // non-moving collectors can identify (and copying ones entirely).
    f.host.roots.assign(kRoots, kNull);
    f.collector->collect(true);
    f.collector->collect(true);
    EXPECT_LT(f.collector->heapUsed(), 64 * kKiB);
    EXPECT_EQ(f.host.begins, f.host.ends);
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectors, GcProperty,
    testing::Values(
        GcPropertyParam{CollectorKind::SemiSpace, 256, 1},
        GcPropertyParam{CollectorKind::SemiSpace, 1024, 2},
        GcPropertyParam{CollectorKind::MarkSweep, 256, 3},
        GcPropertyParam{CollectorKind::MarkSweep, 1024, 4},
        GcPropertyParam{CollectorKind::GenCopy, 384, 5},
        GcPropertyParam{CollectorKind::GenCopy, 1024, 6},
        GcPropertyParam{CollectorKind::GenMS, 384, 7},
        GcPropertyParam{CollectorKind::GenMS, 1024, 8},
        GcPropertyParam{CollectorKind::IncrementalMS, 256, 9},
        GcPropertyParam{CollectorKind::IncrementalMS, 1024, 10}),
    [](const testing::TestParamInfo<GcPropertyParam> &info) {
        return std::string(collectorName(info.param.kind)) + "_" +
               std::to_string(info.param.heapKiB) + "KiB";
    });
