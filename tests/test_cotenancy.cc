/**
 * @file
 * Co-tenancy attribution properties (DESIGN.md §11).
 *
 * The load-bearing invariant of the TenantSet is conservation: every
 * chronological energy/tick/counter delta is charged to exactly one
 * account (a tenant or idle), and the platform totals are defined as
 * the index-order sum of those accounts. The property tests here
 * re-derive the sums independently and require bit-for-bit equality
 * across seeds and tenant counts, cross-check them against the power
 * models' own integrals, pin that an idle tenant is charged only its
 * boot, and require whole-run determinism across reruns.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/tenant_set.hh"
#include "workloads/program_builder.hh"
#include "workloads/suite.hh"

using namespace javelin;
using harness::CoTenancyResult;
using harness::ExperimentConfig;
using harness::TenantSet;
using harness::TenantSpec;

namespace {

ExperimentConfig
serviceConfig(std::uint32_t tenants, std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.dataset = workloads::DatasetScale::Small;
    cfg.heapNominalMB = 32;
    cfg.tenants = tenants;
    cfg.requestsPerTenant = 6;
    cfg.requestRateHz = 4000.0;
    cfg.seed = seed;
    return cfg;
}

} // namespace

/**
 * Conservation property: for every seed x tenant-count point, the sum
 * of the per-tenant joules plus the idle account equals the platform
 * total bit-for-bit, the same holds for on-CPU ticks against the run's
 * span, and the partitioned total agrees with the independently
 * integrated power model up to floating-point reassociation.
 */
TEST(CoTenancy, AttributionConservesPlatformTotals)
{
    const auto profile = workloads::benchmark("_202_jess");
    for (const std::uint64_t seed : {7ULL, 13ULL}) {
        for (const std::uint32_t tenants : {1u, 2u, 4u}) {
            SCOPED_TRACE(testing::Message()
                         << "seed=" << seed << " tenants=" << tenants);
            const auto res =
                harness::runExperiment(serviceConfig(tenants, seed),
                                       profile);
            ASSERT_FALSE(res.failed) << res.failMessage;
            const CoTenancyResult &ct = res.cotenancy;
            ASSERT_EQ(ct.tenants.size(), tenants);

            // Re-derive the platform totals exactly as defined: plain
            // index-order sum of the accounts, idle last.
            double cpuSum = 0.0, memSum = 0.0;
            Tick tickSum = 0;
            std::uint64_t cycleSum = 0;
            for (const auto &a : ct.tenants) {
                EXPECT_EQ(a.requestsServed, 6u);
                EXPECT_GT(a.cpuJoules, 0.0);
                cpuSum += a.cpuJoules;
                memSum += a.memJoules;
                tickSum += a.ticks;
                cycleSum += a.counters.cycles;
            }
            cpuSum += ct.idleCpuJoules;
            memSum += ct.idleMemJoules;
            tickSum += ct.idleTicks;

            EXPECT_EQ(cpuSum, ct.platformCpuJoules);
            EXPECT_EQ(memSum, ct.platformMemJoules);
            EXPECT_EQ(tickSum, ct.endTick - ct.startTick);

            // Cross-check: the chronological partition re-sums to the
            // power models' own integration of the same run (equal up
            // to reassociation of the per-boundary deltas).
            EXPECT_NEAR(ct.platformCpuJoules, ct.modelCpuJoules,
                        ct.modelCpuJoules * 1e-9);
            EXPECT_NEAR(ct.platformMemJoules, ct.modelMemJoules,
                        ct.modelMemJoules * 1e-9);

            // The HPM cycle counters partition the same way: every
            // cycle the platform retired during the run is in exactly
            // one account (idle advances time without executing).
            EXPECT_LE(cycleSum, res.counters.cycles);
        }
    }
}

/**
 * An idle tenant (requests = 0) shares the platform but never runs a
 * request: it is charged its boot and nothing else, and its account
 * stays negligible next to a serving co-tenant.
 */
TEST(CoTenancy, IdleTenantAttributesOnlyBootEnergy)
{
    ExperimentConfig cfg = serviceConfig(2, 7);
    sim::System system(harness::scaledPlatformSpec(cfg));

    workloads::StudyScale scale =
        workloads::studyScaleFor(cfg.dataset);
    scale.volume = cfg.heapScale / 64.0;
    workloads::BenchmarkProfile profile =
        workloads::benchmark("_202_jess");
    const jvm::Program program =
        workloads::buildProgram(profile, scale);

    core::ComponentPort port(
        system, core::ComponentPort::Config{2.0, cfg.chargePortWrites});
    TenantSet set(system, port);

    TenantSpec busy;
    busy.vm.heapBytes = harness::scaledHeapBytes(cfg);
    busy.vm.interp = jvm::interpConfigFor(busy.vm.kind);
    busy.program = &program;
    busy.arrival.ratePerSec = cfg.requestRateHz;
    busy.requests = 6;
    busy.seed = 11;
    set.add(busy);

    TenantSpec idler = busy;
    idler.requests = 0; // boots, then never becomes runnable
    idler.seed = 12;
    set.add(idler);

    const CoTenancyResult res = set.run();
    const auto &served = res.tenants[0];
    const auto &idle = res.tenants[1];

    ASSERT_EQ(served.requestsServed, 6u);
    EXPECT_EQ(idle.requestsServed, 0u);
    EXPECT_EQ(idle.requestsArrived, 0u);
    EXPECT_EQ(idle.vm.bytecodesExecuted, 0u);
    EXPECT_EQ(idle.gcCollections, 0u);

    // Boot on the default (Jikes-like) personality is heap/port setup
    // only: the idle account must be a rounding error next to the
    // serving tenant, and conservation must still hold bit-for-bit.
    EXPECT_GT(served.cpuJoules, 0.0);
    EXPECT_LT(idle.cpuJoules + idle.memJoules,
              0.01 * (served.cpuJoules + served.memJoules));
    EXPECT_EQ(served.cpuJoules + idle.cpuJoules + res.idleCpuJoules,
              res.platformCpuJoules);
    EXPECT_EQ(served.memJoules + idle.memJoules + res.idleMemJoules,
              res.platformMemJoules);
}

/**
 * Whole-run determinism: every interleaving decision is a function of
 * simulated state and seeds only, so an identical rerun reproduces the
 * result bit-for-bit — energies, schedule shape, latencies, counters.
 */
TEST(CoTenancy, RerunIsBitIdentical)
{
    const auto profile = workloads::benchmark("_209_db");
    ExperimentConfig cfg = serviceConfig(2, 21);
    cfg.arrival = workloads::ArrivalKind::Bursty;
    cfg.tenantCollectorRotate = true;

    const auto a = harness::runExperiment(cfg, profile);
    const auto b = harness::runExperiment(cfg, profile);
    ASSERT_FALSE(a.failed) << a.failMessage;

    EXPECT_EQ(a.cotenancy.platformCpuJoules,
              b.cotenancy.platformCpuJoules);
    EXPECT_EQ(a.cotenancy.platformMemJoules,
              b.cotenancy.platformMemJoules);
    EXPECT_EQ(a.cotenancy.idleCpuJoules, b.cotenancy.idleCpuJoules);
    EXPECT_EQ(a.cotenancy.startTick, b.cotenancy.startTick);
    EXPECT_EQ(a.cotenancy.endTick, b.cotenancy.endTick);
    EXPECT_EQ(a.cotenancy.contextSwitches, b.cotenancy.contextSwitches);
    EXPECT_EQ(a.cotenancy.gcIntervals.size(),
              b.cotenancy.gcIntervals.size());
    ASSERT_EQ(a.cotenancy.tenants.size(), b.cotenancy.tenants.size());
    for (std::size_t i = 0; i < a.cotenancy.tenants.size(); ++i) {
        const auto &ta = a.cotenancy.tenants[i];
        const auto &tb = b.cotenancy.tenants[i];
        EXPECT_EQ(ta.cpuJoules, tb.cpuJoules);
        EXPECT_EQ(ta.memJoules, tb.memJoules);
        EXPECT_EQ(ta.ticks, tb.ticks);
        EXPECT_EQ(ta.slices, tb.slices);
        EXPECT_EQ(ta.meanLatencyUs, tb.meanLatencyUs);
        EXPECT_EQ(ta.p95LatencyUs, tb.p95LatencyUs);
        EXPECT_EQ(ta.energyPerRequestJ, tb.energyPerRequestJ);
        EXPECT_EQ(ta.counters.cycles, tb.counters.cycles);
        EXPECT_EQ(ta.counters.instructions, tb.counters.instructions);
        EXPECT_EQ(ta.vm.bytecodesExecuted, tb.vm.bytecodesExecuted);
        EXPECT_EQ(ta.vm.gc.collections, tb.vm.gc.collections);
    }
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.groundTruthCpuJoules, b.groundTruthCpuJoules);
}

/**
 * Collector rotation: with tenantCollectorRotate set, tenant i runs
 * collector (base + i) mod #kinds, so a 2-tenant SemiSpace-base run
 * pairs SemiSpace with MarkSweep and the per-tenant GC stats differ.
 */
TEST(CoTenancy, CollectorRotationGivesTenantsDistinctCollectors)
{
    const auto profile = workloads::benchmark("_202_jess");
    ExperimentConfig cfg = serviceConfig(2, 7);
    cfg.collector = jvm::CollectorKind::SemiSpace;
    cfg.tenantCollectorRotate = true;
    cfg.requestsPerTenant = 24;

    const auto res = harness::runExperiment(cfg, profile);
    ASSERT_FALSE(res.failed) << res.failMessage;
    const auto &t0 = res.cotenancy.tenants[0];
    const auto &t1 = res.cotenancy.tenants[1];
    ASSERT_EQ(t0.requestsServed, 24u);
    ASSERT_EQ(t1.requestsServed, 24u);
    ASSERT_GT(t0.gcCollections, 0u);
    ASSERT_GT(t1.gcCollections, 0u);
    // SemiSpace copies everything live on every collection; MarkSweep
    // (tenant 1 under rotation) copies nothing. The per-tenant GC
    // rollups must reflect the distinct collectors.
    EXPECT_GT(t0.vm.gc.bytesCopied, 0u);
    EXPECT_EQ(t1.vm.gc.bytesCopied, 0u);
    EXPECT_GT(t1.vm.gc.bytesFreed, 0u);
}
