/**
 * @file
 * Integration tests for the experiment harness: full paper-style runs
 * with end-to-end invariants — sampled attribution consistent with
 * ground truth, energy conservation, component coverage, and the
 * qualitative behaviours the paper reports.
 */

#include <gtest/gtest.h>

#include "core/energy_accounting.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.dataset = workloads::DatasetScale::Small;
    cfg.heapNominalMB = 32;
    return cfg;
}

} // namespace

TEST(Experiment, ScaledHeapBytes)
{
    ExperimentConfig cfg;
    cfg.heapNominalMB = 32;
    EXPECT_EQ(scaledHeapBytes(cfg), 2 * kMiB);
    cfg.heapNominalMB = 128;
    EXPECT_EQ(scaledHeapBytes(cfg), 8 * kMiB);
}

TEST(Experiment, CacheScalingPreservesGeometry)
{
    ExperimentConfig cfg;
    const auto scaled = scaledPlatformSpec(cfg);
    const auto raw = sim::p6Spec();
    EXPECT_EQ(scaled.memory.l1d.sizeBytes, raw.memory.l1d.sizeBytes / 2);
    EXPECT_EQ(scaled.memory.l2->sizeBytes, raw.memory.l2->sizeBytes / 4);
    cfg.scaleCaches = false;
    const auto unscaled = scaledPlatformSpec(cfg);
    EXPECT_EQ(unscaled.memory.l1d.sizeBytes, raw.memory.l1d.sizeBytes);
}

TEST(Experiment, SampledEnergyMatchesGroundTruth)
{
    const auto res = runExperiment(
        smallConfig(), workloads::benchmark("_202_jess"));
    ASSERT_TRUE(res.ok());
    // DAQ-sampled totals track exact integration within a few percent
    // (quantization at the run tail).
    EXPECT_NEAR(res.attribution.totalCpuJoules, res.groundTruthCpuJoules,
                res.groundTruthCpuJoules * 0.05);
    EXPECT_NEAR(res.attribution.totalMemJoules, res.groundTruthMemJoules,
                res.groundTruthMemJoules * 0.05);
}

TEST(Experiment, PerComponentAttributionWithinQuantization)
{
    auto cfg = smallConfig();
    cfg.heapNominalMB = 32;
    const auto res =
        runExperiment(cfg, workloads::benchmark("_213_javac"));
    ASSERT_TRUE(res.ok());
    const double truthGc =
        res.groundTruth[core::componentIndex(core::ComponentId::Gc)]
            .cpuJoules;
    const double sampledGc =
        res.attribution.powerOf(core::ComponentId::Gc).cpuJoules;
    // GC runs in hundreds-of-microsecond pauses against a 40 us window:
    // attribution error stays within ~15%.
    EXPECT_NEAR(sampledGc, truthGc, truthGc * 0.15 + 1e-4);
}

TEST(Experiment, ComponentsCovered)
{
    const auto res = runExperiment(
        smallConfig(), workloads::benchmark("_213_javac"));
    ASSERT_TRUE(res.ok());
    using core::ComponentId;
    for (const auto c : {ComponentId::App, ComponentId::Gc,
                         ComponentId::ClassLoader,
                         ComponentId::BaseCompiler})
        EXPECT_GT(res.groundTruth[core::componentIndex(c)].cpuJoules,
                  0.0)
            << core::componentName(c);
}

TEST(Experiment, KaffeUsesJitComponents)
{
    auto cfg = smallConfig();
    cfg.vm = jvm::VmKind::Kaffe;
    cfg.collector = jvm::CollectorKind::IncrementalMS;
    const auto res =
        runExperiment(cfg, workloads::benchmark("_209_db"));
    ASSERT_TRUE(res.ok());
    using core::ComponentId;
    EXPECT_GT(res.groundTruth[core::componentIndex(ComponentId::Jit)]
                  .cpuJoules, 0.0);
    EXPECT_EQ(res.groundTruth[core::componentIndex(
                  ComponentId::BaseCompiler)].cpuJoules, 0.0);
    // Kaffe's CL share exceeds Jikes's (lazy system classes).
    auto jikesCfg = smallConfig();
    const auto jikes =
        runExperiment(jikesCfg, workloads::benchmark("_209_db"));
    EXPECT_GT(res.attribution.energyFraction(ComponentId::ClassLoader),
              jikes.attribution.energyFraction(ComponentId::ClassLoader));
}

TEST(Experiment, GcShareDropsWithHeapSize)
{
    auto cfg = smallConfig();
    cfg.collector = jvm::CollectorKind::SemiSpace;
    cfg.heapNominalMB = 32;
    const auto small32 =
        runExperiment(cfg, workloads::benchmark("_213_javac"));
    cfg.heapNominalMB = 128;
    const auto big128 =
        runExperiment(cfg, workloads::benchmark("_213_javac"));
    ASSERT_TRUE(small32.ok());
    ASSERT_TRUE(big128.ok());
    EXPECT_GT(small32.attribution.energyFraction(core::ComponentId::Gc),
              2 * big128.attribution.energyFraction(
                      core::ComponentId::Gc));
    // Bigger heap also runs faster (fewer collections): EDP improves.
    EXPECT_LT(big128.edp(), small32.edp());
}

TEST(Experiment, PeakPowerComesFromApplication)
{
    const auto res = runExperiment(
        smallConfig(), workloads::benchmark("_227_mtrt"));
    ASSERT_TRUE(res.ok());
    // Paper Section VI-C: for most benchmarks peak power is set by the
    // application, not a JVM service component.
    EXPECT_GE(res.attribution.powerOf(core::ComponentId::App)
                  .peakCpuWatts,
              res.attribution.powerOf(core::ComponentId::Gc)
                  .peakCpuWatts * 0.95);
    EXPECT_EQ(res.attribution.peakCpuWatts,
              res.attribution.powerOf(core::ComponentId::App)
                  .peakCpuWatts);
}

TEST(Experiment, GcIsLowPowerComponentOnP6)
{
    auto cfg = smallConfig();
    cfg.collector = jvm::CollectorKind::GenCopy;
    const auto res =
        runExperiment(cfg, workloads::benchmark("_213_javac"));
    ASSERT_TRUE(res.ok());
    const auto &gc = res.attribution.powerOf(core::ComponentId::Gc);
    const auto &app = res.attribution.powerOf(core::ComponentId::App);
    EXPECT_LT(gc.avgCpuWatts(), app.avgCpuWatts());
}

TEST(Experiment, OomReportedNotFatal)
{
    auto cfg = smallConfig();
    cfg.dataset = workloads::DatasetScale::Full;
    cfg.collector = jvm::CollectorKind::GenCopy;
    cfg.heapNominalMB = 32;
    const auto res = runExperiment(cfg, workloads::benchmark("pmd"));
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(res.run.outOfMemory);
}

TEST(Experiment, DeterministicAcrossRepeats)
{
    const auto a = runExperiment(smallConfig(),
                                 workloads::benchmark("_228_jack"));
    const auto b = runExperiment(smallConfig(),
                                 workloads::benchmark("_228_jack"));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.run.returnValue, b.run.returnValue);
    EXPECT_EQ(a.run.endTick, b.run.endTick);
    EXPECT_DOUBLE_EQ(a.attribution.totalCpuJoules,
                     b.attribution.totalCpuJoules);
}

TEST(Experiment, SenseNoisePerturbsButPreservesMean)
{
    auto noisy = smallConfig();
    noisy.senseNoiseVoltsRms = 0.0005;
    const auto clean = runExperiment(smallConfig(),
                                     workloads::benchmark("_209_db"));
    const auto res =
        runExperiment(noisy, workloads::benchmark("_209_db"));
    ASSERT_TRUE(res.ok());
    EXPECT_NE(res.attribution.totalCpuJoules,
              clean.attribution.totalCpuJoules);
    EXPECT_NEAR(res.attribution.totalCpuJoules,
                clean.attribution.totalCpuJoules,
                clean.attribution.totalCpuJoules * 0.05);
}

TEST(Experiment, FinerDaqReducesAttributionError)
{
    auto coarse = smallConfig();
    coarse.daqPeriod = 320 * kTicksPerMicro;
    auto fine = smallConfig();
    fine.daqPeriod = 10 * kTicksPerMicro;

    const auto errFor = [](const ExperimentResult &res) {
        const double truthGc =
            res.groundTruth[core::componentIndex(core::ComponentId::Gc)]
                .cpuJoules;
        const double sampled =
            res.attribution.powerOf(core::ComponentId::Gc).cpuJoules;
        return std::abs(sampled - truthGc) / truthGc;
    };

    const auto a =
        runExperiment(coarse, workloads::benchmark("_213_javac"));
    const auto b =
        runExperiment(fine, workloads::benchmark("_213_javac"));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LT(errFor(b), errFor(a) + 0.02);
}

TEST(Experiment, Pxa255RunsEmbeddedStudy)
{
    ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::Pxa255;
    cfg.vm = jvm::VmKind::Kaffe;
    cfg.collector = jvm::CollectorKind::IncrementalMS;
    cfg.dataset = workloads::DatasetScale::Small;
    cfg.heapNominalMB = 16;
    const auto res =
        runExperiment(cfg, workloads::benchmark("_201_compress"));
    ASSERT_TRUE(res.ok());
    // Embedded power levels: hundreds of milliwatts, not watts.
    const double avgW =
        res.attribution.totalCpuJoules / res.attribution.totalSeconds;
    EXPECT_GT(avgW, 0.07);
    EXPECT_LT(avgW, 0.6);
}

TEST(Report, TablesRenderWithOomMarkers)
{
    auto cfg = smallConfig();
    std::vector<ExperimentResult> results;
    results.push_back(
        runExperiment(cfg, workloads::benchmark("_209_db")));
    ExperimentResult oom = results.front();
    oom.run.outOfMemory = true;
    results.push_back(oom);

    const auto table =
        energyDecompositionTable(results, jikesComponents());
    EXPECT_EQ(table.rows(), 2u);
    EXPECT_EQ(table.at(1, 2), "OOM");

    const auto ptable = powerTable(results, kaffeComponents());
    EXPECT_EQ(ptable.rows(), 2u);
}
