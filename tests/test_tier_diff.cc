/**
 * @file
 * Cross-tier differential tests.
 *
 * DESIGN.md §7 promises that compilation tiers differ only in *timing*:
 * the interpreter, the baseline compiler, the Kaffe JIT and the
 * adaptive optimizing system must all compute the same program result
 * and allocate the same object graph. This suite runs identical
 * workloads under every tier and asserts the semantic outcome — return
 * value, bytecode count, allocation and GC object counts — is
 * identical, while the timing outcome (cycles) is allowed to (and
 * does) differ.
 */

#include <gtest/gtest.h>

#include "jvm/jvm.hh"
#include "sim/platform.hh"
#include "workloads/program_builder.hh"
#include "workloads/suite.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

struct TierOutcome
{
    const char *label;
    RunResult run;
    std::uint64_t cycles;
};

TierOutcome
runUnderTier(const Program &program, Tier tier, bool adaptive,
             CollectorKind collector)
{
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.kind = VmKind::Jikes;
    cfg.collector = collector;
    cfg.heapBytes = 512 * kKiB;
    cfg.interp.compileOnInvoke = tier;
    cfg.adaptiveOptimization = adaptive;
    Jvm vm(system, program, cfg);
    TierOutcome out;
    out.label = tierName(tier);
    out.run = vm.run();
    out.cycles = system.counters().cycles;
    return out;
}

/** Assert two tier outcomes agree on everything semantic. */
void
expectSameSemantics(const TierOutcome &a, const TierOutcome &b)
{
    EXPECT_EQ(a.run.returnValue, b.run.returnValue)
        << a.label << " vs " << b.label;
    EXPECT_EQ(a.run.bytecodesExecuted, b.run.bytecodesExecuted)
        << a.label << " vs " << b.label;
    EXPECT_EQ(a.run.gc.objectsAllocated, b.run.gc.objectsAllocated)
        << a.label << " vs " << b.label;
    EXPECT_EQ(a.run.gc.bytesAllocated, b.run.gc.bytesAllocated)
        << a.label << " vs " << b.label;
    EXPECT_EQ(a.run.gc.collections, b.run.gc.collections)
        << a.label << " vs " << b.label;
    EXPECT_EQ(a.run.gc.objectsCopied, b.run.gc.objectsCopied)
        << a.label << " vs " << b.label;
    EXPECT_EQ(a.run.outOfMemory, b.run.outOfMemory)
        << a.label << " vs " << b.label;
}

Program
smallWorkload(const char *name)
{
    workloads::StudyScale scale =
        workloads::studyScaleFor(workloads::DatasetScale::Small);
    scale.volume = 1.0 / 16.0;
    return workloads::buildProgram(workloads::benchmark(name), scale);
}

} // namespace

class TierDiff : public testing::TestWithParam<const char *>
{
};

TEST_P(TierDiff, AllTiersSameSemantics)
{
    const Program program = smallWorkload(GetParam());

    // Interpreter-only, baseline-only (no adaptive recompilation),
    // Kaffe-style JIT, and the full adaptive optimizing configuration.
    const auto interp = runUnderTier(program, Tier::Interpreted, false,
                                     CollectorKind::SemiSpace);
    const auto base = runUnderTier(program, Tier::Baseline, false,
                                   CollectorKind::SemiSpace);
    const auto jit = runUnderTier(program, Tier::Jitted, false,
                                  CollectorKind::SemiSpace);
    const auto opt = runUnderTier(program, Tier::Baseline, true,
                                  CollectorKind::SemiSpace);

    expectSameSemantics(interp, base);
    expectSameSemantics(interp, jit);
    expectSameSemantics(interp, opt);

    // The tiers must NOT be timing-identical, or the cost model is
    // vacuous: interpretation is strictly slower than compiled code.
    EXPECT_GT(interp.cycles, base.cycles);
}

TEST_P(TierDiff, TiersAgreeAcrossCollectors)
{
    const Program program = smallWorkload(GetParam());
    for (const auto kind :
         {CollectorKind::MarkSweep, CollectorKind::GenCopy}) {
        const auto interp =
            runUnderTier(program, Tier::Interpreted, false, kind);
        const auto base =
            runUnderTier(program, Tier::Baseline, false, kind);
        expectSameSemantics(interp, base);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, TierDiff,
                         testing::Values("_202_jess", "_209_db"));
