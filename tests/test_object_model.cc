/**
 * @file
 * Tests for the heap backing store, spaces, object layout, and the
 * segregated free-list allocator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "jvm/freelist.hh"
#include "jvm/heap.hh"
#include "jvm/object_model.hh"
#include "sim/platform.hh"
#include "sim/system.hh"
#include "util/random.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

std::vector<ClassInfo>
testClasses()
{
    std::vector<ClassInfo> classes(3);
    classes[0].id = 0;
    classes[0].name = "Node";
    classes[0].refFields = 2;
    classes[0].scalarFields = 3;
    classes[1].id = 1;
    classes[1].name = "Object[]";
    classes[1].isRefArray = true;
    classes[2].id = 2;
    classes[2].name = "long[]";
    classes[2].isScalarArray = true;
    return classes;
}

struct OmFixture
{
    OmFixture()
        : system(sim::p6Spec()), heap(1 * kMiB), classes(testClasses()),
          om(heap, system.cpu(), classes)
    {
    }

    sim::System system;
    Heap heap;
    std::vector<ClassInfo> classes;
    ObjectModel om;
};

} // namespace

TEST(Heap, BoundsChecked)
{
    Heap heap(256 * kKiB);
    EXPECT_TRUE(heap.contains(kHeapBase));
    EXPECT_TRUE(heap.contains(kHeapBase + 256 * kKiB - 1));
    EXPECT_FALSE(heap.contains(kHeapBase + 256 * kKiB));
    EXPECT_FALSE(heap.contains(0));
    EXPECT_DEATH(heap.read64(kHeapBase + 256 * kKiB), "out of range");
}

TEST(Heap, ReadWriteRoundTrip)
{
    Heap heap(64 * kKiB);
    heap.write64(kHeapBase + 8, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(heap.read64(kHeapBase + 8), 0xdeadbeefcafef00dULL);
    heap.write32(kHeapBase + 16, 0x1234);
    EXPECT_EQ(heap.read32(kHeapBase + 16), 0x1234u);
}

TEST(Heap, CopyAndZero)
{
    Heap heap(64 * kKiB);
    heap.write64(kHeapBase, 99);
    heap.copyBlock(kHeapBase + 128, kHeapBase, 64);
    EXPECT_EQ(heap.read64(kHeapBase + 128), 99u);
    heap.zero(kHeapBase + 128, 64);
    EXPECT_EQ(heap.read64(kHeapBase + 128), 0u);
}

TEST(Space, BumpAllocation)
{
    Space s("test", kHeapBase, 1024);
    EXPECT_EQ(s.bump(100), kHeapBase);
    EXPECT_EQ(s.bump(100), kHeapBase + 100);
    EXPECT_EQ(s.used(), 200u);
    EXPECT_EQ(s.freeBytes(), 824u);
    EXPECT_EQ(s.bump(900), kNull); // would overflow
    s.reset();
    EXPECT_EQ(s.used(), 0u);
}

TEST(ObjectModel, InstanceLayout)
{
    OmFixture f;
    const ClassInfo &node = f.classes[0];
    const std::uint32_t bytes = f.om.objectBytes(node, 0);
    EXPECT_EQ(bytes, alignUp(kHeaderBytes + 5 * kSlotBytes));

    const Address obj = kHeapBase + 64;
    f.om.initObject(obj, node, bytes, 0);
    EXPECT_EQ(f.om.classIdRaw(obj), 0u);
    EXPECT_EQ(f.om.sizeRaw(obj), bytes);
    EXPECT_EQ(f.om.refCountRaw(obj), 2u);
    EXPECT_EQ(f.om.scalarCountRaw(obj), 3u);
    EXPECT_EQ(f.om.refRaw(obj, 0), kNull);
    EXPECT_EQ(f.om.scalarRaw(obj, 2), 0);
}

TEST(ObjectModel, FieldAccessRoundTrip)
{
    OmFixture f;
    const Address obj = kHeapBase;
    f.om.initObject(obj, f.classes[0], f.om.objectBytes(f.classes[0], 0),
                    0);
    f.om.storeRef(obj, 1, kHeapBase + 0x100);
    f.om.storeScalar(obj, 0, -77);
    EXPECT_EQ(f.om.loadRef(obj, 1), kHeapBase + 0x100);
    EXPECT_EQ(f.om.loadScalar(obj, 0), -77);
    // Scalars live after refs: no overlap.
    EXPECT_EQ(f.om.refRaw(obj, 0), kNull);
}

TEST(ObjectModel, ArrayLayout)
{
    OmFixture f;
    const Address arr = kHeapBase;
    const std::uint32_t bytes = f.om.objectBytes(f.classes[1], 10);
    f.om.initObject(arr, f.classes[1], bytes, 10);
    EXPECT_EQ(f.om.arrayLenRaw(arr), 10u);
    EXPECT_EQ(f.om.refCountRaw(arr), 10u);
    EXPECT_EQ(f.om.scalarCountRaw(arr), 0u);

    const Address sarr = kHeapBase + 0x1000;
    f.om.initObject(sarr, f.classes[2], f.om.objectBytes(f.classes[2], 7),
                    7);
    EXPECT_EQ(f.om.refCountRaw(sarr), 0u);
    EXPECT_EQ(f.om.scalarCountRaw(sarr), 7u);
}

TEST(ObjectModel, GcBitsAndForwarding)
{
    OmFixture f;
    const Address obj = kHeapBase;
    f.om.initObject(obj, f.classes[0], f.om.objectBytes(f.classes[0], 0),
                    0);
    EXPECT_EQ(f.om.gcBitsRaw(obj), 0u);
    f.om.storeGcBits(obj, kMarkBit);
    EXPECT_TRUE(f.om.loadGcBits(obj) & kMarkBit);
    EXPECT_FALSE(f.om.isForwardedRaw(obj));

    f.om.setForwarding(obj, kHeapBase + 0x2000);
    EXPECT_TRUE(f.om.isForwardedRaw(obj));
    EXPECT_EQ(f.om.forwardingRaw(obj), kHeapBase + 0x2000);
    EXPECT_EQ(f.om.loadForwarding(obj), kHeapBase + 0x2000);
}

TEST(ObjectModel, ChargesCacheTraffic)
{
    OmFixture f;
    const Address obj = kHeapBase;
    f.om.initObject(obj, f.classes[0], f.om.objectBytes(f.classes[0], 0),
                    0);
    const auto before = f.system.counters().l1dAccesses;
    f.om.loadScalar(obj, 0);
    f.om.storeRef(obj, 0, kNull);
    EXPECT_EQ(f.system.counters().l1dAccesses, before + 2);
}

TEST(ObjectModel, CorruptHeaderPanics)
{
    OmFixture f;
    f.heap.write32(kHeapBase + kClassIdOffset, 999);
    EXPECT_DEATH(f.om.classOfRaw(kHeapBase), "corrupt object header");
}

// ---- FreeListAllocator ----

TEST(FreeList, SizeClassSelection)
{
    EXPECT_EQ(FreeListAllocator::kSizeClasses
                  [FreeListAllocator::classFor(16)], 16u);
    EXPECT_EQ(FreeListAllocator::kSizeClasses
                  [FreeListAllocator::classFor(17)], 24u);
    EXPECT_EQ(FreeListAllocator::kSizeClasses
                  [FreeListAllocator::classFor(16384)], 16384u);
    EXPECT_DEATH(FreeListAllocator::classFor(16385), "too large");
}

TEST(FreeList, AllocateAndReuse)
{
    Heap heap(256 * kKiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 256 * kKiB));
    std::uint32_t traffic = 0;
    const Address a = fl.alloc(48, &traffic);
    ASSERT_NE(a, kNull);
    EXPECT_TRUE(fl.isAllocatedCell(a));
    EXPECT_EQ(fl.usedBytes(), 48u);

    fl.freeCell(a);
    EXPECT_FALSE(fl.isAllocatedCell(a));
    EXPECT_EQ(fl.usedBytes(), 0u);

    const Address b = fl.alloc(40, &traffic); // same class (48)
    EXPECT_EQ(b, a); // free list reuses the cell
    EXPECT_EQ(traffic, 1u); // one load to pop the list
}

TEST(FreeList, DistinctCellsNeverOverlap)
{
    Heap heap(1 * kMiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 1 * kMiB));
    Rng rng(3);
    std::vector<std::pair<Address, std::uint32_t>> cells;
    std::uint32_t traffic;
    for (int i = 0; i < 500; ++i) {
        const auto bytes = static_cast<std::uint32_t>(
            16 + rng.uniformInt(120) * 8);
        const Address a = fl.alloc(bytes, &traffic);
        ASSERT_NE(a, kNull);
        cells.emplace_back(a, fl.cellBytesAt(a));
    }
    std::sort(cells.begin(), cells.end());
    for (std::size_t i = 1; i < cells.size(); ++i)
        EXPECT_LE(cells[i - 1].first + cells[i - 1].second,
                  cells[i].first);
}

TEST(FreeList, ExhaustionReturnsNull)
{
    Heap heap(64 * kKiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 64 * kKiB));
    std::uint32_t traffic;
    int got = 0;
    while (fl.alloc(8000, &traffic) != kNull)
        ++got;
    EXPECT_EQ(got, 8); // 4 blocks of 16 KiB, 2 cells of 8 KiB each
    EXPECT_EQ(fl.freeBytes(), 0u);
}

TEST(FreeList, SweepRebuild)
{
    Heap heap(128 * kKiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 128 * kKiB));
    std::uint32_t traffic;
    std::vector<Address> cells;
    for (int i = 0; i < 100; ++i)
        cells.push_back(fl.alloc(64, &traffic));
    fl.beginSweep();
    for (std::size_t i = 0; i < cells.size(); i += 2)
        fl.freeCell(cells[i]);
    // Half the cells are free again and get reused before new carving.
    const auto usedBefore = fl.usedBytes();
    const Address reused = fl.alloc(64, &traffic);
    EXPECT_TRUE(std::find(cells.begin(), cells.end(), reused) !=
                cells.end());
    EXPECT_EQ(fl.usedBytes(), usedBefore + 64);
}

TEST(FreeList, FreeCellsSurviveSweeps)
{
    Heap heap(64 * kKiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 64 * kKiB));
    std::uint32_t traffic;
    const Address a = fl.alloc(64, &traffic);
    const Address b = fl.alloc(64, &traffic);
    ASSERT_NE(b, kNull);
    fl.freeCell(a);
    // A sweep cycle in which the cell is neither reused nor its block
    // emptied must keep it allocatable (the old design rebuilt the
    // lists from the current sweep's corpses only, leaking it).
    fl.beginSweep();
    fl.endSweep();
    EXPECT_EQ(fl.alloc(64, &traffic), a);
    EXPECT_EQ(traffic, 1u);
}

TEST(FreeList, VirginPoolReassignsFreedBlocks)
{
    Heap heap(64 * kKiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 64 * kKiB));
    std::uint32_t traffic;
    std::vector<Address> cells;
    Address a;
    while ((a = fl.alloc(64, &traffic)) != kNull)
        cells.push_back(a);
    // Every block is bound to the 64-byte class: a larger class finds
    // no space even though nothing else is using the heap.
    EXPECT_EQ(fl.alloc(1024, &traffic), kNull);
    fl.beginSweep();
    for (Address c : cells)
        fl.freeCell(c);
    fl.endSweep();
    // All blocks retired to the virgin pool; the whole space is free
    // again and reassignable to any class.
    EXPECT_EQ(fl.virginBlockCount(), 4u);
    EXPECT_EQ(fl.freeBytes(), 64 * kKiB);
    EXPECT_NE(fl.alloc(1024, &traffic), kNull);
}

TEST(FreeList, DoubleFreePanics)
{
    Heap heap(64 * kKiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 64 * kKiB));
    std::uint32_t traffic;
    const Address a = fl.alloc(32, &traffic);
    fl.freeCell(a);
    EXPECT_DEATH(fl.freeCell(a), "freeing a free cell");
}

TEST(FreeList, WithinAllocatedCell)
{
    Heap heap(64 * kKiB);
    FreeListAllocator fl(heap, Space("ms", kHeapBase, 64 * kKiB));
    std::uint32_t traffic;
    const Address a = fl.alloc(128, &traffic);
    EXPECT_TRUE(fl.isWithinAllocatedCell(a + 64));
    fl.freeCell(a);
    EXPECT_FALSE(fl.isWithinAllocatedCell(a + 64));
    EXPECT_FALSE(fl.isWithinAllocatedCell(kHeapBase + 48 * kKiB));
}
