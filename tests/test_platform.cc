/**
 * @file
 * Platform-level tests: the P6 and PXA255 specifications, the scaled
 * memory system, prefetcher timing, and the cross-platform contrasts
 * the paper's Section VI-E builds on.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/platform.hh"
#include "sim/system.hh"

using namespace javelin;

TEST(Platform, P6Spec)
{
    const auto spec = sim::p6Spec();
    EXPECT_EQ(spec.kind, sim::PlatformKind::P6);
    EXPECT_DOUBLE_EQ(spec.cpu.freqHz, 1.6e9);
    EXPECT_EQ(spec.memory.l1i.sizeBytes, 32 * kKiB);
    ASSERT_TRUE(spec.memory.l2.has_value());
    EXPECT_EQ(spec.memory.l2->sizeBytes, 1 * kMiB);
    EXPECT_DOUBLE_EQ(spec.power.idleWatts, 4.5);   // paper Section IV-D
    EXPECT_DOUBLE_EQ(spec.memPower.idleWatts, 0.25);
    EXPECT_TRUE(spec.memory.nextLinePrefetch);
    EXPECT_EQ(spec.hpmPeriod, kTicksPerMilli);     // 1 ms OS timer
    EXPECT_EQ(spec.daqPeriod, 40 * kTicksPerMicro);
    EXPECT_FALSE(spec.dvfsPoints.empty());
}

TEST(Platform, Pxa255Spec)
{
    const auto spec = sim::pxa255Spec();
    EXPECT_EQ(spec.kind, sim::PlatformKind::Pxa255);
    EXPECT_DOUBLE_EQ(spec.cpu.freqHz, 400e6);
    EXPECT_FALSE(spec.memory.l2.has_value());      // no L2 on PXA255
    EXPECT_EQ(spec.memory.l1d.assoc, 32u);         // 32-way caches
    EXPECT_NEAR(spec.power.idleWatts, 0.070, 1e-9); // 70 mW idle
    EXPECT_NEAR(spec.memPower.idleWatts, 0.005, 1e-9);
    EXPECT_EQ(spec.hpmPeriod, 10 * kTicksPerMilli); // 10 ms OS timer
    EXPECT_FALSE(spec.memory.nextLinePrefetch);
    // GC dependence penalty vanishes on the in-order core.
    EXPECT_LT(spec.cpu.gcStallPerUop, sim::p6Spec().cpu.gcStallPerUop);
}

TEST(Platform, LookupByKind)
{
    EXPECT_EQ(sim::platformSpec(sim::PlatformKind::P6).name,
              sim::p6Spec().name);
    EXPECT_EQ(sim::platformSpec(sim::PlatformKind::Pxa255).name,
              sim::pxa255Spec().name);
}

TEST(Platform, MemoryLatencyGeometry)
{
    // The embedded platform's DRAM penalty in *cycles* is an order of
    // magnitude smaller than the P6's — the root of the paper's
    // observation that the PXA255's GC keeps a relatively high IPC.
    const auto p6 = sim::p6Spec();
    const auto pxa = sim::pxa255Spec();
    EXPECT_GT(p6.memory.dramCycles, 6 * pxa.memory.dramCycles);
}

TEST(Platform, ClockPeriodsExactInTicks)
{
    EXPECT_EQ(periodForFreq(1.6e9), 625u);   // ps
    EXPECT_EQ(periodForFreq(400e6), 2500u);  // ps
}

TEST(PrefetchTiming, LatePrefetchHitChargesCatchUp)
{
    sim::PerfCounters counters;
    sim::MemoryHierarchy::Config cfg;
    cfg.l1i = {"l1i", 1024, 2, 64};
    cfg.l1d = {"l1d", 1024, 2, 64};
    cfg.l2 = sim::Cache::Config{"l2", 64 * kKiB, 8, 64};
    cfg.l2HitCycles = 9;
    cfg.dramCycles = 180;
    cfg.nextLinePrefetch = true;
    sim::MemoryHierarchy mh(cfg, counters);

    mh.data(0x10000, false);               // miss; prefetch 0x10040
    // Push line 0x10000 out of tiny L1 (same set family).
    mh.data(0x10000 + 512, false);
    mh.data(0x10000 + 1024, false);
    // Demand hit on the prefetched line: L2 hit plus catch-up stall.
    const auto penalty = mh.data(0x10040, false);
    EXPECT_EQ(penalty, 9u + 180u / 3);
    // Second touch after re-missing L1: plain L2 hit.
    mh.data(0x10040 + 512, false);
    mh.data(0x10040 + 1024, false);
    EXPECT_EQ(mh.data(0x10040, false), 9u);
}

TEST(ScaledPlatform, EmbeddedPowerEnvelope)
{
    // A busy PXA255 draws hundreds of milliwatts; the P6 draws watts.
    harness::ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::Pxa255;
    cfg.vm = jvm::VmKind::Kaffe;
    cfg.collector = jvm::CollectorKind::IncrementalMS;
    cfg.dataset = workloads::DatasetScale::Small;
    cfg.heapNominalMB = 20;
    const auto pxa = harness::runExperiment(
        cfg, workloads::benchmark("_202_jess"));
    ASSERT_TRUE(pxa.ok());
    const double pxaW =
        pxa.attribution.totalCpuJoules / pxa.attribution.totalSeconds;
    EXPECT_GT(pxaW, 0.07);
    EXPECT_LT(pxaW, 0.7);

    cfg.platform = sim::PlatformKind::P6;
    const auto p6 = harness::runExperiment(
        cfg, workloads::benchmark("_202_jess"));
    ASSERT_TRUE(p6.ok());
    const double p6W =
        p6.attribution.totalCpuJoules / p6.attribution.totalSeconds;
    EXPECT_GT(p6W, 5.0);
    EXPECT_LT(p6W, 25.0);
    // And the P6 finishes far faster.
    EXPECT_LT(p6.run.seconds() * 4, pxa.run.seconds());
}

TEST(ScaledPlatform, ClassLoadingRelativelyPricierOnPxa)
{
    // FLASH + JAR decompression: the CL share grows on the embedded
    // board for identical work (paper Fig. 9 vs Fig. 11).
    harness::ExperimentConfig cfg;
    cfg.vm = jvm::VmKind::Kaffe;
    cfg.collector = jvm::CollectorKind::IncrementalMS;
    cfg.dataset = workloads::DatasetScale::Small;
    cfg.heapNominalMB = 20;

    cfg.platform = sim::PlatformKind::P6;
    const auto p6 = harness::runExperiment(
        cfg, workloads::benchmark("_213_javac"));
    cfg.platform = sim::PlatformKind::Pxa255;
    const auto pxa = harness::runExperiment(
        cfg, workloads::benchmark("_213_javac"));
    ASSERT_TRUE(p6.ok());
    ASSERT_TRUE(pxa.ok());
    EXPECT_GT(pxa.attribution.energyFraction(
                  core::ComponentId::ClassLoader),
              p6.attribution.energyFraction(
                  core::ComponentId::ClassLoader));
}

TEST(ScaledPlatform, GcPowerRankFlipsAcrossPlatforms)
{
    // P6: GC below the application. PXA255: GC at or above it
    // (Section VI-E's headline contrast).
    harness::ExperimentConfig cfg;
    cfg.vm = jvm::VmKind::Kaffe;
    cfg.collector = jvm::CollectorKind::IncrementalMS;
    cfg.dataset = workloads::DatasetScale::Small;
    cfg.heapNominalMB = 16;

    cfg.platform = sim::PlatformKind::P6;
    const auto p6 = harness::runExperiment(
        cfg, workloads::benchmark("_202_jess"));
    ASSERT_TRUE(p6.ok());
    const auto &p6gc = p6.attribution.powerOf(core::ComponentId::Gc);
    const auto &p6app = p6.attribution.powerOf(core::ComponentId::App);
    if (p6gc.samples > 3)
        EXPECT_LT(p6gc.avgCpuWatts(), p6app.avgCpuWatts());

    cfg.platform = sim::PlatformKind::Pxa255;
    const auto pxa = harness::runExperiment(
        cfg, workloads::benchmark("_202_jess"));
    ASSERT_TRUE(pxa.ok());
    const auto &gc = pxa.attribution.powerOf(core::ComponentId::Gc);
    const auto &app = pxa.attribution.powerOf(core::ComponentId::App);
    if (gc.samples > 3)
        EXPECT_GT(gc.avgCpuWatts(), app.avgCpuWatts() * 0.85);
}
