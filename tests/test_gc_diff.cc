/**
 * @file
 * Differential fuzzer for the GC fast paths (DESIGN.md §5e).
 *
 * Every collector has two drive modes behind GcEnv::fastPath: the
 * batched fast path (block slot loads, folded per-object cost charges,
 * deficit-hoisted polls, raw header decode) and the naive scalar
 * reference path over the timed ObjectModel accessors, kept as the
 * oracle. The contract is that the two are *bit-identical* in every
 * architecturally visible dimension: hardware event counts, cycle and
 * stall images, CPU and memory joules, the full heap image (object
 * payloads, mark/forward bits, free-list links) and the periodic-task
 * firing schedule.
 *
 * This test drives two rigs — one per mode — through the same
 * randomized allocate/mutate/collect program (>= 1M operations across
 * the five collectors) and asserts exact equality after every
 * collector-triggering phase. A poll the fast path hoists away would
 * show up here as a shifted firing tick of the recording task; a
 * mis-folded charge as a diverging instruction or joule count; a
 * mis-batched copy or sweep as a heap mismatch.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "jvm/gc/collector.hh"
#include "sim/platform.hh"
#include "util/random.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

std::vector<ClassInfo>
diffClasses()
{
    std::vector<ClassInfo> classes(3);
    classes[0].id = 0;
    classes[0].name = "Node";
    classes[0].refFields = 2;
    classes[0].scalarFields = 2;
    classes[1].id = 1;
    classes[1].name = "Object[]";
    classes[1].isRefArray = true;
    classes[2].id = 2;
    classes[2].name = "long[]";
    classes[2].isScalarArray = true;
    return classes;
}

class DiffHost : public GcHost
{
  public:
    void
    forEachRoot(const std::function<void(Address &)> &fn) override
    {
        for (Address &r : roots)
            fn(r);
    }
    void gcBegin(bool) override {}
    void gcEnd(bool) override {}

    std::vector<Address> roots;
};

/** One independently simulated platform + heap + collector. */
struct Rig
{
    Rig(CollectorKind kind, bool fast, std::uint64_t heap_bytes)
        : system(sim::p6Spec()), heap(heap_bytes),
          classes(diffClasses()), om(heap, system.cpu(), classes)
    {
        GcEnv env{heap, om, system, host};
        env.fastPath = fast;
        collector = makeCollector(kind, env);
        // Fires at poll points only: its tick trace IS the observable
        // poll schedule. A fast path that skipped a poll the reference
        // path took while this task was due would shift the trace.
        system.addPeriodicTask("poll-probe", 20000, [this](Tick t) {
            pollTicks.push_back(t);
        });
    }

    /** Allocate + init one object of class ci; returns kNull on OOM. */
    Address
    alloc(std::uint32_t ci, std::uint32_t array_len)
    {
        const ClassInfo &cls = classes[ci];
        const std::uint32_t bytes = om.objectBytes(cls, array_len);
        const Address a = collector->allocate(bytes);
        if (a == kNull)
            return kNull;
        om.initObject(a, cls, bytes, array_len);
        collector->postInit(a);
        return a;
    }

    void
    storeRef(Address holder, std::uint32_t slot, Address value)
    {
        if (collector->needsWriteBarrier())
            collector->writeBarrier(holder, om.refSlotAddr(holder, slot),
                                    value);
        om.storeRef(holder, slot, value);
    }

    sim::System system;
    Heap heap;
    std::vector<ClassInfo> classes;
    ObjectModel om;
    DiffHost host;
    std::unique_ptr<Collector> collector;
    std::vector<Tick> pollTicks;
};

#define EXPECT_COUNTER_EQ(field)                                          \
    EXPECT_EQ(ca.field, cb.field) << "counter " #field " diverged"

void
expectIdentical(Rig &fast, Rig &ref)
{
    const sim::PerfCounters &ca = fast.system.counters();
    const sim::PerfCounters &cb = ref.system.counters();
    EXPECT_COUNTER_EQ(cycles);
    EXPECT_COUNTER_EQ(instructions);
    EXPECT_COUNTER_EQ(stallCycles);
    EXPECT_COUNTER_EQ(branches);
    EXPECT_COUNTER_EQ(branchMispredicts);
    EXPECT_COUNTER_EQ(l1iAccesses);
    EXPECT_COUNTER_EQ(l1iMisses);
    EXPECT_COUNTER_EQ(l1dAccesses);
    EXPECT_COUNTER_EQ(l1dMisses);
    EXPECT_COUNTER_EQ(l2Accesses);
    EXPECT_COUNTER_EQ(l2Misses);
    EXPECT_COUNTER_EQ(l2Probes);
    EXPECT_COUNTER_EQ(dramAccesses);
    EXPECT_COUNTER_EQ(dramWritebacks);

    // Energy integrates cycles and events through doubles: exact
    // equality, not tolerance — the two modes must take identical
    // rounding paths.
    EXPECT_EQ(fast.system.cpuJoules(), ref.system.cpuJoules());
    EXPECT_EQ(fast.system.memoryJoules(), ref.system.memoryJoules());

    // Full heap image: payloads, headers (mark/forward bits), links.
    ASSERT_EQ(fast.heap.size(), ref.heap.size());
    EXPECT_EQ(0, std::memcmp(fast.heap.ptr(fast.heap.base()),
                             ref.heap.ptr(ref.heap.base()),
                             fast.heap.size()))
        << "heap images diverged";

    const Collector::Stats &sa = fast.collector->stats();
    const Collector::Stats &sb = ref.collector->stats();
    EXPECT_EQ(sa.collections, sb.collections);
    EXPECT_EQ(sa.minorCollections, sb.minorCollections);
    EXPECT_EQ(sa.majorCollections, sb.majorCollections);
    EXPECT_EQ(sa.pauseTicks, sb.pauseTicks);
    EXPECT_EQ(sa.bytesAllocated, sb.bytesAllocated);
    EXPECT_EQ(sa.objectsAllocated, sb.objectsAllocated);
    EXPECT_EQ(sa.bytesCopied, sb.bytesCopied);
    EXPECT_EQ(sa.objectsCopied, sb.objectsCopied);
    EXPECT_EQ(sa.objectsMarked, sb.objectsMarked);
    EXPECT_EQ(sa.bytesFreed, sb.bytesFreed);
    EXPECT_EQ(sa.barrierHits, sb.barrierHits);
    EXPECT_EQ(sa.remsetEntries, sb.remsetEntries);

    EXPECT_EQ(fast.pollTicks, ref.pollTicks) << "poll schedule diverged";
}

/** Drive both rigs through one op; returns false once OOM is seen. */
bool
step(Rig &fast, Rig &ref, Rng &rng)
{
    const std::uint32_t roll = rng.uniformInt(100);
    std::vector<Address> &roots = fast.host.roots;

    if (roll < 55 || roots.empty()) {
        // Allocate: mostly 2-ref nodes, some ref arrays (wide scan
        // objects), some scalar arrays (copy-size variety, zero refs).
        std::uint32_t ci = 0, len = 0;
        const std::uint32_t shape = rng.uniformInt(10);
        if (shape >= 8) {
            ci = 1;
            len = rng.uniformInt(9);
        } else if (shape == 7) {
            ci = 2;
            len = rng.uniformInt(17);
        }
        const Address a = fast.alloc(ci, len);
        const Address b = ref.alloc(ci, len);
        EXPECT_EQ(a, b) << "allocation addresses diverged";
        if (a == kNull)
            return false;
        if (roots.size() < 48 && rng.uniformInt(3) != 0) {
            fast.host.roots.push_back(a);
            ref.host.roots.push_back(b);
        } else if (!roots.empty()) {
            const std::uint32_t slot = rng.uniformInt(
                static_cast<std::uint32_t>(roots.size()));
            fast.host.roots[slot] = a;
            ref.host.roots[slot] = b;
        }
    } else if (roll < 90) {
        // Mutate: store a random root (or null) into a random ref slot
        // of a random root, through the write barrier.
        const std::uint32_t hi = rng.uniformInt(
            static_cast<std::uint32_t>(roots.size()));
        const Address ha = fast.host.roots[hi];
        const Address hb = ref.host.roots[hi];
        const std::uint32_t refs = fast.om.refCountRaw(ha);
        if (refs != 0) {
            const std::uint32_t slot = rng.uniformInt(refs);
            Address va = kNull, vb = kNull;
            if (rng.uniformInt(8) != 0) {
                const std::uint32_t vi = rng.uniformInt(
                    static_cast<std::uint32_t>(roots.size()));
                va = fast.host.roots[vi];
                vb = ref.host.roots[vi];
            }
            fast.storeRef(ha, slot, va);
            ref.storeRef(hb, slot, vb);
        }
    } else if (roll < 97) {
        // Drop a root: garbage for the next collection to reclaim.
        const std::uint32_t slot = rng.uniformInt(
            static_cast<std::uint32_t>(roots.size()));
        fast.host.roots.erase(fast.host.roots.begin() + slot);
        ref.host.roots.erase(ref.host.roots.begin() + slot);
    } else {
        const bool major = rng.uniformInt(2) == 0;
        fast.collector->collect(major);
        ref.collector->collect(major);
    }
    return true;
}

constexpr std::uint32_t kOpsPerCollector = 210000;

void
runDiff(CollectorKind kind, std::uint64_t heap_bytes, std::uint64_t seed)
{
    SCOPED_TRACE(collectorName(kind));
    Rig fast(kind, true, heap_bytes);
    Rig ref(kind, false, heap_bytes);
    Rng rng(seed);

    std::uint32_t ops = 0;
    for (; ops < kOpsPerCollector; ++ops) {
        if (!step(fast, ref, rng))
            break;
        // Periodic mid-run checks catch divergence near its cause
        // without paying a full-heap compare every op.
        if (ops % 50000 == 49999)
            expectIdentical(fast, ref);
        if (::testing::Test::HasFailure())
            return;
    }
    // The op mix keeps the live set far below the heap: OOM before the
    // op budget means the two rigs diverged into leaking, not a small
    // heap.
    EXPECT_EQ(ops, kOpsPerCollector) << "premature out-of-memory";

    // Final full collection exercises each collector's complete
    // mark/evacuate/sweep pipeline once more, then the closing check.
    fast.collector->collect(true);
    ref.collector->collect(true);
    expectIdentical(fast, ref);
}

} // namespace

// 5 collectors x 210k ops = 1.05M differential operations per run.

TEST(GcDiff, SemiSpace)
{
    runDiff(CollectorKind::SemiSpace, 768 * kKiB, 0xA001);
}

// The mark-sweep heaps ran at 4 MiB while FreeListAllocator bound every
// block permanently to its first size class (historical per-class peaks
// ratcheted usage until a class exhausted the space). With free cells
// persisting across sweeps and fully-free blocks retiring to the virgin
// pool, the same 210k-op runs fit comfortably at copying-collector-scale
// heaps again.
TEST(GcDiff, MarkSweep)
{
    runDiff(CollectorKind::MarkSweep, 1536 * kKiB, 0xA002);
}

TEST(GcDiff, GenCopy)
{
    runDiff(CollectorKind::GenCopy, 1024 * kKiB, 0xA003);
}

TEST(GcDiff, GenMS)
{
    runDiff(CollectorKind::GenMS, 2 * kMiB, 0xA004);
}

TEST(GcDiff, IncrementalMS)
{
    runDiff(CollectorKind::IncrementalMS, 1536 * kKiB, 0xA005);
}
