/**
 * @file
 * Tests for the benchmark suite and program builder: every profile must
 * produce a verifiable program whose runtime behaviour matches its
 * declared characteristics (allocation volume, live set, class count),
 * and checksums must be reproducible.
 */

#include <gtest/gtest.h>

#include "jvm/jvm.hh"
#include "sim/platform.hh"
#include "workloads/program_builder.hh"
#include "workloads/suite.hh"

using namespace javelin;
using namespace javelin::workloads;

TEST(Suite, HasAllSixteenPaperBenchmarks)
{
    const auto &all = allBenchmarks();
    EXPECT_EQ(all.size(), 16u);
    EXPECT_EQ(suiteBenchmarks("SpecJVM98").size(), 7u);
    EXPECT_EQ(suiteBenchmarks("DaCapo").size(), 5u);
    EXPECT_EQ(suiteBenchmarks("JGF").size(), 4u);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(benchmark("_213_javac").suite, "SpecJVM98");
    EXPECT_EQ(benchmark("fop").suite, "DaCapo");
    EXPECT_EQ(benchmark("euler").suite, "JGF");
    EXPECT_EXIT(benchmark("nope"), testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Suite, EmbeddedSelectionMatchesPaper)
{
    const auto v = embeddedBenchmarks();
    ASSERT_EQ(v.size(), 5u);
    EXPECT_EQ(v[0].name, "_201_compress");
    EXPECT_EQ(v[3].name, "_213_javac");
    EXPECT_EQ(v[4].name, "_228_jack");
}

TEST(Builder, EveryProfileVerifies)
{
    // buildProgram panics on verification failure, so constructing all
    // 16 programs at both dataset scales is itself the assertion.
    for (const auto &profile : allBenchmarks()) {
        for (const auto ds : {DatasetScale::Full, DatasetScale::Small}) {
            BuildInfo info;
            const auto p =
                buildProgram(profile, studyScaleFor(ds), &info);
            EXPECT_GT(p.classes.size(),
                      profile.bootClasses + profile.appClasses);
            EXPECT_GT(p.methods.size(), profile.coldMethods);
            EXPECT_GT(info.iterations, 0u);
            EXPECT_GT(info.plannedAllocBytes, info.liveBytes);
            EXPECT_EQ(p.bootClassCount, profile.bootClasses);
        }
    }
}

TEST(Builder, DeterministicForSameSeed)
{
    const auto &profile = benchmark("_202_jess");
    const auto a =
        buildProgram(profile, studyScaleFor(DatasetScale::Small));
    const auto b =
        buildProgram(profile, studyScaleFor(DatasetScale::Small));
    ASSERT_EQ(a.methods.size(), b.methods.size());
    for (std::size_t m = 0; m < a.methods.size(); ++m) {
        ASSERT_EQ(a.methods[m].code.size(), b.methods[m].code.size());
        for (std::size_t i = 0; i < a.methods[m].code.size(); ++i) {
            EXPECT_EQ(a.methods[m].code[i].op, b.methods[m].code[i].op);
            EXPECT_EQ(a.methods[m].code[i].a, b.methods[m].code[i].a);
        }
    }
}

TEST(Builder, SmallDatasetShrinksWork)
{
    const auto &profile = benchmark("_209_db");
    BuildInfo full, small;
    buildProgram(profile, studyScaleFor(DatasetScale::Full), &full);
    buildProgram(profile, studyScaleFor(DatasetScale::Small), &small);
    EXPECT_LT(small.plannedAllocBytes, full.plannedAllocBytes / 4);
    EXPECT_LT(small.liveBytes, full.liveBytes / 4);
}

namespace {

jvm::RunResult
runScaled(const BenchmarkProfile &profile, DatasetScale ds,
          std::uint64_t heap_bytes,
          jvm::CollectorKind kind = jvm::CollectorKind::SemiSpace)
{
    const auto p = buildProgram(profile, studyScaleFor(ds));
    sim::System system(sim::p6Spec());
    jvm::JvmConfig cfg;
    cfg.collector = kind;
    cfg.heapBytes = heap_bytes;
    jvm::Jvm vm(system, p, cfg);
    return vm.run();
}

} // namespace

TEST(Builder, AllocationVolumeMatchesPlan)
{
    const auto &profile = benchmark("_202_jess");
    BuildInfo info;
    buildProgram(profile, studyScaleFor(DatasetScale::Small), &info);
    const auto r =
        runScaled(profile, DatasetScale::Small, 1 * kMiB);
    ASSERT_FALSE(r.outOfMemory);
    // Actual allocation within 40% of plan (object-size spread and
    // alignment make this approximate by design).
    EXPECT_GT(r.gc.bytesAllocated, info.plannedAllocBytes * 6 / 10);
    EXPECT_LT(r.gc.bytesAllocated, info.plannedAllocBytes * 16 / 10);
}

TEST(Builder, ChecksumInvariantAcrossCollectors)
{
    const auto &profile = benchmark("_227_mtrt");
    std::int64_t expected = 0;
    bool first = true;
    for (const auto kind :
         {jvm::CollectorKind::SemiSpace, jvm::CollectorKind::MarkSweep,
          jvm::CollectorKind::GenCopy, jvm::CollectorKind::GenMS,
          jvm::CollectorKind::IncrementalMS}) {
        const auto r =
            runScaled(profile, DatasetScale::Small, 2 * kMiB, kind);
        ASSERT_FALSE(r.outOfMemory) << collectorName(kind);
        if (first) {
            expected = r.returnValue;
            first = false;
        } else {
            EXPECT_EQ(r.returnValue, expected)
                << "collector " << collectorName(kind)
                << " changed program semantics";
        }
    }
}

TEST(Builder, DaCapoLiveSetTooBigForCopyingAt32MB)
{
    // The reason the paper reports DaCapo from 48 MB up (Section V).
    const auto &profile = benchmark("pmd");
    const auto scaled32 = static_cast<std::uint64_t>(32.0 * kMiB / 16);
    const auto scaled48 = static_cast<std::uint64_t>(48.0 * kMiB / 16);
    const auto r32 = runScaled(profile, DatasetScale::Full, scaled32,
                               jvm::CollectorKind::GenCopy);
    EXPECT_TRUE(r32.outOfMemory);
    const auto r48 = runScaled(profile, DatasetScale::Full, scaled48,
                               jvm::CollectorKind::GenCopy);
    EXPECT_FALSE(r48.outOfMemory);
}

TEST(Builder, SpecBenchmarksFitAt32MB)
{
    for (const auto &profile : suiteBenchmarks("SpecJVM98")) {
        const auto r = runScaled(profile, DatasetScale::Full,
                                 2 * kMiB, jvm::CollectorKind::GenCopy);
        EXPECT_FALSE(r.outOfMemory) << profile.name;
    }
}

TEST(Builder, GcPressureTracksAllocVolume)
{
    const auto low = runScaled(benchmark("_222_mpegaudio"),
                               DatasetScale::Full, 2 * kMiB);
    const auto high = runScaled(benchmark("_202_jess"),
                                DatasetScale::Full, 2 * kMiB);
    ASSERT_FALSE(low.outOfMemory);
    ASSERT_FALSE(high.outOfMemory);
    EXPECT_GT(high.gc.collections, low.gc.collections * 3);
}

TEST(Builder, ColdCallsLoadClassesOverTime)
{
    const auto &profile = benchmark("fop");
    const auto p =
        buildProgram(profile, studyScaleFor(DatasetScale::Small));
    sim::System system(sim::p6Spec());
    jvm::JvmConfig cfg;
    cfg.heapBytes = 2 * kMiB;
    jvm::Jvm vm(system, p, cfg);
    vm.run();
    // Well beyond the app classes: cold dispatch loaded cold classes.
    EXPECT_GT(vm.classLoader().classesLoaded(),
              profile.appClasses + profile.coldMethods / 4);
}
